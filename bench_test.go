// Benchmarks regenerating the paper's evaluation (one benchmark family
// per table/figure; see EXPERIMENTS.md for the measured results and
// cmd/experiments for the table-formatted harness).
package repro

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/flatten"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/portfolio"
	"repro/internal/sampler"
	"repro/internal/sat"
	"repro/internal/unfold"
	"repro/internal/weakmem"
	"repro/prog"
)

// simulated selects deterministic makespan simulation of parallel wall
// times when the host lacks enough physical cores for real concurrent
// measurement (see parallel.Simulate).
var simulated = runtime.NumCPU() < 8

// table2Cells are the per-program representative configurations used by
// the benchmark entry points (the full grid lives in
// internal/experiments).
var table2Cells = []struct {
	b    bench.Benchmark
	u, c int
}{
	{bench.BoundedbufferBench(), 2, 6},
	{bench.EliminationstackBench(), 2, 5},
	{bench.SafestackBench(), 2, 6},
	{bench.WorkstealingqueueBench(), 2, 7},
}

// BenchmarkTable1Features measures the front half of the pipeline
// (parse, unfold, flatten, encode) for each benchmark program.
func BenchmarkTable1Features(b *testing.B) {
	for _, cell := range table2Cells {
		b.Run(cell.b.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := core.EncodeProgram(cell.b.Program, core.Options{
					Unwind: cell.u, Contexts: cell.c,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 measures the partitioned parallel analysis per program
// and core count (paper Table 2). On hosts below 8 physical cores the
// run uses the deterministic makespan simulation, whose benchmark wall
// time is the *total* sequential work over all partitions (so it grows
// with the core count); the simulated k-core wall times and speedups are
// what cmd/experiments reports.
func BenchmarkTable2(b *testing.B) {
	for _, cell := range table2Cells {
		for _, cores := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/u=%d/c=%d/cores=%d", cell.b.Name, cell.u, cell.c, cores)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := core.Verify(context.Background(), cell.b.Program, core.Options{
						Unwind: cell.u, Contexts: cell.c, Cores: cores,
						SimulateParallel: simulated,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Verdict == core.Unknown {
						b.Fatal("unknown verdict")
					}
				}
			})
		}
	}
}

// benchPortfolio backs BenchmarkTable3 (sharing) and BenchmarkTable4
// (diverse): the same formulae solved by a general-purpose parallel
// portfolio.
func benchPortfolio(b *testing.B, style portfolio.Style) {
	for _, cell := range table2Cells {
		enc, _, _, err := core.EncodeProgram(cell.b.Program, core.Options{
			Unwind: cell.u, Contexts: cell.c,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, cores := range []int{1, 4} {
			name := fmt.Sprintf("%s/u=%d/c=%d/cores=%d", cell.b.Name, cell.u, cell.c, cores)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					popts := portfolio.Options{Cores: cores, Style: style}
					var res *portfolio.Result
					var err error
					if simulated {
						res, err = portfolio.Simulate(context.Background(), enc.Formula(), popts)
					} else {
						res, err = portfolio.Solve(context.Background(), enc.Formula(), popts)
					}
					if err != nil {
						b.Fatal(err)
					}
					if res.Status == sat.Unknown {
						b.Fatal("unknown status")
					}
				}
			})
		}
	}
}

// BenchmarkTable3 is the Syrup stand-in baseline (paper Table 3).
func BenchmarkTable3(b *testing.B) { benchPortfolio(b, portfolio.StyleSharing) }

// BenchmarkTable4 is the Plingeling stand-in baseline (paper Table 4).
func BenchmarkTable4(b *testing.B) { benchPortfolio(b, portfolio.StyleDiverse) }

// BenchmarkFig6Fibonacci measures whole-formula solving against the best
// partitioned sub-formula on the Fibonacci instance of Fig. 6.
func BenchmarkFig6Fibonacci(b *testing.B) {
	enc, _, _, err := core.EncodeProgram(bench.Fibonacci(2), core.Options{Unwind: 2, Contexts: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("whole", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewFromFormula(enc.Formula(), sat.Options{})
			if st, err := s.Solve(); err != nil || st != sat.Sat {
				b.Fatalf("status %v err %v", st, err)
			}
		}
	})
	b.Run("partitioned-16", func(b *testing.B) {
		parts, err := partition.Make(enc, 16)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			res, err := parallel.Solve(context.Background(), enc.Formula(), parts, parallel.Options{Workers: 8})
			if err != nil || res.Status != sat.Sat {
				b.Fatalf("status %v err %v", res.Status, err)
			}
		}
	})
}

// BenchmarkFig7Distributed measures the simulated-cluster analysis of
// Safestack (paper Fig. 7), one sub-benchmark per cluster size.
func BenchmarkFig7Distributed(b *testing.B) {
	p := bench.Safestack()
	for _, cores := range []int{8, 16} {
		b.Run(fmt.Sprintf("c=5/cores=%d", cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := distrib.SimulateCluster(context.Background(), p,
					core.Options{Unwind: 2, Contexts: 5, SimulateParallel: simulated}, cores, 4)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != core.Safe {
					b.Fatalf("verdict %v", res.Verdict)
				}
			}
		})
	}
}

// BenchmarkAblationScheduler compares the context-bounded scheduler with
// the original round-robin one on the bounded buffer.
func BenchmarkAblationScheduler(b *testing.B) {
	p := bench.Boundedbuffer()
	b.Run("context-bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Verify(context.Background(), p, core.Options{
				Unwind: 2, Contexts: 6, Cores: 4, SimulateParallel: simulated,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("round-robin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Verify(context.Background(), p, core.Options{
				Unwind: 2, Rounds: 2, Cores: 4, SimulateParallel: simulated,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDynamic compares static partition assignment
// (partitions == cores) with the dynamic work-queue variant the paper
// proposes as future work (partitions > cores).
func BenchmarkAblationDynamic(b *testing.B) {
	enc, _, _, err := core.EncodeProgram(bench.Eliminationstack(), core.Options{Unwind: 2, Contexts: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, nparts := range []int{4, 16} {
		name := "static-4"
		if nparts > 4 {
			name = fmt.Sprintf("dynamic-%d", nparts)
		}
		b.Run(name, func(b *testing.B) {
			parts, err := partition.Make(enc, nparts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := parallel.Solve(context.Background(), enc.Formula(), parts, parallel.Options{Workers: 4})
				if err != nil || res.Status != sat.Unsat {
					b.Fatalf("status %v err %v", res.Status, err)
				}
			}
		})
	}
}

// BenchmarkAblationFreeze compares frozen-assumption solving against
// re-building the conjoined formula per partition.
func BenchmarkAblationFreeze(b *testing.B) {
	enc, _, _, err := core.EncodeProgram(bench.Workstealingqueue(), core.Options{Unwind: 2, Contexts: 6})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := partition.Make(enc, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("frozen-assumptions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pt := range parts {
				s := sat.NewFromFormula(enc.Formula(), sat.Options{})
				if _, err := s.Solve(pt.Assumptions...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("conjoined-clauses", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pt := range parts {
				f := enc.Formula().Clone()
				for _, a := range pt.Assumptions {
					f.AddUnit(a)
				}
				s := sat.NewFromFormula(f, sat.Options{})
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkExperimentsFig6 runs the full Fig. 6 harness (kept cheap so
// the figure can be regenerated under -bench).
func BenchmarkExperimentsFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(context.Background(), io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPreprocess measures the simplifier's effect on the
// end-to-end analysis (the prototype's "MiniSat with simplifier").
func BenchmarkAblationPreprocess(b *testing.B) {
	p := bench.Eliminationstack()
	for _, pp := range []bool{false, true} {
		name := "off"
		if pp {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Verify(context.Background(), p, core.Options{
					Unwind: 2, Contexts: 5, Cores: 1, Preprocess: pp,
				})
				if err != nil || res.Verdict != core.Safe {
					b.Fatalf("%v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkCertification measures the cost of certifying Safe verdicts
// with RUP-checked refutation proofs.
func BenchmarkCertification(b *testing.B) {
	p := bench.Safestack()
	for _, cert := range []bool{false, true} {
		name := "plain"
		if cert {
			name = "certified"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Verify(context.Background(), p, core.Options{
					Unwind: 2, Contexts: 5, Cores: 1, CertifyUnsat: cert,
				})
				if err != nil || res.Verdict != core.Safe {
					b.Fatalf("%v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkWeakMemory measures the PSO store-buffer transformation's
// analysis overhead on the store-buffering litmus test.
func BenchmarkWeakMemory(b *testing.B) {
	src := `
int x, y;
int r1, r2;
void t1() { x = 1; r1 = y; }
void t2() { y = 1; r2 = x; }
void main() {
  int a2, b2;
  a2 = create(t1);
  b2 = create(t2);
  join(a2);
  join(b2);
  assert(!(r1 == 0 && r2 == 0));
}
`
	sc := prog.MustParse(src)
	pso, err := weakmem.Transform(sc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Verify(context.Background(), sc, core.Options{
				Unwind: 2, Contexts: 6, Cores: 1, Preprocess: true,
			})
			if err != nil || res.Verdict != core.Safe {
				b.Fatalf("%v %v", res, err)
			}
		}
	})
	b.Run("pso", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Verify(context.Background(), pso, core.Options{
				Unwind: 2, Contexts: 6, Cores: 1, Preprocess: true,
			})
			if err != nil || res.Verdict != core.Unsafe {
				b.Fatalf("%v %v", res, err)
			}
		}
	})
}

// BenchmarkSampler measures randomized schedule sampling throughput on
// the work-stealing queue (executions per benchmark iteration: 10000).
func BenchmarkSampler(b *testing.B) {
	up, err := unfold.Unfold(bench.Workstealingqueue(), unfold.Options{Unwind: 2})
	if err != nil {
		b.Fatal(err)
	}
	fp, err := flatten.Flatten(up)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sampler.Sample(context.Background(), fp, sampler.Options{
			Contexts: 7, MaxExecutions: 10000, Workers: 1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
