// Command parbmc is the paper's prototype verifier (Sect. 3.4): parallel
// and distributed context-bounded model checking of multi-threaded
// programs via symbolic partitioning of the interleavings.
//
// Parallel analysis over 8 cores on a single machine:
//
//	parbmc -i program.mt --unwind 2 --contexts 5 --cores 8
//
// Distributed analysis over two 4-core machines (the paper's --from/--to
// interface, half-open ranges):
//
//	parbmc -i program.mt --unwind 2 --contexts 5 --cores 8 --from 0 --to 4
//	parbmc -i program.mt --unwind 2 --contexts 5 --cores 8 --from 4 --to 8
//
// Built-in benchmark programs can be selected with --benchmark
// (fibonacci, boundedbuffer, eliminationstack, safestack,
// workstealingqueue).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/flatten"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/weakmem"
	"repro/prog"
)

// stdout is the dump destination, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	// `parbmc report …` is a subcommand with its own argument shape;
	// dispatch before flag.Parse sees the run flags.
	if len(os.Args) > 1 && os.Args[1] == "report" {
		os.Exit(reportMain(os.Args[2:]))
	}
	var (
		input      = flag.String("i", "", "input program file")
		benchmark  = flag.String("benchmark", "", "built-in benchmark name instead of -i")
		unwind     = flag.Int("unwind", 1, "loop/recursion unwinding bound")
		contexts   = flag.Int("contexts", 0, "number of execution contexts")
		rounds     = flag.Int("rounds", 0, "round-robin rounds (ablation mode, replaces --contexts)")
		width      = flag.Int("width", 8, "integer bit width")
		cores      = flag.Int("cores", 1, "parallel solver instances")
		partitions = flag.Int("partitions", 0, "trace-space partitions (power of two; default: cores)")
		from       = flag.Int("from", 0, "first partition index (distributed mode)")
		to         = flag.Int("to", 0, "one past the last partition index (distributed mode)")
		preprocess = flag.Bool("preprocess", false, "run the MiniSat-style simplifier before partitioning")
		certify    = flag.Bool("certify", false, "check refutation proofs for UNSAT partitions (certified SAFE verdicts)")
		pso        = flag.Bool("pso", false, "analyse under PSO weak memory (per-variable store buffers)")
		tso        = flag.Bool("tso", false, "analyse under TSO weak memory (FIFO store buffers)")
		dimacs     = flag.String("dimacs", "", "export the propositional formula in DIMACS format and exit")
		dump       = flag.String("dump", "", "dump an intermediate artefact and exit: source | flat")
		showTrace  = flag.Bool("trace", true, "print the counterexample schedule")
		quiet      = flag.Bool("q", false, "print only the verdict")
		stats      = flag.Bool("stats", false, "print per-phase timings and per-partition solver statistics")
		traceOut   = flag.String("trace-out", "", "write pipeline phase spans as JSONL to this file")
		pprofAddr  = flag.String("pprof-addr", "", "serve /debug/pprof and /healthz on this address")
		journal    = flag.String("journal", "", "crash-safe run journal path (commit every partition verdict)")
		resume     = flag.Bool("resume", false, "resume from an existing -journal, skipping committed partitions")
		chunkTO    = flag.Duration("chunk-timeout", 0, "per-partition wall-clock budget (0: unbounded)")
		chunkConfl = flag.Int64("chunk-conflicts", 0, "per-partition solver conflict budget (0: unbounded)")
		memBudget  = flag.Int64("mem-budget", 0, "per-partition solver memory budget in MiB; over it the solver sheds learnt clauses, then records a memory-caused UNKNOWN (0: unbounded)")
		splitDepth = flag.Int("split-depth", 0, "adaptive cube splitting: max extra split bits per partition (0 disables)")
		splitGrace = flag.Duration("split-grace", 0, "minimum solving age before a partition may be split (default 15s)")
		splitHard  = flag.Float64("split-hardness", 0, "minimum live hardness before a partition qualifies for splitting (0: any straggler past -split-grace)")
		reportOut  = flag.String("report", "", "write the run's flight-recorder report (JSON) to this file; render with `parbmc report`")
		profileDir = flag.String("profile-dir", "", "capture per-phase pprof CPU+heap profiles (encode, solve) into this directory")
	)
	flag.Parse()

	var profiler *obs.Profiler
	if *profileDir != "" {
		var perr error
		profiler, perr = obs.NewProfiler(*profileDir, "parbmc")
		if perr != nil {
			fmt.Fprintln(os.Stderr, "parbmc:", perr)
			os.Exit(2)
		}
	}

	if *pprofAddr != "" {
		srv, _ := obs.Serve(*pprofAddr, obs.NewMux(obs.MuxOptions{Pprof: true}))
		defer srv.Close()
	}

	// -trace-out writes spans as JSONL; -report additionally collects
	// them in memory so the run report embeds its own span tree. Both
	// feed one tracer via a teed sink.
	var fileSink obs.Sink
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parbmc:", err)
			os.Exit(2)
		}
		defer tf.Close()
		fileSink = obs.NewJSONLSink(tf)
	}
	var recorder *report.Recorder
	var spanColl *obs.CollectorSink
	var collSink obs.Sink // stays untyped-nil unless -report is set
	if *reportOut != "" {
		recorder = report.NewRecorder()
		spanColl = obs.NewCollectorSink()
		collSink = spanColl
	}
	tracer := obs.NewTracer(obs.MultiSink(fileSink, collSink)).WithProc("parbmc")

	parseSpan := tracer.Start("parse")
	p, err := loadProgram(*input, *benchmark)
	parseSpan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "parbmc:", err)
		os.Exit(2)
	}
	if *pso && *tso {
		fmt.Fprintln(os.Stderr, "parbmc: --pso and --tso are mutually exclusive")
		os.Exit(2)
	}
	if *pso {
		p, err = weakmem.Transform(p)
	} else if *tso {
		p, err = weakmem.TransformTSO(p, 2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parbmc:", err)
		os.Exit(2)
	}

	if *dump != "" || *dimacs != "" {
		if err := dumpArtefacts(p, *dump, *dimacs, *unwind, *contexts, *rounds, *width); err != nil {
			fmt.Fprintln(os.Stderr, "parbmc:", err)
			os.Exit(2)
		}
		return
	}

	// SIGTERM (the polite kill) must behave like SIGINT: cancel the run so
	// in-flight solving stops; committed journal records are already
	// durable, so even SIGKILL loses only uncommitted work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := core.Verify(ctx, p, core.Options{
		Unwind:         *unwind,
		Contexts:       *contexts,
		Rounds:         *rounds,
		Width:          *width,
		Cores:          *cores,
		Partitions:     *partitions,
		From:           *from,
		To:             *to,
		Preprocess:     *preprocess,
		CertifyUnsat:   *certify,
		Tracer:         tracer,
		JournalPath:    *journal,
		Resume:         *resume,
		ChunkTimeout:   *chunkTO,
		ChunkConflicts: *chunkConfl,
		MemBudgetMB:    *memBudget,
		SplitDepth:     *splitDepth,
		SplitGrace:     *splitGrace,
		SplitHardness:  *splitHard,
		Profiler:       profiler,
	})
	if perr := profiler.Err(); perr != nil {
		fmt.Fprintln(os.Stderr, "parbmc: profile capture:", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parbmc:", err)
		os.Exit(2)
	}

	if recorder != nil {
		name := *benchmark
		if name == "" {
			name = *input
		}
		recorder.SetManifest(report.Manifest{
			Program: name, Unwind: *unwind, Contexts: *contexts,
			Rounds: *rounds, Width: *width, Partitions: res.Partitions,
			Mode: "local", TraceID: tracer.TraceID(),
		})
		recorder.SetVerdict(res.Verdict.String(), time.Since(start))
		if res.JournalSealed {
			recorder.Warn(fmt.Sprintf("journal sealed after storage failure; run continued journal-less (resume covers only earlier commits): %s", res.SealCause))
		}
		for _, inst := range res.Instances {
			recorder.Finish(report.PartitionRow{
				Partition:    inst.Partition,
				Verdict:      inst.Status.String(),
				Cause:        inst.Cause.String(),
				Conflicts:    inst.Stats.Conflicts,
				Propagations: inst.Stats.Propagations,
				Progress:     inst.Stats.Progress,
				SolveMillis:  inst.Time.Milliseconds(),
				Certified:    res.Certified,
				Hardness:     inst.Hardness,
				ConflictRate: instConflictRate(inst),
			})
		}
		recorder.AddProfiles(profileRecords(profiler))
		recorder.AddSpans(spanColl.Events())
		if werr := recorder.WriteFile(*reportOut); werr != nil {
			fmt.Fprintln(os.Stderr, "parbmc: write report:", werr)
		}
	}

	if *quiet {
		fmt.Println(res.Verdict)
	} else {
		fmt.Printf("verdict:    %v\n", res.Verdict)
		if *certify && res.Verdict == core.Safe {
			fmt.Printf("certified:  %v (refutation proofs checked)\n", res.Certified)
		}
		fmt.Printf("threads:    %d\n", res.Threads)
		fmt.Printf("formula:    %d variables, %d clauses\n", res.Vars, res.Clauses)
		fmt.Printf("partitions: %d (winner: %d)\n", res.Partitions, res.Winner)
		fmt.Printf("encode:     %v\n", res.EncodeTime)
		fmt.Printf("solve:      %v\n", res.SolveTime)
		if res.Resumed > 0 {
			fmt.Printf("resumed:    %d partitions replayed from %s\n", res.Resumed, *journal)
		}
		if res.Splits > 0 || res.MaxCubeDepth > 0 {
			fmt.Printf("splits:     %d adaptive cube splits (max depth %d)\n", res.Splits, res.MaxCubeDepth)
		}
		if !res.Coverage.Complete() || res.Resumed > 0 || *chunkTO > 0 || *chunkConfl > 0 || *memBudget > 0 {
			fmt.Printf("coverage:   %v\n", res.Coverage)
		}
		if res.JournalSealed {
			fmt.Printf("WARNING:    journal sealed after storage failure; run finished journal-less (resume covers only earlier commits): %s\n", res.SealCause)
		}
		if *stats {
			for _, ph := range res.Phases {
				fmt.Printf("phase %-10s %v\n", ph.Name+":", ph.Duration)
			}
			var peakMem int64
			for _, inst := range res.Instances {
				st := inst.Stats
				if st.PeakMemBytes > peakMem {
					peakMem = st.PeakMemBytes
				}
				fmt.Printf("partition %d: %s in %v — decisions=%d conflicts=%d propagations=%d maxdepth=%d backjumps=%d restarts=%d progress=%.3f hardness=%.1f peakmembytes=%d\n",
					inst.Partition, inst.Status, inst.Time,
					st.Decisions, st.Conflicts, st.Propagations, st.MaxDepth, st.Backjumps, st.Restarts, st.Progress, inst.Hardness, st.PeakMemBytes)
			}
			if peakMem > 0 {
				fmt.Printf("peak solver memory: %d bytes (max over partitions)\n", peakMem)
			}
		}
		if res.Verdict == core.Unsafe {
			if res.Violation != nil {
				fmt.Printf("violation:  %v\n", res.Violation)
			}
			if *showTrace && res.Trace != nil {
				fmt.Printf("schedule:   %v\n", res.Trace)
			}
		}
	}
	if res.Verdict == core.Unsafe {
		os.Exit(1)
	}
}

// instConflictRate derives a whole-run conflicts/second figure for one
// partition's solve, the denominator of its hardness score.
func instConflictRate(inst parallel.InstanceResult) float64 {
	if secs := inst.Time.Seconds(); secs > 0 {
		return float64(inst.Stats.Conflicts) / secs
	}
	return 0
}

// profileRecords converts the profiler's capture index into report rows.
// Nil-safe: a run without -profile-dir contributes no rows.
func profileRecords(p *obs.Profiler) []report.ProfileRecord {
	entries := p.Entries()
	recs := make([]report.ProfileRecord, 0, len(entries))
	for _, e := range entries {
		recs = append(recs, report.ProfileRecord{Phase: e.Phase, Kind: e.Kind, Path: e.Path, Bytes: e.Bytes})
	}
	return recs
}

func loadProgram(input, benchmark string) (*prog.Program, error) {
	if benchmark != "" {
		switch benchmark {
		case "fibonacci":
			return bench.Fibonacci(2), nil
		case "boundedbuffer":
			return bench.Boundedbuffer(), nil
		case "eliminationstack":
			return bench.Eliminationstack(), nil
		case "safestack":
			return bench.Safestack(), nil
		case "workstealingqueue":
			return bench.Workstealingqueue(), nil
		default:
			return nil, fmt.Errorf("unknown benchmark %q", benchmark)
		}
	}
	if input == "" {
		return nil, fmt.Errorf("either -i or --benchmark is required")
	}
	data, err := os.ReadFile(input)
	if err != nil {
		return nil, err
	}
	return prog.Parse(string(data))
}

// dumpArtefacts prints intermediate artefacts: the (re)formatted source,
// the flattened sequentialized structure (the Fig. 3 artefact), or the
// bit-blasted formula in DIMACS format with the partitioning variables
// announced in comments.
func dumpArtefacts(p *prog.Program, dump, dimacs string, unwind, contexts, rounds, width int) error {
	if dump == "source" {
		fmt.Fprint(stdout, prog.Format(p))
		return nil
	}
	opts := core.Options{Unwind: unwind, Contexts: contexts, Rounds: rounds, Width: width}
	enc, fp, _, err := core.EncodeProgram(p, opts)
	if err != nil {
		return err
	}
	switch dump {
	case "flat":
		return flatten.Format(stdout, fp)
	case "":
	default:
		return fmt.Errorf("unknown dump artefact %q (want source | flat)", dump)
	}
	if dimacs != "" {
		f, err := os.Create(dimacs)
		if err != nil {
			return err
		}
		defer f.Close()
		// Comment header: the partitioning variables (tid LSBs), so
		// external solvers can reproduce the trace-space partitioning.
		fmt.Fprintf(f, "c parbmc: unwind=%d contexts=%d rounds=%d width=%d\n", unwind, contexts, rounds, width)
		for i, l := range enc.TidLSBs {
			if l != 0 {
				fmt.Fprintf(f, "c partition-var context=%d dimacs=%d\n", i, l.Dimacs())
			}
		}
		return cnf.WriteDimacs(f, enc.Formula())
	}
	return nil
}
