package main

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestTraceOutJSONL drives the -trace-out path end to end: parse a
// benchmark under a parse span, verify with the tracer attached, and
// check the emitted file is valid JSONL with one span per pipeline
// phase, correctly parented under the verify root.
func TestTraceOutJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tf, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.NewJSONLSink(tf))

	parseSpan := tracer.Start("parse")
	p, err := loadProgram("", "fibonacci")
	parseSpan.End()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Verify(context.Background(), p, core.Options{
		Unwind: 1, Contexts: 3, Cores: 2, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans := make(map[string]obs.Event)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		if e.Name == "" || e.ID == 0 || e.DurMicros < 0 || e.Time.IsZero() {
			t.Fatalf("malformed span event: %+v", e)
		}
		if _, dup := spans[e.Name]; dup {
			t.Fatalf("phase %q emitted more than one span", e.Name)
		}
		spans[e.Name] = e
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	verify, ok := spans["verify"]
	if !ok || verify.Parent != 0 {
		t.Fatalf("verify root span missing or parented: %+v", spans)
	}
	if parse, ok := spans["parse"]; !ok || parse.Parent != 0 {
		t.Fatalf("parse root span missing or parented: %+v", spans)
	}
	for _, phase := range []string{"unfold", "flatten", "encode", "partition", "solve"} {
		sp, ok := spans[phase]
		if !ok {
			t.Fatalf("missing %q span in trace file; got %d spans", phase, len(spans))
		}
		if sp.Parent != verify.ID {
			t.Fatalf("%q span parent %d, want verify id %d", phase, sp.Parent, verify.ID)
		}
	}
	if got := spans["verify"].Attrs["verdict"]; got != "SAFE" {
		t.Fatalf("verify verdict attr: %v", got)
	}
}
