package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// TestReportSubcommand drives run → report end to end in local mode:
// verify a benchmark with the flight recorder attached exactly as main
// does, write the report, then render it through the `parbmc report`
// subcommand and check the imbalance table.
func TestReportSubcommand(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "run.report.json")

	recorder := report.NewRecorder()
	spanColl := obs.NewCollectorSink()
	tracer := obs.NewTracer(spanColl).WithProc("parbmc")

	p, err := loadProgram("", "fibonacci")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := core.Verify(context.Background(), p, core.Options{
		Unwind: 1, Contexts: 3, Cores: 2, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	recorder.SetManifest(report.Manifest{
		Program: "fibonacci", Unwind: 1, Contexts: 3,
		Partitions: res.Partitions, Mode: "local", TraceID: tracer.TraceID(),
	})
	recorder.SetVerdict(res.Verdict.String(), time.Since(start))
	for _, inst := range res.Instances {
		recorder.Finish(report.PartitionRow{
			Partition:    inst.Partition,
			Verdict:      inst.Status.String(),
			Conflicts:    inst.Stats.Conflicts,
			Propagations: inst.Stats.Propagations,
			Progress:     inst.Stats.Progress,
			SolveMillis:  inst.Time.Milliseconds(),
		})
	}
	recorder.AddSpans(spanColl.Events())
	if err := recorder.WriteFile(reportPath); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	old := stdout
	stdout = &out
	defer func() { stdout = old }()
	if code := reportMain([]string{reportPath}); code != 0 {
		t.Fatalf("reportMain exit %d", code)
	}
	text := out.String()
	for _, want := range []string{
		"Run report: fibonacci (local)",
		"Verdict: SAFE",
		"Partition imbalance (" ,
		"Span tree:",
		"0 orphans",
		"Slowest spans:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report output missing %q:\n%s", want, text)
		}
	}
}

// TestReportSubcommandExtraSpans merges an extra JSONL span file whose
// spans parent under the report's own via a remote ref.
func TestReportSubcommandExtraSpans(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "run.report.json")
	spanPath := filepath.Join(dir, "worker.jsonl")

	r := report.NewRecorder()
	r.SetManifest(report.Manifest{Program: "x", Mode: "distributed", TraceID: "cafe"})
	r.AddSpans([]obs.Event{
		{Name: "coordinate", ID: 1, Proc: "coordinator", Trace: "cafe", DurMicros: 10},
		{Name: "job", ID: 2, Parent: 1, Proc: "coordinator", Trace: "cafe", DurMicros: 5},
	})
	if err := r.WriteFile(reportPath); err != nil {
		t.Fatal(err)
	}
	workerLines := `{"span":"worker_job","id":1,"proc":"w0.j0","trace":"cafe","remote":"coordinator/2","dur_us":4}` + "\n"
	if err := os.WriteFile(spanPath, []byte(workerLines), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	old := stdout
	stdout = &out
	defer func() { stdout = old }()
	if code := reportMain([]string{reportPath, spanPath}); code != 0 {
		t.Fatalf("reportMain exit %d", code)
	}
	if !strings.Contains(out.String(), "Span tree: 3 spans, 1 roots, 0 orphans") {
		t.Fatalf("extra span file not merged:\n%s", out.String())
	}
}

func TestReportSubcommandUsage(t *testing.T) {
	if code := reportMain(nil); code != 2 {
		t.Fatalf("no-arg exit %d, want 2", code)
	}
	if code := reportMain([]string{filepath.Join(t.TempDir(), "absent.json")}); code != 2 {
		t.Fatalf("missing-file exit %d, want 2", code)
	}
}
