package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestLoadProgramBenchmarks(t *testing.T) {
	for _, name := range []string{
		"fibonacci", "boundedbuffer", "eliminationstack", "safestack", "workstealingqueue",
	} {
		p, err := loadProgram("", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Main() == nil {
			t.Fatalf("%s: no main", name)
		}
	}
	if _, err := loadProgram("", "nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := loadProgram("", ""); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestLoadProgramFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mt")
	if err := os.WriteFile(path, []byte("int g;\nvoid main() { g = 1; assert(g == 1); }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Globals) != 1 {
		t.Fatalf("globals: %d", len(p.Globals))
	}
	if _, err := loadProgram(filepath.Join(dir, "missing.mt"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.mt")
	if err := os.WriteFile(bad, []byte("void main() { x = ; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadProgram(bad, ""); err == nil {
		t.Fatal("unparseable file accepted")
	}
}

func TestDumpSource(t *testing.T) {
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()

	p, err := loadProgram("", "fibonacci")
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpArtefacts(p, "source", "", 1, 3, 0, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "void main()") {
		t.Fatalf("source dump missing main:\n%s", buf.String())
	}
}

func TestDumpFlat(t *testing.T) {
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()

	p, err := loadProgram("", "fibonacci")
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpArtefacts(p, "flat", "", 1, 3, 0, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"thread 0 (main)", "block 0:", "create(thread"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flat dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpDimacs(t *testing.T) {
	p, err := loadProgram("", "fibonacci")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.cnf")
	if err := dumpArtefacts(p, "", path, 1, 3, 0, 8); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	formula, err := cnf.ReadDimacs(f)
	if err != nil {
		t.Fatalf("exported DIMACS does not parse: %v", err)
	}
	if formula.NumVars == 0 || formula.NumClauses() == 0 {
		t.Fatal("empty formula exported")
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "c partition-var") {
		t.Fatal("partition-variable comments missing")
	}
}

func TestDumpUnknownArtefact(t *testing.T) {
	p, err := loadProgram("", "fibonacci")
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpArtefacts(p, "nonsense", "", 1, 3, 0, 8); err == nil {
		t.Fatal("unknown artefact accepted")
	}
}
