package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/report"
)

// reportMain implements `parbmc report <run.report.json> [spans.jsonl …]`:
// load a run report written with -report, merge in any extra per-process
// span files (worker -trace-out output), and print the human-readable
// summary — partition imbalance table, merged span tree shape, slowest
// spans.
func reportMain(args []string) int {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: parbmc report <run.report.json> [spans.jsonl ...]")
		return 2
	}
	rep, err := report.Load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "parbmc report:", err)
		return 2
	}
	var extra [][]obs.Event
	for _, path := range args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parbmc report:", err)
			return 2
		}
		events, perr := obs.ParseJSONL(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(os.Stderr, "parbmc report: %s: %v\n", path, perr)
			return 2
		}
		extra = append(extra, events)
	}
	report.Render(stdout, rep, extra...)
	return 0
}
