// Command worker joins a distributed analysis: it connects to a
// coordinator (cmd/coordinator), receives partition-range jobs, runs the
// parallel verifier on its local cores, heartbeats while solving, and
// reports verdicts until the coordinator sends stop. With -reconnect it
// survives connection loss, redialing with exponential backoff + jitter.
//
// -connect accepts a comma-separated list of coordinator addresses for
// HA pairs (primary,standby): on connection loss the worker rotates
// through the list until it finds whichever coordinator currently holds
// the leadership lease, so a failover needs no worker restarts.
// -reconnect-timeout caps the total wall-clock retry budget per outage;
// when it expires the worker exits non-zero with the reason in its
// final log line.
//
// The -fault-* flags drive the deterministic fault-injection harness
// used to exercise the coordinator's retry and quarantine paths:
// transport faults (drop/stall/corrupt/half-open at a chosen job
// index), a solver panic (-fault-panic), a deterministic straggler
// delay (-fault-slow-ms, optionally scoped with -fault-slow-jobs) that
// keeps heartbeating while the job drags — visible only to the
// coordinator's adaptive scheduler — and Byzantine faults that lie
// about a computed result (-fault-flip, -fault-bogus-model,
// -fault-truncate-proof, -fault-oversize-proof) to exercise
// certificate rejection.
//
//	worker -connect host:9731,host2:9731 -cores 4 -reconnect 5 -reconnect-timeout 2m
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/distrib"
	"repro/internal/obs"
)

func main() {
	var (
		connect   = flag.String("connect", "127.0.0.1:9731", "coordinator address, or a comma-separated primary,standby list")
		pprofAddr = flag.String("pprof-addr", "", "serve /debug/pprof and /healthz on this address")
		cores     = flag.Int("cores", 1, "local solver instances per job")
		name      = flag.String("name", "", "worker name reported to the coordinator")
		traceOut  = flag.String("trace-out", "", "write this worker's spans as JSONL to this file (merge with `parbmc report`)")
		reconnect = flag.Int("reconnect", 0, "max consecutive reconnect attempts after connection loss (0: exit on loss)")
		backoff   = flag.Duration("backoff", 0, "base reconnect backoff (default 250ms)")
		reconnTO  = flag.Duration("reconnect-timeout", 0, "total wall-clock retry budget per outage (0: unbounded)")
		memLimit  = flag.Int64("mem-limit", 0, "arm the OOM watchdog at this many MiB of live heap (0: inherit GOMEMLIMIT)")
		memFrac   = flag.Float64("mem-trip-fraction", 0, "fraction of the memory limit at which the watchdog aborts the running chunk (default 0.9)")
		seed      = flag.Int64("fault-seed", 0, "seed for backoff jitter and the fault plan")
		dropAt    = flag.Int("fault-drop", -1, "drop the connection upon receiving this job index")
		halfAt    = flag.Int("fault-half-open", -1, "go half-open at this job index: TCP stays up, all sends silently vanish")
		corruptAt = flag.Int("fault-corrupt", -1, "send a corrupt frame in place of this job's result")
		stallAt   = flag.Int("fault-stall", -1, "go silent (no heartbeats) before running this job")
		stallFor  = flag.Duration("stall-for", 30*time.Second, "stall duration for -fault-stall")
		panicAt   = flag.Int("fault-panic", -1, "panic inside the solver path at this job index")
		flipAt    = flag.Int("fault-flip", -1, "flip this job's definite verdict (Byzantine)")
		bogusAt   = flag.Int("fault-bogus-model", -1, "claim UNSAFE with a garbage model at this job index (Byzantine)")
		truncAt   = flag.Int("fault-truncate-proof", -1, "send a truncated certificate for this job (Byzantine)")
		oversizAt = flag.Int("fault-oversize-proof", -1, "declare an oversized certificate for this job (Byzantine)")
		slowMS    = flag.Int64("fault-slow-ms", 0, "artificial pre-solve delay in milliseconds per affected job; the straggler keeps heartbeating (0 disables)")
		slowJobs  = flag.String("fault-slow-jobs", "", "comma-separated job indices to slow down (empty with -fault-slow-ms: every job)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		srv, _ := obs.Serve(*pprofAddr, obs.NewMux(obs.MuxOptions{Pprof: true}))
		defer srv.Close()
	}

	// -trace-out writes this worker's span events as JSONL. Job spans
	// adopt the coordinator's trace ID from the wire, so this file and
	// the coordinator's merge into one tree under `parbmc report`.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(2)
		}
		defer tf.Close()
		proc := *name
		if proc == "" {
			proc = "worker"
		}
		tracer = obs.NewTracer(obs.NewJSONLSink(tf)).WithProc(proc)
	}

	var plan *distrib.FaultPlan
	faultFlags := []struct {
		at   int
		kind distrib.FaultKind
	}{
		{*dropAt, distrib.FaultDrop},
		{*halfAt, distrib.FaultHalfOpen},
		{*corruptAt, distrib.FaultCorrupt},
		{*panicAt, distrib.FaultPanic},
		{*flipAt, distrib.FaultFlipVerdict},
		{*bogusAt, distrib.FaultBogusModel},
		{*truncAt, distrib.FaultTruncatedProof},
		{*oversizAt, distrib.FaultOversizedProof},
	}
	anyFault := *stallAt >= 0 || *seed != 0 || *slowMS > 0
	for _, ff := range faultFlags {
		anyFault = anyFault || ff.at >= 0
	}
	if anyFault {
		plan = &distrib.FaultPlan{Seed: *seed}
		for _, ff := range faultFlags {
			if ff.at >= 0 {
				plan.Events = append(plan.Events, distrib.FaultEvent{Job: ff.at, Kind: ff.kind})
			}
		}
		if *stallAt >= 0 {
			plan.Events = append(plan.Events, distrib.FaultEvent{Job: *stallAt, Kind: distrib.FaultStall, Stall: *stallFor})
		}
		if *slowMS > 0 {
			d := time.Duration(*slowMS) * time.Millisecond
			idxs, err := parseJobList(*slowJobs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "worker: -fault-slow-jobs: %v\n", err)
				os.Exit(2)
			}
			if len(idxs) == 0 {
				// A uniformly slow worker: every job it is handed drags.
				plan.Every = &distrib.FaultEvent{Kind: distrib.FaultSlow, Slow: d}
			} else {
				for _, j := range idxs {
					plan.Events = append(plan.Events, distrib.FaultEvent{Job: j, Kind: distrib.FaultSlow, Slow: d})
				}
			}
		}
	}

	// SIGTERM drains like SIGINT; the coordinator's heartbeat monitor
	// requeues whatever job this worker abandons.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	jobs, err := distrib.Work(ctx, *connect, distrib.WorkerOptions{
		Name:             *name,
		Cores:            *cores,
		MaxReconnects:    *reconnect,
		ReconnectBackoff: *backoff,
		ReconnectTimeout: *reconnTO,
		Faults:           plan,
		Tracer:           tracer,
		MemLimitBytes:    *memLimit << 20,
		MemTripFraction:  *memFrac,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v (after %d jobs)\n", err, jobs)
		os.Exit(2)
	}
	fmt.Printf("worker: done, %d jobs completed\n", jobs)
}

// parseJobList parses a comma-separated list of job indices.
func parseJobList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad job index %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
