// Command worker joins a distributed analysis: it connects to a
// coordinator (cmd/coordinator), receives partition-range jobs, runs the
// parallel verifier on its local cores, and reports verdicts until the
// coordinator sends stop.
//
//	worker -connect host:9731 -cores 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/distrib"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:9731", "coordinator address")
		cores   = flag.Int("cores", 1, "local solver instances per job")
		name    = flag.String("name", "", "worker name reported to the coordinator")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	jobs, err := distrib.Work(ctx, *connect, distrib.WorkerOptions{
		Name:  *name,
		Cores: *cores,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v (after %d jobs)\n", err, jobs)
		os.Exit(2)
	}
	fmt.Printf("worker: done, %d jobs completed\n", jobs)
}
