// Command satsolve is a standalone CDCL SAT solver over DIMACS CNF
// files, exposing the solver that backs the verifier (the reproduction's
// MiniSat 2.2 stand-in). It prints s SATISFIABLE / s UNSATISFIABLE and a
// v model line, following SAT-competition output conventions.
//
//	satsolve formula.cnf
//	satsolve -cores 4 -portfolio sharing formula.cnf
//	satsolve -assume "3 -7" formula.cnf
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/sat"
)

// emitAndCheckProof serialises the refutation to DRAT text and, with
// check, round-trips it through the parser and the RUP checker — so what
// is verified is the emitted artifact, not the in-memory log it came
// from.
func emitAndCheckProof(formula *cnf.Formula, assumptions []cnf.Lit, proof *sat.Proof, path string, check bool) error {
	var buf strings.Builder
	if err := sat.WriteDRAT(&buf, proof); err != nil {
		return err
	}
	text := buf.String()
	if path != "" {
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("c proof written to %s (%d lemmas, %d literals)\n", path, proof.NumLemmas(), proof.NumLits())
		if check {
			// Verify the file actually written, not the buffer.
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			text = string(data)
		}
	}
	if check {
		parsed, err := sat.ParseDRAT(strings.NewReader(text))
		if err != nil {
			return fmt.Errorf("proof re-parse failed: %w", err)
		}
		if err := sat.CheckRUP(formula, assumptions, parsed); err != nil {
			return fmt.Errorf("proof check failed: %w", err)
		}
		fmt.Printf("c proof verified (%d lemmas, %d literals)\n", parsed.NumLemmas(), parsed.NumLits())
	}
	return nil
}

func main() {
	var (
		cores      = flag.Int("cores", 1, "parallel solver instances")
		style      = flag.String("portfolio", "sharing", "portfolio style: sharing | diverse")
		assume     = flag.String("assume", "", "space-separated DIMACS literals to assume")
		stats      = flag.Bool("stats", false, "print search statistics")
		noModel    = flag.Bool("no-model", false, "suppress the v line")
		maxConfl   = flag.Int64("max-conflicts", 0, "conflict budget (0 = unbounded)")
		memBudget  = flag.Int64("mem-budget", 0, "per-instance solver memory budget in MiB; over it the solver sheds learnt clauses, then gives up UNKNOWN (0 = unbounded)")
		progress   = flag.Int64("progress", 0, "print live search progress every N conflicts (0 disables)")
		pprofAddr  = flag.String("pprof-addr", "", "serve /debug/pprof and /healthz on this address")
		proofPath  = flag.String("proof", "", "on UNSAT, write a DRAT-style refutation proof to this file (single-instance mode)")
		check      = flag.Bool("check", false, "on UNSAT, re-parse the emitted proof and re-verify it by RUP checking (single-instance mode)")
		profileDir = flag.String("profile-dir", "", "capture pprof CPU+heap profiles of the solve phase into this directory")
	)
	flag.Parse()
	var profiler *obs.Profiler
	if *profileDir != "" {
		var perr error
		profiler, perr = obs.NewProfiler(*profileDir, "satsolve")
		if perr != nil {
			fmt.Fprintln(os.Stderr, "satsolve:", perr)
			os.Exit(2)
		}
	}
	if *pprofAddr != "" {
		srv, _ := obs.Serve(*pprofAddr, obs.NewMux(obs.MuxOptions{Pprof: true}))
		defer srv.Close()
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [flags] formula.cnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsolve:", err)
		os.Exit(2)
	}
	formula, err := cnf.ReadDimacs(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsolve:", err)
		os.Exit(2)
	}

	var assumptions []cnf.Lit
	for _, tok := range strings.Fields(*assume) {
		n, err := strconv.Atoi(tok)
		if err != nil || n == 0 {
			fmt.Fprintf(os.Stderr, "satsolve: bad assumption %q\n", tok)
			os.Exit(2)
		}
		assumptions = append(assumptions, cnf.FromDimacs(n))
	}

	var status sat.Status
	var model []bool
	var searchStats []sat.Stats

	// liveProgress prints one c-line per snapshot to stderr, so piping
	// the s/v lines stays clean while a long solve shows it is alive.
	liveProgress := func(instance int, st sat.Stats) {
		fmt.Fprintf(os.Stderr, "c progress instance=%d decisions=%d conflicts=%d propagations=%d restarts=%d estimate=%.6f\n",
			instance, st.Decisions, st.Conflicts, st.Propagations, st.Restarts, st.Progress)
	}

	wantProof := *proofPath != "" || *check
	profiler.StartPhase("solve")
	if *cores > 1 && len(assumptions) == 0 {
		if wantProof {
			// Portfolio instances exchange clauses, so no single instance's
			// log is a self-contained refutation.
			fmt.Fprintln(os.Stderr, "satsolve: -proof/-check require single-instance mode (-cores 1)")
			os.Exit(2)
		}
		st := portfolio.StyleSharing
		if *style == "diverse" {
			st = portfolio.StyleDiverse
		}
		popts := portfolio.Options{
			Cores:         *cores,
			Style:         st,
			InstanceMemMB: *memBudget,
		}
		if *progress > 0 {
			popts.Progress = liveProgress
			popts.ProgressEvery = *progress
		}
		res, err := portfolio.Solve(context.Background(), formula, popts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "satsolve:", err)
			os.Exit(2)
		}
		status, model, searchStats = res.Status, res.Model, res.Stats
	} else {
		s := sat.NewFromFormula(formula, sat.Options{
			MaxConflicts: *maxConfl, MemBudgetMB: *memBudget, ProgressEvery: *progress,
		})
		if *progress > 0 {
			s.Progress = func(st sat.Stats) { liveProgress(0, st) }
		}
		if wantProof {
			s.EnableProof()
		}
		status, err = s.Solve(assumptions...)
		if err == sat.ErrMemBudget {
			// A structured give-up, not a failure: report UNKNOWN with the
			// cause named, like a conflict-budget exhaustion.
			fmt.Printf("c memory budget exhausted (%d MiB, peak %d bytes)\n", *memBudget, s.PeakBytes())
			status, err = sat.Unknown, nil
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "satsolve:", err)
			os.Exit(2)
		}
		if status == sat.Sat {
			model = s.Model()
		}
		searchStats = []sat.Stats{s.Stats()}
		if status == sat.Unsat && wantProof {
			if err := emitAndCheckProof(formula, assumptions, s.ProofLog(), *proofPath, *check); err != nil {
				fmt.Fprintln(os.Stderr, "satsolve:", err)
				os.Exit(2)
			}
		}
	}
	profiler.EndPhase("solve")
	if perr := profiler.Err(); perr != nil {
		fmt.Fprintln(os.Stderr, "satsolve: profile capture:", perr)
	}
	for _, e := range profiler.Entries() {
		fmt.Printf("c profile %s %s written to %s (%d bytes)\n", e.Phase, e.Kind, e.Path, e.Bytes)
	}

	if *stats {
		for i, st := range searchStats {
			fmt.Printf("c instance %d: decisions=%d conflicts=%d propagations=%d maxdepth=%d backjumps=%d restarts=%d progress=%.6f membytes=%d peakmembytes=%d memshrinks=%d\n",
				i, st.Decisions, st.Conflicts, st.Propagations, st.MaxDepth, st.Backjumps, st.Restarts, st.Progress,
				st.MemBytes, st.PeakMemBytes, st.MemShrinks)
		}
	}
	switch status {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if !*noModel {
			var b strings.Builder
			b.WriteString("v")
			for v := 1; v <= formula.NumVars; v++ {
				lit := v
				if !model[v-1] {
					lit = -v
				}
				fmt.Fprintf(&b, " %d", lit)
			}
			b.WriteString(" 0")
			fmt.Println(b.String())
		}
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
	}
}
