package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The comparator's exit codes are the CI contract: 0 clean, 1 gate
// violation, 2 usage error. Exercise all three through compareMain.
func TestCompareMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if got := compareMain(dir, "", 1.25, 0); got != 2 {
		t.Errorf("empty dir: exit %d, want 2", got)
	}

	write("BENCH_2026-08-01.json", `{"date":"2026-08-01","suite":"table2","entries":[
		{"instance":"fibonacci","unwind":1,"contexts":2,"cores":1,"wall_ms":100,"conflicts":50,"verdict":"SAFE"}]}`)
	write("BENCH_2026-08-02.json", `{"date":"2026-08-02","suite":"table2","entries":[
		{"instance":"fibonacci","unwind":1,"contexts":2,"cores":1,"wall_ms":105,"conflicts":50,"verdict":"SAFE"}]}`)
	if got := compareMain(dir, "", 1.25, 0); got != 0 {
		t.Errorf("clean trajectory: exit %d, want 0", got)
	}

	// A -candidate regressing 2x beyond the gate must fail.
	cand := filepath.Join(dir, "candidate.json")
	if err := os.WriteFile(cand, []byte(`{"date":"2026-08-03","suite":"table2","entries":[
		{"instance":"fibonacci","unwind":1,"contexts":2,"cores":1,"wall_ms":210,"conflicts":90,"verdict":"SAFE"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := compareMain(dir, cand, 1.25, 0); got != 1 {
		t.Errorf("regressing candidate: exit %d, want 1", got)
	}
	// The same candidate passes with the gate loosened.
	if got := compareMain(dir, cand, 3.0, 0); got != 0 {
		t.Errorf("loose gate: exit %d, want 0", got)
	}

	if got := compareMain(dir, filepath.Join(dir, "missing.json"), 1.25, 0); got != 2 {
		t.Errorf("missing candidate: exit %d, want 2", got)
	}
}
