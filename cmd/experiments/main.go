// Command experiments regenerates the paper's evaluation (Sect. 4):
// Table 1 (benchmark characteristics), Table 2 (scalability of the
// partitioned analysis), Tables 3 and 4 (general-purpose parallel solver
// baselines), Figure 6 (decision-graph statistics), Figure 7
// (distributed analysis of Safestack), plus the ablation studies
// motivated by Sect. 3.3 and the future-work discussion of Sect. 6.
//
//	experiments                  # everything, laptop scale
//	experiments -only table2     # a single table/figure
//	experiments -full            # include the most expensive cells
//	experiments -cores 1,2,4     # override the parallelism column
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/portfolio"
)

func main() {
	var (
		only  = flag.String("only", "", "run one experiment: table1|table2|table3|table4|fig6|fig7|certify|ablations")
		full  = flag.Bool("full", false, "include the most expensive configurations")
		cores = flag.String("cores", "1,2,4,8", "comma-separated core counts")
		dot   = flag.String("dot", "", "directory for Graphviz decision graphs (fig6)")
		bench = flag.String("bench-out", "", "write Table 2 measurements as a BENCH_<date>.json perf-trajectory file")

		splitDepth = flag.Int("split-depth", 0, "adaptive cube splitting in the Table 2 runs: max extra split bits (0 disables; real mode only)")
		splitGrace = flag.Duration("split-grace", 0, "minimum solving age before a partition may be split (default 15s)")
		splitHard  = flag.Float64("split-hardness", 0, "minimum live hardness before a partition qualifies for splitting")

		compare   = flag.Bool("compare", false, "compare committed BENCH_*.json trajectory files instead of running experiments")
		benchDir  = flag.String("bench-dir", ".", "directory holding BENCH_*.json files (-compare)")
		candidate = flag.String("candidate", "", "compare this bench file against the latest committed one instead of the last two (-compare)")
		gate      = flag.Float64("gate", 1.25, "regression gate: fail when head wall time exceeds base by this factor (-compare; 0 disables)")
		minBase   = flag.Int64("min-base-ms", 250, "noise floor: cells with base wall time under this are not wall-gated (-compare)")
	)
	flag.Parse()

	if *compare {
		os.Exit(compareMain(*benchDir, *candidate, *gate, *minBase))
	}

	cfg := experiments.DefaultConfig()
	cfg.Full = *full
	cfg.SplitDepth = *splitDepth
	cfg.SplitGrace = *splitGrace
	cfg.SplitHardness = *splitHard
	cfg.Cores = nil
	for _, tok := range strings.Split(*cores, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad core count %q\n", tok)
			os.Exit(2)
		}
		cfg.Cores = append(cfg.Cores, n)
	}

	ctx := context.Background()
	w := os.Stdout
	run := func(name string) bool { return *only == "" || *only == name }

	var table2 []experiments.Table2Row
	var err error

	if run("table1") {
		experiments.Table1(w)
		fmt.Fprintln(w)
	}
	if run("table2") || run("table3") || run("table4") {
		table2, err = experiments.Table2(ctx, w, cfg)
		check(err)
		check(experiments.VerdictsConsistent(table2))
		fmt.Fprintln(w)
		if *bench != "" {
			check(experiments.WriteBench(*bench, table2))
			fmt.Fprintf(w, "bench file written to %s\n\n", *bench)
		}
	}
	if run("table3") {
		_, err = experiments.Table34(ctx, w, cfg, portfolio.StyleSharing, table2)
		check(err)
		fmt.Fprintln(w)
	}
	if run("table4") {
		_, err = experiments.Table34(ctx, w, cfg, portfolio.StyleDiverse, table2)
		check(err)
		fmt.Fprintln(w)
	}
	if run("fig6") {
		_, err = experiments.Fig6(ctx, w, *dot)
		check(err)
		fmt.Fprintln(w)
	}
	if run("fig7") {
		_, err = experiments.Fig7(ctx, w, cfg)
		check(err)
		fmt.Fprintln(w)
	}
	if run("certify") {
		check(experiments.CertifyOverhead(ctx, w))
		fmt.Fprintln(w)
	}
	if run("ablations") {
		check(experiments.AblationScheduler(ctx, w))
		check(experiments.AblationPartitions(ctx, w))
		check(experiments.AblationFreeze(ctx, w))
		check(experiments.AblationPreprocess(ctx, w))
		check(experiments.AblationWidth(ctx, w))
		check(experiments.ExtensionSampling(ctx, w))
	}
}

// compareMain runs the bench-trajectory comparator: load every
// committed BENCH_*.json (plus an optional uncommitted -candidate as
// head), diff the last two, and fail the gate on regressions. Exit
// codes: 0 clean, 1 gate violation, 2 usage/IO error.
func compareMain(dir, candidate string, gate float64, minBaseMillis int64) int {
	files, err := experiments.LoadBenchDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if candidate != "" {
		nb, err := experiments.LoadBenchFile(candidate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		files = append(files, nb)
	}
	if len(files) < 2 {
		fmt.Fprintf(os.Stderr, "experiments: -compare needs at least two bench files (found %d in %s); run `make bench` to record one\n", len(files), dir)
		return 2
	}
	base, head := files[len(files)-2], files[len(files)-1]
	deltas := experiments.CompareBench(base, head, gate, minBaseMillis)
	experiments.WriteCompare(os.Stdout, files, deltas, gate, minBaseMillis)
	if experiments.Regressions(deltas) > 0 {
		return 1
	}
	return 0
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
