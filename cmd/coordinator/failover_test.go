package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
)

// waitForFile polls until path exists and pred over its content holds.
func waitForFile(t *testing.T, path string, timeout time.Duration, pred func([]byte) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && pred(data) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never reached the expected state", path)
}

// Hot-standby failover across real processes: primary and standby
// coordinators share a lease file, one worker knows both addresses,
// and the primary is SIGKILLed mid-run — while results and their
// certificate streams are in flight — after two of four chunks
// committed. The standby must take over from its live-replicated
// journal and finish with the same certified SAFE verdict a
// failure-free run produces, with the single worker process never
// restarting.
func TestHAFailoverAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds binaries")
	}
	dir := t.TempDir()
	coordBin, workerBin := buildBinaries(t, dir)
	progPath := filepath.Join(dir, "fib.mt")
	if err := os.WriteFile(progPath, []byte(fibSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	leasePath := filepath.Join(dir, "lease.json")
	jnlA := filepath.Join(dir, "a.wal")
	jnlB := filepath.Join(dir, "b.wal")
	commonArgs := []string{
		"-i", progPath,
		"-unwind", "1", "-contexts", "3", "-partitions", "4", "-chunk", "1",
		"-lease", leasePath, "-lease-ttl", "1s",
	}

	// Primary A.
	coordA := exec.Command(coordBin, append([]string{
		"-listen", "127.0.0.1:0", "-journal", jnlA, "-holder", "alpha"}, commonArgs...)...)
	outA, err := coordA.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coordA.Stderr = os.Stderr
	if err := coordA.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordA.Process.Kill()
	lcA := capture(outA)
	listenA := lcA.waitLine(t, "listening on", 30*time.Second)
	addrA := strings.Fields(listenA)[3]
	// A must hold the lease before B starts, so roles are deterministic.
	waitForFile(t, leasePath, 30*time.Second, func(data []byte) bool {
		return bytes.Contains(data, []byte(`"holder":"alpha"`))
	})

	// Standby B.
	coordB := exec.Command(coordBin, append([]string{
		"-listen", "127.0.0.1:0", "-journal", jnlB, "-holder", "beta"}, commonArgs...)...)
	outB, err := coordB.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coordB.Stderr = os.Stderr
	if err := coordB.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordB.Process.Kill()
	lcB := capture(outB)
	listenB := lcB.waitLine(t, "listening on", 30*time.Second)
	addrB := strings.Fields(listenB)[3]
	// B's replica file appearing proves the replication stream is live.
	waitForFile(t, jnlB, 30*time.Second, func([]byte) bool { return true })

	// One worker, both addresses, one process for the whole scenario.
	// The stall at job 2 freezes the run with exactly two committed
	// chunks, giving the kill a deterministic window; jobs stream
	// results *and* full certificates, so the SIGKILL lands amid
	// certificate traffic.
	worker := exec.Command(workerBin,
		"-connect", addrA+","+addrB, "-name", "w0",
		"-reconnect", "20", "-backoff", "50ms", "-reconnect-timeout", "60s",
		"-fault-stall", "2", "-stall-for", "3s")
	var wout bytes.Buffer
	worker.Stdout = &wout
	worker.Stderr = os.Stderr
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer worker.Process.Kill()

	// Wait for two durable records on the primary, then SIGKILL it: no
	// stop messages, no journal close, no lease release.
	waitUntil := time.Now().Add(60 * time.Second)
	for {
		if _, recs, err := journal.Read(jnlA); err == nil && len(recs) >= 2 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("primary journal never reached 2 committed chunks")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := coordA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = coordA.Wait()

	// The standby must promote and finish the run on its own.
	if err := coordB.Wait(); err != nil {
		t.Fatalf("standby coordinator: %v\n%s", err, lcB.text())
	}
	if err := worker.Wait(); err != nil {
		t.Fatalf("worker (must survive the failover without restarting): %v\n%s", err, wout.String())
	}

	out := lcB.text()
	if !strings.Contains(out, "verdict: SAFE") {
		t.Fatalf("failover verdict differs from a failure-free run:\n%s", out)
	}
	if !strings.Contains(out, "coverage: 4/4 chunks decided") {
		t.Fatalf("standby did not decide all chunks:\n%s", out)
	}
	if !strings.Contains(out, "0 certificates rejected") {
		t.Fatalf("certification line missing or rejections recorded:\n%s", out)
	}
	if !strings.Contains(wout.String(), "done,") {
		t.Fatalf("worker did not end with a clean stop:\n%s", wout.String())
	}

	// The promoted journal is consistent and fully certified: all four
	// chunks, every verdict SAFE with a verified certificate.
	m, recs, err := journal.Read(jnlB)
	if err != nil {
		t.Fatalf("standby journal: %v", err)
	}
	if m.Partitions != 4 {
		t.Fatalf("standby journal manifest %+v", m)
	}
	if len(recs) != 4 {
		t.Fatalf("standby journal has %d records, want 4:\n%+v", len(recs), recs)
	}
	seen := map[int]bool{}
	for _, rec := range recs {
		if rec.Verdict != core.Safe.String() || !rec.Certified {
			t.Fatalf("record %+v, want certified SAFE", rec)
		}
		seen[rec.From] = true
	}
	if len(seen) != 4 {
		t.Fatalf("journal covers %v, want all 4 chunks", seen)
	}
}
