package main

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// TestReplicationHealth checks the /healthz replication block folds the
// registry's standby gauges into JSON-friendly values: standby count
// and per-standby journal lag keyed by standby name.
func TestReplicationHealth(t *testing.T) {
	reg := obs.NewRegistry()
	got := replicationHealth(reg)
	if got["standbys_connected"] != 0 {
		t.Fatalf("empty registry standbys: %v", got["standbys_connected"])
	}
	if lag := got["lag_records"].(map[string]int64); len(lag) != 0 {
		t.Fatalf("empty registry lag: %v", lag)
	}

	reg.Gauge("parbmc_standbys_connected",
		"Standby coordinators currently attached to the replication stream.").Add(1)
	reg.Gauge("parbmc_replication_lag_records", "lag", "standby", "standby-b").Set(3)
	got = replicationHealth(reg)
	if got["standbys_connected"] != 1 {
		t.Fatalf("standbys: %v, want 1", got["standbys_connected"])
	}
	lag := got["lag_records"].(map[string]int64)
	if lag["standby-b"] != 3 {
		t.Fatalf("lag: %v, want standby-b=3", lag)
	}

	// The block must survive JSON encoding — it is embedded verbatim in
	// the /healthz response.
	data, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"standbys_connected":1`, `"standby-b":3`} {
		if !json.Valid(data) || !contains(string(data), want) {
			t.Fatalf("healthz JSON %s missing %s", data, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
