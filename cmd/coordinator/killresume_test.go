package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

const fibSrc = `
int i, j;
void t1() {
  int k = 0;
  while (k < 1) { i = i + j; k = k + 1; }
}
void t2() {
  int k = 0;
  while (k < 1) { j = j + i; k = k + 1; }
}
void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 3);
  assert(i < 3);
}
`

// buildBinaries compiles the coordinator and worker commands into dir.
func buildBinaries(t *testing.T, dir string) (coord, worker string) {
	t.Helper()
	coord = filepath.Join(dir, "coordinator")
	worker = filepath.Join(dir, "worker")
	for bin, pkg := range map[string]string{coord: ".", worker: "../worker"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return coord, worker
}

// lineCapture tees a process stream into a buffer and signals a channel
// for each line, so the test can both wait on live output and inspect
// the transcript afterwards.
type lineCapture struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func capture(r io.Reader) *lineCapture {
	lc := &lineCapture{lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			lc.mu.Lock()
			lc.buf.WriteString(sc.Text())
			lc.buf.WriteByte('\n')
			lc.mu.Unlock()
			select {
			case lc.lines <- sc.Text():
			default:
			}
		}
		close(lc.lines)
	}()
	return lc
}

func (lc *lineCapture) text() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.buf.String()
}

// waitLine blocks until a line containing substr appears or the timeout
// elapses; it returns the matching line.
func (lc *lineCapture) waitLine(t *testing.T, substr string, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-lc.lines:
			if !ok {
				t.Fatalf("stream closed while waiting for %q; output so far:\n%s", substr, lc.text())
			}
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("no %q within %v; output so far:\n%s", substr, timeout, lc.text())
		}
	}
}

// The acceptance scenario end to end with real processes: a coordinator
// journaling to disk is SIGKILLed (no cleanup whatsoever) after two of
// four chunks committed; a second coordinator started with -resume
// reaches the same verdict as an uninterrupted run while re-solving only
// the two uncommitted chunks.
func TestKillAndResumeAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds binaries")
	}
	dir := t.TempDir()
	coordBin, workerBin := buildBinaries(t, dir)
	progPath := filepath.Join(dir, "fib.mt")
	if err := os.WriteFile(progPath, []byte(fibSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	jnlPath := filepath.Join(dir, "run.wal")
	coordArgs := []string{
		"-listen", "127.0.0.1:0", "-i", progPath,
		"-unwind", "1", "-contexts", "3", "-partitions", "4", "-chunk", "1",
		"-journal", jnlPath,
	}

	// Phase 1: coordinator + a worker that completes jobs 0 and 1, then
	// goes silent on job 2 — freezing the run with exactly two committed
	// chunks in the journal.
	coord1 := exec.Command(coordBin, coordArgs...)
	coordOut1, err := coord1.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord1.Stderr = os.Stderr
	if err := coord1.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord1.Process.Kill()
	lc1 := capture(coordOut1)
	listen := lc1.waitLine(t, "listening on", 30*time.Second)
	addr := strings.Fields(listen)[3] // "coordinator: listening on ADDR (...)"

	worker1 := exec.Command(workerBin,
		"-connect", addr, "-name", "mortal",
		"-fault-stall", "2", "-stall-for", "120s")
	worker1.Stdout = os.Stderr
	worker1.Stderr = os.Stderr
	if err := worker1.Start(); err != nil {
		t.Fatal(err)
	}
	defer worker1.Process.Kill()

	// Wait for exactly two durable chunk records.
	waitUntil := time.Now().Add(60 * time.Second)
	for {
		if _, recs, err := journal.Read(jnlPath); err == nil && len(recs) >= 2 {
			if len(recs) != 2 {
				t.Fatalf("journal holds %d records, want 2 (stall did not freeze the run)", len(recs))
			}
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("journal never reached 2 committed chunks")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL: no deferred cleanup, no journal close, mid-run.
	if err := coord1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = coord1.Wait()
	_ = worker1.Process.Kill()
	_ = worker1.Wait()

	// Phase 2: resume with a healthy worker.
	coord2 := exec.Command(coordBin, append(coordArgs, "-resume")...)
	coordOut2, err := coord2.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord2.Stderr = os.Stderr
	if err := coord2.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord2.Process.Kill()
	lc2 := capture(coordOut2)
	listen2 := lc2.waitLine(t, "listening on", 30*time.Second)
	addr2 := strings.Fields(listen2)[3]

	worker2 := exec.Command(workerBin, "-connect", addr2, "-name", "healthy")
	var w2out bytes.Buffer
	worker2.Stdout = &w2out
	worker2.Stderr = os.Stderr
	if err := worker2.Start(); err != nil {
		t.Fatal(err)
	}
	defer worker2.Process.Kill()

	if err := coord2.Wait(); err != nil {
		t.Fatalf("resumed coordinator: %v\n%s", err, lc2.text())
	}
	if err := worker2.Wait(); err != nil {
		t.Fatalf("healthy worker: %v\n%s", err, w2out.String())
	}
	out := lc2.text()
	if !strings.Contains(out, "verdict: SAFE") {
		t.Fatalf("resumed verdict differs from a clean run:\n%s", out)
	}
	if !strings.Contains(out, "coverage: 4/4 chunks decided, 2 resumed from journal") {
		t.Fatalf("coverage line missing or wrong:\n%s", out)
	}
	// The committed chunks must not have been re-solved: the healthy
	// worker only ever saw the two uncommitted ones.
	if !strings.Contains(w2out.String(), "done, 2 jobs completed") {
		t.Fatalf("worker re-solved committed chunks:\n%s", w2out.String())
	}
	if _, recs, err := journal.Read(jnlPath); err != nil || len(recs) != 4 {
		t.Fatalf("final journal: %d records (%v), want 4", len(recs), err)
	}
}

// A second coordinator pointed at the same journal without -resume must
// refuse to start rather than clobber or silently adopt it.
func TestJournalRefusedWithoutResumeFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds binaries")
	}
	dir := t.TempDir()
	coordBin, _ := buildBinaries(t, dir)
	progPath := filepath.Join(dir, "fib.mt")
	if err := os.WriteFile(progPath, []byte(fibSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	jnlPath := filepath.Join(dir, "run.wal")
	// Seed a journal file via the journal package itself (any manifest
	// will do: the refusal triggers on existence, before matching).
	j, err := journal.Open(jnlPath, journal.Manifest{ProgramSHA256: "seed", Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	out, err := exec.Command(coordBin,
		"-listen", "127.0.0.1:0", "-i", progPath,
		"-partitions", "4", "-journal", jnlPath).CombinedOutput()
	if err == nil {
		t.Fatalf("coordinator started over an existing journal:\n%s", out)
	}
	if !strings.Contains(string(out), "already exists") {
		t.Fatalf("unexpected failure mode:\n%s", out)
	}
}
