// Command coordinator serves a distributed analysis over TCP: it splits
// the trace-space partitions into chunks and hands them to connecting
// workers (cmd/worker), terminating everyone as soon as one worker finds
// a counterexample. This implements the cross-machine termination that
// the paper's prototype left as future work.
//
//	coordinator -listen :9731 -i program.mt --unwind 2 --contexts 5 --partitions 16
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/prog"
)

func main() {
	var (
		listen     = flag.String("listen", ":9731", "listen address")
		input      = flag.String("i", "", "input program file")
		unwind     = flag.Int("unwind", 1, "loop/recursion unwinding bound")
		contexts   = flag.Int("contexts", 1, "number of execution contexts")
		width      = flag.Int("width", 8, "integer bit width")
		partitions = flag.Int("partitions", 8, "total trace-space partitions (power of two)")
		chunk      = flag.Int("chunk", 0, "partitions per work unit (default partitions/8)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "coordinator: -i is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	p, err := prog.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	fmt.Printf("coordinator: listening on %s (%d partitions)\n", ln.Addr(), *partitions)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := distrib.Coordinate(ctx, ln, p, distrib.CoordinatorOptions{
		Unwind:     *unwind,
		Contexts:   *contexts,
		Width:      *width,
		Partitions: *partitions,
		ChunkSize:  *chunk,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	fmt.Printf("verdict: %v (winner partition %d, %d jobs, %d reassigned, %v)\n",
		res.Verdict, res.Winner, res.Jobs, res.Reassigned, res.Wall)
	if res.Verdict == core.Unsafe {
		os.Exit(1)
	}
}
