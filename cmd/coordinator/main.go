// Command coordinator serves a distributed analysis over TCP: it splits
// the trace-space partitions into chunks and hands them to connecting
// workers (cmd/worker), terminating everyone as soon as one worker finds
// a counterexample. This implements the cross-machine termination that
// the paper's prototype left as future work.
//
// Worker churn is tolerated: failed chunks are retried up to -max-attempts
// times before being quarantined, stalled workers are evicted by
// heartbeat (-heartbeat), and the run ends with Unknown plus a failure
// log — rather than hanging — if no workers remain for -drain-timeout.
//
// With -metrics-addr the coordinator serves /metrics (Prometheus text
// format: chunk/worker gauges, aggregated remote solver counters, live
// per-worker conflict gauges fed by heartbeats) and /healthz (the
// worker-health registry as JSON, plus the HA role when -lease is set),
// plus pprof with -pprof:
//
//	coordinator -listen :9731 -metrics-addr :9100 -i program.mt --unwind 2 --contexts 5 --partitions 16
//
// With -lease two coordinators form a hot-standby pair: whichever
// acquires the shared lease file runs the analysis as primary; the
// other serves as a warm standby, live-replicating the primary's
// journal into its own -journal path, and promotes automatically —
// resuming from the replica — when the primary's lease expires. Point
// workers at both with a comma-separated -coordinator list.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/prog"
)

func main() {
	var (
		listen     = flag.String("listen", ":9731", "listen address")
		input      = flag.String("i", "", "input program file")
		unwind     = flag.Int("unwind", 1, "loop/recursion unwinding bound")
		contexts   = flag.Int("contexts", 1, "number of execution contexts")
		width      = flag.Int("width", 8, "integer bit width")
		partitions = flag.Int("partitions", 8, "total trace-space partitions (power of two)")
		chunk      = flag.Int("chunk", 0, "partitions per work unit (default partitions/8)")
		jobTO      = flag.Duration("job-timeout", 0, "per-job timeout (default 10m)")
		attempts   = flag.Int("max-attempts", 0, "per-chunk failure budget before quarantine (default 3)")
		heartbeat  = flag.Duration("heartbeat", 0, "worker heartbeat interval (default 5s, negative disables)")
		drainTO    = flag.Duration("drain-timeout", 0, "give up when no workers remain for this long (default 30s)")
		metricAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty disables)")
		pprofOn    = flag.Bool("pprof", false, "also mount /debug/pprof on the metrics address")
		journal    = flag.String("journal", "", "crash-safe run journal path (commit every chunk verdict)")
		resume     = flag.Bool("resume", false, "resume from an existing -journal, skipping committed chunks")
		chunkTO    = flag.Duration("chunk-timeout", 0, "per-chunk wall-clock budget on workers (0: unbounded)")
		chunkConfl = flag.Int64("chunk-conflicts", 0, "per-chunk solver conflict budget on workers (0: unbounded)")
		memBudget  = flag.Int64("mem-budget", 0, "per-partition solver memory budget on workers, in MiB (0: unbounded)")
		memPause   = flag.Float64("mem-pause-ratio", 0, "pause job dispatch while any worker's heartbeat memory fill ratio is at or above this (default 0.95, negative disables)")
		certify    = flag.String("certify", "full", "remote verdict certification: full | sample=N | off")
		splitDepth = flag.Int("split-depth", 0, "adaptive cube splitting: max extra split bits per chunk (0 disables)")
		splitGrace = flag.Duration("split-grace", 0, "minimum in-flight age before a chunk may be split or hedged (default 15s)")
		splitHard  = flag.Float64("split-hardness", 0, "minimum live hardness before a chunk qualifies for splitting (0: any straggler past -split-grace)")
		hedge      = flag.Bool("hedge", false, "speculatively re-dispatch the longest-running chunk to idle workers, racing duplicates")
		lease      = flag.String("lease", "", "shared leadership lease file: run as an HA primary/standby pair (requires -journal)")
		leaseTTL   = flag.Duration("lease-ttl", 15*time.Second, "leadership lease duration; bounds the failover blackout")
		holder     = flag.String("holder", "", "this coordinator's name in the lease (default: the listen address)")
		advertise  = flag.String("advertise", "", "address advertised in the lease for workers and the standby (default: the bound listen address)")
		traceOut   = flag.String("trace-out", "", "write coordinator spans as JSONL to this file (workers join the trace over the wire)")
		reportOut  = flag.String("report", "", "write the run's flight-recorder report (JSON) to this file; render with `parbmc report`")
		snapshotIv = flag.Duration("report-snapshots", 5*time.Second, "metrics snapshot cadence captured into -report (0 disables)")
		profileDir = flag.String("profile-dir", "", "capture pprof CPU+heap profiles of the coordination phase into this directory")
	)
	flag.Parse()
	var profiler *obs.Profiler
	if *profileDir != "" {
		var perr error
		profiler, perr = obs.NewProfiler(*profileDir, "coordinator")
		if perr != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", perr)
			os.Exit(2)
		}
	}
	certPolicy, err := distrib.ParseCertifyPolicy(*certify)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "coordinator: -i is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	p, err := prog.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	fmt.Printf("coordinator: listening on %s (%d partitions)\n", ln.Addr(), *partitions)

	var haState *distrib.HAState
	if *lease != "" {
		haState = &distrib.HAState{}
	}
	var (
		metrics *obs.Registry
		health  *distrib.HealthRegistry
	)
	if *metricAddr != "" {
		metrics = obs.NewRegistry()
		health = distrib.NewHealthRegistry()
		mux := obs.NewMux(obs.MuxOptions{
			Registry: metrics,
			Health: func() any {
				if haState == nil {
					return health.Snapshot()
				}
				// HA runs report their role alongside worker health and
				// replication state, so one /healthz scrape answers both
				// "who is primary" and "is failover healthy".
				role, epoch, replicated := haState.Role()
				return map[string]any{
					"role":               role,
					"epoch":              epoch,
					"replicated_records": replicated,
					"replication":        replicationHealth(metrics),
					"workers":            health.Snapshot(),
				}
			},
			Pprof: *pprofOn,
		})
		srv, errc := obs.Serve(*metricAddr, mux)
		defer srv.Close()
		go func() {
			if err := <-errc; err != nil {
				fmt.Fprintln(os.Stderr, "coordinator: metrics server:", err)
			}
		}()
		fmt.Printf("coordinator: metrics on http://%s/metrics\n", *metricAddr)
	}

	// The flight recorder: -trace-out streams coordinator spans as
	// JSONL, -report additionally collects them (plus worker spans
	// shipped back on results, per-partition progress, and periodic
	// metrics snapshots) into one self-contained artifact.
	var fileSink obs.Sink
	if *traceOut != "" {
		tf, terr := os.Create(*traceOut)
		if terr != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", terr)
			os.Exit(2)
		}
		defer tf.Close()
		fileSink = obs.NewJSONLSink(tf)
	}
	var recorder *report.Recorder
	var spanColl *obs.CollectorSink
	var collSink obs.Sink // stays untyped-nil unless -report is set
	if *reportOut != "" {
		recorder = report.NewRecorder()
		spanColl = obs.NewCollectorSink()
		collSink = spanColl
	}
	tracer := obs.NewTracer(obs.MultiSink(fileSink, collSink)).WithProc("coordinator")

	// SIGTERM behaves like SIGINT: cancel the run and let committed
	// journal records carry the progress into the next -resume run. Even
	// an outright SIGKILL loses only uncommitted chunks — every verdict
	// is fsynced to -journal before it is acknowledged.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if recorder != nil && metrics != nil && *snapshotIv > 0 {
		snapCtx, snapStop := context.WithCancel(ctx)
		defer snapStop()
		go func() {
			t := time.NewTicker(*snapshotIv)
			defer t.Stop()
			for {
				select {
				case <-snapCtx.Done():
					return
				case <-t.C:
					recorder.Snapshot(metrics)
				}
			}
		}()
	}

	opts := distrib.CoordinatorOptions{
		Unwind:            *unwind,
		Contexts:          *contexts,
		Width:             *width,
		Partitions:        *partitions,
		ChunkSize:         *chunk,
		JobTimeout:        *jobTO,
		MaxAttempts:       *attempts,
		HeartbeatInterval: *heartbeat,
		DrainTimeout:      *drainTO,
		ChunkTimeout:      *chunkTO,
		ChunkConflicts:    *chunkConfl,
		MemBudgetMB:       *memBudget,
		MemPauseRatio:     *memPause,
		SplitDepth:        *splitDepth,
		SplitGrace:        *splitGrace,
		SplitHardness:     *splitHard,
		Hedge:             *hedge,
		JournalPath:       *journal,
		Resume:            *resume,
		Metrics:           metrics,
		Health:            health,
		Certify:           certPolicy,
		Tracer:            tracer,
		Report:            recorder,
		ProgramName:       *input,
	}
	// The coordinator has no local encode/solve phases: the distributed
	// run is one "coordinate" phase (scheduling, certification, result
	// folding), profiled as a whole.
	profiler.StartPhase("coordinate")
	var res *distrib.CoordinatorResult
	if *lease != "" {
		name := *holder
		if name == "" {
			name = ln.Addr().String()
		}
		addr := *advertise
		if addr == "" {
			addr = ln.Addr().String()
		}
		fmt.Printf("coordinator: HA mode, lease %s, holder %s, advertising %s\n", *lease, name, addr)
		res, err = distrib.RunHA(ctx, ln, p, opts, distrib.HAOptions{
			LeasePath: *lease,
			Holder:    name,
			Addr:      addr,
			LeaseTTL:  *leaseTTL,
			State:     haState,
		})
	} else {
		res, err = distrib.Coordinate(ctx, ln, p, opts)
	}
	profiler.EndPhase("coordinate")
	if perr := profiler.Err(); perr != nil {
		fmt.Fprintln(os.Stderr, "coordinator: profile capture:", perr)
	}
	// The report is written even when the run failed: a crashed or
	// drained run is exactly when the flight recorder matters most.
	if recorder != nil {
		for _, e := range profiler.Entries() {
			recorder.AddProfiles([]report.ProfileRecord{{Phase: e.Phase, Kind: e.Kind, Path: e.Path, Bytes: e.Bytes}})
		}
		recorder.AddSpans(spanColl.Events())
		if metrics != nil {
			recorder.Snapshot(metrics)
		}
		if werr := recorder.WriteFile(*reportOut); werr != nil {
			fmt.Fprintln(os.Stderr, "coordinator: write report:", werr)
		} else {
			fmt.Printf("coordinator: run report written to %s\n", *reportOut)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}
	fmt.Printf("verdict: %v (winner partition %d, %d jobs, %d reassigned, %v)\n",
		res.Verdict, res.Winner, res.Jobs, res.Reassigned, res.Wall)
	fmt.Printf("coverage: %d/%d chunks decided, %d resumed from journal\n",
		res.ChunksDecided, res.ChunksTotal, res.Resumed)
	if res.Splits > 0 || res.Hedges > 0 || res.Superseded > 0 {
		fmt.Printf("adaptive scheduling: %d cubes split (depth %d), %d steals, %d hedged dispatches, %d superseded results discarded\n",
			res.Splits, res.MaxCubeDepth, res.Steals, res.Hedges, res.Superseded)
	}
	for _, ex := range res.Exhausted {
		fmt.Printf("budget exhausted: partitions [%d,%d] gave up on %s\n",
			ex.Chunk.From, ex.Chunk.To, ex.Cause)
	}
	fmt.Printf("remote search: %d decisions, %d conflicts, %d propagations, %d restarts, solve time %v\n",
		res.RemoteStats.Decisions, res.RemoteStats.Conflicts, res.RemoteStats.Propagations,
		res.RemoteStats.Restarts, time.Duration(res.SolveMillis)*time.Millisecond)
	if certPolicy.Enabled() {
		fmt.Printf("certification (%s): %d verdicts certified, %d certificates rejected, verify time %v\n",
			certPolicy, res.Certified, res.CertRejected, time.Duration(res.CertifyMillis)*time.Millisecond)
	}
	if res.JournalSealed {
		fmt.Printf("WARNING: journal sealed after storage failure; run continued journal-less (resume covers only earlier commits): %s\n", res.JournalSealCause)
	}
	if res.MemoryAborted > 0 {
		fmt.Printf("memory aborts: %d chunk result(s) gave up on memory (%d dispatch pauses under fleet pressure)\n",
			res.MemoryAborted, res.DispatchPaused)
	}
	if res.Drained {
		fmt.Println("run drained: chunks were pending but no workers remained connected")
	}
	for _, q := range res.Quarantined {
		last := ""
		if len(q.Errors) > 0 {
			last = q.Errors[len(q.Errors)-1]
		}
		fmt.Printf("quarantined: partitions [%d,%d] after %d failed attempts (last: %s)\n",
			q.Chunk.From, q.Chunk.To, q.Attempts, last)
	}
	for _, w := range res.Workers {
		trust := ""
		if w.Untrusted {
			trust = fmt.Sprintf(", UNTRUSTED (%d certificates rejected)", w.CertRejections)
		}
		fmt.Printf("worker %s: %d jobs, %d failures, %d connections, last seen %s%s\n",
			w.Name, w.Jobs, w.Failures, w.Connections, w.LastSeen.Format(time.TimeOnly), trust)
	}
	if res.Verdict == core.Unsafe {
		os.Exit(1)
	}
}

// replicationHealth folds the registry's replication gauges into the
// /healthz JSON: how many standbys are attached and each one's journal
// replication lag in records.
func replicationHealth(metrics *obs.Registry) map[string]any {
	standbys := 0
	for _, s := range metrics.Samples("parbmc_standbys_connected") {
		standbys += int(s.Value)
	}
	lag := map[string]int64{}
	for _, s := range metrics.Samples("parbmc_replication_lag_records") {
		// Labels render as `standby="name"`; strip down to the name.
		name := strings.TrimSuffix(strings.TrimPrefix(s.Labels, `standby="`), `"`)
		lag[name] = int64(s.Value)
	}
	return map[string]any{
		"standbys_connected": standbys,
		"lag_records":        lag,
	}
}
