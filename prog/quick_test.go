package prog

import (
	"fmt"
	"math/rand"
	"testing"
)

// randProgram generates a random well-formed program directly as an AST
// (not via the parser), used to property-test the printer/parser pair.
type astGen struct {
	rng    *rand.Rand
	fresh  int
	locals []string
}

func (g *astGen) name(prefix string) string {
	g.fresh++
	return fmt.Sprintf("%s%d", prefix, g.fresh)
}

func (g *astGen) intExpr(depth int) Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return I(int64(g.rng.Intn(100) - 50))
		case 1:
			return V("g")
		default:
			return V(g.locals[g.rng.Intn(len(g.locals))])
		}
	}
	ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
	switch g.rng.Intn(4) {
	case 0:
		return Neg(g.intExpr(depth - 1))
	default:
		return &BinaryExpr{Op: ops[g.rng.Intn(len(ops))], X: g.intExpr(depth - 1), Y: g.intExpr(depth - 1)}
	}
}

func (g *astGen) boolExpr(depth int) Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		ops := []BinOp{OpLt, OpLe, OpGt, OpGe, OpEq, OpNe}
		return &BinaryExpr{Op: ops[g.rng.Intn(len(ops))], X: g.intExpr(1), Y: g.intExpr(1)}
	}
	switch g.rng.Intn(3) {
	case 0:
		return Not(g.boolExpr(depth - 1))
	case 1:
		return LAnd(g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return LOr(g.boolExpr(depth-1), g.boolExpr(depth-1))
	}
}

func (g *astGen) stmts(p *ProcBuilder, n, depth int) {
	for i := 0; i < n; i++ {
		switch g.rng.Intn(8) {
		case 0:
			p.Assign("g", g.intExpr(2))
		case 1, 2:
			p.Assign(g.locals[g.rng.Intn(len(g.locals))], g.intExpr(2))
		case 3:
			p.Assert(g.boolExpr(2))
		case 4:
			p.Assume(g.boolExpr(1))
		case 5:
			if depth > 0 {
				p.If(g.boolExpr(1), func(b *ProcBuilder) {
					g.stmts(b, 1+g.rng.Intn(2), depth-1)
				}, func(b *ProcBuilder) {
					g.stmts(b, 1, depth-1)
				})
			} else {
				p.Assign("g", g.intExpr(1))
			}
		case 6:
			if depth > 0 {
				p.While(g.boolExpr(1), func(b *ProcBuilder) {
					g.stmts(b, 1+g.rng.Intn(2), depth-1)
				})
			} else {
				p.Havoc(g.locals[g.rng.Intn(len(g.locals))])
			}
		default:
			if depth > 0 {
				p.Atomic(func(b *ProcBuilder) {
					g.stmts(b, 1, depth-1)
				})
			} else {
				p.Assign("g", g.intExpr(1))
			}
		}
	}
}

func randProgram(rng *rand.Rand) *Program {
	g := &astGen{rng: rng}
	b := NewBuilder("random")
	b.Global("g", Int)
	m := b.Proc("main", Void)
	nLocals := 1 + rng.Intn(3)
	for i := 0; i < nLocals; i++ {
		n := g.name("x")
		g.locals = append(g.locals, n)
		m.Local(n, Int)
		m.Assign(n, I(0))
	}
	g.stmts(m, 2+rng.Intn(5), 2)
	return b.MustBuild()
}

// TestPrinterParserFixpointRandom: for random ASTs, the formatted output
// parses back, and parse∘format reaches a fixpoint after one
// normalisation round (the parser canonicalises negated integer
// literals, so the first round-trip may rewrite -(6) to -6; after that
// the representation is stable).
func TestPrinterParserFixpointRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	for iter := 0; iter < 200; iter++ {
		p1 := randProgram(rng)
		s1 := Format(p1)
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("iter %d: formatted program does not parse: %v\n%s", iter, err, s1)
		}
		s2 := Format(p2)
		p3, err := Parse(s2)
		if err != nil {
			t.Fatalf("iter %d: normalised program does not parse: %v\n%s", iter, err, s2)
		}
		s3 := Format(p3)
		if s2 != s3 {
			t.Fatalf("iter %d: Format not a fixpoint after normalisation\nfirst:\n%s\nsecond:\n%s", iter, s2, s3)
		}
	}
}

// TestRandomProgramsSurviveChecker: the generator must only produce
// checkable programs (guards the generator itself, which other tests
// build on).
func TestRandomProgramsSurviveChecker(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for iter := 0; iter < 100; iter++ {
		p := randProgram(rng)
		if err := Check(p); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}
