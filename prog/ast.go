// Package prog defines non-deterministic multi-threaded programs in the
// C-like language of the paper (Fig. 1): shared global variables, threads
// with local variables, assume/assert, non-deterministic values, dynamic
// thread creation and join, and mutexes, under the POSIX-style execution
// model of Sect. 2.1 (sequential consistency, atomic statements, context
// switches at visible statements).
//
// The package provides the abstract syntax tree, a lexer and parser for a
// concrete C-like syntax, a semantic checker, and a pretty printer. Two
// extensions beyond Fig. 1 are supported because the benchmark programs
// need them: fixed-size arrays and atomic blocks (several statements
// executed without intervening context switch, used to model the
// compare-and-swap primitives of the lock-free benchmarks). Labels and
// goto are not supported; the paper's own benchmarks are structured.
package prog

import "fmt"

// Kind enumerates the base types of the language.
type Kind int

const (
	// KindVoid is the type of procedures without a return value.
	KindVoid Kind = iota
	// KindBool is the Boolean type.
	KindBool
	// KindInt is the bounded integer type (bit-width fixed at analysis time).
	KindInt
	// KindMutex is the mutex type.
	KindMutex
)

func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindMutex:
		return "mutex"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Type is a scalar or fixed-size array type.
type Type struct {
	Kind Kind
	// ArrayLen is 0 for scalars, otherwise the fixed array length.
	ArrayLen int
}

// IsArray reports whether the type is an array type.
func (t Type) IsArray() bool { return t.ArrayLen > 0 }

func (t Type) String() string {
	if t.IsArray() {
		return fmt.Sprintf("%s[%d]", t.Kind, t.ArrayLen)
	}
	return t.Kind.String()
}

// Common scalar types.
var (
	Void  = Type{Kind: KindVoid}
	Bool  = Type{Kind: KindBool}
	Int   = Type{Kind: KindInt}
	Mutex = Type{Kind: KindMutex}
)

// IntArray returns the type of an int array of length n.
func IntArray(n int) Type { return Type{Kind: KindInt, ArrayLen: n} }

// BoolArray returns the type of a bool array of length n.
func BoolArray(n int) Type { return Type{Kind: KindBool, ArrayLen: n} }

// Decl declares a variable.
type Decl struct {
	Name string
	Type Type
}

// Program is a multi-threaded program: shared globals plus procedures,
// one of which must be called "main" (the initial thread).
type Program struct {
	// Name is an optional human-readable program name.
	Name string
	// Globals are the shared variables, initialised to zero/false.
	Globals []Decl
	// Procs are the procedure definitions.
	Procs []*Proc
}

// Proc is a procedure definition. Parameters have an implicit
// call-by-reference semantics when the argument is an l-value (paper
// Sect. 2.1); other arguments behave as by-value.
type Proc struct {
	Name   string
	Params []Decl
	Ret    Type // Void if none
	Locals []Decl
	Body   []Stmt
}

// Proc returns the procedure with the given name, or nil.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Main returns the main procedure, or nil.
func (p *Program) Main() *Proc { return p.Proc("main") }

// Stmt is a program statement.
type Stmt interface {
	stmt()
	String() string
}

// Expr is a program expression.
type Expr interface {
	expr()
	String() string
}

// --- Statements ---

// AssumeStmt blocks executions whose condition is false.
type AssumeStmt struct{ Cond Expr }

// AssertStmt reports a violation when the condition is false.
type AssertStmt struct{ Cond Expr }

// AssignStmt assigns RHS to LHS. RHS may be Nondet.
type AssignStmt struct {
	LHS LValue
	RHS Expr
}

// CallStmt invokes a procedure (inlined during unfolding).
type CallStmt struct {
	Proc string
	Args []Expr
	// Result optionally receives the procedure's return value; nil if the
	// call is used as a statement.
	Result LValue
}

// ReturnStmt returns from the enclosing procedure.
type ReturnStmt struct{ Value Expr } // Value may be nil

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
}

// WhileStmt is a loop, unwound up to the bound during unfolding.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// CreateStmt spawns a new thread running Proc with the given arguments
// and stores the fresh thread identifier into Tid.
type CreateStmt struct {
	Tid  LValue
	Proc string
	Args []Expr
}

// JoinStmt blocks until the thread identified by Tid has terminated.
type JoinStmt struct{ Tid Expr }

// LockStmt acquires a mutex (blocking).
type LockStmt struct{ Mutex string }

// UnlockStmt releases a mutex.
type UnlockStmt struct{ Mutex string }

// InitStmt initialises a mutex (a no-op under the default-zero semantics,
// kept for source fidelity).
type InitStmt struct{ Mutex string }

// DestroyStmt destroys a mutex.
type DestroyStmt struct{ Mutex string }

// AtomicStmt executes its body without intervening context switches
// (extension; models compare-and-swap style primitives).
type AtomicStmt struct{ Body []Stmt }

// BlockStmt groups statements (scoping is flat: locals are per-procedure).
type BlockStmt struct{ Body []Stmt }

func (*AssumeStmt) stmt()  {}
func (*AssertStmt) stmt()  {}
func (*AssignStmt) stmt()  {}
func (*CallStmt) stmt()    {}
func (*ReturnStmt) stmt()  {}
func (*IfStmt) stmt()      {}
func (*WhileStmt) stmt()   {}
func (*CreateStmt) stmt()  {}
func (*JoinStmt) stmt()    {}
func (*LockStmt) stmt()    {}
func (*UnlockStmt) stmt()  {}
func (*InitStmt) stmt()    {}
func (*DestroyStmt) stmt() {}
func (*AtomicStmt) stmt()  {}
func (*BlockStmt) stmt()   {}

// --- L-values ---

// LValue is an assignable location: a variable or an array element.
type LValue interface {
	Expr
	lvalue()
	// BaseName returns the variable name the l-value refers to.
	BaseName() string
}

// VarRef names a scalar variable.
type VarRef struct{ Name string }

// IndexRef names an array element a[idx].
type IndexRef struct {
	Name  string
	Index Expr
}

func (*VarRef) expr()     {}
func (*VarRef) lvalue()   {}
func (*IndexRef) expr()   {}
func (*IndexRef) lvalue() {}

// BaseName returns the referenced variable name.
func (v *VarRef) BaseName() string { return v.Name }

// BaseName returns the indexed array name.
func (i *IndexRef) BaseName() string { return i.Name }

// --- Expressions ---

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// BoolLit is a Boolean literal.
type BoolLit struct{ Value bool }

// Nondet is the non-deterministic value `*`.
type Nondet struct{}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg    UnOp = iota // -x
	OpNot                // !x
	OpBitNot             // ~x
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op UnOp
	X  Expr
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd // bitwise &
	OpOr  // bitwise |
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd // logical &&
	OpLOr  // logical ||
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOp
	X, Y Expr
}

func (*IntLit) expr()     {}
func (*BoolLit) expr()    {}
func (*Nondet) expr()     {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
