package prog

import "fmt"

// Builder constructs programs programmatically, as an alternative to the
// textual front end. Errors are accumulated and reported by Build, so
// construction chains need no intermediate checks:
//
//	b := prog.NewBuilder("example")
//	b.Global("g", prog.Int)
//	w := b.Proc("worker", prog.Void, prog.Decl{Name: "n", Type: prog.Int})
//	w.Assign("g", prog.Add(prog.V("g"), prog.V("n")))
//	m := b.Proc("main", prog.Void)
//	m.Local("t", prog.Int)
//	m.Create("t", "worker", prog.I(1))
//	m.Join(prog.V("t"))
//	m.Assert(prog.Eq(prog.V("g"), prog.I(1)))
//	p, err := b.Build() // runs the semantic checker
type Builder struct {
	prog *Program
	errs []error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// Global declares a shared variable.
func (b *Builder) Global(name string, t Type) *Builder {
	b.prog.Globals = append(b.prog.Globals, Decl{Name: name, Type: t})
	return b
}

// Proc starts a procedure; statements are added through the returned
// ProcBuilder.
func (b *Builder) Proc(name string, ret Type, params ...Decl) *ProcBuilder {
	pr := &Proc{Name: name, Ret: ret, Params: params}
	b.prog.Procs = append(b.prog.Procs, pr)
	return &ProcBuilder{b: b, proc: pr, stmts: &pr.Body}
}

// Build checks and returns the constructed program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := Check(b.prog); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build panicking on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func (b *Builder) errf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf("prog: builder: "+format, args...))
}

// ProcBuilder appends statements to a procedure (or to a nested block).
type ProcBuilder struct {
	b     *Builder
	proc  *Proc
	stmts *[]Stmt
}

func (p *ProcBuilder) append(s Stmt) *ProcBuilder {
	*p.stmts = append(*p.stmts, s)
	return p
}

// Local declares a procedure-local variable.
func (p *ProcBuilder) Local(name string, t Type) *ProcBuilder {
	p.proc.Locals = append(p.proc.Locals, Decl{Name: name, Type: t})
	return p
}

// Assign emits name = rhs.
func (p *ProcBuilder) Assign(name string, rhs Expr) *ProcBuilder {
	return p.append(&AssignStmt{LHS: &VarRef{Name: name}, RHS: rhs})
}

// AssignIdx emits arr[idx] = rhs.
func (p *ProcBuilder) AssignIdx(arr string, idx, rhs Expr) *ProcBuilder {
	return p.append(&AssignStmt{LHS: &IndexRef{Name: arr, Index: idx}, RHS: rhs})
}

// Havoc emits name = * (non-deterministic assignment).
func (p *ProcBuilder) Havoc(name string) *ProcBuilder {
	return p.Assign(name, &Nondet{})
}

// Assume emits assume(cond).
func (p *ProcBuilder) Assume(cond Expr) *ProcBuilder {
	return p.append(&AssumeStmt{Cond: cond})
}

// Assert emits assert(cond).
func (p *ProcBuilder) Assert(cond Expr) *ProcBuilder {
	return p.append(&AssertStmt{Cond: cond})
}

// Return emits return (value may be nil).
func (p *ProcBuilder) Return(value Expr) *ProcBuilder {
	return p.append(&ReturnStmt{Value: value})
}

// Call emits a procedure call; result may be "" for a bare call.
func (p *ProcBuilder) Call(result, proc string, args ...Expr) *ProcBuilder {
	c := &CallStmt{Proc: proc, Args: args}
	if result != "" {
		c.Result = &VarRef{Name: result}
	}
	return p.append(c)
}

// If emits a conditional; the callbacks populate the branches (els may
// be nil).
func (p *ProcBuilder) If(cond Expr, then func(*ProcBuilder), els func(*ProcBuilder)) *ProcBuilder {
	s := &IfStmt{Cond: cond}
	tb := &ProcBuilder{b: p.b, proc: p.proc, stmts: &s.Then}
	then(tb)
	if els != nil {
		eb := &ProcBuilder{b: p.b, proc: p.proc, stmts: &s.Else}
		els(eb)
	}
	return p.append(s)
}

// While emits a loop.
func (p *ProcBuilder) While(cond Expr, body func(*ProcBuilder)) *ProcBuilder {
	s := &WhileStmt{Cond: cond}
	bb := &ProcBuilder{b: p.b, proc: p.proc, stmts: &s.Body}
	body(bb)
	return p.append(s)
}

// Atomic emits an atomic block.
func (p *ProcBuilder) Atomic(body func(*ProcBuilder)) *ProcBuilder {
	s := &AtomicStmt{}
	bb := &ProcBuilder{b: p.b, proc: p.proc, stmts: &s.Body}
	body(bb)
	return p.append(s)
}

// Create emits tidVar = create(proc, args...).
func (p *ProcBuilder) Create(tidVar, proc string, args ...Expr) *ProcBuilder {
	return p.append(&CreateStmt{Tid: &VarRef{Name: tidVar}, Proc: proc, Args: args})
}

// Join emits join(tid).
func (p *ProcBuilder) Join(tid Expr) *ProcBuilder {
	return p.append(&JoinStmt{Tid: tid})
}

// Lock emits lock(m).
func (p *ProcBuilder) Lock(m string) *ProcBuilder { return p.append(&LockStmt{Mutex: m}) }

// Unlock emits unlock(m).
func (p *ProcBuilder) Unlock(m string) *ProcBuilder { return p.append(&UnlockStmt{Mutex: m}) }

// --- expression helpers ---

// V references a scalar variable.
func V(name string) Expr { return &VarRef{Name: name} }

// Idx references an array element.
func Idx(name string, index Expr) Expr { return &IndexRef{Name: name, Index: index} }

// I is an integer literal.
func I(v int64) Expr { return &IntLit{Value: v} }

// Bl is a Boolean literal.
func Bl(v bool) Expr { return &BoolLit{Value: v} }

// Nd is the non-deterministic value.
func Nd() Expr { return &Nondet{} }

func bin(op BinOp, x, y Expr) Expr { return &BinaryExpr{Op: op, X: x, Y: y} }

// Add returns x + y.
func Add(x, y Expr) Expr { return bin(OpAdd, x, y) }

// Sub returns x - y.
func Sub(x, y Expr) Expr { return bin(OpSub, x, y) }

// Mul returns x * y.
func Mul(x, y Expr) Expr { return bin(OpMul, x, y) }

// Lt returns x < y.
func Lt(x, y Expr) Expr { return bin(OpLt, x, y) }

// Le returns x <= y.
func Le(x, y Expr) Expr { return bin(OpLe, x, y) }

// Gt returns x > y.
func Gt(x, y Expr) Expr { return bin(OpGt, x, y) }

// Ge returns x >= y.
func Ge(x, y Expr) Expr { return bin(OpGe, x, y) }

// Eq returns x == y.
func Eq(x, y Expr) Expr { return bin(OpEq, x, y) }

// Ne returns x != y.
func Ne(x, y Expr) Expr { return bin(OpNe, x, y) }

// LAnd returns x && y.
func LAnd(x, y Expr) Expr { return bin(OpLAnd, x, y) }

// LOr returns x || y.
func LOr(x, y Expr) Expr { return bin(OpLOr, x, y) }

// Not returns !x.
func Not(x Expr) Expr { return &UnaryExpr{Op: OpNot, X: x} }

// Neg returns -x.
func Neg(x Expr) Expr { return &UnaryExpr{Op: OpNeg, X: x} }
