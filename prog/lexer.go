package prog

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"void": true, "bool": true, "int": true, "mutex": true,
	"if": true, "else": true, "while": true, "return": true,
	"assume": true, "assert": true, "create": true, "join": true,
	"lock": true, "unlock": true, "init": true, "destroy": true,
	"atomic": true, "true": true, "false": true,
}

// twoCharPuncts are the multi-character operators, checked before
// single-character ones.
var twoCharPuncts = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.advance()
			}
			word := string(l.src[start:l.pos])
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			l.emitAt(kind, word, l.col-len(word))
		case unicode.IsDigit(c):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.advance()
			}
			num := string(l.src[start:l.pos])
			l.emitAt(tokNumber, num, l.col-len(num))
		default:
			if p, ok := l.matchTwoChar(); ok {
				l.emitAt(tokPunct, p, l.col-2)
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
				'=', '(', ')', '{', '}', '[', ']', ';', ',':
				l.advance()
				l.emitAt(tokPunct, string(c), l.col-1)
			default:
				return nil, fmt.Errorf("prog: %d:%d: unexpected character %q", l.line, l.col, c)
			}
		}
	}
}

func (l *lexer) matchTwoChar() (string, bool) {
	if l.pos+1 >= len(l.src) {
		return "", false
	}
	pair := string(l.src[l.pos : l.pos+2])
	for _, p := range twoCharPuncts {
		if pair == p {
			l.advance()
			l.advance()
			return p, true
		}
	}
	return "", false
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.advance()
			}
			if l.pos+1 < len(l.src) {
				l.advance()
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind, text, l.line, l.col})
}

func (l *lexer) emitAt(kind tokenKind, text string, col int) {
	l.toks = append(l.toks, token{kind, text, l.line, col})
}
