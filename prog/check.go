package prog

import (
	"fmt"
)

// Check validates a program: name resolution, typing, and the structural
// restrictions of the language (mutexes are global, division only by
// constant powers of two, non-determinism only as an assignment source,
// a main procedure without parameters, and so on).
func Check(p *Program) error {
	c := &checker{prog: p, globals: map[string]Type{}, procs: map[string]*Proc{}}
	for _, g := range p.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("prog: duplicate global %q", g.Name)
		}
		if g.Type.Kind == KindVoid {
			return fmt.Errorf("prog: global %q has void type", g.Name)
		}
		c.globals[g.Name] = g.Type
	}
	for _, pr := range p.Procs {
		if _, dup := c.procs[pr.Name]; dup {
			return fmt.Errorf("prog: duplicate procedure %q", pr.Name)
		}
		c.procs[pr.Name] = pr
	}
	main := p.Main()
	if main == nil {
		return fmt.Errorf("prog: no main procedure")
	}
	if len(main.Params) != 0 {
		return fmt.Errorf("prog: main must not take parameters")
	}
	if main.Ret.Kind != KindVoid {
		return fmt.Errorf("prog: main must return void")
	}
	for _, pr := range p.Procs {
		if err := c.checkProc(pr); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	globals map[string]Type
	procs   map[string]*Proc

	proc   *Proc
	locals map[string]Type
}

func (c *checker) checkProc(pr *Proc) error {
	c.proc = pr
	c.locals = map[string]Type{}
	for _, d := range append(append([]Decl{}, pr.Params...), pr.Locals...) {
		if _, dup := c.locals[d.Name]; dup {
			return fmt.Errorf("prog: %s: duplicate local %q", pr.Name, d.Name)
		}
		if _, shadow := c.globals[d.Name]; shadow {
			return fmt.Errorf("prog: %s: local %q shadows a global", pr.Name, d.Name)
		}
		if d.Type.Kind == KindVoid {
			return fmt.Errorf("prog: %s: local %q has void type", pr.Name, d.Name)
		}
		if d.Type.Kind == KindMutex {
			return fmt.Errorf("prog: %s: mutex %q must be global (mutexes are shared)", pr.Name, d.Name)
		}
		c.locals[d.Name] = d.Type
	}
	for _, p := range pr.Params {
		if p.Type.IsArray() {
			return fmt.Errorf("prog: %s: array parameter %q not supported", pr.Name, p.Name)
		}
	}
	return c.checkStmts(pr.Body)
}

func (c *checker) lookup(name string) (Type, bool) {
	if t, ok := c.locals[name]; ok {
		return t, true
	}
	t, ok := c.globals[name]
	return t, ok
}

func (c *checker) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	where := c.proc.Name
	switch st := s.(type) {
	case *AssumeStmt:
		return c.wantBool(st.Cond, "assume condition")
	case *AssertStmt:
		return c.wantBool(st.Cond, "assert condition")
	case *AssignStmt:
		lt, err := c.typeLValue(st.LHS)
		if err != nil {
			return err
		}
		if _, ok := st.RHS.(*Nondet); ok {
			return nil // x = * is allowed for any scalar type
		}
		rt, err := c.typeExpr(st.RHS)
		if err != nil {
			return err
		}
		if lt != rt {
			return fmt.Errorf("prog: %s: cannot assign %s to %s in %q", where, rt, lt, st)
		}
		return nil
	case *CallStmt:
		callee, ok := c.procs[st.Proc]
		if !ok {
			return fmt.Errorf("prog: %s: call to undefined procedure %q", where, st.Proc)
		}
		if callee.Name == "main" {
			return fmt.Errorf("prog: %s: main cannot be called", where)
		}
		if len(st.Args) != len(callee.Params) {
			return fmt.Errorf("prog: %s: call to %q with %d args, want %d",
				where, st.Proc, len(st.Args), len(callee.Params))
		}
		for i, a := range st.Args {
			at, err := c.typeExpr(a)
			if err != nil {
				return err
			}
			if at != callee.Params[i].Type {
				return fmt.Errorf("prog: %s: call to %q: arg %d is %s, want %s",
					where, st.Proc, i, at, callee.Params[i].Type)
			}
		}
		if st.Result != nil {
			if callee.Ret.Kind == KindVoid {
				return fmt.Errorf("prog: %s: %q returns void, cannot assign its result", where, st.Proc)
			}
			lt, err := c.typeLValue(st.Result)
			if err != nil {
				return err
			}
			if lt != callee.Ret {
				return fmt.Errorf("prog: %s: result of %q is %s, cannot assign to %s",
					where, st.Proc, callee.Ret, lt)
			}
		}
		return nil
	case *ReturnStmt:
		if c.proc.Ret.Kind == KindVoid {
			if st.Value != nil {
				return fmt.Errorf("prog: %s: return with a value in a void procedure", where)
			}
			return nil
		}
		if st.Value == nil {
			return fmt.Errorf("prog: %s: return without a value", where)
		}
		vt, err := c.typeExpr(st.Value)
		if err != nil {
			return err
		}
		if vt != c.proc.Ret {
			return fmt.Errorf("prog: %s: return type %s, want %s", where, vt, c.proc.Ret)
		}
		return nil
	case *IfStmt:
		if err := c.wantBool(st.Cond, "if condition"); err != nil {
			return err
		}
		if err := c.checkStmts(st.Then); err != nil {
			return err
		}
		return c.checkStmts(st.Else)
	case *WhileStmt:
		if err := c.wantBool(st.Cond, "while condition"); err != nil {
			return err
		}
		return c.checkStmts(st.Body)
	case *CreateStmt:
		callee, ok := c.procs[st.Proc]
		if !ok {
			return fmt.Errorf("prog: %s: create of undefined procedure %q", where, st.Proc)
		}
		if callee.Name == "main" {
			return fmt.Errorf("prog: %s: main cannot be spawned", where)
		}
		if callee.Ret.Kind != KindVoid {
			return fmt.Errorf("prog: %s: thread procedure %q must return void", where, st.Proc)
		}
		if len(st.Args) != len(callee.Params) {
			return fmt.Errorf("prog: %s: create of %q with %d args, want %d",
				where, st.Proc, len(st.Args), len(callee.Params))
		}
		for i, a := range st.Args {
			at, err := c.typeExpr(a)
			if err != nil {
				return err
			}
			if at != callee.Params[i].Type {
				return fmt.Errorf("prog: %s: create of %q: arg %d is %s, want %s",
					where, st.Proc, i, at, callee.Params[i].Type)
			}
		}
		lt, err := c.typeLValue(st.Tid)
		if err != nil {
			return err
		}
		if lt != Int {
			return fmt.Errorf("prog: %s: thread identifier must be int, got %s", where, lt)
		}
		return nil
	case *JoinStmt:
		return c.wantInt(st.Tid, "join argument")
	case *LockStmt:
		return c.wantMutex(st.Mutex)
	case *UnlockStmt:
		return c.wantMutex(st.Mutex)
	case *InitStmt:
		return c.wantMutex(st.Mutex)
	case *DestroyStmt:
		return c.wantMutex(st.Mutex)
	case *AtomicStmt:
		return c.checkStmts(st.Body)
	case *BlockStmt:
		return c.checkStmts(st.Body)
	}
	return fmt.Errorf("prog: %s: unknown statement %T", where, s)
}

func (c *checker) wantBool(e Expr, what string) error {
	t, err := c.typeExpr(e)
	if err != nil {
		return err
	}
	if t != Bool {
		return fmt.Errorf("prog: %s: %s must be bool, got %s", c.proc.Name, what, t)
	}
	return nil
}

func (c *checker) wantInt(e Expr, what string) error {
	t, err := c.typeExpr(e)
	if err != nil {
		return err
	}
	if t != Int {
		return fmt.Errorf("prog: %s: %s must be int, got %s", c.proc.Name, what, t)
	}
	return nil
}

func (c *checker) wantMutex(name string) error {
	t, ok := c.globals[name]
	if !ok || t.Kind != KindMutex {
		return fmt.Errorf("prog: %s: %q is not a global mutex", c.proc.Name, name)
	}
	return nil
}

func (c *checker) typeLValue(lv LValue) (Type, error) {
	switch v := lv.(type) {
	case *VarRef:
		t, ok := c.lookup(v.Name)
		if !ok {
			return Void, fmt.Errorf("prog: %s: undefined variable %q", c.proc.Name, v.Name)
		}
		if t.IsArray() {
			return Void, fmt.Errorf("prog: %s: array %q cannot be used as a scalar", c.proc.Name, v.Name)
		}
		if t.Kind == KindMutex {
			return Void, fmt.Errorf("prog: %s: mutex %q cannot be assigned", c.proc.Name, v.Name)
		}
		return t, nil
	case *IndexRef:
		t, ok := c.lookup(v.Name)
		if !ok {
			return Void, fmt.Errorf("prog: %s: undefined variable %q", c.proc.Name, v.Name)
		}
		if !t.IsArray() {
			return Void, fmt.Errorf("prog: %s: %q is not an array", c.proc.Name, v.Name)
		}
		if err := c.wantInt(v.Index, "array index"); err != nil {
			return Void, err
		}
		return Type{Kind: t.Kind}, nil
	}
	return Void, fmt.Errorf("prog: %s: invalid l-value %T", c.proc.Name, lv)
}

func (c *checker) typeExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return Int, nil
	case *BoolLit:
		return Bool, nil
	case *Nondet:
		return Void, fmt.Errorf("prog: %s: '*' may only appear as the source of an assignment", c.proc.Name)
	case *VarRef, *IndexRef:
		return c.typeLValue(x.(LValue))
	case *UnaryExpr:
		xt, err := c.typeExpr(x.X)
		if err != nil {
			return Void, err
		}
		switch x.Op {
		case OpNeg, OpBitNot:
			if xt != Int {
				return Void, fmt.Errorf("prog: %s: operator %s needs int, got %s", c.proc.Name, x.Op, xt)
			}
			return Int, nil
		case OpNot:
			if xt != Bool {
				return Void, fmt.Errorf("prog: %s: operator ! needs bool, got %s", c.proc.Name, xt)
			}
			return Bool, nil
		}
		return Void, fmt.Errorf("prog: %s: unknown unary operator", c.proc.Name)
	case *BinaryExpr:
		xt, err := c.typeExpr(x.X)
		if err != nil {
			return Void, err
		}
		yt, err := c.typeExpr(x.Y)
		if err != nil {
			return Void, err
		}
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
			if xt != Int || yt != Int {
				return Void, fmt.Errorf("prog: %s: operator %s needs int operands, got %s and %s",
					c.proc.Name, x.Op, xt, yt)
			}
			return Int, nil
		case OpDiv, OpMod:
			if xt != Int || yt != Int {
				return Void, fmt.Errorf("prog: %s: operator %s needs int operands", c.proc.Name, x.Op)
			}
			lit, ok := x.Y.(*IntLit)
			if !ok || lit.Value <= 0 || lit.Value&(lit.Value-1) != 0 {
				return Void, fmt.Errorf("prog: %s: operator %s only supports constant power-of-two divisors",
					c.proc.Name, x.Op)
			}
			return Int, nil
		case OpLt, OpLe, OpGt, OpGe:
			if xt != Int || yt != Int {
				return Void, fmt.Errorf("prog: %s: operator %s needs int operands, got %s and %s",
					c.proc.Name, x.Op, xt, yt)
			}
			return Bool, nil
		case OpEq, OpNe:
			if xt != yt || (xt != Int && xt != Bool) {
				return Void, fmt.Errorf("prog: %s: operator %s needs matching int or bool operands, got %s and %s",
					c.proc.Name, x.Op, xt, yt)
			}
			return Bool, nil
		case OpLAnd, OpLOr:
			if xt != Bool || yt != Bool {
				return Void, fmt.Errorf("prog: %s: operator %s needs bool operands, got %s and %s",
					c.proc.Name, x.Op, xt, yt)
			}
			return Bool, nil
		}
		return Void, fmt.Errorf("prog: %s: unknown binary operator", c.proc.Name)
	}
	return Void, fmt.Errorf("prog: %s: unknown expression %T", c.proc.Name, e)
}
