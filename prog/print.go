package prog

import (
	"fmt"
	"strings"
)

var unOpStrings = map[UnOp]string{
	OpNeg:    "-",
	OpNot:    "!",
	OpBitNot: "~",
}

var binOpStrings = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpLAnd: "&&", OpLOr: "||",
}

func (o UnOp) String() string  { return unOpStrings[o] }
func (o BinOp) String() string { return binOpStrings[o] }

func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Value) }
func (e *BoolLit) String() string { return fmt.Sprintf("%t", e.Value) }
func (e *Nondet) String() string  { return "*" }
func (e *VarRef) String() string  { return e.Name }
func (e *IndexRef) String() string {
	return fmt.Sprintf("%s[%s]", e.Name, e.Index)
}
func (e *UnaryExpr) String() string {
	return fmt.Sprintf("%s(%s)", e.Op, e.X)
}
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

func (s *AssumeStmt) String() string { return fmt.Sprintf("assume(%s);", s.Cond) }
func (s *AssertStmt) String() string { return fmt.Sprintf("assert(%s);", s.Cond) }
func (s *AssignStmt) String() string { return fmt.Sprintf("%s = %s;", s.LHS, s.RHS) }
func (s *CallStmt) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	call := fmt.Sprintf("%s(%s);", s.Proc, strings.Join(args, ", "))
	if s.Result != nil {
		return fmt.Sprintf("%s = %s", s.Result, call)
	}
	return call
}
func (s *ReturnStmt) String() string {
	if s.Value == nil {
		return "return;"
	}
	return fmt.Sprintf("return %s;", s.Value)
}
func (s *IfStmt) String() string {
	if s.Else == nil {
		return fmt.Sprintf("if (%s) {...}", s.Cond)
	}
	return fmt.Sprintf("if (%s) {...} else {...}", s.Cond)
}
func (s *WhileStmt) String() string { return fmt.Sprintf("while (%s) {...}", s.Cond) }
func (s *CreateStmt) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	all := append([]string{s.Proc}, args...)
	return fmt.Sprintf("%s = create(%s);", s.Tid, strings.Join(all, ", "))
}
func (s *JoinStmt) String() string    { return fmt.Sprintf("join(%s);", s.Tid) }
func (s *LockStmt) String() string    { return fmt.Sprintf("lock(%s);", s.Mutex) }
func (s *UnlockStmt) String() string  { return fmt.Sprintf("unlock(%s);", s.Mutex) }
func (s *InitStmt) String() string    { return fmt.Sprintf("init(%s);", s.Mutex) }
func (s *DestroyStmt) String() string { return fmt.Sprintf("destroy(%s);", s.Mutex) }
func (s *AtomicStmt) String() string  { return "atomic {...}" }
func (s *BlockStmt) String() string   { return "{...}" }

// Format renders the whole program as parseable source text.
func Format(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		writeDecl(&b, "", g)
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, pr := range p.Procs {
		if i > 0 {
			b.WriteString("\n")
		}
		formatProc(&b, pr)
	}
	return b.String()
}

func writeDecl(b *strings.Builder, indent string, d Decl) {
	if d.Type.IsArray() {
		fmt.Fprintf(b, "%s%s %s[%d];\n", indent, d.Type.Kind, d.Name, d.Type.ArrayLen)
	} else {
		fmt.Fprintf(b, "%s%s %s;\n", indent, d.Type.Kind, d.Name)
	}
}

func formatProc(b *strings.Builder, pr *Proc) {
	params := make([]string, len(pr.Params))
	for i, p := range pr.Params {
		params[i] = fmt.Sprintf("%s %s", p.Type.Kind, p.Name)
	}
	fmt.Fprintf(b, "%s %s(%s) {\n", pr.Ret.Kind, pr.Name, strings.Join(params, ", "))
	for _, l := range pr.Locals {
		writeDecl(b, "  ", l)
	}
	formatStmts(b, "  ", pr.Body)
	b.WriteString("}\n")
}

func formatStmts(b *strings.Builder, indent string, stmts []Stmt) {
	for _, s := range stmts {
		formatStmt(b, indent, s)
	}
}

func formatStmt(b *strings.Builder, indent string, s Stmt) {
	switch st := s.(type) {
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s) {\n", indent, st.Cond)
		formatStmts(b, indent+"  ", st.Then)
		if st.Else != nil {
			fmt.Fprintf(b, "%s} else {\n", indent)
			formatStmts(b, indent+"  ", st.Else)
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case *WhileStmt:
		fmt.Fprintf(b, "%swhile (%s) {\n", indent, st.Cond)
		formatStmts(b, indent+"  ", st.Body)
		fmt.Fprintf(b, "%s}\n", indent)
	case *AtomicStmt:
		fmt.Fprintf(b, "%satomic {\n", indent)
		formatStmts(b, indent+"  ", st.Body)
		fmt.Fprintf(b, "%s}\n", indent)
	case *BlockStmt:
		fmt.Fprintf(b, "%s{\n", indent)
		formatStmts(b, indent+"  ", st.Body)
		fmt.Fprintf(b, "%s}\n", indent)
	default:
		fmt.Fprintf(b, "%s%s\n", indent, s)
	}
}
