package prog

import (
	"fmt"
	"strconv"
)

// Parse parses a program in the concrete C-like syntax of the paper.
// The result is checked for semantic validity (see Check).
func Parse(src string) (*Program, error) {
	p, err := ParseUnchecked(src)
	if err != nil {
		return nil, err
	}
	if err := Check(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseUnchecked parses without running the semantic checker.
func ParseUnchecked(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks}
	prog, err := pr.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for tests and for
// the built-in benchmark programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return fmt.Errorf("prog: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.next()
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) isKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

func (p *parser) atType() bool {
	return p.isKeyword("void") || p.isKeyword("bool") || p.isKeyword("int") || p.isKeyword("mutex")
}

func (p *parser) parseType() (Type, error) {
	t := p.next()
	switch t.text {
	case "void":
		return Void, nil
	case "bool":
		return Bool, nil
	case "int":
		return Int, nil
	case "mutex":
		return Mutex, nil
	}
	return Void, p.errf("expected a type, found %s", t)
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		if !p.atType() {
			return nil, p.errf("expected a declaration or procedure, found %s", p.cur())
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected an identifier, found %s", p.cur())
		}
		name := p.next().text
		if p.isPunct("(") {
			proc, err := p.parseProcRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, proc)
			continue
		}
		decls, err := p.parseDeclRest(typ, name)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decls...)
	}
	return prog, nil
}

// parseDeclRest parses the remainder of "type name ..." declarations:
// optional [N], optional comma-separated further names, terminating ';'.
// Initialisers are not allowed at global scope (globals are zero).
func (p *parser) parseDeclRest(typ Type, firstName string) ([]Decl, error) {
	var out []Decl
	name := firstName
	for {
		t := typ
		if p.isPunct("[") {
			p.next()
			if p.cur().kind != tokNumber {
				return nil, p.errf("expected array length, found %s", p.cur())
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil || n <= 0 {
				return nil, p.errf("invalid array length")
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			t.ArrayLen = n
		}
		out = append(out, Decl{Name: name, Type: t})
		if p.isPunct(",") {
			p.next()
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected an identifier, found %s", p.cur())
			}
			name = p.next().text
			continue
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) parseProcRest(ret Type, name string) (*Proc, error) {
	proc := &Proc{Name: name, Ret: ret}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if len(proc.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		if !p.atType() {
			return nil, p.errf("expected a parameter type, found %s", p.cur())
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected a parameter name, found %s", p.cur())
		}
		proc.Params = append(proc.Params, Decl{Name: p.next().text, Type: typ})
	}
	p.next() // ')'
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	body, err := p.parseBody(proc)
	if err != nil {
		return nil, err
	}
	proc.Body = body
	return proc, nil
}

// parseBody parses statements until '}'. Declarations may appear anywhere
// and are hoisted to the procedure's locals; initialisers become ordinary
// assignments in place.
func (p *parser) parseBody(proc *Proc) ([]Stmt, error) {
	var out []Stmt
	for !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unexpected end of input, missing '}'")
		}
		if p.atType() {
			stmts, err := p.parseLocalDecl(proc)
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
			continue
		}
		s, err := p.parseStmt(proc)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // '}'
	return out, nil
}

func (p *parser) parseLocalDecl(proc *Proc) ([]Stmt, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	var inits []Stmt
	for {
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected an identifier, found %s", p.cur())
		}
		name := p.next().text
		t := typ
		if p.isPunct("[") {
			p.next()
			if p.cur().kind != tokNumber {
				return nil, p.errf("expected array length, found %s", p.cur())
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil || n <= 0 {
				return nil, p.errf("invalid array length")
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			t.ArrayLen = n
		}
		proc.Locals = append(proc.Locals, Decl{Name: name, Type: t})
		if p.isPunct("=") {
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			inits = append(inits, &AssignStmt{LHS: &VarRef{Name: name}, RHS: rhs})
		}
		if p.isPunct(",") {
			p.next()
			continue
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return inits, nil
	}
}

func (p *parser) parseBlockOrStmt(proc *Proc) ([]Stmt, error) {
	if p.isPunct("{") {
		p.next()
		return p.parseBody(proc)
	}
	s, err := p.parseStmt(proc)
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt(proc *Proc) (Stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		p.next()
		body, err := p.parseBody(proc)
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Body: body}, nil
	case p.isKeyword("if"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlockOrStmt(proc)
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.isKeyword("else") {
			p.next()
			els, err = p.parseBlockOrStmt(proc)
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.isKeyword("while"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrStmt(proc)
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.isKeyword("atomic"):
		p.next()
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		body, err := p.parseBody(proc)
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Body: body}, nil
	case p.isKeyword("return"):
		p.next()
		if p.isPunct(";") {
			p.next()
			return &ReturnStmt{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: e}, nil
	case p.isKeyword("assume"), p.isKeyword("assert"):
		kw := p.next().text
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if kw == "assume" {
			return &AssumeStmt{Cond: cond}, nil
		}
		return &AssertStmt{Cond: cond}, nil
	case p.isKeyword("join"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		tid, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &JoinStmt{Tid: tid}, nil
	case p.isKeyword("lock"), p.isKeyword("unlock"), p.isKeyword("init"), p.isKeyword("destroy"):
		kw := p.next().text
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected a mutex name, found %s", p.cur())
		}
		m := p.next().text
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		switch kw {
		case "lock":
			return &LockStmt{Mutex: m}, nil
		case "unlock":
			return &UnlockStmt{Mutex: m}, nil
		case "init":
			return &InitStmt{Mutex: m}, nil
		default:
			return &DestroyStmt{Mutex: m}, nil
		}
	case t.kind == tokIdent:
		// Either a call statement or an assignment.
		name := p.next().text
		if p.isPunct("(") {
			call, err := p.parseCallRest(name, nil)
			if err != nil {
				return nil, err
			}
			return call, nil
		}
		var lhs LValue = &VarRef{Name: name}
		if p.isPunct("[") {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			lhs = &IndexRef{Name: name, Index: idx}
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		// RHS may be create(...), a call with result, or an expression
		// (including the non-deterministic '*').
		if p.isKeyword("create") {
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected a procedure name, found %s", p.cur())
			}
			procName := p.next().text
			var args []Expr
			for p.isPunct(",") {
				p.next()
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &CreateStmt{Tid: lhs, Proc: procName, Args: args}, nil
		}
		if p.cur().kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "(" {
			procName := p.next().text
			p.next() // '('
			call, err := p.parseCallRest2(procName, lhs)
			if err != nil {
				return nil, err
			}
			return call, nil
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs}, nil
	}
	return nil, p.errf("expected a statement, found %s", t)
}

// parseCallRest parses "( args ) ;" after a procedure name; the opening
// parenthesis has not been consumed yet.
func (p *parser) parseCallRest(name string, result LValue) (Stmt, error) {
	p.next() // '('
	return p.parseCallRest2(name, result)
}

// parseCallRest2 parses "args ) ;" after the opening parenthesis.
func (p *parser) parseCallRest2(name string, result LValue) (Stmt, error) {
	var args []Expr
	for !p.isPunct(")") {
		if len(args) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.next() // ')'
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &CallStmt{Proc: name, Args: args, Result: result}, nil
}

// --- expressions (precedence climbing) ---

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOpOf = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	"&&": OpLAnd, "||": OpLOr,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: binOpOf[t.text], X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// Fold negated literals so -8 round-trips as a literal.
			if lit, ok := x.(*IntLit); ok {
				return &IntLit{Value: -lit.Value}, nil
			}
			return &UnaryExpr{Op: OpNeg, X: x}, nil
		case "!":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: OpNot, X: x}, nil
		case "~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: OpBitNot, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return &IntLit{Value: v}, nil
	case p.isKeyword("true"):
		p.next()
		return &BoolLit{Value: true}, nil
	case p.isKeyword("false"):
		p.next()
		return &BoolLit{Value: false}, nil
	case p.isPunct("*"):
		// '*' in expression position is the non-deterministic value.
		p.next()
		return &Nondet{}, nil
	case p.isPunct("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		if p.isPunct("[") {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &IndexRef{Name: t.text, Index: idx}, nil
		}
		return &VarRef{Name: t.text}, nil
	}
	return nil, p.errf("expected an expression, found %s", t)
}
