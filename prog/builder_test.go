package prog

import (
	"strings"
	"testing"
)

// buildFib reconstructs the Fibonacci program with the builder API.
func buildFib() (*Program, error) {
	b := NewBuilder("fibonacci")
	b.Global("i", Int).Global("j", Int)

	t1 := b.Proc("t1", Void)
	t1.Local("k", Int)
	t1.Assign("k", I(0))
	t1.While(Lt(V("k"), I(1)), func(p *ProcBuilder) {
		p.Assign("i", Add(V("i"), V("j")))
		p.Assign("k", Add(V("k"), I(1)))
	})

	t2 := b.Proc("t2", Void)
	t2.Local("k", Int)
	t2.Assign("k", I(0))
	t2.While(Lt(V("k"), I(1)), func(p *ProcBuilder) {
		p.Assign("j", Add(V("j"), V("i")))
		p.Assign("k", Add(V("k"), I(1)))
	})

	m := b.Proc("main", Void)
	m.Local("tid1", Int).Local("tid2", Int)
	m.Assign("i", I(1)).Assign("j", I(1))
	m.Create("tid1", "t1")
	m.Create("tid2", "t2")
	m.Join(V("tid1"))
	m.Join(V("tid2"))
	m.Assert(Lt(V("j"), I(3)))
	m.Assert(Lt(V("i"), I(3)))
	return b.Build()
}

func TestBuilderFibonacci(t *testing.T) {
	p, err := buildFib()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fibonacci" || len(p.Procs) != 3 || len(p.Globals) != 2 {
		t.Fatalf("structure: %+v", p)
	}
	// Its formatted source must parse back.
	if _, err := Parse(Format(p)); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, Format(p))
	}
}

func TestBuilderChecksSemantic(t *testing.T) {
	b := NewBuilder("bad")
	m := b.Proc("main", Void)
	m.Assign("undeclared", I(1))
	if _, err := b.Build(); err == nil {
		t.Fatal("checker not run")
	}
}

func TestBuilderMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("bad")
	b.Proc("main", Void).Assign("x", I(1))
	b.MustBuild()
}

func TestBuilderAllStatements(t *testing.T) {
	b := NewBuilder("all")
	b.Global("m", Mutex).Global("g", Int).Global("a", IntArray(3)).Global("flag", Bool)

	tw := b.Proc("twice", Int, Decl{Name: "x", Type: Int})
	tw.Return(Add(V("x"), V("x")))

	w := b.Proc("w", Void, Decl{Name: "n", Type: Int})
	w.Lock("m")
	w.AssignIdx("a", V("n"), V("n"))
	w.Unlock("m")
	w.Atomic(func(p *ProcBuilder) {
		p.Assign("g", Add(V("g"), I(1)))
		p.Assign("flag", Bl(true))
	})

	m := b.Proc("main", Void)
	m.Local("t", Int).Local("x", Int).Local("ok", Bool)
	m.Havoc("x")
	m.Assume(Ge(V("x"), I(0)))
	m.Assume(Lt(V("x"), I(3)))
	m.Call("x", "twice", V("x"))
	m.Create("t", "w", V("x"))
	m.Join(V("t"))
	m.Assign("ok", LAnd(LOr(V("flag"), Bl(true)), Not(Eq(V("g"), Neg(I(1))))))
	m.If(V("ok"), func(p *ProcBuilder) {
		p.Assert(Ne(V("g"), I(99)))
	}, func(p *ProcBuilder) {
		p.Assert(Bl(false))
	})

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	src := Format(p)
	for _, want := range []string{"lock(m)", "atomic", "create(w", "join(t)", "assume", "twice"} {
		if !strings.Contains(src, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, src)
		}
	}
	if _, err := Parse(src); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestExprHelpers(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Add(I(1), I(2)), "(1 + 2)"},
		{Sub(V("x"), I(1)), "(x - 1)"},
		{Mul(I(2), I(3)), "(2 * 3)"},
		{Le(V("x"), I(4)), "(x <= 4)"},
		{Gt(V("x"), I(4)), "(x > 4)"},
		{Idx("a", I(0)), "a[0]"},
		{Nd(), "*"},
		{Bl(false), "false"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%q != %q", got, c.want)
		}
	}
}
