package prog

import (
	"strings"
	"testing"
)

const fibSrc = `
// Fibonacci (Fig. 2 of the paper), N = 3.
int i, j;

void t1() {
  int k = 0;
  while (k < 3) {
    i = i + j;
    k = k + 1;
  }
}

void t2() {
  int k = 0;
  while (k < 3) {
    j = j + i;
    k = k + 1;
  }
}

void main() {
  int tid1, tid2;
  int max;

  i = 1;
  j = 1;

  tid1 = create(t1);
  tid2 = create(t2);

  join(tid1);
  join(tid2);

  max = 21;

  assert(j < max);
  assert(i < max);
}
`

func TestParseFibonacci(t *testing.T) {
	p, err := Parse(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Globals) != 2 {
		t.Fatalf("globals: %d", len(p.Globals))
	}
	if len(p.Procs) != 3 {
		t.Fatalf("procs: %d", len(p.Procs))
	}
	if p.Main() == nil {
		t.Fatal("no main")
	}
	if p.Proc("t1") == nil || p.Proc("t2") == nil {
		t.Fatal("thread procs missing")
	}
	if p.Proc("nope") != nil {
		t.Fatal("phantom proc")
	}
	// t1 has one local (k) and a while loop.
	t1 := p.Proc("t1")
	if len(t1.Locals) != 1 || t1.Locals[0].Name != "k" {
		t.Fatalf("t1 locals: %v", t1.Locals)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p1 := MustParse(fibSrc)
	src2 := Format(p1)
	p2, err := Parse(src2)
	if err != nil {
		t.Fatalf("re-parse of formatted output failed: %v\n%s", err, src2)
	}
	if Format(p2) != src2 {
		t.Fatal("Format not a fixpoint")
	}
}

func TestParseAllConstructs(t *testing.T) {
	src := `
int g;
int buf[4];
bool flag;
mutex m;

int twice(int x) {
  return x + x;
}

void worker(int id, bool fast) {
  int v;
  lock(m);
  buf[id] = id * 2;
  unlock(m);
  v = twice(id);
  atomic {
    g = g + v;
    flag = true;
  }
  if (fast && (g >= 2)) {
    g = g - 1;
  } else {
    g = g + 1;
  }
}

void main() {
  int t1, t2;
  int x;
  init(m);
  x = *;
  assume(x > 0);
  assume(x < 3);
  t1 = create(worker, x, true);
  t2 = create(worker, x + 1, false);
  join(t1);
  join(t2);
  destroy(m);
  assert(buf[1] == 2 || !flag);
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the printer.
	if _, err := Parse(Format(p)); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
void main() {
  int x;
  x = 1 + 2 * 3;
  assert(x == 7);
  x = (1 + 2) * 3;
  assert(x == 9);
  x = 16 >> 2 + 1;
  assert(x == 2);
  x = 1 | 2 ^ 3 & 5;
  assert(x == 3);
  assert(1 < 2 == true);
  assert(true || false && false);
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// x = 1 + 2*3 must parse as 1+(2*3).
	as := p.Main().Body[0].(*AssignStmt)
	bin := as.RHS.(*BinaryExpr)
	if bin.Op != OpAdd {
		t.Fatalf("precedence broken: top op %v", bin.Op)
	}
	if inner, ok := bin.Y.(*BinaryExpr); !ok || inner.Op != OpMul {
		t.Fatal("precedence broken: rhs not a product")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing semicolon", "void main() { int x\n x = 1; }"},
		{"bad char", "void main() { @ }"},
		{"unclosed brace", "void main() { int x;"},
		{"bad toplevel", "x = 1;"},
		{"missing paren", "void main( { }"},
		{"bad array len", "int a[0]; void main() { }"},
		{"garbage expr", "void main() { int x; x = ; }"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no main", "void f() { }", "no main"},
		{"main params", "void main(int x) { }", "main must not take parameters"},
		{"main ret", "int main() { return 1; }", "main must return void"},
		{"dup global", "int x; int x; void main() { }", "duplicate global"},
		{"dup proc", "void f() { } void f() { } void main() { }", "duplicate procedure"},
		{"dup local", "void main() { int x; int x; }", "duplicate local"},
		{"shadow", "int x; void main() { int x; }", "shadows a global"},
		{"undefined var", "void main() { int x; x = y; }", "undefined variable"},
		{"type mismatch", "void main() { int x; x = true; }", "cannot assign"},
		{"call undefined", "void main() { f(); }", "undefined procedure"},
		{"call main", "void f() { main(); } void main() { f(); }", "main cannot be called"},
		{"create main", "void main() { int t; t = create(main); }", "main cannot be spawned"},
		{"create nonvoid", "int f() { return 1; } void main() { int t; t = create(f); }", "must return void"},
		{"create argc", "void f(int x) { } void main() { int t; t = create(f); }", "want 1"},
		{"bad assert", "void main() { assert(1); }", "must be bool"},
		{"bad if", "void main() { if (1) { } }", "must be bool"},
		{"bad join", "void main() { join(true); }", "must be int"},
		{"bad lock", "int m; void main() { lock(m); }", "not a global mutex"},
		{"local mutex", "void main() { mutex m; }", "must be global"},
		{"nondet in expr", "void main() { int x; x = 1 + *; }", "may only appear"},
		{"div nonconst", "void main() { int x; x = 4 / x; }", "power-of-two"},
		{"div nonpow2", "void main() { int x; x = x / 3; }", "power-of-two"},
		{"mutex assigned", "mutex m; void main() { m = 1; }", "cannot be assigned"},
		{"array as scalar", "int a[3]; void main() { a = 1; }", "cannot be used as a scalar"},
		{"index nonarray", "int x; void main() { x[0] = 1; }", "is not an array"},
		{"bool index", "int a[3]; void main() { a[true] = 1; }", "must be int"},
		{"return in void", "void main() { return 1; }", "return with a value"},
		{"missing return value", "int f() { return; } void main() { }", "return without a value"},
		{"void result", "void f() { } void main() { int x; x = f(); }", "returns void"},
		{"eq mismatch", "void main() { assert(1 == true); }", "matching int or bool"},
		{"logical on ints", "void main() { assert(1 && 2); }", "needs bool"},
		{"arith on bools", "void main() { int x; x = true + false; }", "needs int"},
		{"not on int", "void main() { assert(!1); }", "needs bool"},
		{"neg on bool", "void main() { int x; x = -true; }", "needs int"},
		{"void global", "void x; void main() { }", "void type"},
		{"array param", "void f(int a) { } void main() { }", ""},
	}
	for _, c := range cases {
		if c.want == "" {
			continue
		}
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected check error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestDivByPowerOfTwoAllowed(t *testing.T) {
	if _, err := Parse("void main() { int x; x = 8; x = x / 2; x = x % 4; }"); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "/* block \n comment */ void main() { // line\n /* another */ }"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDecl(t *testing.T) {
	p := MustParse("int a, b, c; void main() { int x, y; x = 1; y = x; a = y; b = a; c = b; }")
	if len(p.Globals) != 3 {
		t.Fatalf("globals: %d", len(p.Globals))
	}
	if len(p.Main().Locals) != 2 {
		t.Fatalf("locals: %d", len(p.Main().Locals))
	}
}

func TestLocalInitialiser(t *testing.T) {
	p := MustParse("void main() { int x = 5; assert(x == 5); }")
	// The initialiser becomes an assignment statement.
	if len(p.Main().Body) != 2 {
		t.Fatalf("body: %d stmts", len(p.Main().Body))
	}
	if _, ok := p.Main().Body[0].(*AssignStmt); !ok {
		t.Fatal("initialiser not lowered to assignment")
	}
}

func TestTypeStrings(t *testing.T) {
	if Int.String() != "int" || Bool.String() != "bool" || Void.String() != "void" || Mutex.String() != "mutex" {
		t.Fatal("scalar type strings")
	}
	if IntArray(4).String() != "int[4]" || BoolArray(2).String() != "bool[2]" {
		t.Fatal("array type strings")
	}
	if !IntArray(4).IsArray() || Int.IsArray() {
		t.Fatal("IsArray")
	}
}

func TestStmtExprStrings(t *testing.T) {
	p := MustParse(`
mutex m;
int a[2];
void f(int v) { a[v] = v; }
int g(int v) { return v; }
void main() {
  int t; int x;
  init(m); lock(m); unlock(m); destroy(m);
  x = *;
  t = create(f, x);
  join(t);
  f(1);
  x = g(2); }
`)
	// Smoke-test that every statement has a printable form.
	for _, pr := range p.Procs {
		for _, s := range pr.Body {
			if s.String() == "" {
				t.Fatalf("empty String() for %T", s)
			}
		}
	}
}

func TestCheckErrorForBadCall(t *testing.T) {
	src := `int f(int x) { return x; } void main() { int y; y = f(true); }`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "arg 0") {
		t.Fatalf("got %v", err)
	}
}

func TestNondetAllowedForBool(t *testing.T) {
	if _, err := Parse("bool b; void main() { b = *; assume(b); }"); err != nil {
		t.Fatal(err)
	}
}
