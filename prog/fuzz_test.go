package prog

import "testing"

// FuzzParse checks that the front end never panics and that accepted
// programs survive a print/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"void main() { }",
		"int g; void main() { g = 1; assert(g == 1); }",
		"mutex m; void main() { lock(m); unlock(m); }",
		"int a[3]; void main() { int i; i = *; a[i] = 1; }",
		"void w() { } void main() { int t; t = create(w); join(t); }",
		"void main() { if (true) { } else { while (false) { } } }",
		"void main() { atomic { } }",
		"int g; void main() { g = 1 + 2 * 3 - -4 / 2 % 2 << 1 >> 1; }",
		"void main() { assert(1 < 2 && true || !false); }",
		"int x; void main() { /* comment */ // line\n }",
		"void main() { int x = 5, y; y = x; }",
		"int f(int n) { if (n > 0) { return f(n - 1); } return 0; }\nvoid main() { int x; x = f(3); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		formatted := Format(p)
		p2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\ninput: %q\nformatted:\n%s", err, src, formatted)
		}
		if Format(p2) != formatted {
			t.Fatalf("Format not a fixpoint for %q", src)
		}
	})
}
