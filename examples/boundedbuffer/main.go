// Boundedbuffer: parallel analysis of a racy producer/consumer buffer.
//
// This example mirrors the paper's headline experiment (Table 2) on one
// program: the bounded buffer whose producers test the fill level
// outside the critical section. It verifies the program at a safe bound
// and at the bug bound, over 1, 2, 4 and 8 cores, and prints the
// speedups obtained by partitioning the trace space — no change to the
// formula other than a handful of frozen unit assumptions per solver.
//
//	go run ./examples/boundedbuffer
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/prog"
)

const buffer = `
mutex m;
int count;
int buf[2];
int oflow;
int got;

void producer(int v) {
  int c;
  int k = 0;
  while (k < 2) {
    c = count;          // unsynchronised check: the bug
    if (c < 1) {
      lock(m);
      buf[count] = v;
      count = count + 1;
      if (count > 1) {
        oflow = 1;
      }
      unlock(m);
    }
    k = k + 1;
  }
}

void consumer() {
  int tries = 0;
  while (tries < 2) {
    lock(m);
    if (count > 0) {
      count = count - 1;
      got = got + 1;
    }
    unlock(m);
    tries = tries + 1;
  }
}

void main() {
  int t1, t2, t3;
  t1 = create(producer, 1);
  t2 = create(producer, 2);
  t3 = create(consumer);
  join(t1);
  join(t2);
  join(t3);
  assert(oflow == 0);
}
`

func main() {
	p, err := prog.Parse(buffer)
	if err != nil {
		log.Fatal(err)
	}
	for _, contexts := range []int{5, 6} {
		fmt.Printf("unwind=2 contexts=%d:\n", contexts)
		var seq time.Duration
		for _, cores := range []int{1, 2, 4, 8} {
			res, err := repro.Verify(context.Background(), p, repro.Options{
				Unwind:   2,
				Contexts: contexts,
				Cores:    cores,
			})
			if err != nil {
				log.Fatal(err)
			}
			if cores == 1 {
				seq = res.SolveTime
			}
			speedup := float64(seq) / float64(res.SolveTime)
			fmt.Printf("  cores=%d: %-7s solve=%-12v speedup=%.2f (winner partition %d)\n",
				cores, res.Verdict, res.SolveTime, speedup, res.Winner)
		}
	}
}
