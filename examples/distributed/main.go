// Distributed: a complete coordinator/worker analysis over localhost TCP.
//
// The coordinator splits 16 trace-space partitions into chunks of 4 and
// serves them to three workers (one deliberately crashes mid-job and
// reconnects, demonstrating chunk reassignment and the worker-health
// registry). The program under analysis is
// the work-stealing queue at its bug bound, so one worker finds the
// counterexample and the coordinator broadcasts termination — the
// cross-machine termination the paper's prototype left as future work.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/bench"
	"repro/internal/distrib"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("coordinator listening on %s\n", addr)

	prog := bench.Workstealingqueue()
	resCh := make(chan *distrib.CoordinatorResult, 1)
	go func() {
		res, err := distrib.Coordinate(context.Background(), ln, prog, distrib.CoordinatorOptions{
			Unwind:     2,
			Contexts:   7,
			Partitions: 16,
			ChunkSize:  4,
		})
		if err != nil {
			log.Fatal(err)
		}
		resCh <- res
	}()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		opts := distrib.WorkerOptions{Name: fmt.Sprintf("worker-%d", i), Cores: 2}
		if i == 2 {
			// Fault injection: crash upon receiving the second job, then
			// reconnect with backoff and keep working.
			opts.Faults = distrib.DropAt(1)
			opts.MaxReconnects = 3
		}
		go func(opts distrib.WorkerOptions) {
			defer wg.Done()
			jobs, err := distrib.Work(context.Background(), addr, opts)
			if err != nil {
				fmt.Printf("%s: stopped after %d jobs (%v)\n", opts.Name, jobs, err)
				return
			}
			fmt.Printf("%s: completed %d jobs\n", opts.Name, jobs)
		}(opts)
	}

	res := <-resCh
	wg.Wait()
	fmt.Printf("\nverdict: %v\n", res.Verdict)
	fmt.Printf("winning partition: %d of 16\n", res.Winner)
	fmt.Printf("jobs completed: %d, chunks reassigned after failures: %d\n", res.Jobs, res.Reassigned)
	fmt.Printf("wall time: %v\n", res.Wall)
}
