// Quickstart: verify the paper's Fibonacci program (Fig. 2).
//
// The program spawns two threads that repeatedly add the shared
// variables i and j into each other; only the perfectly alternating
// schedule drives them up to fib(2N+2), violating the final assertions.
// We ask the verifier for increasing context bounds and watch the bug
// appear exactly at the alternation depth, then print the counterexample
// schedule found by the partitioned parallel analysis.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/prog"
)

const fibonacci = `
int i, j;

void t1() {
  int k = 0;
  while (k < 2) {
    i = i + j;
    k = k + 1;
  }
}

void t2() {
  int k = 0;
  while (k < 2) {
    j = j + i;
    k = k + 1;
  }
}

void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 8);
  assert(i < 8);
}
`

func main() {
	p, err := prog.Parse(fibonacci)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program under analysis:")
	fmt.Println(prog.Format(p))

	for contexts := 3; contexts <= 6; contexts++ {
		res, err := repro.Verify(context.Background(), p, repro.Options{
			Unwind:   2,
			Contexts: contexts,
			Cores:    4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("contexts=%d: %-7s (%d vars, %d clauses, %d partitions, solve %v)\n",
			contexts, res.Verdict, res.Vars, res.Clauses, res.Partitions, res.SolveTime)
		if res.Unsafe() {
			fmt.Printf("\ncounterexample: %s\n", res.Counterexample)
			fmt.Println("schedule (thread runs up to context-switch point):")
			for i, st := range res.Schedule {
				fmt.Printf("  context %d: %s (thread %d) -> %d\n", i, st.Proc, st.Thread, st.Cs)
			}
			return
		}
	}
	fmt.Println("no violation within the explored bounds")
}
