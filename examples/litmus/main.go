// Litmus: classic memory-model litmus tests under sequential
// consistency, TSO, and PSO via store-buffer transformations.
//
// The paper (Sect. 5) notes that its partitioned analysis extends to
// weak memory models through program transformations that leave the
// scheduler untouched. This example demonstrates exactly that: the
// store-buffering test fails under both TSO and PSO while the
// message-passing test fails only under PSO (TSO keeps stores in program
// order), and all six verdicts come from the same partitioned parallel
// analysis.
//
//	go run ./examples/litmus
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/weakmem"
	"repro/prog"
)

const storeBuffering = `
int x, y;
int r1, r2;

void t1() {
  x = 1;
  r1 = y;
}

void t2() {
  y = 1;
  r2 = x;
}

void main() {
  int a, b;
  a = create(t1);
  b = create(t2);
  join(a);
  join(b);
  assert(!(r1 == 0 && r2 == 0));
}
`

const messagePassing = `
int data, flag, out;

void sender() {
  data = 1;
  flag = 1;
}

void receiver() {
  int f;
  f = flag;
  if (f == 1) {
    out = data;
  } else {
    out = 1;
  }
}

void main() {
  int a, b;
  out = 1;
  a = create(sender);
  b = create(receiver);
  join(a);
  join(b);
  assert(out == 1);
}
`

func main() {
	cases := []struct {
		name     string
		src      string
		contexts int
	}{
		{"store buffering (SB)", storeBuffering, 6},
		{"message passing (MP)", messagePassing, 6},
	}
	for _, c := range cases {
		sc := prog.MustParse(c.src)
		pso, err := weakmem.Transform(sc)
		if err != nil {
			log.Fatal(err)
		}
		tso, err := weakmem.TransformTSO(sc, 2)
		if err != nil {
			log.Fatal(err)
		}
		scRes := verify(sc, c.contexts)
		tsoRes := verify(tso, c.contexts+1)
		psoRes := verify(pso, c.contexts)
		fmt.Printf("%-22s SC: %-7s TSO: %-7s PSO: %-7s", c.name, scRes.Verdict, tsoRes.Verdict, psoRes.Verdict)
		if psoRes.Verdict == core.Unsafe {
			fmt.Printf("  (weak schedule: %v)", psoRes.Trace)
		}
		fmt.Println()
	}
	fmt.Println("\nStore buffering fails as soon as stores hide in per-thread buffers")
	fmt.Println("(TSO and PSO); message passing additionally needs stores to different")
	fmt.Println("locations to reorder, which TSO forbids and PSO allows. The")
	fmt.Println("transformations leave the scheduler untouched, so the partitioned")
	fmt.Println("analysis runs unchanged on all of them.")
}

func verify(p *prog.Program, contexts int) *core.Result {
	res, err := core.Verify(context.Background(), p, core.Options{
		Unwind:     2,
		Contexts:   contexts,
		Cores:      4,
		Preprocess: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
