// Lockfree: finding an ABA-style bug in a hand-written lock-free
// counter, and proving a fixed version safe.
//
// The buggy counter reads the shared value, computes locally, and writes
// back without re-validating (a lost update). The fixed version performs
// the read-modify-write inside an atomic block, modelling a
// compare-and-swap retry loop. The example shows both verdicts plus the
// decoded interleaving of the bug, and demonstrates the VerifySource
// convenience entry point of the public API.
//
//	go run ./examples/lockfree
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const buggy = `
int counter;

void inc() {
  int tmp;
  tmp = counter;      // read
  tmp = tmp + 1;      // modify (local)
  counter = tmp;      // write back: lost update race
}

void main() {
  int t1, t2;
  t1 = create(inc);
  t2 = create(inc);
  join(t1);
  join(t2);
  assert(counter == 2);
}
`

const fixed = `
int counter;

void inc() {
  int tmp;
  int done = 0;
  int k = 0;
  while (k < 2) {
    if (done == 0) {
      tmp = counter;
      atomic {              // CAS(counter, tmp, tmp+1)
        if (counter == tmp) {
          counter = tmp + 1;
          done = 1;
        }
      }
    }
    k = k + 1;
  }
  assume(done == 1);        // bounded retry: consider completed increments
}

void main() {
  int t1, t2;
  t1 = create(inc);
  t2 = create(inc);
  join(t1);
  join(t2);
  assert(counter == 2);
}
`

func main() {
	opts := repro.Options{Unwind: 2, Contexts: 6, Cores: 4}

	res, err := repro.VerifySource(context.Background(), buggy, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buggy counter:  %s\n", res.Verdict)
	if res.Unsafe() {
		fmt.Printf("  %s\n", res.Counterexample)
		fmt.Print("  interleaving:")
		for _, st := range res.Schedule {
			fmt.Printf(" %s→%d", st.Proc, st.Cs)
		}
		fmt.Println()
	}

	res, err = repro.VerifySource(context.Background(), fixed, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CAS-fixed counter: %s (exhaustive search over %d partitions, %v)\n",
		res.Verdict, res.Partitions, res.SolveTime)
}
