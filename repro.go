// Package repro is a from-scratch Go reproduction of "Parallel and
// Distributed Bounded Model Checking of Multi-threaded Programs"
// (Inverso & Trubiani, PPoPP 2020): SAT-based bounded model checking of
// multi-threaded programs via lazy sequentialization, parallelised by
// symbolic partitioning of the interleaving space.
//
// The public API is this facade plus the prog package (the multi-threaded
// input language). A verification run takes a program, an unwinding
// bound, a context bound, and a core count; it decomposes the set of
// concurrent traces into 2^p symbolic partitions solved by independent
// CDCL instances, terminating as soon as one finds a counterexample:
//
//	p, _ := prog.Parse(src)
//	res, _ := repro.Verify(context.Background(), p, repro.Options{
//		Unwind: 2, Contexts: 5, Cores: 8,
//	})
//	fmt.Println(res.Verdict, res.Counterexample)
//
// Everything underneath — the language front end, program unfolding,
// sequentialization schedulers, bit-blasting, the CDCL SAT solver, the
// partitioning, and the parallel/distributed runners — is implemented in
// this module with no dependencies beyond the Go standard library.
package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sat"
	"repro/prog"
)

// Options configures a verification run.
type Options struct {
	// Unwind is the loop/recursion unwinding bound (default 1).
	Unwind int
	// Contexts is the number of execution contexts explored (default 1).
	Contexts int
	// Rounds, if > 0, selects the original round-robin sequentialization
	// with that round bound instead of context bounding.
	Rounds int
	// Width is the bit width of the int type (default 8).
	Width int
	// Cores is the number of concurrently running solver instances
	// (default 1).
	Cores int
	// Partitions overrides the trace-space partition count (a power of
	// two; default: Cores rounded up to a power of two).
	Partitions int
	// From/To restrict the run to the half-open partition range
	// [From, To) for distribution across machines; zero values mean all.
	From, To int
	// Preprocess runs the MiniSat-style simplifier before partitioning
	// (the paper's solver configuration).
	Preprocess bool
	// CertifyUnsat checks a clausal refutation proof for every UNSAT
	// partition, certifying Safe verdicts independently of the search.
	CertifyUnsat bool
}

// Step is one scheduler decision of a counterexample: thread Thread runs
// up to context-switch point Cs.
type Step struct {
	// Thread is the static thread index (0 = main).
	Thread int
	// Proc is the thread's source procedure name.
	Proc string
	// Cs is the context-switch point (block index) reached.
	Cs int
}

// Result reports a verification outcome.
type Result struct {
	// Verdict is "SAFE", "UNSAFE", or "UNKNOWN".
	Verdict string
	// Counterexample describes the failed assertion (UNSAFE only).
	Counterexample string
	// Schedule is the interleaving exposing the bug (UNSAFE only).
	Schedule []Step
	// Vars and Clauses give the propositional formula size.
	Vars, Clauses int
	// Threads is the number of static thread instances analysed.
	Threads int
	// Partitions is the number of trace-space partitions analysed.
	Partitions int
	// Winner is the partition in which the bug was found (-1 if none).
	Winner int
	// Certified reports that a Safe verdict carried checked refutation
	// proofs for every partition (CertifyUnsat only).
	Certified bool
	// EncodeTime and SolveTime split the analysis cost.
	EncodeTime, SolveTime time.Duration
}

// Safe reports whether the program was proved safe within the bounds.
func (r *Result) Safe() bool { return r.Verdict == "SAFE" }

// Unsafe reports whether a reachable violation was found.
func (r *Result) Unsafe() bool { return r.Verdict == "UNSAFE" }

// Verify analyses a checked program within the given bounds.
func Verify(ctx context.Context, p *prog.Program, opts Options) (*Result, error) {
	res, err := core.Verify(ctx, p, core.Options{
		Unwind:       opts.Unwind,
		Contexts:     opts.Contexts,
		Rounds:       opts.Rounds,
		Width:        opts.Width,
		Cores:        opts.Cores,
		Partitions:   opts.Partitions,
		From:         opts.From,
		To:           opts.To,
		Preprocess:   opts.Preprocess,
		CertifyUnsat: opts.CertifyUnsat,
		Solver:       sat.Options{},
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Verdict:    res.Verdict.String(),
		Certified:  res.Certified,
		Vars:       res.Vars,
		Clauses:    res.Clauses,
		Threads:    res.Threads,
		Partitions: res.Partitions,
		Winner:     res.Winner,
		EncodeTime: res.EncodeTime,
		SolveTime:  res.SolveTime,
	}
	if res.Violation != nil {
		out.Counterexample = res.Violation.Error()
	}
	if res.Trace != nil {
		for _, c := range res.Trace.Schedule {
			st := Step{Thread: c.Thread, Cs: c.Cs}
			if c.Thread >= 0 && c.Thread < len(res.ThreadProcs) {
				st.Proc = res.ThreadProcs[c.Thread]
			} else {
				st.Proc = fmt.Sprintf("thread-%d", c.Thread)
			}
			out.Schedule = append(out.Schedule, st)
		}
	}
	return out, nil
}

// VerifySource parses, checks, and verifies a program given as source
// text in the paper's C-like language.
func VerifySource(ctx context.Context, src string, opts Options) (*Result, error) {
	p, err := prog.Parse(src)
	if err != nil {
		return nil, err
	}
	return Verify(ctx, p, opts)
}
