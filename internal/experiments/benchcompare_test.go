package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFile(date string, entries ...BenchEntry) NamedBench {
	return NamedBench{Path: "BENCH_" + date + ".json", File: BenchFile{Date: date, Suite: "table2", Entries: entries}}
}

func entry(inst string, cores int, wallMS, conflicts int64, verdict string) BenchEntry {
	return BenchEntry{Instance: inst, Unwind: 1, Contexts: 2, Cores: cores, WallMillis: wallMS, Conflicts: conflicts, Verdict: verdict}
}

func TestCompareBenchDeltas(t *testing.T) {
	base := benchFile("2026-08-01",
		entry("fibonacci", 1, 100, 50, "SAFE"),
		entry("fibonacci", 2, 80, 50, "SAFE"),
		entry("safestack", 1, 200, 90, "UNSAFE"),
		entry("boundedbuffer", 1, 0, 0, "SAFE"), // sub-ms base: never wall-gated
		entry("dropped", 1, 10, 1, "SAFE"),
	)
	head := benchFile("2026-08-02",
		entry("fibonacci", 1, 90, 48, "SAFE"),    // improved
		entry("fibonacci", 2, 150, 70, "SAFE"),   // 1.875x: regression
		entry("safestack", 1, 190, 90, "SAFE"),   // verdict flip
		entry("boundedbuffer", 1, 40, 0, "SAFE"), // huge ratio but base < 1ms
		entry("added", 1, 5, 1, "SAFE"),
	)
	deltas := CompareBench(base, head, 1.25, 0)

	byKey := map[string]BenchDelta{}
	for _, d := range deltas {
		byKey[d.Key.String()] = d
	}
	if d := byKey["fibonacci u=1 c=2 cores=1"]; d.Regressed || d.Ratio > 1 {
		t.Errorf("improved cell flagged: %+v", d)
	}
	if d := byKey["fibonacci u=1 c=2 cores=2"]; !d.Regressed || d.VerdictFlip {
		t.Errorf("1.875x cell not gated: %+v", d)
	}
	if d := byKey["safestack u=1 c=2 cores=1"]; !d.Regressed || !d.VerdictFlip {
		t.Errorf("verdict flip not gated: %+v", d)
	}
	if d := byKey["boundedbuffer u=1 c=2 cores=1"]; d.Regressed {
		t.Errorf("sub-ms base wall-gated: %+v", d)
	}
	if d := byKey["dropped u=1 c=2 cores=1"]; d.OnlyIn != "base" || d.Regressed {
		t.Errorf("dropped cell mishandled: %+v", d)
	}
	if d := byKey["added u=1 c=2 cores=1"]; d.OnlyIn != "head" || d.Regressed {
		t.Errorf("added cell mishandled: %+v", d)
	}
	if got := Regressions(deltas); got != 2 {
		t.Errorf("Regressions = %d, want 2 (wall + verdict flip)", got)
	}

	// With the gate disabled only the verdict flip fails.
	if got := Regressions(CompareBench(base, head, 0, 0)); got != 1 {
		t.Errorf("gate-off Regressions = %d, want 1", got)
	}

	// The noise floor exempts the 80 ms-base 1.875x cell from wall
	// gating, leaving only the verdict flip.
	floored := CompareBench(base, head, 1.25, 100)
	if got := Regressions(floored); got != 1 {
		t.Errorf("floor-100 Regressions = %d, want 1 (verdict flip only)", got)
	}
	for _, d := range floored {
		if d.Key.Instance == "fibonacci" && d.Key.Cores == 2 && d.Regressed {
			t.Errorf("sub-floor cell wall-gated: %+v", d)
		}
	}
}

func TestWriteCompareGolden(t *testing.T) {
	files := []NamedBench{
		benchFile("2026-08-01", entry("fibonacci", 1, 100, 50, "SAFE"), entry("fibonacci", 2, 80, 40, "SAFE")),
		benchFile("2026-08-02", entry("fibonacci", 1, 102, 50, "SAFE"), entry("fibonacci", 2, 82, 40, "SAFE")),
		benchFile("2026-08-03", entry("fibonacci", 1, 104, 51, "SAFE"), entry("fibonacci", 2, 160, 70, "SAFE")),
	}
	base, head := files[1], files[2]
	deltas := CompareBench(base, head, 1.25, 0)

	var b strings.Builder
	WriteCompare(&b, files, deltas, 1.25, 0)
	got := trimTrailing(b.String())

	want := `bench comparison: 2026-08-02 (base) -> 2026-08-03 (head), gate 1.25x

instance                u  c cores    base-ms    head-ms   ratio    conflicts
fibonacci               1  2     1        102        104   1.02x    50→51
fibonacci               1  2     2         82        160   1.95x    40→70     REGRESSION

wall-time trajectory (ms per file):
instance/config                      2026-08-01   2026-08-02   2026-08-03
fibonacci u=1 c=2 cores=1                   100          102          104
fibonacci u=1 c=2 cores=2                    80           82          160

GATE FAILED: 1 cell(s) regressed beyond 1.25x
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// trimTrailing strips trailing spaces per line so the golden stays
// readable (fixed-width columns pad short flag cells with blanks).
func trimTrailing(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	return strings.Join(lines, "\n")
}

func TestWriteComparePassing(t *testing.T) {
	files := []NamedBench{
		benchFile("2026-08-01", entry("fibonacci", 1, 100, 50, "SAFE")),
		benchFile("2026-08-02", entry("fibonacci", 1, 101, 50, "SAFE")),
	}
	deltas := CompareBench(files[0], files[1], 1.25, 0)
	if Regressions(deltas) != 0 {
		t.Fatalf("unexpected regressions: %+v", deltas)
	}
	var b strings.Builder
	WriteCompare(&b, files, deltas, 1.25, 0)
	if !strings.Contains(b.String(), "gate passed") {
		t.Errorf("missing pass line:\n%s", b.String())
	}
	if strings.Contains(b.String(), "trajectory") {
		t.Errorf("trend table rendered for a two-file trajectory:\n%s", b.String())
	}
}

func TestLoadBenchDirOrder(t *testing.T) {
	dir := t.TempDir()
	// Written out of lexical order; the date field governs.
	write := func(name, date string) {
		nb := benchFile(date, entry("fibonacci", 1, 100, 50, "SAFE"))
		data := `{"date":"` + date + `","suite":"table2","entries":[]}`
		_ = nb
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_zzz.json", "2026-07-01")
	write("BENCH_aaa.json", "2026-08-05")
	write("BENCH_mmm.json", "2026-08-01")

	files, err := LoadBenchDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dates []string
	for _, f := range files {
		dates = append(dates, f.File.Date)
	}
	want := []string{"2026-07-01", "2026-08-01", "2026-08-05"}
	for i := range want {
		if dates[i] != want[i] {
			t.Fatalf("order = %v, want %v", dates, want)
		}
	}

	// Non-bench files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	files2, err := LoadBenchDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files2) != 3 {
		t.Fatalf("len = %d, want 3", len(files2))
	}
}
