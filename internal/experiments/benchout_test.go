package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func benchRows() []Table2Row {
	return []Table2Row{
		{
			Cell: Cell{Bench: bench.Benchmark{Name: "fibonacci"}, U: 1, C: 3},
			Times: map[int]time.Duration{
				4: 250 * time.Millisecond,
				1: 900 * time.Millisecond,
			},
			Verdicts:   map[int]core.Verdict{1: core.Safe, 4: core.Safe},
			Conflicts:  map[int]int64{1: 120, 4: 180},
			Progress:   map[int]float64{1: 1, 4: 0.75},
			Partitions: map[int]int{1: 8, 4: 8},
		},
	}
}

func TestBenchEntriesSortedByCores(t *testing.T) {
	entries := BenchEntries(benchRows())
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (one per core count)", len(entries))
	}
	if entries[0].Cores != 1 || entries[1].Cores != 4 {
		t.Fatalf("cores not sorted ascending: %d, %d", entries[0].Cores, entries[1].Cores)
	}
	e := entries[1]
	if e.Instance != "fibonacci" || e.Unwind != 1 || e.Contexts != 3 {
		t.Fatalf("identity fields wrong: %+v", e)
	}
	if e.WallMillis != 250 || e.Conflicts != 180 || e.Partitions != 8 {
		t.Fatalf("measurement fields wrong: %+v", e)
	}
	if e.Progress != 0.75 {
		t.Fatalf("progress = %v, want 0.75", e.Progress)
	}
	if e.Verdict != core.Safe.String() {
		t.Fatalf("verdict = %q, want %q", e.Verdict, core.Safe.String())
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBench(path, benchRows()); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if bf.Suite != "table2" {
		t.Fatalf("suite = %q, want table2", bf.Suite)
	}
	if len(bf.Date) != len("2006-01-02") {
		t.Fatalf("date = %q, want YYYY-MM-DD", bf.Date)
	}
	if len(bf.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(bf.Entries))
	}
	if bf.Entries[0].Progress != 1 {
		t.Fatalf("progress_at_solve did not round-trip: %+v", bf.Entries[0])
	}
}
