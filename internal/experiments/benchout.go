package experiments

import (
	"encoding/json"
	"os"
	"time"
)

// BenchEntry is one instance measurement in a BENCH_<date>.json file —
// the perf-trajectory format: one entry per (instance, core count), so
// successive commits' files diff structurally.
type BenchEntry struct {
	Instance   string  `json:"instance"`
	Unwind     int     `json:"unwind"`
	Contexts   int     `json:"contexts"`
	Cores      int     `json:"cores"`
	WallMillis int64   `json:"wall_ms"`
	Conflicts  int64   `json:"conflicts"`
	Partitions int     `json:"partitions"`
	Progress   float64 `json:"progress_at_solve"`
	// PeakMemBytes is the largest single-instance solver footprint for
	// this cell (solver live-byte accounting, not process RSS).
	PeakMemBytes int64 `json:"peak_mem_bytes,omitempty"`
	// Splits and CubeDepth record the adaptive-scheduling activity for
	// this cell: cube splits performed and the deepest cube path
	// reached. Hedged counts speculative duplicate dispatches (only a
	// distributed run hedges; local cells record zero). All omitted when
	// adaptive scheduling was off.
	Splits    int    `json:"splits,omitempty"`
	CubeDepth int    `json:"cube_depth,omitempty"`
	Hedged    int    `json:"hedged,omitempty"`
	Verdict   string `json:"verdict"`
}

// BenchFile is the top-level shape of BENCH_<date>.json.
type BenchFile struct {
	Date    string       `json:"date"`
	Suite   string       `json:"suite"`
	Entries []BenchEntry `json:"entries"`
}

// BenchEntries flattens measured Table 2 rows into bench entries.
func BenchEntries(rows []Table2Row) []BenchEntry {
	var out []BenchEntry
	for _, r := range rows {
		for _, cores := range sortedCores(r.Times) {
			out = append(out, BenchEntry{
				Instance:     r.Bench.Name,
				Unwind:       r.U,
				Contexts:     r.C,
				Cores:        cores,
				WallMillis:   r.Times[cores].Milliseconds(),
				Conflicts:    r.Conflicts[cores],
				Partitions:   r.Partitions[cores],
				Progress:     r.Progress[cores],
				PeakMemBytes: r.PeakMemBytes[cores],
				Splits:       r.Splits[cores],
				CubeDepth:    r.CubeDepth[cores],
				Verdict:      r.Verdicts[cores].String(),
			})
		}
	}
	return out
}

// WriteBench writes the perf-trajectory file for one Table 2 run.
func WriteBench(path string, rows []Table2Row) error {
	bf := BenchFile{
		Date:    time.Now().Format("2006-01-02"),
		Suite:   "table2",
		Entries: BenchEntries(rows),
	}
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedCores(times map[int]time.Duration) []int {
	var cores []int
	for c := range times {
		cores = append(cores, c)
	}
	for i := 1; i < len(cores); i++ {
		for j := i; j > 0 && cores[j] < cores[j-1]; j-- {
			cores[j], cores[j-1] = cores[j-1], cores[j]
		}
	}
	return cores
}
