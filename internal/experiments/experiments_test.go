package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/portfolio"
)

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	all := Table1(&buf)
	if len(all) != 4 {
		t.Fatalf("benchmarks: %d", len(all))
	}
	out := buf.String()
	for _, name := range []string{"boundedbuffer", "eliminationstack", "safestack", "workstealingqueue"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s in output", name)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(false)
	if len(g) != 13 {
		t.Fatalf("grid cells: %d", len(g))
	}
	full := Grid(true)
	if len(full) <= len(g) {
		t.Fatal("full grid not larger")
	}
	reach := 0
	for _, c := range g {
		if c.Reach {
			reach++
		}
	}
	if reach != 3 {
		t.Fatalf("reachable cells: %d, want 3", reach)
	}
}

// smallCfg keeps the unit-test runtime modest.
func smallCfg() Config { return Config{Cores: []int{1, 2}} }

func TestTable2SmokeAndConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Table2(context.Background(), &buf, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Grid(false)) {
		t.Fatalf("rows: %d", len(rows))
	}
	if err := VerdictsConsistent(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Vars == 0 || r.Clauses == 0 {
			t.Fatalf("%s: missing formula size", r.Bench.Name)
		}
		if r.Times[1] <= 0 || r.Times[2] <= 0 {
			t.Fatalf("%s: missing times", r.Bench.Name)
		}
	}
}

func TestFig6Reduction(t *testing.T) {
	var buf bytes.Buffer
	st, err := Fig6(context.Background(), &buf, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative claim: the best partition's decision graph
	// is substantially smaller than the whole formula's.
	if st.BestDecisions >= st.WholeDecisions {
		t.Fatalf("no decision reduction: whole=%d best=%d", st.WholeDecisions, st.BestDecisions)
	}
	if st.BestMaxDepth > st.WholeMaxDepth {
		t.Fatalf("depth grew: whole=%d best=%d", st.WholeMaxDepth, st.BestMaxDepth)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("missing header")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	if err := AblationScheduler(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationPartitions(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationFreeze(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"round-robin", "dynamic", "frozen"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestTable34Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := Config{Cores: []int{1}}
	var buf bytes.Buffer
	// Restrict to a cheap subset by reusing Table2 on cores={1} first.
	t2, err := Table2(context.Background(), &buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table34(context.Background(), &buf, cfg, portfolio.StyleDiverse, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(t2) {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Times[1] <= 0 {
			t.Fatalf("%s: missing portfolio time", r.Bench.Name)
		}
	}
}

func TestVerdictsConsistentDetectsMismatch(t *testing.T) {
	rows := []Table2Row{{
		Cell:     Cell{Bench: Grid(false)[0].Bench, U: 1, C: 1, Reach: true},
		Verdicts: map[int]core.Verdict{1: core.Safe},
	}}
	if err := VerdictsConsistent(rows); err == nil {
		t.Fatal("mismatch not detected")
	}
}
