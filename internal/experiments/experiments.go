// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sect. 4) at laptop scale. Absolute times are not
// comparable with the paper's testbed; the reproduced quantities are the
// structural claims: speedup versus cores, growth of the partitioning
// advantage with the bounds, partitioned analysis beating
// general-purpose portfolio solvers on the same formulae, and improved
// scalability under distribution.
package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/flatten"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/portfolio"
	"repro/internal/sampler"
	"repro/internal/sat"
	"repro/internal/unfold"
	"repro/prog"
)

// Config scales the experiments.
type Config struct {
	// Cores are the parallelism degrees benchmarked (Table 2-4 columns).
	Cores []int
	// Full enables the most expensive configurations.
	Full bool
	// Real measures actual concurrent wall-clock times instead of the
	// deterministic makespan simulation. Requires at least as many
	// physical cores as the largest entry of Cores to be meaningful; the
	// default (simulation) reproduces the paper's speedup structure even
	// on single-core hosts, using the same protocol the paper used to
	// simulate its 128-core cluster.
	Real bool
	// SplitDepth enables adaptive cube splitting in the Table 2 runs
	// (Real mode only — the makespan simulation solves sequentially, so
	// no instance ever straggles behind an idle worker). SplitGrace and
	// SplitHardness tune the trigger; splits per cell land in the
	// BENCH_*.json trajectory.
	SplitDepth    int
	SplitGrace    time.Duration
	SplitHardness float64
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Cores: []int{1, 2, 4, 8}}
}

// Cell is one (program, unwind, contexts) configuration of Table 2.
type Cell struct {
	Bench bench.Benchmark
	U, C  int
	// Reach marks configurations with a reachable bug (the ● column).
	Reach bool
}

// Grid returns the Table 2 configuration grid (scaled from the paper's:
// same programs, same mixed SAT/UNSAT profile, bounds reduced so each
// cell runs in seconds).
func Grid(full bool) []Cell {
	bb := bench.BoundedbufferBench()
	es := bench.EliminationstackBench()
	ss := bench.SafestackBench()
	ws := bench.WorkstealingqueueBench()
	cells := []Cell{
		{bb, 2, 5, false},
		{bb, 2, 6, true},
		{bb, 3, 5, false},
		{bb, 3, 6, true},
		{es, 2, 4, false},
		{es, 2, 5, false},
		{es, 2, 6, false},
		{ss, 2, 4, false},
		{ss, 2, 5, false},
		{ss, 2, 6, false},
		{ws, 2, 5, false},
		{ws, 2, 6, false},
		{ws, 2, 7, true},
	}
	if full {
		cells = append(cells,
			Cell{es, 2, 7, false},
			Cell{ss, 2, 7, false},
		)
	}
	return cells
}

// Table2Row is one measured row of Table 2.
type Table2Row struct {
	Cell
	Vars, Clauses int
	Times         map[int]time.Duration // cores -> wall time
	Verdicts      map[int]core.Verdict
	// Conflicts, Progress, and Partitions record the flight-recorder
	// signals per core count: total solver conflicts, the
	// progress-at-solve estimate (minimum across partitions — how far
	// the furthest-behind partition got), and the partition count.
	Conflicts  map[int]int64
	Progress   map[int]float64
	Partitions map[int]int
	// PeakMemBytes is the largest single-instance solver footprint per
	// core count (max over partitions of the solver's own live-byte
	// accounting) — the resource-governance signal tracked alongside
	// times so memory regressions show up in the bench trajectory too.
	PeakMemBytes map[int]int64
	// Splits and CubeDepth record the adaptive-scheduling activity per
	// core count (Config.SplitDepth): cube splits performed and the
	// deepest cube path reached. Zero when splitting is disabled.
	Splits    map[int]int
	CubeDepth map[int]int
}

// Speedup returns times[1] / times[cores].
func (r *Table2Row) Speedup(cores int) float64 {
	base := r.Times[1]
	t := r.Times[cores]
	if t <= 0 {
		return 0
	}
	return float64(base) / float64(t)
}

// Table2 measures the scalability of the partitioned analysis
// (Sect. 4.1) over the configured core counts.
func Table2(ctx context.Context, w io.Writer, cfg Config) ([]Table2Row, error) {
	var rows []Table2Row
	fmt.Fprintf(w, "Table 2: scalability of symbolic interleaving partitioning\n")
	fmt.Fprintf(w, "%-18s %2s %2s %-5s %9s %9s", "program", "u", "c", "reach", "vars", "clauses")
	for _, c := range cfg.Cores {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("t%d(s)", c))
	}
	for _, c := range cfg.Cores[1:] {
		fmt.Fprintf(w, " %6s", fmt.Sprintf("s%d", c))
	}
	fmt.Fprintln(w)
	for _, cell := range Grid(cfg.Full) {
		row := Table2Row{
			Cell:         cell,
			Times:        map[int]time.Duration{},
			Verdicts:     map[int]core.Verdict{},
			Conflicts:    map[int]int64{},
			Progress:     map[int]float64{},
			Partitions:   map[int]int{},
			PeakMemBytes: map[int]int64{},
			Splits:       map[int]int{},
			CubeDepth:    map[int]int{},
		}
		for _, cores := range cfg.Cores {
			res, err := core.Verify(ctx, cell.Bench.Program, core.Options{
				Unwind: cell.U, Contexts: cell.C, Cores: cores,
				SimulateParallel: !cfg.Real,
				SplitDepth:       cfg.SplitDepth,
				SplitGrace:       cfg.SplitGrace,
				SplitHardness:    cfg.SplitHardness,
			})
			if err != nil {
				return nil, fmt.Errorf("table2 %s u=%d c=%d cores=%d: %w",
					cell.Bench.Name, cell.U, cell.C, cores, err)
			}
			row.Vars, row.Clauses = res.Vars, res.Clauses
			row.Times[cores] = res.SolveTime
			row.Verdicts[cores] = res.Verdict
			row.Partitions[cores] = res.Partitions
			var conflicts, peakMem int64
			minProgress := -1.0
			for _, inst := range res.Instances {
				conflicts += inst.Stats.Conflicts
				if minProgress < 0 || inst.Stats.Progress < minProgress {
					minProgress = inst.Stats.Progress
				}
				if inst.Stats.PeakMemBytes > peakMem {
					peakMem = inst.Stats.PeakMemBytes
				}
			}
			if minProgress < 0 {
				minProgress = 0
			}
			row.Conflicts[cores] = conflicts
			row.Progress[cores] = minProgress
			row.PeakMemBytes[cores] = peakMem
			row.Splits[cores] = res.Splits
			row.CubeDepth[cores] = res.MaxCubeDepth
		}
		rows = append(rows, row)
		printTable2Row(w, cfg, &row)
	}
	return rows, nil
}

func printTable2Row(w io.Writer, cfg Config, r *Table2Row) {
	reach := ""
	if r.Reach {
		reach = "  ●"
	}
	fmt.Fprintf(w, "%-18s %2d %2d %-5s %9d %9d", r.Bench.Name, r.U, r.C, reach, r.Vars, r.Clauses)
	for _, c := range cfg.Cores {
		fmt.Fprintf(w, " %9.3f", r.Times[c].Seconds())
	}
	for _, c := range cfg.Cores[1:] {
		fmt.Fprintf(w, " %6.2f", r.Speedup(c))
	}
	fmt.Fprintln(w)
}

// Table34Row is one measured row of Table 3 (sharing portfolio, Syrup
// stand-in) or Table 4 (diversified portfolio, Plingeling stand-in).
type Table34Row struct {
	Cell
	Times map[int]time.Duration
	// Ratio is portfolio time over partitioned time per core count
	// (the paper's Performance Ratio column).
	Ratio map[int]float64
}

// Table34 solves the same formulae with a general-purpose parallel
// portfolio (Sect. 4.2) and compares against the partitioned times.
func Table34(ctx context.Context, w io.Writer, cfg Config, style portfolio.Style, partitioned []Table2Row) ([]Table34Row, error) {
	name := "Table 3: parallel solver Syrup stand-in (clause-sharing portfolio)"
	if style == portfolio.StyleDiverse {
		name = "Table 4: parallel solver Plingeling stand-in (diversified portfolio)"
	}
	fmt.Fprintln(w, name)
	fmt.Fprintf(w, "%-18s %2s %2s %-5s", "program", "u", "c", "reach")
	for _, c := range cfg.Cores {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("t%d(s)", c))
	}
	for _, c := range cfg.Cores {
		fmt.Fprintf(w, " %6s", fmt.Sprintf("r%d", c))
	}
	fmt.Fprintln(w)

	var rows []Table34Row
	for i, cell := range Grid(cfg.Full) {
		enc, _, _, err := core.EncodeProgram(cell.Bench.Program, core.Options{
			Unwind: cell.U, Contexts: cell.C,
		})
		if err != nil {
			return nil, err
		}
		row := Table34Row{Cell: cell, Times: map[int]time.Duration{}, Ratio: map[int]float64{}}
		for _, cores := range cfg.Cores {
			popts := portfolio.Options{Cores: cores, Style: style}
			var wall time.Duration
			if cfg.Real {
				start := time.Now()
				if _, err := portfolio.Solve(ctx, enc.Formula(), popts); err != nil {
					return nil, err
				}
				wall = time.Since(start)
			} else {
				res, err := portfolio.Simulate(ctx, enc.Formula(), popts)
				if err != nil {
					return nil, err
				}
				wall = res.Wall
			}
			row.Times[cores] = wall
			if i < len(partitioned) {
				if pt := partitioned[i].Times[cores]; pt > 0 {
					row.Ratio[cores] = float64(row.Times[cores]) / float64(pt)
				}
			}
		}
		rows = append(rows, row)
		reach := ""
		if cell.Reach {
			reach = "  ●"
		}
		fmt.Fprintf(w, "%-18s %2d %2d %-5s", cell.Bench.Name, cell.U, cell.C, reach)
		for _, c := range cfg.Cores {
			fmt.Fprintf(w, " %9.3f", row.Times[c].Seconds())
		}
		for _, c := range cfg.Cores {
			fmt.Fprintf(w, " %6.2f", row.Ratio[c])
		}
		fmt.Fprintln(w)
	}
	return rows, nil
}

// Fig6Stats holds the decision-graph statistics of Fig. 6.
type Fig6Stats struct {
	WholeDecisions, WholeMaxDepth, WholeBackjumps int64
	BestDecisions, BestMaxDepth, BestBackjumps    int64
	Partitions                                    int
	Vars, Clauses                                 int
}

// Fig6 compares the solver's decision graph on the whole Fibonacci
// formula against the fastest of 16 partitioned sub-formulae (paper
// Fig. 6: 268→89 decisions, depth 57→28, backjumps 78→26 on their
// instance; the reproduced quantity is the several-fold reduction).
// When dotDir is non-empty, the two decision graphs are written there in
// Graphviz DOT format (fig6-whole.dot, fig6-best-partition.dot),
// reproducing the figure itself.
func Fig6(ctx context.Context, w io.Writer, dotDir string) (*Fig6Stats, error) {
	p := bench.Fibonacci(2)
	enc, _, _, err := core.EncodeProgram(p, core.Options{Unwind: 2, Contexts: 6})
	if err != nil {
		return nil, err
	}
	out := &Fig6Stats{Partitions: 16, Vars: enc.Formula().NumVars, Clauses: enc.Formula().NumClauses()}

	whole := sat.NewFromFormula(enc.Formula(), sat.Options{})
	wholeGraph := whole.EnableGraph(0)
	st, err := whole.Solve()
	if err != nil {
		return nil, err
	}
	if st != sat.Sat {
		return nil, fmt.Errorf("fig6: whole formula unexpectedly %v", st)
	}
	ws := whole.Stats()
	out.WholeDecisions, out.WholeMaxDepth, out.WholeBackjumps = ws.Decisions, int64(ws.MaxDepth), ws.Backjumps

	parts, err := partition.Make(enc, 16)
	if err != nil {
		return nil, err
	}
	best := sat.Stats{}
	var bestGraph *sat.DecisionGraph
	bestTime := time.Duration(-1)
	for _, pt := range parts {
		s := sat.NewFromFormula(enc.Formula(), sat.Options{})
		g := s.EnableGraph(0)
		t0 := time.Now()
		st, err := s.Solve(pt.Assumptions...)
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		if st == sat.Sat && (bestTime < 0 || el < bestTime) {
			bestTime = el
			best = s.Stats()
			bestGraph = g
		}
	}
	if bestTime < 0 {
		return nil, fmt.Errorf("fig6: no partition satisfiable")
	}
	out.BestDecisions, out.BestMaxDepth, out.BestBackjumps = best.Decisions, int64(best.MaxDepth), best.Backjumps

	if dotDir != "" {
		if err := writeDOT(dotDir, "fig6-whole.dot", wholeGraph, "whole formula"); err != nil {
			return nil, err
		}
		if err := writeDOT(dotDir, "fig6-best-partition.dot", bestGraph, "best of 16 partitions"); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "decision graphs written to %s/fig6-*.dot\n", dotDir)
	}

	fmt.Fprintf(w, "Figure 6: decision graphs on Fibonacci (u=2, c=6), %d vars, %d clauses\n", out.Vars, out.Clauses)
	fmt.Fprintf(w, "  whole formula:    decisions=%d maxdepth=%d backjumps=%d\n",
		out.WholeDecisions, out.WholeMaxDepth, out.WholeBackjumps)
	fmt.Fprintf(w, "  best of 16 parts: decisions=%d maxdepth=%d backjumps=%d\n",
		out.BestDecisions, out.BestMaxDepth, out.BestBackjumps)
	return out, nil
}

func writeDOT(dir, name string, g *sat.DecisionGraph, title string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WriteDOT(f, title)
}

// Fig7Point is one data point of Fig. 7: distributed analysis of
// Safestack, wall time = max chunk time over the simulated cluster.
type Fig7Point struct {
	Contexts int
	Cores    int
	Time     time.Duration
	Verdict  core.Verdict
}

// Fig7 reproduces the distributed analysis of Safestack (Sect. 4.1):
// partitions split into machine-sized chunks, one run per chunk, wall
// time = slowest chunk. Contexts and core counts are scaled down.
func Fig7(ctx context.Context, w io.Writer, cfg Config) ([]Fig7Point, error) {
	p := bench.Safestack()
	contexts := []int{4, 5, 6}
	coreCounts := []int{4, 8, 16, 32}
	machineCores := 4
	if cfg.Full {
		contexts = append(contexts, 7)
		coreCounts = append(coreCounts, 64)
	}
	fmt.Fprintln(w, "Figure 7: distributed analysis of Safestack (simulated cluster, 4-core machines)")
	fmt.Fprintf(w, "%9s", "cores")
	for _, c := range contexts {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("u=2,c=%d (s)", c))
	}
	fmt.Fprintln(w)
	var points []Fig7Point
	for _, cores := range coreCounts {
		fmt.Fprintf(w, "%9d", cores)
		for _, c := range contexts {
			res, err := distribSimulate(ctx, p, c, cores, machineCores)
			if err != nil {
				return nil, err
			}
			points = append(points, Fig7Point{Contexts: c, Cores: cores, Time: res.MaxChunkTime, Verdict: res.Verdict})
			fmt.Fprintf(w, " %12.3f", res.MaxChunkTime.Seconds())
		}
		fmt.Fprintln(w)
	}
	return points, nil
}

// Table1 prints the benchmark characteristics (paper Table 1). The
// SV-COMP 2019 outcome columns are quoted literature data, recorded in
// EXPERIMENTS.md rather than re-measured (running 16 third-party tools
// is outside the scope of this reproduction).
func Table1(w io.Writer) []bench.Benchmark {
	all := bench.All()
	fmt.Fprintln(w, "Table 1: benchmark programs (re-modelled)")
	fmt.Fprintf(w, "%-18s %6s %8s %10s %12s\n", "program", "lines", "threads", "bug-unwind", "bug-contexts")
	for _, b := range all {
		fmt.Fprintf(w, "%-18s %6d %8d %10d %12d\n", b.Name, b.Lines, b.Threads, b.BugUnwind, b.BugContexts)
	}
	return all
}

func distribSimulate(ctx context.Context, p *prog.Program, contexts, totalCores, machineCores int) (*simResult, error) {
	// Thin wrapper re-implemented here to avoid an import cycle with the
	// distrib package's tests; semantics identical to
	// distrib.SimulateCluster. The partition count is capped by the
	// encoding's 2^(contexts-1) symbolic scheduler variables; extra cores
	// beyond that stay idle (visible in Fig. 7 as flat curves for small
	// context bounds).
	nparts := totalCores
	if contexts-1 < 30 && nparts > 1<<uint(contexts-1) {
		nparts = 1 << uint(contexts-1)
	}
	chunks := partition.Chunks(nparts, machineCores)
	out := &simResult{Verdict: core.Safe}
	for _, ch := range chunks {
		res, err := core.Verify(ctx, p, core.Options{
			Unwind: 2, Contexts: contexts, Cores: machineCores,
			Partitions: nparts, From: ch.From, To: ch.To + 1,
			SimulateParallel: true,
		})
		if err != nil {
			return nil, err
		}
		if res.SolveTime > out.MaxChunkTime {
			out.MaxChunkTime = res.SolveTime
		}
		if res.Verdict != core.Safe {
			out.Verdict = res.Verdict
			return out, nil
		}
	}
	return out, nil
}

type simResult struct {
	Verdict      core.Verdict
	MaxChunkTime time.Duration
}

// AblationScheduler compares the paper's context-bounded scheduler with
// the original round-robin one (Sect. 3.3 changes / Sect. 6 discussion).
// Context bounding exposes the bounded-buffer bug with 6 execution
// contexts and yields symbolic tid variables to partition on; the fixed
// round-robin order needs 3 full rounds (12 contexts) for the same bug
// because the producer's delayed insert and main's final joins must fall
// in different rounds, and it offers no scheduling variables to split
// the search space.
func AblationScheduler(ctx context.Context, w io.Writer) error {
	p := bench.Boundedbuffer()
	fmt.Fprintln(w, "Ablation: context-bounded vs round-robin sequentialization (boundedbuffer, u=2)")
	for _, cores := range []int{1, 4} {
		cb, err := core.Verify(ctx, p, core.Options{Unwind: 2, Contexts: 6, Cores: cores, SimulateParallel: true})
		if err != nil {
			return err
		}
		rr2, err := core.Verify(ctx, p, core.Options{Unwind: 2, Rounds: 2, Cores: cores, SimulateParallel: true})
		if err != nil {
			return err
		}
		rr3, err := core.Verify(ctx, p, core.Options{Unwind: 2, Rounds: 3, Cores: cores, SimulateParallel: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  cores=%d  context-bounded c=6: %v in %.3fs (partitionable)   round-robin r=2: %v in %.3fs   r=3: %v in %.3fs (no tid variables)\n",
			cores, cb.Verdict, cb.SolveTime.Seconds(),
			rr2.Verdict, rr2.SolveTime.Seconds(),
			rr3.Verdict, rr3.SolveTime.Seconds())
	}
	return nil
}

// AblationPartitions explores over-partitioning: more partitions than
// cores, handed to the worker pool as they free up — the dynamic
// assignment variant the paper proposes as future work (Sect. 6).
func AblationPartitions(ctx context.Context, w io.Writer) error {
	b := bench.EliminationstackBench()
	enc, _, _, err := core.EncodeProgram(b.Program, core.Options{Unwind: 2, Contexts: 5})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: static vs dynamic partition assignment (eliminationstack, u=2, c=5, 4 cores)")
	for _, nparts := range []int{4, 8, 16} {
		parts, err := partition.Make(enc, nparts)
		if err != nil {
			return err
		}
		res, err := parallel.Simulate(ctx, enc.Formula(), parts, parallel.Options{Workers: 4})
		if err != nil {
			return err
		}
		mode := "static (parts == cores)"
		if nparts > 4 {
			mode = "dynamic (work queue)"
		}
		fmt.Fprintf(w, "  partitions=%2d  %v in %8.3fs  [%s]\n",
			nparts, res.Status, res.Wall.Seconds(), mode)
	}
	return nil
}

// AblationFreeze measures the effect of the paper's solver change
// (assumptions as frozen unit clauses with forced propagation,
// Sect. 3.3) against plain solving of the syntactically conjoined
// formula (appending the assumptions as clauses to a fresh formula,
// without freezing-aware setup).
func AblationFreeze(ctx context.Context, w io.Writer) error {
	b := bench.SafestackBench()
	enc, _, _, err := core.EncodeProgram(b.Program, core.Options{Unwind: 2, Contexts: 6})
	if err != nil {
		return err
	}
	parts, err := partition.Make(enc, 8)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: assumption handling (safestack, u=2, c=6, 8 partitions, sequential)")
	// Frozen-assumption interface.
	start := time.Now()
	for _, pt := range parts {
		s := sat.NewFromFormula(enc.Formula(), sat.Options{})
		if _, err := s.Solve(pt.Assumptions...); err != nil {
			return err
		}
	}
	frozen := time.Since(start)
	// Conjoined-clause variant.
	start = time.Now()
	for _, pt := range parts {
		f := enc.Formula().Clone()
		for _, a := range pt.Assumptions {
			f.AddUnit(a)
		}
		s := sat.NewFromFormula(f, sat.Options{})
		if _, err := s.Solve(); err != nil {
			return err
		}
	}
	conjoined := time.Since(start)
	fmt.Fprintf(w, "  frozen unit assumptions: %8.3fs   conjoined unit clauses: %8.3fs\n",
		frozen.Seconds(), conjoined.Seconds())
	return nil
}

// AblationPreprocess measures the MiniSat-style simplifier's effect on
// formula size and solving time (the paper's prototype used "MiniSat
// 2.2.1 with simplifier", Sect. 3.4).
func AblationPreprocess(ctx context.Context, w io.Writer) error {
	b := bench.EliminationstackBench()
	fmt.Fprintln(w, "Ablation: preprocessing simplifier on/off (eliminationstack, u=2, c=5, sequential)")
	for _, pp := range []bool{false, true} {
		res, err := core.Verify(ctx, b.Program, core.Options{
			Unwind: 2, Contexts: 5, Cores: 1, Preprocess: pp,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  preprocess=%-5v  %v  clauses=%d  solve=%8.3fs\n",
			pp, res.Verdict, res.Clauses, res.SolveTime.Seconds())
	}
	return nil
}

// AblationWidth measures the effect of the bit-blasting width on
// formula size and solving time (the paper's CBMC bit-blasts at the
// target architecture's width; the benchmarks here need only small
// counters, so narrower words are sound and much cheaper).
func AblationWidth(ctx context.Context, w io.Writer) error {
	b := bench.WorkstealingqueueBench()
	fmt.Fprintln(w, "Ablation: bit-blasting width (workstealingqueue, u=2, c=7, sequential)")
	for _, width := range []int{8, 12, 16} {
		res, err := core.Verify(ctx, b.Program, core.Options{
			Unwind: 2, Contexts: 7, Cores: 1, Width: width,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  width=%2d  %v  vars=%d clauses=%d  solve=%8.3fs\n",
			width, res.Verdict, res.Vars, res.Clauses, res.SolveTime.Seconds())
	}
	return nil
}

// ExtensionSampling contrasts randomized schedule sampling (the
// orthogonal parallel bug-finding line of Sect. 5) with partitioned BMC:
// sampling can stumble on shallow bugs quickly but cannot prove safety,
// while the partitioned analysis both finds the bug and certifies
// bounded safety.
func ExtensionSampling(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "Extension: randomized schedule sampling vs partitioned BMC")
	cases := []struct {
		name     string
		program  *prog.Program
		unwind   int
		contexts int
	}{
		{"fibonacci (shallow bug at c=4)", bench.Fibonacci(1), 1, 4},
		{"workstealingqueue (narrow race at c=7)", bench.Workstealingqueue(), 2, 7},
		{"safestack (safe at c=5)", bench.Safestack(), 2, 5},
	}
	for _, cs := range cases {
		up, err := unfold.Unfold(cs.program, unfold.Options{Unwind: cs.unwind})
		if err != nil {
			return err
		}
		fp, err := flatten.Flatten(up)
		if err != nil {
			return err
		}
		sres, err := sampler.Sample(ctx, fp, sampler.Options{
			Contexts: cs.contexts, MaxExecutions: 200000, Workers: 4, Seed: 42,
		})
		if err != nil {
			return err
		}
		bres, err := core.Verify(ctx, cs.program, core.Options{
			Unwind: cs.unwind, Contexts: cs.contexts, Cores: 4, SimulateParallel: true,
		})
		if err != nil {
			return err
		}
		sOut := fmt.Sprintf("no bug in %d executions (no guarantee)", sres.Executions)
		if sres.Violation != nil {
			sOut = fmt.Sprintf("bug after %d executions (%.3fs)", sres.Executions, sres.Wall.Seconds())
		}
		fmt.Fprintf(w, "  %-40s sampling: %-45s partitioned BMC: %v in %.3fs (exhaustive)\n",
			cs.name, sOut, bres.Verdict, bres.SolveTime.Seconds())
	}
	return nil
}

// CertifyOverhead measures what end-to-end verdict certification costs a
// distributed run: the same analysis over an in-process loopback cluster
// with certificates off and fully on, comparing coordinator-side verify
// time against remote solve time. The claim under test is that the
// trust-but-verify layer is cheap relative to the search it certifies
// (checking a RUP proof replays only unit propagation; checking a model
// is one linear formula evaluation).
func CertifyOverhead(ctx context.Context, w io.Writer) error {
	b := bench.BoundedbufferBench()
	fmt.Fprintln(w, "Certification overhead: distributed analysis of boundedbuffer (u=2, c=5, 8 partitions, loopback cluster)")
	for _, mode := range []string{distrib.CertifyOff, distrib.CertifyFull} {
		policy, err := distrib.ParseCertifyPolicy(mode)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = distrib.Work(ctx, ln.Addr().String(), distrib.WorkerOptions{Name: "bench", Cores: 2})
		}()
		res, err := distrib.Coordinate(ctx, ln, b.Program, distrib.CoordinatorOptions{
			Unwind: 2, Contexts: 5, Width: 8,
			Partitions: 8, ChunkSize: 2,
			HeartbeatInterval: -1,
			Certify:           policy,
		})
		wg.Wait()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  certify=%-4s  %v  solve=%8.3fs  verify=%8.3fs  certified=%d verdicts\n",
			mode, res.Verdict,
			float64(res.SolveMillis)/1000, float64(res.CertifyMillis)/1000, res.Certified)
	}
	return nil
}

// VerdictsConsistent checks that every Table 2 row produced the same
// verdict at every core count and that it matches the expected
// reachability; used by tests and the harness.
func VerdictsConsistent(rows []Table2Row) error {
	for _, r := range rows {
		want := core.Safe
		if r.Reach {
			want = core.Unsafe
		}
		for cores, v := range r.Verdicts {
			if v != want {
				return fmt.Errorf("%s u=%d c=%d cores=%d: verdict %v, want %v",
					r.Bench.Name, r.U, r.C, cores, v, want)
			}
		}
	}
	return nil
}
