package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The bench-trajectory comparator: every commit that runs `make bench`
// leaves a BENCH_<date>.json behind, and this file turns the committed
// sequence into per-instance deltas plus a trend table — the regression
// gate CI enforces. The comparison key is the full configuration cell
// (instance, unwind, contexts, cores), so a per-core slowdown is visible
// even when other core counts improved.

// BenchKey identifies one measurement cell across trajectory files.
type BenchKey struct {
	Instance string
	Unwind   int
	Contexts int
	Cores    int
}

func (k BenchKey) String() string {
	return fmt.Sprintf("%s u=%d c=%d cores=%d", k.Instance, k.Unwind, k.Contexts, k.Cores)
}

func entryKey(e BenchEntry) BenchKey {
	return BenchKey{Instance: e.Instance, Unwind: e.Unwind, Contexts: e.Contexts, Cores: e.Cores}
}

// NamedBench is one loaded trajectory file, tagged with its path so
// reports can say which commit's snapshot a column came from.
type NamedBench struct {
	Path string
	File BenchFile
}

// Label is the short name used in table headers: the file's embedded
// date when present, else the basename.
func (nb NamedBench) Label() string {
	if nb.File.Date != "" {
		return nb.File.Date
	}
	return filepath.Base(nb.Path)
}

// LoadBenchFile parses one BENCH_<date>.json.
func LoadBenchFile(path string) (NamedBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return NamedBench{}, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return NamedBench{}, fmt.Errorf("%s: %w", path, err)
	}
	return NamedBench{Path: path, File: bf}, nil
}

// LoadBenchDir loads every BENCH_*.json under dir, ordered oldest to
// newest (by embedded date, then filename — so same-day reruns stay
// deterministic). The returned slice is the trajectory.
func LoadBenchDir(dir string) ([]NamedBench, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var out []NamedBench
	for _, p := range paths {
		nb, err := LoadBenchFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File.Date != out[j].File.Date {
			return out[i].File.Date < out[j].File.Date
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}

// BenchDelta is one cell's base→head comparison.
type BenchDelta struct {
	Key           BenchKey
	BaseMillis    int64
	HeadMillis    int64
	Ratio         float64 // head/base wall time; 1.0 = unchanged
	BaseConflicts int64
	HeadConflicts int64
	Verdict       string
	VerdictFlip   bool   // base and head disagree on the verdict — always gated
	Regressed     bool   // Ratio exceeded the gate
	OnlyIn        string // "base" or "head" when the cell exists on one side only
}

// CompareBench diffs head against base cell-by-cell. A cell regresses
// when head wall time exceeds base by more than the gate factor
// (gate <= 0 disables wall-time gating); a verdict flip is always a
// regression — a benchmark that changed its answer is a correctness
// problem wearing a performance costume.
//
// minBaseMillis is the measurement noise floor: cells whose base wall
// time is below it are reported but never wall-gated. Scheduler noise
// on sub-floor cells swings their ratio far past any honest gate
// (consecutive same-machine runs of a 20 ms cell differ by 2×), so
// gating them would make the gate cry wolf; a floor of 0 still exempts
// sub-millisecond bases, where the clock's granularity alone decides
// the ratio.
func CompareBench(base, head NamedBench, gate float64, minBaseMillis int64) []BenchDelta {
	baseBy := map[BenchKey]BenchEntry{}
	for _, e := range base.File.Entries {
		baseBy[entryKey(e)] = e
	}
	headBy := map[BenchKey]BenchEntry{}
	for _, e := range head.File.Entries {
		headBy[entryKey(e)] = e
	}

	var keys []BenchKey
	for k := range baseBy {
		keys = append(keys, k)
	}
	for k := range headBy {
		if _, ok := baseBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		if a.Unwind != b.Unwind {
			return a.Unwind < b.Unwind
		}
		if a.Contexts != b.Contexts {
			return a.Contexts < b.Contexts
		}
		return a.Cores < b.Cores
	})

	var out []BenchDelta
	for _, k := range keys {
		be, inBase := baseBy[k]
		he, inHead := headBy[k]
		d := BenchDelta{Key: k}
		switch {
		case !inHead:
			d.OnlyIn = "base"
			d.BaseMillis, d.BaseConflicts = be.WallMillis, be.Conflicts
			d.Verdict = be.Verdict
		case !inBase:
			d.OnlyIn = "head"
			d.HeadMillis, d.HeadConflicts = he.WallMillis, he.Conflicts
			d.Verdict = he.Verdict
		default:
			d.BaseMillis, d.HeadMillis = be.WallMillis, he.WallMillis
			d.BaseConflicts, d.HeadConflicts = be.Conflicts, he.Conflicts
			d.Verdict = he.Verdict
			d.VerdictFlip = be.Verdict != he.Verdict
			if be.WallMillis > 0 {
				d.Ratio = float64(he.WallMillis) / float64(be.WallMillis)
			} else if he.WallMillis == 0 {
				d.Ratio = 1
			}
			floor := minBaseMillis
			if floor < 1 {
				floor = 1
			}
			wallGated := gate > 0 && be.WallMillis >= floor && d.Ratio > gate
			d.Regressed = wallGated || d.VerdictFlip
		}
		out = append(out, d)
	}
	return out
}

// Regressions counts the gated cells in a delta set.
func Regressions(deltas []BenchDelta) int {
	n := 0
	for _, d := range deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// WriteCompare renders the full comparison report: the base→head delta
// table, the trajectory trend table (one wall-time column per committed
// file), and the gate verdict line. files must be the ordered
// trajectory; the last file is head and the second-to-last is base
// (deltas as computed by CompareBench on those two).
func WriteCompare(w io.Writer, files []NamedBench, deltas []BenchDelta, gate float64, minBaseMillis int64) {
	base, head := files[len(files)-2], files[len(files)-1]
	fmt.Fprintf(w, "bench comparison: %s (base) -> %s (head), gate %.2fx", base.Label(), head.Label(), gate)
	if minBaseMillis > 1 {
		fmt.Fprintf(w, " (cells under %d ms not wall-gated)", minBaseMillis)
	}
	fmt.Fprintf(w, "\n\n")

	fmt.Fprintf(w, "%-22s %2s %2s %5s %10s %10s %7s %12s  %s\n",
		"instance", "u", "c", "cores", "base-ms", "head-ms", "ratio", "conflicts", "")
	for _, d := range deltas {
		switch d.OnlyIn {
		case "base":
			fmt.Fprintf(w, "%-22s %2d %2d %5d %10d %10s %7s %12s  dropped from head\n",
				d.Key.Instance, d.Key.Unwind, d.Key.Contexts, d.Key.Cores, d.BaseMillis, "-", "-", "-")
			continue
		case "head":
			fmt.Fprintf(w, "%-22s %2d %2d %5d %10s %10d %7s %12s  new in head\n",
				d.Key.Instance, d.Key.Unwind, d.Key.Contexts, d.Key.Cores, "-", d.HeadMillis, "-", "-")
			continue
		}
		flag := ""
		if d.VerdictFlip {
			flag = "VERDICT FLIP"
		} else if d.Regressed {
			flag = "REGRESSION"
		}
		fmt.Fprintf(w, "%-22s %2d %2d %5d %10d %10d %6.2fx %5d→%-6d %s\n",
			d.Key.Instance, d.Key.Unwind, d.Key.Contexts, d.Key.Cores,
			d.BaseMillis, d.HeadMillis, d.Ratio, d.BaseConflicts, d.HeadConflicts, flag)
	}

	if len(files) > 2 {
		fmt.Fprintf(w, "\nwall-time trajectory (ms per file):\n")
		writeTrend(w, files)
	}

	if n := Regressions(deltas); n > 0 {
		fmt.Fprintf(w, "\nGATE FAILED: %d cell(s) regressed beyond %.2fx\n", n, gate)
	} else {
		fmt.Fprintf(w, "\ngate passed: no cell regressed beyond %.2fx\n", gate)
	}
}

// writeTrend prints one row per cell with a wall-time column for each
// trajectory file, so a slow creep across commits is visible even when
// every single step stayed under the gate.
func writeTrend(w io.Writer, files []NamedBench) {
	// Row universe and order: first appearance across the trajectory.
	var keys []BenchKey
	seen := map[BenchKey]bool{}
	for _, f := range files {
		for _, e := range f.File.Entries {
			k := entryKey(e)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	fmt.Fprintf(w, "%-34s", "instance/config")
	for _, f := range files {
		fmt.Fprintf(w, " %12s", f.Label())
	}
	fmt.Fprintln(w)
	for _, k := range keys {
		fmt.Fprintf(w, "%-34s", k.String())
		for _, f := range files {
			cell := "-"
			for _, e := range f.File.Entries {
				if entryKey(e) == k {
					cell = fmt.Sprintf("%d", e.WallMillis)
					break
				}
			}
			fmt.Fprintf(w, " %12s", cell)
		}
		fmt.Fprintln(w)
	}
}
