package bench

import "repro/prog"

// boundedbufferSrc re-models the Boundedbuffer benchmark [Machado et
// al., PLDI'15; SV-COMP pthread-complex]: a shared one-slot buffer
// accessed by two producers and one consumer through a mutex. The
// original's bug is a wake-up race on the condition variable; the
// re-model keeps the same time-of-check-to-time-of-use shape by letting
// producers test the fill level outside the critical section: two
// producers can both observe a free slot and both insert, overflowing
// the buffer. The overflow flag is asserted by main after the joins, so
// exposing the bug needs both producers interleaved mid-insert plus the
// consumer and main to terminate: at least two loop unwindings and six
// execution contexts (five context switches, as in the paper's Table 1
// narrative).
const boundedbufferSrc = `
mutex m;
int count;
int buf[2];
int oflow;
int got;

void producer(int v) {
  int c;
  int k = 0;
  while (k < 2) {
    c = count;
    if (c < 1) {
      lock(m);
      buf[count] = v;
      count = count + 1;
      if (count > 1) {
        oflow = 1;
      }
      unlock(m);
    }
    k = k + 1;
  }
}

void consumer() {
  int tries = 0;
  while (tries < 2) {
    lock(m);
    if (count > 0) {
      count = count - 1;
      got = got + 1;
    }
    unlock(m);
    tries = tries + 1;
  }
}

void main() {
  int t1, t2, t3;
  t1 = create(producer, 1);
  t2 = create(producer, 2);
  t3 = create(consumer);
  join(t1);
  join(t2);
  join(t3);
  assert(oflow == 0);
}
`

// Boundedbuffer returns the re-modelled bounded buffer program.
func Boundedbuffer() *prog.Program {
	return mustParse("boundedbuffer", boundedbufferSrc)
}

// BoundedbufferBench returns the benchmark with metadata.
func BoundedbufferBench() Benchmark {
	return Benchmark{
		Name:        "boundedbuffer",
		Program:     Boundedbuffer(),
		Threads:     4,
		Lines:       countLines(boundedbufferSrc),
		BugUnwind:   2,
		BugContexts: 6,
	}
}
