package bench

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestBoundedbufferFixedIsSafe(t *testing.T) {
	p := BoundedbufferFixed()
	// Safe exactly where the buggy version fails (u=2, c=6), and beyond.
	res, err := core.Verify(context.Background(), p, core.Options{Unwind: 2, Contexts: 6, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("fixed buffer at bug bound: %v", res.Verdict)
	}
}

func TestBoundedbufferFixedDeeper(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	p := BoundedbufferFixed()
	res, err := core.Verify(context.Background(), p, core.Options{
		Unwind: 2, Contexts: 7, Cores: 4, Preprocess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("fixed buffer c=7: %v", res.Verdict)
	}
}

func TestWorkstealingqueueFixedIsSafe(t *testing.T) {
	p := WorkstealingqueueFixed()
	// Safe at the bound where the buggy version loses a task.
	res, err := core.Verify(context.Background(), p, core.Options{Unwind: 2, Contexts: 7, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("fixed wsq at bug bound: %v", res.Verdict)
	}
}

func TestEliminationstackUnsafeParsesAndSafeShallow(t *testing.T) {
	p := EliminationstackUnsafe()
	if p.Proc("pusher") == nil || len(p.Main().Locals) == 0 {
		t.Fatal("bad program")
	}
	// The three-pusher race needs a deep interleaving; shallow bounds
	// must still be safe (mirroring the paper: the elimination stack bug
	// stays out of reach within the Table 2 bounds).
	res, err := core.Verify(context.Background(), p, core.Options{Unwind: 2, Contexts: 4, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("shallow bound: %v", res.Verdict)
	}
}
