package bench

import "repro/prog"

// safestackSrc re-models the Safestack benchmark [Vyukov, CHESS forum
// 2010]: a lock-free free-list stack where threads repeatedly pop a cell
// index, mark it owned, and release it back. The original's famous bug
// is an ABA race: a thread reads the head and its successor, gets
// delayed, and its compare-and-swap later succeeds although the list has
// been popped and re-pushed in between, so the stale successor pointer
// re-publishes a cell that another thread still owns; the
// double-acquisition detector (owner flags) records this in dup, which
// main asserts after the joins. As in the original — where the bug needs
// 4 round-robin rounds, i.e. at least 12–16 execution contexts, and the
// paper reports it out of reach within the Table 2 bounds — exposing the
// re-modelled bug needs three workers and an interleaving of ten or more
// execution contexts, so every benchmarked configuration is a hard
// unsatisfiable instance.
const safestackSrc = `
int head;
int nxt[3];
int owner[3];
int dup;

void worker() {
  int h;
  int n = 0;
  int got;
  int k = 0;
  while (k < 2) {
    h = head;
    if (h != 0) {
      n = nxt[h - 1];
      got = 0;
      atomic {
        if (head == h) {
          head = n;
          got = h;
        }
      }
      if (got != 0) {
        atomic {
          if (owner[got - 1] != 0) {
            dup = 1;
          }
          owner[got - 1] = 1;
        }
        atomic {
          owner[got - 1] = 0;
          nxt[got - 1] = head;
          head = got;
        }
      }
    }
    k = k + 1;
  }
}

void main() {
  int t1, t2, t3;
  nxt[0] = 2;
  nxt[1] = 0;
  head = 1;
  t1 = create(worker);
  t2 = create(worker);
  t3 = create(worker);
  join(t1);
  join(t2);
  join(t3);
  assert(dup == 0);
}
`

// Safestack returns the re-modelled safestack program.
func Safestack() *prog.Program {
	return mustParse("safestack", safestackSrc)
}

// SafestackBench returns the benchmark with metadata; BugContexts is the
// estimated depth at which the ABA violation becomes reachable (beyond
// the benchmarked bounds, as in the paper).
func SafestackBench() Benchmark {
	return Benchmark{
		Name:        "safestack",
		Program:     Safestack(),
		Threads:     4,
		Lines:       countLines(safestackSrc),
		BugUnwind:   2,
		BugContexts: 10,
	}
}
