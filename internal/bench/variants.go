package bench

import "repro/prog"

// boundedbufferFixedSrc repairs the bounded buffer: the fill-level test
// moves inside the critical section, closing the
// time-of-check-to-time-of-use window. Safe at every bound.
const boundedbufferFixedSrc = `
mutex m;
int count;
int buf[2];
int oflow;
int got;

void producer(int v) {
  int k = 0;
  while (k < 2) {
    lock(m);
    if (count < 1) {
      buf[count] = v;
      count = count + 1;
      if (count > 1) {
        oflow = 1;
      }
    }
    unlock(m);
    k = k + 1;
  }
}

void consumer() {
  int tries = 0;
  while (tries < 2) {
    lock(m);
    if (count > 0) {
      count = count - 1;
      got = got + 1;
    }
    unlock(m);
    tries = tries + 1;
  }
}

void main() {
  int t1, t2, t3;
  t1 = create(producer, 1);
  t2 = create(producer, 2);
  t3 = create(consumer);
  join(t1);
  join(t2);
  join(t3);
  assert(oflow == 0);
}
`

// BoundedbufferFixed returns the repaired bounded buffer.
func BoundedbufferFixed() *prog.Program {
	return mustParse("boundedbuffer-fixed", boundedbufferFixedSrc)
}

// workstealingqueueFixedSrc repairs the Chase–Lev deque: the owner's
// take of the last element arbitrates against thieves with the same
// top-CAS the thieves use, so a task can never execute twice.
const workstealingqueueFixedSrc = `
int top, bottom;
int task[4];
int execd[4];
int dup;

void owner() {
  int b;
  int t;
  int k = 0;
  while (k < 2) {
    b = bottom;
    task[b] = k + 1;
    bottom = b + 1;
    k = k + 1;
  }
  k = 0;
  while (k < 2) {
    b = bottom - 1;
    bottom = b;
    t = top;
    if (t < b) {
      atomic {
        execd[b] = execd[b] + 1;
        if (execd[b] > 1) {
          dup = 1;
        }
      }
    } else {
      if (t == b) {
        atomic {
          if (top == t) {
            top = t + 1;
            execd[b] = execd[b] + 1;
            if (execd[b] > 1) {
              dup = 1;
            }
          }
        }
        bottom = b + 1;
      } else {
        bottom = b + 1;
      }
    }
    k = k + 1;
  }
}

void thief() {
  int t;
  int b;
  t = top;
  b = bottom;
  if (t < b) {
    atomic {
      if (top == t) {
        top = t + 1;
        execd[t] = execd[t] + 1;
        if (execd[t] > 1) {
          dup = 1;
        }
      }
    }
  }
}

void main() {
  int t1, t2, t3;
  t1 = create(owner);
  t2 = create(thief);
  t3 = create(thief);
  join(t1);
  join(t2);
  join(t3);
  assert(dup == 0);
}
`

// WorkstealingqueueFixed returns the repaired work-stealing queue.
func WorkstealingqueueFixed() *prog.Program {
	return mustParse("workstealingqueue-fixed", workstealingqueueFixedSrc)
}

// eliminationstackUnsafeSrc widens the elimination stack to three
// pushers and two poppers — the configuration in which the
// time-of-check-to-time-of-use race on the elimination slot becomes
// reachable (mirroring the original bug's requirement of three pushes
// concurrent with the pops). Two pushers must fail their stack CAS
// (which needs the third pusher and a popper to move the top under
// them), observe the empty slot, and overwrite one another's deposit;
// main's conservation assertion then fails. The interleaving needs ten
// execution contexts (verified: the encoder finds and replay-validates
// the race at u=2, c=10 in minutes, while every benchmarked bound stays
// safe) — as in the paper, where no tool reached the elimination-stack
// bug within the evaluated bounds.
const eliminationstackUnsafeSrc = `
int top;
int stk[4];
int elim;
int pushed, popped, taken;

void pusher(int v) {
  int t;
  int c;
  int done = 0;
  int k = 0;
  while (k < 2) {
    if (done == 0) {
      t = top;
      atomic {
        if (top == t) {
          stk[t] = v;
          top = t + 1;
          pushed = pushed + 1;
          done = 1;
        }
      }
      if (done == 0) {
        c = elim;
        if (c == 0) {
          atomic {
            elim = v;
            pushed = pushed + 1;
            done = 1;
          }
        }
      }
    }
    k = k + 1;
  }
}

void popper() {
  int t;
  int v = 0;
  int done = 0;
  int k = 0;
  while (k < 2) {
    if (done == 0) {
      t = top;
      if (t > 0) {
        atomic {
          if (top == t) {
            v = stk[t - 1];
            top = t - 1;
            popped = popped + 1;
            done = 1;
          }
        }
      } else {
        atomic {
          if (elim != 0) {
            v = elim;
            elim = 0;
            popped = popped + 1;
            taken = taken + 1;
            done = 1;
          }
        }
      }
      if (done == 1) {
        assert(v > 0);
      }
    }
    k = k + 1;
  }
}

void main() {
  int t1, t2, t3, t4, t5;
  int e = 0;
  t1 = create(pusher, 1);
  t2 = create(pusher, 2);
  t3 = create(pusher, 3);
  t4 = create(popper);
  t5 = create(popper);
  join(t1);
  join(t2);
  join(t3);
  join(t4);
  join(t5);
  if (elim != 0) {
    e = 1;
  }
  assert(pushed - popped == top + e);
}
`

// EliminationstackUnsafe returns the three-pusher configuration with
// the reachable elimination-slot race.
func EliminationstackUnsafe() *prog.Program {
	return mustParse("eliminationstack-unsafe", eliminationstackUnsafeSrc)
}
