package bench

import "repro/prog"

// workstealingqueueSrc re-models the Workstealingqueue benchmark
// [Musuvathi & Qadeer, PLDI'07 onwards; SV-COMP pthread-complex]: a
// Chase–Lev work-stealing deque with an owner pushing and taking tasks
// at the bottom and thieves stealing at the top with a compare-and-swap
// (expressed as an atomic block). The original's bug is the classic
// missing owner/thief arbitration on the last element: the owner's take
// path does not re-check the top pointer, so when exactly one task
// remains, the owner and a thief can both execute it. Each task carries
// an execution counter; running a task twice raises dup, asserted by
// main after the joins. Exposing the bug needs the owner and a thief
// interleaved around the take (two unwindings for the owner's push/take
// loops and six execution contexts).
const workstealingqueueSrc = `
int top, bottom;
int task[4];
int execd[4];
int dup;

void owner() {
  int b;
  int t;
  int k = 0;
  while (k < 2) {
    b = bottom;
    task[b] = k + 1;
    bottom = b + 1;
    k = k + 1;
  }
  k = 0;
  while (k < 2) {
    b = bottom - 1;
    bottom = b;
    t = top;
    if (t <= b) {
      atomic {
        execd[b] = execd[b] + 1;
        if (execd[b] > 1) {
          dup = 1;
        }
      }
    }
    k = k + 1;
  }
}

void thief() {
  int t;
  int b;
  t = top;
  b = bottom;
  if (t < b) {
    atomic {
      if (top == t) {
        top = t + 1;
        execd[t] = execd[t] + 1;
        if (execd[t] > 1) {
          dup = 1;
        }
      }
    }
  }
}

void main() {
  int t1, t2, t3;
  t1 = create(owner);
  t2 = create(thief);
  t3 = create(thief);
  join(t1);
  join(t2);
  join(t3);
  assert(dup == 0);
}
`

// Workstealingqueue returns the re-modelled work-stealing queue program.
func Workstealingqueue() *prog.Program {
	return mustParse("workstealingqueue", workstealingqueueSrc)
}

// WorkstealingqueueBench returns the benchmark with metadata.
func WorkstealingqueueBench() Benchmark {
	return Benchmark{
		Name:        "workstealingqueue",
		Program:     Workstealingqueue(),
		Threads:     4,
		Lines:       countLines(workstealingqueueSrc),
		BugUnwind:   2,
		BugContexts: 6,
	}
}
