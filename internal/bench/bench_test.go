package bench

import (
	"context"
	"testing"

	"repro/internal/core"
)

func verdict(t *testing.T, b Benchmark, u, c, cores int) core.Verdict {
	t.Helper()
	res, err := core.Verify(context.Background(), b.Program, core.Options{
		Unwind: u, Contexts: c, Cores: cores,
	})
	if err != nil {
		t.Fatalf("%s u=%d c=%d: %v", b.Name, u, c, err)
	}
	if res.Verdict == core.Unsafe && res.Violation == nil {
		t.Fatalf("%s u=%d c=%d: unsafe verdict without validated violation", b.Name, u, c)
	}
	return res.Verdict
}

func TestAllMetadata(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("benchmarks: %d", len(all))
	}
	names := map[string]bool{}
	for _, b := range all {
		if b.Program == nil || b.Program.Main() == nil {
			t.Fatalf("%s: bad program", b.Name)
		}
		if b.Lines < 20 {
			t.Fatalf("%s: implausible line count %d", b.Name, b.Lines)
		}
		if b.Threads < 3 {
			t.Fatalf("%s: thread count %d", b.Name, b.Threads)
		}
		if names[b.Name] {
			t.Fatalf("duplicate name %s", b.Name)
		}
		names[b.Name] = true
	}
}

func TestFibonacciBounds(t *testing.T) {
	b := FibonacciBench(1)
	if got := verdict(t, b, 1, 3, 1); got != core.Safe {
		t.Fatalf("fib(1) c=3: %v", got)
	}
	if got := verdict(t, b, 1, 4, 1); got != core.Unsafe {
		t.Fatalf("fib(1) c=4: %v", got)
	}
}

func TestFibonacci2(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	b := FibonacciBench(2)
	if got := verdict(t, b, 2, 5, 2); got != core.Safe {
		t.Fatalf("fib(2) c=5: %v", got)
	}
	if got := verdict(t, b, 2, 6, 2); got != core.Unsafe {
		t.Fatalf("fib(2) c=6: %v", got)
	}
}

func TestBoundedbufferBounds(t *testing.T) {
	b := BoundedbufferBench()
	// u=1 cannot exit the loops: trivially safe.
	if got := verdict(t, b, 1, 6, 2); got != core.Safe {
		t.Fatalf("u=1 c=6: %v", got)
	}
	if got := verdict(t, b, 2, 5, 2); got != core.Safe {
		t.Fatalf("u=2 c=5: %v", got)
	}
	if got := verdict(t, b, 2, 6, 2); got != core.Unsafe {
		t.Fatalf("u=2 c=6: %v", got)
	}
}

func TestWorkstealingqueueBounds(t *testing.T) {
	b := WorkstealingqueueBench()
	if got := verdict(t, b, 2, 6, 2); got != core.Safe {
		t.Fatalf("u=2 c=6: %v", got)
	}
	if got := verdict(t, b, 2, 7, 2); got != core.Unsafe {
		t.Fatalf("u=2 c=7: %v", got)
	}
}

func TestEliminationstackSafeWithinBounds(t *testing.T) {
	b := EliminationstackBench()
	if got := verdict(t, b, 2, 4, 2); got != core.Safe {
		t.Fatalf("u=2 c=4: %v", got)
	}
}

func TestSafestackSafeWithinBounds(t *testing.T) {
	b := SafestackBench()
	if got := verdict(t, b, 2, 4, 2); got != core.Safe {
		t.Fatalf("u=2 c=4: %v", got)
	}
}

func TestEliminationstackDeeper(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	b := EliminationstackBench()
	if got := verdict(t, b, 2, 5, 4); got != core.Safe {
		t.Fatalf("u=2 c=5: %v", got)
	}
}

func TestSafestackDeeper(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	b := SafestackBench()
	if got := verdict(t, b, 2, 5, 4); got != core.Safe {
		t.Fatalf("u=2 c=5: %v", got)
	}
}
