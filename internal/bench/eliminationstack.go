package bench

import "repro/prog"

// eliminationstackSrc re-models the Eliminationstack benchmark [Hendler,
// Shavit, Yerushalmi, SPAA'04; SV-COMP pthread-complex]: a Treiber stack
// whose push and pop fall back to an elimination slot when their CAS on
// the stack top fails. The CAS operations are expressed as atomic
// blocks (the paper's language has no hardware CAS). The original's bug
// (use of freed memory in pop, needing three concurrent pushes and four
// pops) is mirrored by a time-of-check-to-time-of-use race on the
// elimination slot: a pusher tests the slot emptiness outside the atomic
// deposit, so two pushers that both fail their CAS can overwrite one
// another's value and break the conservation invariant checked by main.
// Exposing it needs at least three threads interleaved deep into their
// retry loops — beyond the context bounds used in Table 2, matching the
// paper, where no tool (including theirs) reaches the bug within the
// benchmarked bounds; the smaller bounds yield hard unsatisfiable
// instances.
const eliminationstackSrc = `
int top;
int stk[4];
int elim;
int pushed, popped, taken;

void pusher(int v) {
  int t;
  int c;
  int done = 0;
  int k = 0;
  while (k < 2) {
    if (done == 0) {
      t = top;
      atomic {
        if (top == t) {
          stk[t] = v;
          top = t + 1;
          pushed = pushed + 1;
          done = 1;
        }
      }
      if (done == 0) {
        c = elim;
        if (c == 0) {
          atomic {
            elim = v;
            pushed = pushed + 1;
            done = 1;
          }
        }
      }
    }
    k = k + 1;
  }
}

void popper() {
  int t;
  int v = 0;
  int done = 0;
  int k = 0;
  while (k < 2) {
    if (done == 0) {
      t = top;
      if (t > 0) {
        atomic {
          if (top == t) {
            v = stk[t - 1];
            top = t - 1;
            popped = popped + 1;
            done = 1;
          }
        }
      } else {
        atomic {
          if (elim != 0) {
            v = elim;
            elim = 0;
            popped = popped + 1;
            taken = taken + 1;
            done = 1;
          }
        }
      }
      if (done == 1) {
        assert(v > 0);
      }
    }
    k = k + 1;
  }
}

void main() {
  int t1, t2, t3, t4;
  int e = 0;
  t1 = create(pusher, 1);
  t2 = create(pusher, 2);
  t3 = create(popper);
  t4 = create(popper);
  join(t1);
  join(t2);
  join(t3);
  join(t4);
  if (elim != 0) {
    e = 1;
  }
  assert(pushed - popped == top + e);
}
`

// Eliminationstack returns the re-modelled elimination stack program.
func Eliminationstack() *prog.Program {
	return mustParse("eliminationstack", eliminationstackSrc)
}

// EliminationstackBench returns the benchmark with metadata. The bug is
// out of reach within the Table 2 bounds (BugContexts reports the
// smallest bound at which our model's conservation violation becomes
// reachable).
func EliminationstackBench() Benchmark {
	return Benchmark{
		Name:        "eliminationstack",
		Program:     Eliminationstack(),
		Threads:     5,
		Lines:       countLines(eliminationstackSrc),
		BugUnwind:   2,
		BugContexts: 8,
	}
}
