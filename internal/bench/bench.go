// Package bench provides the paper's benchmark programs (Table 1),
// re-modelled in the prog language: Fibonacci (Fig. 2), Boundedbuffer,
// Eliminationstack, Safestack and Workstealingqueue.
//
// The originals are C/pthreads programs from the SV-COMP concurrency
// suite; they rely on pointers, dynamic memory and compare-and-swap
// primitives that the paper's formal language (Fig. 1) does not have.
// Each program is therefore re-modelled to preserve the property that
// matters for the paper's experiments: the concurrency structure (thread
// counts, lock/CAS patterns, where the races live) and the bound profile
// (a bug that becomes reachable only at sufficiently large unwind and
// context bounds, or no reachable bug at all so that the solver must
// perform an exhaustive UNSAT search). Every substitution is documented
// on the factory function, and the expected verdict grid is pinned by
// the package tests.
package bench

import (
	"fmt"

	"repro/prog"
)

// Benchmark bundles a program with its Table 1 metadata.
type Benchmark struct {
	// Name is the paper's program name.
	Name string
	// Program is the re-modelled source.
	Program *prog.Program
	// Threads is the static thread count (including main).
	Threads int
	// Lines is the source line count of the re-modelled program.
	Lines int
	// BugUnwind and BugContexts are the smallest bounds at which the
	// re-modelled bug is reachable (0 if the program is safe at the
	// benchmarked bounds, like Eliminationstack and Safestack in
	// Table 2).
	BugUnwind, BugContexts int
}

// All returns the four Table 1 benchmarks in paper order.
func All() []Benchmark {
	return []Benchmark{
		BoundedbufferBench(),
		EliminationstackBench(),
		SafestackBench(),
		WorkstealingqueueBench(),
	}
}

func mustParse(name, src string) *prog.Program {
	p, err := prog.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", name, err))
	}
	p.Name = name
	return p
}

func countLines(src string) int {
	n := 1
	for _, c := range src {
		if c == '\n' {
			n++
		}
	}
	return n
}

// Fibonacci returns the program of Fig. 2 with the given iteration count
// n: two threads repeatedly add the shared variables i and j into each
// other; the final assertions bound both by fib(2n+2), which only the
// perfectly alternating schedule reaches.
func Fibonacci(n int) *prog.Program {
	fib := []int64{1, 1}
	for len(fib) < 2*n+2 {
		fib = append(fib, fib[len(fib)-1]+fib[len(fib)-2])
	}
	max := fib[2*n+1] // fib(2n+2), 1-indexed
	src := fmt.Sprintf(`
int i, j;

void t1() {
  int k = 0;
  while (k < %[1]d) {
    i = i + j;
    k = k + 1;
  }
}

void t2() {
  int k = 0;
  while (k < %[1]d) {
    j = j + i;
    k = k + 1;
  }
}

void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < %[2]d);
  assert(i < %[2]d);
}
`, n, max)
	return mustParse(fmt.Sprintf("fibonacci-%d", n), src)
}

// FibonacciBench wraps Fibonacci(1) with metadata (used by the Fig. 6
// experiment).
func FibonacciBench(n int) Benchmark {
	p := Fibonacci(n)
	return Benchmark{
		Name:        p.Name,
		Program:     p,
		Threads:     3,
		Lines:       countLines(prog.Format(p)),
		BugUnwind:   n,
		BugContexts: 2*n + 2,
	}
}
