// Package core ties the whole toolchain together into the paper's
// parallel bounded model checking workflow (Sect. 3.3):
//
//	program → unfold(u) → flatten → encode(contexts) → partition(2^p)
//	        → parallel solve (first SAT wins) → decode + validate trace
//
// It is the programmatic equivalent of the paper's prototype command
// line (Sect. 3.4): unwind bound, context bound, number of cores, and an
// optional partition subrange for distribution over multiple machines.
package core

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/bv"
	"repro/internal/cnf"
	"repro/internal/flatten"
	"repro/internal/interp"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sat"
	"repro/internal/trace"
	"repro/internal/unfold"
	"repro/internal/vc"
	"repro/prog"
)

// Verdict is the analysis outcome.
type Verdict int

const (
	// Unknown means the analysis was cancelled or hit a budget.
	Unknown Verdict = iota
	// Safe means no assertion violation exists within the bounds.
	Safe
	// Unsafe means a reachable assertion violation was found.
	Unsafe
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "SAFE"
	case Unsafe:
		return "UNSAFE"
	default:
		return "UNKNOWN"
	}
}

// Options configures the analysis.
type Options struct {
	// Unwind is the loop/recursion unwinding bound (default 1).
	Unwind int
	// Contexts is the context bound (context-bounded mode, default 1;
	// the paper's --contexts is the number of context switches, i.e.
	// Contexts-1).
	Contexts int
	// Rounds, when > 0, selects the original round-robin scheduler with
	// the given round bound instead of context bounding (ablation mode).
	Rounds int
	// Width is the integer bit width (default 8).
	Width int
	// Cores is the number of solver instances running concurrently
	// (default 1).
	Cores int
	// Partitions is the number of trace-space partitions (a power of
	// two; default max(1, Cores) rounded up to a power of two, capped by
	// the encoding).
	Partitions int
	// From/To restrict the analysis to the half-open partition index
	// range [From, To) (distributed mode); From = To = 0 means all.
	From, To int
	// CubePath further refines the selected partitions with extra unit
	// assumptions over the canonical partition.SplitLits sequence, one
	// '0'/'1' polarity per character (adaptive cube splitting). Only
	// meaningful for single-partition ranges; empty means no refinement.
	CubePath string
	// MaxThreads bounds static thread instances during unfolding.
	MaxThreads int
	// ZeroLocals zero-initialises locals (differential-testing mode).
	ZeroLocals bool
	// Solver configures the CDCL instances.
	Solver sat.Options
	// SkipValidation disables counterexample replay validation.
	SkipValidation bool
	// SimulateParallel computes the parallel wall time by deterministic
	// makespan simulation over sequentially measured per-partition solve
	// times instead of actually running Cores goroutines. Exact for this
	// technique (solvers do not cooperate); intended for hosts with fewer
	// physical cores than Cores. See parallel.Simulate.
	SimulateParallel bool
	// CertifyUnsat checks a clausal refutation proof for every UNSAT
	// partition, so Safe verdicts are certified independently of the
	// search (with Preprocess, the certificate covers the simplified
	// formula). The counterpart of counterexample replay validation.
	CertifyUnsat bool
	// KeepProofs records the refutation proof of every UNSAT partition
	// and retains it on the corresponding Result.Instances entry instead
	// of checking it locally. Distributed workers use this to attach
	// certificates that the coordinator re-checks against its own
	// encoding; incompatible with Preprocess, whose proofs would cover
	// the simplified formula a remote checker does not have.
	KeepProofs bool
	// Preprocess runs the MiniSat-style simplifier (subsumption,
	// self-subsuming resolution, bounded variable elimination) on the
	// formula before partitioning, freezing every variable needed for
	// partitioning and counterexample decoding; models are reconstructed
	// through the elimination trail. This matches the paper's solver
	// configuration ("MiniSat 2.2.1 with simplifier", Sect. 3.4).
	Preprocess bool
	// ChunkTimeout bounds each partition's wall-clock solving time. An
	// expired partition degrades to Unknown with CauseTimeout in the
	// coverage report instead of stalling the whole run (0 = unbounded).
	ChunkTimeout time.Duration
	// ChunkConflicts bounds each partition's conflict count, recorded as
	// CauseConflictBudget on exhaustion (0 = unbounded). If
	// Solver.MaxConflicts is also set, the smaller bound applies.
	ChunkConflicts int64
	// MemBudgetMB bounds each partition solver's approximate live
	// footprint in MiB. A solver over budget first sheds learnt clauses
	// (degrade before dying); if that cannot get it back under, the
	// partition ends Unknown with CauseMemory in the coverage report
	// (0 = unbounded). If Solver.MemBudgetMB is also set, the smaller
	// bound applies.
	MemBudgetMB int64
	// MemAbort, when non-nil, is an external kill switch (typically an
	// RSS watchdog): once it is closed, every live and future solver
	// instance is interrupted with CauseMemory, so the process sheds its
	// biggest allocations before the kernel OOM-killer picks it.
	MemAbort <-chan struct{}
	// SplitDepth enables in-process adaptive cube splitting: an idle
	// solver slot interrupts the hardest partition that has been solving
	// for at least SplitGrace and splits its cube on the next canonical
	// split literal, re-queueing both halves — up to SplitDepth extra
	// path bits per partition (0 disables). See parallel.Options.
	SplitDepth int
	// SplitGrace is the minimum solving age before a partition may be
	// split (default 15s when SplitDepth > 0).
	SplitGrace time.Duration
	// SplitHardness is the minimum live hardness score before a
	// partition qualifies for splitting (0: any straggler past the
	// grace).
	SplitHardness float64
	// JournalPath, when non-empty, records the run manifest and every
	// partition verdict in a crash-safe append-only journal at that path,
	// so an interrupted run can be resumed without re-solving committed
	// partitions. A pre-existing journal is refused unless Resume is set.
	JournalPath string
	// Resume permits JournalPath to name an existing journal: its
	// manifest must match this run (program hash, bounds, partition
	// count) or Verify fails with journal.ErrManifestMismatch.
	Resume bool
	// Tracer, when non-nil, emits one timed span per pipeline phase
	// (unfold, flatten, encode, partition, preprocess, solve, validate)
	// under a root "verify" span. Nil is the zero-overhead fast path.
	Tracer *obs.Tracer
	// Parent, when non-nil, nests the "verify" root span under it
	// instead of starting a fresh root — distributed workers pass their
	// per-job span here so the whole pipeline hangs off the
	// coordinator's job span in the merged trace.
	Parent *obs.Span
	// Progress, when non-nil and ProgressEvery > 0, receives live
	// per-partition search statistics every ProgressEvery conflicts
	// while solving (from the solver goroutines).
	Progress func(partition int, st sat.Stats)
	// ProgressEvery is the conflict cadence of Progress callbacks.
	ProgressEvery int64
	// Profiler, when non-nil, captures pprof CPU/heap profiles
	// bracketing the encode (unfold+flatten+encode) and solve phases —
	// the -profile-dir machinery. Nil is the zero-overhead fast path.
	Profiler *obs.Profiler

	// span is the enclosing span for sub-phase emission; set by Verify
	// so EncodeProgram's phases nest under the "verify" root.
	span *obs.Span
}

// phase opens a span for one pipeline phase, nested under the Verify
// root span when called from Verify, or a root span when the phase
// helpers (EncodeProgram, MakePartitions) are used standalone.
func (o *Options) phase(name string, attrs ...obs.Attr) *obs.Span {
	if o.span != nil {
		return o.span.Child(name, attrs...)
	}
	return o.Tracer.Start(name, attrs...)
}

// PhaseTiming is one pipeline phase's wall-clock cost, in execution
// order. The same data the tracer emits as spans, kept on the Result so
// callers (parbmc -stats) need no sink round-trip.
type PhaseTiming struct {
	Name     string
	Duration time.Duration
}

func (o *Options) setDefaults() {
	if o.Unwind == 0 {
		o.Unwind = 1
	}
	if o.Contexts == 0 && o.Rounds == 0 {
		o.Contexts = 1
	}
	if o.Width == 0 {
		o.Width = 8
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
}

// Coverage reports how much of the trace space a run actually decided:
// partitions that hit a budget are listed under the budget they
// exhausted, so an Unknown verdict names its cause instead of being
// silent about which chunks gave up.
type Coverage struct {
	// Total is the number of partitions in the run.
	Total int
	// Decided is the number that reached a definite SAT/UNSAT verdict
	// (including verdicts replayed from a resume journal).
	Decided int
	// Timeout, ConflictBudget, Memory and Cancelled list the partition
	// indices that ended Unknown, keyed by why.
	Timeout        []int
	ConflictBudget []int
	Memory         []int
	Cancelled      []int
}

// Complete reports whether every partition was decided.
func (c Coverage) Complete() bool { return c.Decided == c.Total }

func (c Coverage) String() string {
	s := fmt.Sprintf("%d/%d partitions decided", c.Decided, c.Total)
	if c.Complete() {
		return s
	}
	if len(c.Timeout) > 0 {
		s += fmt.Sprintf(", timeout: %v", c.Timeout)
	}
	if len(c.ConflictBudget) > 0 {
		s += fmt.Sprintf(", conflict-budget: %v", c.ConflictBudget)
	}
	if len(c.Memory) > 0 {
		s += fmt.Sprintf(", memory: %v", c.Memory)
	}
	if len(c.Cancelled) > 0 {
		s += fmt.Sprintf(", cancelled: %v", c.Cancelled)
	}
	return s
}

// buildCoverage classifies per-partition outcomes. A run decided by
// preprocessing alone has no instances: the whole space is covered.
func buildCoverage(total int, pres *parallel.Result) Coverage {
	c := Coverage{Total: total}
	if len(pres.Instances) == 0 {
		if pres.Status != sat.Unknown {
			c.Decided = total
		}
		return c
	}
	for _, inst := range pres.Instances {
		switch {
		case inst.Status != sat.Unknown:
			c.Decided++
		case inst.Cause == sat.CauseTimeout:
			c.Timeout = append(c.Timeout, inst.Partition)
		case inst.Cause == sat.CauseConflictBudget:
			c.ConflictBudget = append(c.ConflictBudget, inst.Partition)
		case inst.Cause == sat.CauseMemory:
			c.Memory = append(c.Memory, inst.Partition)
		default:
			c.Cancelled = append(c.Cancelled, inst.Partition)
		}
	}
	return c
}

// Result reports the analysis outcome and its cost metrics, mirroring
// the columns of Table 2 in the paper.
type Result struct {
	// Verdict is SAFE / UNSAFE / UNKNOWN.
	Verdict Verdict
	// Trace is the decoded counterexample (Verdict == Unsafe).
	Trace *trace.Trace
	// Model is the raw satisfying assignment Trace was decoded from
	// (Verdict == Unsafe) — the SAT half of a verdict certificate: any
	// party holding the same encoding can re-evaluate the formula and
	// replay the decoded trace without trusting this run's solver.
	Model []bool
	// Violation is the replayed assertion failure (Verdict == Unsafe,
	// validation enabled).
	Violation *interp.Violation

	// Vars and Clauses are the propositional formula size.
	Vars, Clauses int
	// Threads is the number of static thread instances.
	Threads int
	// ThreadProcs names the source procedure of each static thread.
	ThreadProcs []string
	// Partitions is the number of partitions actually analysed.
	Partitions int
	// Winner is the partition that found the bug (-1 if none).
	Winner int

	// EncodeTime and SolveTime split the wall-clock cost.
	EncodeTime time.Duration
	SolveTime  time.Duration
	// Phases breaks the run into per-phase wall-clock timings
	// (unfold, flatten, encode, partition, preprocess, solve, validate)
	// in execution order; phases that did not run are absent.
	Phases []PhaseTiming

	// Instances are the per-partition solver results.
	Instances []parallel.InstanceResult
	// Certified reports that every UNSAT partition carried a checked
	// refutation proof (CertifyUnsat only).
	Certified bool
	// Coverage classifies every partition outcome; on an Unknown verdict
	// it names which partitions exhausted which budget.
	Coverage Coverage
	// Resumed is the number of partition verdicts replayed from the
	// journal instead of re-solved (JournalPath with Resume).
	Resumed int
	// Splits counts adaptive cube splits performed by this run;
	// MaxCubeDepth is the deepest cube path reached (Options.SplitDepth).
	Splits       int
	MaxCubeDepth int
	// JournalSealed reports that the resume journal hit a write or sync
	// failure mid-run (disk full, I/O error) and sealed itself read-only;
	// the run finished journal-less from that point, so crash resume
	// covers only the verdicts committed before the seal. SealCause is
	// the underlying failure.
	JournalSealed bool
	SealCause     string
}

// Verify runs the full pipeline on a checked program.
func Verify(ctx context.Context, p *prog.Program, opts Options) (res *Result, err error) {
	opts.setDefaults()

	verifyAttrs := []obs.Attr{
		obs.KV("unwind", opts.Unwind), obs.KV("contexts", opts.Contexts),
		obs.KV("rounds", opts.Rounds), obs.KV("width", opts.Width),
		obs.KV("cores", opts.Cores),
	}
	var root *obs.Span
	if opts.Parent != nil {
		root = opts.Parent.Child("verify", verifyAttrs...)
	} else {
		root = opts.Tracer.Start("verify", verifyAttrs...)
	}
	opts.span = root
	defer func() {
		if err != nil {
			root.End(obs.KV("error", err.Error()))
		} else {
			root.End(obs.KV("verdict", res.Verdict.String()))
		}
	}()
	var phases []PhaseTiming
	timePhase := func(name string, start time.Time) {
		phases = append(phases, PhaseTiming{Name: name, Duration: time.Since(start)})
	}

	// The profile brackets mirror the phase spans: one capture around
	// the front half (unfold → encode), one around the solve phase.
	opts.Profiler.StartPhase("encode")
	enc, fp, encTiming, err := EncodeProgram(p, opts)
	opts.Profiler.EndPhase("encode")
	if err != nil {
		return nil, err
	}
	_ = fp
	phases = append(phases,
		PhaseTiming{Name: "unfold", Duration: encTiming.Unfold},
		PhaseTiming{Name: "flatten", Duration: encTiming.Flatten},
		PhaseTiming{Name: "encode", Duration: encTiming.Encode},
	)
	encodeTime := encTiming.Total()

	partSpan := opts.phase("partition")
	partStart := time.Now()
	parts, totalParts, err := MakePartitions(enc, opts)
	if err != nil {
		partSpan.End(obs.KV("error", err.Error()))
		return nil, err
	}
	timePhase("partition", partStart)
	partSpan.End(obs.KV("partitions", len(parts)))

	formula := enc.Formula()
	var simplifier *sat.Simplifier
	var preDecided sat.Status
	if opts.Preprocess {
		preSpan := opts.phase("preprocess", obs.KV("vars", formula.NumVars), obs.KV("clauses", formula.NumClauses()))
		preStart := time.Now()
		simplifier = sat.NewSimplifier()
		simplifier.FreezeLits(protectedLits(enc)...)
		simplified, st := simplifier.Simplify(formula)
		preDecided = st
		formula = simplified
		timePhase("preprocess", preStart)
		preSpan.End(obs.KV("clauses_after", formula.NumClauses()))
	}

	// The journal opens only after partitioning, when the manifest's
	// partition count is final. The manifest pins everything that changes
	// the meaning of a partition index — the *total* partitioning plus
	// the [From, To) subrange actually analysed, not just how many
	// partitions this run sees: 16 partitions sliced [0,8) and a plain
	// 8-partition run both solve 8 chunks, but index i constrains
	// different polarity bits in each, so they must never share a
	// journal. Budgets are deliberately not pinned: they live on the
	// individual budget-exhausted records, so a resume with raised
	// budgets can re-solve exactly the chunks they starved.
	var jnl *journal.Journal
	if opts.JournalPath != "" {
		if !opts.Resume {
			if _, serr := os.Stat(opts.JournalPath); serr == nil {
				return nil, fmt.Errorf("core: journal %s already exists (pass Resume to continue it)", opts.JournalPath)
			}
		}
		jFrom, jTo := opts.From, opts.To
		if jFrom == 0 && jTo == 0 {
			jTo = totalParts // normalise: default means the full range
		}
		jnl, err = journal.Open(opts.JournalPath, journal.Manifest{
			ProgramSHA256: journal.HashProgram(prog.Format(p)),
			Unwind:        opts.Unwind,
			Contexts:      opts.Contexts,
			Rounds:        opts.Rounds,
			Width:         opts.Width,
			Partitions:    totalParts,
			From:          jFrom,
			To:            jTo,
		})
		if err != nil {
			return nil, err
		}
		jnl.SetTracer(opts.Tracer)
		jnl.SetParent(root)
		defer jnl.Close()
	}

	if opts.KeepProofs && opts.Preprocess {
		return nil, fmt.Errorf("core: KeepProofs is incompatible with Preprocess (proofs would cover the simplified formula)")
	}
	popts := parallel.Options{
		Workers: opts.Cores, Solver: opts.Solver, CertifyUnsat: opts.CertifyUnsat,
		KeepProofs: opts.KeepProofs,
		Progress:   opts.Progress, ProgressEvery: opts.ProgressEvery,
		ChunkTimeout: opts.ChunkTimeout, ChunkConflicts: opts.ChunkConflicts,
		MemBudgetMB: opts.MemBudgetMB, MemAbort: opts.MemAbort,
		Journal: jnl,
	}
	if opts.SplitDepth > 0 {
		popts.SplitDepth = opts.SplitDepth
		popts.SplitGrace = opts.SplitGrace
		popts.SplitHardness = opts.SplitHardness
		popts.SplitLits = partition.SplitLits(enc, totalParts)
	}
	solveSpan := opts.phase("solve",
		obs.KV("partitions", len(parts)), obs.KV("workers", opts.Cores),
		obs.KV("vars", formula.NumVars), obs.KV("clauses", formula.NumClauses()))
	solveStart := time.Now()
	opts.Profiler.StartPhase("solve")
	var pres *parallel.Result
	switch preDecided {
	case sat.Unsat:
		// The whole formula is refuted by preprocessing alone: every
		// partition is unsatisfiable.
		pres = &parallel.Result{Status: sat.Unsat, Winner: -1}
	case sat.Sat:
		// Only unit clauses remain: satisfiable regardless of the
		// partition; build the model from the units.
		model := make([]bool, enc.Formula().NumVars)
		for _, c := range formula.Clauses {
			if len(c) == 1 {
				model[c[0].Var()-1] = !c[0].Neg()
			}
		}
		pres = &parallel.Result{Status: sat.Sat, Winner: 0, Model: model}
	default:
		if opts.SimulateParallel {
			pres, err = parallel.Simulate(ctx, formula, parts, popts)
		} else {
			pres, err = parallel.Solve(ctx, formula, parts, popts)
		}
		if err != nil {
			opts.Profiler.EndPhase("solve")
			solveSpan.End(obs.KV("error", err.Error()))
			return nil, err
		}
	}
	opts.Profiler.EndPhase("solve")
	timePhase("solve", solveStart)
	solveSpan.End(obs.KV("status", pres.Status.String()), obs.KV("winner", pres.Winner))
	if simplifier != nil && pres.Status == sat.Sat {
		model := pres.Model
		if len(model) < enc.Formula().NumVars {
			grown := make([]bool, enc.Formula().NumVars)
			copy(grown, model)
			model = grown
		}
		pres.Model = simplifier.ReconstructModel(model)
	}

	procs := make([]string, len(enc.Program.Threads))
	for i, th := range enc.Program.Threads {
		procs[i] = th.Proc
	}
	res = &Result{
		Certified:    pres.Certified,
		Vars:         formula.NumVars,
		Clauses:      formula.NumClauses(),
		Threads:      len(enc.Program.Threads),
		ThreadProcs:  procs,
		Partitions:   len(parts),
		Winner:       pres.Winner,
		EncodeTime:   encodeTime,
		SolveTime:    pres.Wall,
		Instances:    pres.Instances,
		Coverage:     buildCoverage(len(parts), pres),
		Resumed:      pres.Resumed,
		Splits:       pres.Splits,
		MaxCubeDepth: pres.MaxCubeDepth,
	}
	res.JournalSealed = pres.JournalSealed
	res.SealCause = pres.JournalSealCause
	switch pres.Status {
	case sat.Sat:
		res.Verdict = Unsafe
		res.Model = pres.Model
		res.Trace = trace.Decode(enc, pres.Model)
		if !opts.SkipValidation {
			valSpan := opts.phase("validate")
			valStart := time.Now()
			viol, verr := trace.Validate(enc, res.Trace)
			if verr != nil {
				valSpan.End(obs.KV("error", verr.Error()))
				return nil, fmt.Errorf("core: counterexample validation failed: %w", verr)
			}
			timePhase("validate", valStart)
			valSpan.End()
			res.Violation = viol
		}
	case sat.Unsat:
		res.Verdict = Safe
	default:
		res.Verdict = Unknown
	}
	res.Phases = phases
	return res, nil
}

// EncodeTiming splits the front half of the pipeline (unfold, flatten,
// encode) into per-phase wall-clock costs. The encode phase covers
// verification-condition generation and the interleaved Tseitin CNF
// conversion (the bit-vector builder emits clauses as it goes, so the
// two are not separable).
type EncodeTiming struct {
	Unfold  time.Duration
	Flatten time.Duration
	Encode  time.Duration
}

// Total is the summed front-half cost (the Result.EncodeTime quantity).
func (t EncodeTiming) Total() time.Duration { return t.Unfold + t.Flatten + t.Encode }

// EncodeProgram runs the front half of the pipeline (unfold, flatten,
// encode) and returns the encoded formula with per-phase timings.
// Exposed for the benchmark harness, which reuses one encoding across
// many solver configurations.
func EncodeProgram(p *prog.Program, opts Options) (*vc.Encoded, *flatten.Program, EncodeTiming, error) {
	opts.setDefaults()
	var timing EncodeTiming

	unfoldSpan := opts.phase("unfold", obs.KV("unwind", opts.Unwind))
	start := time.Now()
	up, err := unfold.Unfold(p, unfold.Options{Unwind: opts.Unwind, MaxThreads: opts.MaxThreads})
	timing.Unfold = time.Since(start)
	unfoldSpan.End()
	if err != nil {
		return nil, nil, timing, err
	}

	flatSpan := opts.phase("flatten")
	start = time.Now()
	fp, err := flatten.Flatten(up)
	timing.Flatten = time.Since(start)
	flatSpan.End()
	if err != nil {
		return nil, nil, timing, err
	}

	vopts := vc.Options{
		Width:      opts.Width,
		ZeroLocals: opts.ZeroLocals,
	}
	if opts.Rounds > 0 {
		vopts.Mode = vc.RoundRobin
		vopts.Rounds = opts.Rounds
	} else {
		vopts.Contexts = opts.Contexts
	}
	encSpan := opts.phase("encode")
	start = time.Now()
	enc, err := vc.Encode(fp, vopts)
	timing.Encode = time.Since(start)
	if err != nil {
		encSpan.End(obs.KV("error", err.Error()))
		return nil, nil, timing, err
	}
	encSpan.End(obs.KV("vars", enc.Formula().NumVars), obs.KV("clauses", enc.Formula().NumClauses()))
	return enc, fp, timing, nil
}

// MakePartitions builds the partition list for the encoded formula,
// applying the Partitions/Cores defaulting and the From/To subrange.
// total is the full partition count before the subrange slice — the
// quantity that gives a partition index its meaning (and the one the
// resume journal's manifest must pin).
func MakePartitions(enc *vc.Encoded, opts Options) (parts []partition.Partition, total int, err error) {
	opts.setDefaults()
	nparts := opts.Partitions
	if nparts == 0 {
		nparts = 1
		for nparts < opts.Cores {
			nparts *= 2
		}
	}
	if max := partition.MaxPartitions(enc); nparts > max {
		nparts = max
	}
	parts, err = partition.Make(enc, nparts)
	if err != nil {
		return nil, 0, err
	}
	total = len(parts)
	if opts.From != 0 || opts.To != 0 {
		if opts.From < 0 || opts.From >= opts.To || opts.To > len(parts) {
			return nil, 0, fmt.Errorf("core: invalid partition range [%d,%d) of %d", opts.From, opts.To, len(parts))
		}
		parts = parts[opts.From:opts.To]
	}
	if opts.CubePath != "" {
		extra, perr := partition.PathAssumptions(opts.CubePath, partition.SplitLits(enc, total))
		if perr != nil {
			return nil, 0, fmt.Errorf("core: %w", perr)
		}
		refined := make([]partition.Partition, len(parts))
		for i, pt := range parts {
			refined[i] = partition.Partition{
				Index:       pt.Index,
				Assumptions: append(append([]cnf.Lit{}, pt.Assumptions...), extra...),
			}
		}
		parts = refined
	}
	return parts, total, nil
}

// protectedLits collects every literal whose variable must survive
// preprocessing: the partitioning variables plus everything the trace
// decoder reads (scheduler words, non-deterministic inputs, initial
// locals).
func protectedLits(enc *vc.Encoded) []cnf.Lit {
	var out []cnf.Lit
	addVec := func(v bv.Vec) {
		for _, l := range v {
			out = append(out, l)
		}
	}
	for _, v := range enc.TidVecs {
		addVec(v)
	}
	for _, v := range enc.CsVecs {
		addVec(v)
	}
	for _, v := range enc.Nondet {
		addVec(v)
	}
	for _, v := range enc.InitScalars {
		addVec(v)
	}
	for _, vs := range enc.InitArrays {
		for _, v := range vs {
			addVec(v)
		}
	}
	return out
}
