package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sat"
	"repro/prog"
)

type collectSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *collectSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *collectSink) byName() map[string]obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]obs.Event, len(s.events))
	for _, e := range s.events {
		m[e.Name] = e
	}
	return m
}

// TestVerifyEmitsPhaseSpans checks the span taxonomy: one root "verify"
// span with every pipeline phase nested under it, and matching Phases
// timings on the result.
func TestVerifyEmitsPhaseSpans(t *testing.T) {
	p := prog.MustParse(fibSrc)
	sink := &collectSink{}
	res, err := Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 4, Cores: 2,
		Tracer: obs.NewTracer(sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}

	spans := sink.byName()
	verify, ok := spans["verify"]
	if !ok {
		t.Fatalf("no verify root span; got %v", spans)
	}
	if verify.Parent != 0 {
		t.Fatalf("verify span is not a root (parent %d)", verify.Parent)
	}
	if verify.Attrs["verdict"] != "UNSAFE" {
		t.Fatalf("verify verdict attr: %v", verify.Attrs)
	}
	for _, phase := range []string{"unfold", "flatten", "encode", "partition", "solve", "validate"} {
		sp, ok := spans[phase]
		if !ok {
			t.Fatalf("missing %q span; got %v", phase, spans)
		}
		if sp.Parent != verify.ID {
			t.Fatalf("%q span parent %d, want %d", phase, sp.Parent, verify.ID)
		}
	}
	if spans["solve"].Attrs["status"] != "SAT" {
		t.Fatalf("solve span attrs: %v", spans["solve"].Attrs)
	}

	// Result.Phases mirrors the spans (validate included on UNSAFE runs).
	var names []string
	for _, ph := range res.Phases {
		names = append(names, ph.Name)
		if ph.Duration < 0 {
			t.Fatalf("phase %s has negative duration", ph.Name)
		}
	}
	want := []string{"unfold", "flatten", "encode", "partition", "solve", "validate"}
	if len(names) != len(want) {
		t.Fatalf("phases: got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases: got %v, want %v", names, want)
		}
	}
}

// TestVerifyPhasesWithoutTracer checks Phases are recorded even when no
// tracer is attached (the -stats path with no -trace-out).
func TestVerifyPhasesWithoutTracer(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: 3, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Phases) < 5 {
		t.Fatalf("phases: %v", res.Phases)
	}
}

// TestVerifyProgressCallback wires a live-progress hook through the
// parallel layer down to the CDCL loop.
func TestVerifyProgressCallback(t *testing.T) {
	p := prog.MustParse(fibSrc)
	var mu sync.Mutex
	snaps := 0
	var last sat.Stats
	res, err := Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 4, Cores: 1,
		ProgressEvery: 1,
		Progress: func(partition int, st sat.Stats) {
			mu.Lock()
			snaps++
			last = st
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	mu.Lock()
	defer mu.Unlock()
	if snaps == 0 {
		t.Fatal("progress hook never fired")
	}
	if last.Conflicts == 0 {
		t.Fatalf("last snapshot has no conflicts: %+v", last)
	}
}
