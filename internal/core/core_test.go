package core

import (
	"context"
	"testing"

	"repro/prog"
)

const fibSrc = `
int i, j;
void t1() {
  int k = 0;
  while (k < 1) { i = i + j; k = k + 1; }
}
void t2() {
  int k = 0;
  while (k < 1) { j = j + i; k = k + 1; }
}
void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 3);
  assert(i < 3);
}
`

func TestVerifyUnsafeWithTraceValidation(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: 4, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace == nil || len(res.Trace.Schedule) != 4 {
		t.Fatalf("trace: %+v", res.Trace)
	}
	if res.Violation == nil {
		t.Fatal("violation not validated by replay")
	}
	if res.Vars == 0 || res.Clauses == 0 {
		t.Fatal("formula size not reported")
	}
	if res.Threads != 3 {
		t.Fatalf("threads: %d", res.Threads)
	}
	if res.Trace.String() == "" {
		t.Fatal("empty trace rendering")
	}
}

func TestVerifySafeWithinBounds(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: 3, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace != nil {
		t.Fatal("unexpected trace on safe result")
	}
}

func TestVerifySameVerdictAcrossCores(t *testing.T) {
	p := prog.MustParse(fibSrc)
	for _, cores := range []int{1, 2, 4, 8} {
		res, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: 4, Cores: cores})
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if res.Verdict != Unsafe {
			t.Fatalf("cores=%d: verdict %v", cores, res.Verdict)
		}
		if res.Violation == nil {
			t.Fatalf("cores=%d: no validated violation", cores)
		}
	}
	// Safe case across cores.
	for _, cores := range []int{1, 4} {
		res, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: 3, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Safe {
			t.Fatalf("cores=%d: verdict %v", cores, res.Verdict)
		}
	}
}

func TestVerifyDistributedRange(t *testing.T) {
	p := prog.MustParse(fibSrc)
	// 4 partitions split over two simulated machines; the union of the
	// two runs must find the bug, and a safe configuration must be safe
	// on both.
	found := 0
	for _, r := range [][2]int{{0, 2}, {2, 4}} {
		res, err := Verify(context.Background(), p, Options{
			Unwind: 1, Contexts: 4, Cores: 2, Partitions: 4,
			From: r[0], To: r[1],
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == Unsafe {
			found++
			if res.Winner < r[0] || res.Winner >= r[1] {
				t.Fatalf("winner %d outside range %v", res.Winner, r)
			}
		}
	}
	if found == 0 {
		t.Fatal("no machine found the bug")
	}
}

func TestVerifyInvalidRange(t *testing.T) {
	p := prog.MustParse(fibSrc)
	_, err := Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 4, Partitions: 4, From: 3, To: 10,
	})
	if err == nil {
		t.Fatal("invalid range accepted")
	}
}

func TestVerifyRoundRobinMode(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := Verify(context.Background(), p, Options{Unwind: 1, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	res, err = Verify(context.Background(), p, Options{Unwind: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestVerifyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := prog.MustParse(fibSrc)
	res, err := Verify(ctx, p, Options{Unwind: 1, Contexts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	if Safe.String() != "SAFE" || Unsafe.String() != "UNSAFE" || Unknown.String() != "UNKNOWN" {
		t.Fatal("verdict strings")
	}
}

func TestPartitionsCappedByEncoding(t *testing.T) {
	p := prog.MustParse(fibSrc)
	// Contexts=2 has only 1 symbolic context -> max 2 partitions; asking
	// for 8 cores must transparently cap.
	res, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: 2, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 2 {
		t.Fatalf("partitions: %d, want 2", res.Partitions)
	}
}

func TestVerifyWithPreprocessing(t *testing.T) {
	p := prog.MustParse(fibSrc)
	// Verdicts and validated traces must be identical with and without
	// the simplifier, across SAT and UNSAT bounds.
	for _, contexts := range []int{3, 4} {
		plain, err := Verify(context.Background(), p, Options{Unwind: 1, Contexts: contexts, Cores: 2})
		if err != nil {
			t.Fatal(err)
		}
		pp, err := Verify(context.Background(), p, Options{
			Unwind: 1, Contexts: contexts, Cores: 2, Preprocess: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Verdict != pp.Verdict {
			t.Fatalf("contexts=%d: plain %v, preprocessed %v", contexts, plain.Verdict, pp.Verdict)
		}
		if pp.Verdict == Unsafe && pp.Violation == nil {
			t.Fatal("preprocessed counterexample failed validation")
		}
		if pp.Clauses >= plain.Clauses {
			t.Fatalf("contexts=%d: preprocessing did not shrink the formula (%d >= %d)",
				contexts, pp.Clauses, plain.Clauses)
		}
	}
}

func TestVerifyPreprocessingTrivialCases(t *testing.T) {
	// Trivially unsafe: the simplifier may decide SAT alone.
	unsafe := prog.MustParse(`void main() { assert(false); }`)
	res, err := Verify(context.Background(), unsafe, Options{Contexts: 1, Preprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe || res.Violation == nil {
		t.Fatalf("verdict %v violation %v", res.Verdict, res.Violation)
	}
	// Trivially safe: refuted during preprocessing.
	safe := prog.MustParse(`void main() { assert(true); }`)
	res, err = Verify(context.Background(), safe, Options{Contexts: 1, Preprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestVerifyCertifiedSafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 3, Cores: 2, CertifyUnsat: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe || !res.Certified {
		t.Fatalf("verdict %v certified %v", res.Verdict, res.Certified)
	}
	// Also through the deterministic simulator.
	res, err = Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 3, Cores: 2, CertifyUnsat: true, SimulateParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe || !res.Certified {
		t.Fatalf("simulated: verdict %v certified %v", res.Verdict, res.Certified)
	}
	// Unsafe verdicts are validated by replay instead; certification does
	// not interfere.
	res, err = Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 4, Cores: 2, CertifyUnsat: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe || res.Violation == nil {
		t.Fatalf("verdict %v violation %v", res.Verdict, res.Violation)
	}
}
