package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/prog"
)

// A journaled safe run resumes to the same verdict with every partition
// replayed from the journal instead of re-solved.
func TestVerifyJournalResume(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := Options{Unwind: 1, Contexts: 3, Cores: 2, Partitions: 4, JournalPath: path}

	res, err := Verify(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe || res.Resumed != 0 {
		t.Fatalf("first run: verdict %v resumed %d", res.Verdict, res.Resumed)
	}
	if !res.Coverage.Complete() || res.Coverage.Total != res.Partitions {
		t.Fatalf("first run coverage: %v", res.Coverage)
	}
	man, recs, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.Partitions != res.Partitions || len(recs) != res.Partitions {
		t.Fatalf("journal holds %d records for %d partitions", len(recs), man.Partitions)
	}

	opts.Resume = true
	res2, err := Verify(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != Safe {
		t.Fatalf("resumed verdict %v", res2.Verdict)
	}
	if res2.Resumed != res.Partitions {
		t.Fatalf("resumed %d of %d partitions", res2.Resumed, res.Partitions)
	}
	for _, inst := range res2.Instances {
		if !inst.Resumed {
			t.Fatalf("partition %d re-solved on resume", inst.Partition)
		}
	}
}

// Resuming an unsafe run re-derives the model for the journaled SAT
// partition, so trace decoding and replay validation still work.
func TestVerifyJournalResumeUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := Options{Unwind: 1, Contexts: 4, Cores: 2, JournalPath: path}

	res, err := Verify(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("first run: verdict %v", res.Verdict)
	}

	opts.Resume = true
	res2, err := Verify(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != Unsafe {
		t.Fatalf("resumed verdict %v", res2.Verdict)
	}
	// The resumed winner must carry a journaled SAT record. It need not
	// equal the first run's reported winner: several partitions can hold
	// counterexamples, and more than one may have committed SAT before
	// the first run's stop landed — any of them is a valid winner, and
	// replay deterministically picks the lowest-indexed one.
	_, recs, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	winnerJournaled := false
	for _, rec := range recs {
		if rec.Verdict == "SAT" && rec.From == res2.Winner {
			winnerJournaled = true
		}
	}
	if !winnerJournaled {
		t.Fatalf("resumed winner %d has no journaled SAT record (records %+v)", res2.Winner, recs)
	}
	if res2.Trace == nil || res2.Violation == nil {
		t.Fatal("resumed counterexample not decoded/validated")
	}
}

// An existing journal without Resume is refused: accidentally reusing a
// path must not silently adopt another run's verdicts.
func TestVerifyJournalRefusesExistingWithoutResume(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := Options{Unwind: 1, Contexts: 3, JournalPath: path}
	if _, err := Verify(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(context.Background(), p, opts); err == nil {
		t.Fatal("existing journal accepted without Resume")
	}
}

// Resume with different bounds must be rejected: partition indices from
// a different manifest mean different trace-space slices.
func TestVerifyJournalManifestMismatch(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	if _, err := Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 3, JournalPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Verify(context.Background(), p, Options{
		Unwind: 1, Contexts: 4, JournalPath: path, Resume: true,
	})
	if !errors.Is(err, journal.ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch", err)
	}
	// A different program under the same bounds is also a mismatch.
	other := prog.MustParse(`void main() { assert(true); }`)
	_, err = Verify(context.Background(), other, Options{
		Unwind: 1, Contexts: 3, JournalPath: path, Resume: true,
	})
	if !errors.Is(err, journal.ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch", err)
	}
}

// A run under a starvation-level conflict budget completes with verdict
// Unknown and a coverage report naming the exhausted budget per
// partition — the poison-chunk degradation contract.
func TestVerifyChunkConflictBudgetCoverage(t *testing.T) {
	p := prog.MustParse(fibSrc)
	// At unwind 2 / contexts 3 two partitions refute by propagation alone
	// and two need a handful of conflicts, so a 1-conflict budget yields a
	// mixed report: partial coverage with the hard partitions named.
	res, err := Verify(context.Background(), p, Options{
		Unwind: 2, Contexts: 3, Cores: 2, Partitions: 4, ChunkConflicts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v, want UNKNOWN under a 1-conflict budget", res.Verdict)
	}
	if res.Coverage.Complete() {
		t.Fatalf("coverage claims complete: %v", res.Coverage)
	}
	if res.Coverage.Decided == 0 {
		t.Fatalf("propagation-only partitions not decided: %v", res.Coverage)
	}
	if len(res.Coverage.ConflictBudget) == 0 {
		t.Fatalf("no partition names the conflict budget: %v", res.Coverage)
	}
	if res.Coverage.String() == "" {
		t.Fatal("empty coverage rendering")
	}
}

func TestCoverageString(t *testing.T) {
	c := Coverage{Total: 16, Decided: 12, Timeout: []int{3, 7}, ConflictBudget: []int{1}, Cancelled: []int{9}}
	want := "12/16 partitions decided, timeout: [3 7], conflict-budget: [1], cancelled: [9]"
	if got := c.String(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	full := Coverage{Total: 4, Decided: 4}
	if got := full.String(); got != "4/4 partitions decided" {
		t.Fatalf("got %q", got)
	}
	if !full.Complete() || c.Complete() {
		t.Fatal("Complete() classification")
	}
}

// The manifest pins the total partitioning plus the analysed subrange,
// not just the number of partitions this run happens to see: 16
// partitions sliced [0,8) and a plain 8-partition run both solve 8
// chunks, but partition index i constrains different polarity bits in
// each, so their journals must never mix.
func TestVerifyJournalSubrangePinned(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	sub := Options{
		Unwind: 1, Contexts: 3, Cores: 2,
		Partitions: 4, From: 0, To: 2, JournalPath: path,
	}
	res, err := Verify(context.Background(), p, sub)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 2 {
		t.Fatalf("subrange run analysed %d partitions, want 2", res.Partitions)
	}
	man, _, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.Partitions != 4 || man.From != 0 || man.To != 2 {
		t.Fatalf("manifest %+v, want total 4 range [0,2)", man)
	}

	// Same chunk count, different partitioning: refused.
	whole := Options{
		Unwind: 1, Contexts: 3, Cores: 2,
		Partitions: 2, JournalPath: path, Resume: true,
	}
	if _, err := Verify(context.Background(), p, whole); !errors.Is(err, journal.ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch for 2-partition run against [0,2)-of-4 journal", err)
	}
	// A different subrange of the same partitioning: refused.
	other := sub
	other.Resume = true
	other.From, other.To = 2, 4
	if _, err := Verify(context.Background(), p, other); !errors.Is(err, journal.ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch for subrange [2,4)", err)
	}
	// The identical subrange resumes cleanly.
	again := sub
	again.Resume = true
	res2, err := Verify(context.Background(), p, again)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 2 {
		t.Fatalf("identical subrange resumed %d partitions, want 2", res2.Resumed)
	}
}
