package bv

import (
	"testing"

	"repro/internal/sat"
)

// proveEquivalent checks x ≡ y by asserting x ≠ y and expecting UNSAT:
// SAT-based verification of the circuit constructors' algebraic laws.
func proveEquivalent(t *testing.T, name string, c *Ctx, x, y Vec) {
	t.Helper()
	c.B.Assert(c.Ne(x, y))
	s := sat.NewFromFormula(c.B.F, sat.Options{})
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != sat.Unsat {
		t.Fatalf("%s: found counterexample to the law", name)
	}
}

func TestAddCommutative(t *testing.T) {
	c := NewCtx()
	a, b := c.Input(6), c.Input(6)
	proveEquivalent(t, "a+b = b+a", c, c.Add(a, b), c.Add(b, a))
}

func TestAddAssociative(t *testing.T) {
	c := NewCtx()
	a, b, d := c.Input(5), c.Input(5), c.Input(5)
	proveEquivalent(t, "(a+b)+d = a+(b+d)", c, c.Add(c.Add(a, b), d), c.Add(a, c.Add(b, d)))
}

func TestMulCommutative(t *testing.T) {
	c := NewCtx()
	a, b := c.Input(5), c.Input(5)
	proveEquivalent(t, "a*b = b*a", c, c.Mul(a, b), c.Mul(b, a))
}

func TestMulDistributesOverAdd(t *testing.T) {
	c := NewCtx()
	a, b, d := c.Input(4), c.Input(4), c.Input(4)
	proveEquivalent(t, "a*(b+d) = a*b+a*d", c,
		c.Mul(a, c.Add(b, d)), c.Add(c.Mul(a, b), c.Mul(a, d)))
}

func TestSubIsAddNeg(t *testing.T) {
	c := NewCtx()
	a, b := c.Input(6), c.Input(6)
	proveEquivalent(t, "a-b = a+(-b)", c, c.Sub(a, b), c.Add(a, c.Neg(b)))
}

func TestNegInvolution(t *testing.T) {
	c := NewCtx()
	a := c.Input(7)
	proveEquivalent(t, "-(-a) = a", c, c.Neg(c.Neg(a)), a)
}

func TestShlIsMulByPowerOfTwo(t *testing.T) {
	c := NewCtx()
	a := c.Input(6)
	proveEquivalent(t, "a<<2 = a*4", c, c.ShlConst(a, 2), c.Mul(a, c.Const(4, 6)))
}

func TestDeMorgan(t *testing.T) {
	c := NewCtx()
	a, b := c.Input(6), c.Input(6)
	proveEquivalent(t, "~(a&b) = ~a|~b", c, c.Not(c.And(a, b)), c.Or(c.Not(a), c.Not(b)))
}

func TestXorSelfCancels(t *testing.T) {
	c := NewCtx()
	a, b := c.Input(6), c.Input(6)
	proveEquivalent(t, "(a^b)^b = a", c, c.Xor(c.Xor(a, b), b), a)
}

func TestComparatorDuality(t *testing.T) {
	// a < b ↔ ¬(b <= a), signed and unsigned.
	c := NewCtx()
	a, b := c.Input(6), c.Input(6)
	lt := c.Slt(a, b)
	ge := c.Sle(b, a)
	c.B.Assert(c.B.Xnor(lt, ge.Not()).Not()) // assert they differ
	s := sat.NewFromFormula(c.B.F, sat.Options{})
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != sat.Unsat {
		t.Fatal("signed comparator duality violated")
	}
}

func TestStoreSelectAxiom(t *testing.T) {
	// select(store(a, i, v), i) = v for in-range symbolic i.
	c := NewCtx()
	arr := []Vec{c.Input(4), c.Input(4), c.Input(4)}
	i := c.Input(4)
	v := c.Input(4)
	c.B.Assert(c.Ult(i, c.Const(3, 4)))
	stored := c.Store(arr, i, v)
	got := c.Select(stored, i, c.Const(0, 4))
	proveEquivalent(t, "read-over-write", c, got, v)
}
