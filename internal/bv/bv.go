// Package bv provides word-level bit-vector circuits over a cnf.Builder,
// implementing the bit-blasting step of SAT-based BMC (paper Sect. 2.3):
// program variables are exploded into one propositional variable per bit
// and arithmetic is encoded like hardware circuits.
//
// Vectors are little-endian: bit 0 is the least significant bit. This
// matters for the paper's partitioning technique, which constrains the
// least-significant bit of the scheduled-thread identifiers (Sect. 3.3).
package bv

import (
	"fmt"

	"repro/internal/cnf"
)

// Vec is a bit-vector value: a slice of literals, least significant first.
type Vec []cnf.Lit

// Width returns the number of bits.
func (v Vec) Width() int { return len(v) }

// LSB returns the least-significant bit literal.
func (v Vec) LSB() cnf.Lit { return v[0] }

// Ctx builds bit-vector circuits over a Tseitin CNF builder.
type Ctx struct {
	B *cnf.Builder
}

// NewCtx returns a context over a fresh builder.
func NewCtx() *Ctx { return &Ctx{B: cnf.NewBuilder()} }

// Const builds a constant vector of the given width from the low bits of
// value (two's complement for negatives).
func (c *Ctx) Const(value int64, width int) Vec {
	v := make(Vec, width)
	for i := 0; i < width; i++ {
		if value&(1<<uint(i)) != 0 {
			v[i] = c.B.True()
		} else {
			v[i] = c.B.False()
		}
	}
	return v
}

// Input allocates a fresh unconstrained vector (a non-deterministic word).
func (c *Ctx) Input(width int) Vec {
	v := make(Vec, width)
	for i := range v {
		v[i] = c.B.Fresh()
	}
	return v
}

// Bool lifts a single literal to a width-1 vector.
func (c *Ctx) Bool(l cnf.Lit) Vec { return Vec{l} }

func (c *Ctx) checkSameWidth(op string, x, y Vec) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("bv: %s width mismatch %d vs %d", op, len(x), len(y)))
	}
}

// Not returns the bitwise complement.
func (c *Ctx) Not(x Vec) Vec {
	out := make(Vec, len(x))
	for i, b := range x {
		out[i] = b.Not()
	}
	return out
}

// And returns the bitwise conjunction.
func (c *Ctx) And(x, y Vec) Vec {
	c.checkSameWidth("and", x, y)
	out := make(Vec, len(x))
	for i := range x {
		out[i] = c.B.And(x[i], y[i])
	}
	return out
}

// Or returns the bitwise disjunction.
func (c *Ctx) Or(x, y Vec) Vec {
	c.checkSameWidth("or", x, y)
	out := make(Vec, len(x))
	for i := range x {
		out[i] = c.B.Or(x[i], y[i])
	}
	return out
}

// Xor returns the bitwise exclusive or.
func (c *Ctx) Xor(x, y Vec) Vec {
	c.checkSameWidth("xor", x, y)
	out := make(Vec, len(x))
	for i := range x {
		out[i] = c.B.Xor(x[i], y[i])
	}
	return out
}

// Add returns x + y (wrapping).
func (c *Ctx) Add(x, y Vec) Vec {
	c.checkSameWidth("add", x, y)
	out := make(Vec, len(x))
	carry := c.B.False()
	for i := range x {
		s := c.B.Xor(x[i], y[i])
		out[i] = c.B.Xor(s, carry)
		carry = c.B.Or(c.B.And(x[i], y[i]), c.B.And(s, carry))
	}
	return out
}

// Sub returns x - y (wrapping), via x + ¬y + 1.
func (c *Ctx) Sub(x, y Vec) Vec {
	c.checkSameWidth("sub", x, y)
	out := make(Vec, len(x))
	carry := c.B.True()
	ny := c.Not(y)
	for i := range x {
		s := c.B.Xor(x[i], ny[i])
		out[i] = c.B.Xor(s, carry)
		carry = c.B.Or(c.B.And(x[i], ny[i]), c.B.And(s, carry))
	}
	return out
}

// Neg returns two's-complement negation.
func (c *Ctx) Neg(x Vec) Vec {
	zero := c.Const(0, len(x))
	return c.Sub(zero, x)
}

// Mul returns x * y (wrapping), shift-and-add.
func (c *Ctx) Mul(x, y Vec) Vec {
	c.checkSameWidth("mul", x, y)
	w := len(x)
	acc := c.Const(0, w)
	for i := 0; i < w; i++ {
		// partial = (y[i] ? x << i : 0)
		partial := make(Vec, w)
		for j := 0; j < w; j++ {
			if j < i {
				partial[j] = c.B.False()
			} else {
				partial[j] = c.B.And(x[j-i], y[i])
			}
		}
		acc = c.Add(acc, partial)
	}
	return acc
}

// ShlConst returns x << k (filling with zeros).
func (c *Ctx) ShlConst(x Vec, k int) Vec {
	w := len(x)
	out := make(Vec, w)
	for i := 0; i < w; i++ {
		if i < k {
			out[i] = c.B.False()
		} else {
			out[i] = x[i-k]
		}
	}
	return out
}

// LshrConst returns x >> k (logical).
func (c *Ctx) LshrConst(x Vec, k int) Vec {
	w := len(x)
	out := make(Vec, w)
	for i := 0; i < w; i++ {
		if i+k < w {
			out[i] = x[i+k]
		} else {
			out[i] = c.B.False()
		}
	}
	return out
}

// Eq returns a literal for x = y.
func (c *Ctx) Eq(x, y Vec) cnf.Lit {
	c.checkSameWidth("eq", x, y)
	out := c.B.True()
	for i := range x {
		out = c.B.And(out, c.B.Xnor(x[i], y[i]))
	}
	return out
}

// Ne returns a literal for x ≠ y.
func (c *Ctx) Ne(x, y Vec) cnf.Lit { return c.Eq(x, y).Not() }

// Ult returns a literal for unsigned x < y.
func (c *Ctx) Ult(x, y Vec) cnf.Lit {
	c.checkSameWidth("ult", x, y)
	lt := c.B.False()
	for i := 0; i < len(x); i++ {
		bitLt := c.B.And(x[i].Not(), y[i])
		bitEq := c.B.Xnor(x[i], y[i])
		lt = c.B.Or(bitLt, c.B.And(bitEq, lt))
	}
	return lt
}

// Ule returns a literal for unsigned x ≤ y.
func (c *Ctx) Ule(x, y Vec) cnf.Lit { return c.Ult(y, x).Not() }

// Slt returns a literal for signed (two's complement) x < y.
func (c *Ctx) Slt(x, y Vec) cnf.Lit {
	c.checkSameWidth("slt", x, y)
	w := len(x)
	if w == 1 {
		// Signed 1-bit: -1 < 0, i.e. x=1 ∧ y=0.
		return c.B.And(x[0], y[0].Not())
	}
	sx, sy := x[w-1], y[w-1]
	// Different signs: x < y iff x negative.
	diff := c.B.And(sx, sy.Not())
	// Same sign: compare remaining bits unsigned.
	sameSignLt := c.Ult(x[:w-1], y[:w-1])
	same := c.B.Xnor(sx, sy)
	return c.B.Or(diff, c.B.And(same, sameSignLt))
}

// Sle returns a literal for signed x ≤ y.
func (c *Ctx) Sle(x, y Vec) cnf.Lit { return c.Slt(y, x).Not() }

// Ite returns cond ? x : y bitwise.
func (c *Ctx) Ite(cond cnf.Lit, x, y Vec) Vec {
	c.checkSameWidth("ite", x, y)
	out := make(Vec, len(x))
	for i := range x {
		out[i] = c.B.Ite(cond, x[i], y[i])
	}
	return out
}

// IsZero returns a literal for x = 0.
func (c *Ctx) IsZero(x Vec) cnf.Lit {
	any := c.B.False()
	for _, b := range x {
		any = c.B.Or(any, b)
	}
	return any.Not()
}

// NonZero returns a literal for x ≠ 0 (the C truth value of x).
func (c *Ctx) NonZero(x Vec) cnf.Lit { return c.IsZero(x).Not() }

// Extend returns x zero- or sign-extended to width w (or truncated).
func (c *Ctx) Extend(x Vec, w int, signed bool) Vec {
	if len(x) == w {
		return x
	}
	if len(x) > w {
		out := make(Vec, w)
		copy(out, x[:w])
		return out
	}
	out := make(Vec, w)
	copy(out, x)
	fill := c.B.False()
	if signed {
		fill = x[len(x)-1]
	}
	for i := len(x); i < w; i++ {
		out[i] = fill
	}
	return out
}

// Select returns array[index] where array is a slice of equal-width
// vectors and index is a bit-vector; out-of-range indices select def.
// Encoded as a chain of multiplexers (symbolic array read).
func (c *Ctx) Select(array []Vec, index Vec, def Vec) Vec {
	out := def
	for i, elem := range array {
		hit := c.Eq(index, c.Const(int64(i), len(index)))
		out = c.Ite(hit, elem, out)
	}
	return out
}

// Store returns a new array equal to array except position index holds
// value (symbolic array write).
func (c *Ctx) Store(array []Vec, index Vec, value Vec) []Vec {
	out := make([]Vec, len(array))
	for i, elem := range array {
		hit := c.Eq(index, c.Const(int64(i), len(index)))
		out[i] = c.Ite(hit, value, elem)
	}
	return out
}

// EvalVec decodes the unsigned value of a vector under a model
// (model[v-1] = value of variable v); constants are resolved through
// the builder.
func (c *Ctx) EvalVec(v Vec, model []bool) uint64 {
	var out uint64
	for i, b := range v {
		val := c.EvalLit(b, model)
		if val {
			out |= 1 << uint(i)
		}
	}
	return out
}

// EvalSigned decodes the signed (two's complement) value of a vector.
func (c *Ctx) EvalSigned(v Vec, model []bool) int64 {
	u := c.EvalVec(v, model)
	w := uint(len(v))
	if w < 64 && u&(1<<(w-1)) != 0 {
		return int64(u) - int64(1)<<w
	}
	return int64(u)
}

// EvalLit decodes a literal under a model.
func (c *Ctx) EvalLit(l cnf.Lit, model []bool) bool {
	if val, ok := c.B.IsConst(l); ok {
		return val
	}
	v := model[l.Var()-1]
	if l.Neg() {
		return !v
	}
	return v
}
