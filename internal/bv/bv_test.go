package bv

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// solveWith constrains the inputs via equality assertions, solves, and
// returns the model. The formula must be satisfiable.
func solveWith(t *testing.T, c *Ctx) []bool {
	t.Helper()
	s := sat.NewFromFormula(c.B.F, sat.Options{})
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != sat.Sat {
		t.Fatal("constraint system unexpectedly UNSAT")
	}
	return s.Model()
}

func mask(w int) uint64 { return (1 << uint(w)) - 1 }

// TestArithmeticOnConstants exercises constant folding: every operation on
// constant vectors must yield the correct constant without solving.
func TestArithmeticOnConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		w := 1 + rng.Intn(12)
		a := rng.Uint64() & mask(w)
		b := rng.Uint64() & mask(w)
		c := NewCtx()
		x, y := c.Const(int64(a), w), c.Const(int64(b), w)
		model := []bool{} // constants need no model
		checks := []struct {
			name string
			got  uint64
			want uint64
		}{
			{"add", c.EvalVec(c.Add(x, y), model), (a + b) & mask(w)},
			{"sub", c.EvalVec(c.Sub(x, y), model), (a - b) & mask(w)},
			{"mul", c.EvalVec(c.Mul(x, y), model), (a * b) & mask(w)},
			{"and", c.EvalVec(c.And(x, y), model), a & b},
			{"or", c.EvalVec(c.Or(x, y), model), a | b},
			{"xor", c.EvalVec(c.Xor(x, y), model), a ^ b},
			{"not", c.EvalVec(c.Not(x), model), ^a & mask(w)},
			{"neg", c.EvalVec(c.Neg(x), model), (-a) & mask(w)},
		}
		for _, ch := range checks {
			if ch.got != ch.want {
				t.Fatalf("iter %d w=%d a=%d b=%d: %s got %d want %d",
					iter, w, a, b, ch.name, ch.got, ch.want)
			}
		}
		boolChecks := []struct {
			name string
			got  bool
			want bool
		}{
			{"eq", c.EvalLit(c.Eq(x, y), model), a == b},
			{"ne", c.EvalLit(c.Ne(x, y), model), a != b},
			{"ult", c.EvalLit(c.Ult(x, y), model), a < b},
			{"ule", c.EvalLit(c.Ule(x, y), model), a <= b},
			{"iszero", c.EvalLit(c.IsZero(x), model), a == 0},
		}
		for _, ch := range boolChecks {
			if ch.got != ch.want {
				t.Fatalf("iter %d w=%d a=%d b=%d: %s got %v want %v",
					iter, w, a, b, ch.name, ch.got, ch.want)
			}
		}
		sa := int64(a)
		sb := int64(b)
		if w < 64 {
			if a&(1<<uint(w-1)) != 0 {
				sa -= 1 << uint(w)
			}
			if b&(1<<uint(w-1)) != 0 {
				sb -= 1 << uint(w)
			}
		}
		if got := c.EvalLit(c.Slt(x, y), model); got != (sa < sb) {
			t.Fatalf("iter %d w=%d a=%d(%d) b=%d(%d): slt got %v", iter, w, a, sa, b, sb, got)
		}
		if got := c.EvalLit(c.Sle(x, y), model); got != (sa <= sb) {
			t.Fatalf("iter %d: sle wrong", iter)
		}
		if got := c.EvalSigned(x, model); got != sa {
			t.Fatalf("iter %d: EvalSigned got %d want %d", iter, got, sa)
		}
	}
}

// TestArithmeticSymbolic drives the same operations through the SAT solver
// with unconstrained inputs forced to random values by unit assertions,
// exercising the Tseitin clauses rather than constant folding.
func TestArithmeticSymbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		w := 1 + rng.Intn(8)
		a := rng.Uint64() & mask(w)
		b := rng.Uint64() & mask(w)
		c := NewCtx()
		x, y := c.Input(w), c.Input(w)
		add := c.Add(x, y)
		sub := c.Sub(x, y)
		mul := c.Mul(x, y)
		ult := c.Ult(x, y)
		eq := c.Eq(x, y)
		c.B.Assert(c.Eq(x, c.Const(int64(a), w)))
		c.B.Assert(c.Eq(y, c.Const(int64(b), w)))
		model := solveWith(t, c)
		if got := c.EvalVec(add, model); got != (a+b)&mask(w) {
			t.Fatalf("iter %d: add got %d want %d", iter, got, (a+b)&mask(w))
		}
		if got := c.EvalVec(sub, model); got != (a-b)&mask(w) {
			t.Fatalf("iter %d: sub wrong", iter)
		}
		if got := c.EvalVec(mul, model); got != (a*b)&mask(w) {
			t.Fatalf("iter %d: mul wrong", iter)
		}
		if got := c.EvalLit(ult, model); got != (a < b) {
			t.Fatalf("iter %d: ult wrong", iter)
		}
		if got := c.EvalLit(eq, model); got != (a == b) {
			t.Fatalf("iter %d: eq wrong", iter)
		}
	}
}

func TestShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		w := 1 + rng.Intn(12)
		a := rng.Uint64() & mask(w)
		k := rng.Intn(w + 2)
		c := NewCtx()
		x := c.Const(int64(a), w)
		if got := c.EvalVec(c.ShlConst(x, k), nil); got != (a<<uint(k))&mask(w) {
			t.Fatalf("shl w=%d a=%d k=%d: got %d", w, a, k, got)
		}
		if got := c.EvalVec(c.LshrConst(x, k), nil); got != a>>uint(k) {
			t.Fatalf("lshr w=%d a=%d k=%d: got %d", w, a, k, got)
		}
	}
}

func TestIteVec(t *testing.T) {
	c := NewCtx()
	x := c.Const(5, 4)
	y := c.Const(9, 4)
	if got := c.EvalVec(c.Ite(c.B.True(), x, y), nil); got != 5 {
		t.Fatalf("ite true: %d", got)
	}
	if got := c.EvalVec(c.Ite(c.B.False(), x, y), nil); got != 9 {
		t.Fatalf("ite false: %d", got)
	}
}

func TestExtend(t *testing.T) {
	c := NewCtx()
	x := c.Const(0b1010, 4)
	if got := c.EvalVec(c.Extend(x, 8, false), nil); got != 0b1010 {
		t.Fatalf("zext: %d", got)
	}
	if got := c.EvalVec(c.Extend(x, 8, true), nil); got != 0b11111010 {
		t.Fatalf("sext: %d", got)
	}
	if got := c.EvalVec(c.Extend(x, 2, false), nil); got != 0b10 {
		t.Fatalf("trunc: %d", got)
	}
	if got := c.EvalVec(c.Extend(x, 4, true), nil); got != 0b1010 {
		t.Fatalf("same width: %d", got)
	}
}

func TestSelectStore(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		w := 4
		n := 1 + rng.Intn(6)
		vals := make([]uint64, n)
		c := NewCtx()
		arr := make([]Vec, n)
		for i := range arr {
			vals[i] = rng.Uint64() & mask(w)
			arr[i] = c.Const(int64(vals[i]), w)
		}
		idx := rng.Intn(n)
		idxVec := c.Const(int64(idx), 4)
		def := c.Const(15, w)
		if got := c.EvalVec(c.Select(arr, idxVec, def), nil); got != vals[idx] {
			t.Fatalf("select: got %d want %d", got, vals[idx])
		}
		// Out-of-range select yields default.
		oob := c.Const(int64(n), 4)
		if got := c.EvalVec(c.Select(arr, oob, def), nil); got != 15 {
			t.Fatalf("oob select: got %d", got)
		}
		// Store then select round-trips.
		newVal := rng.Uint64() & mask(w)
		arr2 := c.Store(arr, idxVec, c.Const(int64(newVal), w))
		if got := c.EvalVec(c.Select(arr2, idxVec, def), nil); got != newVal {
			t.Fatalf("store/select: got %d want %d", got, newVal)
		}
		// Other positions unchanged.
		for i := range arr {
			if i == idx {
				continue
			}
			iv := c.Const(int64(i), 4)
			if got := c.EvalVec(c.Select(arr2, iv, def), nil); got != vals[i] {
				t.Fatalf("store disturbed position %d", i)
			}
		}
	}
}

func TestSymbolicSelect(t *testing.T) {
	// A symbolic index constrained by the solver: find i such that a[i]=7.
	c := NewCtx()
	arr := []Vec{c.Const(3, 4), c.Const(7, 4), c.Const(5, 4)}
	idx := c.Input(4)
	sel := c.Select(arr, idx, c.Const(0, 4))
	c.B.Assert(c.Eq(sel, c.Const(7, 4)))
	c.B.Assert(c.Ult(idx, c.Const(3, 4)))
	model := solveWith(t, c)
	if got := c.EvalVec(idx, model); got != 1 {
		t.Fatalf("solver found index %d, want 1", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCtx()
	c.Add(c.Const(0, 4), c.Const(0, 5))
}

func TestVecAccessors(t *testing.T) {
	c := NewCtx()
	v := c.Const(1, 3)
	if v.Width() != 3 {
		t.Fatal("width")
	}
	if v.LSB() != c.B.True() {
		t.Fatal("lsb of 1 should be true")
	}
	b := c.Bool(c.B.True())
	if b.Width() != 1 {
		t.Fatal("bool width")
	}
}

func TestNonZero(t *testing.T) {
	c := NewCtx()
	if !c.EvalLit(c.NonZero(c.Const(4, 4)), nil) {
		t.Fatal("NonZero(4) false")
	}
	if c.EvalLit(c.NonZero(c.Const(0, 4)), nil) {
		t.Fatal("NonZero(0) true")
	}
}
