// Package portfolio implements the general-purpose parallel SAT solver
// baselines of the paper's Sect. 4.2: all instances work on the whole
// formula (no trace-space partitioning) and differ only in
// diversification and clause exchange.
//
//   - StyleSharing mirrors Syrup [Audemard & Simon, SAT'14]: a portfolio
//     of diversified CDCL instances that lazily exchange learnt clauses
//     of low literal-block distance through a shared pool.
//   - StyleDiverse mirrors Plingeling [Biere, SC'18]: a diversified
//     portfolio that shares only unit clauses.
//
// These baselines exist to reproduce Tables 3 and 4: structure-aware
// partitioning (package parallel) against structure-agnostic parallel
// solving of the very same formulae.
package portfolio

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// Style selects the baseline solver architecture.
type Style int

const (
	// StyleSharing exchanges low-LBD learnt clauses (Syrup-like).
	StyleSharing Style = iota
	// StyleDiverse shares unit clauses only (Plingeling-like).
	StyleDiverse
)

func (s Style) String() string {
	if s == StyleSharing {
		return "sharing"
	}
	return "diverse"
}

// Options configures the portfolio.
type Options struct {
	// Cores is the number of solver instances (default 1).
	Cores int
	// Style selects the architecture.
	Style Style
	// MaxSharedLBD bounds the literal-block distance of exchanged
	// clauses in StyleSharing (default 4).
	MaxSharedLBD int
	// Solver is the base solver configuration; each instance derives a
	// diversified variant from it.
	Solver sat.Options
	// InstanceTimeout bounds each instance's wall-clock solving time; an
	// expired instance is interrupted and records CauseTimeout in
	// Result.Causes (0 = unbounded). Because all instances race on the
	// same formula, the portfolio verdict is Unknown only if every
	// instance exhausts its budget or is cancelled.
	InstanceTimeout time.Duration
	// InstanceConflicts bounds each instance's conflict count, recorded
	// as CauseConflictBudget (0 = unbounded). If Solver.MaxConflicts is
	// also set, the smaller bound applies.
	InstanceConflicts int64
	// InstanceMemMB bounds each instance's approximate solver footprint
	// in MiB, recorded as CauseMemory when the instance cannot shrink
	// back under it (0 = unbounded). If Solver.MemBudgetMB is also set,
	// the smaller bound applies.
	InstanceMemMB int64
	// Progress, when non-nil and ProgressEvery > 0, receives live
	// search statistics for an instance every ProgressEvery conflicts,
	// invoked from that instance's solver goroutine. The snapshot's
	// Stats.Progress field carries the instance's live search-progress
	// estimate (sat.Solver.ProgressEstimate).
	Progress func(instance int, st sat.Stats)
	// ProgressEvery is the conflict cadence of Progress callbacks.
	ProgressEvery int64
}

// Result is the portfolio outcome.
type Result struct {
	// Status is the verdict of the first instance to finish.
	Status sat.Status
	// Model is the satisfying assignment (Status == Sat).
	Model []bool
	// Winner is the index of the instance that finished first (-1 on
	// cancellation).
	Winner int
	// Wall is the overall wall-clock time.
	Wall time.Duration
	// Shared counts clauses exported to the exchange pool.
	Shared int64
	// Stats are the per-instance search statistics.
	Stats []sat.Stats
	// Causes classifies each instance's Unknown outcome (cancelled,
	// timeout, conflict-budget, memory; CauseNone for a definite
	// verdict), so a fully Unknown portfolio run names the exhausted
	// budget.
	Causes []sat.StopCause
}

// pool is the lazy clause-exchange buffer: writers append, readers drain
// what accumulated since their last import (Syrup's lazy policy: no
// blocking, exchange happens at restarts).
type pool struct {
	mu      sync.Mutex
	clauses [][]cnf.Lit
	exports int64
}

func (p *pool) export(lits []cnf.Lit) {
	p.mu.Lock()
	p.clauses = append(p.clauses, lits)
	p.exports++
	p.mu.Unlock()
}

// drain returns the clauses added after position from, and the new
// position.
func (p *pool) drain(from int) ([][]cnf.Lit, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from >= len(p.clauses) {
		return nil, from
	}
	out := p.clauses[from:]
	return out, len(p.clauses)
}

// diversify derives per-instance solver options: distinct seeds, varied
// decay, polarity and restart behaviour, as portfolio solvers do.
func diversify(base sat.Options, i int, style Style) sat.Options {
	o := base
	o.Seed = uint64(i)*0x9e3779b9 + 1
	switch i % 4 {
	case 0:
		// Reference configuration.
	case 1:
		o.InitialPolarity = true
		o.VarDecay = 0.85
	case 2:
		o.RandomizeFreq = 0.02
		o.RestartBase = 50
	case 3:
		o.NoPhaseSaving = true
		o.VarDecay = 0.99
	}
	if style == StyleDiverse && i%2 == 1 {
		o.RestartBase = 200
	}
	return o
}

// Solve runs the portfolio on the whole formula. The first instance to
// reach a definite verdict wins (the formula is the same for all, so any
// verdict is authoritative) and the remaining instances are interrupted.
func Solve(ctx context.Context, f *cnf.Formula, opts Options) (*Result, error) {
	cores := opts.Cores
	if cores < 1 {
		cores = 1
	}
	maxLBD := opts.MaxSharedLBD
	if maxLBD == 0 {
		maxLBD = 4
	}
	if opts.Style == StyleDiverse {
		maxLBD = 1 // unit-ish clauses only (LBD 1 = single decision level)
	}

	start := time.Now()
	res := &Result{
		Status: sat.Unknown, Winner: -1,
		Stats:  make([]sat.Stats, cores),
		Causes: make([]sat.StopCause, cores),
	}
	sharedPool := &pool{}

	var mu sync.Mutex
	var wg sync.WaitGroup
	solvers := make([]*sat.Solver, cores)

	solveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-solveCtx.Done()
		mu.Lock()
		for _, s := range solvers {
			if s != nil {
				s.Interrupt()
			}
		}
		mu.Unlock()
	}()

	for i := 0; i < cores; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sOpts := diversify(opts.Solver, i, opts.Style)
			sOpts.ProgressEvery = opts.ProgressEvery
			if opts.InstanceConflicts > 0 &&
				(sOpts.MaxConflicts == 0 || sOpts.MaxConflicts > opts.InstanceConflicts) {
				sOpts.MaxConflicts = opts.InstanceConflicts
			}
			if opts.InstanceMemMB > 0 &&
				(sOpts.MemBudgetMB == 0 || sOpts.MemBudgetMB > opts.InstanceMemMB) {
				sOpts.MemBudgetMB = opts.InstanceMemMB
			}
			s := sat.NewFromFormula(f, sOpts)
			if opts.Progress != nil && opts.ProgressEvery > 0 {
				s.Progress = func(st sat.Stats) { opts.Progress(i, st) }
			}
			pos := 0
			s.ShareMaxLBD = maxLBD
			s.ShareLearnt = func(lits []cnf.Lit, lbd int) {
				sharedPool.export(lits)
			}
			s.Import = func() [][]cnf.Lit {
				var out [][]cnf.Lit
				out, pos = sharedPool.drain(pos)
				return out
			}
			mu.Lock()
			solvers[i] = s
			mu.Unlock()

			// Wall-clock budget: a timer interrupt distinguishable from
			// cancellation (sibling won, context done) by the flag.
			var timedOut atomic.Bool
			if opts.InstanceTimeout > 0 {
				timer := time.AfterFunc(opts.InstanceTimeout, func() {
					timedOut.Store(true)
					s.Interrupt()
				})
				defer timer.Stop()
			}

			status, err := s.Solve()
			cause := sat.CauseNone
			if err == sat.ErrMemBudget {
				status = sat.Unknown
				cause = sat.CauseMemory
			} else if err == sat.ErrInterrupted {
				status = sat.Unknown
				// As in parallel.Solve: when the timer races the
				// cancellation interrupt, report cancelled — the verdict
				// that does not claim a budget was genuinely exhausted.
				if timedOut.Load() && solveCtx.Err() == nil {
					cause = sat.CauseTimeout
				} else {
					cause = sat.CauseCancelled
				}
			} else if status == sat.Unknown {
				cause = sat.CauseConflictBudget
			}
			mu.Lock()
			res.Stats[i] = s.Stats()
			res.Causes[i] = cause
			if status != sat.Unknown && res.Status == sat.Unknown {
				res.Status = status
				res.Winner = i
				if status == sat.Sat {
					res.Model = s.Model()
				}
				mu.Unlock()
				cancel()
				return
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Shared = sharedPool.exports
	return res, nil
}
