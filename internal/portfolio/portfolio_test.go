package portfolio

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func pigeonhole(holes int) *cnf.Formula {
	pigeons := holes + 1
	f := cnf.New()
	v := func(p, h int) cnf.Var { return cnf.Var(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		var c []cnf.Lit
		for h := 0; h < holes; h++ {
			c = append(c, cnf.PosLit(v(p, h)))
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h)))
			}
		}
	}
	return f
}

func randomFormula(rng *rand.Rand, nv, nc int) *cnf.Formula {
	f := cnf.New()
	f.NumVars = nv
	for i := 0; i < nc; i++ {
		var c []cnf.Lit
		for j := 0; j < 3; j++ {
			c = append(c, cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0))
		}
		f.AddClause(c...)
	}
	return f
}

func TestUnsatBothStyles(t *testing.T) {
	f := pigeonhole(6)
	for _, style := range []Style{StyleSharing, StyleDiverse} {
		res, err := Solve(context.Background(), f, Options{Cores: 4, Style: style})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != sat.Unsat {
			t.Fatalf("%v: want UNSAT, got %v", style, res.Status)
		}
		if res.Winner < 0 || res.Winner >= 4 {
			t.Fatalf("%v: winner %d", style, res.Winner)
		}
	}
}

func TestSatModelValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20; iter++ {
		f := randomFormula(rng, 30, 80)
		res, err := Solve(context.Background(), f, Options{Cores: 3, Style: StyleSharing})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == sat.Sat {
			assign := make([]bool, f.NumVars+1)
			copy(assign[1:], res.Model)
			if !f.Eval(assign) {
				t.Fatalf("iter %d: invalid model", iter)
			}
		}
	}
}

func TestAgreementWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 30; iter++ {
		f := randomFormula(rng, 12, 40+rng.Intn(20))
		seq := sat.NewFromFormula(f, sat.Options{})
		want, err := seq.Solve()
		if err != nil {
			t.Fatal(err)
		}
		for _, style := range []Style{StyleSharing, StyleDiverse} {
			res, err := Solve(context.Background(), f, Options{Cores: 2, Style: style})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != want {
				t.Fatalf("iter %d %v: portfolio %v, sequential %v", iter, style, res.Status, want)
			}
		}
	}
}

func TestSharingHappens(t *testing.T) {
	f := pigeonhole(7)
	res, err := Solve(context.Background(), f, Options{Cores: 4, Style: StyleSharing, MaxSharedLBD: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", res.Status)
	}
	if res.Shared == 0 {
		t.Fatal("no clauses exchanged")
	}
}

func TestCancellation(t *testing.T) {
	f := pigeonhole(11)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := Solve(ctx, f, Options{Cores: 2, Style: StyleDiverse})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("want UNKNOWN, got %v", res.Status)
	}
	if res.Winner != -1 {
		t.Fatalf("winner %d on cancellation", res.Winner)
	}
}

func TestSingleCoreDefault(t *testing.T) {
	f := pigeonhole(4)
	res, err := Solve(context.Background(), f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || len(res.Stats) != 1 {
		t.Fatalf("status %v stats %d", res.Status, len(res.Stats))
	}
}

func TestStyleString(t *testing.T) {
	if StyleSharing.String() != "sharing" || StyleDiverse.String() != "diverse" {
		t.Fatal("style strings")
	}
}

// A hard formula under a tiny per-instance conflict budget: every
// instance degrades to Unknown with the conflict budget named, and the
// portfolio terminates instead of searching PHP to completion.
func TestPortfolioInstanceConflictBudget(t *testing.T) {
	res, err := Solve(context.Background(), pigeonhole(8), Options{
		Cores: 3, InstanceConflicts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	for i, c := range res.Causes {
		if c != sat.CauseConflictBudget {
			t.Fatalf("instance %d: cause %v, want conflict-budget", i, c)
		}
	}
}

// A hard formula under a small wall-clock budget: the portfolio
// completes within the budget plus slack, each instance naming the
// timeout as the exhausted budget.
func TestPortfolioInstanceTimeout(t *testing.T) {
	start := time.Now()
	res, err := Solve(context.Background(), pigeonhole(9), Options{
		Cores: 2, InstanceTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v: instance timeout did not bound the search", elapsed)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	for i, c := range res.Causes {
		if c != sat.CauseTimeout {
			t.Fatalf("instance %d: cause %v, want timeout", i, c)
		}
	}
}

// Losing instances interrupted because a sibling won must be classified
// as cancelled, never as budget exhaustion.
func TestPortfolioCancelledSiblingsClassified(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randomFormula(rng, 60, 120) // satisfiable with high probability
	res, err := Solve(context.Background(), f, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Skipf("formula not satisfiable under this seed: %v", res.Status)
	}
	if res.Causes[res.Winner] != sat.CauseNone {
		t.Fatalf("winner cause %v, want none", res.Causes[res.Winner])
	}
	for i, c := range res.Causes {
		if i != res.Winner && c.Budgeted() {
			t.Fatalf("instance %d: loser misreported as %v", i, c)
		}
	}
}
