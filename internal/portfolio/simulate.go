package portfolio

import (
	"context"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// Simulate computes the portfolio's k-core wall time deterministically
// on hosts without k physical cores: each diversified instance is run
// sequentially to completion on the whole formula, and since every
// instance alone is authoritative (they all solve the same formula), the
// simulated parallel wall time is the minimum instance time.
//
// Clause exchange is disabled in the simulation: running the instances
// one after another while sharing a clause pool would be non-causal
// (a later instance would import everything an earlier one learnt over
// its entire run, not just the prefix that would have overlapped in
// real time, and refute instantly). The simulated baseline is therefore
// the cooperation-free diversified portfolio; the cooperating variants
// remain available through Solve for genuinely parallel hosts.
func Simulate(ctx context.Context, f *cnf.Formula, opts Options) (*Result, error) {
	cores := opts.Cores
	if cores < 1 {
		cores = 1
	}
	res := &Result{Status: sat.Unknown, Winner: -1, Stats: make([]sat.Stats, cores)}
	best := time.Duration(-1)

	for i := 0; i < cores; i++ {
		if err := ctx.Err(); err != nil {
			return res, nil
		}
		sOpts := diversify(opts.Solver, i, opts.Style)
		sOpts.ProgressEvery = opts.ProgressEvery
		s := sat.NewFromFormula(f, sOpts)
		if opts.Progress != nil && opts.ProgressEvery > 0 {
			i := i
			s.Progress = func(st sat.Stats) { opts.Progress(i, st) }
		}
		t0 := time.Now()
		status, err := s.Solve()
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		res.Stats[i] = s.Stats()
		if status != sat.Unknown && (best < 0 || el < best) {
			best = el
			res.Status = status
			res.Winner = i
			if status == sat.Sat {
				res.Model = s.Model()
			}
		}
	}
	res.Wall = best
	return res, nil
}
