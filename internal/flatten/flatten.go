// Package flatten lowers the unfolded (loop-free, call-free) bounded
// program into flat guarded step lists, the form consumed by both the
// symbolic encoder and the concrete interpreter.
//
// Each thread body is if-converted: every conditional allocates a fresh
// Boolean guard local assigned once, and the statements of the two
// branches become straight-line steps predicated on the guard (and its
// negation). The resulting steps are grouped into blocks: block k consists
// of the k-th visible step (one that touches shared state, or a
// concurrency operation) together with the invisible (thread-local) steps
// glued to it. Context switches happen exactly at block boundaries, which
// matches the visible-statement granularity of the paper's lazy
// sequentialization (Sect. 2.2): a thread's program counter counts
// executed blocks, and simulating an execution context for thread t from
// pc to cs means running blocks pc..cs-1.
package flatten

import (
	"fmt"

	"repro/internal/unfold"
	"repro/prog"
)

// Program is the flattened bounded program.
type Program struct {
	// Globals are the shared variables (mutexes already lowered to int).
	Globals []prog.Decl
	// Threads are the flattened threads; index = static thread id.
	Threads []*Thread
}

// MaxThreadSize returns the largest block count over all threads.
func (p *Program) MaxThreadSize() int {
	max := 0
	for _, t := range p.Threads {
		if len(t.Blocks) > max {
			max = len(t.Blocks)
		}
	}
	return max
}

// NumSteps returns the total number of steps over all threads.
func (p *Program) NumSteps() int {
	n := 0
	for _, t := range p.Threads {
		for _, b := range t.Blocks {
			n += len(b)
		}
	}
	return n
}

// Thread is one flattened thread.
type Thread struct {
	// ID is the static thread index (0 = main).
	ID int
	// Proc is the source procedure name.
	Proc string
	// Params are the parameter declarations (flat names).
	Params []prog.Decl
	// Locals are all locals, including parameters and guard temporaries.
	Locals []prog.Decl
	// Blocks is the guarded step list grouped by visible point;
	// len(Blocks) is the thread size (the size[t] array of Fig. 3/5).
	Blocks [][]Step
}

// Size returns the number of blocks (visible points) of the thread.
func (t *Thread) Size() int { return len(t.Blocks) }

// Guard is a reference to a Boolean guard local, possibly negated.
type Guard struct {
	Name string
	Neg  bool
}

func (g Guard) String() string {
	if g.Neg {
		return "!" + g.Name
	}
	return g.Name
}

// Step is one atomic guarded operation.
type Step struct {
	// Guards must all hold for the step to take effect.
	Guards []Guard
	// Op is the operation.
	Op Op
}

func (s Step) String() string {
	if len(s.Guards) == 0 {
		return fmt.Sprintf("%v", s.Op)
	}
	return fmt.Sprintf("[%v] %v", s.Guards, s.Op)
}

// Op is the operation of a step.
type Op interface{ op() }

// AssignOp assigns RHS (possibly Nondet) to LHS.
type AssignOp struct {
	LHS prog.LValue
	RHS prog.Expr
}

// AssumeOp constrains executions.
type AssumeOp struct{ Cond prog.Expr }

// AssertOp checks a property.
type AssertOp struct {
	Cond prog.Expr
	// Src describes the assertion's origin for error reports.
	Src string
}

// LockOp acquires a mutex: blocks (assume m=0), then sets m := tid+1.
type LockOp struct{ Mutex string }

// UnlockOp releases a mutex: m := 0.
type UnlockOp struct{ Mutex string }

// ArgCopy delivers one thread argument into the spawned thread's
// parameter local.
type ArgCopy struct {
	Dest string // flat parameter name of the target thread
	Src  prog.Expr
}

// CreateOp activates the statically numbered target thread, copies the
// arguments, and stores the thread id into Tid.
type CreateOp struct {
	Target int
	Tid    prog.LValue
	Args   []ArgCopy
}

// JoinOp blocks until the thread identified by Tid has terminated.
type JoinOp struct{ Tid prog.Expr }

func (*AssignOp) op() {}
func (*AssumeOp) op() {}
func (*AssertOp) op() {}
func (*LockOp) op()   {}
func (*UnlockOp) op() {}
func (*CreateOp) op() {}
func (*JoinOp) op()   {}

// Flatten lowers the unfolded program.
func Flatten(u *unfold.Program) (*Program, error) {
	globals := map[string]bool{}
	for _, g := range u.Globals {
		globals[g.Name] = true
	}
	out := &Program{Globals: u.Globals}
	for _, th := range u.Threads {
		ft, err := flattenThread(u, th, globals)
		if err != nil {
			return nil, err
		}
		out.Threads = append(out.Threads, ft)
	}
	return out, nil
}

type flattener struct {
	u       *unfold.Program
	globals map[string]bool
	thread  *unfold.Thread

	locals []prog.Decl
	fresh  int

	// groups is the ordered list of step groups; each group is atomic
	// (never split across blocks) and classified visible or invisible.
	groups []group
}

type group struct {
	steps   []Step
	visible bool
	// open marks an atomic group still accepting steps.
	open bool
}

func flattenThread(u *unfold.Program, th *unfold.Thread, globals map[string]bool) (*Thread, error) {
	f := &flattener{u: u, globals: globals, thread: th}
	f.locals = append(f.locals, th.Locals...)
	if err := f.stmts(th.Body, nil, false); err != nil {
		return nil, err
	}
	blocks := assembleBlocks(f.groups)
	return &Thread{
		ID:     th.ID,
		Proc:   th.Proc,
		Params: th.Params,
		Locals: f.locals,
		Blocks: blocks,
	}, nil
}

// assembleBlocks groups the ordered step groups into blocks, one per
// visible group, gluing invisible groups to the preceding visible one
// (and the leading invisible prefix to the first block).
func assembleBlocks(groups []group) [][]Step {
	var blocks [][]Step
	var prefix []Step // invisible steps seen before the first visible group
	for _, g := range groups {
		if g.visible {
			blk := append(prefix, g.steps...)
			prefix = nil
			blocks = append(blocks, blk)
		} else {
			if len(blocks) == 0 {
				prefix = append(prefix, g.steps...)
			} else {
				blocks[len(blocks)-1] = append(blocks[len(blocks)-1], g.steps...)
			}
		}
	}
	if len(prefix) > 0 {
		// No visible steps at all: a single purely-local block.
		blocks = append(blocks, prefix)
	}
	return blocks
}

func (f *flattener) emit(guards []Guard, op Op, visible bool, atomicDepth int) {
	step := Step{Guards: append([]Guard(nil), guards...), Op: op}
	if atomicDepth > 0 && len(f.groups) > 0 && f.groups[len(f.groups)-1].open {
		last := &f.groups[len(f.groups)-1]
		last.steps = append(last.steps, step)
		last.visible = last.visible || visible
		return
	}
	f.groups = append(f.groups, group{steps: []Step{step}, visible: visible, open: atomicDepth > 0})
}

func (f *flattener) freshGuard() prog.Decl {
	f.fresh++
	d := prog.Decl{Name: fmt.Sprintf("guard$%d@%d", f.fresh, f.thread.ID), Type: prog.Bool}
	f.locals = append(f.locals, d)
	return d
}

// touchesGlobal reports whether the expression reads shared state.
func (f *flattener) touchesGlobal(e prog.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *prog.IntLit, *prog.BoolLit, *prog.Nondet:
		return false
	case *prog.VarRef:
		return f.globals[x.Name]
	case *prog.IndexRef:
		return f.globals[x.Name] || f.touchesGlobal(x.Index)
	case *prog.UnaryExpr:
		return f.touchesGlobal(x.X)
	case *prog.BinaryExpr:
		return f.touchesGlobal(x.X) || f.touchesGlobal(x.Y)
	}
	panic(fmt.Sprintf("flatten: unknown expression %T", e))
}

func (f *flattener) lvalueTouchesGlobal(lv prog.LValue) bool {
	switch x := lv.(type) {
	case *prog.VarRef:
		return f.globals[x.Name]
	case *prog.IndexRef:
		return f.globals[x.Name] || f.touchesGlobal(x.Index)
	}
	panic(fmt.Sprintf("flatten: unknown l-value %T", lv))
}

func (f *flattener) stmts(in []prog.Stmt, guards []Guard, atomic bool) error {
	for _, s := range in {
		if err := f.stmt(s, guards, atomic); err != nil {
			return err
		}
	}
	return nil
}

func (f *flattener) stmt(s prog.Stmt, guards []Guard, atomic bool) error {
	ad := 0
	if atomic {
		ad = 1
	}
	switch st := s.(type) {
	case *prog.AssignStmt:
		vis := f.lvalueTouchesGlobal(st.LHS) || f.touchesGlobal(st.RHS)
		f.emit(guards, &AssignOp{LHS: st.LHS, RHS: st.RHS}, vis, ad)
		return nil
	case *prog.AssumeStmt:
		f.emit(guards, &AssumeOp{Cond: st.Cond}, f.touchesGlobal(st.Cond), ad)
		return nil
	case *prog.AssertStmt:
		f.emit(guards, &AssertOp{Cond: st.Cond, Src: st.String()}, f.touchesGlobal(st.Cond), ad)
		return nil
	case *prog.IfStmt:
		g := f.freshGuard()
		vis := f.touchesGlobal(st.Cond)
		f.emit(guards, &AssignOp{LHS: &prog.VarRef{Name: g.Name}, RHS: st.Cond}, vis, ad)
		thenGuards := append(append([]Guard{}, guards...), Guard{Name: g.Name})
		elseGuards := append(append([]Guard{}, guards...), Guard{Name: g.Name, Neg: true})
		if err := f.stmts(st.Then, thenGuards, atomic); err != nil {
			return err
		}
		return f.stmts(st.Else, elseGuards, atomic)
	case *prog.CreateStmt:
		target, ok := f.u.CreateTarget[st]
		if !ok {
			return fmt.Errorf("flatten: create without a static target")
		}
		tgt := f.u.Threads[target]
		op := &CreateOp{Target: target, Tid: st.Tid}
		for i, a := range st.Args {
			op.Args = append(op.Args, ArgCopy{Dest: tgt.Params[i].Name, Src: a})
		}
		f.emit(guards, op, true, ad)
		return nil
	case *prog.JoinStmt:
		f.emit(guards, &JoinOp{Tid: st.Tid}, true, ad)
		return nil
	case *prog.LockStmt:
		f.emit(guards, &LockOp{Mutex: st.Mutex}, true, ad)
		return nil
	case *prog.UnlockStmt:
		f.emit(guards, &UnlockOp{Mutex: st.Mutex}, true, ad)
		return nil
	case *prog.AtomicStmt:
		if atomic {
			// Nested atomic blocks merge into the enclosing group.
			return f.stmts(st.Body, guards, true)
		}
		// Open a fresh atomic group: every step inside lands in one block.
		f.groups = append(f.groups, group{open: true})
		if err := f.stmts(st.Body, guards, true); err != nil {
			return err
		}
		// Close the group (and drop it if it stayed empty).
		if len(f.groups) > 0 && f.groups[len(f.groups)-1].open {
			last := &f.groups[len(f.groups)-1]
			last.open = false
			if len(last.steps) == 0 {
				f.groups = f.groups[:len(f.groups)-1]
			}
		}
		return nil
	case *prog.BlockStmt:
		return f.stmts(st.Body, guards, atomic)
	}
	return fmt.Errorf("flatten: unexpected statement %T after unfolding", s)
}
