package flatten

import (
	"fmt"
	"io"
	"strings"
)

// Format renders the flattened program in a human-readable form
// mirroring the paper's Fig. 3: one section per thread simulation
// function, statements grouped into numbered blocks (the context-switch
// granularity), with guard annotations from the if-conversion.
func Format(w io.Writer, p *Program) error {
	for _, g := range p.Globals {
		if _, err := fmt.Fprintf(w, "shared %s %s;\n", g.Type, g.Name); err != nil {
			return err
		}
	}
	for _, t := range p.Threads {
		if _, err := fmt.Fprintf(w, "\nthread %d (%s), size %d:\n", t.ID, t.Proc, t.Size()); err != nil {
			return err
		}
		for bi, blk := range t.Blocks {
			if _, err := fmt.Fprintf(w, "  block %d:\n", bi); err != nil {
				return err
			}
			for _, st := range blk {
				if _, err := fmt.Fprintf(w, "    %s\n", formatStep(st)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func formatStep(st Step) string {
	var b strings.Builder
	if len(st.Guards) > 0 {
		parts := make([]string, len(st.Guards))
		for i, g := range st.Guards {
			parts[i] = g.String()
		}
		fmt.Fprintf(&b, "[%s] ", strings.Join(parts, " && "))
	}
	switch op := st.Op.(type) {
	case *AssignOp:
		fmt.Fprintf(&b, "%s = %s", op.LHS, op.RHS)
	case *AssumeOp:
		fmt.Fprintf(&b, "assume(%s)", op.Cond)
	case *AssertOp:
		fmt.Fprintf(&b, "assert(%s)", op.Cond)
	case *LockOp:
		fmt.Fprintf(&b, "lock(%s)", op.Mutex)
	case *UnlockOp:
		fmt.Fprintf(&b, "unlock(%s)", op.Mutex)
	case *CreateOp:
		args := make([]string, len(op.Args))
		for i, a := range op.Args {
			args[i] = fmt.Sprintf("%s:=%s", a.Dest, a.Src)
		}
		fmt.Fprintf(&b, "%s = create(thread %d; %s)", op.Tid, op.Target, strings.Join(args, ", "))
	case *JoinOp:
		fmt.Fprintf(&b, "join(%s)", op.Tid)
	default:
		fmt.Fprintf(&b, "%v", st.Op)
	}
	return b.String()
}
