package flatten

import (
	"strings"
	"testing"

	"repro/internal/unfold"
	"repro/prog"
)

func mustFlatten(t *testing.T, src string, u int) *Program {
	t.Helper()
	p, err := prog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	up, err := unfold.Unfold(p, unfold.Options{Unwind: u})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Flatten(up)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestVisibleBlockStructure(t *testing.T) {
	src := `
int g;
void main() {
  int x;
  x = 1;      // invisible (local)
  g = x;      // visible -> block 0 (plus the invisible prefix)
  x = x + 1;  // invisible, glued to block 0
  g = x;      // visible -> block 1
}
`
	fp := mustFlatten(t, src, 1)
	main := fp.Threads[0]
	if main.Size() != 2 {
		t.Fatalf("main size: %d, want 2", main.Size())
	}
	// Block 0 holds: x=1 (invisible prefix), g=x (visible), x=x+1
	// (invisible glue).
	if len(main.Blocks[0]) != 3 {
		t.Fatalf("block 0 steps: %d, want 3", len(main.Blocks[0]))
	}
	if len(main.Blocks[1]) != 1 {
		t.Fatalf("block 1 steps: %d, want 1", len(main.Blocks[1]))
	}
}

func TestPurelyLocalThreadHasOneBlock(t *testing.T) {
	src := `
void main() {
  int x;
  x = 1;
  x = x + 1;
  assert(x == 2);
}
`
	fp := mustFlatten(t, src, 1)
	if fp.Threads[0].Size() != 1 {
		t.Fatalf("size: %d, want 1", fp.Threads[0].Size())
	}
}

func TestIfConversionGuards(t *testing.T) {
	src := `
int g;
void main() {
  int x = 1;
  if (x == 1) {
    g = 1;
  } else {
    g = 2;
  }
}
`
	fp := mustFlatten(t, src, 1)
	main := fp.Threads[0]
	// Two visible assignments => two blocks.
	if main.Size() != 2 {
		t.Fatalf("size: %d, want 2", main.Size())
	}
	// Find the two guarded assignments to g; one must have a positive and
	// one a negated guard on the same variable.
	var pos, neg *Step
	for bi := range main.Blocks {
		for si := range main.Blocks[bi] {
			st := &main.Blocks[bi][si]
			a, ok := st.Op.(*AssignOp)
			if !ok || a.LHS.BaseName() != "g" {
				continue
			}
			for _, gu := range st.Guards {
				if gu.Neg {
					neg = st
				} else {
					pos = st
				}
			}
		}
	}
	if pos == nil || neg == nil {
		t.Fatal("if-conversion did not produce complementary guards")
	}
}

func TestNestedIfAccumulatesGuards(t *testing.T) {
	src := `
int g;
void main() {
  int a = 1;
  int b = 2;
  if (a == 1) {
    if (b == 2) {
      g = 1;
    }
  }
}
`
	fp := mustFlatten(t, src, 1)
	found := false
	for _, blk := range fp.Threads[0].Blocks {
		for _, st := range blk {
			if a, ok := st.Op.(*AssignOp); ok && a.LHS.BaseName() == "g" {
				// Two nested if guards.
				if len(st.Guards) != 2 {
					t.Fatalf("guards on nested stmt: %d, want 2 (%v)", len(st.Guards), st.Guards)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("nested assignment not found")
	}
}

func TestAtomicBlockIsOneVisiblePoint(t *testing.T) {
	src := `
int g, h;
void main() {
  atomic {
    g = 1;
    h = 2;
    g = g + h;
  }
  g = 5;
}
`
	fp := mustFlatten(t, src, 1)
	main := fp.Threads[0]
	// The atomic block is one visible point, the final store another.
	if main.Size() != 2 {
		t.Fatalf("size: %d, want 2", main.Size())
	}
	// Block 0 contains exactly the three atomic steps.
	if len(main.Blocks[0]) != 3 {
		t.Fatalf("block 0 steps: %d, want 3", len(main.Blocks[0]))
	}
}

func TestAtomicWithOnlyLocalsIsInvisible(t *testing.T) {
	src := `
int g;
void main() {
  int x;
  atomic {
    x = 1;
    x = x + 1;
  }
  g = x;
}
`
	fp := mustFlatten(t, src, 1)
	if fp.Threads[0].Size() != 1 {
		t.Fatalf("size: %d, want 1", fp.Threads[0].Size())
	}
}

func TestConcurrencyOpsAreVisible(t *testing.T) {
	src := `
mutex m;
int g;
void w() { lock(m); g = g + 1; unlock(m); }
void main() {
  int t;
  t = create(w);
  join(t);
}
`
	fp := mustFlatten(t, src, 1)
	if fp.Threads[0].Size() != 2 { // create, join
		t.Fatalf("main size: %d, want 2", fp.Threads[0].Size())
	}
	if fp.Threads[1].Size() != 3 { // lock, store, unlock
		t.Fatalf("worker size: %d, want 3", fp.Threads[1].Size())
	}
	// The create op must carry the target and the tid destination.
	var create *CreateOp
	for _, blk := range fp.Threads[0].Blocks {
		for _, st := range blk {
			if c, ok := st.Op.(*CreateOp); ok {
				create = c
			}
		}
	}
	if create == nil || create.Target != 1 {
		t.Fatalf("create op: %+v", create)
	}
}

func TestCreateArgsCopied(t *testing.T) {
	src := `
int g;
void w(int a, bool b) {
  if (b) { g = a; }
}
void main() {
  int t;
  t = create(w, 41, true);
}
`
	fp := mustFlatten(t, src, 1)
	var create *CreateOp
	for _, blk := range fp.Threads[0].Blocks {
		for _, st := range blk {
			if c, ok := st.Op.(*CreateOp); ok {
				create = c
			}
		}
	}
	if create == nil || len(create.Args) != 2 {
		t.Fatalf("create args: %+v", create)
	}
	if create.Args[0].Dest != fp.Threads[1].Params[0].Name {
		t.Fatalf("arg dest %q != param %q", create.Args[0].Dest, fp.Threads[1].Params[0].Name)
	}
}

func TestGlobalReadInConditionIsVisible(t *testing.T) {
	src := `
int g;
void main() {
  int x;
  if (g == 1) {
    x = 1;
  }
  g = x;
}
`
	fp := mustFlatten(t, src, 1)
	// The guard assignment reads g: it is itself a visible point, so the
	// thread has two blocks (guard eval, final store).
	if fp.Threads[0].Size() != 2 {
		t.Fatalf("size: %d, want 2", fp.Threads[0].Size())
	}
}

func TestStatsHelpers(t *testing.T) {
	src := `
int g;
void w() { g = g + 1; }
void main() {
  int t;
  t = create(w);
  g = 2;
}
`
	fp := mustFlatten(t, src, 1)
	if fp.MaxThreadSize() < 2 {
		t.Fatalf("MaxThreadSize: %d", fp.MaxThreadSize())
	}
	if fp.NumSteps() != 3 {
		t.Fatalf("NumSteps: %d", fp.NumSteps())
	}
}

func TestFormat(t *testing.T) {
	src := `
mutex m;
int g;
int a[2];
void w(int v) {
  lock(m);
  a[v] = v;
  unlock(m);
}
void main() {
  int t;
  int x = 1;
  if (x == 1) {
    g = 2;
  }
  t = create(w, 3);
  join(t);
  assume(g > 0);
  assert(g == 2);
}
`
	fp := mustFlatten(t, src, 1)
	var buf strings.Builder
	if err := Format(&buf, fp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"shared int g;",
		"thread 0 (main)",
		"thread 1 (w)",
		"block 0:",
		"lock(m)",
		"unlock(m)",
		"create(thread 1",
		"join(",
		"assume(",
		"assert(",
		"[guard$",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}
