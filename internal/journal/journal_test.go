package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() Manifest {
	return Manifest{
		ProgramSHA256: HashProgram("int x;\nvoid main() { assert(x == 0); }\n"),
		Unwind:        2, Contexts: 5, Width: 8,
		Partitions: 16, ChunkSize: 2,
	}
}

func mustOpen(t *testing.T, path string, m Manifest) *Journal {
	t.Helper()
	j, err := Open(path, m)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCommitAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	recs := []ChunkRecord{
		{From: 0, To: 1, Verdict: "UNSAT", Winner: -1, Millis: 12},
		{From: 2, To: 3, Verdict: "UNSAT", Winner: -1, Millis: 7},
		{From: 4, To: 5, Verdict: "UNKNOWN", Winner: -1, Cause: "timeout"},
	}
	for _, r := range recs {
		if err := j.Commit(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Commits() != 3 {
		t.Fatalf("commits %d, want 3", j.Commits())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: same manifest loads the committed set unchanged.
	j2 := mustOpen(t, path, testManifest())
	defer j2.Close()
	got := j2.Committed()
	if len(got) != len(recs) {
		t.Fatalf("committed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i] != r {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], r)
		}
	}
	if j2.TruncatedBytes() != 0 {
		t.Fatalf("clean file reported %d truncated bytes", j2.TruncatedBytes())
	}
	// Appending after resume works.
	if err := j2.Commit(ChunkRecord{From: 6, To: 7, Verdict: "UNSAT", Winner: -1}); err != nil {
		t.Fatal(err)
	}
	if j2.Commits() != 4 {
		t.Fatalf("commits after resume-append %d, want 4", j2.Commits())
	}
}

func TestManifestMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	if err := j.Commit(ChunkRecord{From: 0, To: 0, Verdict: "UNSAT", Winner: -1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	cases := map[string]func(*Manifest){
		"unwind":     func(m *Manifest) { m.Unwind++ },
		"contexts":   func(m *Manifest) { m.Contexts++ },
		"width":      func(m *Manifest) { m.Width = 16 },
		"partitions": func(m *Manifest) { m.Partitions *= 2 },
		"chunksize":  func(m *Manifest) { m.ChunkSize = 4 },
		"program":    func(m *Manifest) { m.ProgramSHA256 = HashProgram("different source") },
		"rounds":     func(m *Manifest) { m.Rounds = 3 },
	}
	for name, mutate := range cases {
		m := testManifest()
		mutate(&m)
		if _, err := Open(path, m); !errors.Is(err, ErrManifestMismatch) {
			t.Errorf("%s change: err %v, want ErrManifestMismatch", name, err)
		}
	}
}

// A crash mid-write leaves a half-written record at the tail. Open must
// keep the durable prefix, drop the torn tail, and leave the file
// appendable.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	for i := 0; i < 3; i++ {
		if err := j.Commit(ChunkRecord{From: i, To: i, Verdict: "UNSAT", Winner: -1}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Hand-corrupt: chop the last record mid-payload (a torn write).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-11]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, path, testManifest())
	if got := j2.Commits(); got != 2 {
		t.Fatalf("committed %d records after torn tail, want 2", got)
	}
	if j2.TruncatedBytes() == 0 {
		t.Fatal("torn tail not reported as truncated")
	}
	// The torn bytes are gone from disk, and appends land cleanly after
	// the surviving prefix.
	if err := j2.Commit(ChunkRecord{From: 9, To: 9, Verdict: "UNSAT", Winner: -1}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := mustOpen(t, path, testManifest())
	defer j3.Close()
	recs := j3.Committed()
	if len(recs) != 3 || recs[2].From != 9 {
		t.Fatalf("records after heal+append: %+v", recs)
	}
	if j3.TruncatedBytes() != 0 {
		t.Fatal("healed file still reports truncation")
	}
}

// A bit flip inside a committed record must not be trusted: everything
// from the corrupt record on is discarded.
func TestCorruptRecordTruncatesSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	var offsets []int64
	for i := 0; i < 3; i++ {
		if err := j.Commit(ChunkRecord{From: i, To: i, Verdict: "UNSAT", Winner: -1}); err != nil {
			t.Fatal(err)
		}
		st, _ := j.f.Stat()
		offsets = append(offsets, st.Size())
	}
	j.Close()

	// Flip one byte inside the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[0]+12] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, path, testManifest())
	defer j2.Close()
	if got := j2.Commits(); got != 1 {
		t.Fatalf("committed %d records after mid-file corruption, want 1", got)
	}
}

func TestNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	if err := os.WriteFile(path, []byte("this is not a journal file at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testManifest()); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err %v, want bad-magic error", err)
	}
}

func TestReadInspectsWithoutManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	if err := j.Commit(ChunkRecord{From: 0, To: 3, Verdict: "SAT", Winner: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	m, recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if m != testManifest() {
		t.Fatalf("manifest %+v", m)
	}
	if len(recs) != 1 || recs[0].Winner != 2 || recs[0].Verdict != "SAT" {
		t.Fatalf("records %+v", recs)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	j.Close()
	if err := j.Commit(ChunkRecord{Verdict: "UNSAT"}); err == nil {
		t.Fatal("commit after close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestHashProgramStable(t *testing.T) {
	a, b := HashProgram("void main() {}"), HashProgram("void main() {}")
	if a != b || len(a) != 64 {
		t.Fatalf("hash unstable or wrong length: %q vs %q", a, b)
	}
	if HashProgram("void main() {}") == HashProgram("void main() { }") {
		t.Fatal("distinct sources hash equal")
	}
}

// RetryUnder: a budget-exhausted record is terminal under budgets no
// larger than the ones it pinned, and retryable when the exhausted
// budget is lifted or strictly raised.
func TestRetryUnder(t *testing.T) {
	cases := []struct {
		name          string
		rec           ChunkRecord
		timeoutMillis int64
		conflicts     int64
		memMB         int64
		want          bool
	}{
		{"definite verdicts never retry", ChunkRecord{Verdict: "UNSAT"}, 0, 0, 0, false},
		{"same timeout terminal", ChunkRecord{Cause: "timeout", TimeoutMillis: 500}, 500, 0, 0, false},
		{"smaller timeout terminal", ChunkRecord{Cause: "timeout", TimeoutMillis: 500}, 100, 0, 0, false},
		{"raised timeout retries", ChunkRecord{Cause: "timeout", TimeoutMillis: 500}, 501, 0, 0, true},
		{"lifted timeout retries", ChunkRecord{Cause: "timeout", TimeoutMillis: 500}, 0, 0, 0, true},
		{"unrecorded timeout budget terminal", ChunkRecord{Cause: "timeout"}, 900, 0, 0, false},
		{"unrecorded budget, lifted now, retries", ChunkRecord{Cause: "timeout"}, 0, 0, 0, true},
		{"same conflicts terminal", ChunkRecord{Cause: "conflict-budget", Conflicts: 64}, 0, 64, 0, false},
		{"raised conflicts retries", ChunkRecord{Cause: "conflict-budget", Conflicts: 64}, 0, 65, 0, true},
		{"lifted conflicts retries", ChunkRecord{Cause: "conflict-budget", Conflicts: 64}, 0, 0, 0, true},
		{"causes do not cross: timeout ignores conflicts", ChunkRecord{Cause: "timeout", TimeoutMillis: 500}, 500, 1 << 30, 0, false},
		{"same mem budget terminal", ChunkRecord{Cause: "memory", MemBudgetMB: 64}, 0, 0, 64, false},
		{"smaller mem budget terminal", ChunkRecord{Cause: "memory", MemBudgetMB: 64}, 0, 0, 32, false},
		{"raised mem budget retries", ChunkRecord{Cause: "memory", MemBudgetMB: 64}, 0, 0, 128, true},
		{"lifted mem budget retries", ChunkRecord{Cause: "memory", MemBudgetMB: 64}, 0, 0, 0, true},
		{"unrecorded mem budget terminal", ChunkRecord{Cause: "memory"}, 0, 0, 512, false},
		{"causes do not cross: memory ignores conflicts", ChunkRecord{Cause: "memory", MemBudgetMB: 64}, 0, 1 << 30, 64, false},
	}
	for _, c := range cases {
		if got := c.rec.RetryUnder(c.timeoutMillis, c.conflicts, c.memMB); got != c.want {
			t.Errorf("%s: RetryUnder(%d, %d, %d) = %v, want %v", c.name, c.timeoutMillis, c.conflicts, c.memMB, got, c.want)
		}
	}
}

// The pinned budgets survive the commit/replay round trip.
func TestBudgetFieldsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := mustOpen(t, path, testManifest())
	rec := ChunkRecord{
		From: 0, To: 1, Verdict: "UNKNOWN", Winner: -1,
		Cause: "conflict-budget", Millis: 42, TimeoutMillis: 1000, Conflicts: 64,
	}
	if err := j.Commit(rec); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != rec {
		t.Fatalf("replayed %+v, want %+v", recs, rec)
	}
}

// Manifests differing only in the partition subrange must not match:
// index i means different polarity bits under different totals/ranges.
func TestManifestSubrangeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	m := testManifest()
	m.From, m.To = 0, 8
	mustOpen(t, path, m).Close()

	other := m
	other.To = 16
	if _, err := Open(path, other); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch for a different subrange", err)
	}
	same := m
	j, err := Open(path, same)
	if err != nil {
		t.Fatalf("identical subrange refused: %v", err)
	}
	j.Close()
}
