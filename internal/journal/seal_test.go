package journal

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// faultFile wraps a real *os.File and injects storage failures through
// the OpenFile seam: after failAfterWrites successful Writes, every
// Write returns failWith; when failSync is set, Sync fails instead. A
// partial=true write failure writes half the frame before failing,
// leaving a torn record the seal's rollback must remove.
type faultFile struct {
	*os.File
	failWith       error
	failAfterWrite int  // fail the Nth (0-based) Write call; -1 = never
	failSync       bool // fail Sync calls instead of Writes
	partial        bool // on write failure, land half the bytes first
	writes         int
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.failAfterWrite >= 0 && f.writes == f.failAfterWrite {
		f.writes++
		if f.partial {
			n, _ := f.File.Write(p[:len(p)/2])
			return n, f.failWith
		}
		return 0, f.failWith
	}
	f.writes++
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.failSync {
		return f.failWith
	}
	return f.File.Sync()
}

func openFault(t *testing.T, path string, ff *faultFile) *Journal {
	t.Helper()
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff.File = raw
	j, err := OpenFile(ff, path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestENOSPCSealsMidRecord commits two records cleanly, then hits
// ENOSPC halfway through the third record's frame. The journal must
// seal, roll the torn bytes back, refuse later commits with ErrSealed —
// and the file must resume cleanly with exactly the pre-seal commits.
func TestENOSPCSealsMidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	ff := &faultFile{
		failWith: syscall.ENOSPC,
		// Writes 0-1 are the magic header and manifest record; writes 2
		// and 3 are the two good commits; write 4 (the third commit's
		// frame) fails mid-record.
		failAfterWrite: 4,
		partial:        true,
	}
	j := openFault(t, path, ff)

	good := []ChunkRecord{
		{From: 0, To: 1, Verdict: "UNSAT", Winner: -1, Millis: 3},
		{From: 2, To: 3, Verdict: "UNSAT", Winner: -1, Millis: 5},
	}
	for _, r := range good {
		if err := j.Commit(r); err != nil {
			t.Fatal(err)
		}
	}

	err := j.Commit(ChunkRecord{From: 4, To: 5, Verdict: "UNSAT", Winner: -1})
	if !errors.Is(err, ErrSealed) {
		t.Fatalf("commit over ENOSPC: got %v, want ErrSealed", err)
	}
	if !errors.Is(j.SealCause(), syscall.ENOSPC) {
		t.Fatalf("seal cause %v, want ENOSPC", j.SealCause())
	}
	if !j.Sealed() {
		t.Fatal("journal not sealed after write failure")
	}
	// The committed set must not have grown.
	if j.Commits() != len(good) {
		t.Fatalf("commits after seal %d, want %d", j.Commits(), len(good))
	}
	// Every later commit is refused without touching the file.
	if err := j.Commit(ChunkRecord{From: 6, To: 7, Verdict: "UNSAT", Winner: -1}); !errors.Is(err, ErrSealed) {
		t.Fatalf("commit on sealed journal: got %v, want ErrSealed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Rollback left the on-disk prefix exactly the committed set: the
	// resume sees no torn tail and all pre-seal commits.
	j2 := mustOpen(t, path, testManifest())
	defer j2.Close()
	if j2.TruncatedBytes() != 0 {
		t.Fatalf("resume dropped %d torn bytes; seal rollback should have removed them", j2.TruncatedBytes())
	}
	got := j2.Committed()
	if len(got) != len(good) {
		t.Fatalf("resume loaded %d records, want %d", len(got), len(good))
	}
	for i, r := range good {
		if got[i] != r {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], r)
		}
	}
	// And the healed journal accepts new appends.
	if err := j2.Commit(ChunkRecord{From: 4, To: 5, Verdict: "UNSAT", Winner: -1}); err != nil {
		t.Fatal(err)
	}
}

// TestFsyncFailureSeals exercises the second failure point: the frame
// write lands but the fsync fails, so the record was never durable and
// must be rolled back like a failed write.
func TestFsyncFailureSeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	ff := &faultFile{failWith: syscall.EIO, failAfterWrite: -1}
	j := openFault(t, path, ff)
	if err := j.Commit(ChunkRecord{From: 0, To: 1, Verdict: "UNSAT", Winner: -1}); err != nil {
		t.Fatal(err)
	}

	ff.failSync = true
	err := j.Commit(ChunkRecord{From: 2, To: 3, Verdict: "UNSAT", Winner: -1})
	if !errors.Is(err, ErrSealed) {
		t.Fatalf("commit over failed fsync: got %v, want ErrSealed", err)
	}
	if j.Commits() != 1 {
		t.Fatalf("commits after sync-fail seal %d, want 1", j.Commits())
	}
	j.Close()

	// seal() could not fsync its rollback truncate either (Sync still
	// failing), but the truncate itself landed — the resume must load
	// only the durable record, with at most torn-tail repair.
	j2 := mustOpen(t, path, testManifest())
	defer j2.Close()
	if n := j2.Commits(); n != 1 {
		t.Fatalf("resume loaded %d records, want 1", n)
	}
}

// TestTornSealRollbackFailure is the worst case: the write fails
// mid-record AND the rollback truncate fails (dead disk). The torn
// bytes stay on disk, and Open's torn-tail repair must heal the file on
// resume.
func TestTornSealRollbackFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	ff := &tornDiskFile{faultFile: faultFile{
		failWith:       syscall.ENOSPC,
		failAfterWrite: 3, // magic, manifest, one good commit, then torn failure
		partial:        true,
	}}
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff.File = raw
	j, err := OpenFile(ff, path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(ChunkRecord{From: 0, To: 1, Verdict: "UNSAT", Winner: -1}); err != nil {
		t.Fatal(err)
	}
	ff.dead = true // rollback truncate will fail too
	if err := j.Commit(ChunkRecord{From: 2, To: 3, Verdict: "UNSAT", Winner: -1}); !errors.Is(err, ErrSealed) {
		t.Fatalf("got %v, want ErrSealed", err)
	}
	ff.File.Close() // bypass journal Close (it would fsync the dead disk)

	j2 := mustOpen(t, path, testManifest())
	defer j2.Close()
	if j2.TruncatedBytes() == 0 {
		t.Fatal("expected torn-tail repair to drop the half-written record")
	}
	if n := j2.Commits(); n != 1 {
		t.Fatalf("resume loaded %d records, want 1", n)
	}
}

// tornDiskFile extends faultFile with a "dead" mode where Truncate and
// Sync fail as well, modelling a device that stopped accepting writes
// entirely.
type tornDiskFile struct {
	faultFile
	dead bool
}

func (f *tornDiskFile) Truncate(size int64) error {
	if f.dead {
		return syscall.EIO
	}
	return f.File.Truncate(size)
}

func (f *tornDiskFile) Sync() error {
	if f.dead {
		return syscall.EIO
	}
	return f.faultFile.Sync()
}
