package journal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var streamManifest = Manifest{
	ProgramSHA256: "deadbeef", Unwind: 2, Contexts: 3, Width: 8,
	Partitions: 4, From: 0, To: 4, ChunkSize: 1,
}

func chunkRec(from int, verdict string) ChunkRecord {
	return ChunkRecord{From: from, To: from, Verdict: verdict, Winner: -1, Certified: true}
}

// Marshal → Unmarshal round-trips both record kinds.
func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	mf, err := MarshalManifest(streamManifest)
	if err != nil {
		t.Fatal(err)
	}
	m, rec, err := UnmarshalRecord(mf)
	if err != nil || rec != nil || m == nil {
		t.Fatalf("manifest round trip: m=%v rec=%v err=%v", m, rec, err)
	}
	if *m != streamManifest {
		t.Fatalf("manifest changed in transit: %+v", *m)
	}
	cf, err := MarshalChunk(chunkRec(2, "UNSAT"))
	if err != nil {
		t.Fatal(err)
	}
	m, rec, err = UnmarshalRecord(cf)
	if err != nil || m != nil || rec == nil {
		t.Fatalf("chunk round trip: m=%v rec=%v err=%v", m, rec, err)
	}
	if rec.From != 2 || rec.Verdict != "UNSAT" || !rec.Certified {
		t.Fatalf("chunk changed in transit: %+v", *rec)
	}
}

// A flipped byte or trailing garbage is rejected, not misparsed.
func TestUnmarshalRejectsCorruptFrames(t *testing.T) {
	frame, err := MarshalChunk(chunkRec(0, "UNSAT"))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x40
	if _, _, err := UnmarshalRecord(flipped); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	trailing := append(append([]byte(nil), frame...), 0xFF)
	if _, _, err := UnmarshalRecord(trailing); err == nil {
		t.Fatal("frame with trailing bytes accepted")
	}
	if _, _, err := UnmarshalRecord(frame[:len(frame)-3]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// StreamWriter → StreamReader carries an ordered record sequence.
func TestStreamWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.WriteManifest(streamManifest); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.WriteChunk(chunkRec(i, "UNSAT")); err != nil {
			t.Fatal(err)
		}
	}
	r := NewStreamReader(&buf)
	m, _, err := r.Next()
	if err != nil || m == nil || *m != streamManifest {
		t.Fatalf("first record: m=%v err=%v", m, err)
	}
	for i := 0; i < 3; i++ {
		_, rec, err := r.Next()
		if err != nil || rec == nil || rec.From != i {
			t.Fatalf("record %d: rec=%v err=%v", i, rec, err)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// A truncated stream surfaces an error (not a silent EOF) so the
// standby knows its live feed died mid-record.
func TestStreamReaderTornRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.WriteManifest(streamManifest); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(chunkRec(0, "UNSAT")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	r := NewStreamReader(bytes.NewReader(cut))
	if _, _, err := r.Next(); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	_, _, err := r.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("torn record: err=%v, want a framing error", err)
	}
}

// Replica applies frames into a file that Journal.Open accepts as its
// own: the replicated copy resumes exactly like a crash-survivor.
func TestReplicaProducesResumableJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.wal")
	r, err := CreateReplica(path)
	if err != nil {
		t.Fatal(err)
	}
	mf, _ := MarshalManifest(streamManifest)
	if err := r.Apply(mf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cf, _ := MarshalChunk(chunkRec(i, "UNSAT"))
		if err := r.Apply(cf); err != nil {
			t.Fatal(err)
		}
	}
	if m, ok := r.Manifest(); !ok || m != streamManifest {
		t.Fatalf("replica manifest %+v ok=%v", m, ok)
	}
	if r.Records() != 2 {
		t.Fatalf("records %d, want 2", r.Records())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	j, err := Open(path, streamManifest)
	if err != nil {
		t.Fatalf("replicated journal rejected by Open: %v", err)
	}
	defer j.Close()
	if got := j.Commits(); got != 2 {
		t.Fatalf("replayed %d records, want 2", got)
	}
	// And the promoted standby can keep committing to it.
	if err := j.Commit(chunkRec(2, "UNSAT")); err != nil {
		t.Fatal(err)
	}
}

// Replica protocol violations are rejected without touching the file.
func TestReplicaRejectsProtocolViolations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.wal")
	r, err := CreateReplica(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cf, _ := MarshalChunk(chunkRec(0, "UNSAT"))
	if err := r.Apply(cf); err == nil {
		t.Fatal("chunk before manifest accepted")
	}
	mf, _ := MarshalManifest(streamManifest)
	if err := r.Apply(mf); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(mf); err == nil {
		t.Fatal("second manifest accepted")
	}
	corrupt := append([]byte(nil), cf...)
	corrupt[len(corrupt)-2] ^= 1
	if err := r.Apply(corrupt); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if err := r.Apply(cf); err != nil {
		t.Fatalf("clean frame after rejections: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(magic) + len(mf) + len(cf))
	if st.Size() != want {
		t.Fatalf("file size %d, want %d (rejected frames must not be written)", st.Size(), want)
	}
}

// A standby killed mid-Apply leaves a torn tail on its local copy; the
// promotion path must degrade to a cold resume from the last durable
// record — never a corrupt manifest or a refused journal.
func TestReplicaTornTailDegradesToColdResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.wal")
	r, err := CreateReplica(path)
	if err != nil {
		t.Fatal(err)
	}
	mf, _ := MarshalManifest(streamManifest)
	if err := r.Apply(mf); err != nil {
		t.Fatal(err)
	}
	cf0, _ := MarshalChunk(chunkRec(0, "UNSAT"))
	if err := r.Apply(cf0); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: half of record 1 reaches the disk.
	cf1, _ := MarshalChunk(chunkRec(1, "UNSAT"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(cf1[:len(cf1)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, err := Open(path, streamManifest)
	if err != nil {
		t.Fatalf("torn replica refused: %v", err)
	}
	defer j.Close()
	if j.Commits() != 1 {
		t.Fatalf("replayed %d records, want 1 (the durable one)", j.Commits())
	}
	if j.TruncatedBytes() == 0 {
		t.Fatal("torn tail not reported")
	}
	// The wrong manifest must still be refused — truncation repairs
	// tails, it must never blank the manifest check.
	j.Close()
	other := streamManifest
	other.Unwind = 9
	if _, err := Open(path, other); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch", err)
	}
}
