package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Streaming replication of the journal.
//
// A record's on-disk framing ([4B length][4B CRC32C][payload]) doubles
// as its wire framing: MarshalManifest / MarshalChunk produce one
// complete frame, UnmarshalRecord parses one back, and StreamWriter /
// StreamReader move a sequence of frames over any byte stream. A
// standby coordinator applies each received frame verbatim to a local
// Replica file, so its copy of the journal is byte-identical to the
// primary's and — after a failover — resumes through the exact same
// Open path (manifest check, torn-tail truncation) as a cold restart.

// MarshalManifest encodes one manifest record in the journal's framed
// format (length + CRC32C + versioned payload).
func MarshalManifest(m Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return frameRecord(recManifest, body), nil
}

// MarshalChunk encodes one chunk record in the journal's framed format.
func MarshalChunk(rec ChunkRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return frameRecord(recChunk, body), nil
}

// UnmarshalRecord parses one framed record as produced by
// MarshalManifest / MarshalChunk. Exactly one of the returned pointers
// is non-nil. Trailing bytes after the frame, a CRC mismatch, or an
// unknown record type are errors: a replication frame is applied
// whole or not at all.
func UnmarshalRecord(frame []byte) (*Manifest, *ChunkRecord, error) {
	r := bytes.NewReader(frame)
	typ, body, n, err := readRecord(r)
	if err != nil {
		return nil, nil, err
	}
	if n != len(frame) {
		return nil, nil, fmt.Errorf("journal: %d trailing bytes after record", len(frame)-n)
	}
	switch typ {
	case recManifest:
		var m Manifest
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, nil, fmt.Errorf("journal: manifest: %w", err)
		}
		return &m, nil, nil
	case recChunk:
		var rec ChunkRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return nil, nil, fmt.Errorf("journal: chunk record: %w", err)
		}
		return nil, &rec, nil
	}
	return nil, nil, fmt.Errorf("journal: unknown record type %d", typ)
}

// StreamWriter emits framed journal records to an io.Writer — the
// sending half of live replication. It writes no file magic: the
// receiving Replica owns its local file layout.
type StreamWriter struct {
	w io.Writer
}

// NewStreamWriter wraps w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// WriteManifest emits one manifest record.
func (s *StreamWriter) WriteManifest(m Manifest) error {
	frame, err := MarshalManifest(m)
	if err != nil {
		return err
	}
	_, err = s.w.Write(frame)
	return err
}

// WriteChunk emits one chunk record.
func (s *StreamWriter) WriteChunk(rec ChunkRecord) error {
	frame, err := MarshalChunk(rec)
	if err != nil {
		return err
	}
	_, err = s.w.Write(frame)
	return err
}

// StreamReader parses framed journal records from an io.Reader — the
// receiving half of live replication. Next returns records in order; a
// torn or corrupt frame ends the stream with an error, after which the
// reader must be discarded (replication falls back to the durable
// local copy, never resynchronises past corruption).
type StreamReader struct {
	r io.Reader
}

// NewStreamReader wraps r.
func NewStreamReader(r io.Reader) *StreamReader { return &StreamReader{r: r} }

// Next reads one record; exactly one of the returned pointers is
// non-nil. io.EOF marks a clean end of stream.
func (s *StreamReader) Next() (*Manifest, *ChunkRecord, error) {
	typ, body, _, err := readRecord(s.r)
	if err != nil {
		return nil, nil, err
	}
	switch typ {
	case recManifest:
		var m Manifest
		if jerr := json.Unmarshal(body, &m); jerr != nil {
			return nil, nil, fmt.Errorf("journal: manifest: %w", jerr)
		}
		return &m, nil, nil
	case recChunk:
		var rec ChunkRecord
		if jerr := json.Unmarshal(body, &rec); jerr != nil {
			return nil, nil, fmt.Errorf("journal: chunk record: %w", jerr)
		}
		return nil, &rec, nil
	}
	return nil, nil, fmt.Errorf("journal: unknown record type %d", typ)
}

// Replica is a standby's local, durable copy of a primary's journal,
// grown one validated frame at a time. Apply fsyncs before returning,
// so every acknowledged frame survives a standby crash; a standby
// killed mid-Apply leaves at most one torn tail record, which the
// promotion path's Open repairs exactly as it would on the primary.
type Replica struct {
	f        *os.File
	path     string
	manifest *Manifest
	records  int
}

// CreateReplica creates (or truncates) the replica file at path and
// writes the journal magic. An existing file is discarded: the primary
// streams its full history on connect, and the primary's journal — not
// any stale local state — is the authority on what happened.
func CreateReplica(path string) (*Replica, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	// Make the replica file's directory entry durable too: a standby
	// that acknowledged replicated records must still find its copy
	// after power loss, not just after process death.
	syncDir(path)
	return &Replica{f: f, path: path}, nil
}

// Apply validates one framed record and appends it verbatim, fsynced.
// The first frame must be the manifest; a frame that fails its CRC or
// arrives out of protocol is rejected without touching the file, so a
// corrupt replication stream can never poison the local copy.
func (r *Replica) Apply(frame []byte) error {
	m, rec, err := UnmarshalRecord(frame)
	if err != nil {
		return err
	}
	switch {
	case m != nil && r.manifest != nil:
		return fmt.Errorf("journal: replica got a second manifest record")
	case rec != nil && r.manifest == nil:
		return fmt.Errorf("journal: replica got a chunk record before the manifest")
	}
	if _, err := r.f.Write(frame); err != nil {
		return err
	}
	if err := r.f.Sync(); err != nil {
		return err
	}
	if m != nil {
		r.manifest = m
	} else {
		r.records++
	}
	return nil
}

// Manifest returns the replicated manifest, if one has been applied.
func (r *Replica) Manifest() (Manifest, bool) {
	if r.manifest == nil {
		return Manifest{}, false
	}
	return *r.manifest, true
}

// Records returns the number of chunk records applied.
func (r *Replica) Records() int { return r.records }

// Path returns the replica's file path.
func (r *Replica) Path() string { return r.path }

// Close closes the file. Applied frames are already durable.
func (r *Replica) Close() error { return r.f.Close() }
