// Package journal implements a crash-safe run journal for long
// verification runs: an append-only, fsync-on-commit write-ahead log
// that records the run manifest (program hash, bounds, partitioning)
// followed by one record per chunk verdict. A restarted run with the
// same manifest skips the committed chunks and re-solves only the rest;
// a run with a different manifest is refused rather than silently mixed.
//
// # File format
//
// The file starts with an 8-byte magic ("PBMCWAL" plus a format version
// byte), then a sequence of length-prefixed, checksummed records:
//
//	[4B little-endian payload length][4B little-endian CRC32C(payload)][payload]
//
// Each payload is one byte of record version, one byte of record type
// (manifest or chunk), and a JSON body. The first record is always the
// manifest. Commit appends one record and fsyncs before returning, so a
// record is either durable or absent — a process killed mid-write leaves
// at most one torn tail record, which Open detects (short frame or CRC
// mismatch) and truncates away instead of trusting.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// magic identifies a journal file; the trailing byte is the format
// version, bumped on any incompatible layout change.
var magic = [8]byte{'P', 'B', 'M', 'C', 'W', 'A', 'L', 1}

const (
	recVersion  = 1
	recManifest = 1
	recChunk    = 2

	// maxRecordBytes bounds one record so a corrupt length prefix cannot
	// make Open attempt an enormous allocation.
	maxRecordBytes = 1 << 20
)

// castagnoli is the CRC32C polynomial table (the same checksum SSE4.2
// accelerates; Go's hash/crc32 uses the hardware instruction when
// available).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrManifestMismatch is returned by Open when the existing journal was
// written by a run with different parameters; resuming it would mix
// verdicts computed under different bounds.
var ErrManifestMismatch = errors.New("journal: manifest mismatch")

// ErrSealed is returned by Commit after a write or fsync failure
// (ENOSPC, dying disk) has sealed the journal read-only. The journal
// never half-writes: the failed record's bytes are rolled back to the
// last durable record, so the on-disk prefix remains exactly the
// committed set and a later resume passes torn-tail repair as usual.
// Callers are expected to degrade to journal-less operation rather
// than crash the run.
var ErrSealed = errors.New("journal: sealed after write failure")

// File is the storage a Journal appends to — the subset of *os.File the
// journal uses. It exists so tests can inject failing writers (ENOSPC,
// torn fsync) via OpenFile without touching a real disk.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// Manifest pins the parameters a journal's verdicts are valid under.
// Two runs may share a journal only if every field is equal.
type Manifest struct {
	// ProgramSHA256 is the hex SHA-256 of the formatted program source
	// (see HashProgram); any source change invalidates old verdicts.
	ProgramSHA256 string `json:"program_sha256"`
	// Unwind, Contexts, Rounds, Width are the analysis bounds.
	Unwind   int `json:"unwind"`
	Contexts int `json:"contexts"`
	Rounds   int `json:"rounds,omitempty"`
	Width    int `json:"width"`
	// Partitions is the total trace-space partition count — the full
	// partitioning, not the subset this run analyses: partition index i
	// constrains polarity bits relative to the total, so two runs with
	// equal subranges of different totals must never share a journal.
	Partitions int `json:"partitions"`
	// From/To pin the half-open partition subrange [From, To) the run
	// analyses (distributed mode). Writers normalise the full range to
	// [0, Partitions) so an explicit full range and the default match.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// ChunkSize is the partitions-per-work-unit grouping (0 for
	// per-partition runs).
	ChunkSize int `json:"chunk_size,omitempty"`
}

// HashProgram returns the hex SHA-256 of a program's formatted source.
func HashProgram(source string) string {
	sum := sha256.Sum256([]byte(source))
	return fmt.Sprintf("%x", sum)
}

// ChunkRecord is one committed chunk verdict. From/To are inclusive
// partition indices (From == To for per-partition local runs).
type ChunkRecord struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Path pins the cube's extra split-bit polarities (adaptive cube
	// splitting, partition.Cube.Path); empty for static range chunks.
	// Together with From/To it identifies a node of the cube tree.
	Path    string `json:"path,omitempty"`
	Verdict string `json:"verdict"` // sat.Status string, or "SPLIT" (VerdictSplit)
	// Winner is the partition holding the satisfying assignment
	// (Verdict == "SAT"; -1 otherwise).
	Winner int `json:"winner,omitempty"`
	// Cause names the exhausted budget for an UNKNOWN verdict
	// ("timeout" | "conflict-budget" | "memory"); in-flight chunks are
	// never committed, so a journaled UNKNOWN is always a budget verdict.
	Cause string `json:"cause,omitempty"`
	// Millis is the chunk's solve time, kept for resume diagnostics.
	Millis int64 `json:"millis,omitempty"`
	// TimeoutMillis, Conflicts and MemBudgetMB pin the per-chunk budgets
	// a budget-exhausted verdict was computed under (0 = unbounded /
	// unrecorded). A budgeted UNKNOWN is terminal only relative to its
	// budgets: a resume with strictly larger ones re-solves the chunk
	// (see RetryUnder) instead of replaying a stale give-up.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`
	Conflicts     int64 `json:"conflicts,omitempty"`
	MemBudgetMB   int64 `json:"mem_budget_mb,omitempty"`
	// Certified marks a remote verdict whose certificate (RUP proof or
	// satisfying model) the coordinator verified against its own encoding
	// before committing. A distributed resume running with certification
	// enabled re-queues uncertified definite records instead of replaying
	// them, so a lying worker's verdict can never outlive the run that
	// accepted it. Locally solved records (internal/parallel) leave it
	// false: the solving process is its own root of trust.
	Certified bool `json:"certified,omitempty"`
}

// VerdictSplit marks a ChunkRecord that supersedes its cube rather than
// deciding it: the cube named by From/To/Path was split into its two
// child cubes (partition.Cube.Split), which carry the verdict from here
// on. A resume replays SPLIT records to rebuild the cube tree, and any
// later verdict record for a split cube is stale and must be ignored.
// The record is committed BEFORE the children are dispatched, so a crash
// between split and child completion resumes with the children pending.
const VerdictSplit = "SPLIT"

// Split reports whether the record is a cube-split marker.
func (r ChunkRecord) Split() bool { return r.Verdict == VerdictSplit }

// RetryUnder reports whether a budget-exhausted record should be
// re-solved rather than replayed under the given per-chunk budgets
// (wall clock in milliseconds, conflict count, memory in MiB; 0 =
// unbounded): true when the budget the chunk exhausted has been lifted
// or strictly raised. Definite verdicts and records without a recorded
// budget are never retried — the latter cannot prove the new budget is
// larger.
func (r ChunkRecord) RetryUnder(timeoutMillis, conflicts, memMB int64) bool {
	switch r.Cause {
	case "timeout": // sat.CauseTimeout.String()
		return timeoutMillis == 0 || (r.TimeoutMillis > 0 && timeoutMillis > r.TimeoutMillis)
	case "conflict-budget": // sat.CauseConflictBudget.String()
		return conflicts == 0 || (r.Conflicts > 0 && conflicts > r.Conflicts)
	case "memory": // sat.CauseMemory.String()
		return memMB == 0 || (r.MemBudgetMB > 0 && memMB > r.MemBudgetMB)
	}
	return false
}

// Journal is an open run journal. All methods are safe for concurrent
// use; Commit serialises appends internally.
type Journal struct {
	mu        sync.Mutex
	f         File
	path      string
	manifest  Manifest
	committed []ChunkRecord
	truncated int64 // torn-tail bytes dropped by Open (diagnostics)
	// goodEnd is the offset just past the last durable record — the
	// rollback point if a later append fails and seals the journal.
	goodEnd int64
	sealed  bool
	sealErr error
	closed  bool
	tracer  *obs.Tracer
	parent  *obs.Span
}

// SetTracer attaches a tracer so each Commit emits a "journal_commit"
// span covering the append + fsync. Nil (the default) keeps the journal
// untraced; call before commits start.
func (j *Journal) SetTracer(t *obs.Tracer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.tracer = t
	j.mu.Unlock()
}

// SetParent parents the journal's spans under p (typically the run's
// root span), keeping a traced run's tree single-rooted. Without it,
// commit spans are emitted as roots.
func (j *Journal) SetParent(p *obs.Span) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.parent = p
	j.mu.Unlock()
}

// Open opens or creates the journal at path for the given manifest.
//
// A missing or empty file is initialised with the manifest record. An
// existing file is replayed: the manifest record must equal m
// (ErrManifestMismatch otherwise), well-formed chunk records become the
// committed set, and a torn tail — a record cut short or failing its
// CRC, as left by a crash mid-write — is truncated off the file so the
// resumed run appends from the last durable record.
func Open(path string, m Manifest) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j, err := OpenFile(f, path, m)
	if err != nil {
		return nil, err
	}
	// Durability of the file's existence, not just its contents: fsync
	// the parent directory so a newly created journal survives power
	// loss (a create followed only by file fsyncs leaves the directory
	// entry unjournalled on some filesystems). Best-effort — directory
	// fsync is not supported everywhere.
	if j.Commits() == 0 && j.TruncatedBytes() == 0 {
		syncDir(path)
	}
	return j, nil
}

// OpenFile opens a journal over an already-open File — the fault-
// injection seam: tests wrap a real file in a failing writer to
// exercise ENOSPC sealing without filling a disk. The File must be
// positioned at offset 0 and remain owned by the journal (Close closes
// it).
func OpenFile(f File, path string, m Manifest) (*Journal, error) {
	j := &Journal{f: f, path: path, manifest: m}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := j.initNew(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// syncDir fsyncs the directory containing path (best-effort).
func syncDir(path string) {
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	dir.Sync()
	dir.Close()
}

// Read replays the journal at path read-only, without manifest
// validation: the stored manifest and committed records are returned
// as-is (torn tails are skipped, not truncated). Intended for
// inspection and tests.
func Read(path string) (Manifest, []ChunkRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, nil, err
	}
	defer f.Close()
	m, recs, _, err := scan(f)
	return m, recs, err
}

func (j *Journal) initNew() error {
	if _, err := j.f.Write(magic[:]); err != nil {
		return err
	}
	body, err := json.Marshal(j.manifest)
	if err != nil {
		return err
	}
	n, err := j.appendRecord(recManifest, body)
	if err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.goodEnd = int64(len(magic) + n)
	return nil
}

// replay loads an existing file: manifest check, committed records,
// torn-tail truncation.
func (j *Journal) replay() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	m, recs, goodEnd, err := scan(j.f)
	if err != nil {
		return err
	}
	if m != j.manifest {
		return fmt.Errorf("%w: journal %s was written for a different run (have %+v, want %+v)",
			ErrManifestMismatch, j.path, m, j.manifest)
	}
	st, err := j.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() > goodEnd {
		// Torn tail: a record the crashed writer never completed. It was
		// never acknowledged, so dropping it loses nothing.
		j.truncated = st.Size() - goodEnd
		if err := j.f.Truncate(goodEnd); err != nil {
			return err
		}
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	j.committed = recs
	j.goodEnd = goodEnd
	_, err = j.f.Seek(0, io.SeekEnd)
	return err
}

// scan reads magic, manifest, and chunk records from r, stopping at the
// first torn or corrupt record. goodEnd is the offset just past the last
// well-formed record.
func scan(r io.Reader) (m Manifest, recs []ChunkRecord, goodEnd int64, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return m, nil, 0, fmt.Errorf("journal: not a journal file (short header): %w", err)
	}
	if hdr != magic {
		return m, nil, 0, fmt.Errorf("journal: bad magic %q (format change or not a journal)", hdr[:])
	}
	goodEnd = int64(len(magic))
	sawManifest := false
	for {
		typ, body, n, rerr := readRecord(r)
		if rerr != nil {
			// io.EOF is a clean end; anything else (short frame, CRC
			// mismatch, oversized length) marks the torn tail.
			break
		}
		switch typ {
		case recManifest:
			if sawManifest {
				return m, nil, 0, fmt.Errorf("journal: duplicate manifest record")
			}
			if jerr := json.Unmarshal(body, &m); jerr != nil {
				return m, nil, 0, fmt.Errorf("journal: manifest: %w", jerr)
			}
			sawManifest = true
		case recChunk:
			if !sawManifest {
				return m, nil, 0, fmt.Errorf("journal: chunk record before manifest")
			}
			var rec ChunkRecord
			if jerr := json.Unmarshal(body, &rec); jerr != nil {
				return m, nil, 0, fmt.Errorf("journal: chunk record: %w", jerr)
			}
			recs = append(recs, rec)
		default:
			// Unknown record type from a newer minor version: skip but
			// count it as well-formed (it passed its CRC).
		}
		goodEnd += int64(n)
	}
	if !sawManifest {
		return m, nil, 0, fmt.Errorf("journal: no manifest record (file torn at birth)")
	}
	return m, recs, goodEnd, nil
}

// readRecord reads one framed record, returning its type, JSON body and
// total on-disk size. Any framing violation is an error (the caller
// treats it as the torn tail).
func readRecord(r io.Reader) (typ byte, body []byte, size int, err error) {
	var frame [8]byte
	n, err := io.ReadFull(r, frame[:])
	if err == io.EOF && n == 0 {
		return 0, nil, 0, io.EOF
	}
	if err != nil {
		return 0, nil, 0, fmt.Errorf("journal: torn frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length < 2 || length > maxRecordBytes {
		return 0, nil, 0, fmt.Errorf("journal: implausible record length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("journal: torn payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return 0, nil, 0, fmt.Errorf("journal: record checksum mismatch")
	}
	if payload[0] != recVersion {
		return 0, nil, 0, fmt.Errorf("journal: unsupported record version %d", payload[0])
	}
	return payload[1], payload[2:], 8 + int(length), nil
}

// frameRecord builds one complete on-disk record: 8-byte header
// (length + CRC32C) followed by the versioned payload. The same bytes
// are valid in the journal file and on the replication stream, so a
// standby's copy is byte-identical to the primary's.
func frameRecord(typ byte, body []byte) []byte {
	payload := make([]byte, 0, 10+len(body))
	payload = append(payload, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	payload = append(payload, recVersion, typ)
	payload = append(payload, body...)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(payload)-8))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.Checksum(payload[8:], castagnoli))
	return payload
}

// appendRecord frames and writes one record, returning its on-disk
// size; the caller syncs.
func (j *Journal) appendRecord(typ byte, body []byte) (int, error) {
	frame := frameRecord(typ, body)
	if _, err := j.f.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// seal marks the journal read-only after a failed append and rolls the
// file back to the last durable record, so the on-disk prefix remains
// exactly the committed set. Rollback is best-effort: if even Truncate
// fails (dead disk), Open's torn-tail repair heals the file on resume.
// Called with j.mu held.
func (j *Journal) seal(cause error) {
	j.sealed = true
	j.sealErr = cause
	_ = j.f.Truncate(j.goodEnd)
	_ = j.f.Sync()
	_, _ = j.f.Seek(0, io.SeekEnd)
}

// Sealed reports whether a write failure has sealed the journal; once
// sealed, every Commit returns ErrSealed and the committed set no
// longer grows.
func (j *Journal) Sealed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealed
}

// SealCause returns the write error that sealed the journal (nil if it
// is not sealed).
func (j *Journal) SealCause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealErr
}

// Commit durably appends one chunk verdict: the record is written and
// fsynced before Commit returns, so a verdict acknowledged to the rest
// of the pipeline survives any subsequent crash. A write or fsync
// failure (ENOSPC, I/O error) seals the journal: the half-written
// record is rolled back, this and every later Commit return an error
// matching ErrSealed, and the file stays resumable.
func (j *Journal) Commit(rec ChunkRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: commit on closed journal")
	}
	if j.sealed {
		return fmt.Errorf("%w: %v", ErrSealed, j.sealErr)
	}
	commitAttrs := []obs.Attr{
		obs.KV("from", rec.From), obs.KV("to", rec.To),
		obs.KV("verdict", rec.Verdict),
	}
	var sp *obs.Span
	if j.parent != nil {
		sp = j.parent.Child("journal_commit", commitAttrs...)
	} else {
		sp = j.tracer.Start("journal_commit", commitAttrs...)
	}
	n, err := j.appendRecord(recChunk, body)
	if err != nil {
		j.seal(err)
		sp.End(obs.KV("error", err.Error()))
		return fmt.Errorf("%w: %v", ErrSealed, err)
	}
	if err := j.f.Sync(); err != nil {
		j.seal(err)
		sp.End(obs.KV("error", err.Error()))
		return fmt.Errorf("%w: %v", ErrSealed, err)
	}
	sp.End()
	j.goodEnd += int64(n)
	j.committed = append(j.committed, rec)
	return nil
}

// Committed returns the chunk verdicts durably recorded so far (loaded
// ones first, then this process's commits, in order).
func (j *Journal) Committed() []ChunkRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]ChunkRecord, len(j.committed))
	copy(out, j.committed)
	return out
}

// Commits returns the number of committed chunk records.
func (j *Journal) Commits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.committed)
}

// Manifest returns the manifest the journal was opened with.
func (j *Journal) Manifest() Manifest { return j.manifest }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// TruncatedBytes reports how many torn-tail bytes Open dropped (0 for a
// clean file) — surfaced so resumed runs can log that a crash was
// detected and healed.
func (j *Journal) TruncatedBytes() int64 { return j.truncated }

// Close flushes and closes the file. Committed records are already
// durable (Commit fsyncs), so Close after a signal is a formality — but
// a cheap one, and it releases the descriptor.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.sealed {
		// A sealed journal's disk is already misbehaving; don't let a
		// failing final Sync mask the close.
		return j.f.Close()
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
