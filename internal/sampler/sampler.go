// Package sampler implements randomized schedule sampling, the
// parallel bug-finding approach the paper discusses as orthogonal
// related work (Sect. 5: randomized priority-based scheduling
// [Burckhardt et al.], parallel bug finding via reduced interleaving
// instances [Nguyen et al.]): many workers execute the program
// concretely under random schedules and random inputs, reporting the
// first assertion violation.
//
// Unlike the paper's partitioned BMC, sampling offers no verification
// guarantee — a run without violations says nothing about safety — but
// it can stumble on bugs quickly when many schedules expose them. The
// experiments contrast the two on the benchmark suite.
package sampler

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flatten"
	"repro/internal/interp"
)

// Options configures a sampling run.
type Options struct {
	// Contexts is the context bound per execution.
	Contexts int
	// Width is the integer bit width (default 8).
	Width int
	// MaxExecutions is the total execution budget (default 10000).
	MaxExecutions int64
	// Workers is the number of concurrent samplers (default 1).
	Workers int
	// Seed seeds the schedule generator.
	Seed int64
	// NondetDomain bounds random values for non-deterministic
	// assignments (default 8; Booleans use 2).
	NondetDomain int64
}

// Result reports a sampling run.
type Result struct {
	// Violation is the first assertion failure found, if any.
	Violation *interp.Violation
	// Schedule reproduces it (valid when Violation != nil).
	Schedule []interp.ContextChoice
	// Executions is the number of schedules executed (complete or
	// pruned).
	Executions int64
	// Infeasible counts pruned (blocked/assume-failed) schedules.
	Infeasible int64
	// Wall is the elapsed time.
	Wall time.Duration
}

// Sample runs randomized schedule exploration on a flattened program.
func Sample(ctx context.Context, fp *flatten.Program, opts Options) (*Result, error) {
	if opts.Contexts < 1 {
		opts.Contexts = 1
	}
	if opts.MaxExecutions == 0 {
		opts.MaxExecutions = 10000
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.NondetDomain == 0 {
		opts.NondetDomain = 8
	}

	start := time.Now()
	res := &Result{}
	var executions, infeasible atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	done := make(chan struct{})
	var closeOnce sync.Once

	for wk := 0; wk < opts.Workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(wk)*7919 + 1))
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				default:
				}
				if executions.Add(1) > opts.MaxExecutions {
					return
				}
				viol, schedule, pruned := runRandomSchedule(fp, opts, rng)
				if pruned {
					infeasible.Add(1)
				}
				if viol == nil {
					continue
				}
				mu.Lock()
				if res.Violation == nil {
					res.Violation = viol
					res.Schedule = schedule
				}
				mu.Unlock()
				closeOnce.Do(func() { close(done) })
				return
			}
		}()
	}
	wg.Wait()
	res.Executions = executions.Load()
	if res.Executions > opts.MaxExecutions {
		res.Executions = opts.MaxExecutions
	}
	res.Infeasible = infeasible.Load()
	res.Wall = time.Since(start)
	return res, nil
}

// runRandomSchedule executes one random interleaving; it returns the
// violation if the schedule reaches one, and whether the schedule was
// pruned as infeasible.
func runRandomSchedule(fp *flatten.Program, opts Options, rng *rand.Rand) (*interp.Violation, []interp.ContextChoice, bool) {
	st := interp.NewState(fp, interp.Options{Width: opts.Width})
	nondet := func(thread, block, step int) int64 {
		return rng.Int63n(opts.NondetDomain)
	}
	var schedule []interp.ContextChoice
	for c := 0; c < opts.Contexts; c++ {
		if st.AllTerminated() {
			break
		}
		var t int
		if c == 0 {
			t = 0
		} else {
			// Pick among active threads.
			var active []int
			for i := 0; i < len(fp.Threads); i++ {
				if st.Active(i) && !st.Terminated(i) {
					active = append(active, i)
				}
			}
			if len(active) == 0 {
				break
			}
			t = active[rng.Intn(len(active))]
		}
		span := len(fp.Threads[t].Blocks) - st.PC(t)
		cs := st.PC(t) + rng.Intn(span+1)
		err := st.ExecContext(t, cs, nondet)
		schedule = append(schedule, interp.ContextChoice{Thread: t, Cs: cs})
		if v, ok := err.(*interp.Violation); ok {
			return v, schedule, false
		}
		if err != nil {
			return nil, nil, true // infeasible: abandon this schedule
		}
	}
	return nil, nil, false
}
