package sampler

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/flatten"
	"repro/internal/interp"
	"repro/internal/unfold"
	"repro/prog"
)

func flat(t *testing.T, p *prog.Program, u int) *flatten.Program {
	t.Helper()
	up, err := unfold.Unfold(p, unfold.Options{Unwind: u})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := flatten.Flatten(up)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestSamplerFindsShallowBug(t *testing.T) {
	fp := flat(t, bench.Fibonacci(1), 1)
	res, err := Sample(context.Background(), fp, Options{
		Contexts: 4, MaxExecutions: 50000, Workers: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("sampler missed the Fibonacci alternation bug")
	}
	// The reported schedule must replay to a real violation.
	replay := interp.NewState(fp, interp.Options{})
	rerr := replay.Replay(res.Schedule, interp.ZeroNondet)
	if _, ok := rerr.(*interp.Violation); !ok {
		t.Fatalf("schedule does not replay: %v", rerr)
	}
}

func TestSamplerFindsRaceBug(t *testing.T) {
	fp := flat(t, bench.Workstealingqueue(), 2)
	res, err := Sample(context.Background(), fp, Options{
		Contexts: 7, MaxExecutions: 200000, Workers: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("sampler missed the work-stealing race in %d executions", res.Executions)
	}
}

func TestSamplerRespectsBudget(t *testing.T) {
	// Safestack is safe at this bound: the sampler must exhaust its
	// budget without a violation (and without any guarantee).
	fp := flat(t, bench.Safestack(), 2)
	res, err := Sample(context.Background(), fp, Options{
		Contexts: 5, MaxExecutions: 2000, Workers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation below the bug depth: %v", res.Violation)
	}
	if res.Executions != 2000 {
		t.Fatalf("executions: %d", res.Executions)
	}
}

func TestSamplerCancellation(t *testing.T) {
	fp := flat(t, bench.Safestack(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Sample(ctx, fp, Options{Contexts: 5, MaxExecutions: 1 << 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal("violation on cancelled run")
	}
}

func TestSamplerNondet(t *testing.T) {
	p := prog.MustParse(`
int g;
void main() {
  int x;
  x = *;
  assume(x >= 0);
  assume(x < 4);
  g = x;
  assert(g != 3);
}
`)
	fp := flat(t, p, 1)
	res, err := Sample(context.Background(), fp, Options{
		Contexts: 1, MaxExecutions: 10000, Workers: 1, Seed: 5, NondetDomain: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("sampler missed the nondet witness x=3")
	}
}
