// Package vc generates the propositional verification condition for a
// flattened bounded multi-threaded program, combining the paper's two
// encoding stages: the sequentialization scheduler (Sect. 2.2 and the
// context-bounded variant of Fig. 5, Sect. 3.3) and SAT-based BMC
// bit-blasting (Sect. 2.3).
//
// The encoder simulates the scheduler symbolically. For every execution
// context c it introduces non-deterministic words tid[c] (the scheduled
// thread, pinned to the main thread for c = 0) and cs[c] (the context
// switch point), constrains pc[tid[c]] ≤ cs[c] ≤ size[tid[c]] and
// act[tid[c]], executes every block b of every thread t under the enable
// condition tid[c]=t ∧ pc[t] ≤ b < cs[c], and finally updates pc[tid[c]]
// to cs[c]. The resulting formula is satisfiable iff an assertion
// violation is reachable within the bounds.
//
// The propositional variables carrying the least-significant bits of the
// tid[c] words are exported: they are the variables the paper's
// partitioning constrains (Sect. 3.3, "Changes to the Bounded Model
// Checker").
package vc

import (
	"fmt"

	"repro/internal/bv"
	"repro/internal/cnf"
	"repro/internal/flatten"
	"repro/prog"
)

// Mode selects the sequentialization scheduler.
type Mode int

const (
	// ContextBounded is the paper's scheduler of Fig. 5: both the thread
	// scheduled at each context and the switch point are symbolic.
	ContextBounded Mode = iota
	// RoundRobin is the original lazy sequentialization scheduler
	// (Sect. 2.2): threads run in a fixed cyclic order; only the switch
	// points are symbolic. Used as an ablation baseline.
	RoundRobin
)

// Options configures the encoder.
type Options struct {
	// Width is the integer bit width (default 8).
	Width int
	// Contexts is the number of execution contexts (ContextBounded mode).
	Contexts int
	// Rounds is the number of round-robin rounds (RoundRobin mode); the
	// number of contexts is then Rounds * #threads.
	Rounds int
	// Mode selects the scheduler.
	Mode Mode
	// ZeroLocals initialises locals to zero instead of non-deterministic
	// values; used by differential tests against the concrete
	// interpreter. The paper's semantics (uninitialised locals) is the
	// default.
	ZeroLocals bool
}

func (o *Options) setDefaults() error {
	if o.Width == 0 {
		o.Width = 8
	}
	switch o.Mode {
	case ContextBounded:
		if o.Contexts < 1 {
			return fmt.Errorf("vc: context bound must be >= 1")
		}
	case RoundRobin:
		if o.Rounds < 1 {
			return fmt.Errorf("vc: round bound must be >= 1")
		}
	default:
		return fmt.Errorf("vc: unknown mode %d", o.Mode)
	}
	return nil
}

// NondetKey identifies one non-deterministic assignment instance.
type NondetKey struct {
	Thread, Block, Step int
}

// Encoded is the generated verification condition plus the metadata
// needed for partitioning and counterexample decoding.
type Encoded struct {
	// Program is the encoded flattened program.
	Program *flatten.Program
	// Opts echoes the encoding options.
	Opts Options
	// Ctx is the bit-vector circuit context; Ctx.B.F is the CNF formula.
	Ctx *bv.Ctx
	// Contexts is the number of encoded execution contexts.
	Contexts int

	// TidVecs[c] is the scheduled-thread word of context c (constant for
	// c = 0 and in round-robin mode).
	TidVecs []bv.Vec
	// CsVecs[c] is the context-switch point word of context c.
	CsVecs []bv.Vec
	// TidLSBs[c] is the propositional literal of the least-significant
	// bit of tid[c], or cnf.LitUndef when tid[c] is constant. These are
	// the partitioning variables of Sect. 3.3.
	TidLSBs []cnf.Lit

	// Nondet maps each non-deterministic assignment to its input word.
	Nondet map[NondetKey]bv.Vec
	// InitScalars maps each scalar local to its initial-value word
	// (only populated when locals are non-deterministic).
	InitScalars map[string]bv.Vec
	// InitArrays likewise for array locals, one word per element.
	InitArrays map[string][]bv.Vec
}

// Formula returns the underlying CNF formula.
func (e *Encoded) Formula() *cnf.Formula { return e.Ctx.B.F }

// env is the symbolic state during encoding.
type env struct {
	scalars map[string]bv.Vec
	arrays  map[string][]bv.Vec
	types   map[string]prog.Type
}

// Encode builds the verification condition.
func Encode(p *flatten.Program, opts Options) (*Encoded, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	w := opts.Width
	nthreads := len(p.Threads)
	if nthreads == 0 {
		return nil, fmt.Errorf("vc: program has no threads")
	}
	maxSize := p.MaxThreadSize()
	if maxSize >= 1<<uint(w) {
		return nil, fmt.Errorf("vc: thread size %d exceeds %d-bit width", maxSize, w)
	}
	if nthreads >= 1<<uint(w) {
		return nil, fmt.Errorf("vc: thread count %d exceeds %d-bit width", nthreads, w)
	}

	c := bv.NewCtx()
	enc := &encoder{
		p:    p,
		opts: opts,
		c:    c,
		out: &Encoded{
			Program:     p,
			Opts:        opts,
			Ctx:         c,
			Nondet:      map[NondetKey]bv.Vec{},
			InitScalars: map[string]bv.Vec{},
			InitArrays:  map[string][]bv.Vec{},
		},
		env: &env{
			scalars: map[string]bv.Vec{},
			arrays:  map[string][]bv.Vec{},
			types:   map[string]prog.Type{},
		},
		feasible: c.B.True(),
		violated: c.B.False(),
	}
	enc.initState()
	if err := enc.run(); err != nil {
		return nil, err
	}
	// The formula is satisfiable iff some assertion violation is
	// reachable along a feasible prefix.
	c.B.Assert(enc.violated)
	return enc.out, nil
}

type encoder struct {
	p    *flatten.Program
	opts Options
	c    *bv.Ctx
	out  *Encoded
	env  *env

	pcs []bv.Vec  // per thread
	act []cnf.Lit // per thread

	feasible cnf.Lit // conjunction of assumes along the prefix
	violated cnf.Lit // disjunction of reached violations
}

func (e *encoder) width() int { return e.opts.Width }

// vecWidth returns the bit width for a declared type.
func (e *encoder) vecWidth(t prog.Type) int {
	if t.Kind == prog.KindBool {
		return 1
	}
	return e.width()
}

func (e *encoder) initState() {
	declare := func(d prog.Decl, local bool) {
		e.env.types[d.Name] = d.Type
		ew := e.vecWidth(d.Type)
		if d.Type.IsArray() {
			elems := make([]bv.Vec, d.Type.ArrayLen)
			for i := range elems {
				if local && !e.opts.ZeroLocals {
					elems[i] = e.c.Input(ew)
				} else {
					elems[i] = e.c.Const(0, ew)
				}
			}
			e.env.arrays[d.Name] = elems
			if local && !e.opts.ZeroLocals {
				e.out.InitArrays[d.Name] = append([]bv.Vec(nil), elems...)
			}
			return
		}
		if local && !e.opts.ZeroLocals {
			v := e.c.Input(ew)
			e.env.scalars[d.Name] = v
			e.out.InitScalars[d.Name] = v
		} else {
			e.env.scalars[d.Name] = e.c.Const(0, ew)
		}
	}
	for _, g := range e.p.Globals {
		declare(g, false)
	}
	for _, t := range e.p.Threads {
		for _, l := range t.Locals {
			declare(l, true)
		}
	}
	e.pcs = make([]bv.Vec, len(e.p.Threads))
	e.act = make([]cnf.Lit, len(e.p.Threads))
	for t := range e.p.Threads {
		e.pcs[t] = e.c.Const(0, e.width())
		if t == 0 {
			e.act[t] = e.c.B.True()
		} else {
			e.act[t] = e.c.B.False()
		}
	}
}

// assume conjoins a condition onto the feasibility prefix.
func (e *encoder) assume(cond cnf.Lit) {
	e.feasible = e.c.B.And(e.feasible, cond)
}

func (e *encoder) run() error {
	contexts := e.opts.Contexts
	if e.opts.Mode == RoundRobin {
		contexts = e.opts.Rounds * len(e.p.Threads)
	}
	e.out.Contexts = contexts

	w := e.width()
	b := e.c.B
	for c := 0; c < contexts; c++ {
		// Scheduled thread.
		var tid bv.Vec
		switch {
		case c == 0:
			// The first context always runs the main thread (Sect. 3.2:
			// partitioning starts at the second context).
			tid = e.c.Const(0, w)
			e.out.TidLSBs = append(e.out.TidLSBs, cnf.LitUndef)
		case e.opts.Mode == RoundRobin:
			tid = e.c.Const(int64(c%len(e.p.Threads)), w)
			e.out.TidLSBs = append(e.out.TidLSBs, cnf.LitUndef)
		default:
			tid = e.c.Input(w)
			e.out.TidLSBs = append(e.out.TidLSBs, tid.LSB())
		}
		cs := e.c.Input(w)
		e.out.TidVecs = append(e.out.TidVecs, tid)
		e.out.CsVecs = append(e.out.CsVecs, cs)

		// Scheduler constraints (Fig. 5): the scheduled thread must have
		// been created, and pc[tid] <= cs <= size[tid].
		actSel := b.False()
		pcSel := e.c.Const(0, w)
		sizeSel := e.c.Const(0, w)
		hits := make([]cnf.Lit, len(e.p.Threads))
		for t := range e.p.Threads {
			hits[t] = e.c.Eq(tid, e.c.Const(int64(t), w))
			actSel = b.Or(actSel, b.And(hits[t], e.act[t]))
			pcSel = e.c.Ite(hits[t], e.pcs[t], pcSel)
			sizeSel = e.c.Ite(hits[t], e.c.Const(int64(len(e.p.Threads[t].Blocks)), w), sizeSel)
		}
		e.assume(actSel)
		e.assume(e.c.Ule(pcSel, cs))
		e.assume(e.c.Ule(cs, sizeSel))

		// Execute every block of every thread under its enabling
		// condition.
		for t, th := range e.p.Threads {
			if len(th.Blocks) == 0 {
				continue
			}
			base := b.And(hits[t], e.act[t])
			if v, ok := b.IsConst(base); ok && !v {
				continue // thread cannot be scheduled in this context
			}
			pcT := e.pcs[t]
			for bi := range th.Blocks {
				bConst := e.c.Const(int64(bi), w)
				en := b.And(base,
					b.And(e.c.Ule(pcT, bConst), e.c.Ult(bConst, cs)))
				if v, ok := b.IsConst(en); ok && !v {
					continue
				}
				for si, step := range th.Blocks[bi] {
					if err := e.step(t, bi, si, step, en); err != nil {
						return err
					}
				}
			}
			// pc[t] := cs if this thread ran.
			e.pcs[t] = e.c.Ite(hits[t], cs, e.pcs[t])
		}
	}
	return nil
}

// step encodes one guarded atomic operation under the enable literal en.
func (e *encoder) step(t, bi, si int, step flatten.Step, en cnf.Lit) error {
	b := e.c.B
	for _, g := range step.Guards {
		gv, ok := e.env.scalars[g.Name]
		if !ok {
			return fmt.Errorf("vc: unknown guard %q", g.Name)
		}
		lit := gv.LSB()
		if g.Neg {
			lit = lit.Not()
		}
		en = b.And(en, lit)
	}
	if v, ok := b.IsConst(en); ok && !v {
		return nil
	}
	switch op := step.Op.(type) {
	case *flatten.AssignOp:
		var val bv.Vec
		lw := e.vecWidth(e.lvalueType(op.LHS))
		if _, ok := op.RHS.(*prog.Nondet); ok {
			// One shared input per static non-deterministic assignment:
			// the step executes in at most one context per trace (the
			// thread's pc is monotone), so the same free word serves
			// every context's encoding of this block, and the trace
			// decoder can read its value unambiguously.
			key := NondetKey{Thread: t, Block: bi, Step: si}
			var ok bool
			if val, ok = e.out.Nondet[key]; !ok {
				val = e.c.Input(lw)
				e.out.Nondet[key] = val
			}
		} else {
			var err error
			val, err = e.eval(op.RHS)
			if err != nil {
				return err
			}
		}
		return e.assign(op.LHS, val, en)
	case *flatten.AssumeOp:
		cond, err := e.evalBool(op.Cond)
		if err != nil {
			return err
		}
		e.assume(b.Implies(en, cond))
		return nil
	case *flatten.AssertOp:
		cond, err := e.evalBool(op.Cond)
		if err != nil {
			return err
		}
		// A violation counts only along a feasible prefix (matching the
		// interpreter, where execution stops at the first failure).
		viol := b.And(e.feasible, b.And(en, cond.Not()))
		e.violated = b.Or(e.violated, viol)
		return nil
	case *flatten.LockOp:
		m := e.env.scalars[op.Mutex]
		free := e.c.IsZero(m)
		e.assume(b.Implies(en, free))
		held := e.c.Const(int64(t)+1, m.Width())
		e.env.scalars[op.Mutex] = e.c.Ite(en, held, m)
		return nil
	case *flatten.UnlockOp:
		m := e.env.scalars[op.Mutex]
		e.env.scalars[op.Mutex] = e.c.Ite(en, e.c.Const(0, m.Width()), m)
		return nil
	case *flatten.CreateOp:
		for _, a := range op.Args {
			src, err := e.eval(a.Src)
			if err != nil {
				return err
			}
			dst := e.env.scalars[a.Dest]
			src = e.coerce(src, dst.Width())
			e.env.scalars[a.Dest] = e.c.Ite(en, src, dst)
		}
		e.act[op.Target] = b.Or(e.act[op.Target], en)
		return e.assign(op.Tid, e.c.Const(int64(op.Target), e.width()), en)
	case *flatten.JoinOp:
		tidV, err := e.eval(op.Tid)
		if err != nil {
			return err
		}
		term := b.False()
		for tt, th := range e.p.Threads {
			hit := e.c.Eq(tidV, e.c.Const(int64(tt), e.width()))
			done := e.c.Eq(e.pcs[tt], e.c.Const(int64(len(th.Blocks)), e.width()))
			term = b.Or(term, b.And(hit, done))
		}
		e.assume(b.Implies(en, term))
		return nil
	}
	return fmt.Errorf("vc: unknown op %T", step.Op)
}

func (e *encoder) lvalueType(lv prog.LValue) prog.Type {
	t := e.env.types[lv.BaseName()]
	if _, ok := lv.(*prog.IndexRef); ok {
		return prog.Type{Kind: t.Kind}
	}
	return t
}

// assign writes val into the l-value under the enable literal.
func (e *encoder) assign(lv prog.LValue, val bv.Vec, en cnf.Lit) error {
	switch x := lv.(type) {
	case *prog.VarRef:
		old, ok := e.env.scalars[x.Name]
		if !ok {
			return fmt.Errorf("vc: unknown variable %q", x.Name)
		}
		val = e.coerce(val, old.Width())
		e.env.scalars[x.Name] = e.c.Ite(en, val, old)
		return nil
	case *prog.IndexRef:
		arr, ok := e.env.arrays[x.Name]
		if !ok {
			return fmt.Errorf("vc: unknown array %q", x.Name)
		}
		idx, err := e.eval(x.Index)
		if err != nil {
			return err
		}
		for i := range arr {
			hit := e.c.B.And(en, e.c.Eq(idx, e.c.Const(int64(i), idx.Width())))
			arr[i] = e.c.Ite(hit, e.coerce(val, arr[i].Width()), arr[i])
		}
		return nil
	}
	return fmt.Errorf("vc: unknown l-value %T", lv)
}

// coerce adjusts a vector to the expected width (bools are 1 bit).
func (e *encoder) coerce(v bv.Vec, w int) bv.Vec {
	return e.c.Extend(v, w, false)
}

// evalBool evaluates a Boolean expression to a literal.
func (e *encoder) evalBool(x prog.Expr) (cnf.Lit, error) {
	v, err := e.eval(x)
	if err != nil {
		return cnf.LitUndef, err
	}
	if v.Width() == 1 {
		return v.LSB(), nil
	}
	return e.c.NonZero(v), nil
}

// eval evaluates an expression to a bit vector (Booleans are 1-bit).
func (e *encoder) eval(x prog.Expr) (bv.Vec, error) {
	w := e.width()
	b := e.c.B
	switch ex := x.(type) {
	case *prog.IntLit:
		return e.c.Const(ex.Value, w), nil
	case *prog.BoolLit:
		if ex.Value {
			return e.c.Bool(b.True()), nil
		}
		return e.c.Bool(b.False()), nil
	case *prog.VarRef:
		v, ok := e.env.scalars[ex.Name]
		if !ok {
			return nil, fmt.Errorf("vc: unknown variable %q", ex.Name)
		}
		return v, nil
	case *prog.IndexRef:
		arr, ok := e.env.arrays[ex.Name]
		if !ok {
			return nil, fmt.Errorf("vc: unknown array %q", ex.Name)
		}
		idx, err := e.eval(ex.Index)
		if err != nil {
			return nil, err
		}
		ew := e.vecWidth(prog.Type{Kind: e.env.types[ex.Name].Kind})
		return e.c.Select(arr, idx, e.c.Const(0, ew)), nil
	case *prog.UnaryExpr:
		v, err := e.eval(ex.X)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case prog.OpNeg:
			return e.c.Neg(v), nil
		case prog.OpNot:
			lit, err := e.evalBool(ex.X)
			if err != nil {
				return nil, err
			}
			return e.c.Bool(lit.Not()), nil
		case prog.OpBitNot:
			return e.c.Not(v), nil
		}
		return nil, fmt.Errorf("vc: unknown unary op %v", ex.Op)
	case *prog.BinaryExpr:
		switch ex.Op {
		case prog.OpLAnd, prog.OpLOr:
			xl, err := e.evalBool(ex.X)
			if err != nil {
				return nil, err
			}
			yl, err := e.evalBool(ex.Y)
			if err != nil {
				return nil, err
			}
			if ex.Op == prog.OpLAnd {
				return e.c.Bool(b.And(xl, yl)), nil
			}
			return e.c.Bool(b.Or(xl, yl)), nil
		}
		xv, err := e.eval(ex.X)
		if err != nil {
			return nil, err
		}
		yv, err := e.eval(ex.Y)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case prog.OpAdd:
			return e.c.Add(xv, yv), nil
		case prog.OpSub:
			return e.c.Sub(xv, yv), nil
		case prog.OpMul:
			return e.c.Mul(xv, yv), nil
		case prog.OpDiv, prog.OpMod:
			lit, ok := ex.Y.(*prog.IntLit)
			if !ok || lit.Value <= 0 || lit.Value&(lit.Value-1) != 0 {
				return nil, fmt.Errorf("vc: division only by constant powers of two")
			}
			k := 0
			for v := lit.Value; v > 1; v >>= 1 {
				k++
			}
			if ex.Op == prog.OpDiv {
				return e.c.LshrConst(xv, k), nil
			}
			return e.c.And(xv, e.c.Const(lit.Value-1, xv.Width())), nil
		case prog.OpAnd:
			return e.c.And(xv, yv), nil
		case prog.OpOr:
			return e.c.Or(xv, yv), nil
		case prog.OpXor:
			return e.c.Xor(xv, yv), nil
		case prog.OpShl, prog.OpShr:
			return e.shift(xv, yv, ex.Op == prog.OpShl), nil
		case prog.OpLt:
			return e.c.Bool(e.c.Slt(xv, yv)), nil
		case prog.OpLe:
			return e.c.Bool(e.c.Sle(xv, yv)), nil
		case prog.OpGt:
			return e.c.Bool(e.c.Slt(yv, xv)), nil
		case prog.OpGe:
			return e.c.Bool(e.c.Sle(yv, xv)), nil
		case prog.OpEq:
			xv, yv = e.matchWidths(xv, yv)
			return e.c.Bool(e.c.Eq(xv, yv)), nil
		case prog.OpNe:
			xv, yv = e.matchWidths(xv, yv)
			return e.c.Bool(e.c.Ne(xv, yv)), nil
		}
		return nil, fmt.Errorf("vc: unknown binary op %v", ex.Op)
	case *prog.Nondet:
		return nil, fmt.Errorf("vc: free-standing non-deterministic value")
	}
	return nil, fmt.Errorf("vc: unknown expression %T", x)
}

func (e *encoder) matchWidths(x, y bv.Vec) (bv.Vec, bv.Vec) {
	if x.Width() == y.Width() {
		return x, y
	}
	w := x.Width()
	if y.Width() > w {
		w = y.Width()
	}
	return e.c.Extend(x, w, false), e.c.Extend(y, w, false)
}

// shift encodes a variable shift as a multiplexer chain over the W
// possible amounts; amounts >= W yield zero, matching the interpreter's
// wrap semantics.
func (e *encoder) shift(x, y bv.Vec, left bool) bv.Vec {
	res := e.c.Const(0, x.Width())
	for k := 0; k < x.Width(); k++ {
		var shifted bv.Vec
		if left {
			shifted = e.c.ShlConst(x, k)
		} else {
			shifted = e.c.LshrConst(x, k)
		}
		hit := e.c.Eq(y, e.c.Const(int64(k), y.Width()))
		res = e.c.Ite(hit, shifted, res)
	}
	return res
}
