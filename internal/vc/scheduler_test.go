package vc

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// TestRoundRobinSubsumedByContextBounded checks the scheduler relation
// from Sect. 2.2/3.3: every r-round round-robin execution of a T-thread
// program is a (r*T)-context execution, so a bug found by the
// round-robin encoding must also be found by the context-bounded one at
// r*T contexts. (The converse need not hold: context bounding explores
// strictly more interleavings per context budget.)
func TestRoundRobinSubsumedByContextBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	checked := 0
	for iter := 0; iter < 60; iter++ {
		src := genProgram(rng)
		fp := mustFlat(t, src, 1)
		nthreads := len(fp.Threads)
		rounds := 1 + rng.Intn(2)

		encRR, err := Encode(fp, Options{Mode: RoundRobin, Rounds: rounds, ZeroLocals: true})
		if err != nil {
			t.Fatal(err)
		}
		rrSolver := sat.NewFromFormula(encRR.Formula(), sat.Options{})
		rrStatus, err := rrSolver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if rrStatus != sat.Sat {
			continue // the relation only constrains SAT results
		}

		encCB, err := Encode(fp, Options{Contexts: rounds * nthreads, ZeroLocals: true})
		if err != nil {
			t.Fatal(err)
		}
		cbSolver := sat.NewFromFormula(encCB.Formula(), sat.Options{})
		cbStatus, err := cbSolver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if cbStatus != sat.Sat {
			t.Fatalf("iter %d: round-robin SAT at r=%d but context-bounded UNSAT at c=%d\n%s",
				iter, rounds, rounds*nthreads, src)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("too few SAT round-robin instances: %d", checked)
	}
}

// TestContextMonotonicity: enlarging the context bound can only add
// behaviours — a bug reachable at c contexts stays reachable at c+1.
func TestContextMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(99991))
	checked := 0
	for iter := 0; iter < 60; iter++ {
		src := genProgram(rng)
		fp := mustFlat(t, src, 1)
		c := 2 + rng.Intn(2)
		encSmall, err := Encode(fp, Options{Contexts: c, ZeroLocals: true})
		if err != nil {
			t.Fatal(err)
		}
		s1 := sat.NewFromFormula(encSmall.Formula(), sat.Options{})
		st1, err := s1.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st1 != sat.Sat {
			continue
		}
		encBig, err := Encode(fp, Options{Contexts: c + 1, ZeroLocals: true})
		if err != nil {
			t.Fatal(err)
		}
		s2 := sat.NewFromFormula(encBig.Formula(), sat.Options{})
		st2, err := s2.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st2 != sat.Sat {
			t.Fatalf("iter %d: SAT at c=%d but UNSAT at c=%d\n%s", iter, c, c+1, src)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("too few SAT instances: %d", checked)
	}
}
