package vc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/flatten"
	"repro/internal/interp"
	"repro/internal/sat"
	"repro/internal/unfold"
	"repro/prog"
)

func mustFlat(t *testing.T, src string, u int) *flatten.Program {
	t.Helper()
	p, err := prog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	up, err := unfold.Unfold(p, unfold.Options{Unwind: u})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := flatten.Flatten(up)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// solve encodes and solves; returns SAT status and the encoded formula.
func solve(t *testing.T, fp *flatten.Program, opts Options) (sat.Status, *Encoded, []bool) {
	t.Helper()
	enc, err := Encode(fp, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := sat.NewFromFormula(enc.Formula(), sat.Options{})
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st == sat.Sat {
		return st, enc, s.Model()
	}
	return st, enc, nil
}

func TestSequentialAssertReachable(t *testing.T) {
	src := `
int g;
void main() {
  g = 41;
  g = g + 1;
  assert(g != 42);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 1})
	if st != sat.Sat {
		t.Fatalf("want SAT, got %v", st)
	}
}

func TestSequentialAssertUnreachable(t *testing.T) {
	src := `
int g;
void main() {
  g = 41;
  g = g + 1;
  assert(g == 42);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 1})
	if st != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", st)
	}
}

func TestAssumeBlocksViolation(t *testing.T) {
	src := `
int g;
void main() {
  g = *;
  assume(g > 10);
  assert(g > 5);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 1})
	if st != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", st)
	}
}

func TestNondetFindsWitness(t *testing.T) {
	src := `
int g;
void main() {
  g = *;
  assume(g >= 0);
  assert(g != 37);
}
`
	fp := mustFlat(t, src, 1)
	st, enc, model := solve(t, fp, Options{Contexts: 1})
	if st != sat.Sat {
		t.Fatalf("want SAT, got %v", st)
	}
	// Exactly one nondet input; its model value must be 37.
	if len(enc.Nondet) != 1 {
		t.Fatalf("nondet count: %d", len(enc.Nondet))
	}
	for _, v := range enc.Nondet {
		if got := enc.Ctx.EvalSigned(v, model); got != 37 {
			t.Fatalf("witness value %d, want 37", got)
		}
	}
}

func TestAssumeAfterViolationDoesNotMask(t *testing.T) {
	// CBMC semantics: an assume after a failing assert must not exclude
	// the violation.
	src := `
int g;
void main() {
  g = 1;
  assert(g == 2);
  assume(false);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 1})
	if st != sat.Sat {
		t.Fatalf("want SAT (later assume must not mask), got %v", st)
	}
}

func TestAssumeBeforeViolationMasks(t *testing.T) {
	src := `
int g;
void main() {
  g = 1;
  assume(false);
  assert(g == 2);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 1})
	if st != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", st)
	}
}

const fibSrcN1 = `
int i, j;
void t1() {
  int k = 0;
  while (k < 1) { i = i + j; k = k + 1; }
}
void t2() {
  int k = 0;
  while (k < 1) { j = j + i; k = k + 1; }
}
void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 3);
  assert(i < 3);
}
`

func TestFibonacciContextBounds(t *testing.T) {
	fp := mustFlat(t, fibSrcN1, 1)
	// 3 contexts: bug unreachable (needs main,t1,t2,main).
	st, _, _ := solve(t, fp, Options{Contexts: 3})
	if st != sat.Unsat {
		t.Fatalf("3 contexts: want UNSAT, got %v", st)
	}
	// 4 contexts: reachable.
	st, enc, model := solve(t, fp, Options{Contexts: 4})
	if st != sat.Sat {
		t.Fatalf("4 contexts: want SAT, got %v", st)
	}
	_ = enc
	_ = model
}

func TestFibonacciRoundRobin(t *testing.T) {
	fp := mustFlat(t, fibSrcN1, 1)
	// 1 round (main,t1,t2): t2 sees i=2 only if t1 ran before; j=3
	// requires main,t1,t2 then main again for the assert -> the assert is
	// in main, needing a second round.
	st, _, _ := solve(t, fp, Options{Mode: RoundRobin, Rounds: 1})
	if st != sat.Unsat {
		t.Fatalf("1 round: want UNSAT, got %v", st)
	}
	st, _, _ = solve(t, fp, Options{Mode: RoundRobin, Rounds: 2})
	if st != sat.Sat {
		t.Fatalf("2 rounds: want SAT, got %v", st)
	}
}

func TestMutualExclusionHolds(t *testing.T) {
	src := `
mutex m;
int g;
void w() {
  lock(m);
  g = g + 1;
  g = g + 1;
  unlock(m);
}
void main() {
  int t1, t2;
  g = 0;
  t1 = create(w);
  t2 = create(w);
  join(t1);
  join(t2);
  assert(g == 4);
}
`
	fp := mustFlat(t, src, 1)
	// However the threads interleave, the lock makes both increments
	// atomic; g must be 4.
	st, _, _ := solve(t, fp, Options{Contexts: 8})
	if st != sat.Unsat {
		t.Fatalf("mutex protected: want UNSAT, got %v", st)
	}
}

func TestRaceWithoutMutexFound(t *testing.T) {
	src := `
int g;
void w() {
  int tmp;
  tmp = g;
  g = tmp + 1;
}
void main() {
  int t1, t2;
  g = 0;
  t1 = create(w);
  t2 = create(w);
  join(t1);
  join(t2);
  assert(g == 2);
}
`
	fp := mustFlat(t, src, 1)
	// The lost-update race needs both threads interleaved:
	// main, t1(read), t2(read+write), t1(write), main.
	st, _, _ := solve(t, fp, Options{Contexts: 5})
	if st != sat.Sat {
		t.Fatalf("race: want SAT, got %v", st)
	}
	// With too few contexts for the interleaving, no violation.
	st, _, _ = solve(t, fp, Options{Contexts: 3})
	if st != sat.Unsat {
		t.Fatalf("3 contexts: want UNSAT, got %v", st)
	}
}

func TestTidLSBsExported(t *testing.T) {
	fp := mustFlat(t, fibSrcN1, 1)
	enc, err := Encode(fp, Options{Contexts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.TidLSBs) != 4 {
		t.Fatalf("TidLSBs: %d", len(enc.TidLSBs))
	}
	if enc.TidLSBs[0] != 0 {
		t.Fatal("context 0 must have no partition literal (main pinned)")
	}
	for c := 1; c < 4; c++ {
		if enc.TidLSBs[c] == 0 {
			t.Fatalf("context %d missing LSB literal", c)
		}
	}
	// Round-robin mode exports none.
	encRR, err := Encode(fp, Options{Mode: RoundRobin, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c, l := range encRR.TidLSBs {
		if l != 0 {
			t.Fatalf("round-robin context %d has LSB literal", c)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	fp := mustFlat(t, "void main() { }", 1)
	if _, err := Encode(fp, Options{}); err == nil {
		t.Fatal("missing bounds not rejected")
	}
	if _, err := Encode(fp, Options{Mode: RoundRobin}); err == nil {
		t.Fatal("missing rounds not rejected")
	}
	// Width too small for thread size.
	big := "int g;\nvoid main() {\n"
	for i := 0; i < 5; i++ {
		big += "  g = g + 1;\n"
	}
	big += "}\n"
	fpBig := mustFlat(t, big, 1)
	if _, err := Encode(fpBig, Options{Contexts: 1, Width: 2}); err == nil {
		t.Fatal("narrow width not rejected")
	}
}

func TestZeroLocalsOption(t *testing.T) {
	// With paper semantics (nondet locals), reading an uninitialised
	// local can violate the assert; with zero locals it cannot.
	src := `
int g;
void main() {
  int x;
  g = x;
  assert(g == 0);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 1})
	if st != sat.Sat {
		t.Fatalf("nondet locals: want SAT, got %v", st)
	}
	st, _, _ = solve(t, fp, Options{Contexts: 1, ZeroLocals: true})
	if st != sat.Unsat {
		t.Fatalf("zero locals: want UNSAT, got %v", st)
	}
}

func TestAtomicExcludesInterleaving(t *testing.T) {
	src := `
int g;
void w() {
  atomic {
    int tmp;
    tmp = g;
    g = tmp + 1;
  }
}
void main() {
  int t1, t2;
  t1 = create(w);
  t2 = create(w);
  join(t1);
  join(t2);
  assert(g == 2);
}
`
	fp := mustFlat(t, src, 1)
	st, _, _ := solve(t, fp, Options{Contexts: 8})
	if st != sat.Unsat {
		t.Fatalf("atomic increment: want UNSAT, got %v", st)
	}
}

// --- differential testing against the concrete explorer ---

// genProgram produces a small random multi-threaded program using shared
// variables a, b, a mutex and thread-local x; workers may wrap part of
// their body in lock/unlock or atomic sections, and main may join the
// workers. All locals are explicitly initialised and nondet values are
// bounded into the explorer's domain, so the explorer verdict is exact.
func genProgram(rng *rand.Rand) string {
	shared := []string{"a", "b"}
	local := "x"
	expr := func() string {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(4))
		case 1, 2:
			return shared[rng.Intn(2)]
		case 3:
			return local
		case 4:
			return fmt.Sprintf("%s + %d", shared[rng.Intn(2)], 1+rng.Intn(3))
		default:
			return fmt.Sprintf("%s + %s", shared[rng.Intn(2)], local)
		}
	}
	cond := func() string {
		ops := []string{"<", "<=", "==", "!=", ">", ">="}
		return fmt.Sprintf("%s %s %d", shared[rng.Intn(2)], ops[rng.Intn(len(ops))], rng.Intn(5))
	}
	var stmt func(depth int) string
	stmt = func(depth int) string {
		switch r := rng.Intn(10); {
		case r < 4:
			return fmt.Sprintf("%s = %s;", shared[rng.Intn(2)], expr())
		case r < 6:
			return fmt.Sprintf("%s = %s;", local, expr())
		case r < 7 && depth < 2:
			return fmt.Sprintf("if (%s) { %s } else { %s }", cond(), stmt(depth+1), stmt(depth+1))
		case r < 8:
			return fmt.Sprintf("assert(%s);", cond())
		case r < 9:
			return fmt.Sprintf("%s = *; assume(%s >= 0); assume(%s < 2);", local, local, local)
		default:
			return fmt.Sprintf("assume(%s);", cond())
		}
	}
	body := func(n int, declare bool) string {
		s := ""
		if declare {
			s = "int x = 0;\n"
		}
		for i := 0; i < n; i++ {
			s += stmt(0) + "\n"
		}
		return s
	}
	workerBody := func() string {
		inner := body(1+rng.Intn(3), true)
		switch rng.Intn(4) {
		case 0:
			return "int x = 0;\nlock(m);\n" + body(1+rng.Intn(2), false) + "unlock(m);\n"
		case 1:
			return "int x = 0;\natomic {\n" + body(1+rng.Intn(2), false) + "}\n"
		default:
			return inner
		}
	}
	nWorkers := 1 + rng.Intn(2)
	src := "int a, b;\nmutex m;\n"
	for w := 0; w < nWorkers; w++ {
		src += fmt.Sprintf("void w%d() {\n%s}\n", w, workerBody())
	}
	src += "void main() {\nint t0, t1;\n" + body(1+rng.Intn(2), true)
	for w := 0; w < nWorkers; w++ {
		src += fmt.Sprintf("t%d = create(w%d);\n", w, w)
	}
	if rng.Intn(3) == 0 {
		for w := 0; w < nWorkers; w++ {
			src += fmt.Sprintf("join(t%d);\n", w)
		}
	}
	src += body(1+rng.Intn(2), false)
	src += "}\n"
	return src
}

// TestDifferentialAgainstExplorer is the central soundness test: for
// random programs, the BMC verdict must coincide with exhaustive
// context-bounded exploration, and every SAT model must decode into a
// schedule that concretely reproduces a violation.
func TestDifferentialAgainstExplorer(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	contexts := 3
	checked := 0
	for iter := 0; iter < 120; iter++ {
		src := genProgram(rng)
		p, err := prog.Parse(src)
		if err != nil {
			t.Fatalf("iter %d: generator produced invalid program: %v\n%s", iter, err, src)
		}
		up, err := unfold.Unfold(p, unfold.Options{Unwind: 1})
		if err != nil {
			t.Fatal(err)
		}
		fp, err := flatten.Flatten(up)
		if err != nil {
			t.Fatal(err)
		}

		// Ground truth.
		st0 := interp.NewState(fp, interp.Options{Width: 8})
		res, err := interp.Explore(st0, interp.ExploreOptions{
			Contexts: contexts, NondetDomain: 2, MaxExecutions: 3_000_000,
		})
		if err != nil {
			continue // exploration too large; skip this sample
		}

		// BMC (zero locals to match the explorer).
		enc, err := Encode(fp, Options{Contexts: contexts, ZeroLocals: true})
		if err != nil {
			t.Fatal(err)
		}
		solver := sat.NewFromFormula(enc.Formula(), sat.Options{})
		stat, err := solver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		wantSat := res.Violation != nil
		if (stat == sat.Sat) != wantSat {
			t.Fatalf("iter %d: BMC=%v explorer violation=%v\nprogram:\n%s",
				iter, stat, res.Violation, src)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("too few programs checked: %d", checked)
	}
}
