// Package interp executes flattened bounded programs concretely. It
// implements the execution model of Sect. 2.1 of the paper at the same
// granularity as the symbolic encoder: context switches at block (visible
// statement) boundaries, blocking join/lock as infeasibility, assume as
// trace pruning, assert as violation detection.
//
// The package provides deterministic schedule replay (used to validate
// counterexamples produced by the bounded model checker) and an
// exhaustive context-bounded explorer (used as ground truth in
// differential tests).
package interp

import (
	"fmt"

	"repro/internal/flatten"
	"repro/prog"
)

// Options configures execution.
type Options struct {
	// Width is the integer bit width (default 8).
	Width int
}

func (o *Options) setDefaults() {
	if o.Width == 0 {
		o.Width = 8
	}
}

// Violation describes a failed assertion.
type Violation struct {
	Thread int
	Block  int
	Src    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("assertion violated in thread %d, block %d: %s", v.Thread, v.Block, v.Src)
}

// ErrInfeasible reports that the executed interleaving is infeasible
// (a failed assume, a blocking join/lock, or a schedule constraint
// violation); it prunes the trace rather than signalling a bug.
var ErrInfeasible = fmt.Errorf("interp: infeasible interleaving")

// State is a concrete program configuration ⟨sh, en, th_1..th_n⟩
// (Sect. 2.1), flattened: one namespace for shared and local variables,
// per-thread program counters (block indices) and activation flags.
type State struct {
	p    *flatten.Program
	opts Options

	vals   map[string]int64
	arrays map[string][]int64
	types  map[string]prog.Type

	pc  []int
	act []bool
}

// NewState builds the initial configuration: shared variables zeroed,
// locals zeroed (callers may overwrite via SetVar to model the paper's
// non-deterministic locals), only the main thread active.
func NewState(p *flatten.Program, opts Options) *State {
	opts.setDefaults()
	s := &State{
		p:      p,
		opts:   opts,
		vals:   map[string]int64{},
		arrays: map[string][]int64{},
		types:  map[string]prog.Type{},
		pc:     make([]int, len(p.Threads)),
		act:    make([]bool, len(p.Threads)),
	}
	declare := func(d prog.Decl) {
		s.types[d.Name] = d.Type
		if d.Type.IsArray() {
			s.arrays[d.Name] = make([]int64, d.Type.ArrayLen)
		} else {
			s.vals[d.Name] = 0
		}
	}
	for _, g := range p.Globals {
		declare(g)
	}
	for _, t := range p.Threads {
		for _, l := range t.Locals {
			declare(l)
		}
	}
	if len(s.act) > 0 {
		s.act[0] = true
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		p:      s.p,
		opts:   s.opts,
		vals:   make(map[string]int64, len(s.vals)),
		arrays: make(map[string][]int64, len(s.arrays)),
		types:  s.types,
		pc:     append([]int(nil), s.pc...),
		act:    append([]bool(nil), s.act...),
	}
	for k, v := range s.vals {
		c.vals[k] = v
	}
	for k, v := range s.arrays {
		c.arrays[k] = append([]int64(nil), v...)
	}
	return c
}

// SetVar overwrites a scalar variable (initial-value injection for
// counterexample replay).
func (s *State) SetVar(name string, v int64) {
	s.vals[name] = s.wrap(v)
}

// SetArrayElem overwrites one array element.
func (s *State) SetArrayElem(name string, idx int, v int64) {
	if a, ok := s.arrays[name]; ok && idx >= 0 && idx < len(a) {
		a[idx] = s.wrap(v)
	}
}

// Var reads a scalar variable.
func (s *State) Var(name string) int64 { return s.vals[name] }

// PC returns the program counter (executed block count) of a thread.
func (s *State) PC(t int) int { return s.pc[t] }

// Active reports whether a thread has been created.
func (s *State) Active(t int) bool { return s.act[t] }

// Terminated reports whether a thread has executed all its blocks.
func (s *State) Terminated(t int) bool {
	return s.pc[t] >= len(s.p.Threads[t].Blocks)
}

// AllTerminated reports whether every active thread has terminated and
// no inactive thread can still be created (conservatively: all threads
// active are done).
func (s *State) AllTerminated() bool {
	for t := range s.p.Threads {
		if s.act[t] && !s.Terminated(t) {
			return false
		}
	}
	return true
}

// wrap truncates to the configured width, sign-extending (two's
// complement).
func (s *State) wrap(v int64) int64 {
	w := uint(s.opts.Width)
	if w >= 64 {
		return v
	}
	v &= (1 << w) - 1
	if v&(1<<(w-1)) != 0 {
		v -= 1 << w
	}
	return v
}

// unsigned returns the W-bit unsigned representation.
func (s *State) unsigned(v int64) int64 {
	w := uint(s.opts.Width)
	if w >= 64 {
		return v
	}
	return v & ((1 << w) - 1)
}

// NondetFn supplies the value of a non-deterministic assignment; the
// position identifies the step so counterexample replay can inject the
// model's choice. For bools any non-zero value is true.
type NondetFn func(thread, block, step int) int64

// ZeroNondet resolves every non-deterministic value to zero.
func ZeroNondet(_, _, _ int) int64 { return 0 }

// ExecContext simulates one execution context (paper Fig. 5): thread t
// runs blocks pc[t]..cs-1, then pc[t] := cs. It returns a *Violation if
// an assertion failed, ErrInfeasible if the context is not feasible
// (inactive thread, cs out of range, failed assume, blocked join/lock),
// and nil otherwise.
func (s *State) ExecContext(t, cs int, nondet NondetFn) error {
	if t < 0 || t >= len(s.p.Threads) {
		return ErrInfeasible
	}
	if !s.act[t] {
		return ErrInfeasible
	}
	size := len(s.p.Threads[t].Blocks)
	if cs < s.pc[t] || cs > size {
		return ErrInfeasible
	}
	for b := s.pc[t]; b < cs; b++ {
		if err := s.execBlock(t, b, nondet); err != nil {
			return err
		}
		s.pc[t] = b + 1
	}
	s.pc[t] = cs
	return nil
}

func (s *State) execBlock(t, b int, nondet NondetFn) error {
	blk := s.p.Threads[t].Blocks[b]
	for i, step := range blk {
		if !s.guardsHold(step.Guards) {
			continue
		}
		if err := s.execOp(t, b, i, step.Op, nondet); err != nil {
			return err
		}
	}
	return nil
}

func (s *State) guardsHold(gs []flatten.Guard) bool {
	for _, g := range gs {
		v := s.vals[g.Name] != 0
		if v == g.Neg {
			return false
		}
	}
	return true
}

func (s *State) execOp(t, b, i int, op flatten.Op, nondet NondetFn) error {
	switch o := op.(type) {
	case *flatten.AssignOp:
		var v int64
		if _, ok := o.RHS.(*prog.Nondet); ok {
			v = s.wrap(nondet(t, b, i))
			if s.types[o.LHS.BaseName()].Kind == prog.KindBool {
				// Boolean non-determinism is a single bit.
				v = boolToInt(v != 0)
			}
		} else {
			v = s.eval(o.RHS)
		}
		s.assign(o.LHS, v)
		return nil
	case *flatten.AssumeOp:
		if s.eval(o.Cond) == 0 {
			return ErrInfeasible
		}
		return nil
	case *flatten.AssertOp:
		if s.eval(o.Cond) == 0 {
			return &Violation{Thread: t, Block: b, Src: o.Src}
		}
		return nil
	case *flatten.LockOp:
		if s.vals[o.Mutex] != 0 {
			return ErrInfeasible // blocking acquire: interleaving infeasible
		}
		s.vals[o.Mutex] = s.wrap(int64(t) + 1)
		return nil
	case *flatten.UnlockOp:
		s.vals[o.Mutex] = 0
		return nil
	case *flatten.CreateOp:
		for _, a := range o.Args {
			s.vals[a.Dest] = s.eval(a.Src)
		}
		s.act[o.Target] = true
		s.assign(o.Tid, s.wrap(int64(o.Target)))
		return nil
	case *flatten.JoinOp:
		tid := s.eval(o.Tid)
		if tid < 0 || tid >= int64(len(s.p.Threads)) {
			return ErrInfeasible
		}
		if !s.Terminated(int(tid)) {
			return ErrInfeasible
		}
		return nil
	}
	panic(fmt.Sprintf("interp: unknown op %T", op))
}

func (s *State) assign(lv prog.LValue, v int64) {
	switch x := lv.(type) {
	case *prog.VarRef:
		s.vals[x.Name] = v
	case *prog.IndexRef:
		idx := s.unsigned(s.eval(x.Index))
		a := s.arrays[x.Name]
		if idx >= 0 && idx < int64(len(a)) {
			a[idx] = v
		}
		// Out-of-bounds writes are dropped, matching the encoder's
		// symbolic Store semantics.
	default:
		panic(fmt.Sprintf("interp: unknown l-value %T", lv))
	}
}

// eval evaluates an expression; Booleans are 0/1.
func (s *State) eval(e prog.Expr) int64 {
	switch x := e.(type) {
	case *prog.IntLit:
		return s.wrap(x.Value)
	case *prog.BoolLit:
		if x.Value {
			return 1
		}
		return 0
	case *prog.VarRef:
		return s.vals[x.Name]
	case *prog.IndexRef:
		idx := s.unsigned(s.eval(x.Index))
		a := s.arrays[x.Name]
		if idx >= 0 && idx < int64(len(a)) {
			return a[idx]
		}
		return 0 // out-of-bounds reads yield the default value
	case *prog.UnaryExpr:
		v := s.eval(x.X)
		switch x.Op {
		case prog.OpNeg:
			return s.wrap(-v)
		case prog.OpNot:
			if v == 0 {
				return 1
			}
			return 0
		case prog.OpBitNot:
			return s.wrap(^v)
		}
	case *prog.BinaryExpr:
		a := s.eval(x.X)
		// Short-circuit operators first.
		switch x.Op {
		case prog.OpLAnd:
			if a == 0 {
				return 0
			}
			return boolToInt(s.eval(x.Y) != 0)
		case prog.OpLOr:
			if a != 0 {
				return 1
			}
			return boolToInt(s.eval(x.Y) != 0)
		}
		b := s.eval(x.Y)
		switch x.Op {
		case prog.OpAdd:
			return s.wrap(a + b)
		case prog.OpSub:
			return s.wrap(a - b)
		case prog.OpMul:
			return s.wrap(a * b)
		case prog.OpDiv:
			// Power-of-two divisor (checked); unsigned semantics.
			return s.wrap(s.unsigned(a) / s.unsigned(b))
		case prog.OpMod:
			return s.wrap(s.unsigned(a) % s.unsigned(b))
		case prog.OpAnd:
			return s.wrap(a & b)
		case prog.OpOr:
			return s.wrap(a | b)
		case prog.OpXor:
			return s.wrap(a ^ b)
		case prog.OpShl:
			return s.wrap(a << uint(s.unsigned(b)))
		case prog.OpShr:
			// Logical shift on the W-bit unsigned representation.
			return s.wrap(s.unsigned(a) >> uint(s.unsigned(b)))
		case prog.OpLt:
			return boolToInt(a < b)
		case prog.OpLe:
			return boolToInt(a <= b)
		case prog.OpGt:
			return boolToInt(a > b)
		case prog.OpGe:
			return boolToInt(a >= b)
		case prog.OpEq:
			return boolToInt(a == b)
		case prog.OpNe:
			return boolToInt(a != b)
		}
	case *prog.Nondet:
		panic("interp: free-standing non-deterministic value")
	}
	panic(fmt.Sprintf("interp: unknown expression %T", e))
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ContextChoice is one scheduler decision: thread and context-switch
// point (the paper's tid[c] and cs[c]).
type ContextChoice struct {
	Thread int
	Cs     int
}

// Replay executes a complete schedule from the initial state (possibly
// adjusted via SetVar). It returns the violation if one is reached, nil
// if the schedule runs to completion safely, or ErrInfeasible.
func (s *State) Replay(schedule []ContextChoice, nondet NondetFn) error {
	for _, c := range schedule {
		if err := s.ExecContext(c.Thread, c.Cs, nondet); err != nil {
			return err
		}
	}
	return nil
}
