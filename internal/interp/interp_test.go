package interp

import (
	"testing"

	"repro/internal/flatten"
	"repro/internal/unfold"
	"repro/prog"
)

func mustFlat(t *testing.T, src string, u int) *flatten.Program {
	t.Helper()
	p, err := prog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	up, err := unfold.Unfold(p, unfold.Options{Unwind: u})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := flatten.Flatten(up)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

const fibSrc = `
int i, j;

void t1() {
  int k = 0;
  while (k < 1) {
    i = i + j;
    k = k + 1;
  }
}

void t2() {
  int k = 0;
  while (k < 1) {
    j = j + i;
    k = k + 1;
  }
}

void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 3);
  assert(i < 3);
}
`

func TestSequentialExecution(t *testing.T) {
	src := `
int g;
void main() {
  int x = 20;
  g = x + 22;
  assert(g == 42);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet)
	if err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if st.Var("g") != 42 {
		t.Fatalf("g = %d", st.Var("g"))
	}
	if !st.Terminated(0) || !st.AllTerminated() {
		t.Fatal("main not terminated")
	}
}

func TestAssertionViolationDetected(t *testing.T) {
	src := `void main() { assert(false); }`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet)
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("want violation, got %v", err)
	}
	if v.Thread != 0 {
		t.Fatalf("violation thread %d", v.Thread)
	}
	if v.Error() == "" {
		t.Fatal("empty violation message")
	}
}

func TestAssumePrunes(t *testing.T) {
	src := `void main() { assume(false); assert(false); }`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet)
	if err != ErrInfeasible {
		t.Fatalf("want infeasible, got %v", err)
	}
}

func TestWidthWrapping(t *testing.T) {
	src := `
int g;
void main() {
  int x = 127;
  g = x + 1;
  assert(g < 0);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{Width: 8})
	if err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet); err != nil {
		t.Fatalf("8-bit wrap: %v", err)
	}
	if st.Var("g") != -128 {
		t.Fatalf("g = %d, want -128", st.Var("g"))
	}
	// With 16 bits the assert must fail.
	st16 := NewState(fp, Options{Width: 16})
	err := st16.ExecContext(0, fp.Threads[0].Size(), ZeroNondet)
	if _, ok := err.(*Violation); !ok {
		t.Fatalf("16-bit: want violation, got %v", err)
	}
}

func TestArraySemantics(t *testing.T) {
	src := `
int a[3];
void main() {
  int x;
  a[0] = 5;
  a[1] = 6;
  a[2] = 7;
  x = a[1];
  assert(x == 6);
  x = a[200];        // out-of-bounds read yields 0
  assert(x == 0);
  a[250] = 9;        // out-of-bounds write dropped
  assert(a[0] == 5);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	if err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet); err != nil {
		t.Fatalf("array semantics: %v", err)
	}
}

func TestLockBlocksSecondAcquire(t *testing.T) {
	src := `
mutex m;
int g;
void w() { lock(m); g = g + 1; unlock(m); }
void main() {
  int t;
  lock(m);
  t = create(w);
  g = 10;
  unlock(m);
}
`
	fp := mustFlat(t, src, 1)
	// Main: lock, create, g=10, unlock -> 4 blocks. Worker: lock, store,
	// unlock -> 3 blocks.
	st := NewState(fp, Options{})
	// Main runs lock+create (blocks 0..1).
	if err := st.ExecContext(0, 2, ZeroNondet); err != nil {
		t.Fatalf("main prefix: %v", err)
	}
	// Worker tries to lock: must be infeasible.
	st2 := st.Clone()
	if err := st2.ExecContext(1, 1, ZeroNondet); err != ErrInfeasible {
		t.Fatalf("second acquire: want infeasible, got %v", err)
	}
	// After main unlocks, the worker can proceed.
	if err := st.ExecContext(0, 4, ZeroNondet); err != nil {
		t.Fatalf("main rest: %v", err)
	}
	if err := st.ExecContext(1, 3, ZeroNondet); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if st.Var("g") != 11 {
		t.Fatalf("g = %d", st.Var("g"))
	}
}

func TestJoinBlocksUntilTermination(t *testing.T) {
	src := `
int g;
void w() { g = 1; }
void main() {
  int t;
  t = create(w);
  join(t);
  g = 2;
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	// Main creates (block 0), then tries to join before the worker ran.
	if err := st.ExecContext(0, 1, ZeroNondet); err != nil {
		t.Fatalf("create: %v", err)
	}
	st2 := st.Clone()
	if err := st2.ExecContext(0, 2, ZeroNondet); err != ErrInfeasible {
		t.Fatalf("early join: want infeasible, got %v", err)
	}
	// Run the worker, then join succeeds.
	if err := st.ExecContext(1, 1, ZeroNondet); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := st.ExecContext(0, 3, ZeroNondet); err != nil {
		t.Fatalf("join+store: %v", err)
	}
	if st.Var("g") != 2 {
		t.Fatalf("g = %d", st.Var("g"))
	}
}

func TestInactiveThreadCannotRun(t *testing.T) {
	src := `
int g;
void w() { g = 1; }
void main() {
  int t;
  g = 5;
  t = create(w);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	if err := st.ExecContext(1, 1, ZeroNondet); err != ErrInfeasible {
		t.Fatalf("inactive thread: want infeasible, got %v", err)
	}
}

func TestThreadArgumentsDelivered(t *testing.T) {
	src := `
int g;
void w(int a, bool b) {
  if (b) { g = a; }
}
void main() {
  int t;
  t = create(w, 41, true);
  join(t);
  assert(g == 41);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	if err := st.ExecContext(0, 1, ZeroNondet); err != nil {
		t.Fatal(err)
	}
	if err := st.ExecContext(1, fp.Threads[1].Size(), ZeroNondet); err != nil {
		t.Fatal(err)
	}
	if err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet); err != nil {
		t.Fatalf("final: %v", err)
	}
	if st.Var("g") != 41 {
		t.Fatalf("g = %d", st.Var("g"))
	}
}

func TestNondetInjection(t *testing.T) {
	src := `
int g;
void main() {
  int x;
  x = *;
  g = x;
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	inject := func(thread, block, step int) int64 { return 99 }
	if err := st.ExecContext(0, fp.Threads[0].Size(), inject); err != nil {
		t.Fatal(err)
	}
	if st.Var("g") != 99 {
		t.Fatalf("g = %d", st.Var("g"))
	}
}

func TestFibonacciExploration(t *testing.T) {
	fp := mustFlat(t, fibSrc, 1)
	// Main blocks: i=1, j=1, create, create, join, join, assert, assert.
	if fp.Threads[0].Size() != 8 {
		t.Fatalf("main size: %d", fp.Threads[0].Size())
	}
	// With 3 contexts the bug is unreachable (needs main,t1,t2,main).
	st := NewState(fp, Options{})
	res, err := Explore(st, ExploreOptions{Contexts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation with 3 contexts: %+v", res.Violation)
	}
	// With 4 contexts the alternation main,t1,t2,main reaches j=3.
	res, err = Explore(st, ExploreOptions{Contexts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation with 4 contexts")
	}
	// The reported schedule must replay to the same violation.
	replay := NewState(fp, Options{})
	rerr := replay.Replay(res.Schedule, ZeroNondet)
	if v, ok := rerr.(*Violation); !ok {
		t.Fatalf("replay: want violation, got %v", rerr)
	} else if v.Src != res.Violation.Src {
		t.Fatalf("replay violation %q != explore violation %q", v.Src, res.Violation.Src)
	}
}

func TestExplorationCountsExecutions(t *testing.T) {
	src := `
int g;
void w() { g = g + 1; }
void main() {
  int t;
  t = create(w);
  g = g + 1;
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	res, err := Explore(st, ExploreOptions{Contexts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions == 0 {
		t.Fatal("no executions counted")
	}
}

func TestExploreNondetBool(t *testing.T) {
	src := `
bool flag;
void main() {
  bool b;
  b = *;
  if (b) {
    flag = true;
  }
  assert(!flag || !b);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	res, err := Explore(st, ExploreOptions{Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("nondet bool violation not found")
	}
}

func TestExploreNondetIntDomain(t *testing.T) {
	src := `
int g;
void main() {
  int x;
  x = *;
  assume(x >= 0);
  assume(x < 4);
  g = x;
  assert(g != 3);
}
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	// Domain 2 cannot reach x=3.
	res, err := Explore(st, ExploreOptions{Contexts: 2, NondetDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal("domain 2 should not reach x=3")
	}
	// Domain 4 finds it.
	res, err = Explore(st, ExploreOptions{Contexts: 2, NondetDomain: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("domain 4 should reach x=3")
	}
}

func TestMaxExecutionsGuard(t *testing.T) {
	fp := mustFlat(t, fibSrc, 1)
	st := NewState(fp, Options{})
	if _, err := Explore(st, ExploreOptions{Contexts: 6, MaxExecutions: 10}); err == nil {
		t.Fatal("expected MaxExecutions error")
	}
}

func TestCloneIsolation(t *testing.T) {
	src := `
int g;
int a[2];
void main() { g = 1; a[0] = 2; }
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	c := st.Clone()
	if err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet); err != nil {
		t.Fatal(err)
	}
	if c.Var("g") != 0 {
		t.Fatal("clone shares scalar state")
	}
	if c.arrays["a"][0] != 0 {
		t.Fatal("clone shares array state")
	}
	if c.PC(0) != 0 {
		t.Fatal("clone shares pc")
	}
}

func TestSetVarAndAccessors(t *testing.T) {
	src := `
int g;
int a[2];
void main() { assert(g == 7); assert(a[1] == 3); }
`
	fp := mustFlat(t, src, 1)
	st := NewState(fp, Options{})
	st.SetVar("g", 7)
	st.SetArrayElem("a", 1, 3)
	if err := st.ExecContext(0, fp.Threads[0].Size(), ZeroNondet); err != nil {
		t.Fatalf("injected state: %v", err)
	}
	if !st.Active(0) {
		t.Fatal("main inactive")
	}
}

func TestInvalidContextChoices(t *testing.T) {
	fp := mustFlat(t, fibSrc, 1)
	st := NewState(fp, Options{})
	if err := st.ExecContext(-1, 0, ZeroNondet); err != ErrInfeasible {
		t.Fatal("negative thread")
	}
	if err := st.ExecContext(99, 0, ZeroNondet); err != ErrInfeasible {
		t.Fatal("thread out of range")
	}
	if err := st.ExecContext(0, 99, ZeroNondet); err != ErrInfeasible {
		t.Fatal("cs out of range")
	}
	st.pc[0] = 3
	if err := st.ExecContext(0, 1, ZeroNondet); err != ErrInfeasible {
		t.Fatal("cs below pc")
	}
}
