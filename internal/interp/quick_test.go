package interp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests for the interpreter's fixed-width arithmetic: the
// wrap/unsigned pair must satisfy the two's-complement laws the encoder
// relies on (testing/quick over random 64-bit inputs).

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(seed))}
}

func stateW(w int) *State {
	return &State{opts: Options{Width: w}}
}

func TestWrapIdempotent(t *testing.T) {
	s := stateW(8)
	prop := func(v int64) bool {
		return s.wrap(s.wrap(v)) == s.wrap(v)
	}
	if err := quick.Check(prop, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

func TestWrapRange(t *testing.T) {
	for _, w := range []int{1, 4, 8, 16} {
		s := stateW(w)
		lo, hi := int64(-1)<<uint(w-1), int64(1)<<uint(w-1)-1
		prop := func(v int64) bool {
			x := s.wrap(v)
			return x >= lo && x <= hi
		}
		if err := quick.Check(prop, quickCfg(int64(w))); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
	}
}

func TestWrapUnsignedRoundTrip(t *testing.T) {
	s := stateW(8)
	prop := func(v int64) bool {
		// unsigned and wrap agree modulo 2^w.
		return s.unsigned(s.wrap(v)) == v&0xff && s.wrap(s.unsigned(v)) == s.wrap(v)
	}
	if err := quick.Check(prop, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

func TestWrapAdditionHomomorphic(t *testing.T) {
	s := stateW(8)
	prop := func(a, b int64) bool {
		return s.wrap(s.wrap(a)+s.wrap(b)) == s.wrap(a+b)
	}
	if err := quick.Check(prop, quickCfg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestWrapMultiplicationHomomorphic(t *testing.T) {
	s := stateW(8)
	prop := func(a, b int64) bool {
		return s.wrap(s.wrap(a)*s.wrap(b)) == s.wrap(a*b)
	}
	if err := quick.Check(prop, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}

func TestWrapWideWidth(t *testing.T) {
	s := stateW(64)
	prop := func(v int64) bool { return s.wrap(v) == v }
	if err := quick.Check(prop, quickCfg(5)); err != nil {
		t.Fatal(err)
	}
}

// TestTapeEnumeratesAllSequences: the explorer's choice tape must
// enumerate exactly the product of the choice domains, each sequence
// once.
func TestTapeEnumeratesAllSequences(t *testing.T) {
	domains := []int{3, 2, 4}
	want := 3 * 2 * 4
	tp := &tape{}
	seen := map[[3]int]bool{}
	count := 0
	for {
		var seq [3]int
		for i, d := range domains {
			seq[i] = tp.choose(d)
		}
		if seen[seq] {
			t.Fatalf("sequence %v enumerated twice", seq)
		}
		seen[seq] = true
		count++
		if !tp.next() {
			break
		}
	}
	if count != want {
		t.Fatalf("enumerated %d sequences, want %d", count, want)
	}
}

// TestTapeVariableDomains: domains that depend on earlier choices are
// enumerated consistently (the reachable tree is covered exactly).
func TestTapeVariableDomains(t *testing.T) {
	tp := &tape{}
	total := 0
	for {
		first := tp.choose(2)
		// The second domain depends deterministically on the first.
		second := 2
		if first == 1 {
			second = 3
		}
		_ = tp.choose(second)
		total++
		if !tp.next() {
			break
		}
	}
	if total != 2+3 {
		t.Fatalf("enumerated %d leaves, want 5", total)
	}
}
