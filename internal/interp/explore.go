package interp

import (
	"fmt"
)

// ExploreOptions configures the exhaustive context-bounded explorer.
type ExploreOptions struct {
	// Contexts is the context bound (number of execution contexts).
	Contexts int
	// Width is the integer width.
	Width int
	// NondetDomain is the number of values enumerated for each
	// non-deterministic integer assignment (0..NondetDomain-1); Booleans
	// always enumerate {0,1}. Default 2. Ground truth is exact only for
	// programs whose behaviour does not depend on values outside the
	// domain.
	NondetDomain int64
	// MaxExecutions caps the number of explored executions (0 =
	// unbounded); exceeded exploration returns an error.
	MaxExecutions int64
}

// ExploreResult is the verdict of an exhaustive exploration.
type ExploreResult struct {
	// Violation is the first reachable assertion failure, if any.
	Violation *Violation
	// Schedule reproduces the violation (valid when Violation != nil).
	Schedule []ContextChoice
	// Executions is the number of complete interleavings enumerated.
	Executions int64
	// Infeasible is the number of pruned interleavings.
	Infeasible int64
}

// Explore enumerates every context-bounded execution of the flattened
// program (thread choice, context-switch point, and non-deterministic
// values all enumerated exhaustively via a choice tape) and reports
// whether an assertion violation is reachable. The first context is
// pinned to the main thread, matching the encoder (Sect. 3.3).
func Explore(st0 *State, opts ExploreOptions) (*ExploreResult, error) {
	if opts.Contexts < 1 {
		return nil, fmt.Errorf("interp: context bound must be >= 1")
	}
	if opts.NondetDomain == 0 {
		opts.NondetDomain = 2
	}
	res := &ExploreResult{}
	tape := &tape{}
	for {
		st := st0.Clone()
		violation, schedule := runOnce(st, opts, tape, res)
		if violation != nil {
			res.Violation = violation
			res.Schedule = schedule
			return res, nil
		}
		if !tape.next() {
			return res, nil
		}
		if opts.MaxExecutions > 0 && res.Executions+res.Infeasible > opts.MaxExecutions {
			return nil, fmt.Errorf("interp: exploration exceeded %d executions", opts.MaxExecutions)
		}
	}
}

// runOnce executes one interleaving driven by the tape.
func runOnce(st *State, opts ExploreOptions, tp *tape, res *ExploreResult) (*Violation, []ContextChoice) {
	nthreads := len(st.p.Threads)
	var schedule []ContextChoice
	nondet := func(thread, block, step int) int64 {
		// Boolean nondets are detected by the assigned variable's type in
		// the caller; here we enumerate the integer domain. Booleans use
		// the same domain truncated to {0,1} by wrap-and-test semantics,
		// so a domain >= 2 is exact for them.
		return int64(tp.choose(int(opts.NondetDomain)))
	}
	for c := 0; c < opts.Contexts; c++ {
		if st.AllTerminated() {
			break
		}
		var t int
		if c == 0 {
			t = 0 // first context is the main thread
		} else {
			t = tp.choose(nthreads)
		}
		if !st.act[t] {
			res.Infeasible++
			return nil, nil
		}
		size := len(st.p.Threads[t].Blocks)
		span := size - st.pc[t] // possible cs values: pc..size
		cs := st.pc[t] + tp.choose(span+1)
		err := st.ExecContext(t, cs, nondet)
		schedule = append(schedule, ContextChoice{Thread: t, Cs: cs})
		if v, ok := err.(*Violation); ok {
			return v, schedule
		}
		if err != nil {
			res.Infeasible++
			return nil, nil
		}
	}
	res.Executions++
	return nil, nil
}

// tape enumerates sequences of bounded choices (depth-first). Each run
// consumes choices left to right; next() advances to the lexicographically
// next sequence, returning false when the space is exhausted.
type tape struct {
	choices []int
	limits  []int
	pos     int
}

func (t *tape) choose(n int) int {
	if n <= 0 {
		n = 1
	}
	if t.pos < len(t.choices) {
		c := t.choices[t.pos]
		// The limit can shrink between runs if earlier choices changed
		// the reachable state; clamp defensively.
		if c >= n {
			c = n - 1
			t.choices[t.pos] = c
			t.limits[t.pos] = n
			t.choices = t.choices[:t.pos+1]
			t.limits = t.limits[:t.pos+1]
		} else {
			t.limits[t.pos] = n
		}
		t.pos++
		return c
	}
	t.choices = append(t.choices, 0)
	t.limits = append(t.limits, n)
	t.pos++
	return 0
}

// next advances to the next choice sequence; it returns false when all
// sequences have been enumerated.
func (t *tape) next() bool {
	t.pos = 0
	for i := len(t.choices) - 1; i >= 0; i-- {
		if t.choices[i]+1 < t.limits[i] {
			t.choices[i]++
			t.choices = t.choices[:i+1]
			t.limits = t.limits[:i+1]
			return true
		}
	}
	return false
}
