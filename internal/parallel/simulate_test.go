package parallel

import (
	"context"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func TestSimulateMatchesSolveVerdicts(t *testing.T) {
	// Simulate and Solve must agree on verdict and winner semantics.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1))
	f.AddClause(cnf.NegLit(2))
	f.AddClause(cnf.PosLit(3), cnf.PosLit(4))
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	for _, workers := range []int{1, 2, 4} {
		sim, err := Simulate(context.Background(), f, parts, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		real, err := Solve(context.Background(), f, parts, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if sim.Status != real.Status {
			t.Fatalf("workers=%d: simulate %v, solve %v", workers, sim.Status, real.Status)
		}
		if sim.Status == sat.Sat {
			// Winner may legitimately differ (scheduling), but both must
			// name a satisfiable partition with a valid model.
			assign := make([]bool, f.NumVars+1)
			copy(assign[1:], sim.Model)
			if !f.Eval(assign) {
				t.Fatalf("workers=%d: simulated model invalid", workers)
			}
		}
	}
}

func TestSimulateUnsatMakespan(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Simulate(context.Background(), f, parts, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if len(res.Instances) != 4 {
		t.Fatalf("instances %d", len(res.Instances))
	}
	// The 2-worker makespan lies between max instance time and the total.
	var total, max time.Duration
	for _, in := range res.Instances {
		total += in.Time
		if in.Time > max {
			max = in.Time
		}
	}
	if res.Wall < max || res.Wall > total {
		t.Fatalf("wall %v outside [max %v, total %v]", res.Wall, max, total)
	}
	// With one worker the makespan is exactly the total.
	res1, err := Simulate(context.Background(), f, parts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var total1 time.Duration
	for _, in := range res1.Instances {
		total1 += in.Time
	}
	if res1.Wall != total1 {
		t.Fatalf("1-worker wall %v != total %v", res1.Wall, total1)
	}
}

func TestSimulateWinnerIsEarliestFinisher(t *testing.T) {
	// Partition 3 (x1=1, x2=1) is the only satisfiable one.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1))
	f.AddClause(cnf.PosLit(2))
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Simulate(context.Background(), f, parts, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat || res.Winner != 3 {
		t.Fatalf("status %v winner %d", res.Status, res.Winner)
	}
	for _, a := range parts[3].Assumptions {
		val := res.Model[a.Var()-1]
		if a.Neg() {
			val = !val
		}
		if !val {
			t.Fatalf("model violates winning assumption %v", a)
		}
	}
}

func TestSimulateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1}, 2)
	res, err := Simulate(ctx, f, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v", res.Status)
	}
}

func TestSimulateCertify(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Simulate(context.Background(), f, parts, Options{Workers: 2, CertifyUnsat: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || !res.Certified {
		t.Fatalf("status %v certified %v", res.Status, res.Certified)
	}
}

func TestSolveCertify(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1}, 2)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 2, CertifyUnsat: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || !res.Certified {
		t.Fatalf("status %v certified %v", res.Status, res.Certified)
	}
}

func TestSimulateNoPartitions(t *testing.T) {
	if _, err := Simulate(context.Background(), cnf.New(), nil, Options{}); err == nil {
		t.Fatal("expected error")
	}
}
