package parallel

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/journal"
	"repro/internal/sat"
)

func openTestJournal(t *testing.T, path string, nparts int) *journal.Journal {
	t.Helper()
	j, err := journal.Open(path, journal.Manifest{
		ProgramSHA256: journal.HashProgram("parallel-test"),
		Unwind:        1, Contexts: 2, Width: 8, Partitions: nparts,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// A deliberately hard chunk under a tiny conflict budget: every
// instance must degrade to Unknown with the conflict budget named, and
// the run must complete instead of grinding through PHP search.
func TestChunkConflictBudgetExhausts(t *testing.T) {
	f := pigeonhole(7)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, ChunkConflicts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	for _, inst := range res.Instances {
		if inst.Status != sat.Unknown {
			t.Fatalf("partition %d: status %v", inst.Partition, inst.Status)
		}
		if inst.Cause != sat.CauseConflictBudget {
			t.Fatalf("partition %d: cause %v, want conflict-budget", inst.Partition, inst.Cause)
		}
	}
}

// A deliberately hard chunk under a small wall-clock budget: the run
// completes within the budget (plus slack), reporting per-chunk Unknown
// with the timeout named — the acceptance scenario for poison chunks.
func TestChunkTimeoutExhausts(t *testing.T) {
	f := pigeonhole(9) // far beyond a 30ms budget
	parts := partitionsOn([]cnf.Var{1}, 2)
	start := time.Now()
	res, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, ChunkTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v: wall-clock budget did not bound the chunk", elapsed)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	for _, inst := range res.Instances {
		if inst.Cause != sat.CauseTimeout {
			t.Fatalf("partition %d: cause %v, want timeout", inst.Partition, inst.Cause)
		}
	}
}

// Context cancellation must be distinguishable from budget exhaustion:
// cancelled instances carry CauseCancelled, not a budget cause.
func TestCancelledCauseDistinct(t *testing.T) {
	f := pigeonhole(9)
	parts := partitionsOn([]cnf.Var{1}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	res, err := Solve(ctx, f, parts, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	sawCancelled := false
	for _, inst := range res.Instances {
		if inst.Status != sat.Unknown {
			continue
		}
		if inst.Cause.Budgeted() {
			t.Fatalf("partition %d: cancellation misreported as %v", inst.Partition, inst.Cause)
		}
		if inst.Cause == sat.CauseCancelled {
			sawCancelled = true
		}
	}
	if !sawCancelled {
		t.Fatal("no instance reported CauseCancelled after context cancellation")
	}
}

// First run journals every UNSAT verdict; the resumed run replays them
// without re-solving (zero search statistics, Resumed flags set).
func TestJournalResumeSkipsCommitted(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 4)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 4, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || res.Resumed != 0 {
		t.Fatalf("first run: status %v resumed %d", res.Status, res.Resumed)
	}
	if j.Commits() != 4 {
		t.Fatalf("first run committed %d records, want 4", j.Commits())
	}
	j.Close()

	j2 := openTestJournal(t, path, 4)
	res2, err := Solve(context.Background(), f, parts, Options{Workers: 4, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("resumed run: status %v", res2.Status)
	}
	if res2.Resumed != 4 {
		t.Fatalf("resumed run replayed %d instances, want 4", res2.Resumed)
	}
	for _, inst := range res2.Instances {
		if !inst.Resumed {
			t.Fatalf("partition %d was re-solved on resume", inst.Partition)
		}
		if inst.Stats.Decisions != 0 || inst.Stats.Conflicts != 0 {
			t.Fatalf("partition %d has search stats on resume: %+v", inst.Partition, inst.Stats)
		}
	}
	if j2.Commits() != 4 {
		t.Fatalf("resume re-committed: %d records", j2.Commits())
	}
}

// A journaled SAT verdict resumes to Sat with a freshly derived model
// (models are not journaled), preserving the winning partition.
func TestJournalResumeSatPartition(t *testing.T) {
	f := cnf.New()
	f.AddClause(cnf.PosLit(1)) // forces partition 1 (v1 true)
	f.AddClause(cnf.PosLit(2), cnf.PosLit(3))
	parts := partitionsOn([]cnf.Var{1}, 2)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 2)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat || res.Winner != 1 {
		t.Fatalf("first run: status %v winner %d", res.Status, res.Winner)
	}
	j.Close()

	j2 := openTestJournal(t, path, 2)
	res2, err := Solve(context.Background(), f, parts, Options{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Sat || res2.Winner != 1 {
		t.Fatalf("resumed run: status %v winner %d", res2.Status, res2.Winner)
	}
	if res2.Model == nil || !res2.Model[0] {
		t.Fatalf("resumed run model %v, want v1 true", res2.Model)
	}
}

// Budget-exhausted verdicts are journaled (they are deterministic under
// the same budgets), cancelled ones are not (they are in-flight work a
// resume must redo).
func TestJournalCommitPolicy(t *testing.T) {
	f := pigeonhole(7)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 4)
	if _, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, ChunkConflicts: 5, Journal: j,
	}); err != nil {
		t.Fatal(err)
	}
	recs := j.Committed()
	if len(recs) != 4 {
		t.Fatalf("budget exhaustions committed %d records, want 4", len(recs))
	}
	for _, rec := range recs {
		if rec.Verdict != "UNKNOWN" || rec.Cause != "conflict-budget" {
			t.Fatalf("record %+v, want UNKNOWN/conflict-budget", rec)
		}
	}
	j.Close()

	// Cancelled instances: nothing further is committed.
	path2 := filepath.Join(t.TempDir(), "run2.wal")
	j2 := openTestJournal(t, path2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, pigeonhole(9), partitionsOn([]cnf.Var{1}, 2), Options{
		Workers: 2, Journal: j2,
	}); err != nil {
		t.Fatal(err)
	}
	if j2.Commits() != 0 {
		t.Fatalf("cancelled run committed %d records, want 0", j2.Commits())
	}
}

// Simulate honours the same budget/cause contract as Solve.
func TestSimulateConflictBudget(t *testing.T) {
	f := pigeonhole(7)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Simulate(context.Background(), f, parts, Options{
		Workers: 2, ChunkConflicts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	for _, inst := range res.Instances {
		if inst.Cause != sat.CauseConflictBudget {
			t.Fatalf("partition %d: cause %v", inst.Partition, inst.Cause)
		}
	}
}

// Simulate resumes from a journal written by Solve: the two paths share
// one record format.
func TestSimulateResumesFromSolveJournal(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 4)
	if _, err := Solve(context.Background(), f, parts, Options{Workers: 4, Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openTestJournal(t, path, 4)
	res, err := Simulate(context.Background(), f, parts, Options{Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || res.Resumed != 4 {
		t.Fatalf("simulate resume: status %v resumed %d", res.Status, res.Resumed)
	}
}

// Partial resume: committed records scattered among uncommitted
// partitions — the normal post-crash shape. The replay happens before
// any solver goroutine starts, so this is race-clean under -race, and
// the uncommitted partitions are the only ones re-solved.
func TestJournalPartialResumeScattered(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	path := filepath.Join(t.TempDir(), "run.wal")

	// Hand-build a crash's journal: partitions 0 and 2 committed, 1 and
	// 3 in-flight (absent).
	j := openTestJournal(t, path, 4)
	for _, idx := range []int{0, 2} {
		if err := j.Commit(journal.ChunkRecord{
			From: idx, To: idx, Verdict: "UNSAT", Winner: -1, Millis: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2 := openTestJournal(t, path, 4)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("status %v, want Unsat", res.Status)
	}
	if res.Resumed != 2 {
		t.Fatalf("resumed %d partitions, want 2", res.Resumed)
	}
	if len(res.Instances) != 4 {
		t.Fatalf("%d instances, want 4", len(res.Instances))
	}
	for _, inst := range res.Instances {
		replayed := inst.Partition == 0 || inst.Partition == 2
		if inst.Resumed != replayed {
			t.Fatalf("partition %d: Resumed = %v", inst.Partition, inst.Resumed)
		}
	}
	if j2.Commits() != 4 {
		t.Fatalf("journal holds %d records after resume, want 4", j2.Commits())
	}
}

// A journaled SAT verdict that does not re-derive (journal and formula
// disagree) must fail the run, not silently fall back to the UNSAT
// default — that would be a safety inversion.
func TestJournalSatRederiveMismatchFails(t *testing.T) {
	f := cnf.New()
	f.AddClause(cnf.PosLit(1)) // partition 0 (v1 false) is UNSAT
	f.AddClause(cnf.PosLit(2), cnf.PosLit(3))
	parts := partitionsOn([]cnf.Var{1}, 2)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 2)
	if err := j.Commit(journal.ChunkRecord{From: 0, To: 0, Verdict: "SAT", Winner: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(context.Background(), f, parts, Options{Workers: 1, Journal: j}); err == nil {
		t.Fatal("resume against a disagreeing SAT record succeeded")
	}
}

// The model re-derivation for a journaled SAT verdict must not be cut
// short by this run's budgets: a committed counterexample outranks a
// smaller -chunk-conflicts on the resume command line.
func TestRederiveOptionsUnbudgeted(t *testing.T) {
	opts := Options{ChunkConflicts: 5, Solver: sat.Options{MaxConflicts: 9}}
	if got := opts.solverOptions(0).MaxConflicts; got != 5 {
		t.Fatalf("solverOptions folds to %d, want 5", got)
	}
	if got := opts.rederiveOptions(0).MaxConflicts; got != 0 {
		t.Fatalf("rederiveOptions keeps conflict budget %d, want unbounded", got)
	}
}

// A budget-exhausted verdict is terminal only under its own budgets:
// replayed when resumed with the same budget, re-solved (to a definite
// verdict) when the budget is lifted.
func TestJournalBudgetRaiseResolves(t *testing.T) {
	f := pigeonhole(7)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 4)
	if _, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, ChunkConflicts: 5, Journal: j,
	}); err != nil {
		t.Fatal(err)
	}
	if j.Commits() != 4 {
		t.Fatalf("first run committed %d records, want 4", j.Commits())
	}
	for _, rec := range j.Committed() {
		if rec.Conflicts != 5 {
			t.Fatalf("record %+v does not pin the conflict budget", rec)
		}
	}
	j.Close()

	// Same budget: the exhaustions replay, nothing is re-solved.
	j2 := openTestJournal(t, path, 4)
	res, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, ChunkConflicts: 5, Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown || res.Resumed != 4 {
		t.Fatalf("same-budget resume: status %v resumed %d, want Unknown/4", res.Status, res.Resumed)
	}
	j2.Close()

	// Lifted budget: every exhausted partition is re-solved to UNSAT.
	j3 := openTestJournal(t, path, 4)
	res2, err := Solve(context.Background(), f, parts, Options{Workers: 2, Journal: j3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("lifted-budget resume: status %v, want Unsat", res2.Status)
	}
	if res2.Resumed != 0 {
		t.Fatalf("lifted-budget resume replayed %d stale exhaustions", res2.Resumed)
	}
	j3.Close()
}

// Cancellation with a wall-clock budget armed must still report
// CauseCancelled and commit nothing: a cancelled partition is in-flight
// work a resume re-solves, never a terminal timeout.
func TestCancelWithTimerArmedStaysUncommitted(t *testing.T) {
	f := pigeonhole(9)
	parts := partitionsOn([]cnf.Var{1}, 2)
	path := filepath.Join(t.TempDir(), "run.wal")
	j := openTestJournal(t, path, 2)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	res, err := Solve(ctx, f, parts, Options{
		Workers: 2, ChunkTimeout: 10 * time.Minute, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range res.Instances {
		if inst.Cause == sat.CauseTimeout {
			t.Fatalf("partition %d: cancellation misreported as timeout", inst.Partition)
		}
	}
	if j.Commits() != 0 {
		t.Fatalf("cancelled run committed %d records", j.Commits())
	}
}
