package parallel

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/partition"
	"repro/internal/sat"
)

// Simulate performs the same analysis as Solve but computes the
// parallel wall-clock time deterministically instead of measuring it:
// every partition is solved sequentially (so the measured per-instance
// times are contention-free), and the k-core wall time is obtained by
// event simulation — partitions are assigned in order to the
// earliest-free processor, and the run ends at the earliest finish time
// of a satisfiable instance (first SAT wins, as in Solve) or at the
// makespan when all instances are unsatisfiable.
//
// The simulation is exact for this technique because the solver
// instances do not cooperate (the paper stresses this property: no
// clause exchange, communication only upon termination), so per-instance
// solving times are independent of co-scheduling. It is the tool used to
// reproduce the paper's speedup tables on hosts with fewer physical
// cores than the simulated machine — mirroring the paper's own protocol,
// which simulated a 128-core cluster by running 8-core chunks one after
// another and taking the maximum time.
func Simulate(ctx context.Context, f *cnf.Formula, parts []partition.Partition, opts Options) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("parallel: no partitions")
	}
	workers := opts.Workers
	if workers <= 0 || workers > len(parts) {
		workers = len(parts)
	}

	res := &Result{Status: sat.Unsat, Winner: -1}
	times := make([]time.Duration, len(parts))
	statuses := make([]sat.Status, len(parts))
	var winnerModel []bool
	committed := committedRecords(opts.Journal)
	anyUnknown := false

	for i, pt := range parts {
		if err := ctx.Err(); err != nil {
			res.Status = sat.Unknown
			return res, nil
		}

		// Resume path: replay the journaled verdict with its recorded
		// solve time, so the makespan simulation still covers the whole
		// partition set. Budget-exhausted records superseded by larger
		// budgets fall through and are re-solved.
		if rec, ok := committed[pt.Index]; ok && opts.replayable(rec, pt.Index) {
			inst := InstanceResult{
				Partition: pt.Index,
				Status:    statusFromString(rec.Verdict),
				Cause:     sat.ParseStopCause(rec.Cause),
				Resumed:   true,
				Time:      time.Duration(rec.Millis) * time.Millisecond,
			}
			times[i] = inst.Time
			statuses[i] = inst.Status
			res.Instances = append(res.Instances, inst)
			res.Resumed++
			if inst.Status == sat.Unknown {
				anyUnknown = true
			}
			continue
		}

		solver := sat.NewFromFormula(f, opts.solverOptions(pt.Index))
		opts.instrument(solver, pt.Index)
		if opts.CertifyUnsat || opts.KeepProofs {
			solver.EnableProof()
		}
		var timedOut atomic.Bool
		if opts.ChunkTimeout > 0 {
			timer := time.AfterFunc(opts.ChunkTimeout, func() {
				timedOut.Store(true)
				solver.Interrupt()
			})
			defer timer.Stop()
		}
		t0 := time.Now()
		status, err := solver.Solve(pt.Assumptions...)
		times[i] = time.Since(t0)
		cause := sat.CauseNone
		if err == sat.ErrMemBudget {
			status = sat.Unknown
			cause = sat.CauseMemory
		} else if err == sat.ErrInterrupted {
			status = sat.Unknown
			if timedOut.Load() {
				cause = sat.CauseTimeout
			} else {
				cause = sat.CauseCancelled
			}
		} else if err != nil {
			return nil, err
		} else if status == sat.Unknown {
			cause = sat.CauseConflictBudget
		}
		if status == sat.Unsat && opts.CertifyUnsat {
			// Checked outside the timed window: a real deployment would
			// certify offline.
			if cerr := sat.CheckRUP(f, pt.Assumptions, solver.ProofLog()); cerr != nil {
				return nil, fmt.Errorf("parallel: partition %d refutation proof failed: %w", pt.Index, cerr)
			}
		}
		statuses[i] = status
		if status == sat.Unknown {
			anyUnknown = true
		}
		inst := InstanceResult{
			Partition: pt.Index,
			Status:    status,
			Cause:     cause,
			Time:      times[i],
			Stats:     solver.Stats(),
		}
		if status == sat.Unsat && opts.KeepProofs {
			inst.Proof = solver.ProofLog()
		}
		if cerr := opts.commit(inst, ""); cerr != nil {
			return nil, fmt.Errorf("parallel: journal commit failed: %w", cerr)
		}
		res.Instances = append(res.Instances, inst)
		if status == sat.Sat && winnerModel == nil {
			winnerModel = solver.Model()
		}
	}

	// Event simulation: greedy assignment in partition order.
	procFree := make([]time.Duration, workers)
	finish := make([]time.Duration, len(parts))
	for i := range parts {
		p := 0
		for j := 1; j < workers; j++ {
			if procFree[j] < procFree[p] {
				p = j
			}
		}
		finish[i] = procFree[p] + times[i]
		procFree[p] = finish[i]
	}

	// First satisfiable finish wins; otherwise the makespan.
	bestSat := time.Duration(-1)
	bestIdx := -1
	for i, st := range statuses {
		if st == sat.Sat && (bestSat < 0 || finish[i] < bestSat) {
			bestSat = finish[i]
			bestIdx = i
		}
	}
	res.Certified = opts.CertifyUnsat
	if bestIdx >= 0 {
		res.Status = sat.Sat
		res.Winner = parts[bestIdx].Index
		// Re-solve the winning partition for its model if it was not the
		// first SAT instance encountered sequentially, or if the winner
		// was resumed from the journal (no model is journaled). The
		// re-solve runs without budgets, and a SAT verdict that fails to
		// re-derive is an inconsistency, not something to paper over.
		if winnerModel == nil || parts[bestIdx].Index != firstSatIndex(parts, statuses) {
			solver := sat.NewFromFormula(f, opts.rederiveOptions(parts[bestIdx].Index))
			st, err := solver.Solve(parts[bestIdx].Assumptions...)
			if err != nil || st != sat.Sat {
				return nil, fmt.Errorf("parallel: SAT verdict for partition %d failed to re-derive its model (status %v, err %v)", parts[bestIdx].Index, st, err)
			}
			winnerModel = solver.Model()
		}
		res.Model = winnerModel
		res.Wall = bestSat
		return res, nil
	}
	if anyUnknown {
		// Budget-exhausted or cancelled partitions keep the aggregate
		// from claiming Unsat over an incompletely explored space.
		res.Status = sat.Unknown
	}
	for _, t := range procFree {
		if t > res.Wall {
			res.Wall = t
		}
	}
	return res, nil
}

func firstSatIndex(parts []partition.Partition, statuses []sat.Status) int {
	for i, st := range statuses {
		if st == sat.Sat {
			return parts[i].Index
		}
	}
	return -1
}
