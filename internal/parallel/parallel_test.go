package parallel

import (
	"context"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/partition"
	"repro/internal/sat"
)

// pigeonhole builds the classic hard UNSAT family.
func pigeonhole(holes int) *cnf.Formula {
	pigeons := holes + 1
	f := cnf.New()
	v := func(p, h int) cnf.Var { return cnf.Var(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		var c []cnf.Lit
		for h := 0; h < holes; h++ {
			c = append(c, cnf.PosLit(v(p, h)))
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h)))
			}
		}
	}
	return f
}

// partitionsOn builds 2^p partitions over arbitrary variables of f.
func partitionsOn(vars []cnf.Var, parts int) []partition.Partition {
	out := make([]partition.Partition, parts)
	p := 0
	for 1<<uint(p) < parts {
		p++
	}
	for i := 0; i < parts; i++ {
		pt := partition.Partition{Index: i}
		for j := 0; j < p; j++ {
			lit := cnf.PosLit(vars[j])
			if i&(1<<uint(j)) == 0 {
				lit = lit.Not()
			}
			pt.Assumptions = append(pt.Assumptions, lit)
		}
		out[i] = pt
	}
	return out
}

func TestAllUnsat(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", res.Status)
	}
	if len(res.Instances) != 4 {
		t.Fatalf("instances: %d", len(res.Instances))
	}
	for _, in := range res.Instances {
		if in.Status != sat.Unsat {
			t.Fatalf("instance %d: %v", in.Partition, in.Status)
		}
	}
	if res.Winner != -1 {
		t.Fatalf("winner: %d", res.Winner)
	}
}

func TestFirstSatWins(t *testing.T) {
	// A satisfiable formula: the winning partition must provide a model
	// honouring its assumptions.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.PosLit(3), cnf.NegLit(4))
	f.NumVars = 4
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("want SAT, got %v", res.Status)
	}
	if res.Winner < 0 || res.Model == nil {
		t.Fatalf("winner %d, model %v", res.Winner, res.Model != nil)
	}
	// The model must satisfy the winning partition's assumptions.
	for _, pt := range parts {
		if pt.Index != res.Winner {
			continue
		}
		for _, a := range pt.Assumptions {
			val := res.Model[a.Var()-1]
			if a.Neg() {
				val = !val
			}
			if !val {
				t.Fatalf("model violates winning assumption %v", a)
			}
		}
	}
}

func TestSatInOnlyOnePartition(t *testing.T) {
	// Force satisfiability only in the partition where x1=1 and x2=0.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1))
	f.AddClause(cnf.NegLit(2))
	f.AddClause(cnf.PosLit(3))
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	res, err := Solve(context.Background(), f, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("want SAT, got %v", res.Status)
	}
	// Index bit0 = polarity of x1, bit1 = polarity of x2: expect 0b01.
	if res.Winner != 1 {
		t.Fatalf("winner %d, want 1", res.Winner)
	}
}

func TestContextCancellation(t *testing.T) {
	f := pigeonhole(10) // hard enough not to finish instantly
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := Solve(ctx, f, parts, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("want UNKNOWN after cancellation, got %v", res.Status)
	}
}

func TestWorkerLimitRespected(t *testing.T) {
	// With a single worker the instances run sequentially and all finish.
	f := pigeonhole(4)
	parts := partitionsOn([]cnf.Var{1, 2, 3}, 8)
	res, err := Solve(context.Background(), f, parts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", res.Status)
	}
	if len(res.Instances) != 8 {
		t.Fatalf("instances: %d", len(res.Instances))
	}
}

func TestNoPartitionsError(t *testing.T) {
	if _, err := Solve(context.Background(), cnf.New(), nil, Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDiversifySeeds(t *testing.T) {
	f := pigeonhole(5)
	parts := partitionsOn([]cnf.Var{1}, 2)
	res, err := Solve(context.Background(), f, parts, Options{
		Workers:        2,
		Solver:         sat.Options{RandomizeFreq: 0.1},
		DiversifySeeds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("want UNSAT, got %v", res.Status)
	}
}

func TestInstanceStatsCollected(t *testing.T) {
	f := pigeonhole(6)
	parts := partitionsOn([]cnf.Var{1}, 2)
	res, err := Solve(context.Background(), f, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Instances {
		if in.Stats.Propagations == 0 {
			t.Fatalf("instance %d has empty stats", in.Partition)
		}
	}
}
