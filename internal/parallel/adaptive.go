package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/journal"
	"repro/internal/partition"
	"repro/internal/sat"
)

// solveAdaptive is Solve's straggler-resilient mode: instead of one
// goroutine per partition, Options.Workers goroutines drain a dynamic
// work queue of cubes (a partition plus a path of extra split-bit
// polarities). An idle worker that finds the queue empty interrupts the
// hardest cube that has been solving for at least SplitGrace and
// re-queues its two sub-cubes — the partition.Cube split applied
// in-process, mirroring the distributed coordinator's scheduler.
//
// Soundness: a cube's two children fix the same split literal in both
// polarities on top of the parent's assumptions, so they partition the
// parent's assumption space exactly — both UNSAT refutes the parent,
// any SAT model satisfies it. The SPLIT journal record is committed
// before either child runs, so a crash between split and child
// completion resumes with the children pending and the parent record
// permanently superseded.
type cubeJob struct {
	pt   partition.Partition
	path string
}

// runningCube is one in-flight cube: the solver to interrupt, the
// hardness fed by the live progress hook, and the split mark that tells
// the owning worker to re-queue children instead of reporting a
// cancelled leaf.
type runningCube struct {
	job      cubeJob
	solver   *sat.Solver
	started  time.Time
	hardness float64
	split    bool
}

func solveAdaptive(ctx context.Context, f *cnf.Formula, parts []partition.Partition, opts Options) (*Result, error) {
	grace := opts.SplitGrace
	if grace <= 0 {
		grace = 15 * time.Second
	}
	workers := opts.Workers
	if workers <= 0 || workers > len(parts) {
		workers = len(parts)
	}
	start := time.Now()
	res := &Result{Status: sat.Unsat, Winner: -1}

	// Resume: rebuild each partition's cube tree from the journal.
	// SPLIT records grow the tree; verdict records attach to leaves.
	// A verdict whose path is not a live leaf (its cube was split) is
	// stale and ignored — the children own the verdict now.
	splitSet := map[int]map[string]bool{}
	verdicts := map[int]map[string]journal.ChunkRecord{}
	if opts.Journal != nil {
		for _, rec := range opts.Journal.Committed() {
			if rec.From != rec.To {
				continue
			}
			if rec.Split() {
				if splitSet[rec.From] == nil {
					splitSet[rec.From] = map[string]bool{}
				}
				splitSet[rec.From][rec.Path] = true
			} else {
				if verdicts[rec.From] == nil {
					verdicts[rec.From] = map[string]journal.ChunkRecord{}
				}
				verdicts[rec.From][rec.Path] = rec
			}
		}
	}
	leavesOf := func(idx int) []string {
		var out []string
		var walk func(p string)
		walk = func(p string) {
			if splitSet[idx][p] {
				walk(p + "0")
				walk(p + "1")
				return
			}
			out = append(out, p)
		}
		walk("")
		return out
	}
	cubeAssumptions := func(pt partition.Partition, path string) ([]cnf.Lit, error) {
		if path == "" {
			return pt.Assumptions, nil
		}
		extra, err := partition.PathAssumptions(path, opts.SplitLits)
		if err != nil {
			return nil, err
		}
		out := make([]cnf.Lit, 0, len(pt.Assumptions)+len(extra))
		out = append(out, pt.Assumptions...)
		out = append(out, extra...)
		return out, nil
	}

	// leaves[idx] accumulates one InstanceResult per decided leaf cube;
	// the per-partition fold happens after the run.
	type partState struct {
		leaves []InstanceResult
	}
	state := make(map[int]*partState, len(parts))
	var queue []cubeJob
	outstanding := 0 // queued + running leaves still undecided
	for _, pt := range parts {
		ps := &partState{}
		state[pt.Index] = ps
		for _, path := range leavesOf(pt.Index) {
			if d := len(path); d > res.MaxCubeDepth {
				res.MaxCubeDepth = d
			}
			rec, ok := verdicts[pt.Index][path]
			if !ok || !opts.replayable(rec, pt.Index) {
				queue = append(queue, cubeJob{pt: pt, path: path})
				outstanding++
				continue
			}
			inst := InstanceResult{
				Partition: pt.Index,
				Status:    statusFromString(rec.Verdict),
				Cause:     sat.ParseStopCause(rec.Cause),
				Resumed:   true,
				Time:      time.Duration(rec.Millis) * time.Millisecond,
			}
			ps.leaves = append(ps.leaves, inst)
			res.Resumed++
			if inst.Status == sat.Sat && res.Status != sat.Sat {
				// The journal stores no model; re-derive it under the
				// cube's assumptions, refusing the resume if the journal
				// and formula disagree (as in the non-adaptive path).
				assume, aerr := cubeAssumptions(pt, path)
				if aerr != nil {
					return nil, fmt.Errorf("parallel: %w", aerr)
				}
				solver := sat.NewFromFormula(f, opts.rederiveOptions(pt.Index))
				st, serr := solver.Solve(assume...)
				if serr != nil || st != sat.Sat {
					return nil, fmt.Errorf("parallel: journaled SAT verdict for partition %d cube %q failed to re-derive (status %v, err %v); refusing to resume against a disagreeing journal", pt.Index, path, st, serr)
				}
				res.Status = sat.Sat
				res.Model = solver.Model()
				res.Winner = pt.Index
			}
		}
	}
	if res.Status == sat.Sat {
		// A replayed SAT verdict decides the run; pending cubes are
		// cancelled exactly as if a live sibling had won.
		for _, job := range queue {
			state[job.pt.Index].leaves = append(state[job.pt.Index].leaves, InstanceResult{
				Partition: job.pt.Index, Status: sat.Unknown, Cause: sat.CauseCancelled,
			})
		}
		queue = nil
		outstanding = 0
	}

	var (
		mu         sync.Mutex
		running    = map[*runningCube]bool{}
		journalErr error
		panicErr   error
		certFailed bool
	)
	solveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	interruptAll := func(mem bool) {
		mu.Lock()
		for rc := range running {
			if mem {
				rc.solver.InterruptMemory()
			} else {
				rc.solver.Interrupt()
			}
		}
		mu.Unlock()
	}
	go func() {
		<-solveCtx.Done()
		interruptAll(false)
	}()
	var memAborted atomic.Bool
	if opts.MemAbort != nil {
		go func() {
			select {
			case <-opts.MemAbort:
				memAborted.Store(true)
				interruptAll(true)
			case <-solveCtx.Done():
			}
		}()
	}

	sealJournal := func(err error) {
		if !res.JournalSealed {
			res.JournalSealed = true
			res.JournalSealCause = err.Error()
		}
	}
	// splitVictimLocked picks the hardest qualifying straggler: past the
	// grace, at or above the hardness floor, with an unfixed split bit
	// left under both the depth cap and the encoding's supply.
	splitVictimLocked := func(now time.Time) *runningCube {
		var best *runningCube
		for rc := range running {
			if rc.split {
				continue
			}
			if now.Sub(rc.started) < grace {
				continue
			}
			if rc.hardness < opts.SplitHardness {
				continue
			}
			if len(rc.job.path) >= opts.SplitDepth || len(rc.job.path) >= len(opts.SplitLits) {
				continue
			}
			if best == nil || rc.hardness > best.hardness ||
				(rc.hardness == best.hardness && rc.started.Before(best.started)) {
				best = rc
			}
		}
		return best
	}
	// The idle poll tick must notice grace expiry promptly without
	// spinning.
	tick := grace / 4
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}

	runCube := func(job cubeJob) {
		// The panic boundary mirrors Solve's: one poison cube becomes the
		// run's error and cancels the siblings instead of crashing.
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicErr == nil {
					panicErr = fmt.Errorf("parallel: partition %d cube %q solver panicked: %v", job.pt.Index, job.path, r)
				}
				outstanding--
				mu.Unlock()
				cancel()
			}
		}()
		assume, aerr := cubeAssumptions(job.pt, job.path)
		if aerr != nil {
			mu.Lock()
			if panicErr == nil {
				panicErr = fmt.Errorf("parallel: %w", aerr)
			}
			outstanding--
			mu.Unlock()
			cancel()
			return
		}
		sOpts := opts.solverOptions(job.pt.Index)
		if sOpts.ProgressEvery <= 0 {
			// The hardness signal that steers splitting rides on the
			// progress cadence; arm a default when the caller didn't.
			sOpts.ProgressEvery = 512
		}
		solver := sat.NewFromFormula(f, sOpts)
		sampler := sat.NewSampler(0)
		rc := &runningCube{job: job, solver: solver, started: time.Now()}
		solver.Progress = func(st sat.Stats) {
			h := sat.Hardness(st.Conflicts, st.Progress, time.Since(rc.started))
			sampler.Observe(st)
			mu.Lock()
			rc.hardness = h
			mu.Unlock()
			if opts.Progress != nil {
				opts.Progress(job.pt.Index, st)
			}
		}
		if opts.CertifyUnsat || opts.KeepProofs {
			solver.EnableProof()
		}
		mu.Lock()
		running[rc] = true
		mu.Unlock()
		if memAborted.Load() {
			solver.InterruptMemory()
		}
		var timedOut atomic.Bool
		if opts.ChunkTimeout > 0 {
			timer := time.AfterFunc(opts.ChunkTimeout, func() {
				timedOut.Store(true)
				solver.Interrupt()
			})
			defer timer.Stop()
		}

		t0 := time.Now()
		status, err := solver.Solve(assume...)
		elapsed := time.Since(t0)

		mu.Lock()
		delete(running, rc)
		wasSplit := rc.split && err == sat.ErrInterrupted && status == sat.Unknown
		mu.Unlock()
		if wasSplit {
			// The SPLIT record is the supersession point: committed
			// before either child is queued, so a crash here resumes
			// with the children pending, never with a stale parent
			// verdict. A sealed journal degrades to journal-less
			// splitting — a resume simply re-solves the parent.
			if opts.Journal != nil {
				jerr := opts.Journal.Commit(journal.ChunkRecord{
					From: job.pt.Index, To: job.pt.Index, Path: job.path,
					Verdict: journal.VerdictSplit,
				})
				if jerr != nil && errors.Is(jerr, journal.ErrSealed) {
					mu.Lock()
					sealJournal(jerr)
					mu.Unlock()
				} else if jerr != nil {
					mu.Lock()
					if journalErr == nil {
						journalErr = jerr
					}
					outstanding--
					mu.Unlock()
					cancel()
					return
				}
			}
			mu.Lock()
			queue = append(queue, cubeJob{pt: job.pt, path: job.path + "0"},
				cubeJob{pt: job.pt, path: job.path + "1"})
			outstanding++ // one leaf became two
			res.Splits++
			if d := len(job.path) + 1; d > res.MaxCubeDepth {
				res.MaxCubeDepth = d
			}
			mu.Unlock()
			return
		}

		cause := sat.CauseNone
		if err == sat.ErrMemBudget {
			status = sat.Unknown
			cause = sat.CauseMemory
		} else if err == sat.ErrInterrupted {
			status = sat.Unknown
			if timedOut.Load() && solveCtx.Err() == nil {
				cause = sat.CauseTimeout
			} else {
				cause = sat.CauseCancelled
			}
		} else if status == sat.Unknown {
			cause = sat.CauseConflictBudget
		}
		if status == sat.Unsat && opts.CertifyUnsat {
			if cerr := sat.CheckRUP(f, assume, solver.ProofLog()); cerr != nil {
				mu.Lock()
				certFailed = true
				mu.Unlock()
			}
		}
		inst := InstanceResult{
			Partition: job.pt.Index,
			Status:    status,
			Cause:     cause,
			Time:      elapsed,
			Stats:     solver.Stats(),
			Samples:   sampler.Points(),
		}
		inst.Hardness = sat.Hardness(inst.Stats.Conflicts, inst.Stats.Progress, elapsed)
		if cerr := opts.commit(inst, job.path); cerr != nil {
			if errors.Is(cerr, journal.ErrSealed) {
				mu.Lock()
				sealJournal(cerr)
				mu.Unlock()
			} else {
				mu.Lock()
				if journalErr == nil {
					journalErr = cerr
				}
				outstanding--
				mu.Unlock()
				cancel()
				return
			}
		}
		mu.Lock()
		state[job.pt.Index].leaves = append(state[job.pt.Index].leaves, inst)
		outstanding--
		if status == sat.Sat && res.Status != sat.Sat {
			res.Status = sat.Sat
			res.Model = solver.Model()
			res.Winner = job.pt.Index
			mu.Unlock()
			cancel()
			return
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if solveCtx.Err() != nil {
					// Drain: whatever is still queued was never started
					// and reports cancelled, exactly like the static
					// path's unstarted goroutines.
					for _, job := range queue {
						state[job.pt.Index].leaves = append(state[job.pt.Index].leaves, InstanceResult{
							Partition: job.pt.Index, Status: sat.Unknown, Cause: sat.CauseCancelled,
						})
						outstanding--
					}
					queue = nil
					mu.Unlock()
					return
				}
				if len(queue) > 0 {
					job := queue[0]
					queue = queue[1:]
					mu.Unlock()
					runCube(job)
					continue
				}
				if outstanding == 0 {
					mu.Unlock()
					return
				}
				// Idle with work still in flight: this is the split
				// trigger. Mark the victim and interrupt it; its owner
				// re-queues the two children, which this loop then picks
				// up — work stealing by construction.
				victim := splitVictimLocked(time.Now())
				if victim != nil {
					victim.split = true
					s := victim.solver
					mu.Unlock()
					s.Interrupt()
				} else {
					mu.Unlock()
				}
				select {
				case <-time.After(tick):
				case <-solveCtx.Done():
				}
			}
		}()
	}
	wg.Wait()

	// Fold each partition's leaves into the one per-partition
	// InstanceResult the callers expect: UNSAT iff every leaf refuted,
	// SAT if any found a model, else Unknown under the dominant cause.
	for _, pt := range parts {
		ps := state[pt.Index]
		if ps == nil || len(ps.leaves) == 0 {
			continue
		}
		inst := foldLeaves(pt.Index, ps.leaves)
		res.Instances = append(res.Instances, inst)
		if inst.Status == sat.Unknown && res.Status == sat.Unsat {
			res.Status = sat.Unknown
		}
	}
	res.Wall = time.Since(start)
	res.Certified = opts.CertifyUnsat && !certFailed
	if panicErr != nil {
		return nil, panicErr
	}
	if journalErr != nil {
		return nil, fmt.Errorf("parallel: journal commit failed: %w", journalErr)
	}
	if certFailed {
		return nil, fmt.Errorf("parallel: an UNSAT refutation proof failed to check")
	}
	if res.Status == sat.Sat {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		res.Status = sat.Unknown
		return res, nil
	}
	return res, nil
}

// foldLeaves merges the leaf-cube results of one partition. Statuses
// compose by the cube-tree argument (children partition the parent's
// assumption space); budgets compose pessimistically — the partition is
// only as decided as its least decided leaf, and an Unknown picks the
// most severe leaf cause (memory > timeout > conflict-budget >
// cancelled). Stats and times sum; hardness is the hardest leaf;
// Resumed holds only when every leaf replayed from the journal.
func foldLeaves(idx int, leaves []InstanceResult) InstanceResult {
	out := InstanceResult{Partition: idx, Status: sat.Unsat, Cubes: len(leaves), Resumed: true}
	for _, l := range leaves {
		out.Time += l.Time
		out.Stats.Add(l.Stats)
		if l.Hardness > out.Hardness {
			out.Hardness = l.Hardness
		}
		if out.Samples == nil {
			out.Samples = l.Samples
		}
		if !l.Resumed {
			out.Resumed = false
		}
		switch l.Status {
		case sat.Sat:
			out.Status = sat.Sat
			out.Cause = sat.CauseNone
		case sat.Unknown:
			if out.Status != sat.Sat {
				out.Status = sat.Unknown
				out.Cause = mergeCause(out.Cause, l.Cause)
			}
		}
	}
	if out.Status != sat.Unknown {
		out.Cause = sat.CauseNone
	}
	return out
}

// mergeCause keeps the more severe of two Unknown causes, in the same
// priority order the distributed worker reports: memory dominates (the
// coordinator's memory retry policy must see it), then timeout, then
// conflict budget, then cancellation.
func mergeCause(a, b sat.StopCause) sat.StopCause {
	rank := func(c sat.StopCause) int {
		switch c {
		case sat.CauseMemory:
			return 4
		case sat.CauseTimeout:
			return 3
		case sat.CauseConflictBudget:
			return 2
		case sat.CauseCancelled:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}
