package parallel

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// A memory-budget exhaustion is terminal only under its own budget,
// exactly like a conflict budget: journaled with the budget pinned,
// replayed on a same-budget resume, re-solved to a definite verdict
// when the budget is lifted.
func TestJournalMemBudgetRaiseResolves(t *testing.T) {
	// PHP(7) padded with a huge variable set: the irreducible base
	// footprint (≈12000 vars × 128 B) alone exceeds the 1 MiB budget, so
	// every instance must stop with CauseMemory at its first conflict —
	// learnt-DB shrinking cannot recover base footprint. The padding
	// clause is a free unit, so the lifted-budget verdict stays UNSAT.
	f := pigeonhole(7)
	f.AddClause(cnf.PosLit(12000))
	parts := partitionsOn([]cnf.Var{1, 2}, 4)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 4)
	res, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, MemBudgetMB: 1, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("first run: status %v, want Unknown", res.Status)
	}
	for _, inst := range res.Instances {
		if inst.Cause != sat.CauseMemory {
			t.Fatalf("partition %d: cause %v, want memory", inst.Partition, inst.Cause)
		}
	}
	if j.Commits() != 4 {
		t.Fatalf("first run committed %d records, want 4", j.Commits())
	}
	for _, rec := range j.Committed() {
		if rec.Verdict != "UNKNOWN" || rec.Cause != "memory" || rec.MemBudgetMB != 1 {
			t.Fatalf("record %+v, want UNKNOWN/memory with MemBudgetMB 1", rec)
		}
	}
	j.Close()

	// Same budget: the exhaustions replay, nothing is re-solved.
	j2 := openTestJournal(t, path, 4)
	res2, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, MemBudgetMB: 1, Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unknown || res2.Resumed != 4 {
		t.Fatalf("same-budget resume: status %v resumed %d, want Unknown/4", res2.Status, res2.Resumed)
	}
	j2.Close()

	// Lifted budget: every exhausted partition is re-solved to UNSAT.
	j3 := openTestJournal(t, path, 4)
	res3, err := Solve(context.Background(), f, parts, Options{Workers: 2, Journal: j3})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Status != sat.Unsat {
		t.Fatalf("lifted-budget resume: status %v, want Unsat", res3.Status)
	}
	if res3.Resumed != 0 {
		t.Fatalf("lifted-budget resume replayed %d stale exhaustions", res3.Resumed)
	}
	j3.Close()
}

// The external MemAbort kill-switch (an RSS watchdog trip) must stop
// every live instance with CauseMemory — distinguishable from both
// cancellation and the other budget causes — and win the race against
// instances that register after the switch fires.
func TestMemAbortKillSwitch(t *testing.T) {
	f := pigeonhole(9) // far beyond a 50ms head start
	parts := partitionsOn([]cnf.Var{1}, 2)
	memAbort := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(memAbort)
	}()
	res, err := Solve(context.Background(), f, parts, Options{
		Workers: 2, MemAbort: memAbort,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status %v, want Unknown", res.Status)
	}
	for _, inst := range res.Instances {
		if inst.Cause != sat.CauseMemory {
			t.Fatalf("partition %d: cause %v, want memory", inst.Partition, inst.Cause)
		}
	}
}
