// Package parallel runs independent SAT solver instances over the
// partitioned sub-formulae (Sect. 3.3/3.4): one decision procedure per
// partition, no cooperation, first satisfiable assignment wins and
// terminates the others; if every instance reports unsatisfiable, the
// program is safe within the bounds.
//
// Two robustness layers ride on top of the paper's scheme:
//
//   - Per-chunk resource budgets (Options.ChunkTimeout, ChunkConflicts)
//     bound every instance's wall clock and conflict count, so a poison
//     partition degrades to Unknown — with the exhausted budget recorded
//     in InstanceResult.Cause — instead of hanging the run.
//   - A crash-safe journal (Options.Journal) commits every definite and
//     budget-exhausted verdict; a restarted run with the same manifest
//     skips committed partitions and re-solves only the rest.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/journal"
	"repro/internal/partition"
	"repro/internal/sat"
)

// InstanceResult records one solver instance's outcome.
type InstanceResult struct {
	// Partition is the partition index solved.
	Partition int
	// Status is the instance verdict (Unknown if cancelled).
	Status sat.Status
	// Cause classifies an Unknown status: cancelled (context done or a
	// sibling won), timeout (ChunkTimeout expired), conflict-budget
	// (ChunkConflicts exhausted), or memory (MemBudgetMB exhausted or
	// the external MemAbort watchdog fired). CauseNone for definite
	// verdicts.
	Cause sat.StopCause
	// Resumed marks a verdict replayed from the journal rather than
	// solved in this run.
	Resumed bool
	// Proof is the instance's recorded refutation (Status == Unsat with
	// Options.KeepProofs; nil otherwise). Distributed workers ship it to
	// the coordinator as the UNSAT half of a verdict certificate.
	Proof *sat.Proof
	// Time is the instance's wall-clock solving time.
	Time time.Duration
	// Stats are the solver search statistics, including the final
	// Stats.Progress search-progress estimate — the per-partition
	// imbalance signal the run report and partition gauges surface.
	Stats sat.Stats
	// Hardness is the whole-run hardness score of this instance
	// (sat.Hardness over the full solve: conflict rate scaled by the
	// unrealised progress slope). Zero for resumed, cancelled-before-
	// start, or conflict-free instances.
	Hardness float64
	// Samples is the introspection time-series collected at the
	// Progress-callback cadence (nil unless Options.Progress and
	// ProgressEvery armed the solver; bounded to the most recent
	// sat.DefaultSamplerPoints points).
	Samples []sat.Sample
	// Cubes is the number of leaf cubes adaptive splitting folded into
	// this per-partition result (0: the partition was solved whole).
	Cubes int
}

// Result is the aggregate outcome.
type Result struct {
	// Status is Sat if any partition is satisfiable, Unsat if all are
	// unsatisfiable, Unknown if cancelled or budget-exhausted first.
	Status sat.Status
	// Model is the satisfying assignment (Status == Sat).
	Model []bool
	// Winner is the partition index that found the model (-1 otherwise).
	Winner int
	// Instances holds the per-partition results that completed, were
	// cancelled, or were resumed from the journal.
	Instances []InstanceResult
	// Resumed counts instances replayed from the journal.
	Resumed int
	// Wall is the overall wall-clock time.
	Wall time.Duration
	// Certified reports that every UNSAT instance's refutation proof
	// checked (only meaningful with Options.CertifyUnsat).
	Certified bool
	// JournalSealed reports that the journal sealed itself after a write
	// failure (ENOSPC, I/O error) mid-run: the remaining verdicts were
	// computed journal-less — still correct, no longer crash-durable.
	// Callers should surface it loudly.
	JournalSealed bool
	// JournalSealCause is the write error that sealed the journal.
	JournalSealCause string
	// Splits counts adaptive cube splits performed by this run (resumed
	// splits replayed from the journal are not re-counted); MaxCubeDepth
	// is the deepest cube path reached, including resumed paths.
	Splits       int
	MaxCubeDepth int
}

// Options configures the parallel run.
type Options struct {
	// Workers bounds the number of concurrently running solver
	// instances; 0 means one worker per partition.
	Workers int
	// Solver configures each underlying CDCL instance.
	Solver sat.Options
	// DiversifySeeds gives each instance a distinct RNG seed (only
	// relevant if Solver.RandomizeFreq > 0).
	DiversifySeeds bool
	// CertifyUnsat records a clausal (RUP) proof in every instance and
	// checks it whenever the instance reports UNSAT, so that Safe
	// verdicts are certified independently of the CDCL search — the
	// counterpart of replay-validating counterexamples.
	CertifyUnsat bool
	// KeepProofs records a clausal (RUP) proof in every instance and
	// retains it on InstanceResult.Proof for UNSAT instances, without
	// checking it locally — for distributed workers, whose proofs are
	// checked by the coordinator against its own encoding instead.
	KeepProofs bool
	// ChunkTimeout bounds each instance's wall-clock solving time; an
	// expired instance is interrupted and reports Unknown with
	// CauseTimeout (0 = unbounded).
	ChunkTimeout time.Duration
	// ChunkConflicts bounds each instance's conflict count; an exhausted
	// instance reports Unknown with CauseConflictBudget (0 = unbounded).
	// If Solver.MaxConflicts is also set, the smaller bound applies.
	ChunkConflicts int64
	// MemBudgetMB bounds each instance's approximate solver footprint in
	// MiB; an instance that cannot shrink back under it reports Unknown
	// with CauseMemory (0 = unbounded). If Solver.MemBudgetMB is also
	// set, the smaller bound applies.
	MemBudgetMB int64
	// MemAbort, when non-nil, is an external memory kill-switch (an RSS
	// watchdog): once it becomes receivable (typically by closing it),
	// every live and future solver of this run is aborted with
	// cause=memory — the budgeted, journalable analogue of
	// cancellation, fired before the OOM-killer can.
	MemAbort <-chan struct{}
	// Journal, when non-nil, makes the run crash-safe: committed UNSAT
	// and budget-Unknown verdicts are skipped on resume (their recorded
	// outcome is replayed into Instances), every newly decided or
	// budget-exhausted partition is durably committed before the run
	// acknowledges it, and cancelled instances are left uncommitted so a
	// restart re-solves them. A budget-Unknown record is replayed only
	// under budgets no larger than the ones it pinned at commit time; a
	// resume that raised the exhausted budget re-solves the partition.
	// SAT records are replayed by re-solving the winning partition
	// without budgets (the model is not journaled); a journaled SAT
	// verdict that fails to re-derive fails the run rather than being
	// silently demoted.
	Journal *journal.Journal
	// Progress, when non-nil and ProgressEvery > 0, receives live
	// search statistics for a partition every ProgressEvery conflicts,
	// invoked from that partition's solver goroutine (it must be
	// concurrency-safe and fast).
	Progress func(partition int, st sat.Stats)
	// ProgressEvery is the conflict cadence of Progress callbacks.
	ProgressEvery int64
	// SplitDepth enables in-process adaptive cube splitting: an idle
	// worker that finds the queue empty interrupts the hardest straggling
	// instance past SplitGrace and splits its cube on the next unfixed
	// literal of SplitLits, re-queueing both halves — up to SplitDepth
	// extra path bits per partition (0 disables; requires SplitLits).
	SplitDepth int
	// SplitGrace is the minimum solving age before an instance may be
	// split (default 15s when SplitDepth > 0).
	SplitGrace time.Duration
	// SplitHardness is the minimum live hardness score before an instance
	// qualifies for splitting (0: any straggler past the grace).
	SplitHardness float64
	// SplitLits is the canonical split-literal sequence (from
	// partition.SplitLits) whose polarities cube paths fix.
	SplitLits []cnf.Lit
}

// instrument arms one solver instance with the live progress hook and
// returns the sampler piggybacked on the same cadence (nil when the
// hook is disarmed — the sampler costs nothing beyond the callbacks
// the caller already asked for).
func (o *Options) instrument(solver *sat.Solver, part int) *sat.Sampler {
	if o.Progress == nil || o.ProgressEvery <= 0 {
		return nil
	}
	sampler := sat.NewSampler(0)
	solver.Progress = func(st sat.Stats) {
		sampler.Observe(st)
		o.Progress(part, st)
	}
	return sampler
}

// solverOptions derives one instance's solver configuration, folding
// the per-chunk conflict budget into MaxConflicts.
func (o *Options) solverOptions(part int) sat.Options {
	sOpts := o.Solver
	if o.DiversifySeeds {
		sOpts.Seed = uint64(part) + 1
	}
	if o.ChunkConflicts > 0 && (sOpts.MaxConflicts == 0 || sOpts.MaxConflicts > o.ChunkConflicts) {
		sOpts.MaxConflicts = o.ChunkConflicts
	}
	if o.MemBudgetMB > 0 && (sOpts.MemBudgetMB == 0 || sOpts.MemBudgetMB > o.MemBudgetMB) {
		sOpts.MemBudgetMB = o.MemBudgetMB
	}
	sOpts.ProgressEvery = o.ProgressEvery
	return sOpts
}

// rederiveOptions is solverOptions without any conflict or memory
// budget: the journal's SAT verdict is already durable, so the re-solve
// that recovers its model must not be cut short by this run's (possibly
// smaller) budgets — a budget-starved re-solve would otherwise demote
// a committed counterexample to Unknown.
func (o *Options) rederiveOptions(part int) sat.Options {
	sOpts := o.solverOptions(part)
	sOpts.MaxConflicts = 0
	sOpts.MemBudgetMB = 0
	return sOpts
}

// replayable reports whether a committed record still binds this run.
// Definite verdicts always replay; a budget-exhausted Unknown is
// terminal only under budgets no larger than the ones it gave up
// under, so a run that raised the exhausted budget re-solves the
// partition instead.
func (o *Options) replayable(rec journal.ChunkRecord, part int) bool {
	if statusFromString(rec.Verdict) != sat.Unknown {
		return true
	}
	sOpts := o.solverOptions(part)
	return !rec.RetryUnder(o.ChunkTimeout.Milliseconds(), sOpts.MaxConflicts, sOpts.MemBudgetMB)
}

// committedRecords indexes the journal's committed set by partition for
// per-partition (From == To) records. Cube-leaf records (non-empty
// Path) and SPLIT markers written by an adaptive run are skipped: a
// sub-cube verdict covers only part of its partition, so a
// non-adaptive resume must re-solve the whole partition rather than
// replay a fragment as if it were the full verdict.
func committedRecords(j *journal.Journal) map[int]journal.ChunkRecord {
	if j == nil {
		return nil
	}
	out := make(map[int]journal.ChunkRecord)
	for _, rec := range j.Committed() {
		if rec.From == rec.To && rec.Path == "" && !rec.Split() {
			out[rec.From] = rec
		}
	}
	return out
}

// commit journals one instance verdict (path is the instance's cube
// path, empty outside adaptive splitting). Definite verdicts and budget
// exhaustions are durable; cancellations are deliberately not committed
// (the partition is in-flight and must be requeued by a resume). A
// budget exhaustion pins the budgets it was computed under, so a resume
// can tell whether its own budgets supersede the give-up.
func (o *Options) commit(inst InstanceResult, path string) error {
	if o.Journal == nil || inst.Resumed {
		return nil
	}
	if inst.Status == sat.Unknown && !inst.Cause.Budgeted() {
		return nil
	}
	rec := journal.ChunkRecord{
		From: inst.Partition, To: inst.Partition, Path: path,
		Verdict: inst.Status.String(),
		Winner:  winnerOf(inst),
		Cause:   inst.Cause.String(),
		Millis:  inst.Time.Milliseconds(),
	}
	if inst.Cause.Budgeted() {
		sOpts := o.solverOptions(inst.Partition)
		rec.TimeoutMillis = o.ChunkTimeout.Milliseconds()
		rec.Conflicts = sOpts.MaxConflicts
		rec.MemBudgetMB = sOpts.MemBudgetMB
	}
	return o.Journal.Commit(rec)
}

func winnerOf(inst InstanceResult) int {
	if inst.Status == sat.Sat {
		return inst.Partition
	}
	return -1
}

// Solve checks the formula under each partition's assumptions in
// parallel. It honours ctx cancellation (returning Unknown), per-chunk
// budgets, and journal resume.
func Solve(ctx context.Context, f *cnf.Formula, parts []partition.Partition, opts Options) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("parallel: no partitions")
	}
	if opts.SplitDepth > 0 && len(opts.SplitLits) > 0 {
		return solveAdaptive(ctx, f, parts, opts)
	}
	workers := opts.Workers
	if workers <= 0 || workers > len(parts) {
		workers = len(parts)
	}

	start := time.Now()
	res := &Result{Status: sat.Unsat, Winner: -1}

	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)

	// Cancellation: the first SAT result interrupts all live solvers.
	solveCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	committed := committedRecords(opts.Journal)
	var journalErr error
	var panicErr error

	// Resume pass: replay every committed verdict before spawning any
	// solver goroutine, so the shared Result is only ever touched
	// single-threadedly here and under mu once solving starts. Records
	// whose exhausted budget this run raises are dropped back into the
	// to-solve set instead of replayed.
	todo := make([]partition.Partition, 0, len(parts))
	for _, pt := range parts {
		rec, ok := committed[pt.Index]
		if !ok || !opts.replayable(rec, pt.Index) {
			todo = append(todo, pt)
			continue
		}
		inst := InstanceResult{
			Partition: pt.Index,
			Status:    statusFromString(rec.Verdict),
			Cause:     sat.ParseStopCause(rec.Cause),
			Resumed:   true,
			Time:      time.Duration(rec.Millis) * time.Millisecond,
		}
		res.Instances = append(res.Instances, inst)
		res.Resumed++
		switch inst.Status {
		case sat.Sat:
			// The journal stores no model; re-derive it now (without this
			// run's budgets) so the resumed run still produces a decodable
			// counterexample. A committed SAT verdict that does not
			// re-derive means the journal and the formula disagree —
			// refusing the run beats silently reporting UNSAT over a
			// durably recorded counterexample.
			if res.Status != sat.Sat {
				solver := sat.NewFromFormula(f, opts.rederiveOptions(pt.Index))
				st, serr := solver.Solve(pt.Assumptions...)
				if serr != nil || st != sat.Sat {
					return nil, fmt.Errorf("parallel: journaled SAT verdict for partition %d failed to re-derive (status %v, err %v); refusing to resume against a disagreeing journal", pt.Index, st, serr)
				}
				res.Status = sat.Sat
				res.Model = solver.Model()
				res.Winner = pt.Index
			}
		case sat.Unknown:
			if res.Status == sat.Unsat {
				res.Status = sat.Unknown
			}
		}
	}

	// A replayed SAT verdict decides the run: the remaining partitions
	// are cancelled exactly as if a live sibling had won the race.
	if res.Status == sat.Sat {
		for _, pt := range todo {
			res.Instances = append(res.Instances, InstanceResult{
				Partition: pt.Index, Status: sat.Unknown, Cause: sat.CauseCancelled,
			})
		}
		res.Wall = time.Since(start)
		res.Certified = opts.CertifyUnsat
		return res, nil
	}

	var live []*sat.Solver
	certFailed := false
	interruptAll := func() {
		mu.Lock()
		for _, s := range live {
			s.Interrupt()
		}
		mu.Unlock()
	}
	go func() {
		<-solveCtx.Done()
		interruptAll()
	}()

	// External memory kill-switch: once fired, every live solver is
	// aborted with cause=memory, and solvers registered later are
	// aborted on registration (closing the fire/register race).
	var memAborted atomic.Bool
	if opts.MemAbort != nil {
		go func() {
			select {
			case <-opts.MemAbort:
				memAborted.Store(true)
				mu.Lock()
				for _, s := range live {
					s.InterruptMemory()
				}
				mu.Unlock()
			case <-solveCtx.Done():
			}
		}()
	}

	for _, pt := range todo {
		pt := pt
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking solver instance must not take the process down
			// with it: the panic becomes the run's error and cancels the
			// siblings, so callers (and distributed workers in particular)
			// see a structured failure for one poison partition instead of
			// a crash.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicErr == nil {
						panicErr = fmt.Errorf("parallel: partition %d solver panicked: %v", pt.Index, r)
					}
					mu.Unlock()
					cancel()
				}
			}()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-solveCtx.Done():
				mu.Lock()
				res.Instances = append(res.Instances, InstanceResult{
					Partition: pt.Index, Status: sat.Unknown, Cause: sat.CauseCancelled,
				})
				mu.Unlock()
				return
			}
			if solveCtx.Err() != nil {
				mu.Lock()
				res.Instances = append(res.Instances, InstanceResult{
					Partition: pt.Index, Status: sat.Unknown, Cause: sat.CauseCancelled,
				})
				mu.Unlock()
				return
			}

			solver := sat.NewFromFormula(f, opts.solverOptions(pt.Index))
			sampler := opts.instrument(solver, pt.Index)
			if opts.CertifyUnsat || opts.KeepProofs {
				solver.EnableProof()
			}
			mu.Lock()
			live = append(live, solver)
			mu.Unlock()
			if memAborted.Load() {
				solver.InterruptMemory()
			}

			// Wall-clock budget: a timer interrupt distinguishable from
			// cancellation by the timedOut flag.
			var timedOut atomic.Bool
			if opts.ChunkTimeout > 0 {
				timer := time.AfterFunc(opts.ChunkTimeout, func() {
					timedOut.Store(true)
					solver.Interrupt()
				})
				defer timer.Stop()
			}

			t0 := time.Now()
			status, err := solver.Solve(pt.Assumptions...)
			elapsed := time.Since(t0)
			cause := sat.CauseNone
			if err == sat.ErrMemBudget {
				// Memory exhaustion — the solver's own budget or the
				// external watchdog — is terminal budget exhaustion,
				// journaled like a conflict-budget give-up.
				status = sat.Unknown
				cause = sat.CauseMemory
			} else if err == sat.ErrInterrupted {
				status = sat.Unknown
				// The timer may fire while the solver is being interrupted
				// for cancellation (sibling SAT win or signal); trusting
				// timedOut alone would journal the cancelled instance as a
				// terminal timeout and exclude a still-decidable partition
				// from every future resume. When the races overlap,
				// cancelled — the uncommitted verdict — wins.
				if timedOut.Load() && solveCtx.Err() == nil {
					cause = sat.CauseTimeout
				} else {
					cause = sat.CauseCancelled
				}
			} else if status == sat.Unknown {
				// The solver exhausts MaxConflicts without error: the
				// conflict budget is the only path here.
				cause = sat.CauseConflictBudget
			}
			if status == sat.Unsat && opts.CertifyUnsat {
				if cerr := sat.CheckRUP(f, pt.Assumptions, solver.ProofLog()); cerr != nil {
					mu.Lock()
					certFailed = true
					mu.Unlock()
				}
			}

			inst := InstanceResult{
				Partition: pt.Index,
				Status:    status,
				Cause:     cause,
				Time:      elapsed,
				Stats:     solver.Stats(),
				Samples:   sampler.Points(),
			}
			inst.Hardness = sat.Hardness(inst.Stats.Conflicts, inst.Stats.Progress, elapsed)
			if status == sat.Unsat && opts.KeepProofs {
				inst.Proof = solver.ProofLog()
			}
			// Commit before acknowledging the verdict in the shared
			// result, so a crash after this point can only lose work the
			// journal already holds — never claim work it lost.
			if cerr := opts.commit(inst, ""); cerr != nil {
				if errors.Is(cerr, journal.ErrSealed) {
					// Full disk is not a wrong verdict: degrade loudly to
					// journal-less operation and keep solving. The journal
					// rolled the failed record back, so a later resume
					// re-solves exactly the unjournalled partitions.
					mu.Lock()
					if !res.JournalSealed {
						res.JournalSealed = true
						res.JournalSealCause = cerr.Error()
					}
					mu.Unlock()
				} else {
					mu.Lock()
					if journalErr == nil {
						journalErr = cerr
					}
					mu.Unlock()
					cancel()
					return
				}
			}

			mu.Lock()
			res.Instances = append(res.Instances, inst)
			if status == sat.Sat && res.Status != sat.Sat {
				res.Status = sat.Sat
				res.Model = solver.Model()
				res.Winner = pt.Index
				mu.Unlock()
				cancel() // terminate the other instances
				return
			}
			if status == sat.Unknown && res.Status == sat.Unsat {
				res.Status = sat.Unknown
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Certified = opts.CertifyUnsat && !certFailed
	if panicErr != nil {
		return nil, panicErr
	}
	if journalErr != nil {
		return nil, fmt.Errorf("parallel: journal commit failed: %w", journalErr)
	}
	if certFailed {
		return nil, fmt.Errorf("parallel: an UNSAT refutation proof failed to check")
	}
	if res.Status == sat.Sat {
		// A winning SAT result outranks cancelled siblings.
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		res.Status = sat.Unknown
		return res, nil
	}
	return res, nil
}

func statusFromString(s string) sat.Status {
	switch s {
	case sat.Sat.String():
		return sat.Sat
	case sat.Unsat.String():
		return sat.Unsat
	default:
		return sat.Unknown
	}
}
