// Package parallel runs independent SAT solver instances over the
// partitioned sub-formulae (Sect. 3.3/3.4): one decision procedure per
// partition, no cooperation, first satisfiable assignment wins and
// terminates the others; if every instance reports unsatisfiable, the
// program is safe within the bounds.
package parallel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/partition"
	"repro/internal/sat"
)

// InstanceResult records one solver instance's outcome.
type InstanceResult struct {
	// Partition is the partition index solved.
	Partition int
	// Status is the instance verdict (Unknown if cancelled).
	Status sat.Status
	// Time is the instance's wall-clock solving time.
	Time time.Duration
	// Stats are the solver search statistics.
	Stats sat.Stats
}

// Result is the aggregate outcome.
type Result struct {
	// Status is Sat if any partition is satisfiable, Unsat if all are
	// unsatisfiable, Unknown if cancelled first.
	Status sat.Status
	// Model is the satisfying assignment (Status == Sat).
	Model []bool
	// Winner is the partition index that found the model (-1 otherwise).
	Winner int
	// Instances holds the per-partition results that completed or were
	// cancelled.
	Instances []InstanceResult
	// Wall is the overall wall-clock time.
	Wall time.Duration
	// Certified reports that every UNSAT instance's refutation proof
	// checked (only meaningful with Options.CertifyUnsat).
	Certified bool
}

// Options configures the parallel run.
type Options struct {
	// Workers bounds the number of concurrently running solver
	// instances; 0 means one worker per partition.
	Workers int
	// Solver configures each underlying CDCL instance.
	Solver sat.Options
	// DiversifySeeds gives each instance a distinct RNG seed (only
	// relevant if Solver.RandomizeFreq > 0).
	DiversifySeeds bool
	// CertifyUnsat records a clausal (RUP) proof in every instance and
	// checks it whenever the instance reports UNSAT, so that Safe
	// verdicts are certified independently of the CDCL search — the
	// counterpart of replay-validating counterexamples.
	CertifyUnsat bool
	// Progress, when non-nil and ProgressEvery > 0, receives live
	// search statistics for a partition every ProgressEvery conflicts,
	// invoked from that partition's solver goroutine (it must be
	// concurrency-safe and fast).
	Progress func(partition int, st sat.Stats)
	// ProgressEvery is the conflict cadence of Progress callbacks.
	ProgressEvery int64
}

// instrument arms one solver instance with the live progress hook.
func (o *Options) instrument(solver *sat.Solver, part int) {
	if o.Progress != nil && o.ProgressEvery > 0 {
		solver.Progress = func(st sat.Stats) { o.Progress(part, st) }
	}
}

// Solve checks the formula under each partition's assumptions in
// parallel. It honours ctx cancellation (returning Unknown).
func Solve(ctx context.Context, f *cnf.Formula, parts []partition.Partition, opts Options) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("parallel: no partitions")
	}
	workers := opts.Workers
	if workers <= 0 || workers > len(parts) {
		workers = len(parts)
	}

	start := time.Now()
	res := &Result{Status: sat.Unsat, Winner: -1}

	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)

	// Cancellation: the first SAT result interrupts all live solvers.
	solveCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var live []*sat.Solver
	certFailed := false
	interruptAll := func() {
		mu.Lock()
		for _, s := range live {
			s.Interrupt()
		}
		mu.Unlock()
	}
	go func() {
		<-solveCtx.Done()
		interruptAll()
	}()

	for _, pt := range parts {
		pt := pt
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-solveCtx.Done():
				mu.Lock()
				res.Instances = append(res.Instances, InstanceResult{
					Partition: pt.Index, Status: sat.Unknown,
				})
				mu.Unlock()
				return
			}
			if solveCtx.Err() != nil {
				mu.Lock()
				res.Instances = append(res.Instances, InstanceResult{
					Partition: pt.Index, Status: sat.Unknown,
				})
				mu.Unlock()
				return
			}

			sOpts := opts.Solver
			if opts.DiversifySeeds {
				sOpts.Seed = uint64(pt.Index) + 1
			}
			sOpts.ProgressEvery = opts.ProgressEvery
			solver := sat.NewFromFormula(f, sOpts)
			opts.instrument(solver, pt.Index)
			if opts.CertifyUnsat {
				solver.EnableProof()
			}
			mu.Lock()
			live = append(live, solver)
			mu.Unlock()

			t0 := time.Now()
			status, err := solver.Solve(pt.Assumptions...)
			elapsed := time.Since(t0)
			if err == sat.ErrInterrupted {
				status = sat.Unknown
			}
			if status == sat.Unsat && opts.CertifyUnsat {
				if cerr := sat.CheckRUP(f, pt.Assumptions, solver.ProofLog()); cerr != nil {
					mu.Lock()
					certFailed = true
					mu.Unlock()
				}
			}

			mu.Lock()
			res.Instances = append(res.Instances, InstanceResult{
				Partition: pt.Index,
				Status:    status,
				Time:      elapsed,
				Stats:     solver.Stats(),
			})
			if status == sat.Sat && res.Status != sat.Sat {
				res.Status = sat.Sat
				res.Model = solver.Model()
				res.Winner = pt.Index
				mu.Unlock()
				cancel() // terminate the other instances
				return
			}
			if status == sat.Unknown && res.Status == sat.Unsat {
				res.Status = sat.Unknown
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Certified = opts.CertifyUnsat && !certFailed
	if certFailed {
		return nil, fmt.Errorf("parallel: an UNSAT refutation proof failed to check")
	}
	if res.Status == sat.Sat {
		// A winning SAT result outranks cancelled siblings.
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		res.Status = sat.Unknown
		return res, nil
	}
	return res, nil
}
