package parallel

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/partition"
	"repro/internal/sat"
)

// stragglerParts builds the in-process straggler scenario over
// pigeonhole(holes): partition 0's assumptions contradict pigeon 0's
// at-least-one clause (instant UNSAT), partition 1 is the whole hard
// formula. The split literals branch on pigeon 1's hole variables.
func stragglerParts(holes int) ([]partition.Partition, []cnf.Lit) {
	v := func(p, h int) cnf.Var { return cnf.Var(p*holes + h + 1) }
	easy := partition.Partition{Index: 0}
	for h := 0; h < holes; h++ {
		easy.Assumptions = append(easy.Assumptions, cnf.NegLit(v(0, h)))
	}
	hard := partition.Partition{Index: 1}
	var lits []cnf.Lit
	for h := 0; h < 3; h++ {
		lits = append(lits, cnf.PosLit(v(1, h)))
	}
	return []partition.Partition{easy, hard}, lits
}

func adaptiveOpts(lits []cnf.Lit) Options {
	return Options{
		Workers:    2,
		SplitDepth: 2,
		SplitGrace: 20 * time.Millisecond,
		SplitLits:  lits,
	}
}

// The in-process mirror of the coordinator's adaptive scheduler: the
// worker that finishes the easy partition goes idle, interrupts the
// hard one after the grace period, and both drain the resulting
// sub-cubes. The per-partition fold must still report one UNSAT
// instance per partition.
func TestAdaptiveSplitRefinesStraggler(t *testing.T) {
	f := pigeonhole(7)
	parts, lits := stragglerParts(7)
	res, err := Solve(context.Background(), f, parts, adaptiveOpts(lits))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || res.Winner != -1 {
		t.Fatalf("status %v winner %d, want UNSAT/-1", res.Status, res.Winner)
	}
	if res.Splits < 1 {
		t.Fatalf("splits %d, want >= 1 (the hard partition runs ~100ms against a 20ms grace)", res.Splits)
	}
	if res.MaxCubeDepth < 1 || res.MaxCubeDepth > 2 {
		t.Fatalf("max cube depth %d, want within [1, SplitDepth]", res.MaxCubeDepth)
	}
	if len(res.Instances) != 2 {
		t.Fatalf("instances %d, want one folded result per partition", len(res.Instances))
	}
	for _, inst := range res.Instances {
		if inst.Status != sat.Unsat {
			t.Fatalf("partition %d: %v", inst.Partition, inst.Status)
		}
		switch inst.Partition {
		case 0:
			if inst.Cubes != 1 {
				t.Fatalf("easy partition folded %d cubes, want 1", inst.Cubes)
			}
		case 1:
			// Each split turns one leaf into two: leaves = splits + 1.
			if inst.Cubes != res.Splits+1 {
				t.Fatalf("hard partition folded %d cubes with %d splits, want splits+1", inst.Cubes, res.Splits)
			}
		}
	}
}

// An adaptive run's journal replays the cube tree: SPLIT records grow
// the tree, leaf verdicts attach, and the resumed run re-solves
// nothing and re-commits nothing.
func TestAdaptiveJournalResumeReplaysCubeTree(t *testing.T) {
	f := pigeonhole(7)
	parts, lits := stragglerParts(7)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 2)
	opts := adaptiveOpts(lits)
	opts.Journal = j
	res, err := Solve(context.Background(), f, parts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || res.Splits < 1 {
		t.Fatalf("first run: status %v splits %d", res.Status, res.Splits)
	}
	// splits SPLIT records plus one record per leaf (leaves = splits+2
	// across both partitions).
	wantCommits := 2*res.Splits + 2
	if j.Commits() != wantCommits {
		t.Fatalf("first run committed %d records, want %d", j.Commits(), wantCommits)
	}
	j.Close()

	j2 := openTestJournal(t, path, 2)
	opts2 := adaptiveOpts(lits)
	opts2.Journal = j2
	res2, err := Solve(context.Background(), f, parts, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("resumed run: status %v", res2.Status)
	}
	if res2.Resumed != res.Splits+2 {
		t.Fatalf("resumed %d leaves, want %d (every leaf of the committed tree)", res2.Resumed, res.Splits+2)
	}
	if res2.Splits != 0 {
		t.Fatalf("resumed run split %d more cubes, want pure replay", res2.Splits)
	}
	if res2.MaxCubeDepth < 1 {
		t.Fatalf("resumed run lost the cube depth: %d", res2.MaxCubeDepth)
	}
	for _, inst := range res2.Instances {
		if !inst.Resumed {
			t.Fatalf("partition %d was re-solved on resume", inst.Partition)
		}
		if inst.Stats.Conflicts != 0 || inst.Stats.Decisions != 0 {
			t.Fatalf("partition %d has search stats on replay: %+v", inst.Partition, inst.Stats)
		}
	}
	if j2.Commits() != wantCommits {
		t.Fatalf("replay re-committed: %d records, want %d", j2.Commits(), wantCommits)
	}
}

// A non-adaptive run resuming an adaptive journal must ignore sub-cube
// and SPLIT records — they cover only part of a partition — and
// re-solve the split partition whole, replaying only full-partition
// verdicts.
func TestStaticResumeIgnoresCubeRecords(t *testing.T) {
	f := pigeonhole(7)
	parts, lits := stragglerParts(7)
	path := filepath.Join(t.TempDir(), "run.wal")

	j := openTestJournal(t, path, 2)
	opts := adaptiveOpts(lits)
	opts.Journal = j
	res, err := Solve(context.Background(), f, parts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat || res.Splits < 1 {
		t.Fatalf("adaptive run: status %v splits %d", res.Status, res.Splits)
	}
	adaptiveCommits := j.Commits()
	j.Close()

	j2 := openTestJournal(t, path, 2)
	res2, err := Solve(context.Background(), f, parts, Options{Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("static resume: status %v", res2.Status)
	}
	// Partition 0 committed a whole-partition record (empty path) and
	// replays; partition 1 exists only as sub-cubes and must re-solve.
	if res2.Resumed != 1 {
		t.Fatalf("static resume replayed %d partitions, want only the whole-partition record", res2.Resumed)
	}
	for _, inst := range res2.Instances {
		if inst.Partition == 1 && inst.Resumed {
			t.Fatal("static resume replayed a partition that was journaled only as sub-cubes")
		}
	}
	// The re-solve commits partition 1's whole-partition record.
	if j2.Commits() != adaptiveCommits+1 {
		t.Fatalf("static resume committed %d records, want %d", j2.Commits(), adaptiveCommits+1)
	}
}
