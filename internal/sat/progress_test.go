package sat

import (
	"sync"
	"testing"
)

func TestProgressCallback(t *testing.T) {
	s := NewFromFormula(pigeonhole(6), Options{ProgressEvery: 10})
	var snaps []Stats
	s.Progress = func(st Stats) { snaps = append(snaps, st) }
	status, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if status != Unsat {
		t.Fatalf("status %v", status)
	}
	if len(snaps) == 0 {
		t.Fatal("progress callback never invoked")
	}
	for i, st := range snaps {
		if st.Conflicts%10 != 0 || st.Conflicts == 0 {
			t.Fatalf("snapshot %d at conflicts=%d, want a positive multiple of 10", i, st.Conflicts)
		}
		if i > 0 && st.Conflicts <= snaps[i-1].Conflicts {
			t.Fatalf("snapshots not monotone: %d then %d", snaps[i-1].Conflicts, st.Conflicts)
		}
	}
	final := s.Stats()
	last := snaps[len(snaps)-1]
	if last.Conflicts > final.Conflicts || last.Propagations > final.Propagations {
		t.Fatalf("snapshot overtook final stats: %+v vs %+v", last, final)
	}
}

func TestProgressDisabledByDefault(t *testing.T) {
	s := NewFromFormula(pigeonhole(5), Options{})
	s.Progress = func(Stats) { t.Fatal("progress fired with ProgressEvery=0") }
	if st, err := s.Solve(); err != nil || st != Unsat {
		t.Fatalf("status %v err %v", st, err)
	}
}

// TestProgressEstimateBounds checks the MiniSat-style estimate stays in
// [0,1] at every snapshot and is stamped on the final stats.
func TestProgressEstimateBounds(t *testing.T) {
	s := NewFromFormula(pigeonhole(6), Options{ProgressEvery: 5})
	s.Progress = func(st Stats) {
		if st.Progress < 0 || st.Progress > 1 {
			t.Fatalf("estimate %v out of [0,1]", st.Progress)
		}
	}
	if st, err := s.Solve(); err != nil || st != Unsat {
		t.Fatalf("status %v err %v", st, err)
	}
	// A finished solve has examined its whole (remaining) space: the
	// final estimate must be present and in range.
	if p := s.Stats().Progress; p <= 0 || p > 1 {
		t.Fatalf("final estimate %v, want (0,1]", p)
	}
}

func TestProgressEstimateEmptySolver(t *testing.T) {
	s := New(0, Options{})
	if got := s.ProgressEstimate(); got != 1 {
		t.Fatalf("estimate with no variables: %v, want 1", got)
	}
}

// TestProgressCallbackRaceHammer drives many concurrent solvers through
// a shared progress callback — the shape parallel/portfolio solving
// produces — so the race detector can see any unsynchronised access in
// the estimator or the stats snapshot it is stamped on.
func TestProgressCallbackRaceHammer(t *testing.T) {
	f := pigeonhole(6)
	var mu sync.Mutex
	furthest := map[int]float64{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewFromFormula(f, Options{ProgressEvery: 1})
			s.Progress = func(st Stats) {
				if st.Progress < 0 || st.Progress > 1 {
					t.Errorf("instance %d: estimate %v out of [0,1]", i, st.Progress)
				}
				mu.Lock()
				if st.Progress > furthest[i] {
					furthest[i] = st.Progress
				}
				mu.Unlock()
			}
			if st, err := s.Solve(); err != nil || st != Unsat {
				t.Errorf("instance %d: status %v err %v", i, st, err)
			}
		}(i)
	}
	wg.Wait()
	if len(furthest) != 8 {
		t.Fatalf("instances reporting: %d, want 8", len(furthest))
	}
}

func TestStatsAddProgressIsMax(t *testing.T) {
	a := Stats{Progress: 0.25}
	a.Add(Stats{Progress: 0.75})
	if a.Progress != 0.75 {
		t.Fatalf("Progress after Add: %v, want max 0.75", a.Progress)
	}
	a.Add(Stats{Progress: 0.1})
	if a.Progress != 0.75 {
		t.Fatalf("Progress regressed to %v", a.Progress)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Decisions: 1, Conflicts: 2, Propagations: 3, Restarts: 4, MaxDepth: 5,
		Backjumps: 6, Learnt: 7, LearntLits: 8, Minimised: 9, Simplified: 10, ElimVars: 11}
	b := Stats{Decisions: 10, Conflicts: 20, Propagations: 30, Restarts: 40, MaxDepth: 3,
		Backjumps: 60, Learnt: 70, LearntLits: 80, Minimised: 90, Simplified: 100, ElimVars: 110}
	a.Add(b)
	want := Stats{Decisions: 11, Conflicts: 22, Propagations: 33, Restarts: 44, MaxDepth: 5,
		Backjumps: 66, Learnt: 77, LearntLits: 88, Minimised: 99, Simplified: 110, ElimVars: 121}
	if a != want {
		t.Fatalf("got %+v want %+v", a, want)
	}
}

// BenchmarkSolve measures the CDCL search with the observability hook
// in its disabled (nil) state — the fast path every non-instrumented
// run takes. Compare against BenchmarkSolveProgress to see the cost of
// an armed hook; the nil path must be indistinguishable from the
// pre-hook solver.
func BenchmarkSolve(b *testing.B) {
	f := pigeonhole(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFromFormula(f, Options{})
		if st, err := s.Solve(); err != nil || st != Unsat {
			b.Fatalf("status %v err %v", st, err)
		}
	}
}

// BenchmarkSolveProgress is the same search with a live progress hook
// firing every 100 conflicts.
func BenchmarkSolveProgress(b *testing.B) {
	f := pigeonhole(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFromFormula(f, Options{ProgressEvery: 100})
		var fired int64
		s.Progress = func(st Stats) { fired++ }
		if st, err := s.Solve(); err != nil || st != Unsat {
			b.Fatalf("status %v err %v", st, err)
		}
	}
}
