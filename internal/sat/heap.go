package sat

import "repro/internal/cnf"

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index map for decrease/increase-key updates (MiniSat's order heap).
type varHeap struct {
	heap []cnf.Var
	pos  []int // pos[v-1] = index in heap, or -1
}

func (h *varHeap) inHeap(v cnf.Var) bool {
	return int(v) <= len(h.pos) && h.pos[v-1] >= 0
}

// push registers a brand-new variable and inserts it.
func (h *varHeap) push(v cnf.Var, act *[]float64) {
	for len(h.pos) < int(v) {
		h.pos = append(h.pos, -1)
	}
	h.insert(v, act)
}

// insert adds v to the heap if absent.
func (h *varHeap) insert(v cnf.Var, act *[]float64) {
	if h.inHeap(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v-1] = len(h.heap) - 1
	h.siftUp(len(h.heap)-1, act)
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v cnf.Var, act *[]float64) {
	if h.inHeap(v) {
		h.siftUp(h.pos[v-1], act)
	}
}

// popMax removes and returns the variable with maximal activity.
func (h *varHeap) popMax(act *[]float64) (cnf.Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top-1] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last-1] = 0
		h.siftDown(0, act)
	}
	return top, true
}

func (h *varHeap) less(i, j int, act *[]float64) bool {
	return (*act)[h.heap[i]-1] > (*act)[h.heap[j]-1]
}

func (h *varHeap) siftUp(i int, act *[]float64) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent, act) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) siftDown(i int, act *[]float64) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best, act) {
			best = l
		}
		if r < n && h.less(r, best, act) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]-1] = i
	h.pos[h.heap[j]-1] = j
}
