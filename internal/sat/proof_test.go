package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestProofPigeonhole(t *testing.T) {
	for holes := 3; holes <= 6; holes++ {
		f := pigeonhole(holes)
		s := NewFromFormula(f, Options{})
		s.EnableProof()
		st, err := s.Solve()
		if err != nil || st != Unsat {
			t.Fatalf("PHP(%d): %v %v", holes, st, err)
		}
		if err := CheckRUP(f, nil, s.ProofLog()); err != nil {
			t.Fatalf("PHP(%d): proof rejected: %v", holes, err)
		}
	}
}

func TestProofRandomUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	certified := 0
	for iter := 0; iter < 300; iter++ {
		nv := 1 + rng.Intn(10)
		f := randomFormula(rng, nv, 10+rng.Intn(40), 1+rng.Intn(3))
		s := NewFromFormula(f, Options{})
		s.EnableProof()
		st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st != Unsat {
			continue
		}
		if err := CheckRUP(f, nil, s.ProofLog()); err != nil {
			t.Fatalf("iter %d: valid proof rejected: %v", iter, err)
		}
		certified++
	}
	if certified < 30 {
		t.Fatalf("too few UNSAT instances certified: %d", certified)
	}
}

func TestProofUnderAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	certified := 0
	for iter := 0; iter < 200; iter++ {
		nv := 2 + rng.Intn(8)
		f := randomFormula(rng, nv, rng.Intn(30), 1+rng.Intn(4))
		var assumps []cnf.Lit
		seen := map[int]bool{}
		for i := 0; i <= rng.Intn(3); i++ {
			v := 1 + rng.Intn(nv)
			if seen[v] {
				continue
			}
			seen[v] = true
			assumps = append(assumps, cnf.MkLit(cnf.Var(v), rng.Intn(2) == 0))
		}
		s := NewFromFormula(f, Options{})
		s.EnableProof()
		st, err := s.Solve(assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if st != Unsat {
			continue
		}
		if err := CheckRUP(f, assumps, s.ProofLog()); err != nil {
			t.Fatalf("iter %d: proof under assumptions rejected: %v", iter, err)
		}
		certified++
	}
	if certified < 20 {
		t.Fatalf("too few assumption-UNSAT instances certified: %d", certified)
	}
}

func TestProofRejectsBogusLemma(t *testing.T) {
	// A satisfiable formula cannot have a valid refutation; a fabricated
	// proof must be rejected.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.NegLit(1), cnf.PosLit(2))
	bogus := &Proof{Lemmas: []cnf.Clause{
		{cnf.NegLit(2)}, // not a consequence: x2 can be true
	}}
	if err := CheckRUP(f, nil, bogus); err == nil {
		t.Fatal("bogus lemma accepted")
	}
}

func TestProofRejectsIncomplete(t *testing.T) {
	// Valid lemmas that never reach the empty clause must be rejected.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.PosLit(1), cnf.NegLit(2))
	proof := &Proof{Lemmas: []cnf.Clause{
		{cnf.PosLit(1)}, // genuine RUP consequence, but f is SAT
	}}
	if err := CheckRUP(f, nil, proof); err == nil {
		t.Fatal("incomplete proof accepted")
	}
}

func TestProofTrivialConflicts(t *testing.T) {
	// Root-level contradictions need no lemmas at all.
	f := cnf.New()
	f.AddUnit(cnf.PosLit(1))
	f.AddUnit(cnf.NegLit(1))
	if err := CheckRUP(f, nil, &Proof{}); err != nil {
		t.Fatalf("root conflict rejected: %v", err)
	}
	// Contradictory assumptions likewise.
	f2 := cnf.New()
	f2.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	if err := CheckRUP(f2, []cnf.Lit{cnf.PosLit(1), cnf.NegLit(1)}, &Proof{}); err != nil {
		t.Fatalf("assumption conflict rejected: %v", err)
	}
	// Empty clause in the input.
	f3 := cnf.New()
	f3.AddClause()
	if err := CheckRUP(f3, nil, &Proof{}); err != nil {
		t.Fatalf("empty input clause rejected: %v", err)
	}
}

func TestProofAgreesWithPartitioning(t *testing.T) {
	// Certify each partition's UNSAT verdict of a pigeonhole split on
	// two variables, mirroring how core certifies Safe verdicts.
	f := pigeonhole(5)
	for mask := 0; mask < 4; mask++ {
		assumps := []cnf.Lit{
			cnf.MkLit(1, mask&1 == 0),
			cnf.MkLit(2, mask&2 == 0),
		}
		s := NewFromFormula(f, Options{})
		s.EnableProof()
		st, err := s.Solve(assumps...)
		if err != nil || st != Unsat {
			t.Fatalf("mask %d: %v %v", mask, st, err)
		}
		if err := CheckRUP(f, assumps, s.ProofLog()); err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
	}
}
