package sat

import (
	"sync"
	"testing"
	"time"
)

// Interrupt raced from other goroutines mid-search: many concurrent
// interrupters against a live Solve must be race-clean (run under
// -race) and the solve must come back Unknown/ErrInterrupted promptly.
func TestInterruptRacedMidSearch(t *testing.T) {
	s := NewFromFormula(pigeonhole(9), Options{})
	done := make(chan struct{})
	var st Status
	var serr error
	go func() {
		st, serr = s.Solve()
		close(done)
	}()

	// Fire Interrupt from several goroutines at staggered times while
	// the search is in flight; Interrupted() is polled concurrently too.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * time.Millisecond)
			s.Interrupt()
			_ = s.Interrupted()
		}(i)
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not react to raced interrupt")
	}
	// PHP(9) cannot finish in a few milliseconds, so the interrupt must
	// have landed mid-search.
	if serr != ErrInterrupted || st != Unknown {
		t.Fatalf("status %v err %v, want Unknown/ErrInterrupted", st, serr)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() false after interrupt")
	}
}

// After an interrupt the same solver instance must be reusable:
// ClearInterrupt re-arms it and a repeat Solve reaches the real verdict.
func TestReSolveAfterInterrupt(t *testing.T) {
	s := NewFromFormula(pigeonhole(6), Options{})
	s.Interrupt() // pre-armed: the next Solve bails out at the first search step
	st, err := s.Solve()
	if err != ErrInterrupted || st != Unknown {
		t.Fatalf("pre-armed interrupt: status %v err %v", st, err)
	}

	// Without ClearInterrupt the flag is sticky: solving again still
	// returns immediately.
	st, err = s.Solve()
	if err != ErrInterrupted || st != Unknown {
		t.Fatalf("sticky interrupt: status %v err %v", st, err)
	}

	s.ClearInterrupt()
	if s.Interrupted() {
		t.Fatal("Interrupted() true after ClearInterrupt")
	}
	st, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("re-solve after ClearInterrupt: %v, want Unsat", st)
	}
}

// The interrupt → clear → re-solve cycle under goroutine churn: each
// round interrupts a live search from another goroutine, then clears
// and re-solves to the definite verdict. Exercises the interrupt
// flag's atomic lifecycle under -race.
func TestInterruptClearCycle(t *testing.T) {
	for round := 0; round < 3; round++ {
		s := NewFromFormula(pigeonhole(7), Options{})
		done := make(chan struct{})
		go func() {
			_, _ = s.Solve()
			close(done)
		}()
		time.Sleep(2 * time.Millisecond)
		s.Interrupt()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: interrupt not honoured", round)
		}
		s.ClearInterrupt()
		st, err := s.Solve()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st != Unsat {
			t.Fatalf("round %d: re-solve got %v, want Unsat", round, st)
		}
	}
}

func TestStopCauseStringsRoundTrip(t *testing.T) {
	for _, c := range []StopCause{CauseNone, CauseCancelled, CauseTimeout, CauseConflictBudget, CauseMemory} {
		if got := ParseStopCause(c.String()); got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	if CauseCancelled.Budgeted() || CauseNone.Budgeted() {
		t.Fatal("cancelled/none must not count as budget exhaustion")
	}
	if !CauseTimeout.Budgeted() || !CauseConflictBudget.Budgeted() || !CauseMemory.Budgeted() {
		t.Fatal("timeout/conflict-budget/memory must count as budget exhaustion")
	}
}
