package sat

import (
	"fmt"

	"repro/internal/cnf"
)

// Proof is a clausal (DRUP-style) refutation: the sequence of learnt
// clauses in derivation order. Each clause is a reverse-unit-propagation
// (RUP) consequence of the original formula plus the preceding lemmas,
// and the sequence ends in a state where unit propagation alone derives
// the empty clause. Checking a proof certifies an UNSAT verdict
// independently of the CDCL search that produced it — the counterpart
// of replay-validating SAT counterexamples on the interpreter.
type Proof struct {
	// Lemmas are the derived clauses, in order. An empty clause may
	// appear implicitly: the proof is complete when propagation of the
	// formula, the assumptions, and the lemmas conflicts.
	Lemmas []cnf.Clause
}

// EnableProof turns on proof recording; must be called before Solve.
func (s *Solver) EnableProof() {
	s.proof = &Proof{}
}

// ProofLog returns the recorded proof (nil unless EnableProof was
// called).
func (s *Solver) ProofLog() *Proof { return s.proof }

// CheckRUP verifies the proof against the original formula and the
// assumption literals under which UNSAT was reported. It checks that
// every lemma is a RUP consequence of what precedes it and that the
// accumulated clause set propagates to a conflict, i.e. derives the
// empty clause.
func CheckRUP(f *cnf.Formula, assumptions []cnf.Lit, p *Proof) error {
	e := newRUPEngine(f, assumptions)
	if e.conflictAtRoot {
		return nil // the formula plus assumptions is already conflicting
	}
	for i, lemma := range p.Lemmas {
		if !e.checkLemma(lemma) {
			return fmt.Errorf("sat: lemma %d of %d is not a RUP consequence: %v",
				i+1, len(p.Lemmas), lemma)
		}
		e.addClause(lemma)
		if e.conflictAtRoot {
			return nil // empty clause derived
		}
		if !e.propagateFixpointPersistent() {
			return nil // empty clause derived
		}
	}
	// All lemmas verified; the final state must already be conflicting.
	if e.propagateFixpoint() {
		return nil
	}
	return fmt.Errorf("sat: proof does not derive the empty clause (%d lemmas)", len(p.Lemmas))
}

// rupEngine is a decision-free propagation engine with trail undo,
// used only for proof checking.
type rupEngine struct {
	numVars int
	clauses [][]cnf.Lit
	watches map[cnf.Lit][]int // literal -> clause indices watching it
	assigns []int8
	trail   []cnf.Lit
	qhead   int
	// rootTrail marks the persistent prefix (formula units, assumptions,
	// lemma units): the engine never undoes below it.
	rootSize       int
	conflictAtRoot bool
}

func newRUPEngine(f *cnf.Formula, assumptions []cnf.Lit) *rupEngine {
	e := &rupEngine{
		numVars: f.NumVars,
		watches: map[cnf.Lit][]int{},
		assigns: make([]int8, f.NumVars+1),
	}
	for _, c := range f.Clauses {
		e.addClause(c)
		if e.conflictAtRoot {
			return e
		}
	}
	for _, a := range assumptions {
		if !e.enqueue(a) {
			e.conflictAtRoot = true
			return e
		}
	}
	if !e.propagateFixpointPersistent() {
		e.conflictAtRoot = true
	}
	return e
}

func (e *rupEngine) value(l cnf.Lit) int8 {
	v := e.assigns[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

func (e *rupEngine) enqueue(l cnf.Lit) bool {
	switch e.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	if l.Neg() {
		e.assigns[l.Var()] = lFalse
	} else {
		e.assigns[l.Var()] = lTrue
	}
	e.trail = append(e.trail, l)
	return true
}

// addClause registers a clause, normalising it first (duplicate
// literals collapse — essential so the checker's propagation is at
// least as strong as the solver's, which normalises on AddClause);
// tautologies are skipped and unit clauses are enqueued persistently.
func (e *rupEngine) addClause(c cnf.Clause) {
	nc, taut := append(cnf.Clause{}, c...).Normalize()
	if taut {
		return
	}
	c = nc
	for _, l := range c {
		if int(l.Var()) > e.numVars {
			e.numVars = int(l.Var())
			for len(e.assigns) <= e.numVars {
				e.assigns = append(e.assigns, lUndef)
			}
		}
	}
	switch len(c) {
	case 0:
		e.conflictAtRoot = true
		return
	case 1:
		if !e.enqueue(c[0]) {
			e.conflictAtRoot = true
		}
		e.rootSize = len(e.trail)
		return
	}
	idx := len(e.clauses)
	lits := append([]cnf.Lit{}, c...)
	e.clauses = append(e.clauses, lits)
	e.watches[lits[0]] = append(e.watches[lits[0]], idx)
	e.watches[lits[1]] = append(e.watches[lits[1]], idx)
}

// propagate runs unit propagation; returns false on conflict.
func (e *rupEngine) propagate() bool {
	for e.qhead < len(e.trail) {
		p := e.trail[e.qhead]
		e.qhead++
		np := p.Not()
		ws := e.watches[np]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			lits := e.clauses[ci]
			// Ensure np is at position 1.
			if lits[0] == np {
				lits[0], lits[1] = lits[1], lits[0]
			}
			if e.value(lits[0]) == lTrue {
				kept = append(kept, ci)
				continue
			}
			moved := false
			for k := 2; k < len(lits); k++ {
				if e.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					e.watches[lits[1]] = append(e.watches[lits[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, ci)
			if !e.enqueue(lits[0]) {
				// Conflict: keep remaining watchers and fail.
				kept = append(kept, ws[wi+1:]...)
				e.watches[np] = kept
				e.qhead = len(e.trail)
				return false
			}
		}
		e.watches[np] = kept
	}
	return true
}

// propagateFixpointPersistent propagates and persists the result (used
// during construction and after adding lemma units).
func (e *rupEngine) propagateFixpointPersistent() bool {
	ok := e.propagate()
	e.rootSize = len(e.trail)
	return ok
}

// propagateFixpoint propagates without persisting new assignments.
func (e *rupEngine) propagateFixpoint() bool {
	ok := e.propagate()
	if ok {
		e.undoToRoot()
		return false // no conflict
	}
	e.undoToRoot()
	return true // conflict derived
}

// checkLemma verifies RUP: asserting the negation of every literal of
// the lemma and propagating must yield a conflict.
func (e *rupEngine) checkLemma(lemma cnf.Clause) bool {
	for _, l := range lemma {
		switch e.value(l) {
		case lTrue:
			// The lemma is already satisfied at root level: trivially a
			// consequence (subsumed by the trail).
			e.undoToRoot()
			return true
		case lFalse:
			continue
		default:
			if !e.enqueue(l.Not()) {
				e.undoToRoot()
				return true
			}
		}
	}
	conflict := !e.propagate()
	e.undoToRoot()
	return conflict
}

func (e *rupEngine) undoToRoot() {
	for len(e.trail) > e.rootSize {
		l := e.trail[len(e.trail)-1]
		e.trail = e.trail[:len(e.trail)-1]
		e.assigns[l.Var()] = lUndef
	}
	e.qhead = e.rootSize
	if e.qhead > len(e.trail) {
		e.qhead = len(e.trail)
	}
}
