package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// This file serialises refutation proofs. Two formats are supported:
//
//   - DRAT-style text (WriteDRAT / ParseDRAT): one lemma per line as
//     signed DIMACS literals terminated by 0, the format external proof
//     checkers and humans read. Our proofs contain no deletion lines;
//     "d" lines are skipped on input for compatibility.
//   - The JSON encoding the distributed certificate layer uses is the
//     Proof struct itself: cnf.Lit is an integer, so Lemmas marshals as
//     [][]int in the solver's internal literal encoding (2v / 2v+1).
//
// Size accounting (NumLemmas / NumLits) lets senders and receivers
// budget serialisation up front — a proof's wire size is linear in
// NumLits — and lets the coordinator reject implausibly large
// certificates before decompressing them.

// NumLemmas returns the number of derived clauses in the proof,
// nil-safe.
func (p *Proof) NumLemmas() int {
	if p == nil {
		return 0
	}
	return len(p.Lemmas)
}

// NumLits returns the total literal count across all lemmas — the
// quantity a serialised proof's size is proportional to. Nil-safe.
func (p *Proof) NumLits() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, c := range p.Lemmas {
		n += len(c)
	}
	return n
}

// WriteDRAT writes the proof as DRAT-style text: one lemma per line of
// space-separated signed DIMACS literals, each terminated by " 0". A
// header comment records the lemma count so a truncated file is
// detectable by eye.
func WriteDRAT(w io.Writer, p *Proof) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c RUP proof, %d lemmas, %d literals\n", p.NumLemmas(), p.NumLits()); err != nil {
		return err
	}
	if p != nil {
		for _, lemma := range p.Lemmas {
			for _, l := range lemma {
				if _, err := fmt.Fprintf(bw, "%d ", l.Dimacs()); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString("0\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ParseDRAT reads a DRAT-style text proof: comment lines ("c ...") and
// deletion lines ("d ...") are skipped, every other line must be signed
// DIMACS literals terminated by 0. The empty clause ("0" alone) parses
// as a zero-length lemma.
func ParseDRAT(r io.Reader) (*Proof, error) {
	p := &Proof{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "d") {
			continue
		}
		var lemma cnf.Clause
		terminated := false
		for _, tok := range strings.Fields(line) {
			if terminated {
				return nil, fmt.Errorf("sat: drat line %d: literals after terminating 0", lineNo)
			}
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: drat line %d: bad literal %q", lineNo, tok)
			}
			if n == 0 {
				terminated = true
				continue
			}
			lemma = append(lemma, cnf.FromDimacs(n))
		}
		if !terminated {
			return nil, fmt.Errorf("sat: drat line %d: missing terminating 0", lineNo)
		}
		p.Lemmas = append(p.Lemmas, lemma)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: drat: %w", err)
	}
	return p, nil
}
