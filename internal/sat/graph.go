package sat

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// DecisionGraph records the solver's search as the decision graph
// visualised in Figures 4 and 6 of the paper: one node per decision,
// chronological left-to-right order, an edge from each decision to the
// one made below it, and backjumps truncating the current path
// (backjump edges themselves are omitted, as in the paper's figures).
type DecisionGraph struct {
	Nodes []GraphNode
	Edges [][2]int

	// path[l] is the node index of the current decision at level l+1.
	path []int
	// cap bounds the recorded nodes; recording stops beyond it.
	cap int
}

// GraphNode is one decision.
type GraphNode struct {
	// Seq is the chronological index.
	Seq int
	// Level is the decision level (depth in the graph).
	Level int
	// Lit is the decided literal.
	Lit cnf.Lit
}

// newDecisionGraph returns a recorder bounded to maxNodes.
func newDecisionGraph(maxNodes int) *DecisionGraph {
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	return &DecisionGraph{cap: maxNodes}
}

func (g *DecisionGraph) recordDecision(level int, lit cnf.Lit) {
	if len(g.Nodes) >= g.cap {
		return
	}
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, GraphNode{Seq: id, Level: level, Lit: lit})
	// Edge from the decision one level up on the current path.
	if level >= 2 && level-2 < len(g.path) {
		g.Edges = append(g.Edges, [2]int{g.path[level-2], id})
	}
	for len(g.path) < level {
		g.path = append(g.path, 0)
	}
	g.path = g.path[:level]
	g.path[level-1] = id
}

func (g *DecisionGraph) recordBackjump(toLevel int) {
	if toLevel < 0 {
		toLevel = 0
	}
	if toLevel < len(g.path) {
		g.path = g.path[:toLevel]
	}
}

// MaxDepth returns the deepest decision level recorded.
func (g *DecisionGraph) MaxDepth() int {
	max := 0
	for _, n := range g.Nodes {
		if n.Level > max {
			max = n.Level
		}
	}
	return max
}

// WriteDOT renders the decision graph in Graphviz DOT format, one node
// per decision ranked by level (the vertical axis of the paper's
// figures).
func (g *DecisionGraph) WriteDOT(w io.Writer, title string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", title)
	fmt.Fprintf(bw, "  graph [rankdir=TB, label=%q];\n", title)
	fmt.Fprintf(bw, "  node [shape=point, width=0.06];\n")
	if len(g.Nodes) > 0 {
		fmt.Fprintf(bw, "  root [shape=circle, width=0.12, label=\"\"];\n")
	}
	// Group nodes by level for ranking.
	byLevel := map[int][]int{}
	for _, n := range g.Nodes {
		byLevel[n.Level] = append(byLevel[n.Level], n.Seq)
	}
	for level, ids := range byLevel {
		fmt.Fprintf(bw, "  { rank=same;")
		for _, id := range ids {
			fmt.Fprintf(bw, " n%d;", id)
		}
		fmt.Fprintf(bw, " } // level %d\n", level)
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(bw, "  n%d [tooltip=\"#%d @%d %s\"];\n", n.Seq, n.Seq, n.Level, n.Lit)
		if n.Level == 1 {
			fmt.Fprintf(bw, "  root -> n%d;\n", n.Seq)
		}
	}
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "  n%d -> n%d;\n", e[0], e[1])
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// EnableGraph attaches a decision-graph recorder to the solver
// (maxNodes 0 uses the default bound). Must be called before Solve.
func (s *Solver) EnableGraph(maxNodes int) *DecisionGraph {
	s.graph = newDecisionGraph(maxNodes)
	return s.graph
}

// Graph returns the recorded decision graph, or nil.
func (s *Solver) Graph() *DecisionGraph { return s.graph }
