package sat

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cnf"
)

func mk(v int, neg bool) cnf.Lit { return cnf.MkLit(cnf.Var(v), neg) }

func TestEmptyFormulaSat(t *testing.T) {
	s := New(0, Options{})
	st, err := s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("got %v,%v", st, err)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New(1, Options{})
	s.AddClause(mk(1, false))
	st, _ := s.Solve()
	if st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Model()[0] {
		t.Fatal("x1 should be true")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New(1, Options{})
	s.AddClause(mk(1, false))
	ok := s.AddClause(mk(1, true))
	if ok {
		t.Fatal("expected inconsistency detected at add time")
	}
	st, _ := s.Solve()
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (x ∨ y) ∧ (x ∨ ¬y) ∧ (¬x ∨ y) ∧ (¬x ∨ ¬y)
	s := New(2, Options{})
	s.AddClause(mk(1, false), mk(2, false))
	s.AddClause(mk(1, false), mk(2, true))
	s.AddClause(mk(1, true), mk(2, false))
	s.AddClause(mk(1, true), mk(2, true))
	st, _ := s.Solve()
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestModelSatisfiesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(rng, 3+rng.Intn(12), 1+rng.Intn(50), 3)
		s := NewFromFormula(f, Options{})
		st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st == Sat {
			m := s.Model()
			assign := make([]bool, f.NumVars+1)
			copy(assign[1:], m)
			if !f.Eval(assign) {
				t.Fatalf("iter %d: model does not satisfy formula", iter)
			}
		}
	}
}

// The central correctness property: CDCL agrees with brute force.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		nv := 1 + rng.Intn(10)
		f := randomFormula(rng, nv, rng.Intn(40), 1+rng.Intn(4))
		want := bruteForceSat(f)
		s := NewFromFormula(f, Options{})
		st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if (st == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v formula=%v", iter, st, want, f)
		}
	}
}

// Diversified configurations must all agree with brute force.
func TestConfigurationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	opts := []Options{
		{},
		{NoPhaseSaving: true},
		{InitialPolarity: true},
		{RandomizeFreq: 0.2, Seed: 7},
		{VarDecay: 0.8, ClauseDecay: 0.99, RestartBase: 20},
	}
	for iter := 0; iter < 100; iter++ {
		nv := 1 + rng.Intn(9)
		f := randomFormula(rng, nv, rng.Intn(35), 1+rng.Intn(4))
		want := bruteForceSat(f)
		for oi, o := range opts {
			s := NewFromFormula(f, o)
			st, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if (st == Sat) != want {
				t.Fatalf("iter %d opt %d: solver=%v want sat=%v", iter, oi, st, want)
			}
		}
	}
}

func TestSolveUnderAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		nv := 2 + rng.Intn(8)
		f := randomFormula(rng, nv, rng.Intn(25), 1+rng.Intn(4))
		// Pick random assumptions.
		var assumps []cnf.Lit
		seen := map[int]bool{}
		for i := 0; i <= rng.Intn(3); i++ {
			v := 1 + rng.Intn(nv)
			if seen[v] {
				continue
			}
			seen[v] = true
			assumps = append(assumps, mk(v, rng.Intn(2) == 0))
		}
		// Brute-force reference: conjoin assumptions as units.
		ref := f.Clone()
		for _, a := range assumps {
			ref.AddUnit(a)
		}
		want := bruteForceSat(ref)
		s := NewFromFormula(f, Options{})
		st, err := s.Solve(assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if (st == Sat) != want {
			t.Fatalf("iter %d: solver=%v want sat=%v assumps=%v", iter, st, want, assumps)
		}
		if st == Sat {
			for _, a := range assumps {
				if !s.ModelValue(a) {
					t.Fatalf("iter %d: assumption %v violated in model", iter, a)
				}
			}
		}
	}
}

func TestAssumptionsAreFrozen(t *testing.T) {
	s := New(3, Options{})
	s.AddClause(mk(1, false), mk(2, false))
	st, _ := s.Solve(mk(1, true))
	if st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Frozen(1) {
		t.Fatal("assumption variable not frozen")
	}
	if s.Frozen(2) {
		t.Fatal("non-assumption variable frozen")
	}
	if s.ModelValue(mk(1, true)) != true {
		t.Fatal("assumption not honoured")
	}
}

func TestConflictingAssumptions(t *testing.T) {
	s := New(2, Options{})
	s.AddClause(mk(1, false), mk(2, false))
	st, _ := s.Solve(mk(1, true), mk(2, true))
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
	// Directly contradictory assumptions.
	s2 := New(1, Options{})
	st2, _ := s2.Solve(mk(1, false), mk(1, true))
	if st2 != Unsat {
		t.Fatalf("got %v", st2)
	}
	// Repeated identical assumptions are fine.
	s3 := New(1, Options{})
	st3, _ := s3.Solve(mk(1, false), mk(1, false))
	if st3 != Sat {
		t.Fatalf("got %v", st3)
	}
}

// Pigeonhole principle PHP(n+1,n): classic hard UNSAT family.
func pigeonhole(holes int) *cnf.Formula {
	pigeons := holes + 1
	f := cnf.New()
	v := func(p, h int) cnf.Var { return cnf.Var(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		var c []cnf.Lit
		for h := 0; h < holes; h++ {
			c = append(c, cnf.PosLit(v(p, h)))
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h)))
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		s := NewFromFormula(pigeonhole(holes), Options{})
		st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st != Unsat {
			t.Fatalf("PHP(%d): got %v", holes, st)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	s := NewFromFormula(pigeonhole(6), Options{})
	st, _ := s.Solve()
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
	stats := s.Stats()
	if stats.Decisions == 0 || stats.Conflicts == 0 || stats.Propagations == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.MaxDepth == 0 {
		t.Fatal("max depth not tracked")
	}
	if stats.Learnt == 0 {
		t.Fatal("no learnt clauses recorded")
	}
}

func TestInterrupt(t *testing.T) {
	s := NewFromFormula(pigeonhole(9), Options{})
	done := make(chan struct{})
	var st Status
	var err error
	go func() {
		st, err = s.Solve()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	s.Interrupt()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("solver did not react to interrupt")
	}
	if err == ErrInterrupted && st != Unknown {
		t.Fatalf("interrupted but status %v", st)
	}
	if err == nil && st == Unknown {
		t.Fatal("unknown status without error")
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := NewFromFormula(pigeonhole(9), Options{MaxConflicts: 50})
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Fatalf("expected Unknown under tiny budget, got %v", st)
	}
	if s.Stats().Conflicts < 50 {
		t.Fatalf("budget not consumed: %d", s.Stats().Conflicts)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if g := luby(int64(i + 1)); g != w {
			t.Fatalf("luby(%d)=%d want %d", i+1, g, w)
		}
	}
}

func TestIncrementalSolveCalls(t *testing.T) {
	// Repeated Solve calls accumulate frozen assumptions (the paper's
	// unit-clause freezing is permanent; fresh solvers are used per
	// partition).
	s := New(3, Options{})
	s.AddClause(mk(1, false), mk(2, false), mk(3, false))
	s.AddClause(mk(1, true), mk(2, true))
	cases := []struct {
		assumps []cnf.Lit
		want    Status
	}{
		{nil, Sat},
		{[]cnf.Lit{mk(1, false), mk(2, false)}, Unsat},
		{[]cnf.Lit{mk(1, false)}, Sat},
		{nil, Sat},
	}
	for i, c := range cases {
		st, err := s.Solve(c.assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if st != c.want {
			t.Fatalf("case %d: got %v want %v", i, st, c.want)
		}
	}
}

func TestAssumptionFreezingIsPermanent(t *testing.T) {
	// After freezing ¬x1, a later request to assume x1 contradicts the
	// frozen unit and must report Unsat — the documented paper
	// behaviour, not an incremental push/pop interface.
	s := New(2, Options{})
	s.AddClause(mk(1, false), mk(2, false))
	if st, _ := s.Solve(mk(1, true)); st != Sat {
		t.Fatalf("first call: %v", st)
	}
	if st, _ := s.Solve(mk(1, false)); st != Unsat {
		t.Fatalf("contradicting a frozen assumption: got %v, want UNSAT", st)
	}
	// Re-asserting the same frozen assumption stays satisfiable.
	if st, _ := s.Solve(mk(1, true)); st != Sat {
		t.Fatalf("re-asserting frozen assumption: %v", st)
	}
}

func TestClauseSharingCallback(t *testing.T) {
	var mu sync.Mutex
	var shared [][]cnf.Lit
	s := NewFromFormula(pigeonhole(5), Options{})
	s.ShareMaxLBD = 8
	s.ShareLearnt = func(lits []cnf.Lit, lbd int) {
		mu.Lock()
		shared = append(shared, lits)
		mu.Unlock()
	}
	st, _ := s.Solve()
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
	mu.Lock()
	n := len(shared)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no clauses shared")
	}
}

func TestImportCallback(t *testing.T) {
	// Import a unit that makes the formula UNSAT; the solver must pick it
	// up at a restart. Use a hard formula so restarts actually happen.
	f := pigeonhole(8)
	s := NewFromFormula(f, Options{RestartBase: 10})
	delivered := false
	s.Import = func() [][]cnf.Lit {
		if delivered {
			return nil
		}
		delivered = true
		// An empty-producing pair of units: x1 and ¬x1.
		return [][]cnf.Lit{{cnf.PosLit(1)}, {cnf.NegLit(1)}}
	}
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestGrowToViaAddClause(t *testing.T) {
	s := New(0, Options{})
	s.AddClause(mk(10, false), mk(3, true))
	if s.NumVars() != 10 {
		t.Fatalf("NumVars=%d", s.NumVars())
	}
	st, _ := s.Solve()
	if st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String wrong")
	}
}

// randomFormula builds a random k-CNF-ish formula.
func randomFormula(rng *rand.Rand, nv, nc, maxLen int) *cnf.Formula {
	f := cnf.New()
	f.NumVars = nv
	for i := 0; i < nc; i++ {
		n := 1 + rng.Intn(maxLen)
		c := make([]cnf.Lit, 0, n)
		for j := 0; j < n; j++ {
			c = append(c, cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0))
		}
		f.AddClause(c...)
	}
	return f
}

func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars
	if n > 22 {
		panic("too many variables for brute force")
	}
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func BenchmarkSolvePigeonhole7(b *testing.B) {
	f := pigeonhole(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFromFormula(f, Options{})
		st, _ := s.Solve()
		if st != Unsat {
			b.Fatal("wrong status")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(123))
	nv := 120
	f := randomFormula(rng, nv, int(4.1*float64(nv)), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFromFormula(f, Options{})
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleSolver() {
	s := New(2, Options{})
	s.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	s.AddClause(cnf.NegLit(1))
	st, _ := s.Solve()
	fmt.Println(st, s.ModelValue(cnf.PosLit(2)))
	// Output: SAT true
}
