package sat

import (
	"testing"
	"time"
)

// TestStatsAddLaws locks in the aggregation laws documented on
// Stats.Add: counters sum (including the introspection fields),
// MaxDepth and Progress take the maximum.
func TestStatsAddLaws(t *testing.T) {
	a := Stats{
		Decisions: 10, Conflicts: 5, Propagations: 100, Restarts: 2,
		MaxDepth: 7, Backjumps: 3, Learnt: 4, LearntLits: 40,
		Minimised: 6, Simplified: 1, ElimVars: 2,
		LearntDeleted: 3, LearntDB: 9, Progress: 0.25,
		MemBytes: 1 << 20, PeakMemBytes: 2 << 20, MemShrinks: 1,
	}
	a.LBDHist = LBDHistogram{1, 2, 0, 0, 0, 0, 0, 0, 1}
	b := Stats{
		Decisions: 1, Conflicts: 2, Propagations: 3, Restarts: 4,
		MaxDepth: 5, Backjumps: 6, Learnt: 7, LearntLits: 8,
		Minimised: 9, Simplified: 10, ElimVars: 11,
		LearntDeleted: 12, LearntDB: 13, Progress: 0.75,
		MemBytes: 3 << 20, PeakMemBytes: 5 << 20, MemShrinks: 2,
	}
	b.LBDHist = LBDHistogram{0, 1, 1, 0, 0, 0, 0, 0, 2}

	sum := a
	sum.Add(b)

	wantCounters := map[string][2]int64{
		"Decisions":     {sum.Decisions, a.Decisions + b.Decisions},
		"Conflicts":     {sum.Conflicts, a.Conflicts + b.Conflicts},
		"Propagations":  {sum.Propagations, a.Propagations + b.Propagations},
		"Restarts":      {sum.Restarts, a.Restarts + b.Restarts},
		"Backjumps":     {sum.Backjumps, a.Backjumps + b.Backjumps},
		"Learnt":        {sum.Learnt, a.Learnt + b.Learnt},
		"LearntLits":    {sum.LearntLits, a.LearntLits + b.LearntLits},
		"Minimised":     {sum.Minimised, a.Minimised + b.Minimised},
		"Simplified":    {sum.Simplified, a.Simplified + b.Simplified},
		"ElimVars":      {sum.ElimVars, a.ElimVars + b.ElimVars},
		"LearntDeleted": {sum.LearntDeleted, a.LearntDeleted + b.LearntDeleted},
		"LearntDB":      {sum.LearntDB, a.LearntDB + b.LearntDB},
		"MemBytes":      {sum.MemBytes, a.MemBytes + b.MemBytes},
		"PeakMemBytes":  {sum.PeakMemBytes, a.PeakMemBytes + b.PeakMemBytes},
		"MemShrinks":    {sum.MemShrinks, a.MemShrinks + b.MemShrinks},
	}
	for name, got := range wantCounters {
		if got[0] != got[1] {
			t.Errorf("%s: got %d, want sum %d", name, got[0], got[1])
		}
	}
	if sum.MaxDepth != 7 {
		t.Errorf("MaxDepth: got %d, want max 7", sum.MaxDepth)
	}
	if sum.Progress != 0.75 {
		t.Errorf("Progress: got %v, want max 0.75", sum.Progress)
	}
	for i := range sum.LBDHist {
		if want := a.LBDHist[i] + b.LBDHist[i]; sum.LBDHist[i] != want {
			t.Errorf("LBDHist[%d]: got %d, want %d", i, sum.LBDHist[i], want)
		}
	}

	// Add must be commutative on the counters and max fields.
	sum2 := b
	sum2.Add(a)
	if sum != sum2 {
		t.Errorf("Add not commutative:\n a+b = %+v\n b+a = %+v", sum, sum2)
	}
}

// TestLBDHistogramBucketing checks the bucketing against a
// hand-computed trace of LBD observations.
func TestLBDHistogramBucketing(t *testing.T) {
	// Bounds: 1, 2, 3, 4, 6, 8, 12, 16, +overflow.
	trace := []int{1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17, 100}
	var h LBDHistogram
	for _, lbd := range trace {
		h.Observe(lbd)
	}
	want := LBDHistogram{
		2, // lbd 1 ×2
		1, // lbd 2
		1, // lbd 3
		1, // lbd 4
		2, // lbd 5,6
		2, // lbd 7,8
		2, // lbd 9,12
		2, // lbd 13,16
		2, // lbd 17,100 (overflow)
	}
	if h != want {
		t.Fatalf("bucketing mismatch:\n got  %v\n want %v", h, want)
	}
	if h.Total() != int64(len(trace)) {
		t.Fatalf("Total: got %d, want %d", h.Total(), len(trace))
	}
	// Glue fraction: LBD ≤ 2 observations are {1,1,2} of 15.
	if got, want := h.GlueFraction(), 3.0/15.0; got != want {
		t.Fatalf("GlueFraction: got %v, want %v", got, want)
	}
}

// TestLBDBucketBoundsExhaustive walks every LBD 0..20 and checks the
// bucket index is consistent with LBDBounds.
func TestLBDBucketBoundsExhaustive(t *testing.T) {
	for lbd := 0; lbd <= 20; lbd++ {
		got := LBDBucket(lbd)
		want := LBDBucketCount - 1
		for i, b := range LBDBounds {
			if lbd <= b {
				want = i
				break
			}
		}
		if got != want {
			t.Errorf("LBDBucket(%d) = %d, want %d", lbd, got, want)
		}
	}
}

// TestHardnessMonotoneInConflictRate: for a fixed interval and progress
// delta, a rising conflict count must never lower the hardness score.
func TestHardnessMonotoneInConflictRate(t *testing.T) {
	const dt = 500 * time.Millisecond
	for _, slope := range []float64{0, 0.001, 0.01, 0.2} {
		prev := 0.0
		for conflicts := int64(0); conflicts <= 10000; conflicts += 250 {
			h := Hardness(conflicts, slope, dt)
			if h < prev {
				t.Fatalf("hardness decreased under rising conflict rate: slope=%v conflicts=%d: %v < %v",
					slope, conflicts, h, prev)
			}
			prev = h
		}
	}
	// Stalled progress must score at least as hard as moving progress.
	if Hardness(1000, 0.4, time.Second) > Hardness(1000, 0, time.Second) {
		t.Fatal("progressing instance scored harder than a stalled one")
	}
	// Degenerate inputs score zero.
	if Hardness(100, 0, 0) != 0 || Hardness(0, 0, time.Second) != 0 {
		t.Fatal("degenerate hardness inputs must score 0")
	}
	// Slope clamps at 1/s: hardness never goes negative.
	if h := Hardness(10, 5, time.Second); h < 0 {
		t.Fatalf("hardness went negative under steep slope: %v", h)
	}
}

// TestSamplerTimeSeries feeds a deterministic snapshot sequence through
// the sampler and checks rates, hardness and the retained window.
func TestSamplerTimeSeries(t *testing.T) {
	sp := NewSampler(3)
	t0 := sp.origin

	sp.observeAt(t0, Stats{Conflicts: 0, Decisions: 0, Propagations: 0, Progress: 0})
	sp.observeAt(t0.Add(time.Second), Stats{Conflicts: 100, Decisions: 200, Propagations: 4000, Restarts: 1, Progress: 0.1})
	sp.observeAt(t0.Add(2*time.Second), Stats{Conflicts: 400, Decisions: 500, Propagations: 9000, Restarts: 2, Progress: 0.1})

	pts := sp.Points()
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	s1, s2 := pts[1], pts[2]
	if s1.ConflictRate != 100 || s1.DecisionRate != 200 || s1.PropagationRate != 4000 {
		t.Fatalf("sample 1 rates: %+v", s1)
	}
	// Interval 1: 100 conflicts/s, slope 0.1/s → hardness 100×0.9.
	if want := 100 * 0.9; s1.Hardness != want {
		t.Fatalf("sample 1 hardness: got %v, want %v", s1.Hardness, want)
	}
	// Interval 2: 300 conflicts/s, flat progress → hardness 300.
	if s2.ConflictRate != 300 || s2.Hardness != 300 {
		t.Fatalf("sample 2: rate=%v hardness=%v, want 300/300", s2.ConflictRate, s2.Hardness)
	}
	if s2.Restarts != 2 {
		t.Fatalf("restart timeline: got %d, want 2", s2.Restarts)
	}
	if sp.HardnessScore() != 300 {
		t.Fatalf("HardnessScore: got %v, want 300", sp.HardnessScore())
	}

	// A fourth sample must evict the oldest point (window of 3).
	sp.observeAt(t0.Add(3*time.Second), Stats{Conflicts: 500, Progress: 0.2})
	pts = sp.Points()
	if len(pts) != 3 || pts[0].AtMillis != 1000 {
		t.Fatalf("window eviction failed: %+v", pts)
	}

	// Nil sampler is a no-op everywhere.
	var nilSP *Sampler
	nilSP.Observe(Stats{Conflicts: 1})
	if nilSP.Points() != nil || nilSP.HardnessScore() != 0 {
		t.Fatal("nil sampler must no-op")
	}
	if _, ok := nilSP.Last(); ok {
		t.Fatal("nil sampler reported a sample")
	}
}

// TestSolverPopulatesIntrospection runs a real solve on a pigeonhole
// formula and checks the new Stats fields are populated: every learnt
// clause lands in an LBD bucket and the learnt-DB size is stamped.
func TestSolverPopulatesIntrospection(t *testing.T) {
	s := NewFromFormula(pigeonhole(5), Options{}) // PHP(5,4): unsat, needs real search
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("pigeonhole verdict %v, want UNSAT", st)
	}
	stats := s.Stats()
	if stats.Learnt == 0 {
		t.Fatal("no learnt clauses on a pigeonhole instance")
	}
	if got := stats.LBDHist.Total(); got != stats.Learnt {
		t.Fatalf("LBD histogram total %d != learnt %d", got, stats.Learnt)
	}
}
