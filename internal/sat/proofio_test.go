package sat

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cnf"
)

// pigeonholeProof solves PHP(holes) with proof recording and returns the
// formula and its checked refutation.
func pigeonholeProof(t *testing.T, holes int) (*cnf.Formula, *Proof) {
	t.Helper()
	f := pigeonhole(holes)
	s := NewFromFormula(f, Options{})
	s.EnableProof()
	st, err := s.Solve()
	if err != nil || st != Unsat {
		t.Fatalf("PHP(%d): %v, %v", holes, st, err)
	}
	return f, s.ProofLog()
}

func TestDRATRoundTrip(t *testing.T) {
	f, p := pigeonholeProof(t, 3)
	if p.NumLemmas() == 0 || p.NumLits() == 0 {
		t.Fatalf("trivial proof: %d lemmas, %d lits", p.NumLemmas(), p.NumLits())
	}
	var buf bytes.Buffer
	if err := WriteDRAT(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDRAT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Lemmas, back.Lemmas) {
		t.Fatalf("round trip changed the proof:\n%v\n%v", p.Lemmas, back.Lemmas)
	}
	if err := CheckRUP(f, nil, back); err != nil {
		t.Fatalf("re-parsed proof rejected: %v", err)
	}
}

func TestDRATParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"1 2 3\n",    // missing terminator
		"1 x 0\n",    // non-integer literal
		"1 0 2 0\n",  // literals after the terminator
		"0 trail\n",  // ditto, non-numeric
	} {
		if _, err := ParseDRAT(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseDRAT(%q) accepted", in)
		}
	}
}

func TestDRATParseSkipsCommentsAndDeletions(t *testing.T) {
	p, err := ParseDRAT(strings.NewReader("c header\nd 1 2 0\n-1 2 0\n\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []cnf.Clause{{cnf.NegLit(1), cnf.PosLit(2)}, nil}
	if len(p.Lemmas) != 2 || !reflect.DeepEqual(p.Lemmas[0], want[0]) || len(p.Lemmas[1]) != 0 {
		t.Fatalf("lemmas %v, want %v", p.Lemmas, want)
	}
}

func TestProofSizeNilSafe(t *testing.T) {
	var p *Proof
	if p.NumLemmas() != 0 || p.NumLits() != 0 {
		t.Fatal("nil proof has non-zero size")
	}
}
