package sat

import (
	"testing"
	"time"

	"repro/internal/cnf"
)

// The incremental live-byte accounting must track clause adds, learnt
// clauses, and variable growth, and the Stats snapshot must mirror the
// accessor values.
func TestMemAccountingTracksFootprint(t *testing.T) {
	s := NewFromFormula(pigeonhole(5), Options{})
	base := s.LiveBytes()
	if base <= 0 {
		t.Fatalf("base footprint %d, want > 0", base)
	}
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("verdict %v, want Unsat", st)
	}
	if s.PeakBytes() < s.LiveBytes() || s.PeakBytes() < base {
		t.Fatalf("peak %d below live %d / base %d", s.PeakBytes(), s.LiveBytes(), base)
	}
	stats := s.Stats()
	if stats.MemBytes != s.LiveBytes() || stats.PeakMemBytes != s.PeakBytes() {
		t.Fatalf("stats snapshot (%d, %d) disagrees with accessors (%d, %d)",
			stats.MemBytes, stats.PeakMemBytes, s.LiveBytes(), s.PeakBytes())
	}
	if stats.Learnt > 0 && s.PeakBytes() <= base {
		t.Fatal("learnt clauses did not move the peak above the base footprint")
	}
}

// reduceDB must give back the bytes of the clauses it deletes: the
// accounting shrinks by exactly the deleted clauses' cost.
func TestMemAccountingReduceDBRefunds(t *testing.T) {
	s := New(20, Options{})
	for v := cnf.Var(1); v+2 <= 20; v += 3 {
		s.recordLearnt([]cnf.Lit{cnf.PosLit(v), cnf.PosLit(v + 1), cnf.PosLit(v + 2)}, 3)
	}
	before := s.LiveBytes()
	deletedBefore := s.stats.LearntDeleted
	s.reduceDB()
	deleted := s.stats.LearntDeleted - deletedBefore
	if deleted == 0 {
		t.Fatal("reduceDB deleted nothing")
	}
	want := before - deleted*clauseBytes(3)
	if got := s.LiveBytes(); got != want {
		t.Fatalf("live bytes after reduceDB: %d, want %d (deleted %d clauses)", got, want, deleted)
	}
}

// A solver whose footprint exceeds the budget and cannot shrink its way
// back (nothing learnt to throw away) must stop with ErrMemBudget at
// the first conflict boundary.
func TestMemBudgetHardStop(t *testing.T) {
	s := NewFromFormula(pigeonhole(7), Options{MemBudgetMB: 1})
	// Pad the variable set so the irreducible base footprint alone is
	// over the 1 MiB budget: shrinking cannot recover it.
	s.growTo(12000)
	st, err := s.Solve()
	if err != ErrMemBudget {
		t.Fatalf("err %v, want ErrMemBudget", err)
	}
	if st != Unknown {
		t.Fatalf("status %v, want Unknown", st)
	}
}

// shrinkForMem is the degrade step: when the learnt DB is what pushed
// the footprint over budget, emergency reductions must recover it and
// count a MemShrinks event, without stopping the solve.
func TestMemBudgetShrinkRecovers(t *testing.T) {
	s := New(0, Options{MemBudgetMB: 1})
	// Base below budget, learnt DB pushes it over: 8000 ternary learnts
	// ≈ 8000 × clauseBytes(3) ≈ 1.1 MiB on top of a small base.
	s.growTo(30)
	for i := 0; i < 8000; i++ {
		v := cnf.Var(1 + (i % 28))
		s.recordLearnt([]cnf.Lit{cnf.PosLit(v), cnf.NegLit(v + 1), cnf.PosLit(v + 2)}, 3)
	}
	if !s.overMemBudget() {
		t.Fatalf("setup: %d bytes not over the 1 MiB budget", s.LiveBytes())
	}
	if !s.shrinkForMem() {
		t.Fatalf("shrink failed to recover the budget (live %d)", s.LiveBytes())
	}
	if s.overMemBudget() {
		t.Fatalf("still over budget after successful shrink: %d", s.LiveBytes())
	}
	if s.stats.MemShrinks == 0 {
		t.Fatal("no MemShrinks recorded")
	}
}

// InterruptMemory mid-search must surface as ErrMemBudget — terminal
// budget exhaustion — not ErrInterrupted, and ClearInterrupt must
// disarm the memory flag so a later plain Interrupt reports plain
// cancellation again.
func TestInterruptMemoryMidSearch(t *testing.T) {
	s := NewFromFormula(pigeonhole(9), Options{})
	done := make(chan struct{})
	var st Status
	var serr error
	go func() {
		st, serr = s.Solve()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	s.InterruptMemory()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not react to InterruptMemory")
	}
	if serr != ErrMemBudget || st != Unknown {
		t.Fatalf("status %v err %v, want Unknown/ErrMemBudget", st, serr)
	}

	s.ClearInterrupt()
	s.Interrupt()
	if _, err := s.Solve(); err != ErrInterrupted {
		t.Fatalf("plain interrupt after clear: err %v, want ErrInterrupted", err)
	}
}
