package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// simplifyAndSolve runs the full simplifier pipeline and decides
// satisfiability, reconstructing the model on SAT.
func simplifyAndSolve(t *testing.T, f *cnf.Formula) (Status, []bool) {
	t.Helper()
	st, model, err := SolveSimplified(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, model
}

func TestSimplifyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 400; iter++ {
		nv := 1 + rng.Intn(10)
		f := randomFormula(rng, nv, rng.Intn(40), 1+rng.Intn(4))
		want := bruteForceSat(f)
		st, model := simplifyAndSolve(t, f)
		if (st == Sat) != want {
			t.Fatalf("iter %d: simplified=%v bruteforce=%v\n%v", iter, st, want, f)
		}
		if st == Sat {
			assign := make([]bool, f.NumVars+1)
			copy(assign[1:], model)
			if !f.Eval(assign) {
				t.Fatalf("iter %d: reconstructed model invalid", iter)
			}
		}
	}
}

func TestSimplifyUnderAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for iter := 0; iter < 200; iter++ {
		nv := 2 + rng.Intn(8)
		f := randomFormula(rng, nv, rng.Intn(30), 1+rng.Intn(4))
		var assumps []cnf.Lit
		seen := map[int]bool{}
		for i := 0; i <= rng.Intn(3); i++ {
			v := 1 + rng.Intn(nv)
			if seen[v] {
				continue
			}
			seen[v] = true
			assumps = append(assumps, cnf.MkLit(cnf.Var(v), rng.Intn(2) == 0))
		}
		ref := f.Clone()
		for _, a := range assumps {
			ref.AddUnit(a)
		}
		want := bruteForceSat(ref)
		st, model, err := SolveSimplified(f, Options{}, assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if (st == Sat) != want {
			t.Fatalf("iter %d: simplified=%v want=%v assumps=%v", iter, st, want, assumps)
		}
		if st == Sat {
			assign := make([]bool, f.NumVars+1)
			copy(assign[1:], model)
			if !f.Eval(assign) {
				t.Fatalf("iter %d: model invalid", iter)
			}
			for _, a := range assumps {
				if assign[a.Var()] == a.Neg() {
					t.Fatalf("iter %d: assumption %v violated", iter, a)
				}
			}
		}
	}
}

func TestSimplifyTrivialCases(t *testing.T) {
	// Empty formula: SAT.
	st, _ := simplifyAndSolve(t, cnf.New())
	if st != Sat {
		t.Fatalf("empty: %v", st)
	}
	// Single unit.
	f := cnf.New()
	f.AddUnit(cnf.PosLit(1))
	st, model := simplifyAndSolve(t, f)
	if st != Sat || !model[0] {
		t.Fatalf("unit: %v %v", st, model)
	}
	// Contradiction.
	f2 := cnf.New()
	f2.AddUnit(cnf.PosLit(1))
	f2.AddUnit(cnf.NegLit(1))
	if st, _ := simplifyAndSolve(t, f2); st != Unsat {
		t.Fatalf("contradiction: %v", st)
	}
	// Empty clause.
	f3 := cnf.New()
	f3.AddClause()
	if st, _ := simplifyAndSolve(t, f3); st != Unsat {
		t.Fatalf("empty clause: %v", st)
	}
}

func TestSimplifyReducesPigeonhole(t *testing.T) {
	f := pigeonhole(5)
	sp := NewSimplifier()
	simplified, st := sp.Simplify(f)
	if st == Sat {
		t.Fatal("pigeonhole cannot be satisfiable")
	}
	if st == Unknown && simplified.NumClauses() > f.NumClauses() {
		t.Fatalf("simplification grew the formula: %d -> %d",
			f.NumClauses(), simplified.NumClauses())
	}
}

func TestSimplifyEliminatesVariables(t *testing.T) {
	// x3 occurs once positively and once negatively: eliminated by
	// resolution, leaving (x1 ∨ x2 ∨ x4).
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(3))
	f.AddClause(cnf.NegLit(3), cnf.PosLit(2), cnf.PosLit(4))
	sp := NewSimplifier()
	_, st := sp.Simplify(f)
	if st == Unsat {
		t.Fatal("unexpected UNSAT")
	}
	if sp.Stats().ElimVars == 0 {
		t.Fatal("no variables eliminated")
	}
}

func TestFrozenVariablesSurvive(t *testing.T) {
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.NegLit(2), cnf.PosLit(3))
	sp := NewSimplifier()
	sp.Freeze(2)
	simplified, st := sp.Simplify(f)
	if st == Unsat {
		t.Fatal("unexpected UNSAT")
	}
	// Variable 2 must still be eliminable-free: it may appear in the
	// output or be absent (if its clauses vanished), but it must not be
	// in the elimination trail.
	for _, rec := range sp.elimTrail {
		if rec.v == 2 {
			t.Fatal("frozen variable eliminated")
		}
	}
	_ = simplified
}

func TestSubsumptionRemovesWeakerClause(t *testing.T) {
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2), cnf.PosLit(3)) // subsumed
	f.AddClause(cnf.NegLit(1), cnf.PosLit(4))
	f.AddClause(cnf.NegLit(2), cnf.NegLit(4))
	sp := NewSimplifier()
	sp.Freeze(1, 2, 3, 4) // isolate subsumption from elimination
	simplified, _ := sp.Simplify(f)
	if simplified.NumClauses() >= f.NumClauses() {
		t.Fatalf("subsumed clause not removed: %d clauses", simplified.NumClauses())
	}
}

func TestSelfSubsumingResolutionStrengthens(t *testing.T) {
	// (1 2) and (1 ¬2 3): the second strengthens to (1 3) via
	// self-subsumption with the first... check at least equisatisfiable
	// output with brute force on a targeted instance.
	f := cnf.New()
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.PosLit(1), cnf.NegLit(2), cnf.PosLit(3))
	f.AddClause(cnf.NegLit(1))
	want := bruteForceSat(f)
	st, model := simplifyAndSolve(t, f)
	if (st == Sat) != want {
		t.Fatalf("verdict %v want sat=%v", st, want)
	}
	if st == Sat {
		assign := make([]bool, f.NumVars+1)
		copy(assign[1:], model)
		if !f.Eval(assign) {
			t.Fatal("model invalid")
		}
	}
}

func TestReconstructModelHandlesChains(t *testing.T) {
	// Chain of equivalences x1 = x2 = x3 = x4 with x1 forced: the
	// eliminated middle variables must reconstruct consistently.
	f := cnf.New()
	for v := 1; v <= 3; v++ {
		f.AddClause(cnf.NegLit(cnf.Var(v)), cnf.PosLit(cnf.Var(v+1)))
		f.AddClause(cnf.PosLit(cnf.Var(v)), cnf.NegLit(cnf.Var(v+1)))
	}
	f.AddUnit(cnf.PosLit(1))
	st, model := simplifyAndSolve(t, f)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	for v := 0; v < 4; v++ {
		if !model[v] {
			t.Fatalf("x%d false in reconstructed model", v+1)
		}
	}
}

func TestSimplifierPreservesBenchVerdicts(t *testing.T) {
	// Random larger instances: simplifier + solver must agree with the
	// plain solver.
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 30; iter++ {
		f := randomFormula(rng, 40, 150, 3)
		plain := NewFromFormula(f, Options{})
		want, err := plain.Solve()
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := SolveSimplified(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st != want {
			t.Fatalf("iter %d: simplified %v, plain %v", iter, st, want)
		}
	}
}
