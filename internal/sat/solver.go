// Package sat implements a conflict-driven clause-learning (CDCL)
// propositional decision procedure in the style of MiniSat 2.2, the solver
// used by the paper's prototype. It provides two-watched-literal unit
// propagation, VSIDS variable activity with phase saving, first-UIP clause
// learning with recursive minimisation, Luby restarts, learnt-clause
// database reduction, solving under assumptions implemented as frozen unit
// clauses (Sect. 3.3 of the paper), and the search statistics (decisions,
// maximal decision depth, backjumps) used to reproduce Figure 6.
package sat

import (
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/cnf"
)

// Status is the outcome of a satisfiability check.
type Status int

const (
	// Unknown means the search was interrupted or ran out of budget.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) has none.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrInterrupted is returned by Solve when the solver was cancelled.
var ErrInterrupted = errors.New("sat: solver interrupted")

// ErrMemBudget is returned by Solve when the solver exceeded its memory
// budget (Options.MemBudgetMB) and emergency learnt-DB shrinking could
// not bring it back under, or when an external memory watchdog aborted
// the solve via InterruptMemory. Like conflict-budget exhaustion it is
// terminal under the same budget: rerunning with the same limit gives
// up again.
var ErrMemBudget = errors.New("sat: memory budget exhausted")

// StopCause classifies why a solve ended Unknown, so callers can tell a
// run that was cancelled (sibling found SAT, context done) from one
// that exhausted a per-chunk resource budget. The layers above the
// solver assign the cause: the solver itself only distinguishes
// interruption (ErrInterrupted) from conflict-budget exhaustion
// (Unknown with nil error under MaxConflicts).
type StopCause int

const (
	// CauseNone: the solve reached a definite verdict.
	CauseNone StopCause = iota
	// CauseCancelled: interrupted by cancellation (context done, a
	// sibling instance won, or an explicit Interrupt) — rerunning could
	// still decide the chunk.
	CauseCancelled
	// CauseTimeout: the chunk's wall-clock budget expired.
	CauseTimeout
	// CauseConflictBudget: the chunk's conflict budget was exhausted.
	CauseConflictBudget
	// CauseMemory: the chunk's memory budget was exhausted — either the
	// solver's own live-byte accounting crossed Options.MemBudgetMB after
	// emergency learnt-DB shrinking, or an external RSS watchdog aborted
	// the solve before the OOM-killer could.
	CauseMemory
)

func (c StopCause) String() string {
	switch c {
	case CauseCancelled:
		return "cancelled"
	case CauseTimeout:
		return "timeout"
	case CauseConflictBudget:
		return "conflict-budget"
	case CauseMemory:
		return "memory"
	default:
		return ""
	}
}

// ParseStopCause inverts String; unrecognised input maps to CauseNone.
func ParseStopCause(s string) StopCause {
	switch s {
	case "cancelled":
		return CauseCancelled
	case "timeout":
		return CauseTimeout
	case "conflict-budget":
		return CauseConflictBudget
	case "memory":
		return CauseMemory
	default:
		return CauseNone
	}
}

// Budgeted reports whether the cause is a deterministic budget
// exhaustion (timeout, conflict budget, or memory budget) rather than
// cancellation — the distinction between "this chunk is known-hard
// under the current budgets" and "this chunk simply was not finished".
func (c StopCause) Budgeted() bool {
	return c == CauseTimeout || c == CauseConflictBudget || c == CauseMemory
}

// Stats collects search statistics. The decision/depth/backjump counters
// correspond to the quantities visualised in Figure 6 of the paper; the
// learnt-DB and LBD fields feed the performance observatory (sampler,
// hardness score, parbmc_lbd_bucket export — see introspect.go).
type Stats struct {
	Decisions    int64
	Conflicts    int64
	Propagations int64
	Restarts     int64
	MaxDepth     int   // maximal decision level reached
	Backjumps    int64 // non-chronological backtracks (jump of >1 level)
	Learnt       int64 // learnt clauses added
	LearntLits   int64 // total literals in learnt clauses
	Minimised    int64 // literals removed by conflict-clause minimisation
	Simplified   int64 // clauses removed by the preprocessor
	ElimVars     int64 // variables eliminated by the preprocessor

	// LearntDeleted counts learnt clauses discarded by reduceDB. Together
	// with Learnt it bounds the live learnt-DB churn: a high
	// deleted/learnt ratio means the solver keeps throwing work away.
	LearntDeleted int64

	// LearntDB is the learnt-clause database size at the last snapshot
	// (Progress-callback cadence and Solve return). A level, not a
	// total, but Add still sums it: the aggregate of an ensemble is the
	// combined clause-database footprint across its instances.
	LearntDB int64

	// LBDHist is the distribution of learnt-clause LBD ("glue") values
	// over fixed buckets (see LBDBounds). Low-LBD mass is the classic
	// signal that learning is productive; Add sums bucket-wise.
	LBDHist LBDHistogram

	// Progress is the latest search-progress estimate in [0,1]
	// (ProgressEstimate), refreshed at the Progress-callback cadence and
	// when Solve returns. Unlike the counters it is a level, not a
	// total: Add takes the maximum, reporting the furthest-along
	// instance of an aggregate.
	Progress float64

	// MemBytes is the solver's approximate live footprint (clause
	// arenas, learnt DB, watches, per-variable state) at the last
	// snapshot, same cadence as LearntDB. Like LearntDB it is a level
	// that Add sums: the aggregate is the combined footprint of the
	// ensemble.
	MemBytes int64

	// PeakMemBytes is the high-water mark of MemBytes over the solve.
	// Add sums it too — peaks of concurrent instances can coincide, so
	// the sum is the safe (worst-case) combined peak.
	PeakMemBytes int64

	// MemShrinks counts emergency learnt-DB reductions forced by the
	// memory budget (degrade-before-dying events), as opposed to the
	// ordinary size-triggered reduceDB cadence.
	MemShrinks int64
}

// Add accumulates o into s. The aggregation laws (locked in by
// TestStatsAddLaws):
//
//   - counters sum: Decisions, Conflicts, Propagations, Restarts,
//     Backjumps, Learnt, LearntLits, Minimised, Simplified, ElimVars,
//     LearntDeleted, MemShrinks, and the footprint levels LearntDB,
//     MemBytes, PeakMemBytes (combined ensemble footprint), plus
//     LBDHist bucket-wise;
//   - MaxDepth and Progress take the maximum (deepest / furthest-along
//     instance of the aggregate).
//
// Used to aggregate per-instance statistics across parallel, portfolio
// and distributed runs.
func (s *Stats) Add(o Stats) {
	s.Decisions += o.Decisions
	s.Conflicts += o.Conflicts
	s.Propagations += o.Propagations
	s.Restarts += o.Restarts
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.Backjumps += o.Backjumps
	s.Learnt += o.Learnt
	s.LearntLits += o.LearntLits
	s.Minimised += o.Minimised
	s.Simplified += o.Simplified
	s.ElimVars += o.ElimVars
	s.LearntDeleted += o.LearntDeleted
	s.LearntDB += o.LearntDB
	s.MemBytes += o.MemBytes
	s.PeakMemBytes += o.PeakMemBytes
	s.MemShrinks += o.MemShrinks
	s.LBDHist.Merge(o.LBDHist)
	if o.Progress > s.Progress {
		s.Progress = o.Progress
	}
}

// Options configures a Solver.
type Options struct {
	// VarDecay is the VSIDS activity decay factor (default 0.95).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay factor (default 0.999).
	ClauseDecay float64
	// RestartBase is the Luby restart unit in conflicts (default 100).
	RestartBase int
	// PhaseSaving enables progress saving of variable polarities (default true,
	// disabled by setting NoPhaseSaving).
	NoPhaseSaving bool
	// InitialPolarity is the polarity used for never-assigned variables.
	InitialPolarity bool
	// RandomizeFreq in [0,1) decides with random polarity/variable with the
	// given frequency; used for portfolio diversification (default 0).
	RandomizeFreq float64
	// Seed seeds the diversification RNG.
	Seed uint64
	// MaxConflicts bounds the total number of conflicts (0 = unbounded).
	MaxConflicts int64
	// MemBudgetMB bounds the solver's approximate live footprint in
	// mebibytes (0 = unbounded). When the accounting crosses the budget
	// at a conflict boundary the solver first degrades — emergency
	// learnt-DB shrinks — and only if still over budget stops with
	// (Unknown, ErrMemBudget), the memory analogue of MaxConflicts.
	MemBudgetMB int64
	// NoPreprocess disables the inprocessing-free preprocessor pipeline when
	// solving through SolveFormula helpers (the Solver itself never
	// preprocesses implicitly).
	NoPreprocess bool
	// ProgressEvery invokes the solver's Progress callback every this
	// many conflicts (0 disables; see Solver.Progress). The disabled
	// path costs a single nil check per conflict.
	ProgressEvery int64
}

func (o *Options) setDefaults() {
	if o.VarDecay == 0 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay == 0 {
		o.ClauseDecay = 0.999
	}
	if o.RestartBase == 0 {
		o.RestartBase = 100
	}
}

type clause struct {
	lits   []cnf.Lit
	act    float64
	lbd    int
	learnt bool
}

type watcher struct {
	c       *clause
	blocker cnf.Lit
}

// Approximate per-object byte costs for the live-footprint accounting.
// They deliberately over-count a little (slice headers, the two watcher
// entries, allocator slack) so the budget errs on the safe side; the
// goal is a stable, deterministic estimate that tracks the real heap
// within tens of percent, not malloc-exact numbers.
const (
	litBytes = 8 // cnf.Lit is an int
	// clauseOverheadBytes: the clause struct (slice header + act + lbd +
	// learnt, padded), its pointer slot in clauses/learnts, and its two
	// watcher entries.
	clauseOverheadBytes = 120
	// varOverheadBytes: per-variable state across watches (two slice
	// headers), assigns/level/reason/polarity/frozen/activity/seen, the
	// heap entry, and amortised trail capacity.
	varOverheadBytes = 128
)

func clauseBytes(nlits int) int64 {
	return clauseOverheadBytes + int64(nlits)*litBytes
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// Solver is a CDCL SAT solver. The zero value is not usable; construct
// with New or NewFromFormula.
type Solver struct {
	opts Options

	numVars int
	ok      bool // false once the clause set is known inconsistent

	clauses []*clause
	learnts []*clause

	watches [][]watcher // indexed by Lit.Index()

	assigns  []int8 // per variable: lTrue/lFalse/lUndef
	level    []int
	reason   []*clause
	polarity []bool // saved phase per variable
	frozen   []bool // assumption-frozen variables (paper Sect. 3.3)

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	activity  []float64
	varInc    float64
	claInc    float64
	order     varHeap
	seen      []byte
	analyzeTs []cnf.Lit // scratch for minimisation

	model []int8 // last satisfying assignment (per variable)

	stats Stats
	graph *DecisionGraph
	proof *Proof

	// liveBytes / peakBytes approximate the solver's live footprint
	// (see clauseBytes/varOverheadBytes); maintained incrementally on
	// clause add/learn/delete and variable growth. Only touched from
	// the solving goroutine.
	liveBytes int64
	peakBytes int64

	interrupt atomic.Bool
	// memInterrupt marks an interrupt raised by an external memory
	// watchdog (InterruptMemory): the solve stops with ErrMemBudget
	// instead of ErrInterrupted, so the layers above classify it as
	// terminal budget exhaustion, not retryable cancellation.
	memInterrupt atomic.Bool
	rngState     uint64

	// ShareLearnt, if non-nil, is invoked for every learnt clause whose LBD
	// is at most ShareMaxLBD; used by the portfolio baselines for clause
	// exchange. The callback must not retain the slice.
	ShareLearnt func(lits []cnf.Lit, lbd int)
	ShareMaxLBD int
	// Import, if non-nil, is polled at every restart for foreign clauses to
	// add. It must return clauses over existing variables.
	Import func() [][]cnf.Lit
	// Progress, if non-nil and Options.ProgressEvery > 0, receives a
	// snapshot of the search statistics every ProgressEvery conflicts,
	// from the solving goroutine. It must be fast and must not call back
	// into the solver; used for live conflict/propagation-rate reporting
	// in parallel, portfolio and distributed runs.
	Progress func(Stats)
}

// New creates a solver with the given number of variables.
func New(numVars int, opts Options) *Solver {
	opts.setDefaults()
	s := &Solver{
		opts:     opts,
		ok:       true,
		varInc:   1,
		claInc:   1,
		rngState: opts.Seed*2654435761 + 88172645463325252,
	}
	s.growTo(numVars)
	return s
}

// NewFromFormula creates a solver and loads every clause of f.
func NewFromFormula(f *cnf.Formula, opts Options) *Solver {
	s := New(f.NumVars, opts)
	for _, c := range f.Clauses {
		s.AddClause(c...)
	}
	return s
}

func (s *Solver) growTo(n int) {
	for s.numVars < n {
		s.numVars++
		s.watches = append(s.watches, nil, nil)
		s.assigns = append(s.assigns, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.polarity = append(s.polarity, s.opts.InitialPolarity)
		s.frozen = append(s.frozen, false)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, 0)
		s.order.push(cnf.Var(s.numVars), &s.activity)
		s.addMem(varOverheadBytes)
	}
	// watches is indexed by Lit.Index() which starts at 2 for variable 1.
	for len(s.watches) < 2*(s.numVars+1) {
		s.watches = append(s.watches, nil)
	}
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return s.numVars }

// Stats returns a snapshot of the search statistics.
func (s *Solver) Stats() Stats { return s.stats }

// ProgressEstimate is a cheap "how far along is the search" signal in
// [0,1]: MiniSat's progress estimate, a weighted sum over the decision
// trail where assignments at level i contribute with weight (1/V)^i
// (V = variable count). Level-0 assignments — permanently decided —
// dominate, so the estimate grows as the solver proves out top-level
// facts; deeper, more speculative assignments contribute geometrically
// less. It is not monotone (restarts and backjumps can lower it), but
// averaged over heartbeat intervals it orders partitions by how close
// they are to a verdict, which is the signal partition splitting keys
// on. Must be called from the solving goroutine (it reads the trail).
func (s *Solver) ProgressEstimate() float64 {
	if s.numVars == 0 {
		return 1
	}
	progress := 0.0
	f := 1.0 / float64(s.numVars)
	weight := 1.0
	for i := 0; i <= s.decisionLevel(); i++ {
		beg := 0
		if i > 0 {
			beg = s.trailLim[i-1]
		}
		end := len(s.trail)
		if i < s.decisionLevel() {
			end = s.trailLim[i]
		}
		progress += weight * float64(end-beg)
		weight *= f
	}
	return progress / float64(s.numVars)
}

// Interrupt asynchronously cancels an in-flight Solve, which will return
// (Unknown, ErrInterrupted). Safe to call from other goroutines.
func (s *Solver) Interrupt() { s.interrupt.Store(true) }

// InterruptMemory asynchronously aborts an in-flight Solve with memory
// exhaustion: Solve returns (Unknown, ErrMemBudget) instead of
// ErrInterrupted, so callers journal the chunk as a terminal
// memory-budget Unknown. Used by external RSS watchdogs that see the
// whole process approaching its limit. Safe to call from other
// goroutines.
func (s *Solver) InterruptMemory() {
	s.memInterrupt.Store(true)
	s.interrupt.Store(true)
}

// Interrupted reports whether the solver has been cancelled.
func (s *Solver) Interrupted() bool { return s.interrupt.Load() }

// ClearInterrupt re-arms the solver after an interrupt so it can be
// solved again (MiniSat's clearInterrupt). It must not be called
// concurrently with a Solve the caller still wants interrupted; the
// usual sequence is Solve → ErrInterrupted → ClearInterrupt → Solve.
func (s *Solver) ClearInterrupt() {
	s.interrupt.Store(false)
	s.memInterrupt.Store(false)
}

// LiveBytes returns the solver's current approximate live footprint.
func (s *Solver) LiveBytes() int64 { return s.liveBytes }

// PeakBytes returns the high-water mark of LiveBytes over the solver's
// lifetime.
func (s *Solver) PeakBytes() int64 { return s.peakBytes }

func (s *Solver) addMem(n int64) {
	s.liveBytes += n
	if s.liveBytes > s.peakBytes {
		s.peakBytes = s.liveBytes
	}
}

func (s *Solver) valueVar(v cnf.Var) int8 { return s.assigns[v-1] }

func (s *Solver) valueLit(l cnf.Lit) int8 {
	val := s.assigns[l.Var()-1]
	if l.Neg() {
		return -val
	}
	return val
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause introduces a clause over 1-based variables, growing the
// variable set as needed. It may only be called before Solve or between
// Solve calls (at decision level 0). It returns false if the clause set
// became trivially inconsistent.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	for _, l := range lits {
		if int(l.Var()) > s.numVars {
			s.growTo(int(l.Var()))
		}
	}
	c := append(cnf.Clause{}, lits...)
	c, taut := c.Normalize()
	if taut {
		return true
	}
	// Remove literals already false at level 0; detect satisfied clauses.
	out := c[:0]
	for _, l := range c {
		switch s.valueLit(l) {
		case lTrue:
			return true
		case lUndef:
			out = append(out, l)
		}
	}
	c = out
	switch len(c) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(c[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	cl := &clause{lits: c}
	s.clauses = append(s.clauses, cl)
	s.attach(cl)
	s.addMem(clauseBytes(len(c)))
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not().Index()] = append(s.watches[l0.Not().Index()], watcher{c, l1})
	s.watches[l1.Not().Index()] = append(s.watches[l1.Not().Index()], watcher{c, l0})
}

func (s *Solver) uncheckedEnqueue(l cnf.Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v-1] = lFalse
	} else {
		s.assigns[v-1] = lTrue
	}
	s.level[v-1] = s.decisionLevel()
	s.reason[v-1] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p.Index()]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			// Ensure the false literal is at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					idx := c.lits[1].Not().Index()
					s.watches[idx] = append(s.watches[idx], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.valueLit(first) == lFalse {
				// Conflict: copy back remaining watchers and bail out.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p.Index()] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p.Index()] = ws[:n]
	}
	return nil
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		if !s.opts.NoPhaseSaving {
			s.polarity[v-1] = !l.Neg()
		}
		s.assigns[v-1] = lUndef
		s.reason[v-1] = nil
		s.order.insert(v, &s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v-1] += s.varInc
	if s.activity[v-1] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, &s.activity)
}

func (s *Solver) decayVar() { s.varInc /= s.opts.VarDecay }

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, cl := range s.learnts {
			cl.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= s.opts.ClauseDecay }

func (s *Solver) rand() uint64 {
	// xorshift64*
	x := s.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rngState = x
	return x * 2685821657736338717
}

func (s *Solver) randFloat() float64 {
	return float64(s.rand()>>11) / float64(1<<53)
}

func (s *Solver) pickBranchLit() cnf.Lit {
	if s.opts.RandomizeFreq > 0 && s.randFloat() < s.opts.RandomizeFreq {
		// Random decision among unassigned variables (diversification).
		for tries := 0; tries < 10; tries++ {
			v := cnf.Var(1 + s.rand()%uint64(s.numVars))
			if s.valueVar(v) == lUndef {
				return cnf.MkLit(v, s.rand()&1 == 0)
			}
		}
	}
	for {
		v, ok := s.order.popMax(&s.activity)
		if !ok {
			return cnf.LitUndef
		}
		if s.valueVar(v) == lUndef {
			return cnf.MkLit(v, !s.polarity[v-1])
		}
	}
}

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]cnf.Lit, int, int) {
	learnt := []cnf.Lit{cnf.LitUndef}
	counter := 0
	p := cnf.LitUndef
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if s.seen[v-1] == 0 && s.level[v-1] > 0 {
				s.seen[v-1] = 1
				s.bumpVar(v)
				if s.level[v-1] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx].Var()-1] == 0 {
			idx--
		}
		p = s.trail[idx]
		confl = s.reason[p.Var()-1]
		s.seen[p.Var()-1] = 0
		idx--
		counter--
		if counter == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Recursive conflict-clause minimisation.
	s.analyzeTs = s.analyzeTs[:0]
	for _, l := range learnt[1:] {
		s.analyzeTs = append(s.analyzeTs, l)
	}
	out := learnt[:1]
	removed := 0
	for _, l := range learnt[1:] {
		if s.reason[l.Var()-1] == nil || !s.litRedundant(l) {
			out = append(out, l)
		} else {
			removed++
		}
	}
	s.stats.Minimised += int64(removed)
	learnt = out

	// Clear seen flags for the surviving and scratch literals.
	for _, l := range s.analyzeTs {
		s.seen[l.Var()-1] = 0
	}
	for _, l := range learnt {
		if l != cnf.LitUndef {
			s.seen[l.Var()-1] = 0
		}
	}

	// Find backtrack level: the maximal level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()-1] > s.level[learnt[maxI].Var()-1] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()-1]
	}

	// Compute LBD (number of distinct decision levels).
	lbd := s.computeLBD(learnt)
	return learnt, btLevel, lbd
}

func (s *Solver) computeLBD(lits []cnf.Lit) int {
	levels := map[int]struct{}{}
	for _, l := range lits {
		levels[s.level[l.Var()-1]] = struct{}{}
	}
	return len(levels)
}

// litRedundant checks whether l is implied by the other literals marked in
// seen, walking the implication graph (MiniSat's ccmin).
func (s *Solver) litRedundant(l cnf.Lit) bool {
	stack := []cnf.Lit{l}
	top := len(s.analyzeTs)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reason[p.Var()-1]
		for _, q := range c.lits {
			if q == p.Not() || q.Var() == p.Var() {
				continue
			}
			v := q.Var()
			if s.seen[v-1] != 0 || s.level[v-1] == 0 {
				continue
			}
			if s.reason[v-1] == nil {
				// Not redundant: undo the tentative marks.
				for len(s.analyzeTs) > top {
					s.seen[s.analyzeTs[len(s.analyzeTs)-1].Var()-1] = 0
					s.analyzeTs = s.analyzeTs[:len(s.analyzeTs)-1]
				}
				return false
			}
			s.seen[v-1] = 1
			s.analyzeTs = append(s.analyzeTs, q)
			stack = append(stack, q)
		}
	}
	return true
}

func (s *Solver) recordLearnt(lits []cnf.Lit, lbd int) *clause {
	s.stats.Learnt++
	s.stats.LearntLits += int64(len(lits))
	s.stats.LBDHist.Observe(lbd)
	if s.proof != nil {
		s.proof.Lemmas = append(s.proof.Lemmas, append(cnf.Clause{}, lits...))
	}
	if s.ShareLearnt != nil && lbd <= s.ShareMaxLBD && len(lits) > 1 {
		cp := make([]cnf.Lit, len(lits))
		copy(cp, lits)
		s.ShareLearnt(cp, lbd)
	}
	if len(lits) == 1 {
		return nil
	}
	c := &clause{lits: append([]cnf.Lit{}, lits...), learnt: true, lbd: lbd}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.bumpClause(c)
	s.addMem(clauseBytes(len(lits)))
	return c
}

func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	sort.Slice(s.learnts, func(i, j int) bool {
		// Keep high-activity, low-LBD clauses.
		a, b := s.learnts[i], s.learnts[j]
		if (a.lbd <= 2) != (b.lbd <= 2) {
			return b.lbd <= 2
		}
		return a.act < b.act
	})
	limit := len(s.learnts) / 2
	kept := s.learnts[:0]
	removed := 0
	for i, c := range s.learnts {
		if i < limit && len(c.lits) > 2 && !s.isReason(c) {
			s.detach(c)
			s.addMem(-clauseBytes(len(c.lits)))
			removed++
		} else {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	s.stats.LearntDeleted += int64(removed)
}

// overMemBudget reports whether the live footprint exceeds the
// configured memory budget.
func (s *Solver) overMemBudget() bool {
	return s.opts.MemBudgetMB > 0 && s.liveBytes > s.opts.MemBudgetMB<<20
}

// shrinkForMem is the degrade-before-dying step: repeated emergency
// learnt-DB reductions until the footprint is back under budget or the
// DB stops shrinking (everything left is binary, reason, or base
// formula — nothing more can go). Returns true if the budget was
// recovered.
func (s *Solver) shrinkForMem() bool {
	for s.overMemBudget() {
		before := len(s.learnts)
		s.reduceDB()
		if len(s.learnts) == before {
			return false
		}
		s.stats.MemShrinks++
	}
	return true
}

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.valueLit(c.lits[0]) == lTrue && s.reason[v-1] == c
}

func (s *Solver) detach(c *clause) {
	for _, l := range []cnf.Lit{c.lits[0], c.lits[1]} {
		idx := l.Not().Index()
		ws := s.watches[idx]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[idx] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// search runs CDCL until a model is found, the clause set is refuted,
// the conflict budget is exhausted, or the solver is interrupted.
func (s *Solver) search(conflictBudget int64) (Status, error) {
	var conflicts int64
	for {
		if s.interrupt.Load() {
			if s.memInterrupt.Load() {
				return Unknown, ErrMemBudget
			}
			return Unknown, ErrInterrupted
		}
		confl := s.propagate()
		if confl != nil {
			conflicts++
			s.stats.Conflicts++
			if s.Progress != nil && s.opts.ProgressEvery > 0 &&
				s.stats.Conflicts%s.opts.ProgressEvery == 0 {
				s.stats.Progress = s.ProgressEstimate()
				s.stats.LearntDB = int64(len(s.learnts))
				s.stats.MemBytes = s.liveBytes
				s.stats.PeakMemBytes = s.peakBytes
				s.Progress(s.stats)
			}
			if s.decisionLevel() == 0 {
				return Unsat, nil
			}
			learnt, btLevel, lbd := s.analyze(confl)
			if btLevel < s.decisionLevel()-1 {
				s.stats.Backjumps++
			}
			if s.graph != nil {
				s.graph.recordBackjump(btLevel)
			}
			s.cancelUntil(btLevel)
			c := s.recordLearnt(learnt, lbd)
			s.uncheckedEnqueue(learnt[0], c)
			s.decayVar()
			s.decayClause()
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				return Unknown, nil
			}
			// Memory only grows at conflicts (learnt clauses), so the
			// budget check lives at the conflict boundary, like
			// MaxConflicts: degrade first, stop only if that fails.
			if s.overMemBudget() && !s.shrinkForMem() {
				s.cancelUntil(0)
				return Unknown, ErrMemBudget
			}
			continue
		}
		if conflictBudget >= 0 && conflicts >= conflictBudget {
			s.cancelUntil(0)
			return Unknown, nil
		}
		if int64(len(s.learnts)) > int64(len(s.clauses))/2+10000 {
			s.reduceDB()
		}
		next := s.pickBranchLit()
		if next == cnf.LitUndef {
			// All variables assigned: model found.
			s.model = append([]int8(nil), s.assigns...)
			return Sat, nil
		}
		s.stats.Decisions++
		s.newDecisionLevel()
		if dl := s.decisionLevel(); dl > s.stats.MaxDepth {
			s.stats.MaxDepth = dl
		}
		if s.graph != nil {
			s.graph.recordDecision(s.decisionLevel(), next)
		}
		s.uncheckedEnqueue(next, nil)
	}
}

// Solve decides satisfiability under the given assumptions. Following the
// paper (Sect. 3.3, "Changes to the Propositional Solver"), assumptions are
// converted into unit clauses enqueued at decision level 0, a propagation
// step is forced, and the assigned literals are frozen: level-0 assignments
// are never backtracked, so the solver can never flip them, and they are
// retained across restarts.
//
// Freezing is permanent, exactly as in the paper's prototype (each
// sub-formula gets its own solver process): assumptions accumulate over
// repeated Solve calls on the same instance, and a later call whose
// assumption contradicts a frozen one returns Unsat. To explore
// different partitions, use a fresh Solver per assumption set, as
// package parallel does.
func (s *Solver) Solve(assumptions ...cnf.Lit) (Status, error) {
	if !s.ok {
		return Unsat, nil
	}
	// Stamp the final progress estimate and learnt-DB size so Stats()
	// reflects where the search ended even when it finished between
	// Progress callbacks.
	defer func() {
		s.stats.Progress = s.ProgressEstimate()
		s.stats.LearntDB = int64(len(s.learnts))
		s.stats.MemBytes = s.liveBytes
		s.stats.PeakMemBytes = s.peakBytes
	}()
	s.cancelUntil(0)
	for _, a := range assumptions {
		if int(a.Var()) > s.numVars {
			s.growTo(int(a.Var()))
		}
		switch s.valueLit(a) {
		case lTrue:
			continue
		case lFalse:
			return Unsat, nil
		}
		s.frozen[a.Var()-1] = true
		s.uncheckedEnqueue(a, nil)
	}
	// Forced propagation of the assumption units (paper Sect. 3.3): the
	// search then starts on an equisatisfiable but pruned formula.
	if s.propagate() != nil {
		return Unsat, nil
	}

	for restart := int64(1); ; restart++ {
		budget := int64(s.opts.RestartBase) * luby(restart)
		st, err := s.search(budget)
		if err != nil {
			return Unknown, err
		}
		if st != Unknown {
			return st, nil
		}
		if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
			return Unknown, nil
		}
		s.stats.Restarts++
		s.cancelUntil(0)
		if s.Import != nil {
			for _, lits := range s.Import() {
				if !s.addImported(lits) {
					return Unsat, nil
				}
			}
		}
	}
}

// addImported adds a foreign (shared) clause at level 0.
func (s *Solver) addImported(lits []cnf.Lit) bool {
	return s.AddClause(lits...)
}

// Model returns the satisfying assignment found by the last successful
// Solve. Index v-1 holds the value of variable v. Variables never assigned
// (possible after preprocessing) are reported as false.
func (s *Solver) Model() []bool {
	out := make([]bool, s.numVars)
	for i, v := range s.model {
		out[i] = v == lTrue
	}
	return out
}

// ModelValue returns the model value of a literal.
func (s *Solver) ModelValue(l cnf.Lit) bool {
	v := s.model[l.Var()-1] == lTrue
	if l.Neg() {
		return !v
	}
	return v
}

// Frozen reports whether a variable was frozen by an assumption.
func (s *Solver) Frozen(v cnf.Var) bool {
	if int(v) > s.numVars {
		return false
	}
	return s.frozen[v-1]
}
