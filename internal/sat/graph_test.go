package sat

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestDecisionGraphRecording(t *testing.T) {
	s := NewFromFormula(pigeonhole(5), Options{})
	g := s.EnableGraph(0)
	st, err := s.Solve()
	if err != nil || st != Unsat {
		t.Fatalf("status %v err %v", st, err)
	}
	if len(g.Nodes) == 0 {
		t.Fatal("no decisions recorded")
	}
	if int64(len(g.Nodes)) != s.Stats().Decisions {
		t.Fatalf("recorded %d nodes, stats say %d decisions", len(g.Nodes), s.Stats().Decisions)
	}
	if g.MaxDepth() != s.Stats().MaxDepth {
		t.Fatalf("graph depth %d, stats depth %d", g.MaxDepth(), s.Stats().MaxDepth)
	}
	// Every edge must go one level down.
	for _, e := range g.Edges {
		if g.Nodes[e[1]].Level != g.Nodes[e[0]].Level+1 {
			t.Fatalf("edge %v skips levels (%d -> %d)", e, g.Nodes[e[0]].Level, g.Nodes[e[1]].Level)
		}
		if e[1] <= e[0] {
			t.Fatalf("edge %v not chronological", e)
		}
	}
}

func TestDecisionGraphDOT(t *testing.T) {
	s := NewFromFormula(pigeonhole(4), Options{})
	g := s.EnableGraph(0)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "php4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "root", "->", "rank=same"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDecisionGraphCap(t *testing.T) {
	s := NewFromFormula(pigeonhole(7), Options{})
	g := s.EnableGraph(10)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) > 10 {
		t.Fatalf("cap not honoured: %d nodes", len(g.Nodes))
	}
}

func TestDecisionGraphEmptyFormula(t *testing.T) {
	s := New(1, Options{})
	s.AddClause(cnf.PosLit(1))
	g := s.EnableGraph(0)
	st, _ := s.Solve()
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "trivial"); err != nil {
		t.Fatal(err)
	}
}
