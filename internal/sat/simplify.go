package sat

import (
	"sort"

	"repro/internal/cnf"
)

// Simplifier implements the preprocessing pipeline of "MiniSat with
// simplifier" (the solver configuration used by the paper's prototype,
// Sect. 3.4): unit propagation, pure-literal elimination, subsumption,
// self-subsuming resolution, and bounded variable elimination by clause
// distribution, with model reconstruction for eliminated variables.
//
// Frozen variables (e.g. the partitioning assumption variables of
// Sect. 3.3, or any variable whose model value must be read off
// directly) are protected from elimination.
type Simplifier struct {
	// MaxClauseGrowth bounds variable elimination: a variable is only
	// eliminated if the resolvent count does not exceed the removed
	// clause count plus this slack (default 0, MiniSat's policy).
	MaxClauseGrowth int
	// MaxResolventLen skips resolvents longer than this (default 20).
	MaxResolventLen int
	// MaxRounds bounds the simplification fixpoint loop (default 12).
	MaxRounds int

	frozen     map[cnf.Var]bool
	eliminated map[cnf.Var]bool
	elimTrail  []elimRecord

	stats Stats
}

type elimRecord struct {
	v       cnf.Var
	clauses []cnf.Clause // the clauses removed when v was eliminated
}

// NewSimplifier returns a Simplifier with default limits.
func NewSimplifier() *Simplifier {
	return &Simplifier{
		MaxResolventLen: 20,
		MaxRounds:       12,
		frozen:          map[cnf.Var]bool{},
		eliminated:      map[cnf.Var]bool{},
	}
}

// Freeze protects variables from elimination.
func (s *Simplifier) Freeze(vars ...cnf.Var) {
	for _, v := range vars {
		s.frozen[v] = true
	}
}

// FreezeLits protects the variables of the given literals.
func (s *Simplifier) FreezeLits(lits ...cnf.Lit) {
	for _, l := range lits {
		s.frozen[l.Var()] = true
	}
}

// Stats reports preprocessing statistics.
func (s *Simplifier) Stats() Stats { return s.stats }

// simp is the working state of one Simplify call.
type simp struct {
	s        *Simplifier
	numVars  int
	clauses  []*wClause
	occ      map[cnf.Lit][]*wClause
	assigned map[cnf.Var]bool
	units    []cnf.Lit
}

type wClause struct {
	lits    cnf.Clause
	deleted bool
}

// Simplify preprocesses the formula and returns an equisatisfiable one
// over the same variable numbering. If preprocessing decides the
// formula, the returned status is Sat or Unsat; otherwise Unknown (solve
// the returned formula, then pass any model through ReconstructModel).
func (s *Simplifier) Simplify(f *cnf.Formula) (*cnf.Formula, Status) {
	w := &simp{
		s:        s,
		numVars:  f.NumVars,
		occ:      map[cnf.Lit][]*wClause{},
		assigned: map[cnf.Var]bool{},
	}
	for _, c := range f.Clauses {
		nc, taut := append(cnf.Clause{}, c...).Normalize()
		if taut {
			continue
		}
		switch len(nc) {
		case 0:
			return emptyUnsat(f.NumVars), Unsat
		case 1:
			w.units = append(w.units, nc[0])
		default:
			w.attach(&wClause{lits: nc})
		}
	}
	if !w.propagate() {
		return emptyUnsat(f.NumVars), Unsat
	}

	for round := 0; round < s.MaxRounds; round++ {
		changed := false
		if w.subsumption() {
			changed = true
		}
		if !w.propagate() {
			return emptyUnsat(f.NumVars), Unsat
		}
		if w.pureLiterals() {
			changed = true
		}
		ok, elim := w.eliminateVariables()
		if !ok {
			return emptyUnsat(f.NumVars), Unsat
		}
		if elim {
			changed = true
		}
		if !w.propagate() {
			return emptyUnsat(f.NumVars), Unsat
		}
		if !changed {
			break
		}
	}

	out := cnf.New()
	out.NumVars = f.NumVars
	vars := make([]cnf.Var, 0, len(w.assigned))
	for v := range w.assigned {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		out.AddUnit(cnf.MkLit(v, !w.assigned[v]))
	}
	live := 0
	for _, c := range w.clauses {
		if c.deleted {
			s.stats.Simplified++
			continue
		}
		out.AddClause(append(cnf.Clause{}, c.lits...)...)
		live++
	}
	if live == 0 {
		// Only units remain: satisfiable (extendable by reconstruction).
		return out, Sat
	}
	return out, Unknown
}

func (w *simp) attach(c *wClause) {
	w.clauses = append(w.clauses, c)
	for _, l := range c.lits {
		w.occ[l] = append(w.occ[l], c)
	}
}

// liveOcc returns the clauses that still contain l, compacting the
// occurrence list (clauses may have been deleted, or strengthened so
// that l no longer occurs in them).
func (w *simp) liveOcc(l cnf.Lit) []*wClause {
	out := w.occ[l][:0]
	for _, c := range w.occ[l] {
		if !c.deleted && containsLit(c.lits, l) {
			out = append(out, c)
		}
	}
	w.occ[l] = out
	return out
}

func containsLit(c cnf.Clause, l cnf.Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// propagate applies queued units; false means conflict.
func (w *simp) propagate() bool {
	for len(w.units) > 0 {
		u := w.units[0]
		w.units = w.units[1:]
		if val, ok := w.assigned[u.Var()]; ok {
			if val == u.Neg() {
				return false
			}
			continue
		}
		w.assigned[u.Var()] = !u.Neg()
		for _, c := range w.liveOcc(u) {
			c.deleted = true
		}
		for _, c := range w.liveOcc(u.Not()) {
			kept := c.lits[:0]
			for _, l := range c.lits {
				if l != u.Not() {
					kept = append(kept, l)
				}
			}
			c.lits = kept
			switch len(c.lits) {
			case 0:
				return false
			case 1:
				w.units = append(w.units, c.lits[0])
				c.deleted = true
			}
		}
	}
	return true
}

// pureLiterals eliminates variables occurring with a single polarity.
func (w *simp) pureLiterals() bool {
	changed := false
	for v := cnf.Var(1); int(v) <= w.numVars; v++ {
		if w.s.frozen[v] || w.s.eliminated[v] {
			continue
		}
		if _, ok := w.assigned[v]; ok {
			continue
		}
		pos, neg := w.liveOcc(cnf.PosLit(v)), w.liveOcc(cnf.NegLit(v))
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if len(pos) != 0 && len(neg) != 0 {
			continue
		}
		occs := pos
		if len(pos) == 0 {
			occs = neg
		}
		var saved []cnf.Clause
		for _, c := range occs {
			saved = append(saved, append(cnf.Clause{}, c.lits...))
			c.deleted = true
		}
		w.s.elimTrail = append(w.s.elimTrail, elimRecord{v: v, clauses: saved})
		w.s.eliminated[v] = true
		w.s.stats.ElimVars++
		changed = true
	}
	return changed
}

// eliminateVariables performs bounded variable elimination; the first
// return value is false on refutation.
func (w *simp) eliminateVariables() (ok, changed bool) {
	for v := cnf.Var(1); int(v) <= w.numVars; v++ {
		if w.s.frozen[v] || w.s.eliminated[v] {
			continue
		}
		if _, isAssigned := w.assigned[v]; isAssigned {
			continue
		}
		pos, neg := w.liveOcc(cnf.PosLit(v)), w.liveOcc(cnf.NegLit(v))
		if len(pos) == 0 || len(neg) == 0 {
			continue // pure or absent: handled elsewhere
		}
		if len(pos)*len(neg) > len(pos)+len(neg)+4 {
			continue
		}
		var resolvents []cnf.Clause
		feasible := true
		for _, pc := range pos {
			for _, nc := range neg {
				r := resolve(pc.lits, nc.lits, v)
				if r == nil {
					continue
				}
				if len(r) > w.s.MaxResolventLen {
					feasible = false
					break
				}
				resolvents = append(resolvents, r)
			}
			if !feasible {
				break
			}
		}
		if !feasible || len(resolvents) > len(pos)+len(neg)+w.s.MaxClauseGrowth {
			continue
		}
		var saved []cnf.Clause
		for _, c := range pos {
			saved = append(saved, append(cnf.Clause{}, c.lits...))
			c.deleted = true
		}
		for _, c := range neg {
			saved = append(saved, append(cnf.Clause{}, c.lits...))
			c.deleted = true
		}
		w.s.elimTrail = append(w.s.elimTrail, elimRecord{v: v, clauses: saved})
		w.s.eliminated[v] = true
		w.s.stats.ElimVars++
		changed = true
		for _, r := range resolvents {
			switch len(r) {
			case 0:
				return false, true
			case 1:
				w.units = append(w.units, r[0])
			default:
				w.attach(&wClause{lits: r})
			}
		}
		if !w.propagate() {
			return false, true
		}
	}
	return true, changed
}

// subsumption removes subsumed clauses and strengthens clauses by
// self-subsuming resolution; returns whether anything changed.
func (w *simp) subsumption() bool {
	changed := false
	// Iterate shortest-first so strong subsumers act early.
	order := make([]*wClause, 0, len(w.clauses))
	for _, c := range w.clauses {
		if !c.deleted {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool { return len(order[i].lits) < len(order[j].lits) })
	for _, c := range order {
		if c.deleted || len(c.lits) == 0 {
			continue
		}
		rare := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(w.occ[l]) < len(w.occ[rare]) {
				rare = l
			}
		}
		for _, other := range w.liveOcc(rare) {
			if other == c || len(other.lits) < len(c.lits) {
				continue
			}
			if subsumes(c.lits, other.lits) {
				other.deleted = true
				w.s.stats.Simplified++
				changed = true
			}
		}
		// Self-subsuming resolution: for l in c, if (c \ {l}) ∪ {¬l}
		// subsumes another clause, that clause can drop ¬l.
		for _, l := range c.lits {
			flipped := append(cnf.Clause{}, c.lits...)
			for i := range flipped {
				if flipped[i] == l {
					flipped[i] = l.Not()
				}
			}
			flipped, taut := flipped.Normalize()
			if taut {
				continue
			}
			for _, other := range w.liveOcc(l.Not()) {
				if other.deleted || other == c {
					continue
				}
				if subsumes(flipped, other.lits) {
					kept := other.lits[:0]
					for _, ol := range other.lits {
						if ol != l.Not() {
							kept = append(kept, ol)
						}
					}
					other.lits = kept
					changed = true
					switch len(other.lits) {
					case 0:
						// Conflict discovered; surface via a unit pair.
						w.units = append(w.units, l, l.Not())
						other.deleted = true
					case 1:
						w.units = append(w.units, other.lits[0])
						other.deleted = true
					}
				}
			}
		}
	}
	return changed
}

// subsumes reports a ⊆ b for sorted clauses.
func subsumes(a, b cnf.Clause) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// resolve computes the resolvent of a and b on pivot v; nil for
// tautologies.
func resolve(a, b cnf.Clause, v cnf.Var) cnf.Clause {
	out := make(cnf.Clause, 0, len(a)+len(b)-2)
	for _, l := range a {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	nc, taut := out.Normalize()
	if taut {
		return nil
	}
	return nc
}

// ReconstructModel extends a model of the simplified formula to a model
// of the original formula by replaying the elimination trail in reverse:
// each eliminated variable is set to a value satisfying all the clauses
// removed with it.
func (s *Simplifier) ReconstructModel(model []bool) []bool {
	out := append([]bool(nil), model...)
	for i := len(s.elimTrail) - 1; i >= 0; i-- {
		rec := s.elimTrail[i]
		if int(rec.v) > len(out) {
			continue
		}
		for _, val := range []bool{true, false} {
			out[rec.v-1] = val
			if clausesSatisfied(rec.clauses, out) {
				break
			}
		}
	}
	return out
}

func clausesSatisfied(cs []cnf.Clause, model []bool) bool {
	for _, c := range cs {
		sat := false
		for _, l := range c {
			v := model[l.Var()-1]
			if l.Neg() {
				v = !v
			}
			if v {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func emptyUnsat(numVars int) *cnf.Formula {
	out := cnf.New()
	out.NumVars = numVars
	out.AddClause()
	return out
}

// SolveSimplified preprocesses the formula (freezing the assumption
// variables), solves the result, and reconstructs a full model on SAT.
// It is a drop-in alternative to NewFromFormula(...).Solve(...) matching
// the paper's "MiniSat with simplifier" configuration.
func SolveSimplified(f *cnf.Formula, opts Options, assumptions ...cnf.Lit) (Status, []bool, error) {
	sp := NewSimplifier()
	sp.FreezeLits(assumptions...)
	simplified, st := sp.Simplify(f)
	switch st {
	case Unsat:
		return Unsat, nil, nil
	case Sat:
		if len(assumptions) == 0 {
			base := make([]bool, f.NumVars)
			// Apply the unit clauses of the simplified formula.
			for _, c := range simplified.Clauses {
				if len(c) == 1 {
					base[c[0].Var()-1] = !c[0].Neg()
				}
			}
			return Sat, sp.ReconstructModel(base), nil
		}
		// With assumptions pending we still need a search over them.
	}
	solver := NewFromFormula(simplified, opts)
	status, err := solver.Solve(assumptions...)
	if err != nil || status != Sat {
		return status, nil, err
	}
	model := solver.Model()
	if len(model) < f.NumVars {
		grown := make([]bool, f.NumVars)
		copy(grown, model)
		model = grown
	}
	return Sat, sp.ReconstructModel(model), nil
}
