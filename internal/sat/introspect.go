// Solver introspection: the performance-observatory time-series built
// on top of the Progress-callback cadence. A Sampler turns the raw
// Stats snapshots the solver already emits every Options.ProgressEvery
// conflicts into a bounded time-series of rates (conflicts, decisions,
// propagations per second), learnt-DB churn, restart timeline and a
// derived per-instance hardness score. The hardness score is the
// signal surface the adaptive-partitioning coordinator (ROADMAP item 1)
// will consume: it orders partitions by how hard they are fighting for
// how little progress.
package sat

import (
	"sync"
	"time"
)

// LBDBounds are the inclusive upper bounds of the learnt-clause LBD
// histogram buckets; a final implicit bucket collects everything above
// the last bound. The bounds are fixed (not configurable) so that
// histograms from different solver instances, workers and processes
// merge bucket-wise without rebinning — Stats.Add, the distrib
// heartbeat path and the parbmc_lbd_bucket export all rely on this.
var LBDBounds = [...]int{1, 2, 3, 4, 6, 8, 12, 16}

// LBDBucketCount is the number of histogram buckets: one per bound
// plus the overflow bucket.
const LBDBucketCount = len(LBDBounds) + 1

// LBDHistogram counts learnt clauses per LBD bucket. The zero value is
// ready to use; it marshals as a plain JSON array so it travels on the
// distrib wire inside Stats unchanged.
type LBDHistogram [LBDBucketCount]int64

// LBDBucket maps an LBD value to its bucket index.
func LBDBucket(lbd int) int {
	for i, b := range LBDBounds {
		if lbd <= b {
			return i
		}
	}
	return LBDBucketCount - 1
}

// Observe records one learnt clause with the given LBD.
func (h *LBDHistogram) Observe(lbd int) { h[LBDBucket(lbd)]++ }

// Merge adds o's counts bucket-wise.
func (h *LBDHistogram) Merge(o LBDHistogram) {
	for i := range h {
		h[i] += o[i]
	}
}

// Total is the number of observations across all buckets.
func (h LBDHistogram) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// GlueFraction is the share of learnt clauses with LBD ≤ 2 (the "glue
// clauses" a CDCL solver never deletes); a cheap scalar summary of how
// productive learning is on this instance.
func (h LBDHistogram) GlueFraction() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	return float64(h[0]+h[1]) / float64(total)
}

// Hardness derives the per-instance hardness score from the change
// between two statistics snapshots dt apart:
//
//	hardness = conflictRate × (1 − progressSlope)
//
// where conflictRate is conflicts per second over the interval and
// progressSlope is the gain of the progress estimate per second,
// clamped to [0,1]. An instance burning conflicts while its progress
// estimate stalls scores high; one cruising towards a verdict scores
// low. The score is dimensionally a conflict rate, so it is comparable
// across partitions of the same run but not across machines.
//
// For fixed dt and progress delta the score is monotonically
// non-decreasing in the conflict delta (locked in by
// TestHardnessMonotoneInConflictRate).
func Hardness(conflictDelta int64, progressDelta float64, dt time.Duration) float64 {
	if dt <= 0 || conflictDelta <= 0 {
		return 0
	}
	secs := dt.Seconds()
	rate := float64(conflictDelta) / secs
	slope := progressDelta / secs
	if slope < 0 {
		slope = 0
	}
	if slope > 1 {
		slope = 1
	}
	return rate * (1 - slope)
}

// Sample is one point of the introspection time-series: the cumulative
// counters at the sampling instant plus the rates and hardness derived
// from the interval since the previous sample.
type Sample struct {
	AtMillis int64 `json:"at_ms"` // since the sampler was created

	Conflicts     int64   `json:"conflicts"`
	Decisions     int64   `json:"decisions"`
	Propagations  int64   `json:"propagations"`
	Restarts      int64   `json:"restarts"` // restart timeline: cumulative count per point
	Learnt        int64   `json:"learnt"`
	LearntDeleted int64   `json:"learnt_deleted"`
	LearntDB      int64   `json:"learnt_db"`
	Progress      float64 `json:"progress"`

	ConflictRate    float64 `json:"conflict_rate"`    // conflicts / second over the last interval
	DecisionRate    float64 `json:"decision_rate"`    // decisions / second
	PropagationRate float64 `json:"propagation_rate"` // propagations / second
	Hardness        float64 `json:"hardness"`         // see Hardness
}

// DefaultSamplerPoints bounds a Sampler's retained time-series.
const DefaultSamplerPoints = 256

// Sampler builds the introspection time-series. It is piggybacked on
// the solver's Progress callback: wire Observe as (or from) the
// Progress func and every ProgressEvery-conflict snapshot becomes one
// Sample. The sampler is safe for one writer (the solving goroutine)
// and any number of readers.
type Sampler struct {
	mu     sync.Mutex
	origin time.Time
	max    int

	hasPrev bool
	prevAt  time.Time
	prev    Stats

	points []Sample
	last   Sample
}

// NewSampler creates a sampler retaining at most maxPoints samples
// (DefaultSamplerPoints if maxPoints <= 0); beyond that the oldest
// points are dropped, keeping the most recent window.
func NewSampler(maxPoints int) *Sampler {
	if maxPoints <= 0 {
		maxPoints = DefaultSamplerPoints
	}
	return &Sampler{origin: time.Now(), max: maxPoints}
}

// Observe folds one statistics snapshot into the time-series and
// returns the derived sample. Nil-safe: a nil sampler ignores the
// snapshot.
func (sp *Sampler) Observe(st Stats) Sample {
	if sp == nil {
		return Sample{}
	}
	return sp.observeAt(time.Now(), st)
}

func (sp *Sampler) observeAt(now time.Time, st Stats) Sample {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	s := Sample{
		AtMillis:      now.Sub(sp.origin).Milliseconds(),
		Conflicts:     st.Conflicts,
		Decisions:     st.Decisions,
		Propagations:  st.Propagations,
		Restarts:      st.Restarts,
		Learnt:        st.Learnt,
		LearntDeleted: st.LearntDeleted,
		LearntDB:      st.LearntDB,
		Progress:      st.Progress,
	}
	if sp.hasPrev {
		dt := now.Sub(sp.prevAt)
		if secs := dt.Seconds(); secs > 0 {
			s.ConflictRate = float64(st.Conflicts-sp.prev.Conflicts) / secs
			s.DecisionRate = float64(st.Decisions-sp.prev.Decisions) / secs
			s.PropagationRate = float64(st.Propagations-sp.prev.Propagations) / secs
			s.Hardness = Hardness(st.Conflicts-sp.prev.Conflicts, st.Progress-sp.prev.Progress, dt)
		}
	}
	sp.hasPrev = true
	sp.prevAt = now
	sp.prev = st
	sp.last = s
	if len(sp.points) >= sp.max {
		copy(sp.points, sp.points[1:])
		sp.points = sp.points[:sp.max-1]
	}
	sp.points = append(sp.points, s)
	return s
}

// Points returns a copy of the retained time-series, oldest first.
// Nil-safe.
func (sp *Sampler) Points() []Sample {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]Sample, len(sp.points))
	copy(out, sp.points)
	return out
}

// Last returns the most recent sample, if any. Nil-safe.
func (sp *Sampler) Last() (Sample, bool) {
	if sp == nil {
		return Sample{}, false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.last, len(sp.points) > 0
}

// HardnessScore returns the hardness of the most recent sample, or 0
// before the second sample (rates need an interval). Nil-safe.
func (sp *Sampler) HardnessScore() float64 {
	s, _ := sp.Last()
	return s.Hardness
}
