package distrib

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/prog"
)

// TestDistributedFlightRecorder is the acceptance test for the
// cross-process flight recorder: a live 2-worker distributed run must
// (1) produce span files that merge into a single rooted tree — worker
// job spans parented under coordinator job spans via the wire-carried
// SpanContext — with no orphans, (2) expose per-partition
// parbmc_partition_progress gauges on /metrics, and (3) yield a run
// report whose rendering contains the partition imbalance table.
func TestDistributedFlightRecorder(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.NewMux(obs.MuxOptions{Registry: reg}))
	defer srv.Close()

	var coordBuf bytes.Buffer
	coordColl := obs.NewCollectorSink()
	tracer := obs.NewTracer(obs.MultiSink(obs.NewJSONLSink(&coordBuf), coordColl)).
		WithProc("coordinator")
	recorder := report.NewRecorder()

	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		Metrics: reg,
		Tracer:  tracer,
		Report:  recorder,
	})

	workerBufs := make([]*bytes.Buffer, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		workerBufs[i] = &bytes.Buffer{}
		name := fmt.Sprintf("fr%d", i)
		wt := obs.NewTracer(obs.NewJSONLSink(workerBufs[i])).WithProc(name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Work(context.Background(), addr, WorkerOptions{
				Name: name, Cores: 1, Tracer: wt,
			}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
	res := waitResult(t, resCh)
	wg.Wait()
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}

	// (1) Merge the coordinator's span file, both workers' span files,
	// and the worker spans shipped back inside result messages (the
	// report's own copy). Every span must hang off the single
	// "coordinate" root; remote refs must resolve.
	sets := [][]obs.Event{recorder.Build().Spans}
	for _, buf := range append([]*bytes.Buffer{&coordBuf}, workerBufs...) {
		events, err := obs.ParseJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, events)
	}
	tree := obs.Merge(sets...)
	if len(tree.Roots) != 1 {
		t.Fatalf("merged roots: %d, want 1", len(tree.Roots))
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("merged orphans: %d (first: %s %s)", len(tree.Orphans),
			tree.Orphans[0].Name, tree.Orphans[0].Ref())
	}
	root := tree.Roots[0]
	if root.Name != "coordinate" || root.Proc != "coordinator" {
		t.Fatalf("root span %s from %s", root.Name, root.Proc)
	}
	var jobSpans, workerJobs, solves int
	tree.Walk(func(n *obs.SpanNode, depth int) {
		switch n.Name {
		case "job":
			jobSpans++
			if depth != 1 {
				t.Errorf("job span at depth %d, want 1", depth)
			}
		case "worker_job":
			workerJobs++
			if depth != 2 {
				t.Errorf("worker_job span at depth %d, want 2 (under a coordinator job span)", depth)
			}
			if !strings.HasPrefix(n.Proc, "fr") {
				t.Errorf("worker_job from proc %q", n.Proc)
			}
		case "solve":
			solves++
			if depth < 3 {
				t.Errorf("solve span at depth %d, want >= 3 (inside a worker job)", depth)
			}
		}
	})
	if jobSpans != 4 || workerJobs != 4 || solves != 4 {
		t.Fatalf("spans: job=%d worker_job=%d solve=%d, want 4 each", jobSpans, workerJobs, solves)
	}
	trace := tracer.TraceID()
	tree.Walk(func(n *obs.SpanNode, _ int) {
		if n.Trace != trace {
			t.Errorf("span %s (%s) has trace %q, want %q", n.Name, n.Ref(), n.Trace, trace)
		}
	})

	// (2) Per-partition progress gauges. Final results pin them even
	// when the run outpaces every heartbeat, so all 4 must be present.
	body := scrape(t, srv.URL)
	for part := 0; part < 4; part++ {
		series := fmt.Sprintf(`parbmc_partition_progress{partition="%d"}`, part)
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %s\n%s", series, body)
		}
	}
	if v, ok := metricValue(body, "parbmc_partition_progress"); !ok || v < 0 || v > 1 {
		t.Fatalf("partition progress sample: %v (present %v), want in [0,1]", v, ok)
	}

	// (3) The report renders the imbalance table with one row per
	// partition and a populated verdict/worker per row.
	rep := recorder.Build()
	if len(rep.Partitions) != 4 {
		t.Fatalf("report rows: %d, want 4", len(rep.Partitions))
	}
	for _, row := range rep.Partitions {
		if row.Verdict == "" || row.Worker == "" {
			t.Fatalf("incomplete row: %+v", row)
		}
	}
	var out bytes.Buffer
	report.Render(&out, rep, sets[1:]...)
	text := out.String()
	if !strings.Contains(text, "Partition imbalance (4 partitions):") {
		t.Fatalf("render missing imbalance table:\n%s", text)
	}
	if !strings.Contains(text, "imbalance: solve-ms max/min") {
		t.Fatalf("render missing imbalance summary line:\n%s", text)
	}
	if !strings.Contains(text, "0 orphans") {
		t.Fatalf("render reports orphans:\n%s", text)
	}
}

// TestHeartbeatCarriesProgress pins the protocol detail the estimator
// rides on: heartbeat and result messages carry the job-level progress
// field and the per-partition breakdown.
func TestHeartbeatCarriesProgress(t *testing.T) {
	recorder := report.NewRecorder()
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 4, Partitions: 8, ChunkSize: 4,
		Report: recorder,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "hb", Cores: 1})
	}()
	res := waitResult(t, resCh)
	wg.Wait()
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	rep := recorder.Build()
	if len(rep.Partitions) == 0 {
		t.Fatal("no partition rows recorded")
	}
	var sawVerdict bool
	for _, row := range rep.Partitions {
		if row.Verdict != "" {
			sawVerdict = true
		}
		if row.Progress < 0 || row.Progress > 1 {
			t.Fatalf("row %d progress %v out of [0,1]", row.Partition, row.Progress)
		}
	}
	if !sawVerdict {
		t.Fatalf("no partition verdict in rows: %+v", rep.Partitions)
	}
}
