package distrib

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Lease-based leadership.
//
// Exactly one coordinator may lead a run at a time. Leadership is a
// lease on a shared file: the leader writes its identity, advertised
// address, and an expiry, and renews well before the expiry; a standby
// polls the file and may take over only once the lease has expired.
// Every successful acquisition increments the epoch — a fencing token
// stamped into the lease, the welcome handshake, and every job message,
// so a deposed primary that revives (paused process, healed partition)
// is refused by workers that have already seen the higher epoch. The
// lease file bounds *when* a takeover may happen; the epoch bounds the
// damage if two coordinators ever believe they lead simultaneously.
//
// Mutual exclusion during acquire/renew uses a sidecar lock file
// created with O_EXCL, which is atomic on local filesystems (and on
// NFSv4); the lease state itself is replaced atomically via rename.
// This is a cooperative, same-filesystem protocol — both coordinators
// must see the same lease path, typically on the shared storage that
// also carries nothing else (journals stay node-local and travel by
// replication).

// ErrLeaseHeld is returned by AcquireLease while another holder's
// unexpired lease is in force.
var ErrLeaseHeld = errors.New("distrib: lease held")

// ErrLeaseLost is returned by Lease.Renew when the file no longer
// carries the caller's epoch and holder — another coordinator has taken
// over, and the caller must stop acting as leader immediately.
var ErrLeaseLost = errors.New("distrib: lease lost")

// LeaseState is the JSON content of the lease file.
type LeaseState struct {
	// Epoch is the fencing token, incremented on every acquisition.
	Epoch int64 `json:"epoch"`
	// Holder names the coordinator holding the lease.
	Holder string `json:"holder"`
	// Addr is the holder's advertised coordinator address — where
	// workers and the standby's replication client should dial.
	Addr string `json:"addr"`
	// ExpiresUnixMilli is the wall-clock expiry; a reader treats the
	// lease as free once this has passed.
	ExpiresUnixMilli int64 `json:"expires_unix_milli"`
}

// Expired reports whether the lease is past its expiry at time now.
func (s LeaseState) Expired(now time.Time) bool {
	return now.UnixMilli() >= s.ExpiresUnixMilli
}

// Lease is a held leadership lease.
type Lease struct {
	path   string
	ttl    time.Duration
	holder string
	addr   string
	epoch  int64
}

// ReadLease reads the current lease state. exists is false when no
// lease file is present (no run has ever elected a leader).
func ReadLease(path string) (state LeaseState, exists bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return LeaseState{}, false, nil
	}
	if err != nil {
		return LeaseState{}, false, err
	}
	if err := json.Unmarshal(data, &state); err != nil {
		return LeaseState{}, false, fmt.Errorf("distrib: lease file %s: %w", path, err)
	}
	return state, true, nil
}

// AcquireLease takes leadership if the lease is free (absent, expired,
// or already held by this holder) and returns the held lease with a
// freshly incremented epoch. While another holder's lease is in force
// it returns ErrLeaseHeld wrapped with the current state.
func AcquireLease(path, holder, addr string, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("distrib: lease TTL must be positive")
	}
	unlock, err := sidecarLock(path)
	if err != nil {
		return nil, err
	}
	defer unlock()
	cur, exists, err := ReadLease(path)
	if err != nil {
		return nil, err
	}
	if exists && !cur.Expired(time.Now()) && cur.Holder != holder {
		return nil, fmt.Errorf("%w by %s (epoch %d) until %s", ErrLeaseHeld,
			cur.Holder, cur.Epoch, time.UnixMilli(cur.ExpiresUnixMilli).Format(time.RFC3339))
	}
	l := &Lease{path: path, ttl: ttl, holder: holder, addr: addr, epoch: cur.Epoch + 1}
	if err := l.write(); err != nil {
		return nil, err
	}
	return l, nil
}

// Epoch returns the fencing token of this acquisition.
func (l *Lease) Epoch() int64 { return l.epoch }

// Renew extends the lease by its TTL. It re-reads the file first: if
// another coordinator's epoch is in force the caller has been deposed
// and gets ErrLeaseLost — it must stop handing out work under its old
// epoch (workers would refuse it anyway, but stopping early is
// cheaper than being fenced).
func (l *Lease) Renew() error {
	unlock, err := sidecarLock(l.path)
	if err != nil {
		return err
	}
	defer unlock()
	cur, exists, err := ReadLease(l.path)
	if err != nil {
		return err
	}
	if !exists || cur.Epoch != l.epoch || cur.Holder != l.holder {
		return fmt.Errorf("%w: file now holds epoch %d (%s), we are epoch %d (%s)",
			ErrLeaseLost, cur.Epoch, cur.Holder, l.epoch, l.holder)
	}
	return l.write()
}

// Release ends leadership cleanly by expiring the lease in place (the
// epoch is preserved so the next acquisition still increments it). A
// crashed leader skips this, and the standby waits out the TTL instead.
func (l *Lease) Release() error {
	unlock, err := sidecarLock(l.path)
	if err != nil {
		return err
	}
	defer unlock()
	cur, exists, err := ReadLease(l.path)
	if err != nil || !exists || cur.Epoch != l.epoch || cur.Holder != l.holder {
		return err // deposed already: nothing of ours to release
	}
	cur.ExpiresUnixMilli = time.Now().UnixMilli()
	return writeLeaseFile(l.path, cur)
}

// write replaces the lease state with this holder's, expiry ttl from
// now.
func (l *Lease) write() error {
	return writeLeaseFile(l.path, LeaseState{
		Epoch:            l.epoch,
		Holder:           l.holder,
		Addr:             l.addr,
		ExpiresUnixMilli: time.Now().Add(l.ttl).UnixMilli(),
	})
}

// writeLeaseFile replaces the lease file atomically (temp + rename), so
// a reader never observes a torn lease. The parent directory is fsynced
// after the rename: without it the new directory entry is not durable,
// and a power loss can resurface the *previous* lease state — a deposed
// holder's epoch — after the new holder already acted on its term.
func writeLeaseFile(path string, s LeaseState) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".lease-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync() // best-effort, like journal.syncDir: some filesystems refuse
		dir.Close()
	}
	return nil
}

// sidecarLock serialises lease mutations through an O_EXCL lock file.
// A lock older than staleLockAge is presumed abandoned by a crashed
// mutator (mutations hold it for microseconds) and is broken.
const staleLockAge = 10 * time.Second

func sidecarLock(path string) (unlock func(), err error) {
	lock := path + ".lock"
	deadline := time.Now().Add(staleLockAge)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(lock) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, err
		}
		if st, serr := os.Stat(lock); serr == nil && time.Since(st.ModTime()) > staleLockAge {
			os.Remove(lock) // abandoned by a crashed mutator
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distrib: lease lock %s wedged", lock)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
