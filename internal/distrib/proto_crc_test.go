package distrib

import (
	"net"
	"strings"
	"testing"
	"time"
)

// pipePair returns two framed ends of an in-memory connection.
func pipePair(t *testing.T) (*conn, *conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return newConn(a, time.Second), newConn(b, time.Second)
}

func TestFrameChecksumRoundTrip(t *testing.T) {
	ca, cb := pipePair(t)
	go func() {
		_ = ca.send(&Message{Type: "hello", WorkerName: "w", Cores: 3})
	}()
	m, err := cb.recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "hello" || m.WorkerName != "w" || m.Cores != 3 {
		t.Fatalf("message %+v", m)
	}
}

// A frame whose payload no longer matches its checksum must be rejected
// before the JSON decoder ever sees it — even when the payload is
// syntactically valid JSON that would decode into a plausible message.
func TestFrameChecksumRejectsCorruptPayload(t *testing.T) {
	ca, cb := pipePair(t)
	go func() {
		// A valid checksum for a different payload: simulates in-flight
		// bit corruption of the verdict field.
		_ = ca.sendRaw([]byte(`00000000 {"type":"result","job_id":1,"verdict":"SAFE"}` + "\n"))
	}()
	_, err := cb.recv(5 * time.Second)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("err %v, want checksum mismatch", err)
	}
}

// Frames without the checksum prefix (old peers, garbage injection) are
// rejected with a distinct error.
func TestFrameChecksumRejectsMissingPrefix(t *testing.T) {
	for _, line := range []string{
		`{"type":"hello"}` + "\n",          // bare JSON, no checksum
		"x\n",                              // too short to carry a checksum
		`zzzzzzzz {"type":"hello"}` + "\n", // prefix is not hex
	} {
		ca, cb := pipePair(t)
		go func() { _ = ca.sendRaw([]byte(line)) }()
		_, err := cb.recv(5 * time.Second)
		if err == nil || !strings.Contains(err.Error(), "missing checksum") {
			t.Fatalf("line %q: err %v, want missing-checksum", line, err)
		}
	}
}

func TestVerifyFrameDirect(t *testing.T) {
	payload, err := verifyFrame([]byte("00000000 "))
	if err != nil || len(payload) != 0 {
		t.Fatalf("empty payload: %q, %v", payload, err)
	}
	if _, err := verifyFrame([]byte("deadbeef x")); err == nil {
		t.Fatal("wrong checksum accepted")
	}
}
