package distrib

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/prog"
)

// drainedConn builds a conn whose peer discards everything, so cancel
// sends in scheduler unit tests never block.
func drainedConn(t *testing.T) *conn {
	t.Helper()
	a, b := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, b) }()
	t.Cleanup(func() { a.Close(); b.Close() })
	return newConn(a, time.Second)
}

// The supersession fence, unit level: once a cube is reserved for
// splitting — before the SPLIT record even lands — its parent result can
// no longer win the race, and after completeSplit only the two children
// are claimable.
func TestSchedulerSupersededParentRejected(t *testing.T) {
	s := newScheduler(CoordinatorOptions{SplitDepth: 2, SplitGrace: time.Millisecond}, 4)
	wcA, wcB := drainedConn(t), drainedConn(t)

	parent := partition.Cube{From: 0, To: 3}
	s.push(parent)
	a, victim := s.tryAcquire("w1", wcA)
	if a == nil || victim != nil || a.cube != parent {
		t.Fatalf("tryAcquire on a filled queue: a=%+v victim=%+v", a, victim)
	}
	time.Sleep(5 * time.Millisecond) // past the grace period

	// An idle worker with an empty queue reserves the straggler.
	b, victim := s.tryAcquire("w2", wcB)
	if b != nil || victim != a {
		t.Fatalf("expected w2 to reserve w1's cube as split victim, got a=%+v victim=%+v", b, victim)
	}

	// The pre-commit window: the parent's own result already loses.
	if s.claim(a) {
		t.Fatal("parent result claimed while its cube was reserved for splitting")
	}

	left, stolen := s.completeSplit(victim, "w2", wcB)
	if !stolen {
		t.Fatal("w2 split w1's cube but the steal was not counted")
	}
	if left.cube != (partition.Cube{From: 0, To: 1}) {
		t.Fatalf("stolen child %+v, want {0 1}", left.cube)
	}
	if !s.claim(left) {
		t.Fatal("left child result rejected")
	}
	right, victim := s.tryAcquire("w1", wcA)
	if right == nil || victim != nil || right.cube != (partition.Cube{From: 2, To: 3}) {
		t.Fatalf("right child not queued: a=%+v victim=%+v", right, victim)
	}
	if !s.claim(right) {
		t.Fatal("right child result rejected")
	}

	splits, _, steals, superseded, _ := s.stats()
	if splits != 1 || steals != 1 || superseded != 1 {
		t.Fatalf("stats splits=%d steals=%d superseded=%d, want 1/1/1", splits, steals, superseded)
	}
}

// The hedge race, unit level: the twin that reports first wins; the
// loser's release reports the cube as covered (no requeue, no charge)
// and a late claim from the loser is rejected.
func TestSchedulerHedgeLoserDiscarded(t *testing.T) {
	s := newScheduler(CoordinatorOptions{Hedge: true, SplitGrace: time.Millisecond}, 4)
	wcA, wcB := drainedConn(t), drainedConn(t)

	cube := partition.Cube{From: 0, To: 1}
	s.push(cube)
	orig, _ := s.tryAcquire("w1", wcA)
	if orig == nil {
		t.Fatal("no assignment for the queued cube")
	}
	time.Sleep(5 * time.Millisecond)

	twin, victim := s.tryAcquire("w2", wcB)
	if twin == nil || victim != nil || !twin.hedge || twin.cube != cube {
		t.Fatalf("expected a hedge duplicate of %v, got a=%+v victim=%+v", cube, twin, victim)
	}
	// The same worker must never hedge its own cube, and a cube already
	// hedged must not be duplicated again.
	if extra, _ := s.tryAcquire("w3", drainedConn(t)); extra != nil {
		t.Fatalf("cube hedged twice: %+v", extra)
	}

	if !s.claim(twin) {
		t.Fatal("hedge winner rejected")
	}
	if s.release(orig) {
		t.Fatal("hedge loser was released for requeue; it must be discarded")
	}
	if s.claim(orig) {
		t.Fatal("hedge loser's late result claimed after the twin won")
	}

	_, hedges, _, superseded, _ := s.stats()
	if hedges != 1 || superseded < 1 {
		t.Fatalf("stats hedges=%d superseded=%d, want 1 and >=1", hedges, superseded)
	}
}

// startWorkerPair launches a slow worker (fault plan attached), waits
// for it to own a job, then adds a fast worker; returns a wait func.
func startWorkerPair(t *testing.T, addr string, slowPlan *FaultPlan) func() {
	t.Helper()
	var wg sync.WaitGroup
	for _, w := range []struct {
		name string
		plan *FaultPlan
	}{{"slow", slowPlan}, {"fast", nil}} {
		wg.Add(1)
		go func(name string, plan *FaultPlan) {
			defer wg.Done()
			if _, err := Work(context.Background(), addr, WorkerOptions{Name: name, Cores: 1, Faults: plan}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(w.name, w.plan)
		if w.plan != nil {
			// Head start: the slow worker must hold a cube before the
			// fast one drains the queue, or the scenario is vacuous.
			time.Sleep(150 * time.Millisecond)
		}
	}
	return wg.Wait
}

// The tentpole acceptance scenario: one straggler worker (deterministic
// 3s pre-solve sleep on its first job, heartbeats flowing) and one
// healthy worker. A static run is hostage to the straggler; the
// adaptive run splits the stalled cube after SplitGrace, the healthy
// worker steals a child, and the cancelled parent result is discarded
// without being journaled or charged. The adaptive run must beat the
// static one by at least 1.5x.
func TestAdaptiveSplitRoutesAroundStraggler(t *testing.T) {
	p := prog.MustParse(fibSrc)
	const slowFor = 3 * time.Second

	static := func() *CoordinatorResult {
		addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
			Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		}))
		wait := startWorkerPair(t, addr, SlowAt(slowFor, 0))
		res := waitResult(t, resCh)
		wait()
		return res
	}()
	if static.Verdict != core.Safe {
		t.Fatalf("static verdict %v", static.Verdict)
	}
	if static.Wall < slowFor {
		t.Fatalf("static run finished in %v despite a %v straggler: the slow worker never held a cube", static.Wall, slowFor)
	}

	reg := obs.NewRegistry()
	jpath := filepath.Join(t.TempDir(), "journal")
	opts := fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		SplitDepth: 2, SplitGrace: 250 * time.Millisecond,
		// One charged failure would quarantine: proves cancelled parent
		// results are never charged to the attempt budget.
		MaxAttempts: 1,
		JournalPath: jpath,
		Metrics:     reg,
	})
	addr, resCh := startCoordinator(t, p, opts)
	wait := startWorkerPair(t, addr, SlowAt(slowFor, 0))
	res := waitResult(t, resCh)
	wait()

	if res.Verdict != core.Safe {
		t.Fatalf("adaptive verdict %v (quarantined %+v)", res.Verdict, res.Quarantined)
	}
	if res.Splits < 1 || res.Steals < 1 || res.Superseded < 1 {
		t.Fatalf("splits=%d steals=%d superseded=%d, want all >= 1", res.Splits, res.Steals, res.Superseded)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("cancelled straggler results charged the attempt budget: %+v", res.Quarantined)
	}
	if res.ChunksDecided != res.ChunksTotal {
		t.Fatalf("decided %d of %d chunks", res.ChunksDecided, res.ChunksTotal)
	}
	// The acceptance bound: adaptive at least 1.5x faster than static.
	if 3*res.Wall > 2*static.Wall {
		t.Fatalf("adaptive run %v not 1.5x faster than static %v", res.Wall, static.Wall)
	}

	// The counters surface on the metrics registry too.
	if got := reg.Counter("parbmc_cubes_split_total", "").Value(); got < 1 {
		t.Fatalf("parbmc_cubes_split_total = %d, want >= 1", got)
	}
	if got := reg.Counter("parbmc_steals_total", "").Value(); got < 1 {
		t.Fatalf("parbmc_steals_total = %d, want >= 1", got)
	}
	if got := reg.Counter("parbmc_results_superseded_total", "").Value(); got < 1 {
		t.Fatalf("parbmc_results_superseded_total = %d, want >= 1", got)
	}

	// Journal tree consistency: every split cube carries exactly one
	// SPLIT record and no terminal verdict; every terminal verdict is a
	// certified SAFE leaf.
	_, recs, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	split := map[partition.Cube]int{}
	terminal := map[partition.Cube]int{}
	for _, rec := range recs {
		cube := partition.Cube{From: rec.From, To: rec.To, Path: rec.Path}
		if rec.Split() {
			split[cube]++
			continue
		}
		terminal[cube]++
		if rec.Verdict != core.Safe.String() || !rec.Certified {
			t.Fatalf("terminal record %+v, want certified Safe", rec)
		}
	}
	if len(split) == 0 {
		t.Fatal("no SPLIT record journaled")
	}
	for cube, n := range split {
		if n != 1 {
			t.Fatalf("cube %v has %d SPLIT records", cube, n)
		}
		if terminal[cube] != 0 {
			t.Fatalf("split cube %v also has a terminal verdict: the superseded parent was journaled", cube)
		}
	}
	for cube, n := range terminal {
		if n != 1 {
			t.Fatalf("cube %v journaled %d terminal verdicts", cube, n)
		}
	}
}

// Hedged dispatch: with splitting disabled, the idle healthy worker
// speculatively duplicates the straggler's cube and wins; the loser's
// cancelled result is discarded — never journaled (exactly one record
// per cube) and never charged (MaxAttempts 1 would quarantine on any
// charge). The run must not wait out the straggler's sleep.
func TestHedgedLoserNotJournaledNotCharged(t *testing.T) {
	p := prog.MustParse(fibSrc)
	const slowFor = 3 * time.Second
	jpath := filepath.Join(t.TempDir(), "journal")
	opts := fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		Hedge: true, SplitGrace: 250 * time.Millisecond,
		MaxAttempts: 1,
		JournalPath: jpath,
	})
	addr, resCh := startCoordinator(t, p, opts)
	wait := startWorkerPair(t, addr, SlowAt(slowFor, 0))
	res := waitResult(t, resCh)
	wait()

	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v (quarantined %+v)", res.Verdict, res.Quarantined)
	}
	if res.Hedges < 1 || res.Superseded < 1 {
		t.Fatalf("hedges=%d superseded=%d, want both >= 1", res.Hedges, res.Superseded)
	}
	if res.Splits != 0 {
		t.Fatalf("splits=%d with SplitDepth 0", res.Splits)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("hedge loser charged the attempt budget: %+v", res.Quarantined)
	}
	if res.Wall >= slowFor {
		t.Fatalf("run took %v: the hedge never cancelled the %v straggler", res.Wall, slowFor)
	}
	// The hedged cube was dispatched twice, its sibling once.
	var twice int
	for cube, n := range res.Attempts {
		if n == 2 {
			twice++
		} else if n != 1 {
			t.Fatalf("cube %v dispatched %d times", cube, n)
		}
	}
	if twice != 1 {
		t.Fatalf("%d cubes dispatched twice, want exactly the hedged one", twice)
	}
	// Exactly one journal record per cube: the loser was never committed.
	_, recs, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal has %d records, want 2 (one per cube)\n%+v", len(recs), recs)
	}
	seen := map[partition.Cube]bool{}
	for _, rec := range recs {
		cube := partition.Cube{From: rec.From, To: rec.To, Path: rec.Path}
		if seen[cube] {
			t.Fatalf("cube %v journaled twice", cube)
		}
		seen[cube] = true
		if rec.Verdict != core.Safe.String() || !rec.Certified {
			t.Fatalf("record %+v, want certified Safe", rec)
		}
	}
}

// Kill-the-primary mid-split: the primary dies by fault plan right
// after committing a SPLIT record and one child verdict. The standby
// must replay the cube tree from its replicated journal — parent
// superseded, children live — and drive the run to the same certified
// Safe verdict, with the promoted journal forming a consistent tree.
func TestHAFailoverMidSplitReplaysCubeTree(t *testing.T) {
	p := prog.MustParse(fibSrc)
	dir := t.TempDir()
	leasePath := filepath.Join(dir, "lease.json")
	lnA, lnB := listen(t), listen(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	adaptive := func(o CoordinatorOptions) CoordinatorOptions {
		o.SplitDepth = 2
		o.SplitGrace = 300 * time.Millisecond
		o.Hedge = true
		return o
	}
	optsA := adaptive(haFastOpts(t, filepath.Join(dir, "a")))
	// Commits with one slow and one fast worker arrive in a fixed order:
	// three fast cube verdicts, the straggler's SPLIT, then the stolen
	// child's verdict — killing at 5 lands just past the split.
	optsA.Faults = &CoordinatorFaultPlan{KillAfterJobs: 5}
	optsB := adaptive(haFastOpts(t, filepath.Join(dir, "b")))
	stateB := &HAState{}

	haA := HAOptions{LeasePath: leasePath, Holder: "alpha", Addr: addrA, LeaseTTL: 400 * time.Millisecond}
	haB := HAOptions{LeasePath: leasePath, Holder: "beta", Addr: addrB, LeaseTTL: 400 * time.Millisecond, State: stateB}

	ctx := context.Background()
	errA := make(chan error, 1)
	go func() {
		_, err := RunHA(ctx, lnA, p, optsA, haA)
		errA <- err
	}()
	waitLeaseHolder(t, leasePath, "alpha")
	type outcome struct {
		res *CoordinatorResult
		err error
	}
	resB := make(chan outcome, 1)
	go func() {
		res, err := RunHA(ctx, lnB, p, optsB, haB)
		resB <- outcome{res, err}
	}()

	endpoints := addrA + "," + addrB
	var wg sync.WaitGroup
	for _, w := range []struct {
		name string
		plan *FaultPlan
	}{
		// Uniformly slow: every job sleeps until cancelled, so only the
		// split/hedge machinery (before and after the failover) can
		// route work around it.
		{"ws", SlowAt(10 * time.Second)},
		{"wf", nil},
	} {
		wg.Add(1)
		go func(name string, plan *FaultPlan) {
			defer wg.Done()
			if _, err := Work(ctx, endpoints, WorkerOptions{
				Name: name, MaxReconnects: 10,
				ReconnectBackoff: 25 * time.Millisecond,
				ReconnectTimeout: 60 * time.Second,
				Faults:           plan,
			}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(w.name, w.plan)
		if w.plan != nil {
			time.Sleep(150 * time.Millisecond)
		}
	}

	if err := <-errA; !errors.Is(err, ErrPrimaryKilled) {
		t.Fatalf("primary A returned %v, want ErrPrimaryKilled", err)
	}
	var b outcome
	select {
	case b = <-resB:
	case <-time.After(60 * time.Second):
		t.Fatal("standby never finished the run")
	}
	wg.Wait()
	if b.err != nil {
		t.Fatalf("standby: %v", b.err)
	}
	if b.res.Verdict != core.Safe {
		t.Fatalf("standby verdict %v, want Safe (quarantined %+v)", b.res.Verdict, b.res.Quarantined)
	}
	if b.res.Splits < 1 {
		t.Fatalf("standby counted %d splits, want >= 1 (the replicated SPLIT record at minimum)", b.res.Splits)
	}
	if role, epoch, _ := stateB.Role(); role != RolePrimary || epoch != 2 {
		t.Fatalf("standby state role=%s epoch=%d, want primary at epoch 2", role, epoch)
	}

	// The promoted journal is a consistent cube tree: split cubes carry
	// no terminal verdict, every terminal verdict is certified Safe.
	_, recs, err := journal.Read(optsB.JournalPath)
	if err != nil {
		t.Fatalf("read standby journal: %v", err)
	}
	split := map[partition.Cube]bool{}
	terminals := 0
	for _, rec := range recs {
		if rec.Split() {
			split[partition.Cube{From: rec.From, To: rec.To, Path: rec.Path}] = true
		}
	}
	if len(split) == 0 {
		t.Fatal("standby journal has no SPLIT record: the cube tree was not replicated or rebuilt")
	}
	seen := map[partition.Cube]bool{}
	for _, rec := range recs {
		if rec.Split() {
			continue
		}
		cube := partition.Cube{From: rec.From, To: rec.To, Path: rec.Path}
		if split[cube] {
			t.Fatalf("split cube %v also journaled a terminal verdict %q", cube, rec.Verdict)
		}
		if seen[cube] {
			t.Fatalf("cube %v journaled twice", cube)
		}
		seen[cube] = true
		if rec.Verdict != core.Safe.String() || !rec.Certified {
			t.Fatalf("terminal record %+v, want certified Safe", rec)
		}
		terminals++
	}

	// The replay cross-check: a fresh coordinator resuming the promoted
	// journal with no workers must reconstruct the tree and reach the
	// identical certified verdict purely from committed records.
	replayOpts := adaptive(fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		JournalPath: optsB.JournalPath, Resume: true,
	}))
	_, replayCh := startCoordinator(t, p, replayOpts)
	replay := waitResult(t, replayCh)
	if replay.Verdict != core.Safe || replay.Jobs != 0 {
		t.Fatalf("journal replay: verdict %v after %d jobs, want Safe from 0 jobs", replay.Verdict, replay.Jobs)
	}
	if replay.Resumed != terminals {
		t.Fatalf("replay resumed %d leaves, want %d (every terminal record)", replay.Resumed, terminals)
	}
	if replay.ChunksDecided != replay.ChunksTotal {
		t.Fatalf("replay decided %d of %d leaves", replay.ChunksDecided, replay.ChunksTotal)
	}
}

// A departed worker's live gauge series must leave the registry (its
// job/failure counters stay as history). Unit level first, then a live
// run whose straggler emits heartbeats mid-job.
func TestWorkerGaugesDroppedOnDeparture(t *testing.T) {
	reg := obs.NewRegistry()
	m := newCoordMetrics(reg)
	m.heartbeat("w0", &Message{Type: "heartbeat", Conflicts: 7, Hardness: 1.5, MemBytes: 1 << 20, MemLimit: 1 << 22})
	m.jobResult("w0", nil, 5)
	srv := httptest.NewServer(obs.NewMux(obs.MuxOptions{Registry: reg}))
	defer srv.Close()
	body := scrape(t, srv.URL)
	if !strings.Contains(body, `parbmc_worker_hardness{worker="w0"}`) {
		t.Fatalf("heartbeat did not register the hardness gauge:\n%s", body)
	}
	m.dropWorker("w0")
	body = scrape(t, srv.URL)
	for _, name := range []string{
		"parbmc_worker_hardness", "parbmc_worker_live_conflicts",
		"parbmc_worker_mem_bytes", "parbmc_worker_mem_limit_bytes",
	} {
		if strings.Contains(body, name+`{worker="w0"}`) {
			t.Fatalf("%s survived dropWorker:\n%s", name, body)
		}
	}
	if !strings.Contains(body, `parbmc_worker_jobs_total{worker="w0"} 1`) {
		t.Fatalf("job counter history lost on dropWorker:\n%s", body)
	}

	// Live run: the slow worker heartbeats during its sleep (gauges
	// appear), and once the run ends every departed worker's gauges are
	// gone while its counters persist.
	reg2 := obs.NewRegistry()
	srv2 := httptest.NewServer(obs.NewMux(obs.MuxOptions{Registry: reg2}))
	defer srv2.Close()
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		Metrics: reg2,
	}))
	wait := startWorkerPair(t, addr, SlowAt(500*time.Millisecond, 0))
	sawGauge := false
	var res *CoordinatorResult
poll:
	for {
		select {
		case res = <-resCh:
			break poll
		default:
			if strings.Contains(scrape(t, srv2.URL), `parbmc_worker_hardness{worker="slow"}`) {
				sawGauge = true
			}
			time.Sleep(time.Millisecond)
		}
	}
	wait()
	if !sawGauge {
		t.Fatal("never observed the slow worker's hardness gauge during its job")
	}
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	// The serve goroutines may still be returning; the gauges must be
	// unregistered within a bounded window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := scrape(t, srv2.URL)
		if !strings.Contains(body, "parbmc_worker_hardness{") {
			if !strings.Contains(body, `parbmc_worker_jobs_total{worker="slow"}`) {
				t.Fatalf("job counter history lost with the gauges:\n%s", body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker gauges still scraped after the run:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
