// Package distrib implements the paper's distributed analysis
// (Sect. 3.4, Fig. 7) in two forms.
//
// SimulateCluster reproduces the paper's own experimental protocol
// byte-for-byte: the partitions are split into chunks of machine-sized
// groups, each chunk is analysed in a separate run with the machine's
// core count, and the reported wall-clock time of the simulated cluster
// is the maximum over the chunk times (the paper simulated a 128-core
// cluster of 16 8-core machines exactly this way, Sect. 4.1).
//
// Coordinator and Worker implement real distribution over TCP: a
// coordinator hands partition ranges to connected workers (the paper's
// --from/--to interface), collects verdicts, reassigns chunks of failed
// workers, and broadcasts termination as soon as one worker finds a
// counterexample — the cross-machine termination the paper's prototype
// left as future work.
//
// # Fault tolerance
//
// Worker churn is treated as the normal case, not the exception:
//
//   - Retry budget and quarantine: every chunk failure (connection loss,
//     stall, corrupt frame, stale result, worker-side error) charges the
//     chunk's attempt budget (CoordinatorOptions.MaxAttempts). A chunk
//     that exhausts the budget is quarantined — recorded in the
//     structured failure log (CoordinatorResult.Quarantined) with one
//     reason per failed attempt — instead of being reassigned forever; a
//     quarantined chunk caps the verdict at Unknown.
//   - Heartbeats: each job message carries the heartbeat cadence; the
//     worker reports at that interval while the solver runs, and the
//     coordinator declares a connection stalled after HeartbeatGrace of
//     silence — well before the 10-minute JobTimeout.
//   - Result validation: a result whose JobID does not match the
//     outstanding job is rejected as a stale-result misattribution and
//     treated as a worker failure; frames are capped at 16 MiB.
//   - Drain detection: when chunks are pending but no workers remain
//     connected for DrainTimeout, the coordinator returns Unknown with
//     the failure log instead of blocking on Accept forever.
//   - Reconnecting workers: a worker with MaxReconnects > 0 redials
//     after a lost connection with exponential backoff plus seeded
//     jitter, and its health (jobs, failures, connections, last seen) is
//     tracked across connections by name in the coordinator's registry
//     (CoordinatorResult.Workers).
//   - Fault injection: WorkerOptions.Faults takes a deterministic
//     FaultPlan that can drop the connection mid-job, stall silently, go
//     half-open (TCP up, every send swallowed), or corrupt a frame at
//     chosen job indices — the harness the test suite uses to exercise
//     every reassignment path. CoordinatorFaultPlan is the primary-side
//     counterpart: an abrupt in-process SIGKILL after N commits.
//
// # Coordinator failover
//
// RunHA runs a coordinator as one half of a hot-standby pair: lease
// -based leadership with epoch fencing (Lease, HAOptions), live journal
// replication from primary to standby over the job wire protocol, and
// automatic promotion — a standby whose primary's lease expires resumes
// the run from its replicated journal, and workers given both addresses
// (Work with "addr1,addr2") re-home to it without restarting. See
// failover.go and the "Coordinator failover" section of DESIGN.md.
package distrib

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/prog"
)

// ChunkResult records one simulated machine's run.
type ChunkResult struct {
	Chunk   partition.Chunk
	Verdict core.Verdict
	Time    time.Duration
}

// SimResult aggregates a simulated cluster run.
type SimResult struct {
	// Verdict is Unsafe if any chunk found a bug, Safe if all chunks are
	// safe, Unknown on cancellation.
	Verdict core.Verdict
	// MaxChunkTime is the simulated cluster wall-clock time (the paper's
	// Fig. 7 metric: chunks run on different machines in parallel, so the
	// slowest machine determines completion).
	MaxChunkTime time.Duration
	// TotalTime is the actual sequential wall-clock spent simulating.
	TotalTime time.Duration
	// Chunks are the per-machine results.
	Chunks []ChunkResult
}

// SimulateCluster analyses the program with nparts partitions split into
// chunks of machineCores each, running one chunk after another on
// machineCores workers, exactly like the paper's cluster simulation.
func SimulateCluster(ctx context.Context, p *prog.Program, opts core.Options, nparts, machineCores int) (*SimResult, error) {
	start := time.Now()
	// The encoding supports at most 2^(contexts-1) partitions (one
	// symbolic scheduler word per context after the pinned first one).
	if opts.Contexts > 0 && opts.Contexts-1 < 30 && nparts > 1<<uint(opts.Contexts-1) {
		nparts = 1 << uint(opts.Contexts-1)
	}
	chunks := partition.Chunks(nparts, machineCores)
	res := &SimResult{Verdict: core.Safe}
	for _, ch := range chunks {
		o := opts
		o.Partitions = nparts
		o.Cores = machineCores
		o.From, o.To = ch.From, ch.To+1
		r, err := core.Verify(ctx, p, o)
		if err != nil {
			return nil, err
		}
		res.Chunks = append(res.Chunks, ChunkResult{Chunk: ch, Verdict: r.Verdict, Time: r.SolveTime})
		if r.SolveTime > res.MaxChunkTime {
			res.MaxChunkTime = r.SolveTime
		}
		switch r.Verdict {
		case core.Unsafe:
			// A real cluster would terminate the other machines here; the
			// simulation can simply stop (the max-time metric still holds:
			// machines run concurrently).
			res.Verdict = core.Unsafe
			res.TotalTime = time.Since(start)
			return res, nil
		case core.Unknown:
			res.Verdict = core.Unknown
			res.TotalTime = time.Since(start)
			return res, nil
		}
	}
	res.TotalTime = time.Since(start)
	return res, nil
}
