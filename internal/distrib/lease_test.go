package distrib

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestLeaseAcquireHeldExpireReacquire(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.json")
	a, err := AcquireLease(path, "a", "addr-a:1", 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != 1 {
		t.Fatalf("first epoch %d, want 1", a.Epoch())
	}
	st, exists, err := ReadLease(path)
	if err != nil || !exists || st.Holder != "a" || st.Addr != "addr-a:1" {
		t.Fatalf("lease state %+v exists=%v err=%v", st, exists, err)
	}
	// A competing holder is refused while the lease is live.
	if _, err := AcquireLease(path, "b", "addr-b:1", 80*time.Millisecond); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("err %v, want ErrLeaseHeld", err)
	}
	// Renewal pushes the expiry out.
	if err := a.Renew(); err != nil {
		t.Fatal(err)
	}
	// Once expired, the standby takes over with the next epoch.
	time.Sleep(120 * time.Millisecond)
	b, err := AcquireLease(path, "b", "addr-b:1", 80*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if b.Epoch() != 2 {
		t.Fatalf("epoch after takeover %d, want 2", b.Epoch())
	}
	// The deposed holder's renewal must fail loudly.
	if err := a.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("deposed renew err %v, want ErrLeaseLost", err)
	}
}

func TestLeaseReleaseFreesImmediately(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.json")
	a, err := AcquireLease(path, "a", "addr-a:1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	b, err := AcquireLease(path, "b", "addr-b:1", time.Hour)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if b.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2 (release preserves the epoch counter)", b.Epoch())
	}
}

// Concurrent acquisitions of a free lease elect exactly one leader.
func TestLeaseConcurrentAcquireElectsOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.json")
	const contenders = 8
	var wg sync.WaitGroup
	won := make(chan int64, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := AcquireLease(path, string(rune('a'+i)), "addr", time.Hour)
			if err == nil {
				won <- l.Epoch()
			} else if !errors.Is(err, ErrLeaseHeld) {
				t.Errorf("contender %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(won)
	var epochs []int64
	for e := range won {
		epochs = append(epochs, e)
	}
	if len(epochs) != 1 || epochs[0] != 1 {
		t.Fatalf("winners %v, want exactly one at epoch 1", epochs)
	}
}

func TestLeaseExpiredState(t *testing.T) {
	s := LeaseState{ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli()}
	if s.Expired(time.Now()) {
		t.Fatal("future lease reported expired")
	}
	if !s.Expired(time.Now().Add(2 * time.Minute)) {
		t.Fatal("past lease reported live")
	}
}
