package distrib

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Message is the JSON wire format exchanged between coordinator and
// workers, one message per line.
type Message struct {
	// Type is "hello", "job", "result", or "stop".
	Type string `json:"type"`

	// Hello fields.
	WorkerName string `json:"worker_name,omitempty"`
	Cores      int    `json:"cores,omitempty"`

	// Job fields: the program source plus the analysis parameters and
	// the partition range (the paper's --from/--to interface).
	JobID      int    `json:"job_id,omitempty"`
	Source     string `json:"source,omitempty"`
	Unwind     int    `json:"unwind,omitempty"`
	Contexts   int    `json:"contexts,omitempty"`
	Width      int    `json:"width,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	From       int    `json:"from"`
	To         int    `json:"to"`

	// Result fields.
	Verdict string `json:"verdict,omitempty"`
	Winner  int    `json:"winner,omitempty"`
	Millis  int64  `json:"millis,omitempty"`
	Error   string `json:"error,omitempty"`
}

// conn wraps a TCP connection with line-delimited JSON framing.
type conn struct {
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	to time.Duration
}

func newConn(c net.Conn, timeout time.Duration) *conn {
	return &conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), to: timeout}
}

func (c *conn) send(m *Message) error {
	if c.to > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.to)); err != nil {
			return err
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *conn) recv(timeout time.Duration) (*Message, error) {
	if timeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else if err := c.c.SetReadDeadline(time.Time{}); err != nil {
		return nil, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("distrib: malformed message: %w", err)
	}
	return &m, nil
}

func (c *conn) close() { c.c.Close() }
