package distrib

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sat"
)

// maxFrameBytes caps one line-delimited frame so a misbehaving peer
// cannot make the reader buffer an arbitrarily long line.
const maxFrameBytes = 16 << 20 // 16 MiB

// wireTable is the CRC32C (Castagnoli) polynomial used to checksum
// every frame: 8 lowercase hex digits over the JSON payload, prefixed
// to the line as "crc payload\n". TCP's own checksum is too weak to
// catch in-flight corruption on long verification runs, and a corrupt
// frame must be rejected before json.Unmarshal can misread it.
var wireTable = crc32.MakeTable(crc32.Castagnoli)

// Message is the JSON wire format exchanged between coordinator and
// workers, one message per line.
type Message struct {
	// Type is "hello", "welcome", "job", "heartbeat", "result", "cert",
	// "cancel", "replicate", "replicate-ack", or "stop".
	Type string `json:"type"`

	// Hello fields. Role distinguishes a work-seeking peer ("" — a
	// worker) from a standby coordinator ("standby") that wants the
	// journal replication stream instead of jobs.
	WorkerName string `json:"worker_name,omitempty"`
	Cores      int    `json:"cores,omitempty"`
	Role       string `json:"role,omitempty"`

	// Welcome fields: the coordinator answers every hello with its
	// current role ("primary" or "standby", reusing Role) and lease
	// Epoch. Epoch is the split-brain fence — it also rides on every
	// job, and a peer that has seen a higher epoch refuses the lower
	// one: a deposed primary that revives cannot hand out stale work.
	Epoch int64 `json:"epoch,omitempty"`

	// Job fields: the program source plus the analysis parameters and
	// the partition range (the paper's --from/--to interface).
	// HeartbeatMillis tells the worker how often to send a heartbeat
	// while the job runs (0: no heartbeats expected).
	JobID           int    `json:"job_id,omitempty"`
	Source          string `json:"source,omitempty"`
	Unwind          int    `json:"unwind,omitempty"`
	Contexts        int    `json:"contexts,omitempty"`
	Width           int    `json:"width,omitempty"`
	Partitions      int    `json:"partitions,omitempty"`
	From            int    `json:"from"`
	To              int    `json:"to"`
	HeartbeatMillis int64  `json:"hb_millis,omitempty"`
	// CubePath refines a single-partition job (From == To) with extra
	// unit assumptions over the canonical partition.SplitLits sequence —
	// the adaptive cube-splitting work unit. Empty for range jobs.
	// A "cancel" message carries JobID only: the coordinator has
	// superseded that in-flight job (split or hedge race lost) and the
	// worker should interrupt its solvers and answer with a cancelled
	// result.
	CubePath string `json:"cube_path,omitempty"`
	// ChunkTimeoutMillis / ChunkConflicts propagate the coordinator's
	// per-chunk budgets to the worker's solver instances, so a poison
	// chunk degrades to a budgeted Unknown instead of eating JobTimeout.
	ChunkTimeoutMillis int64 `json:"chunk_timeout_millis,omitempty"`
	ChunkConflicts     int64 `json:"chunk_conflicts,omitempty"`
	// MemBudgetMB propagates the coordinator's per-partition solver
	// memory budget: a remote solver over it sheds learnt clauses first
	// and gives up with cause "memory" if shedding is not enough.
	MemBudgetMB int64 `json:"mem_budget_mb,omitempty"`
	// Certify is the evidence level the coordinator demands with this
	// job's result: "full" (UNSAFE model + per-partition UNSAT proofs),
	// "model" (UNSAFE model only), or "off"/"" (none).
	Certify string `json:"certify,omitempty"`
	// TraceID / ParentSpan propagate the coordinator's trace across the
	// process boundary: the worker joins TraceID and parents its job
	// span under ParentSpan (an obs span ref, "proc/id"), so per-process
	// span files merge into one tree. Empty when the coordinator is
	// untraced.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`

	// Result fields. SolveMillis is the solver's share of Millis, and
	// Stats aggregates the job's per-partition search statistics, so
	// remote search effort reaches the coordinator instead of being
	// dropped at the worker.
	Verdict     string     `json:"verdict,omitempty"`
	Winner      int        `json:"winner,omitempty"`
	Millis      int64      `json:"millis,omitempty"`
	SolveMillis int64      `json:"solve_millis,omitempty"`
	Stats       *sat.Stats `json:"stats,omitempty"`
	Error       string     `json:"error,omitempty"`
	// Cause names the exhausted budget behind an UNKNOWN verdict
	// ("timeout", "conflict-budget", or "memory"); empty for a retryable
	// Unknown such as worker-side cancellation. A budgeted Unknown is
	// terminal: re-running the same chunk under the same budgets gives
	// up again.
	Cause string `json:"cause,omitempty"`

	// CertSize, on a definite result solved under certification,
	// declares the compressed certificate's total byte size; the
	// certificate follows the result as CertSize bytes of gzip'd JSON
	// split across "cert" frames. 0 means no certificate follows.
	CertSize int64 `json:"cert_size,omitempty"`

	// Cert-frame fields: Seq numbers the frames of one certificate from
	// 0 upward and Data carries this frame's slice of the compressed
	// payload (base64 under encoding/json). Replication reuses both: a
	// "replicate" message carries one framed journal record in Data with
	// Seq counting records from 0 (manifest first), and a
	// "replicate-ack" reports the standby's durably applied record count
	// in Seq — the primary's replication-lag gauge is commits minus the
	// last acked Seq.
	Seq  int    `json:"seq,omitempty"`
	Data []byte `json:"data,omitempty"`

	// Heartbeat live-progress fields: cumulative conflicts and
	// propagations across the job's solver instances so far, snapshotted
	// by the solver progress hook while the job is still running.
	// Progress is the job-level search-progress estimate in [0,1] — the
	// minimum over the job's partitions, i.e. how far along its
	// furthest-behind partition is. Parts breaks the same signal out per
	// partition; both ride on heartbeats (live) and on the result
	// (final), feeding the parbmc_partition_progress gauges and the run
	// report's imbalance table.
	Conflicts    int64          `json:"conflicts,omitempty"`
	Propagations int64          `json:"propagations,omitempty"`
	Progress     float64        `json:"progress,omitempty"`
	Parts        []PartProgress `json:"parts,omitempty"`

	// Introspection heartbeat fields: job-level solver rates (per
	// second, over the last heartbeat interval) and the hottest
	// partition's live hardness score — the worker-side sampler output
	// that feeds the coordinator's parbmc_worker_*_rate gauges.
	ConflictRate    float64 `json:"conflict_rate,omitempty"`
	DecisionRate    float64 `json:"decision_rate,omitempty"`
	PropagationRate float64 `json:"propagation_rate,omitempty"`
	Hardness        float64 `json:"hardness,omitempty"`

	// Memory heartbeat fields: the worker's live-heap estimate and its
	// effective memory limit (GOMEMLIMIT or -mem-limit), in bytes. The
	// coordinator's backpressure gate keys on the MemBytes/MemLimit
	// ratio; MemLimit 0 means the worker runs unbounded.
	MemBytes int64 `json:"mem_bytes,omitempty"`
	MemLimit int64 `json:"mem_limit,omitempty"`

	// Spans, on a result, carries the worker's span events for this job
	// (collected via an obs.CollectorSink), so the coordinator's run
	// report embeds the full cross-process trace without shipping files.
	Spans []obs.Event `json:"spans,omitempty"`
}

// PartProgress is one partition's live search state, compactly keyed for
// heartbeat traffic.
type PartProgress struct {
	Partition    int   `json:"p"`
	Conflicts    int64 `json:"c,omitempty"`
	Propagations int64 `json:"pr,omitempty"`
	// Progress is the partition's search-progress estimate in [0,1].
	Progress float64 `json:"e,omitempty"`
	// Verdict is the partition's final sat status ("SAT", "UNSAT",
	// "UNKNOWN"); empty on heartbeats while the partition still runs.
	Verdict string `json:"v,omitempty"`
	// Millis is the partition's solve time (result only).
	Millis int64 `json:"ms,omitempty"`
	// Hardness is the partition's hardness score (sat.Hardness): on
	// heartbeats the live score over the last sampling interval, on
	// results the whole-run score. Feeds parbmc_partition_hardness and
	// the run report's hardness section — the signal surface the
	// adaptive-partitioning coordinator will consume.
	Hardness float64 `json:"h,omitempty"`
	// ConflictRate is the partition's conflicts/second over the same
	// interval.
	ConflictRate float64 `json:"cr,omitempty"`
}

// conn wraps a TCP connection with line-delimited JSON framing. Sends
// are serialised by a mutex so a worker's heartbeat goroutine can share
// the connection with its job loop.
type conn struct {
	c        net.Conn
	r        *bufio.Reader
	wmu      sync.Mutex
	w        *bufio.Writer
	to       time.Duration
	maxFrame int
	// muted silently swallows sends while leaving the TCP connection
	// and the read side fully alive — the half-open failure mode the
	// FaultHalfOpen harness injects (a peer that looks connected but
	// whose traffic goes nowhere).
	muted atomic.Bool
}

// mute toggles silent send-swallowing (fault injection only).
func (c *conn) mute(on bool) { c.muted.Store(on) }

func newConn(c net.Conn, timeout time.Duration) *conn {
	return &conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), to: timeout, maxFrame: maxFrameBytes}
}

func (c *conn) send(m *Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line := make([]byte, 0, len(data)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(data, wireTable))
	line = append(line, data...)
	line = append(line, '\n')
	return c.sendRaw(line)
}

// sendRaw writes a pre-framed line verbatim. It exists so the fault
// harness can put a deliberately corrupt frame on the wire.
func (c *conn) sendRaw(line []byte) error {
	if c.muted.Load() {
		return nil // half-open: the bytes vanish, the socket stays up
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.to > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.to)); err != nil {
			return err
		}
	}
	if _, err := c.w.Write(line); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *conn) recv(timeout time.Duration) (*Message, error) {
	if timeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else if err := c.c.SetReadDeadline(time.Time{}); err != nil {
		return nil, err
	}
	var line []byte
	for {
		frag, err := c.r.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > c.maxFrame {
			return nil, fmt.Errorf("distrib: frame exceeds %d bytes", c.maxFrame)
		}
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
	payload, err := verifyFrame(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("distrib: malformed message: %w", err)
	}
	return &m, nil
}

// verifyFrame strips and checks the "crc " prefix, rejecting the frame
// before any payload byte reaches the JSON decoder.
func verifyFrame(line []byte) ([]byte, error) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, fmt.Errorf("distrib: frame missing checksum")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("distrib: frame missing checksum")
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, wireTable); got != uint32(want) {
		return nil, fmt.Errorf("distrib: frame checksum mismatch (want %08x, got %08x)", want, got)
	}
	return payload, nil
}

func (c *conn) close() { c.c.Close() }
