package distrib

import (
	"sync"
	"time"

	"repro/internal/partition"
)

// The straggler-resilient scheduler turns the coordinator's fixed chunk
// list into a dynamic cube tree. Work units are partition.Cubes; an idle
// worker that finds the queue empty may split a hard in-flight cube on
// the next unfixed scheduler bit (taking one child itself — work
// stealing by construction) or hedge-dispatch a duplicate of a
// long-running cube. Supersession is the soundness fence: the moment a
// cube is marked for splitting (or a hedge twin's result is accepted),
// every other in-flight assignment of that cube is superseded — its
// result, whenever it arrives, is discarded without touching the
// journal, the run state, or the attempt budget.

// asgnState is the lifecycle of one dispatched assignment.
type asgnState int

const (
	// asgnRunning: dispatched, result pending.
	asgnRunning asgnState = iota
	// asgnClaimed: its result was accepted as the cube's verdict.
	asgnClaimed
	// asgnSuperseded: the cube was split or a twin won the hedge race;
	// any result from this assignment is stale and must be discarded.
	asgnSuperseded
)

// assignment is one job dispatched to one worker: a cube, the
// connection it went out on (for mid-flight cancel), and its race state.
type assignment struct {
	jobID   int
	cube    partition.Cube
	worker  string
	wc      *conn
	started time.Time
	state   asgnState
	// hedge marks a speculative duplicate of an already-running cube.
	hedge bool
}

// scheduler is the cube-tree state machine. All fields are guarded by
// mu; cancel messages are sent outside the lock.
type scheduler struct {
	mu     sync.Mutex
	notify chan struct{} // cap-1 wakeup for idle serve loops

	queue    []partition.Cube
	inflight map[int]*assignment // jobID -> running/racing assignment

	// decided marks cubes whose verdict was accepted; splitting/split
	// mark cubes superseded by their children (splitting is the
	// pre-commit window between victim selection and the SPLIT record
	// landing — claims already lose during it, so a stale parent result
	// can never be journaled after its sub-cubes exist).
	decided   map[partition.Cube]bool
	split     map[partition.Cube]bool
	splitting map[partition.Cube]bool

	// hardness is the latest heartbeat hardness per in-flight cube (the
	// hottest partition's score), the straggler steering signal.
	hardness map[partition.Cube]float64

	// Knobs (copied from CoordinatorOptions at construction).
	splitGrace    time.Duration
	splitHardness float64
	splitDepth    int // max extra path bits; 0 disables splitting
	splitBits     int // path bits the encoding actually has
	hedge         bool

	nextJobID int

	// Counters surfaced on CoordinatorResult and the metrics registry.
	splits, hedges, steals, superseded int
	maxDepth                           int
}

func newScheduler(opts CoordinatorOptions, splitBits int) *scheduler {
	return &scheduler{
		notify:        make(chan struct{}, 1),
		inflight:      make(map[int]*assignment),
		decided:       make(map[partition.Cube]bool),
		split:         make(map[partition.Cube]bool),
		splitting:     make(map[partition.Cube]bool),
		hardness:      make(map[partition.Cube]float64),
		splitGrace:    opts.SplitGrace,
		splitHardness: opts.SplitHardness,
		splitDepth:    opts.SplitDepth,
		splitBits:     splitBits,
		hedge:         opts.Hedge,
	}
}

// wake nudges one idle serve loop without blocking.
func (s *scheduler) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// push re-queues a cube (initial fill, retry, certificate rejection).
func (s *scheduler) push(c partition.Cube) {
	s.mu.Lock()
	s.queue = append(s.queue, c)
	s.mu.Unlock()
	s.wake()
}

// tryAcquire makes one non-blocking scheduling decision for an idle
// worker: a queued cube if any (dispatch it), else a split victim if
// splitting is enabled and a straggler qualifies (the caller performs
// the split), else a hedge duplicate of the longest-running cube. Both
// returns nil means there is nothing to do right now.
func (s *scheduler) tryAcquire(key string, wc *conn) (a *assignment, victim *assignment) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) > 0 {
		cube := s.queue[0]
		s.queue = s.queue[1:]
		if len(s.queue) > 0 {
			s.wake() // more work: don't strand the other idle loops
		}
		return s.register(cube, key, wc, false), nil
	}
	if s.splitDepth > 0 {
		if v := s.splitVictimLocked(now); v != nil {
			// Reserve the victim: from this point its result (and any
			// hedge twin's) can no longer win. The caller commits the
			// SPLIT record and calls completeSplit.
			s.splitting[v.cube] = true
			return nil, v
		}
	}
	if s.hedge {
		if h := s.hedgeCandidateLocked(now, key); h != nil {
			s.hedges++
			return s.register(h.cube, key, wc, true), nil
		}
	}
	return nil, nil
}

// register creates and indexes a running assignment; callers hold mu.
func (s *scheduler) register(cube partition.Cube, key string, wc *conn, hedge bool) *assignment {
	s.nextJobID++
	a := &assignment{
		jobID:   s.nextJobID,
		cube:    cube,
		worker:  key,
		wc:      wc,
		started: time.Now(),
		hedge:   hedge,
	}
	s.inflight[a.jobID] = a
	if d := cube.Depth(); d > s.maxDepth {
		s.maxDepth = d
	}
	return a
}

// splitVictimLocked picks the hardest in-flight cube past the grace
// period that can still be refined; callers hold mu.
func (s *scheduler) splitVictimLocked(now time.Time) *assignment {
	var best *assignment
	var bestHardness float64
	for _, a := range s.inflight {
		if a.state != asgnRunning || s.cubeSupersededLocked(a.cube) {
			continue
		}
		if now.Sub(a.started) < s.splitGrace {
			continue
		}
		h := s.hardness[a.cube]
		if h < s.splitHardness {
			continue
		}
		if !s.canSplitLocked(a.cube) {
			continue
		}
		if best == nil || h > bestHardness ||
			(h == bestHardness && a.started.Before(best.started)) {
			best, bestHardness = a, h
		}
	}
	return best
}

// canSplitLocked: a multi-partition range always halves; a single
// partition needs an unfixed split bit under both the depth cap and the
// encoding's supply.
func (s *scheduler) canSplitLocked(c partition.Cube) bool {
	if c.Size() > 1 {
		return true
	}
	return c.Depth() < s.splitDepth && c.Depth() < s.splitBits
}

func (s *scheduler) cubeSupersededLocked(c partition.Cube) bool {
	return s.decided[c] || s.split[c] || s.splitting[c]
}

// hedgeCandidateLocked picks the longest-running un-hedged cube past the
// grace period whose assignment runs on a different worker.
func (s *scheduler) hedgeCandidateLocked(now time.Time, key string) *assignment {
	running := make(map[partition.Cube]int)
	for _, a := range s.inflight {
		if a.state == asgnRunning {
			running[a.cube]++
		}
	}
	var best *assignment
	for _, a := range s.inflight {
		if a.state != asgnRunning || s.cubeSupersededLocked(a.cube) {
			continue
		}
		if running[a.cube] > 1 || a.worker == key {
			continue
		}
		if now.Sub(a.started) < s.splitGrace {
			continue
		}
		if best == nil || a.started.Before(best.started) {
			best = a
		}
	}
	return best
}

// completeSplit finalises a split whose SPLIT record is durably
// committed: the victim's cube is superseded, every assignment still
// racing on it is cancelled, the two children enter the tree, and one
// child is handed straight to the idle caller (the steal). Returns the
// caller's assignment and the second child cube left on the queue.
func (s *scheduler) completeSplit(victim *assignment, key string, wc *conn) (a *assignment, stolen bool) {
	left, right := victim.cube.Split()
	var cancels []*assignment
	s.mu.Lock()
	delete(s.splitting, victim.cube)
	s.split[victim.cube] = true
	for _, t := range s.inflight {
		if t.cube == victim.cube && t.state == asgnRunning {
			t.state = asgnSuperseded
			cancels = append(cancels, t)
		}
	}
	s.splits++
	stolen = victim.worker != key
	if stolen {
		s.steals++
	}
	s.queue = append(s.queue, right)
	a = s.register(left, key, wc, false)
	s.mu.Unlock()
	s.wake()
	for _, t := range cancels {
		_ = t.wc.send(&Message{Type: "cancel", JobID: t.jobID})
	}
	return a, stolen
}

// abortSplit rolls back a split reservation whose SPLIT record could not
// be committed (the run is ending): the victim stays superseded — its
// claim window already closed — but no children are created.
func (s *scheduler) abortSplit(victim *assignment) {
	s.mu.Lock()
	delete(s.splitting, victim.cube)
	s.split[victim.cube] = true
	s.mu.Unlock()
}

// hardnessOf reads a cube's latest live hardness.
func (s *scheduler) hardnessOf(c partition.Cube) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hardness[c]
}

// note folds a heartbeat's live hardness into the assignment's cube.
func (s *scheduler) note(a *assignment, hardness float64) {
	s.mu.Lock()
	if a.state == asgnRunning {
		s.hardness[a.cube] = hardness
	}
	s.mu.Unlock()
}

// claim decides the race for a definite (or terminally budgeted) result:
// it wins iff the assignment still runs and its cube was not superseded.
// On a win the cube is decided and every twin still racing is cancelled;
// on a loss the result must be discarded (not journaled, not charged).
func (s *scheduler) claim(a *assignment) bool {
	var cancels []*assignment
	s.mu.Lock()
	delete(s.inflight, a.jobID)
	delete(s.hardness, a.cube)
	if a.state != asgnRunning || s.cubeSupersededLocked(a.cube) {
		a.state = asgnSuperseded
		s.superseded++
		s.mu.Unlock()
		return false
	}
	a.state = asgnClaimed
	s.decided[a.cube] = true
	for _, t := range s.inflight {
		if t.cube == a.cube && t.state == asgnRunning {
			t.state = asgnSuperseded
			cancels = append(cancels, t)
		}
	}
	s.mu.Unlock()
	for _, t := range cancels {
		_ = t.wc.send(&Message{Type: "cancel", JobID: t.jobID})
	}
	return true
}

// release retires an assignment that did not produce an accepted verdict
// (transport failure, retryable Unknown, rejected certificate). It
// reports whether the cube still needs the caller's attention — false
// when the cube was superseded (children or a twin carry it) or another
// assignment still races on it.
func (s *scheduler) release(a *assignment) (requeue bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, a.jobID)
	if a.state != asgnRunning || s.cubeSupersededLocked(a.cube) {
		if a.state == asgnRunning {
			a.state = asgnSuperseded
		}
		s.superseded++
		return false
	}
	a.state = asgnSuperseded // retired; a twin may still win
	for _, t := range s.inflight {
		if t.cube == a.cube && t.state == asgnRunning {
			return false // the hedge twin is still racing: cube covered
		}
	}
	delete(s.hardness, a.cube)
	return true
}

// stats snapshots the scheduler counters.
func (s *scheduler) stats() (splits, hedges, steals, superseded, maxDepth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.splits, s.hedges, s.steals, s.superseded, s.maxDepth
}
