package distrib

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/sat"
)

// coordMetrics bundles the coordinator's instruments. Built from
// CoordinatorOptions.Metrics; with a nil registry every instrument is
// nil and every update is a no-op (obs instruments are nil-safe), so
// the coordinator code updates metrics unconditionally.
type coordMetrics struct {
	reg *obs.Registry

	chunksTotal     *obs.Gauge
	chunksRemaining *obs.Gauge
	workersActive   *obs.Gauge
	jobsTotal       *obs.Counter
	reassigned      *obs.Counter
	quarantined     *obs.Counter
	heartbeats      *obs.Counter
	chunksResumed   *obs.Counter
	budgetExhausted *obs.Counter
	memoryAborted   *obs.Counter
	dispatchPaused  *obs.Counter
	journalCommits  *obs.Counter
	journalSealed   *obs.Gauge
	certVerified    *obs.Counter
	certRejected    *obs.Counter
	certifySeconds  *obs.Histogram

	cubesSplit        *obs.Counter
	chunksHedged      *obs.Counter
	cubeSteals        *obs.Counter
	supersededResults *obs.Counter
	cubeDepth         *obs.Gauge

	remoteDecisions     *obs.Counter
	remoteConflicts     *obs.Counter
	remotePropagations  *obs.Counter
	remoteRestarts      *obs.Counter
	remoteLearnt        *obs.Counter
	remoteLearntDeleted *obs.Counter
	solveSeconds        *obs.Histogram
	// certifySecondsAlias / solveSecondsAlias keep the pre-observatory
	// metric names (parbmc_certify_seconds, parbmc_job_solve_seconds)
	// alive for one release; the canonical names carry the
	// parbmc_coordinator_ component prefix like every other coordinator
	// metric. See README "Metrics naming".
	certifySecondsAlias *obs.Histogram
	solveSecondsAlias   *obs.Histogram
	partSolveSeconds    *obs.Histogram
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	return &coordMetrics{
		reg: reg,
		chunksTotal: reg.Gauge("parbmc_coordinator_chunks_total",
			"Total work chunks in this run."),
		chunksRemaining: reg.Gauge("parbmc_coordinator_chunks_remaining",
			"Chunks neither refuted nor quarantined yet."),
		workersActive: reg.Gauge("parbmc_coordinator_workers_active",
			"Workers currently connected past hello."),
		jobsTotal: reg.Counter("parbmc_coordinator_jobs_total",
			"Work units completed (including reassignments)."),
		reassigned: reg.Counter("parbmc_coordinator_reassigned_total",
			"Chunks handed to another worker after a failure."),
		quarantined: reg.Counter("parbmc_coordinator_quarantined_total",
			"Chunks that exhausted their attempt budget."),
		heartbeats: reg.Counter("parbmc_coordinator_heartbeats_total",
			"Heartbeat messages received from workers."),
		chunksResumed: reg.Counter("parbmc_coordinator_chunks_resumed_total",
			"Chunk verdicts replayed from the journal instead of re-solved."),
		budgetExhausted: reg.Counter("parbmc_coordinator_budget_exhausted_total",
			"Chunks that ended Unknown with a named budget (terminal)."),
		memoryAborted: reg.Counter("parbmc_chunks_memory_aborted_total",
			"Chunk results with cause \"memory\": solver over its memory budget, or worker OOM-watchdog abort."),
		dispatchPaused: reg.Counter("parbmc_dispatch_paused_total",
			"Backpressure episodes: job dispatch paused because fleet memory pressure crossed the threshold."),
		journalCommits: reg.Counter("parbmc_journal_commits_total",
			"Chunk verdicts durably committed to the run journal."),
		journalSealed: reg.Gauge("parbmc_journal_sealed",
			"1 once the run journal sealed itself after a storage failure (run degraded to journal-less)."),
		certVerified: reg.Counter("parbmc_coordinator_certificates_verified_total",
			"Remote verdict certificates that checked out against the coordinator's own encoding."),
		certRejected: reg.Counter("parbmc_coordinator_certificates_rejected_total",
			"Remote verdict certificates rejected (missing, malformed, oversized, or failed verification)."),
		certifySeconds: reg.Histogram("parbmc_coordinator_certify_seconds",
			"Per-result certificate verification wall time in seconds (fixed duration buckets).", nil),
		cubesSplit: reg.Counter("parbmc_cubes_split_total",
			"In-flight cubes split into two sub-cubes after stalling past the grace period (adaptive partitioning)."),
		chunksHedged: reg.Counter("parbmc_chunks_hedged_total",
			"Speculative duplicate dispatches of long-running cubes to idle workers."),
		cubeSteals: reg.Counter("parbmc_steals_total",
			"Splits where the idle worker that forced the split took a child cube from the straggler."),
		supersededResults: reg.Counter("parbmc_results_superseded_total",
			"Results discarded because their cube was split or a hedge twin won while they were in flight."),
		cubeDepth: reg.Gauge("parbmc_cube_tree_depth",
			"Deepest assumption-cube path dispatched so far (0 until the first single-partition split)."),
		certifySecondsAlias: reg.Histogram("parbmc_certify_seconds",
			"DEPRECATED alias of parbmc_coordinator_certify_seconds; removed after one release.", nil),
		remoteDecisions: reg.Counter("parbmc_remote_decisions_total",
			"Solver decisions aggregated from remote job results."),
		remoteConflicts: reg.Counter("parbmc_remote_conflicts_total",
			"Solver conflicts aggregated from remote job results."),
		remotePropagations: reg.Counter("parbmc_remote_propagations_total",
			"Solver propagations aggregated from remote job results."),
		remoteRestarts: reg.Counter("parbmc_remote_restarts_total",
			"Solver restarts aggregated from remote job results."),
		remoteLearnt: reg.Counter("parbmc_remote_learnt_total",
			"Learnt clauses aggregated from remote job results."),
		remoteLearntDeleted: reg.Counter("parbmc_remote_learnt_deleted_total",
			"Learnt clauses discarded by reduceDB, aggregated from remote job results."),
		solveSeconds: reg.Histogram("parbmc_coordinator_job_solve_seconds",
			"Per-job remote solver wall time in seconds (fixed duration buckets).", nil),
		solveSecondsAlias: reg.Histogram("parbmc_job_solve_seconds",
			"DEPRECATED alias of parbmc_coordinator_job_solve_seconds; removed after one release.", nil),
		partSolveSeconds: reg.Histogram("parbmc_partition_solve_seconds",
			"Per-partition solve wall time in seconds (fixed duration buckets), from final results.", nil),
	}
}

// jobResult charges one completed job's remote statistics, including
// the solver-introspection aggregates (LBD distribution, learnt-DB
// churn) the performance observatory exports.
func (m *coordMetrics) jobResult(worker string, st *sat.Stats, solveMillis int64) {
	m.jobsTotal.Inc()
	m.reg.Counter("parbmc_worker_jobs_total",
		"Jobs completed per worker.", "worker", worker).Inc()
	if st != nil {
		m.remoteDecisions.Add(st.Decisions)
		m.remoteConflicts.Add(st.Conflicts)
		m.remotePropagations.Add(st.Propagations)
		m.remoteRestarts.Add(st.Restarts)
		m.remoteLearnt.Add(st.Learnt)
		m.remoteLearntDeleted.Add(st.LearntDeleted)
		m.lbdHist(st.LBDHist)
	}
	secs := float64(solveMillis) / 1000
	m.solveSeconds.Observe(secs)
	m.solveSecondsAlias.Observe(secs)
}

// lbdHist folds a job's learnt-clause LBD distribution into the
// cumulative parbmc_lbd_bucket counters (one per fixed sat.LBDBounds
// bucket, labelled by the bucket's inclusive upper bound).
func (m *coordMetrics) lbdHist(h sat.LBDHistogram) {
	for i, count := range h {
		if count == 0 {
			continue
		}
		bound := "+Inf"
		if i < len(sat.LBDBounds) {
			bound = strconv.Itoa(sat.LBDBounds[i])
		}
		m.reg.Counter("parbmc_lbd_bucket",
			"Learnt clauses per LBD bucket, aggregated from remote job results.",
			"le", bound).Add(count)
	}
}

// heartbeat records one live-progress heartbeat from a worker,
// including the sampled job-level solver rates.
func (m *coordMetrics) heartbeat(worker string, hb *Message) {
	m.heartbeats.Inc()
	m.reg.Gauge("parbmc_worker_live_conflicts",
		"Live conflict count of the worker's current job.", "worker", worker).Set(hb.Conflicts)
	m.reg.Gauge("parbmc_worker_live_propagations",
		"Live propagation count of the worker's current job.", "worker", worker).Set(hb.Propagations)
	m.reg.FloatGauge("parbmc_worker_live_progress",
		"Live search-progress estimate [0,1] of the worker's current job (minimum across its partitions).",
		"worker", worker).Set(hb.Progress)
	m.reg.FloatGauge("parbmc_worker_conflict_rate",
		"Live conflicts/second of the worker's current job over the last heartbeat interval.",
		"worker", worker).Set(hb.ConflictRate)
	m.reg.FloatGauge("parbmc_worker_decision_rate",
		"Live decisions/second of the worker's current job over the last heartbeat interval.",
		"worker", worker).Set(hb.DecisionRate)
	m.reg.FloatGauge("parbmc_worker_propagation_rate",
		"Live propagations/second of the worker's current job over the last heartbeat interval.",
		"worker", worker).Set(hb.PropagationRate)
	m.reg.FloatGauge("parbmc_worker_hardness",
		"Hardness score of the worker's hottest partition (conflict rate × (1 − progress slope)).",
		"worker", worker).Set(hb.Hardness)
	m.reg.Gauge("parbmc_worker_mem_bytes",
		"Live-heap estimate of the worker process in bytes, from its latest heartbeat.",
		"worker", worker).Set(hb.MemBytes)
	if hb.MemLimit > 0 {
		m.reg.Gauge("parbmc_worker_mem_limit_bytes",
			"Effective memory limit of the worker process in bytes (GOMEMLIMIT or -mem-limit).",
			"worker", worker).Set(hb.MemLimit)
	}
}

// partProgress pins one partition's live search state as gauges — the
// per-partition imbalance signal adaptive splitting will key on. Set
// from heartbeats while the partition runs and again from the final
// result, so even a partition solved between heartbeats gets a gauge.
func (m *coordMetrics) partProgress(pp PartProgress) {
	part := strconv.Itoa(pp.Partition)
	m.reg.FloatGauge("parbmc_partition_progress",
		"Latest search-progress estimate [0,1] per partition.",
		"partition", part).Set(pp.Progress)
	m.reg.Gauge("parbmc_partition_conflicts",
		"Latest conflict count per partition.", "partition", part).Set(pp.Conflicts)
	m.reg.FloatGauge("parbmc_partition_hardness",
		"Latest hardness score per partition (conflict rate × (1 − progress slope)); the work-stealing signal.",
		"partition", part).Set(pp.Hardness)
	m.reg.FloatGauge("parbmc_partition_conflict_rate",
		"Latest conflicts/second per partition.", "partition", part).Set(pp.ConflictRate)
}

// partResult records a partition's final outcome in the fixed-bucket
// per-partition solve-time histogram.
func (m *coordMetrics) partResult(pp PartProgress) {
	m.partProgress(pp)
	if pp.Millis > 0 || pp.Verdict != "" {
		m.partSolveSeconds.Observe(float64(pp.Millis) / 1000)
	}
}

// workerCertRejected charges one rejected certificate to a worker.
func (m *coordMetrics) workerCertRejected(worker string) {
	m.reg.Counter("parbmc_worker_certificates_rejected_total",
		"Certificates rejected per worker (a nonzero count marks the worker untrusted).", "worker", worker).Inc()
}

// workerFailed charges one failed attempt to a worker.
func (m *coordMetrics) workerFailed(worker string) {
	m.reg.Counter("parbmc_worker_failures_total",
		"Failed attempts charged per worker.", "worker", worker).Inc()
}

// dropWorker unregisters a departed worker's live gauge series — the
// nine instruments heartbeat() maintains — so an evicted or quarantined
// worker stops being scraped with its last readings forever. Its
// counters (jobs, failures, certificate rejections) stay: they are
// history, not liveness. A reconnecting worker re-creates the gauges on
// its first heartbeat.
func (m *coordMetrics) dropWorker(worker string) {
	for _, name := range []string{
		"parbmc_worker_live_conflicts",
		"parbmc_worker_live_propagations",
		"parbmc_worker_live_progress",
		"parbmc_worker_conflict_rate",
		"parbmc_worker_decision_rate",
		"parbmc_worker_propagation_rate",
		"parbmc_worker_hardness",
		"parbmc_worker_mem_bytes",
		"parbmc_worker_mem_limit_bytes",
	} {
		m.reg.Unregister(name, "worker", worker)
	}
}
