package distrib

import (
	"sort"
	"sync"
	"time"

	"repro/internal/partition"
)

// WorkerHealth tracks one worker across its connections. Workers are
// keyed by the name they report in hello (falling back to the remote
// address when unnamed), so a reconnecting worker accumulates into one
// entry.
type WorkerHealth struct {
	Name        string
	Connections int
	Jobs        int
	Failures    int
	// CertRejections counts results whose certificate the coordinator
	// rejected — evidence the worker lied or corrupted its proof.
	CertRejections int
	// Untrusted marks a worker whose certificate was rejected: its
	// verdicts can no longer be believed, so the coordinator refuses its
	// future connections for the rest of the run.
	Untrusted bool
	LastSeen  time.Time
}

// HealthRegistry is the coordinator's view of every worker that ever
// said hello. It is exported so cmd/coordinator can share one instance
// between Coordinate and its /healthz HTTP endpoint (pass it through
// CoordinatorOptions.Health); Snapshot is safe to call concurrently with
// a live run.
type HealthRegistry struct {
	mu      sync.Mutex
	workers map[string]*WorkerHealth
}

// NewHealthRegistry builds an empty registry.
func NewHealthRegistry() *HealthRegistry {
	return &HealthRegistry{workers: make(map[string]*WorkerHealth)}
}

// connected records a completed hello and returns the registry key for
// the connection's subsequent events.
func (r *HealthRegistry) connected(name, addr string) string {
	key := name
	if key == "" {
		key = addr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[key]
	if w == nil {
		w = &WorkerHealth{Name: key}
		r.workers[key] = w
	}
	w.Connections++
	w.LastSeen = time.Now()
	return key
}

func (r *HealthRegistry) jobDone(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.workers[key]; w != nil {
		w.Jobs++
		w.LastSeen = time.Now()
	}
}

func (r *HealthRegistry) failed(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.workers[key]; w != nil {
		w.Failures++
		w.LastSeen = time.Now()
	}
}

// certRejected records a rejected certificate and marks the worker
// untrusted: one proven lie is enough to stop believing a peer whose
// whole job is to report verdicts.
func (r *HealthRegistry) certRejected(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.workers[key]; w != nil {
		w.CertRejections++
		w.Untrusted = true
		w.LastSeen = time.Now()
	}
}

// isUntrusted reports whether a worker has been quarantined for a
// rejected certificate.
func (r *HealthRegistry) isUntrusted(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[key]
	return w != nil && w.Untrusted
}

// touch refreshes LastSeen (heartbeats).
func (r *HealthRegistry) touch(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.workers[key]; w != nil {
		w.LastSeen = time.Now()
	}
}

// Snapshot returns value copies sorted by name. It may be called
// concurrently with a live run (the /healthz endpoint does).
func (r *HealthRegistry) Snapshot() []WorkerHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerHealth, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ChunkFailure is one entry of the coordinator's structured failure log:
// a chunk that exhausted its attempt budget and was quarantined instead
// of being reassigned forever. A quarantined chunk caps the run's
// verdict at Unknown.
type ChunkFailure struct {
	Chunk    partition.Cube
	Attempts int      // failed attempts (== the budget when quarantined)
	Errors   []string // one reason per failed attempt, oldest first
}

// chunkTracker counts assignments and failures per cube and decides
// quarantine against the attempt budget.
type chunkTracker struct {
	mu     sync.Mutex
	budget int
	stats  map[partition.Cube]*chunkStat
}

type chunkStat struct {
	assigned int
	failed   int
	errors   []string
}

func newChunkTracker(budget int) *chunkTracker {
	return &chunkTracker{budget: budget, stats: make(map[partition.Cube]*chunkStat)}
}

func (t *chunkTracker) get(ch partition.Cube) *chunkStat {
	s := t.stats[ch]
	if s == nil {
		s = &chunkStat{}
		t.stats[ch] = s
	}
	return s
}

func (t *chunkTracker) assigned(ch partition.Cube) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(ch).assigned++
}

// failed records a failed attempt and reports whether the chunk has now
// exhausted its budget and must be quarantined.
func (t *chunkTracker) failed(ch partition.Cube, reason string) (quarantined bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.get(ch)
	s.failed++
	s.errors = append(s.errors, reason)
	return s.failed >= t.budget
}

// attempts returns assignment counts per chunk.
func (t *chunkTracker) attempts() map[partition.Cube]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[partition.Cube]int, len(t.stats))
	for ch, s := range t.stats {
		out[ch] = s.assigned
	}
	return out
}

// failureLog returns the quarantined chunks sorted by partition range.
func (t *chunkTracker) failureLog() []ChunkFailure {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []ChunkFailure
	for ch, s := range t.stats {
		if s.failed >= t.budget {
			out = append(out, ChunkFailure{Chunk: ch, Attempts: s.failed, Errors: s.errors})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Chunk.From != out[j].Chunk.From {
			return out[i].Chunk.From < out[j].Chunk.From
		}
		return out[i].Chunk.Path < out[j].Chunk.Path
	})
	return out
}
