package distrib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// fuzzFrame formats a payload exactly as conn.send does (minus the
// trailing newline, which the reader strips before verifyFrame).
func fuzzFrame(payload []byte) []byte {
	line := fmt.Appendf(nil, "%08x ", crc32.Checksum(payload, wireTable))
	return append(line, payload...)
}

// FuzzVerifyFrame throws arbitrary bytes at the CRC-framed decoder. The
// invariants: no panic, and acceptance implies the checksum genuinely
// matched the returned payload.
func FuzzVerifyFrame(f *testing.F) {
	// Seeds mirror the table in proto_crc_test.go.
	f.Add(fuzzFrame([]byte(`{"type":"hello","worker_name":"w0"}`)))
	f.Add([]byte(`00000000 {"type":"hello"}`))
	f.Add([]byte(`{"type":"hello"}`))
	f.Add([]byte("x"))
	f.Add([]byte(`zzzzzzzz {"type":"hello"}`))
	f.Add([]byte("deadbeef x"))
	f.Add([]byte("00000000 "))
	f.Add(bytes.Repeat([]byte("a"), 4096))

	f.Fuzz(func(t *testing.T, line []byte) {
		payload, err := verifyFrame(line)
		if err != nil {
			return
		}
		if !bytes.Equal(payload, line[9:]) {
			t.Fatalf("accepted payload %q is not the frame body of %q", payload, line)
		}
		// An accepted payload must at least be safe to hand to the
		// message decoder, whether or not it is valid JSON.
		var m Message
		_ = json.Unmarshal(payload, &m)
	})
}

// FuzzDecodeCertificate feeds arbitrary bytes to the certificate
// decoder: it must reject or accept without panicking, and never
// allocate past the decompression cap.
func FuzzDecodeCertificate(f *testing.F) {
	valid, err := encodeCertificate(&Certificate{
		NumVars: 8,
		Model:   packBits([]bool{true, false, true, true, false, true, false, false}),
		Proofs: []PartitionProof{{Partition: 0, Proof: &sat.Proof{
			Lemmas: []cnf.Clause{{cnf.PosLit(1)}, {}},
		}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("not gzip"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cert, err := decodeCertificate(data)
		if err != nil {
			return
		}
		if len(data) > 0 && cert == nil {
			t.Fatal("nil certificate with nil error for non-empty input")
		}
	})
}
