package distrib

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sat"
	"repro/prog"
)

func TestParseCertifyPolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"", "full", false},
		{"full", "full", false},
		{"off", "off", false},
		{"sample=4", "sample=4", false},
		{"sample=1", "full", false},
		{"sample=0", "", true},
		{"sample=x", "", true},
		{"bogus", "", true},
	}
	for _, c := range cases {
		p, err := ParseCertifyPolicy(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseCertifyPolicy(%q): no error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCertifyPolicy(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParseCertifyPolicy(%q) = %q, want %q", c.in, p, c.want)
		}
	}
}

func TestCertifyPolicyJobLevel(t *testing.T) {
	full := CertifyPolicy{}
	for id := 1; id <= 4; id++ {
		if lvl := full.jobLevel(id); lvl != CertifyFull {
			t.Fatalf("full policy job %d: %q", id, lvl)
		}
	}
	sampled := CertifyPolicy{Mode: CertifyFull, SampleEvery: 2}
	want := []string{CertifyFull, CertifyModel, CertifyFull, CertifyModel}
	for id := 1; id <= 4; id++ {
		if lvl := sampled.jobLevel(id); lvl != want[id-1] {
			t.Fatalf("sample=2 job %d: %q, want %q", id, lvl, want[id-1])
		}
	}
	off := CertifyPolicy{Mode: CertifyOff}
	if lvl := off.jobLevel(1); lvl != CertifyOff {
		t.Fatalf("off policy job 1: %q", lvl)
	}
}

func TestPackBitsRoundTrip(t *testing.T) {
	bits := []bool{true, false, true, true, false, false, false, true, true, false}
	packed := packBits(bits)
	got, err := unpackBits(packed, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d: %v", i, got[i])
		}
	}
	if _, err := unpackBits(packed, len(bits)+8); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCertificateEncodeDecode(t *testing.T) {
	cert := &Certificate{
		NumVars: 12,
		Model:   packBits(make([]bool, 12)),
		Proofs: []PartitionProof{
			{Partition: 3, Proof: &sat.Proof{Lemmas: []cnf.Clause{
				{cnf.PosLit(1), cnf.NegLit(2)}, {},
			}}},
		},
	}
	data, err := encodeCertificate(cert)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVars != cert.NumVars || !bytes.Equal(got.Model, cert.Model) {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Proofs) != 1 || got.Proofs[0].Partition != 3 || got.Proofs[0].Proof.NumLemmas() != 2 {
		t.Fatalf("proofs: %+v", got.Proofs)
	}

	if nilData, err := encodeCertificate(nil); err != nil || nilData != nil {
		t.Fatalf("nil certificate: %v, %v", nilData, err)
	}
	if _, err := decodeCertificate([]byte("not gzip at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := decodeCertificate(data[:len(data)/2]); err == nil {
		t.Fatal("truncated certificate accepted")
	}
}

// runWorker runs one worker to completion. Byzantine workers may see
// their connection die in a race with the coordinator's stop, so errors
// are returned rather than fatal.
func runWorker(t *testing.T, addr, name string, plan *FaultPlan, reconnects int) (int, error) {
	t.Helper()
	return Work(context.Background(), addr, WorkerOptions{
		Name: name, Cores: 1, Faults: plan,
		MaxReconnects: reconnects, ReconnectBackoff: 20 * time.Millisecond,
	})
}

func findWorker(res *CoordinatorResult, name string) *WorkerHealth {
	for i := range res.Workers {
		if res.Workers[i].Name == name {
			return &res.Workers[i]
		}
	}
	return nil
}

// TestCertifiedDistributedSafe: the default policy (zero value) is full
// certification, and honest SAFE verdicts come back with checkable
// refutation proofs for every partition.
func TestCertifiedDistributedSafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
	})
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Certified != 2 || res.CertRejected != 0 {
		t.Fatalf("certified %d, rejected %d", res.Certified, res.CertRejected)
	}
}

// TestCertifiedDistributedUnsafe: an honest UNSAFE verdict ships its
// model, which the coordinator re-evaluates and replays before believing
// the counterexample.
func TestCertifiedDistributedUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 4, Partitions: 8, ChunkSize: 2,
	})
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Winner < 0 || res.Winner >= 8 {
		t.Fatalf("winner %d", res.Winner)
	}
	if res.Certified == 0 || res.CertRejected != 0 {
		t.Fatalf("certified %d, rejected %d", res.Certified, res.CertRejected)
	}
	if res.CertifyMillis < 0 {
		t.Fatalf("certify millis %d", res.CertifyMillis)
	}
}

// byzantineScenario runs one lying worker to rejection, then an honest
// worker to completion, and checks the lie did not survive: the final
// verdict is the true one, the liar is quarantined as untrusted, and the
// rejection metric moved.
func byzantineScenario(t *testing.T, opts CoordinatorOptions, plan *FaultPlan, want core.Verdict) *CoordinatorResult {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Metrics = reg
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(opts))

	// The liar runs alone first, so it is guaranteed to be handed a
	// chunk and be caught lying about it.
	if _, err := runWorker(t, addr, "liar", plan, 0); err != nil &&
		!strings.Contains(err.Error(), "use of closed") {
		t.Logf("liar worker ended: %v", err)
	}
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("honest worker: %v", err)
	}
	res := waitResult(t, resCh)

	if res.Verdict != want {
		t.Fatalf("verdict %v, want %v", res.Verdict, want)
	}
	if res.CertRejected == 0 {
		t.Fatal("no certificate rejected")
	}
	liar := findWorker(res, "liar")
	if liar == nil || !liar.Untrusted || liar.CertRejections == 0 {
		t.Fatalf("liar health: %+v", liar)
	}
	honest := findWorker(res, "honest")
	if honest == nil || honest.Untrusted {
		t.Fatalf("honest health: %+v", honest)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if v, ok := metricValue(buf.String(), "parbmc_coordinator_certificates_rejected_total"); !ok || v == 0 {
		t.Fatalf("parbmc_coordinator_certificates_rejected_total = %v, %v", v, ok)
	}
	if v, ok := metricValue(buf.String(), "parbmc_worker_certificates_rejected_total"); !ok || v == 0 {
		t.Fatalf("parbmc_worker_certificates_rejected_total = %v, %v", v, ok)
	}
	return res
}

// A worker flipping SAFE to UNSAFE with a fabricated model must not
// produce a false alarm: the model fails re-evaluation, the worker is
// quarantined, and the honest re-solve restores SAFE.
func TestByzantineFlipVerdictRejected(t *testing.T) {
	byzantineScenario(t,
		CoordinatorOptions{Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2},
		&FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultFlipVerdict}}},
		core.Safe)
}

// A worker claiming UNSAFE with a garbage model on a safe program must
// not flip the global verdict.
func TestByzantineBogusModelRejected(t *testing.T) {
	byzantineScenario(t,
		CoordinatorOptions{Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2},
		&FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultBogusModel}}},
		core.Safe)
}

// A worker suppressing a real counterexample (UNSAFE flipped to SAFE,
// shipping no proofs) is caught by the missing-refutation check; the
// honest re-solve still finds the bug. The liar lies on every job it is
// given, whichever chunk that happens to be.
func TestByzantineSuppressedBugRejected(t *testing.T) {
	byzantineScenario(t,
		CoordinatorOptions{Unwind: 1, Contexts: 4, Partitions: 8, ChunkSize: 2},
		&FaultPlan{Events: []FaultEvent{
			{Job: 0, Kind: FaultFlipVerdict}, {Job: 1, Kind: FaultFlipVerdict},
			{Job: 2, Kind: FaultFlipVerdict}, {Job: 3, Kind: FaultFlipVerdict},
		}},
		core.Unsafe)
}

// A truncated certificate is caught at decode time and treated as a lie,
// not as a transport hiccup.
func TestByzantineTruncatedProofRejected(t *testing.T) {
	byzantineScenario(t,
		CoordinatorOptions{Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2},
		&FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultTruncatedProof}}},
		core.Safe)
}

// An oversized certificate declaration is rejected before a single
// payload byte is read.
func TestByzantineOversizedProofRejected(t *testing.T) {
	byzantineScenario(t,
		CoordinatorOptions{Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2},
		&FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultOversizedProof}}},
		core.Safe)
}

// An untrusted worker's reconnection attempts are refused for the rest
// of the run.
func TestUntrustedWorkerRefused(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
	}))
	plan := &FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultBogusModel}}}
	if _, err := runWorker(t, addr, "liar", plan, 0); err != nil {
		t.Logf("liar worker ended: %v", err)
	}
	// Reconnect as the same (now untrusted) name: the coordinator must
	// stop it immediately without handing it a job.
	n, err := runWorker(t, addr, "liar", nil, 0)
	if err != nil {
		t.Fatalf("refused worker should get a clean stop, got %v", err)
	}
	if n != 0 {
		t.Fatalf("untrusted worker completed %d jobs", n)
	}
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("honest worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

// Sampling certifies the UNSAFE model on every job but demands SAFE
// proofs only on every Nth one; the uncertified SAFE verdicts are
// accepted but marked uncertified.
func TestCertifySampleMode(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		Certify: CertifyPolicy{Mode: CertifyFull, SampleEvery: 2},
	})
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Certified != 2 || res.CertRejected != 0 {
		t.Fatalf("certified %d (want 2 of 4 sampled), rejected %d", res.Certified, res.CertRejected)
	}
}

// With certification off there is no verifier and no certificate
// traffic; the run behaves exactly as before the feature existed.
func TestCertifyOff(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		Certify: CertifyPolicy{Mode: CertifyOff},
	})
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Certified != 0 || res.CertifyMillis != 0 {
		t.Fatalf("certified %d, certify millis %d with certification off", res.Certified, res.CertifyMillis)
	}
}

// A journal written by an uncertified run must not leak unverified
// verdicts into a certified resume: the uncertified records are
// re-queued and re-solved instead of replayed.
func TestResumeRequeuesUncertifiedRecords(t *testing.T) {
	p := prog.MustParse(fibSrc)
	jpath := t.TempDir() + "/run.journal"
	base := CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		JournalPath: jpath,
	}

	run1 := base
	run1.Certify = CertifyPolicy{Mode: CertifyOff}
	addr, resCh := startCoordinator(t, p, run1)
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("run 1 worker: %v", err)
	}
	if res := waitResult(t, resCh); res.Verdict != core.Safe {
		t.Fatalf("run 1 verdict %v", res.Verdict)
	}

	run2 := base // zero-value Certify: full
	run2.Resume = true
	addr, resCh = startCoordinator(t, p, run2)
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("run 2 worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("run 2 verdict %v", res.Verdict)
	}
	if res.Resumed != 0 {
		t.Fatalf("run 2 replayed %d uncertified records", res.Resumed)
	}
	if res.Certified != 2 {
		t.Fatalf("run 2 certified %d", res.Certified)
	}
}

// The counterpart: records committed by a certified run carry the
// certified marker and replay without workers.
func TestResumeReplaysCertifiedRecords(t *testing.T) {
	p := prog.MustParse(fibSrc)
	jpath := t.TempDir() + "/run.journal"
	base := CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
		JournalPath: jpath,
	}

	addr, resCh := startCoordinator(t, p, base)
	if _, err := runWorker(t, addr, "honest", nil, 0); err != nil {
		t.Fatalf("run 1 worker: %v", err)
	}
	if res := waitResult(t, resCh); res.Verdict != core.Safe {
		t.Fatalf("run 1 verdict %v", res.Verdict)
	}

	run2 := base
	run2.Resume = true
	_, resCh = startCoordinator(t, p, run2)
	res := waitResult(t, resCh) // no workers: the journal must decide the run
	if res.Verdict != core.Safe {
		t.Fatalf("run 2 verdict %v", res.Verdict)
	}
	if res.Resumed != 2 {
		t.Fatalf("run 2 resumed %d", res.Resumed)
	}
}

// A panicking solver path becomes a structured worker error: the process
// survives, reconnects, and finishes the run honestly.
func TestWorkerPanicRecovery(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 2,
	}))
	plan := &FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultPanic}}}
	n, err := runWorker(t, addr, "phoenix", plan, 3)
	if err != nil {
		t.Fatalf("worker did not survive its panic: %v", err)
	}
	if n < 2 {
		t.Fatalf("worker completed %d jobs, want the full run after the panic", n)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	w := findWorker(res, "phoenix")
	if w == nil || w.Failures == 0 {
		t.Fatalf("panicking job was not charged as a failure: %+v", w)
	}
	if w.Untrusted {
		t.Fatal("a panic is not a lie: worker must stay trusted")
	}
}

// runJob's recover boundary, exercised directly.
func TestRunJobRecoversPanic(t *testing.T) {
	m := &Message{Type: "job", JobID: 7, Source: fibSrc, Unwind: 1, Contexts: 3,
		Partitions: 4, From: 0, To: 1, Certify: CertifyFull}
	reply, cert := runJob(context.Background(), m, 1, nil, &FaultEvent{Job: 0, Kind: FaultPanic}, nil, "w", nil)
	if reply == nil || reply.JobID != 7 {
		t.Fatalf("reply %+v", reply)
	}
	if reply.Error == "" || !strings.Contains(reply.Error, "panic") {
		t.Fatalf("error %q", reply.Error)
	}
	if cert != nil {
		t.Fatal("panicked job produced a certificate")
	}
}
