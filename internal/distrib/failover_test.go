package distrib

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/prog"
)

// haFastOpts are coordinator knobs for failover tests: small chunks,
// tight heartbeats, and a journal so the standby has something to
// replicate.
func haFastOpts(t *testing.T, dir string) CoordinatorOptions {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		JournalPath: filepath.Join(dir, "journal"),
	})
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// waitLeaseHolder polls until the lease file names the holder.
func waitLeaseHolder(t *testing.T, path, holder string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, exists, err := ReadLease(path)
		if err == nil && exists && st.Holder == holder && !st.Expired(time.Now()) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("lease at %s never held by %s", path, holder)
}

// The tentpole end-to-end scenario: the primary is killed mid-run with
// no farewell, the standby takes over from its live-replicated journal,
// and the worker — one Work call, never restarted — re-homes to the
// standby and finishes the run. The verdict matches a failure-free run
// (this program is Safe in 4/4 chunks) and every decided chunk is in
// the standby's journal, certified.
func TestHAFailoverOnKilledPrimary(t *testing.T) {
	p := prog.MustParse(fibSrc)
	dir := t.TempDir()
	leasePath := filepath.Join(dir, "lease.json")
	lnA, lnB := listen(t), listen(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	optsA := haFastOpts(t, filepath.Join(dir, "a"))
	optsA.Faults = &CoordinatorFaultPlan{KillAfterJobs: 2}
	optsA.Metrics = obs.NewRegistry()
	optsB := haFastOpts(t, filepath.Join(dir, "b"))
	optsB.Metrics = obs.NewRegistry()
	stateB := &HAState{}

	haA := HAOptions{LeasePath: leasePath, Holder: "alpha", Addr: addrA, LeaseTTL: 400 * time.Millisecond}
	haB := HAOptions{LeasePath: leasePath, Holder: "beta", Addr: addrB, LeaseTTL: 400 * time.Millisecond, State: stateB}

	ctx := context.Background()
	errA := make(chan error, 1)
	go func() {
		_, err := RunHA(ctx, lnA, p, optsA, haA)
		errA <- err
	}()
	// B must start as standby, so wait until A holds the lease.
	waitLeaseHolder(t, leasePath, "alpha")
	type outcome struct {
		res *CoordinatorResult
		err error
	}
	resB := make(chan outcome, 1)
	go func() {
		res, err := RunHA(ctx, lnB, p, optsB, haB)
		resB <- outcome{res, err}
	}()

	// One worker, both endpoints, one call: zero restarts by construction.
	jobs, werr := Work(ctx, addrA+","+addrB, WorkerOptions{
		Name: "w0", MaxReconnects: 10,
		ReconnectBackoff: 25 * time.Millisecond,
		ReconnectTimeout: 60 * time.Second,
	})
	if werr != nil {
		t.Fatalf("worker: %v (after %d jobs)", werr, jobs)
	}
	if jobs < 2 {
		t.Fatalf("worker completed %d jobs, want >= 2 (it must have served both primaries)", jobs)
	}

	if err := <-errA; !errors.Is(err, ErrPrimaryKilled) {
		t.Fatalf("primary A returned %v, want ErrPrimaryKilled", err)
	}
	var b outcome
	select {
	case b = <-resB:
	case <-time.After(60 * time.Second):
		t.Fatal("standby never finished the run")
	}
	if b.err != nil {
		t.Fatalf("standby: %v", b.err)
	}
	if b.res.Verdict != core.Safe {
		t.Fatalf("standby verdict %v, want Safe (same as a failure-free run)", b.res.Verdict)
	}
	if b.res.ChunksDecided != 4 {
		t.Fatalf("chunks decided %d, want 4", b.res.ChunksDecided)
	}
	if b.res.Resumed+b.res.Jobs != 4 {
		t.Fatalf("resumed %d + jobs %d != 4: the standby must re-solve exactly what was not replicated",
			b.res.Resumed, b.res.Jobs)
	}

	// The standby really promoted: epoch 2, role primary, one failover.
	role, epoch, _ := stateB.Role()
	if role != RolePrimary || epoch != 2 {
		t.Fatalf("standby state role=%s epoch=%d, want primary at epoch 2", role, epoch)
	}
	if got := optsB.Metrics.Counter("parbmc_coordinator_failovers_total", "").Value(); got != 1 {
		t.Fatalf("failovers counter %d, want 1", got)
	}

	// The promoted journal is complete and certified: 4 records, all
	// chunks, every definite verdict carrying a verified certificate.
	m, recs, err := journal.Read(optsB.JournalPath)
	if err != nil {
		t.Fatalf("read standby journal: %v", err)
	}
	if m.Partitions != 4 {
		t.Fatalf("journal manifest %+v", m)
	}
	if len(recs) != 4 {
		t.Fatalf("standby journal has %d records, want 4", len(recs))
	}
	seen := map[int]bool{}
	for _, rec := range recs {
		if rec.Verdict != core.Safe.String() || !rec.Certified {
			t.Fatalf("journal record %+v, want certified Safe", rec)
		}
		seen[rec.From] = true
	}
	if len(seen) != 4 {
		t.Fatalf("journal covers chunks %v, want all 4", seen)
	}

	// The failover instruments render on a real /metrics endpoint, not
	// just through the in-process registry handles.
	srvB := httptest.NewServer(obs.NewMux(obs.MuxOptions{Registry: optsB.Metrics}))
	defer srvB.Close()
	bodyB := scrape(t, srvB.URL)
	if v, ok := metricValue(bodyB, "parbmc_coordinator_failovers_total"); !ok || v != 1 {
		t.Fatalf("scraped failovers: got %v (present %v), want 1\n%s", v, ok, bodyB)
	}
	if v, ok := metricValue(bodyB, "parbmc_standby_replicated_records"); !ok || v < 1 {
		t.Fatalf("scraped standby replicated records: got %v (present %v), want >= 1", v, ok)
	}
	srvA := httptest.NewServer(obs.NewMux(obs.MuxOptions{Registry: optsA.Metrics}))
	defer srvA.Close()
	if _, ok := metricValue(scrape(t, srvA.URL), "parbmc_replication_lag_records"); !ok {
		t.Fatal("primary never exposed parbmc_replication_lag_records for its standby")
	}
}

// fakeCoordinator accepts one connection, answers hello with the given
// welcome, and then closes.
func fakeCoordinator(t *testing.T, welcome *Message) string {
	t.Helper()
	ln := listen(t)
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				wc := newConn(c, 5*time.Second)
				defer wc.close()
				if m, err := wc.recv(5 * time.Second); err != nil || m.Type != "hello" {
					return
				}
				_ = wc.send(welcome)
			}()
		}
	}()
	return ln.Addr().String()
}

// Split-brain fence: once a worker has served epoch 5, a revived
// coordinator presenting epoch 3 is refused outright — the session
// fails with ErrStaleEpoch rather than accepting stale work.
func TestWorkerRefusesStaleEpoch(t *testing.T) {
	high := fakeCoordinator(t, &Message{Type: "welcome", Role: RolePrimary, Epoch: 5})
	low := fakeCoordinator(t, &Message{Type: "welcome", Role: RolePrimary, Epoch: 3})
	_, err := Work(context.Background(), high+","+low, WorkerOptions{
		Name: "w0", MaxReconnects: 1, ReconnectBackoff: 5 * time.Millisecond,
	})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err %v, want ErrStaleEpoch", err)
	}
}

// A worker that reaches only standbys keeps probing without burning
// MaxReconnects, and ReconnectTimeout is what finally bounds it.
func TestWorkerStandbyOnlyBoundedByReconnectTimeout(t *testing.T) {
	standby := fakeCoordinator(t, &Message{Type: "welcome", Role: RoleStandby, Epoch: 1})
	start := time.Now()
	_, err := Work(context.Background(), standby, WorkerOptions{
		Name: "w0", MaxReconnects: 1,
		ReconnectBackoff: 5 * time.Millisecond,
		ReconnectTimeout: 300 * time.Millisecond,
	})
	if err == nil || !errors.Is(err, errStandby) {
		t.Fatalf("err %v, want the reconnect budget to expire on errStandby", err)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond || elapsed > 10*time.Second {
		t.Fatalf("gave up after %v, want just past the 300ms budget", elapsed)
	}
}

// Half-open connection: the socket stays up but the worker's
// heartbeats and result silently vanish. The heartbeat grace — not the
// 10-minute job timeout — must evict the connection, and the run
// completes after the worker reconnects.
func TestHalfOpenEvictedByHeartbeatGrace(t *testing.T) {
	p := prog.MustParse(fibSrc)
	opts := fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	})
	opts.JobTimeout = 10 * time.Minute // must never be what fires here
	addr, resCh := startCoordinator(t, p, opts)
	start := time.Now()
	jobs, err := Work(context.Background(), addr, WorkerOptions{
		Name: "flaky", MaxReconnects: 5,
		ReconnectBackoff: 20 * time.Millisecond,
		Faults:           &FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultHalfOpen}}},
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Reassigned < 1 {
		t.Fatalf("reassigned %d, want >= 1 (the muted job's chunk)", res.Reassigned)
	}
	if elapsed := time.Since(start); elapsed >= opts.JobTimeout {
		t.Fatalf("run took %v: JobTimeout fired instead of HeartbeatGrace", elapsed)
	}
	var flaky *WorkerHealth
	for i := range res.Workers {
		if res.Workers[i].Name == "flaky" {
			flaky = &res.Workers[i]
		}
	}
	if flaky == nil || flaky.Failures < 1 {
		t.Fatalf("worker health %+v, want a recorded eviction", res.Workers)
	}
	_ = jobs
}

// A corrupt frame in the replication stream must abandon the stream
// without poisoning the local replica: everything applied before the
// corruption stays a valid journal the standby can cold-resume from.
func TestStandbyAbandonsCorruptReplicationStream(t *testing.T) {
	man := journal.Manifest{
		ProgramSHA256: journal.HashProgram("prog"),
		Unwind:        1, Contexts: 3, Partitions: 4,
		From: 0, To: 4, ChunkSize: 1,
	}
	manFrame, err := journal.MarshalManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	recFrame, err := journal.MarshalChunk(journal.ChunkRecord{
		From: 0, To: 0, Verdict: core.Safe.String(), Winner: -1, Certified: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), recFrame...)
	corrupt[len(corrupt)-1] ^= 0xff

	ln := listen(t)
	defer ln.Close()
	served := make(chan struct{})
	go func() {
		defer close(served)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		wc := newConn(c, 5*time.Second)
		defer wc.close()
		if m, err := wc.recv(5 * time.Second); err != nil || m.Type != "hello" || m.Role != RoleStandby {
			return
		}
		_ = wc.send(&Message{Type: "welcome", Role: RolePrimary, Epoch: 1})
		_ = wc.send(&Message{Type: "replicate", Seq: 0, Data: manFrame})
		_ = wc.send(&Message{Type: "replicate", Seq: 1, Data: recFrame})
		_ = wc.send(&Message{Type: "replicate", Seq: 2, Data: corrupt})
		// Keep the conn open: tailPrimary must walk away on its own.
		_, _ = wc.recv(5 * time.Second)
		_, _ = wc.recv(5 * time.Second)
		_, _ = wc.recv(5 * time.Second)
	}()

	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	ha := HAOptions{
		LeasePath: filepath.Join(dir, "lease.json"),
		Holder:    "beta", StandbyPoll: 100 * time.Millisecond,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tailPrimary(context.Background(), ln.Addr().String(), jpath, ha, newHAMetrics(nil))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tailPrimary did not abandon the corrupt stream")
	}

	// The replica on disk is a clean journal prefix: the manifest and
	// the one good record, nothing of the corrupt frame.
	gotMan, recs, err := journal.Read(jpath)
	if err != nil {
		t.Fatalf("replica is not a readable journal: %v", err)
	}
	if gotMan != man {
		t.Fatalf("replica manifest %+v, want %+v", gotMan, man)
	}
	if len(recs) != 1 || recs[0].Verdict != core.Safe.String() {
		t.Fatalf("replica records %+v, want the one good record", recs)
	}
	// And it cold-resumes: Open accepts it and counts the commit.
	j, err := journal.Open(jpath, man)
	if err != nil {
		t.Fatalf("cold resume from replica: %v", err)
	}
	defer j.Close()
	if j.Commits() != 1 {
		t.Fatalf("resumed commits %d, want 1", j.Commits())
	}
}
