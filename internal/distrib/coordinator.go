package distrib

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/sat"
	"repro/prog"
)

// CoordinatorOptions configures a distributed analysis.
type CoordinatorOptions struct {
	// Unwind, Contexts, Width are the analysis bounds.
	Unwind, Contexts, Width int
	// Partitions is the total partition count (power of two).
	Partitions int
	// ChunkSize is the number of partitions per work unit (default:
	// Partitions / 8, at least 1).
	ChunkSize int
	// JobTimeout bounds one worker job; an expired job is a failed
	// attempt (default 10 minutes).
	JobTimeout time.Duration
	// MaxAttempts is the per-chunk failure budget: a chunk whose
	// assignments fail this many times is quarantined — recorded in the
	// failure log and no longer reassigned, capping the verdict at
	// Unknown (default 3).
	MaxAttempts int
	// HeartbeatInterval is the cadence workers are told to report at
	// while running a job, so a stalled worker is detected well before
	// JobTimeout (default 5s; negative disables heartbeats).
	HeartbeatInterval time.Duration
	// HeartbeatGrace is how long the coordinator waits without hearing a
	// heartbeat or result before declaring the worker stalled (default
	// 4 × HeartbeatInterval).
	HeartbeatGrace time.Duration
	// DrainTimeout is how long the coordinator waits for a worker to
	// (re)connect once chunks are pending but no workers remain, before
	// giving up with Unknown; reconnecting workers must come back within
	// this window (default 30s).
	DrainTimeout time.Duration
	// ChunkTimeout bounds each partition's wall-clock solving time on the
	// worker; an expired chunk comes back as a terminal budgeted Unknown
	// instead of burning JobTimeout and an attempt (0 = unbounded).
	ChunkTimeout time.Duration
	// ChunkConflicts bounds each partition's solver conflicts on the
	// worker (0 = unbounded).
	ChunkConflicts int64
	// MemBudgetMB bounds each partition solver's approximate live
	// footprint on the worker, in MiB; an instance that cannot shed
	// learnt clauses back under it gives up with cause "memory", a
	// terminal budgeted Unknown journaled with the budget it gave up
	// under (0 = unbounded). Independent of this, a worker whose own
	// OOM watchdog trips reports cause "memory" too; with no budget
	// configured such an abort is treated as worker-local (that machine
	// ran out, not the chunk being inherently too big) and the chunk is
	// re-queued to the fleet instead of journaled terminal.
	MemBudgetMB int64
	// MemPauseRatio is the fleet memory-pressure backpressure threshold:
	// while any worker's heartbeat-reported live-heap/limit ratio is at
	// or above it, new job dispatch pauses until the pressure subsides
	// or the reading goes stale (HeartbeatGrace), so an overloaded fleet
	// drains instead of being handed more work. 0 defaults to 0.95;
	// negative disables the gate.
	MemPauseRatio float64
	// SplitDepth enables adaptive cube splitting: an idle worker that
	// finds the queue empty may split the hardest in-flight cube —
	// halving a multi-partition range, or extending a single partition's
	// assumption cube by one scheduler bit — re-dispatching the two
	// sub-cubes (taking one itself: work stealing by construction).
	// SplitDepth caps how many extra path bits a single partition may
	// accumulate; 0 disables splitting entirely.
	SplitDepth int
	// SplitGrace is how long a cube must have been in flight before it
	// qualifies as a split victim or a hedge candidate (default 15s when
	// SplitDepth > 0 or Hedge is set).
	SplitGrace time.Duration
	// SplitHardness is the minimum live hardness score (from heartbeats)
	// an in-flight cube needs to qualify for splitting. The default 0
	// makes grace alone the trigger, so a straggler that reports zero
	// progress (and therefore zero hardness) is still split around.
	SplitHardness float64
	// Hedge enables speculative re-dispatch: an idle worker with nothing
	// to run and nothing to split duplicates the longest-running cube;
	// the first result to arrive wins and the loser is cancelled without
	// being journaled or charged to the attempt budget.
	Hedge bool
	// JournalPath, when non-empty, records the run manifest and every
	// chunk verdict in a crash-safe journal, committed before the chunk
	// is acknowledged, so a killed coordinator can be restarted without
	// re-solving finished chunks. A pre-existing journal is refused
	// unless Resume is set.
	JournalPath string
	// Resume permits JournalPath to name an existing journal; its
	// manifest (program hash, bounds, partitioning) must match this run
	// or Coordinate fails with journal.ErrManifestMismatch.
	Resume bool
	// Metrics, when non-nil, receives live chunk/worker gauges and
	// aggregated remote solver counters, for scraping via /metrics
	// during the run. Nil disables instrumentation at no cost.
	Metrics *obs.Registry
	// Health, when non-nil, is the worker-health registry to record
	// into; cmd/coordinator shares one instance with its /healthz
	// endpoint. Nil: Coordinate creates a private one.
	Health *HealthRegistry
	// Certify selects how much evidence remote definite verdicts must
	// carry, verified against the coordinator's own encoding before a
	// verdict is believed or journaled. The zero value is full
	// certification; see CertifyPolicy.
	Certify CertifyPolicy
	// Tracer, when non-nil, opens a root "coordinate" span with one
	// "job" child per assignment, and stamps the trace ID + job span ref
	// onto every job message so worker spans parent under them — the
	// cross-process flight recorder. Nil disables tracing at no cost.
	Tracer *obs.Tracer
	// Report, when non-nil, accumulates the run report: per-partition
	// progress rows (fed from heartbeats and results), worker span
	// events shipped back on results, and whatever snapshots the caller
	// takes. Nil disables reporting at no cost.
	Report *report.Recorder
	// ProgramName labels the report manifest (the input path or
	// benchmark name); the manifest always carries the program hash.
	ProgramName string
	// Epoch is the leadership fencing token stamped into the welcome
	// handshake and every job (see Lease). Workers that have seen a
	// higher epoch refuse this coordinator, so a deposed primary that
	// revives after a failover cannot hand out stale work. 0 for
	// standalone (non-HA) runs.
	Epoch int64
	// Faults, when non-nil, injects deterministic coordinator-side
	// failures for failover tests — see CoordinatorFaultPlan.
	Faults *CoordinatorFaultPlan
}

// ErrPrimaryKilled is returned by Coordinate when
// CoordinatorFaultPlan.KillAfterJobs halts the run: the simulated
// SIGKILL leaves the journal unclosed, workers unnotified, and the
// lease unreleased, exactly like the real signal.
var ErrPrimaryKilled = errors.New("distrib: primary killed by fault plan")

// CoordinatorResult aggregates a distributed run.
type CoordinatorResult struct {
	// Verdict is the overall outcome.
	Verdict core.Verdict
	// Winner is the partition index containing the bug (-1).
	Winner int
	// Jobs counts work units completed (including reassignments).
	Jobs int
	// Reassigned counts chunks handed to another worker after a failure.
	Reassigned int
	// Wall is the overall time.
	Wall time.Duration
	// Quarantined is the structured failure log: chunks that exhausted
	// their attempt budget, with the reason for every failed attempt.
	Quarantined []ChunkFailure
	// Attempts maps each cube to the number of times it was assigned.
	Attempts map[partition.Cube]int
	// Workers summarises every worker that completed hello, sorted by
	// name (jobs completed, failures, connections, last seen).
	Workers []WorkerHealth
	// Drained reports that the run ended because chunks were pending but
	// no workers remained connected for DrainTimeout.
	Drained bool
	// Resumed counts chunks whose verdict was replayed from the journal
	// instead of reassigned to a worker.
	Resumed int
	// Exhausted lists chunks that ended Unknown with a named budget
	// (timeout or conflict budget). They are terminal — re-running under
	// the same budgets gives up again — so they cap the verdict at
	// Unknown without burning the retry budget.
	Exhausted []ChunkExhausted
	// ChunksTotal / ChunksDecided are the coverage counts: decided means
	// a definite SAFE/UNSAFE verdict, journal replays included.
	ChunksTotal, ChunksDecided int
	// RemoteStats aggregates the search statistics of every remote job
	// result (including retried attempts), so distributed runs report
	// the same solver telemetry as local ones.
	RemoteStats sat.Stats
	// SolveMillis sums the remote per-job solver wall time — the total
	// search effort spent across the cluster, as opposed to Wall.
	SolveMillis int64
	// CertifyMillis sums the coordinator-side certificate verification
	// time, the overhead certification adds on top of SolveMillis.
	CertifyMillis int64
	// Certified counts definite verdicts accepted with a verified
	// certificate; CertRejected counts results whose certificate was
	// rejected (each rejection also marks its worker untrusted).
	Certified, CertRejected int
	// MemoryAborted counts chunk results that came back with cause
	// "memory" (solver over its budget, or worker OOM-watchdog trip).
	MemoryAborted int
	// DispatchPaused counts backpressure episodes: times job dispatch
	// paused because fleet memory pressure crossed MemPauseRatio.
	DispatchPaused int
	// Splits counts cube splits (each one SPLIT journal record and two
	// new sub-cubes); Steals counts splits where the idle worker that
	// forced the split took a child away from the straggler's cube;
	// Hedges counts speculative duplicate dispatches; Superseded counts
	// results and assignments discarded because their cube was split or
	// a twin won the race — never journaled, never charged. MaxCubeDepth
	// is the deepest assumption-cube path the run dispatched.
	Splits, Hedges, Steals, Superseded, MaxCubeDepth int
	// JournalSealed reports that the run journal hit a write or sync
	// failure (disk full, I/O error) and sealed itself read-only; the
	// run finished journal-less from that point — still correct, but a
	// crash resume covers only verdicts committed before the seal.
	// JournalSealCause is the underlying failure.
	JournalSealed    bool
	JournalSealCause string
}

// ChunkExhausted names the budget a cube gave up under.
type ChunkExhausted struct {
	Chunk partition.Cube
	Cause string // "timeout" | "conflict-budget" | "memory"
}

// coordinator is the shared state of one Coordinate call.
type coordinator struct {
	opts   CoordinatorOptions
	source string

	mu        sync.Mutex
	remaining int // cubes neither refuted nor quarantined
	active    int // connected workers past hello
	finished  bool
	killed    bool // fault plan halted the primary mid-run
	drain     *time.Timer
	res       *CoordinatorResult
	jerr      error // first journal commit failure: fails the whole run
	conns     map[*conn]struct{}

	sealed   bool                      // journal sealed: degrade, stop committing
	pressure map[string]workerPressure // per-worker heartbeat memory readings

	sched    *scheduler
	done     chan struct{}
	tracker  *chunkTracker
	health   *HealthRegistry
	metrics  *coordMetrics
	commitMu sync.Mutex // orders journal commits and their replication
	jnl      *journal.Journal
	repl     *replicator   // live journal replication fan-out; nil without a journal
	verifier *certVerifier // nil iff certification is off
	recorder *report.Recorder
	root     *obs.Span // the run's "coordinate" span (nil when untraced)
}

// Coordinate serves the analysis of program p over the workers that
// connect to ln. It returns when every chunk is refuted (Safe), a worker
// reports a counterexample (Unsafe: all other workers receive stop),
// every unresolved chunk is quarantined or no workers remain (Unknown,
// with the failure log populated), or the context is cancelled.
func Coordinate(ctx context.Context, ln net.Listener, p *prog.Program, opts CoordinatorOptions) (*CoordinatorResult, error) {
	if opts.Partitions < 1 {
		return nil, fmt.Errorf("distrib: partition count must be >= 1")
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = opts.Partitions / 8
		if opts.ChunkSize < 1 {
			opts.ChunkSize = 1
		}
	}
	if opts.JobTimeout == 0 {
		opts.JobTimeout = 10 * time.Minute
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 5 * time.Second
	}
	if opts.HeartbeatGrace == 0 {
		opts.HeartbeatGrace = 4 * opts.HeartbeatInterval
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	if opts.MemPauseRatio == 0 {
		opts.MemPauseRatio = 0.95
	}
	if (opts.SplitDepth > 0 || opts.Hedge) && opts.SplitGrace == 0 {
		opts.SplitGrace = 15 * time.Second
	}
	opts.Certify = opts.Certify.normalize()
	chunks := partition.Chunks(opts.Partitions, opts.ChunkSize)
	source := prog.Format(p)

	// With certification on, the coordinator builds its own encoding of
	// the program up front — the root of trust every remote certificate
	// is checked against. The cost is one encode, paid once per run.
	var verifier *certVerifier
	if opts.Certify.Enabled() {
		var verr error
		verifier, verr = newCertVerifier(p, opts)
		if verr != nil {
			return nil, verr
		}
	}

	// Splitting single partitions needs to know how many scheduler bits
	// the encoding can supply for cube paths. The verifier's encoding
	// answers for free; an uncertified run pays one extra encode, and
	// only when splitting is enabled at all.
	splitBits := 0
	if opts.SplitDepth > 0 {
		if verifier != nil {
			splitBits = len(verifier.splitLits)
		} else {
			copts := core.Options{
				Unwind: opts.Unwind, Contexts: opts.Contexts, Width: opts.Width,
				Partitions: opts.Partitions,
			}
			enc, _, _, eerr := core.EncodeProgram(p, copts)
			if eerr != nil {
				return nil, fmt.Errorf("distrib: split-bit encoding failed: %w", eerr)
			}
			_, total, perr := core.MakePartitions(enc, copts)
			if perr != nil {
				return nil, fmt.Errorf("distrib: split-bit partitioning failed: %w", perr)
			}
			splitBits = len(partition.SplitLits(enc, total))
		}
	}

	// The journal pins everything that gives a chunk's [From,To] range
	// its meaning; a committed record replays only into the exact same
	// run configuration.
	var jnl *journal.Journal
	var repl *replicator
	var history []journal.ChunkRecord
	if opts.JournalPath != "" {
		if !opts.Resume {
			if _, serr := os.Stat(opts.JournalPath); serr == nil {
				return nil, fmt.Errorf("distrib: journal %s already exists (pass Resume to continue it)", opts.JournalPath)
			}
		}
		var jerr error
		jnl, jerr = journal.Open(opts.JournalPath, journal.Manifest{
			ProgramSHA256: journal.HashProgram(source),
			Unwind:        opts.Unwind,
			Contexts:      opts.Contexts,
			Width:         opts.Width,
			Partitions:    opts.Partitions,
			From:          0,
			To:            opts.Partitions,
			ChunkSize:     opts.ChunkSize,
		})
		if jerr != nil {
			return nil, jerr
		}
		jnl.SetTracer(opts.Tracer)
		defer jnl.Close()
		history = jnl.Committed()
		// Connected standbys tail every committed record live, so their
		// local journal copies stay promotion-ready. Seeded with the
		// history a resumed run already holds.
		repl, jerr = newReplicator(jnl.Manifest(), history)
		if jerr != nil {
			return nil, jerr
		}
	}

	// Replay the journal into the cube tree before anything is queued.
	// Records apply in commit order against the evolving leaf set: a
	// SPLIT record replaces its cube with its two children (the journal
	// commits SPLIT strictly before either child can produce a record,
	// so children always find their slots), a verdict attaches to a live
	// leaf, and anything else — a verdict for a cube that was split or
	// already decided — is stale by construction and ignored.
	type cubeLeaf struct {
		cube partition.Cube
		rec  *journal.ChunkRecord
		dead bool // superseded by its children
	}
	var leaves []*cubeLeaf
	leafIndex := map[partition.Cube]*cubeLeaf{}
	addLeaf := func(c partition.Cube) *cubeLeaf {
		l := &cubeLeaf{cube: c}
		leaves = append(leaves, l)
		leafIndex[c] = l
		return l
	}
	for _, ch := range chunks {
		addLeaf(partition.CubeOf(ch))
	}
	resumedSplits, resumedDepth := 0, 0
	for i := range history {
		rec := history[i]
		cube := partition.Cube{From: rec.From, To: rec.To, Path: rec.Path}
		l := leafIndex[cube]
		if l == nil || l.dead || l.rec != nil {
			continue
		}
		if rec.Split() {
			l.dead = true
			left, right := cube.Split()
			addLeaf(left)
			addLeaf(right)
			resumedSplits++
			if d := left.Depth(); d > resumedDepth {
				resumedDepth = d
			}
			continue
		}
		l.rec = &history[i]
	}
	live := leaves[:0:0]
	for _, l := range leaves {
		if !l.dead {
			live = append(live, l)
		}
	}

	health := opts.Health
	if health == nil {
		health = NewHealthRegistry()
	}
	opts.Report.SetManifest(report.Manifest{
		Program:    opts.ProgramName,
		ProgramSHA: journal.HashProgram(source),
		Unwind:     opts.Unwind,
		Contexts:   opts.Contexts,
		Width:      opts.Width,
		Partitions: opts.Partitions,
		Mode:       "distributed",
		TraceID:    opts.Tracer.TraceID(),
	})
	root := opts.Tracer.Start("coordinate",
		obs.KV("partitions", opts.Partitions), obs.KV("chunks", len(chunks)),
		obs.KV("epoch", opts.Epoch))
	start := time.Now()
	co := &coordinator{
		opts:      opts,
		source:    source,
		remaining: len(live),
		res: &CoordinatorResult{
			Verdict: core.Safe, Winner: -1, ChunksTotal: len(live),
			Splits: resumedSplits, MaxCubeDepth: resumedDepth,
		},
		pressure: make(map[string]workerPressure),
		conns:    make(map[*conn]struct{}),
		sched:    newScheduler(opts, splitBits),
		done:     make(chan struct{}),
		tracker:  newChunkTracker(opts.MaxAttempts),
		health:   health,
		metrics:  newCoordMetrics(opts.Metrics),
		jnl:      jnl,
		repl:     repl,
		verifier: verifier,
		recorder: opts.Report,
		root:     root,
	}
	// Journal commit spans hang off the coordinate root so the merged
	// trace tree stays single-rooted.
	jnl.SetParent(root)
	co.metrics.chunksTotal.Set(int64(len(live)))
	co.metrics.cubeDepth.Set(int64(resumedDepth))

	// Fold replayed verdicts into the run; only undecided leaves are
	// queued for workers. In-flight cubes were never committed, so a
	// crash can lose work but never claim work it lost.
	for _, l := range live {
		rec := l.rec
		if rec == nil {
			co.sched.push(l.cube)
			continue
		}
		// A budget-exhausted verdict is terminal only relative to the
		// budgets pinned on its record: a resume that lifted or raised
		// the exhausted budget re-queues the cube for workers instead of
		// replaying a give-up the new flags were meant to overcome.
		if rec.RetryUnder(opts.ChunkTimeout.Milliseconds(), opts.ChunkConflicts, opts.MemBudgetMB) {
			co.sched.push(l.cube)
			continue
		}
		// A certified run replays only certified definite verdicts. An
		// uncertified record (journaled by a run with -certify=off, or a
		// SAFE cube whose proof was sampled out) was never checked
		// against this coordinator's encoding, so it is re-solved rather
		// than trusted into a certified history.
		if verifier != nil && rec.Verdict != core.Unknown.String() && !rec.Certified {
			co.sched.push(l.cube)
			continue
		}
		co.res.Resumed++
		co.metrics.chunksResumed.Inc()
		switch rec.Verdict {
		case core.Unsafe.String():
			co.res.Verdict = core.Unsafe
			co.res.Winner = rec.Winner
			co.res.ChunksDecided++
			co.remaining--
		case core.Safe.String():
			co.res.ChunksDecided++
			co.remaining--
		default:
			// A journaled Unknown is always budget-exhausted (in-flight
			// cubes are never committed): terminal under these budgets.
			co.res.Exhausted = append(co.res.Exhausted, ChunkExhausted{Chunk: l.cube, Cause: rec.Cause})
			co.remaining--
		}
	}
	co.metrics.chunksRemaining.Set(int64(co.remaining))
	if co.res.Verdict == core.Unsafe || co.remaining == 0 {
		// The journal already decides the run: nothing to hand out.
		co.mu.Lock()
		co.finishLocked()
		co.mu.Unlock()
	}

	// Stop accepting when finished or cancelled.
	go func() {
		select {
		case <-co.done:
		case <-ctx.Done():
			co.mu.Lock()
			co.finishLocked()
			co.mu.Unlock()
		}
		ln.Close()
	}()

	var wg sync.WaitGroup
	for {
		c, err := ln.Accept()
		if err != nil {
			break // listener closed: finished or cancelled
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			co.serve(c)
		}()
	}
	wg.Wait()

	co.mu.Lock()
	if co.drain != nil {
		co.drain.Stop()
	}
	res := co.res
	jerr := co.jerr
	killed := co.killed
	res.Quarantined = co.tracker.failureLog()
	res.Attempts = co.tracker.attempts()
	res.Workers = co.health.Snapshot()
	splits, hedges, steals, superseded, maxDepth := co.sched.stats()
	res.Splits += splits
	res.Hedges = hedges
	res.Steals = steals
	res.Superseded = superseded
	if maxDepth > res.MaxCubeDepth {
		res.MaxCubeDepth = maxDepth
	}
	if res.Verdict == core.Safe && (co.remaining > 0 || len(res.Quarantined) > 0 || len(res.Exhausted) > 0) {
		res.Verdict = core.Unknown
	}
	co.mu.Unlock()
	res.Wall = time.Since(start)
	root.End(obs.KV("verdict", res.Verdict.String()))
	co.recorder.SetVerdict(res.Verdict.String(), res.Wall)
	if res.MemoryAborted > 0 {
		co.recorder.Warn(fmt.Sprintf("%d chunk result(s) aborted on memory (solver budget or worker OOM watchdog)", res.MemoryAborted))
	}
	if jerr != nil {
		// A verdict the journal could not make durable must not be
		// acknowledged: a resume would re-derive a different history.
		return nil, fmt.Errorf("distrib: journal commit failed: %w", jerr)
	}
	if killed {
		return nil, ErrPrimaryKilled
	}
	return res, nil
}

// commitChunk durably records one chunk verdict before it is
// acknowledged to the run state. A storage failure (disk full, I/O
// error) seals the journal read-only and the run degrades loudly to
// journal-less operation: verdicts keep flowing — the run stays
// correct, it just loses crash resumability past the seal — and the
// degradation is surfaced on the result, the metrics, and the run
// report. Any other commit failure (marshalling, closed journal) still
// ends the run: better to stop than to hand out verdicts a resume
// cannot reproduce. The commit/replicate pair is ordered under
// commitMu so every standby's copy carries records in the primary's
// exact journal order — replication happens strictly *after* the local
// fsync, never instead of it, so a verdict a standby inherits is
// always one the primary made durable first.
func (co *coordinator) commitChunk(rec journal.ChunkRecord) bool {
	if co.jnl == nil {
		return true
	}
	co.mu.Lock()
	sealed := co.sealed
	co.mu.Unlock()
	if sealed {
		return true // degraded mode: nothing left to commit to
	}
	co.commitMu.Lock()
	if err := co.jnl.Commit(rec); err != nil {
		co.commitMu.Unlock()
		if errors.Is(err, journal.ErrSealed) {
			co.sealDegrade(err)
			return true
		}
		co.mu.Lock()
		if co.jerr == nil {
			co.jerr = err
		}
		co.finishLocked()
		co.mu.Unlock()
		return false
	}
	replSpan := co.root.Child("replicate_fanout",
		obs.KV("from", rec.From), obs.KV("to", rec.To))
	co.repl.append(rec)
	replSpan.End()
	commits := co.jnl.Commits()
	co.commitMu.Unlock()
	co.metrics.journalCommits.Inc()
	if co.opts.Faults.killAt(commits) {
		co.kill()
		return false
	}
	return true
}

// sealDegrade records the journal's seal once and flips the run into
// journal-less operation: replication stops (standbys keep the history
// up to the seal, which is exactly what the local journal holds), the
// parbmc_journal_sealed gauge latches, and the final report carries a
// warning. Deliberately loud and deliberately non-fatal: losing the
// disk under the journal must not throw away a fleet's solving work.
func (co *coordinator) sealDegrade(err error) {
	co.metrics.journalSealed.Set(1)
	co.mu.Lock()
	first := !co.sealed
	co.sealed = true
	if first {
		co.res.JournalSealed = true
		co.res.JournalSealCause = err.Error()
	}
	co.mu.Unlock()
	if first {
		co.recorder.Warn(fmt.Sprintf("journal sealed after storage failure; run continued journal-less (resume covers only earlier commits): %v", err))
	}
}

// workerPressure is one worker's latest heartbeat memory reading.
type workerPressure struct {
	ratio float64
	at    time.Time
}

// notePressure folds one heartbeat's memory reading into the fleet
// pressure map. Workers without a limit report ratio 0: they cannot be
// "full".
func (co *coordinator) notePressure(key string, memBytes, memLimit int64) {
	if co.opts.MemPauseRatio < 0 {
		return
	}
	ratio := 0.0
	if memLimit > 0 {
		ratio = float64(memBytes) / float64(memLimit)
	}
	co.mu.Lock()
	co.pressure[key] = workerPressure{ratio: ratio, at: time.Now()}
	co.mu.Unlock()
}

// overPressure reports whether any worker's fresh memory reading is at
// or above MemPauseRatio. Readings older than HeartbeatGrace are
// ignored: heartbeats only flow while a job runs, so a worker that
// went idle (or away) must not hold the dispatch gate shut forever.
func (co *coordinator) overPressure() bool {
	if co.opts.MemPauseRatio < 0 {
		return false
	}
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	for key, p := range co.pressure {
		if now.Sub(p.at) > co.opts.HeartbeatGrace {
			delete(co.pressure, key)
			continue
		}
		if p.ratio >= co.opts.MemPauseRatio {
			return true
		}
	}
	return false
}

// dispatchGate blocks new job dispatch while the fleet is over the
// memory-pressure threshold — backpressure: an overloaded fleet drains
// its in-flight jobs instead of being handed more. Returns false if
// the run finished while waiting. The wait self-limits: pressure
// readings expire at HeartbeatGrace, so the gate reopens within one
// grace period even if every worker goes silent.
func (co *coordinator) dispatchGate() bool {
	if !co.overPressure() {
		return true
	}
	co.metrics.dispatchPaused.Inc()
	co.mu.Lock()
	co.res.DispatchPaused++
	co.mu.Unlock()
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-co.done:
			return false
		case <-t.C:
			if !co.overPressure() {
				return true
			}
		}
	}
}

// kill is the simulated SIGKILL of CoordinatorFaultPlan.KillAfterJobs:
// tear everything down with no farewell. The done channel closes the
// listener; closing every live connection makes each serve goroutine
// fail mid-protocol exactly as a dead process would.
func (co *coordinator) kill() {
	co.mu.Lock()
	co.killed = true
	co.finishLocked()
	conns := make([]*conn, 0, len(co.conns))
	for c := range co.conns {
		conns = append(conns, c)
	}
	co.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
}

// addConn / removeConn track live connections for kill().
func (co *coordinator) addConn(c *conn) {
	co.mu.Lock()
	co.conns[c] = struct{}{}
	co.mu.Unlock()
}

func (co *coordinator) removeConn(c *conn) {
	co.mu.Lock()
	delete(co.conns, c)
	co.mu.Unlock()
}

// finishLocked ends the run; callers hold co.mu.
func (co *coordinator) finishLocked() {
	if !co.finished {
		co.finished = true
		close(co.done)
	}
}

// workerJoined/workerLeft keep the connected-worker count and arm the
// drain timer when the last worker leaves with chunks still pending —
// the state in which the old coordinator would block on Accept forever.
func (co *coordinator) workerJoined() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.active++
	co.metrics.workersActive.Set(int64(co.active))
	if co.drain != nil {
		co.drain.Stop()
		co.drain = nil
	}
}

func (co *coordinator) workerLeft() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.active--
	co.metrics.workersActive.Set(int64(co.active))
	if co.active == 0 && co.remaining > 0 && !co.finished {
		if co.drain != nil {
			co.drain.Stop()
		}
		co.drain = time.AfterFunc(co.opts.DrainTimeout, co.drainExpired)
	}
}

func (co *coordinator) drainExpired() {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.active == 0 && co.remaining > 0 && !co.finished {
		co.res.Drained = true
		co.finishLocked()
	}
}

// serve runs one worker connection to completion.
func (co *coordinator) serve(c net.Conn) {
	wc := newConn(c, 30*time.Second)
	defer wc.close()
	co.addConn(wc)
	defer co.removeConn(wc)
	hello, err := wc.recv(30 * time.Second)
	if err != nil || hello.Type != "hello" {
		return // never joined: does not count as a worker failure
	}
	if hello.Role == RoleStandby {
		// A standby coordinator wants the journal replication stream,
		// not jobs. It is not a worker: it never joins the health
		// registry's worker set or the drain accounting.
		co.serveReplica(wc, hello.WorkerName)
		return
	}
	key := co.health.connected(hello.WorkerName, c.RemoteAddr().String())
	if co.health.isUntrusted(key) {
		// A worker caught lying once is refused for the rest of the run:
		// its verdicts cannot be believed, certified or not.
		_ = wc.send(&Message{Type: "stop"})
		return
	}
	// The welcome pins this coordinator's role and lease epoch before
	// any job: a worker that has already served a higher epoch refuses
	// the whole session here, which is the split-brain fence.
	if err := wc.send(&Message{Type: "welcome", Role: RolePrimary, Epoch: co.opts.Epoch}); err != nil {
		return
	}
	co.workerJoined()
	defer co.workerLeft()
	// The per-worker live gauges stop rendering once the worker is gone
	// (its jobs/failures counters remain as history); without this, every
	// evicted or quarantined worker would be scraped with its last
	// readings forever.
	defer co.metrics.dropWorker(key)

	hbMillis := co.opts.HeartbeatInterval.Milliseconds()
	if co.opts.HeartbeatInterval < 0 {
		hbMillis = 0
	}
	for {
		a := co.nextAssignment(key, wc)
		if a == nil {
			_ = wc.send(&Message{Type: "stop"})
			return
		}
		cube := a.cube
		id := a.jobID
		co.tracker.assigned(cube)
		level := co.opts.Certify.jobLevel(id)
		// The job span is the cross-process graft point: its context
		// rides on the wire, the worker parents its own job span under
		// it, and the merged trace shows one tree per run.
		jobSpan := co.root.Child("job",
			obs.KV("job", id), obs.KV("cube", cube.Key()),
			obs.KV("worker", key), obs.KV("hedge", a.hedge))
		sc := jobSpan.Context()
		job := &Message{
			Type: "job", JobID: id, Epoch: co.opts.Epoch, Source: co.source,
			Unwind: co.opts.Unwind, Contexts: co.opts.Contexts, Width: co.opts.Width,
			Partitions: co.opts.Partitions, From: cube.From, To: cube.To,
			CubePath:           cube.Path,
			HeartbeatMillis:    hbMillis,
			ChunkTimeoutMillis: co.opts.ChunkTimeout.Milliseconds(),
			ChunkConflicts:     co.opts.ChunkConflicts,
			MemBudgetMB:        co.opts.MemBudgetMB,
			Certify:            level,
			TraceID:            sc.TraceID,
			ParentSpan:         sc.SpanID,
		}
		if err := wc.send(job); err != nil {
			jobSpan.End(obs.KV("error", err.Error()))
			co.failAssignment(a, key, fmt.Sprintf("send job %d to %s: %v", id, key, err))
			return
		}
		reply, err := co.awaitResult(wc, a, key, hbMillis > 0)
		if err != nil {
			jobSpan.End(obs.KV("error", err.Error()))
			co.failAssignment(a, key, err.Error())
			return
		}
		// The certificate frames follow the result and must be drained
		// even when certification is off, to keep the stream in sync.
		cert, err := co.readCertificate(wc, id, key, reply, hbMillis > 0)
		if err != nil {
			jobSpan.End(obs.KV("error", err.Error()))
			if errors.Is(err, errCertificate) {
				co.rejectCertificate(a, key, err.Error())
				_ = wc.send(&Message{Type: "stop"})
				return
			}
			co.failAssignment(a, key, err.Error())
			return
		}
		// Trust-but-verify: a definite verdict updates the run state only
		// after its evidence checks out against the coordinator's own
		// encoding — under the cube's full assumption set, path bits
		// included. A rejected certificate condemns the worker, not the
		// cube: the cube is re-queued elsewhere at no attempt cost.
		certified := false
		if co.verifier != nil &&
			(reply.Verdict == core.Unsafe.String() || reply.Verdict == core.Safe.String()) {
			certSpan := jobSpan.Child("certify_verify", obs.KV("level", level))
			dur, verr := co.verifier.verify(cube, reply, cert, level)
			certSpan.End(obs.KV("ok", verr == nil))
			co.metrics.certifySeconds.Observe(dur.Seconds())
			co.metrics.certifySecondsAlias.Observe(dur.Seconds())
			co.mu.Lock()
			co.res.CertifyMillis += dur.Milliseconds()
			co.mu.Unlock()
			if verr != nil {
				jobSpan.End(obs.KV("error", verr.Error()))
				co.rejectCertificate(a, key, fmt.Sprintf("job %d on %s: %v", id, key, verr))
				_ = wc.send(&Message{Type: "stop"})
				return
			}
			if reply.Verdict == core.Unsafe.String() || level == CertifyFull {
				certified = true
				co.metrics.certVerified.Inc()
				co.mu.Lock()
				co.res.Certified++
				co.mu.Unlock()
			}
		}
		co.health.jobDone(key)
		co.metrics.jobResult(key, reply.Stats, reply.SolveMillis)
		co.recordRemoteStats(reply)
		jobSpan.End(obs.KV("verdict", reply.Verdict), obs.KV("certified", certified))
		co.recorder.AddSpans(reply.Spans)
		switch reply.Verdict {
		case core.Unsafe.String():
			// The claim decides the race before the journal is touched: a
			// result for a cube that was split, or whose hedge twin already
			// won, is discarded here — never journaled, never charged.
			if !co.sched.claim(a) {
				co.noteSuperseded()
				continue
			}
			co.acceptParts(a, reply, key, certified)
			// Commit before acknowledging: a crash after this point
			// replays straight to the counterexample.
			if !co.commitChunk(journal.ChunkRecord{
				From: cube.From, To: cube.To, Path: cube.Path,
				Verdict: core.Unsafe.String(), Winner: reply.Winner, Millis: reply.Millis,
				Certified: certified,
			}) {
				return
			}
			co.mu.Lock()
			co.res.Jobs++
			co.res.ChunksDecided++
			co.res.Verdict = core.Unsafe
			co.res.Winner = reply.Winner
			co.finishLocked()
			co.mu.Unlock()
			_ = wc.send(&Message{Type: "stop"})
			return
		case core.Safe.String():
			if !co.sched.claim(a) {
				co.noteSuperseded()
				continue
			}
			co.acceptParts(a, reply, key, certified)
			if !co.commitChunk(journal.ChunkRecord{
				From: cube.From, To: cube.To, Path: cube.Path,
				Verdict: core.Safe.String(), Winner: -1, Millis: reply.Millis,
				Certified: certified,
			}) {
				return
			}
			co.mu.Lock()
			co.res.Jobs++
			co.res.ChunksDecided++
			co.remaining--
			co.metrics.chunksRemaining.Set(int64(co.remaining))
			fin := co.remaining == 0
			if fin {
				co.finishLocked()
			}
			co.mu.Unlock()
			if fin {
				_ = wc.send(&Message{Type: "stop"})
				return
			}
		default:
			cause := sat.ParseStopCause(reply.Cause)
			if cause == sat.CauseCancelled {
				// The expected fate of a superseded assignment: the worker
				// acknowledged the cancel. Nothing is journaled and no
				// attempt is charged. A cancelled result for a cube that
				// was *not* superseded (a worker-local interrupt) is a
				// normal retryable failure.
				if co.sched.release(a) {
					co.requeueOrQuarantine(cube, key,
						fmt.Sprintf("job %d on %s: cancelled", id, key))
				} else {
					co.noteSuperseded()
				}
				continue
			}
			if cause == sat.CauseMemory {
				co.metrics.memoryAborted.Inc()
				co.mu.Lock()
				co.res.MemoryAborted++
				co.mu.Unlock()
				if co.opts.MemBudgetMB == 0 {
					// With no configured memory budget, a "memory" result is
					// the worker's own OOM watchdog tripping: that machine
					// ran out, not the cube being deterministically too
					// big. Re-queue it — another worker (or the same one,
					// once its heap drains) may have the headroom. The
					// attempt budget still bounds how often this can loop.
					if co.sched.release(a) {
						co.requeueOrQuarantine(cube, key,
							fmt.Sprintf("job %d on %s: memory watchdog abort", id, key))
					} else {
						co.noteSuperseded()
					}
					continue
				}
			}
			if cause.Budgeted() {
				// A budgeted Unknown is deterministic: the same cube under
				// the same budgets gives up again. Terminal, journaled with
				// the budgets it gave up under (so a resume with raised
				// budgets re-queues it), and not charged to the retry
				// budget. Terminal means it must win the race like any
				// other verdict.
				if !co.sched.claim(a) {
					co.noteSuperseded()
					continue
				}
				co.acceptParts(a, reply, key, certified)
				if !co.commitChunk(journal.ChunkRecord{
					From: cube.From, To: cube.To, Path: cube.Path,
					Verdict: core.Unknown.String(), Winner: -1,
					Cause: reply.Cause, Millis: reply.Millis,
					TimeoutMillis: co.opts.ChunkTimeout.Milliseconds(),
					Conflicts:     co.opts.ChunkConflicts,
					MemBudgetMB:   co.opts.MemBudgetMB,
				}) {
					return
				}
				co.metrics.budgetExhausted.Inc()
				co.mu.Lock()
				co.res.Jobs++
				co.res.Exhausted = append(co.res.Exhausted, ChunkExhausted{Chunk: cube, Cause: reply.Cause})
				co.remaining--
				co.metrics.chunksRemaining.Set(int64(co.remaining))
				fin := co.remaining == 0
				if fin {
					co.finishLocked()
				}
				co.mu.Unlock()
				if fin {
					_ = wc.send(&Message{Type: "stop"})
					return
				}
				continue
			}
			// Retryable Unknown: a failed attempt, but the connection
			// stays usable.
			if co.sched.release(a) {
				co.requeueOrQuarantine(cube, key,
					fmt.Sprintf("job %d on %s: verdict %s", id, key, reply.Verdict))
			} else {
				co.noteSuperseded()
			}
		}
	}
}

// nextAssignment blocks until the scheduler hands this worker something
// to run — a queued cube, the stolen child of a straggler it just
// split, or a hedged duplicate — or the run ends (nil). The periodic
// tick is what notices grace periods expiring when no queue activity
// wakes anyone.
func (co *coordinator) nextAssignment(key string, wc *conn) *assignment {
	tick := co.opts.SplitGrace / 4
	if tick <= 0 || tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	for {
		select {
		case <-co.done:
			return nil
		default:
		}
		// Backpressure: while the fleet is over the memory-pressure
		// threshold nothing is dispatched, split, or hedged.
		if !co.dispatchGate() {
			return nil
		}
		a, victim := co.sched.tryAcquire(key, wc)
		if a != nil {
			if a.hedge {
				co.metrics.chunksHedged.Inc()
			}
			_, _, _, _, depth := co.sched.stats()
			co.metrics.cubeDepth.Set(int64(depth))
			return a
		}
		if victim != nil {
			if a := co.performSplit(victim, key, wc); a != nil {
				return a
			}
			continue
		}
		t := time.NewTimer(tick)
		select {
		case <-co.done:
			t.Stop()
			return nil
		case <-co.sched.notify:
			t.Stop()
		case <-t.C:
		}
	}
}

// performSplit turns a split reservation into a committed tree edit:
// the SPLIT record is journaled first — the claim window closed when
// the victim was reserved, so no parent verdict can land after this —
// then the scheduler swaps the cube for its two children. The idle
// caller walks away with one child (stolen from the straggler's worker)
// and the other hits the queue.
func (co *coordinator) performSplit(victim *assignment, key string, wc *conn) *assignment {
	cube := victim.cube
	hardness := co.sched.hardnessOf(cube)
	if !co.commitChunk(journal.ChunkRecord{
		From: cube.From, To: cube.To, Path: cube.Path,
		Verdict: journal.VerdictSplit,
	}) {
		co.sched.abortSplit(victim)
		return nil
	}
	a, stolen := co.sched.completeSplit(victim, key, wc)
	co.metrics.cubesSplit.Inc()
	if stolen {
		co.metrics.cubeSteals.Inc()
	}
	co.mu.Lock()
	co.remaining++ // one live cube became two
	co.res.ChunksTotal++
	co.metrics.chunksTotal.Set(int64(co.res.ChunksTotal))
	co.metrics.chunksRemaining.Set(int64(co.remaining))
	co.mu.Unlock()
	co.recorder.CubeFinish(report.CubeRow{
		Key: cube.Key(), From: cube.From, To: cube.To, Path: cube.Path,
		Worker: victim.worker, Verdict: journal.VerdictSplit,
		Hardness: hardness, Stolen: stolen,
	})
	return a
}

// acceptParts folds an *accepted* result's per-partition breakdown into
// the metrics and the run report, and records the cube row. Discarded
// (superseded) results never reach here, so a hedge loser's cancelled
// rows cannot overwrite the winner's.
func (co *coordinator) acceptParts(a *assignment, reply *Message, key string, certified bool) {
	for _, pp := range reply.Parts {
		co.metrics.partResult(pp)
		cause := ""
		if pp.Verdict == sat.Unknown.String() {
			cause = reply.Cause
		}
		co.recorder.Finish(report.PartitionRow{
			Partition:    pp.Partition,
			Verdict:      pp.Verdict,
			Worker:       key,
			Conflicts:    pp.Conflicts,
			Propagations: pp.Propagations,
			Progress:     pp.Progress,
			SolveMillis:  pp.Millis,
			Certified:    certified,
			Cause:        cause,
			Hardness:     pp.Hardness,
			ConflictRate: pp.ConflictRate,
		})
	}
	co.recorder.CubeFinish(report.CubeRow{
		Key: a.cube.Key(), From: a.cube.From, To: a.cube.To, Path: a.cube.Path,
		Worker: key, Verdict: reply.Verdict, Cause: reply.Cause,
		SolveMillis: reply.Millis, Hedged: a.hedge, Certified: certified,
	})
}

// noteSuperseded counts one discarded result — its cube was split or a
// twin won the race while it was in flight. The scheduler's own
// counters feed CoordinatorResult.Superseded at the end of the run.
func (co *coordinator) noteSuperseded() {
	co.metrics.supersededResults.Inc()
}

// awaitResult reads messages until the result for the assignment's job
// arrives. With heartbeats enabled each read is bounded by
// HeartbeatGrace, so a stalled worker is caught long before JobTimeout;
// the overall job deadline still applies. A result carrying the wrong
// JobID is a protocol violation (stale result misattribution) and fails
// the worker.
func (co *coordinator) awaitResult(wc *conn, a *assignment, key string, heartbeats bool) (*Message, error) {
	id := a.jobID
	deadline := time.Now().Add(co.opts.JobTimeout)
	grace := co.opts.JobTimeout
	if heartbeats && co.opts.HeartbeatGrace < grace {
		grace = co.opts.HeartbeatGrace
	}
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("job %d on %s: timeout after %v", id, key, co.opts.JobTimeout)
		}
		to := grace
		if to > remain {
			to = remain
		}
		reply, err := wc.recv(to)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && heartbeats {
				return nil, fmt.Errorf("job %d on %s: no heartbeat within %v", id, key, grace)
			}
			return nil, fmt.Errorf("job %d on %s: %v", id, key, err)
		}
		switch reply.Type {
		case "heartbeat":
			if reply.JobID == id {
				co.health.touch(key)
				co.metrics.heartbeat(key, reply)
				co.notePressure(key, reply.MemBytes, reply.MemLimit)
				// The live hardness reading is the straggler signal the
				// split-victim selection steers by.
				co.sched.note(a, reply.Hardness)
				for _, pp := range reply.Parts {
					co.metrics.partProgress(pp)
					co.recorder.Progress(pp.Partition, key, pp.Conflicts, pp.Propagations, pp.Progress)
					co.recorder.Hardness(pp.Partition, pp.Hardness, pp.ConflictRate)
				}
			}
			// A stale heartbeat from the previous job is harmless: skip.
		case "result":
			if reply.JobID != id {
				return nil, fmt.Errorf("job %d on %s: stale result for job %d", id, key, reply.JobID)
			}
			if reply.Error != "" {
				return nil, fmt.Errorf("job %d on %s: worker error: %s", id, key, reply.Error)
			}
			return reply, nil
		default:
			return nil, fmt.Errorf("job %d on %s: unexpected message %q", id, key, reply.Type)
		}
	}
}

// readCertificate reads the certificate frames a result declared via
// CertSize and decodes them. Errors wrapped in errCertificate are the
// worker's fault (oversized declaration, protocol violation, corrupt
// payload) and condemn the worker; bare errors are transport failures
// and only charge a retryable attempt.
func (co *coordinator) readCertificate(wc *conn, id int, key string, reply *Message, heartbeats bool) (*Certificate, error) {
	if reply.CertSize == 0 {
		return nil, nil
	}
	if reply.CertSize < 0 || reply.CertSize > maxCertBytes {
		return nil, fmt.Errorf("%w: job %d on %s declares a %d-byte certificate (cap %d)",
			errCertificate, id, key, reply.CertSize, int64(maxCertBytes))
	}
	grace := co.opts.JobTimeout
	if heartbeats && co.opts.HeartbeatGrace < grace {
		grace = co.opts.HeartbeatGrace
	}
	data := make([]byte, 0, reply.CertSize)
	for seq := 0; int64(len(data)) < reply.CertSize; seq++ {
		m, err := wc.recv(grace)
		if err != nil {
			return nil, fmt.Errorf("job %d on %s: certificate frame %d: %v", id, key, seq, err)
		}
		if m.Type != "cert" || m.JobID != id || m.Seq != seq {
			return nil, fmt.Errorf("%w: job %d on %s: expected cert frame %d, got %q job=%d seq=%d",
				errCertificate, id, key, seq, m.Type, m.JobID, m.Seq)
		}
		if len(m.Data) == 0 || int64(len(data)+len(m.Data)) > reply.CertSize {
			return nil, fmt.Errorf("%w: job %d on %s: certificate frames overflow the declared %d bytes",
				errCertificate, id, key, reply.CertSize)
		}
		data = append(data, m.Data...)
	}
	cert, err := decodeCertificate(data)
	if err != nil {
		return nil, fmt.Errorf("%w: job %d on %s: %v", errCertificate, id, key, err)
	}
	return cert, nil
}

// rejectCertificate quarantines the worker behind a rejected certificate
// and puts its cube back on the queue. The cube is not charged a
// failed attempt — it did nothing wrong, and a fleet with one persistent
// liar must not be able to quarantine cubes by burning their budgets.
func (co *coordinator) rejectCertificate(a *assignment, key, reason string) {
	co.health.certRejected(key)
	co.health.failed(key)
	co.metrics.certRejected.Inc()
	co.metrics.workerCertRejected(key)
	co.mu.Lock()
	co.res.CertRejected++
	co.mu.Unlock()
	if !co.sched.release(a) {
		co.noteSuperseded()
		return
	}
	co.metrics.reassigned.Inc()
	co.mu.Lock()
	co.res.Reassigned++
	co.mu.Unlock()
	co.sched.push(a.cube)
}

// recordRemoteStats folds one job result's search statistics into the
// run aggregate (all results count, retried attempts included: the
// aggregate measures search effort spent, not effort kept).
func (co *coordinator) recordRemoteStats(reply *Message) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if reply.Stats != nil {
		co.res.RemoteStats.Add(*reply.Stats)
	}
	co.res.SolveMillis += reply.SolveMillis
}

// failAssignment charges a failed attempt to the worker, and — unless
// the cube was superseded in flight (its children or a hedge twin carry
// it now) — to the cube as well.
func (co *coordinator) failAssignment(a *assignment, key, reason string) {
	co.health.failed(key)
	co.metrics.workerFailed(key)
	if !co.sched.release(a) {
		co.noteSuperseded()
		return
	}
	co.requeueOrQuarantine(a.cube, key, reason)
}

// requeueOrQuarantine puts a failed cube back on the queue, or — once
// its budget is exhausted — quarantines it so it is never reassigned
// again. Quarantining the last unresolved cube ends the run.
func (co *coordinator) requeueOrQuarantine(cube partition.Cube, key, reason string) {
	if co.tracker.failed(cube, reason) {
		co.metrics.quarantined.Inc()
		co.mu.Lock()
		co.remaining--
		co.metrics.chunksRemaining.Set(int64(co.remaining))
		if co.remaining == 0 {
			co.finishLocked()
		}
		co.mu.Unlock()
		return
	}
	co.metrics.reassigned.Inc()
	co.mu.Lock()
	co.res.Reassigned++
	co.mu.Unlock()
	co.sched.push(cube)
}
