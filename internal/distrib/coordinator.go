package distrib

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/prog"
)

// CoordinatorOptions configures a distributed analysis.
type CoordinatorOptions struct {
	// Unwind, Contexts, Width are the analysis bounds.
	Unwind, Contexts, Width int
	// Partitions is the total partition count (power of two).
	Partitions int
	// ChunkSize is the number of partitions per work unit (default:
	// Partitions / 8, at least 1).
	ChunkSize int
	// JobTimeout bounds one worker job; an expired job is reassigned
	// (default 10 minutes).
	JobTimeout time.Duration
}

// CoordinatorResult aggregates a distributed run.
type CoordinatorResult struct {
	// Verdict is the overall outcome.
	Verdict core.Verdict
	// Winner is the partition index containing the bug (-1).
	Winner int
	// Jobs counts work units completed (including reassignments).
	Jobs int
	// Reassigned counts chunks that had to be handed to another worker
	// after a failure.
	Reassigned int
	// Wall is the overall time.
	Wall time.Duration
}

// Coordinate serves the analysis of program p over the workers that
// connect to ln. It returns when every chunk is refuted (Safe), a worker
// reports a counterexample (Unsafe: all other workers receive stop), or
// the context is cancelled.
func Coordinate(ctx context.Context, ln net.Listener, p *prog.Program, opts CoordinatorOptions) (*CoordinatorResult, error) {
	if opts.Partitions < 1 {
		return nil, fmt.Errorf("distrib: partition count must be >= 1")
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = opts.Partitions / 8
		if opts.ChunkSize < 1 {
			opts.ChunkSize = 1
		}
	}
	if opts.JobTimeout == 0 {
		opts.JobTimeout = 10 * time.Minute
	}
	source := prog.Format(p)
	chunks := partition.Chunks(opts.Partitions, opts.ChunkSize)

	start := time.Now()
	res := &CoordinatorResult{Verdict: core.Safe, Winner: -1}

	var mu sync.Mutex
	pending := make(chan partition.Chunk, len(chunks))
	for _, ch := range chunks {
		pending <- ch
	}
	remaining := len(chunks)
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() { closeOnce.Do(func() { close(done) }) }

	// Stop accepting when finished.
	go func() {
		select {
		case <-done:
		case <-ctx.Done():
			finish()
		}
		ln.Close()
	}()

	var wg sync.WaitGroup
	jobID := 0
	for {
		c, err := ln.Accept()
		if err != nil {
			break // listener closed: finished or cancelled
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := newConn(c, 30*time.Second)
			defer wc.close()
			if hello, err := wc.recv(30 * time.Second); err != nil || hello.Type != "hello" {
				return
			}
			for {
				var chunk partition.Chunk
				select {
				case chunk = <-pending:
				case <-done:
					_ = wc.send(&Message{Type: "stop"})
					return
				}
				mu.Lock()
				jobID++
				id := jobID
				mu.Unlock()
				job := &Message{
					Type: "job", JobID: id, Source: source,
					Unwind: opts.Unwind, Contexts: opts.Contexts, Width: opts.Width,
					Partitions: opts.Partitions, From: chunk.From, To: chunk.To,
				}
				if err := wc.send(job); err != nil {
					pending <- chunk // reassign
					mu.Lock()
					res.Reassigned++
					mu.Unlock()
					return
				}
				reply, err := wc.recv(opts.JobTimeout)
				if err != nil || reply.Type != "result" || reply.Error != "" {
					pending <- chunk // worker failed: reassign
					mu.Lock()
					res.Reassigned++
					mu.Unlock()
					return
				}
				mu.Lock()
				res.Jobs++
				switch reply.Verdict {
				case core.Unsafe.String():
					res.Verdict = core.Unsafe
					res.Winner = reply.Winner
					mu.Unlock()
					finish()
					_ = wc.send(&Message{Type: "stop"})
					return
				case core.Safe.String():
					remaining--
					if remaining == 0 {
						mu.Unlock()
						finish()
						_ = wc.send(&Message{Type: "stop"})
						return
					}
				default:
					// Unknown (e.g. worker-side cancellation): reassign.
					pending <- chunk
					res.Reassigned++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil && res.Verdict == core.Safe {
		mu.Lock()
		if remaining > 0 {
			res.Verdict = core.Unknown
		}
		mu.Unlock()
	}
	res.Wall = time.Since(start)
	return res, nil
}
