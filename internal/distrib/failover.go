package distrib

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/prog"
)

// Hot-standby coordinator failover.
//
// RunHA wraps Coordinate in a leadership loop: the coordinator that
// holds the lease (see lease.go) runs the analysis as primary; every
// other coordinator is a standby that (a) answers worker dials with a
// "not the leader" welcome so workers keep probing cheaply, and (b)
// tails the primary's journal over a live replication stream, keeping
// a local, fsynced, byte-identical copy. When the primary dies the
// lease expires, the standby acquires it at the next epoch, and
// promotes by resuming from its replica through the exact code path a
// cold `-resume` restart uses — committed verdicts replay, only
// in-flight work is re-solved, and the workers re-home to the standby
// without restarting.

// Coordinator roles, carried in the welcome handshake.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)

// errStandby marks a worker session that reached a live coordinator
// which is not (yet) the leader. It is not a connection failure: the
// worker rotates to the next address without burning its reconnect
// budget, bounded only by ReconnectTimeout.
var errStandby = errors.New("distrib: coordinator is standby, not primary")

// ErrStaleEpoch marks a coordinator whose lease epoch is below one the
// worker has already served — a deposed primary that revived after a
// failover. The worker refuses the session outright; accepting would
// let two coordinators hand out conflicting work (split-brain).
var ErrStaleEpoch = errors.New("distrib: coordinator epoch is stale (deposed primary)")

// replSubBuffer bounds the per-standby backlog of unsent replication
// frames. A standby that falls further behind than this is dropped and
// must reconnect, which re-sends the full history — correct (the
// replica file is truncated on connect) if expensive, and strictly
// better than blocking the primary's commit path on a slow follower.
const replSubBuffer = 1024

// replicator fans committed journal records out to connected standbys.
// Frames are the journal's own on-disk framing (journal.Marshal*), so
// a standby can append them verbatim; frame 0 is always the manifest.
type replicator struct {
	mu     sync.Mutex
	frames [][]byte
	subs   map[chan []byte]struct{}
}

// newReplicator seeds the frame history with the manifest and the
// records a resumed run already holds, so a standby that connects
// late still receives the complete journal.
func newReplicator(m journal.Manifest, history []journal.ChunkRecord) (*replicator, error) {
	mf, err := journal.MarshalManifest(m)
	if err != nil {
		return nil, err
	}
	frames := [][]byte{mf}
	for _, rec := range history {
		fr, err := journal.MarshalChunk(rec)
		if err != nil {
			return nil, err
		}
		frames = append(frames, fr)
	}
	return &replicator{frames: frames, subs: make(map[chan []byte]struct{})}, nil
}

// append publishes one committed record to the history and every live
// subscriber. Callers hold the coordinator's commitMu, so frames reach
// every standby in exact journal order. The send never blocks: a
// subscriber whose buffer is full is closed and dropped instead.
func (r *replicator) append(rec journal.ChunkRecord) {
	frame, err := journal.MarshalChunk(rec)
	if err != nil {
		return // unreachable: ChunkRecord always marshals
	}
	r.mu.Lock()
	r.frames = append(r.frames, frame)
	for ch := range r.subs {
		select {
		case ch <- frame:
		default:
			delete(r.subs, ch)
			close(ch)
		}
	}
	r.mu.Unlock()
}

// subscribe atomically snapshots the history and registers a live
// channel, so no frame committed between the two can be missed or
// duplicated.
func (r *replicator) subscribe() (history [][]byte, live chan []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	history = append([][]byte(nil), r.frames...)
	live = make(chan []byte, replSubBuffer)
	r.subs[live] = struct{}{}
	return history, live
}

func (r *replicator) unsubscribe(live chan []byte) {
	r.mu.Lock()
	if _, ok := r.subs[live]; ok {
		delete(r.subs, live)
		close(live)
	}
	r.mu.Unlock()
}

// serveReplica streams the journal to one connected standby: the full
// history first, then live frames as they commit. The standby acks its
// durably applied frame count, which drives the per-standby
// replication-lag gauge. On a clean run end the remaining frames are
// drained before the stop, so a finished run's replica is complete.
func (co *coordinator) serveReplica(wc *conn, name string) {
	if co.repl == nil {
		// No journal, nothing to replicate: turn the standby away.
		_ = wc.send(&Message{Type: "stop"})
		return
	}
	if err := wc.send(&Message{Type: "welcome", Role: RolePrimary, Epoch: co.opts.Epoch}); err != nil {
		return
	}
	history, live := co.repl.subscribe()
	defer co.repl.unsubscribe(live)
	lag := co.metrics.replicationLag(name)
	standbys := co.metrics.reg.Gauge("parbmc_standbys_connected",
		"Standby coordinators currently attached to the replication stream.")
	standbys.Add(1)
	defer standbys.Add(-1)

	var sent atomic.Int64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			m, err := wc.recv(0)
			if err != nil {
				return
			}
			if m.Type == "replicate-ack" {
				if d := sent.Load() - int64(m.Seq); d >= 0 {
					lag.Set(d)
				}
			}
		}
	}()
	defer func() { wc.close(); <-readerDone }()

	seq := 0
	send := func(frame []byte) bool {
		if err := wc.send(&Message{Type: "replicate", Seq: seq, Data: frame}); err != nil {
			return false
		}
		seq++
		sent.Store(int64(seq))
		return true
	}
	for _, fr := range history {
		if !send(fr) {
			return
		}
	}
	for {
		select {
		case fr, ok := <-live:
			if !ok || !send(fr) {
				return // dropped for lagging, or dead conn: standby resyncs
			}
		case <-co.done:
			// Drain frames committed before the run ended (the Unsafe
			// commit happens-before done closes), then say goodbye.
			for {
				select {
				case fr, ok := <-live:
					if !ok || !send(fr) {
						return
					}
				default:
					_ = wc.send(&Message{Type: "stop"})
					return
				}
			}
		}
	}
}

// replicationLag is the per-standby gauge of commits not yet
// acknowledged as durably applied.
func (m *coordMetrics) replicationLag(standby string) *obs.Gauge {
	return m.reg.Gauge("parbmc_replication_lag_records",
		"Journal records sent to the standby but not yet acknowledged as durably applied.",
		"standby", standby)
}

// HAState is the observable role of one RunHA call, shared with the
// /healthz endpoint. All methods are nil-safe.
type HAState struct {
	mu         sync.Mutex
	role       string
	epoch      int64
	replicated int
}

func (s *HAState) set(role string, epoch int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.role, s.epoch = role, epoch
	s.mu.Unlock()
}

func (s *HAState) setReplicated(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.replicated = n
	s.mu.Unlock()
}

// Role returns the current role ("primary" or "standby"; empty before
// RunHA starts), the lease epoch in force, and — while standby — the
// number of journal records replicated so far.
func (s *HAState) Role() (role string, epoch int64, replicated int) {
	if s == nil {
		return "", 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role, s.epoch, s.replicated
}

// HAOptions configures the leadership side of RunHA.
type HAOptions struct {
	// LeasePath is the shared lease file both coordinators contend on.
	LeasePath string
	// Holder names this coordinator in the lease (default "coordinator").
	Holder string
	// Addr is the address this coordinator advertises in the lease —
	// where workers and the standby's replication client dial it.
	Addr string
	// LeaseTTL is the leadership lease duration (default 15s). The
	// primary renews every TTL/3; a standby may take over once a full
	// TTL passes without renewal, so TTL bounds the failover blackout.
	LeaseTTL time.Duration
	// StandbyPoll is how often a standby re-reads the lease file while
	// waiting (default LeaseTTL/4).
	StandbyPoll time.Duration
	// State, when non-nil, receives live role transitions for /healthz.
	State *HAState
}

func (ha HAOptions) withDefaults() HAOptions {
	if ha.Holder == "" {
		ha.Holder = "coordinator"
	}
	if ha.LeaseTTL == 0 {
		ha.LeaseTTL = 15 * time.Second
	}
	if ha.StandbyPoll == 0 {
		ha.StandbyPoll = ha.LeaseTTL / 4
	}
	return ha
}

// haMetrics instruments the leadership loop.
type haMetrics struct {
	failovers  *obs.Counter
	replicated *obs.Gauge
}

func newHAMetrics(reg *obs.Registry) *haMetrics {
	return &haMetrics{
		failovers: reg.Counter("parbmc_coordinator_failovers_total",
			"Times this coordinator promoted from standby to primary after a lease takeover."),
		replicated: reg.Gauge("parbmc_standby_replicated_records",
			"Journal records this coordinator has durably replicated while standby."),
	}
}

// RunHA runs one coordinator of a primary/standby pair. It acquires
// the lease and coordinates as primary, or — while another coordinator
// holds the lease — serves as a warm standby until the lease expires,
// then promotes and resumes the run from its replicated journal. It
// returns the run result (from whichever role finished the run) or
// the first fatal error.
func RunHA(ctx context.Context, ln net.Listener, p *prog.Program, opts CoordinatorOptions, ha HAOptions) (*CoordinatorResult, error) {
	if ha.LeasePath == "" {
		return nil, fmt.Errorf("distrib: HA requires a lease path")
	}
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("distrib: HA requires a journal path (the replication target)")
	}
	ha = ha.withDefaults()
	hm := newHAMetrics(opts.Metrics)
	wasStandby := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lease, err := AcquireLease(ha.LeasePath, ha.Holder, ha.Addr, ha.LeaseTTL)
		if errors.Is(err, ErrLeaseHeld) {
			wasStandby = true
			if serr := runStandby(ctx, ln, opts, ha, hm); serr != nil {
				return nil, serr
			}
			continue // lease looks free: contend for it
		}
		if err != nil {
			return nil, err
		}
		if wasStandby {
			hm.failovers.Inc()
		}
		return runPrimary(ctx, ln, p, opts, ha, lease)
	}
}

// runPrimary coordinates under a held lease, renewing it continuously.
// Losing the lease (another coordinator took over despite renewal —
// e.g. this process was paused past the TTL) cancels the run: the new
// epoch has fenced this one, and workers will refuse it anyway.
func runPrimary(ctx context.Context, ln net.Listener, p *prog.Program, opts CoordinatorOptions, ha HAOptions, lease *Lease) (*CoordinatorResult, error) {
	opts.Epoch = lease.Epoch()
	opts.Resume = true // promotion and restart both resume the journal
	ha.State.set(RolePrimary, lease.Epoch())
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var deposed atomic.Bool
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		// The lease span brackets this tenure as primary; each renewal is
		// a child, so the trace shows the leadership heartbeat alongside
		// the work it fences. Nil-safe: untraced runs pay one nil check.
		leaseSpan := opts.Tracer.Start("lease",
			obs.KV("holder", ha.Holder), obs.KV("epoch", lease.Epoch()))
		renews := 0
		defer func() {
			leaseSpan.End(obs.KV("renews", renews), obs.KV("deposed", deposed.Load()))
		}()
		t := time.NewTicker(ha.LeaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-cctx.Done():
				return
			case <-t.C:
				sp := leaseSpan.Child("lease_renew")
				err := lease.Renew()
				if err != nil {
					sp.End(obs.KV("error", err.Error()))
					deposed.Store(true)
					cancel()
					return
				}
				sp.End()
				renews++
			}
		}
	}()
	res, err := Coordinate(cctx, ln, p, opts)
	cancel()
	<-renewDone
	if errors.Is(err, ErrPrimaryKilled) {
		// Simulated SIGKILL: the lease is deliberately NOT released, so
		// the standby must wait out the TTL exactly as for a real crash.
		return nil, err
	}
	if deposed.Load() {
		return res, fmt.Errorf("distrib: %w while coordinating", ErrLeaseLost)
	}
	if lerr := lease.Release(); lerr != nil && err == nil {
		err = lerr
	}
	return res, err
}

// runStandby is the warm-standby phase: answer worker dials with a
// standby welcome, tail the primary's journal into a local replica,
// and return nil once the lease has expired (the caller then contends
// for it). A fatal error (context cancelled, lease file unreadable)
// is returned as-is.
func runStandby(ctx context.Context, ln net.Listener, opts CoordinatorOptions, ha HAOptions, hm *haMetrics) error {
	st, _, err := ReadLease(ha.LeasePath)
	if err != nil {
		return err
	}
	ha.State.set(RoleStandby, st.Epoch)

	stopAccept := make(chan struct{})
	acceptDone := standbyAccept(ln, stopAccept, ha.State)
	defer func() {
		close(stopAccept)
		<-acceptDone
	}()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st, exists, err := ReadLease(ha.LeasePath)
		if err != nil {
			return err
		}
		if !exists || st.Expired(time.Now()) {
			return nil // leadership is up for grabs
		}
		ha.State.set(RoleStandby, st.Epoch)
		// Tail the primary until the connection dies or the lease
		// expires. Errors are not fatal: the replica file is the
		// fallback, and the lease clock decides what happens next.
		tailPrimary(ctx, st.Addr, opts.JournalPath, ha, hm)
		if !sleepCtx(ctx, ha.StandbyPoll) {
			return ctx.Err()
		}
	}
}

// sleepCtx sleeps d unless ctx ends first; reports whether it slept
// the full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// standbyAccept answers dials while this coordinator is not the
// leader: hello is met with a standby welcome so workers rotate on
// without burning reconnect budget. The listener itself stays open —
// promotion hands the very same listener to Coordinate — so accepting
// runs under short deadlines that let the loop notice stop.
func standbyAccept(ln net.Listener, stop <-chan struct{}, state *HAState) <-chan struct{} {
	done := make(chan struct{})
	dl, ok := ln.(interface{ SetDeadline(time.Time) error })
	if !ok {
		close(done)
		return done // not a TCP listener (tests): workers just block
	}
	go func() {
		defer close(done)
		defer dl.SetDeadline(time.Time{}) // hand a clean listener to Coordinate
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = dl.SetDeadline(time.Now().Add(50 * time.Millisecond))
			c, err := ln.Accept()
			if err != nil {
				if ne, isNet := err.(net.Error); isNet && ne.Timeout() {
					continue
				}
				return // listener closed under us
			}
			go func() {
				wc := newConn(c, 5*time.Second)
				defer wc.close()
				hello, err := wc.recv(5 * time.Second)
				if err != nil || hello.Type != "hello" {
					return
				}
				_, epoch, _ := state.Role()
				_ = wc.send(&Message{Type: "welcome", Role: RoleStandby, Epoch: epoch})
			}()
		}
	}()
	return done
}

// tailPrimary connects to the primary as a standby and applies its
// replication stream to a fresh replica at journalPath, acking each
// durably applied frame. It returns when the connection dies, the
// primary says stop, or the lease expires mid-stream; in every case
// the replica file on disk is a valid journal prefix (at worst with a
// torn tail a later Open repairs), so the caller can always promote
// from whatever was applied.
func tailPrimary(ctx context.Context, addr, journalPath string, ha HAOptions, hm *haMetrics) {
	if addr == "" {
		return
	}
	d := net.Dialer{Timeout: 5 * time.Second}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return
	}
	wc := newConn(c, 30*time.Second)
	defer wc.close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			wc.close()
		case <-stop:
		}
	}()

	if err := wc.send(&Message{Type: "hello", WorkerName: ha.Holder, Role: RoleStandby}); err != nil {
		return
	}
	welcome, err := wc.recv(10 * time.Second)
	if err != nil || welcome.Type != "welcome" || welcome.Role != RolePrimary {
		return
	}
	// The primary streams its full history on every connect, so the
	// replica starts from scratch: the primary's journal is the only
	// authority, and a stale local file must not shadow it.
	rep, err := journal.CreateReplica(journalPath)
	if err != nil {
		return
	}
	defer rep.Close()
	applied := 0
	for {
		m, err := wc.recv(ha.StandbyPoll)
		if err != nil {
			if ne, isNet := err.(net.Error); isNet && ne.Timeout() {
				// Idle stream: keep tailing unless the lease has expired
				// (a wedged-but-connected primary must not pin us here).
				st, exists, lerr := ReadLease(ha.LeasePath)
				if lerr == nil && exists && !st.Expired(time.Now()) {
					continue
				}
			}
			return
		}
		switch m.Type {
		case "replicate":
			if aerr := rep.Apply(m.Data); aerr != nil {
				// Protocol violation or torn frame: abandon this stream;
				// reconnecting triggers a full resync.
				return
			}
			applied++
			ha.State.setReplicated(rep.Records())
			hm.replicated.Set(int64(applied))
			_ = wc.send(&Message{Type: "replicate-ack", Seq: applied})
		case "stop":
			return // run finished on the primary
		default:
			return
		}
	}
}
