package distrib

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/sat"
	"repro/internal/trace"
	"repro/internal/vc"
	"repro/prog"
)

// Trust-but-verify: a remote verdict is only as trustworthy as the
// evidence shipped with it. Workers attach a Certificate to every
// definite result — the winning partition's satisfying model for UNSAFE
// claims, one RUP refutation proof per partition for SAFE claims — and
// the coordinator re-checks that evidence against its *own* encoding of
// the program before the verdict may touch the run state or the journal.
// The coordinator's encoding is the root of trust: a worker that lies
// about a verdict, ships a bogus model, or fabricates a proof is caught
// at the aggregation point (the only place a single faulty process could
// otherwise invert the global answer) and quarantined as untrusted.

const (
	// maxCertBytes caps one certificate's compressed wire size. A
	// declared size above the cap is rejected before a single frame is
	// read, so a Byzantine worker cannot make the coordinator buffer an
	// arbitrary payload.
	maxCertBytes = 64 << 20 // 64 MiB
	// maxCertDecodedBytes caps the decompressed certificate, defeating
	// gzip bombs: decompression stops at the cap and the certificate is
	// rejected.
	maxCertDecodedBytes = 256 << 20 // 256 MiB
	// certFrameData is the raw payload per "cert" wire frame. JSON
	// base64-expands []byte by 4/3, so 8 MiB of data stays well under
	// the 16 MiB frame cap.
	certFrameData = 8 << 20
)

// errCertificate marks a certificate rejection — evidence that is
// missing, malformed, oversized, or fails verification. It is
// distinguished from transport errors because the response differs:
// a rejected certificate quarantines the worker as untrusted, while a
// transport failure only charges a retryable attempt.
var errCertificate = errors.New("certificate rejected")

// Certify levels requested per job / configured per run.
const (
	// CertifyFull requires proofs for SAFE chunks and a model for UNSAFE.
	CertifyFull = "full"
	// CertifyModel requires only the UNSAFE model (a sampled-out SAFE
	// chunk is accepted uncertified); the cheap half of certification,
	// since the model falls out of the solve for free while proof
	// recording costs memory proportional to the search.
	CertifyModel = "model"
	// CertifyOff disables certification entirely.
	CertifyOff = "off"
)

// CertifyPolicy selects which definite remote verdicts must carry a
// verified certificate. The zero value is full certification — the sound
// default; weaker modes are an explicit opt-out for runs where proof
// traffic dominates.
type CertifyPolicy struct {
	// Mode is CertifyFull, CertifyModel is not a run mode (it only
	// appears on individual jobs under sampling), or CertifyOff.
	Mode string
	// SampleEvery, in sample mode, requires an UNSAT proof on every Nth
	// job (1-based; the first job is always sampled); other jobs carry
	// only the UNSAFE-model obligation. 0 or 1 degenerates to full.
	SampleEvery int
}

// ParseCertifyPolicy parses the -certify flag grammar:
// "full" | "off" | "sample=N".
func ParseCertifyPolicy(s string) (CertifyPolicy, error) {
	switch {
	case s == "" || s == CertifyFull:
		return CertifyPolicy{Mode: CertifyFull}, nil
	case s == CertifyOff:
		return CertifyPolicy{Mode: CertifyOff}, nil
	case len(s) > 7 && s[:7] == "sample=":
		var n int
		if _, err := fmt.Sscanf(s[7:], "%d", &n); err != nil || n < 1 {
			return CertifyPolicy{}, fmt.Errorf("distrib: bad certify sample rate %q", s)
		}
		return CertifyPolicy{Mode: CertifyFull, SampleEvery: n}, nil
	}
	return CertifyPolicy{}, fmt.Errorf("distrib: bad certify mode %q (want full|sample=N|off)", s)
}

// normalize applies the zero-value default (full certification).
func (p CertifyPolicy) normalize() CertifyPolicy {
	if p.Mode == "" {
		p.Mode = CertifyFull
	}
	return p
}

// Enabled reports whether any verification happens at all.
func (p CertifyPolicy) Enabled() bool { return p.normalize().Mode != CertifyOff }

// jobLevel returns the certify level to request for the id-th job
// (1-based): proofs on sampled jobs, model-only otherwise.
func (p CertifyPolicy) jobLevel(id int) string {
	p = p.normalize()
	if p.Mode == CertifyOff {
		return CertifyOff
	}
	if p.SampleEvery > 1 && (id-1)%p.SampleEvery != 0 {
		return CertifyModel
	}
	return CertifyFull
}

func (p CertifyPolicy) String() string {
	p = p.normalize()
	if p.Mode == CertifyFull && p.SampleEvery > 1 {
		return fmt.Sprintf("sample=%d", p.SampleEvery)
	}
	return p.Mode
}

// PartitionProof pairs one partition index with its RUP refutation.
type PartitionProof struct {
	Partition int        `json:"partition"`
	Proof     *sat.Proof `json:"proof"`
}

// Certificate is the independently checkable evidence behind a definite
// remote verdict. It travels gzip-compressed as JSON, split across
// "cert" wire frames after the result frame.
type Certificate struct {
	// NumVars is the variable count of the worker's formula; it must
	// match the coordinator's own encoding or the certificate is
	// rejected without further inspection.
	NumVars int `json:"num_vars,omitempty"`
	// Model is the winning partition's satisfying assignment, bit-packed
	// LSB-first (UNSAFE verdicts).
	Model []byte `json:"model,omitempty"`
	// Proofs carries one refutation per partition of the chunk (SAFE
	// verdicts under full certification).
	Proofs []PartitionProof `json:"proofs,omitempty"`
}

// packBits packs a bool slice LSB-first.
func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// unpackBits reverses packBits for n bits.
func unpackBits(data []byte, n int) ([]bool, error) {
	if n < 0 || len(data) != (n+7)/8 {
		return nil, fmt.Errorf("model is %d bytes, want %d for %d vars", len(data), (n+7)/8, n)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = data[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// encodeCertificate serialises a certificate for the wire: JSON, then
// gzip. A nil certificate encodes to nil (no cert frames follow the
// result).
func encodeCertificate(c *Certificate) ([]byte, error) {
	if c == nil {
		return nil, nil
	}
	body, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeCertificate reverses encodeCertificate, bounding decompression
// at maxCertDecodedBytes so a gzip bomb is rejected, not inflated.
func decodeCertificate(data []byte) (*Certificate, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("certificate gzip: %w", err)
	}
	defer zr.Close()
	body, err := io.ReadAll(io.LimitReader(zr, maxCertDecodedBytes+1))
	if err != nil {
		return nil, fmt.Errorf("certificate gzip: %w", err)
	}
	if len(body) > maxCertDecodedBytes {
		return nil, fmt.Errorf("certificate decompresses past %d bytes", maxCertDecodedBytes)
	}
	var c Certificate
	if err := json.Unmarshal(body, &c); err != nil {
		return nil, fmt.Errorf("certificate json: %w", err)
	}
	return &c, nil
}

// buildCertificate assembles the evidence for one honestly computed job
// result: the raw model for UNSAFE (any certify level above off), the
// per-partition proofs for SAFE (full level only — proof recording was
// enabled on the solve iff the job asked for it).
func buildCertificate(res *core.Result, level string) *Certificate {
	if level == CertifyOff || level == "" {
		return nil
	}
	switch res.Verdict {
	case core.Unsafe:
		return &Certificate{NumVars: len(res.Model), Model: packBits(res.Model)}
	case core.Safe:
		if level != CertifyFull {
			return nil
		}
		c := &Certificate{NumVars: res.Vars}
		for _, inst := range res.Instances {
			if inst.Proof != nil {
				c.Proofs = append(c.Proofs, PartitionProof{Partition: inst.Partition, Proof: inst.Proof})
			}
		}
		return c
	}
	return nil
}

// certVerifier holds the coordinator's own encoding of the program — the
// root of trust every remote certificate is checked against. Workers
// receive only the program source; whatever formula they actually
// solved, their evidence must check out against this encoding or the
// verdict is discarded.
type certVerifier struct {
	enc     *vc.Encoded
	formula *cnf.Formula
	parts   []partition.Partition // indexed by absolute partition index
	// splitLits is the canonical scheduler-bit sequence cube paths index
	// into; both sides derive it deterministically from the encoding, so
	// a sub-cube's extra assumptions are reconstructed here rather than
	// trusted from the wire.
	splitLits []cnf.Lit
}

// newCertVerifier encodes the program exactly as workers are instructed
// to (same bounds, same total partition count, no preprocessing).
func newCertVerifier(p *prog.Program, opts CoordinatorOptions) (*certVerifier, error) {
	copts := core.Options{
		Unwind:     opts.Unwind,
		Contexts:   opts.Contexts,
		Width:      opts.Width,
		Partitions: opts.Partitions,
	}
	enc, _, _, err := core.EncodeProgram(p, copts)
	if err != nil {
		return nil, fmt.Errorf("distrib: certification encoding failed: %w", err)
	}
	parts, total, err := core.MakePartitions(enc, copts)
	if err != nil {
		return nil, fmt.Errorf("distrib: certification partitioning failed: %w", err)
	}
	return &certVerifier{
		enc:       enc,
		formula:   enc.Formula(),
		parts:     parts,
		splitLits: partition.SplitLits(enc, total),
	}, nil
}

// cubeAssumptions returns the partition's assumptions extended with the
// cube path's scheduler-bit literals — the exact assumption set a worker
// solving that sub-cube was instructed to use.
func (v *certVerifier) cubeAssumptions(idx int, path string) ([]cnf.Lit, error) {
	base := v.parts[idx].Assumptions
	if path == "" {
		return base, nil
	}
	extra, err := partition.PathAssumptions(path, v.splitLits)
	if err != nil {
		return nil, err
	}
	return append(append([]cnf.Lit{}, base...), extra...), nil
}

// litHolds evaluates a literal under the solver-convention model
// (model[v-1] is variable v).
func litHolds(l cnf.Lit, model []bool) bool {
	return model[l.Var()-1] != l.Neg()
}

// verifyUnsafe checks an UNSAFE claim end to end: the claimed winner
// lies in the cube, the shipped model satisfies every clause of the
// coordinator's formula plus the winner partition's assumptions
// (extended with the cube path's scheduler bits), and the decoded
// counterexample replays to a real assertion violation on the concrete
// interpreter. A model found under a sub-cube's extra assumptions still
// satisfies the parent formula, so sub-cube verification composes: the
// sub-cube's UNSAFE is the parent's UNSAFE.
func (v *certVerifier) verifyUnsafe(cube partition.Cube, winner int, cert *Certificate) error {
	if cert == nil || len(cert.Model) == 0 {
		return fmt.Errorf("UNSAFE claim without a model certificate")
	}
	if winner < cube.From || winner > cube.To || winner >= len(v.parts) {
		return fmt.Errorf("claimed winner %d outside cube %s", winner, cube.Key())
	}
	if cert.NumVars != v.formula.NumVars {
		return fmt.Errorf("model covers %d vars, coordinator encoding has %d", cert.NumVars, v.formula.NumVars)
	}
	model, err := unpackBits(cert.Model, cert.NumVars)
	if err != nil {
		return err
	}
	for i, c := range v.formula.Clauses {
		satisfied := false
		for _, l := range c {
			if litHolds(l, model) {
				satisfied = true
				break
			}
		}
		if !satisfied {
			return fmt.Errorf("claimed model falsifies clause %d of the coordinator's encoding", i)
		}
	}
	assumps, err := v.cubeAssumptions(winner, cube.Path)
	if err != nil {
		return fmt.Errorf("cube %s: %v", cube.Key(), err)
	}
	for _, l := range assumps {
		if !litHolds(l, model) {
			return fmt.Errorf("claimed model violates cube %s assumption %v", cube.Key(), l)
		}
	}
	tr := trace.Decode(v.enc, model)
	viol, err := trace.Validate(v.enc, tr)
	if err != nil {
		return fmt.Errorf("counterexample replay failed: %v", err)
	}
	if viol == nil {
		return fmt.Errorf("counterexample replay reached no assertion violation")
	}
	return nil
}

// verifySafe checks a SAFE claim: the certificate must refute every
// partition of the cube with a RUP proof that checks against the
// coordinator's formula under that partition's assumptions extended
// with the cube path. Per-sub-cube proofs compose to cover the parent:
// the two children of a split partition the parent's assumption space
// exactly (same literal, both polarities), so refuting both children
// refutes the parent.
func (v *certVerifier) verifySafe(cube partition.Cube, cert *Certificate) error {
	if cert == nil {
		return fmt.Errorf("SAFE claim without a proof certificate")
	}
	if cube.From < 0 || cube.To >= len(v.parts) {
		return fmt.Errorf("cube %s outside the coordinator's %d partitions", cube.Key(), len(v.parts))
	}
	proofs := make(map[int]*sat.Proof, len(cert.Proofs))
	for _, pp := range cert.Proofs {
		if _, dup := proofs[pp.Partition]; dup {
			return fmt.Errorf("duplicate proof for partition %d", pp.Partition)
		}
		proofs[pp.Partition] = pp.Proof
	}
	for idx := cube.From; idx <= cube.To; idx++ {
		proof := proofs[idx]
		if proof == nil {
			return fmt.Errorf("no refutation proof for partition %d", idx)
		}
		assumps, err := v.cubeAssumptions(idx, cube.Path)
		if err != nil {
			return fmt.Errorf("cube %s: %v", cube.Key(), err)
		}
		if err := sat.CheckRUP(v.formula, assumps, proof); err != nil {
			return fmt.Errorf("partition %d (cube %s): %v", idx, cube.Key(), err)
		}
	}
	return nil
}

// verify dispatches on the claimed verdict and reports the verification
// wall time; level is the certify level the job was issued under.
func (v *certVerifier) verify(cube partition.Cube, reply *Message, cert *Certificate, level string) (time.Duration, error) {
	t0 := time.Now()
	var err error
	switch reply.Verdict {
	case core.Unsafe.String():
		err = v.verifyUnsafe(cube, reply.Winner, cert)
	case core.Safe.String():
		if level == CertifyFull {
			err = v.verifySafe(cube, cert)
		}
	}
	return time.Since(t0), err
}
