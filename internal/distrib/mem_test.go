package distrib

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/prog"
)

// memoryWorker is a hand-rolled protocol worker that answers every job
// with UNKNOWN/cause=memory — the wire shape of a worker whose OOM
// watchdog tripped (no coordinator budget) or whose solver exhausted
// its memory budget (budget propagated on the job). It returns the
// MemBudgetMB carried by the first job it saw.
func memoryWorker(t *testing.T, addr, name string, maxJobs int) int64 {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newConn(c, 5*time.Second)
	defer wc.close()
	if err := wc.send(&Message{Type: "hello", WorkerName: name}); err != nil {
		t.Fatal(err)
	}
	if welcome, err := wc.recv(10 * time.Second); err != nil || welcome.Type != "welcome" {
		t.Fatalf("expected welcome, got %v (%v)", welcome, err)
	}
	var budget int64
	for jobs := 0; jobs < maxJobs; {
		m, err := wc.recv(10 * time.Second)
		if err != nil {
			return budget // coordinator closed: run is over
		}
		switch m.Type {
		case "job":
			if jobs == 0 {
				budget = m.MemBudgetMB
			}
			jobs++
			if err := wc.send(&Message{
				Type: "result", JobID: m.JobID,
				Verdict: core.Unknown.String(), Winner: -1,
				Cause: "memory", Millis: 1,
			}); err != nil {
				t.Fatal(err)
			}
		case "stop":
			return budget
		}
	}
	return budget
}

// A "memory" result with no coordinator budget configured is a
// worker-local OOM abort: the chunk is not poison, so it must be
// re-queued (counted, charged to the attempt budget) and decided by a
// worker with headroom — the run still ends definite.
func TestMemoryWatchdogAbortRequeued(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 2, ChunkSize: 1,
	}))
	// One job aborted on memory, then the faker leaves; the healthy
	// worker decides everything, including the re-queued chunk.
	if budget := memoryWorker(t, addr, "oomish", 1); budget != 0 {
		t.Fatalf("job carried memory budget %d, want 0 (none configured)", budget)
	}
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "healthy"})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v, want SAFE", res.Verdict)
	}
	if res.MemoryAborted != 1 {
		t.Fatalf("MemoryAborted %d, want 1", res.MemoryAborted)
	}
	if len(res.Exhausted) != 0 {
		t.Fatalf("watchdog abort treated as terminal exhaustion: %+v", res.Exhausted)
	}
	if res.ChunksDecided != 2 {
		t.Fatalf("decided %d chunks, want 2", res.ChunksDecided)
	}
}

// With a configured memory budget the same wire result is a
// deterministic give-up: terminal, journaled with MemBudgetMB pinned,
// replayed on a same-budget resume, and re-queued (then decided) when a
// resume raises the budget.
func TestMemoryBudgetTerminalAndResume(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 2, ChunkSize: 1,
		MemBudgetMB: 512, JournalPath: path,
	}
	addr, resCh := startCoordinator(t, p, opts)
	if budget := memoryWorker(t, addr, "oomish", 2); budget != 512 {
		t.Fatalf("job carried memory budget %d, want 512", budget)
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Unknown {
		t.Fatalf("verdict %v, want Unknown", res.Verdict)
	}
	if res.MemoryAborted != 2 {
		t.Fatalf("MemoryAborted %d, want 2", res.MemoryAborted)
	}
	if len(res.Exhausted) != 2 {
		t.Fatalf("exhausted %+v, want 2 chunks", res.Exhausted)
	}
	for _, ex := range res.Exhausted {
		if ex.Cause != "memory" {
			t.Fatalf("chunk %v exhausted %q, want memory", ex.Chunk, ex.Cause)
		}
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("budgeted give-up burned the retry budget: %+v", res.Quarantined)
	}
	_, recs, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Cause != "memory" || rec.MemBudgetMB != 512 {
			t.Fatalf("record %+v, want cause memory with MemBudgetMB 512", rec)
		}
	}

	// Same budget: both exhaustions replay, no worker needed.
	opts.Resume = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Coordinate(context.Background(), ln, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != core.Unknown || res2.Resumed != 2 || res2.Jobs != 0 {
		t.Fatalf("same-budget resume: verdict %v resumed %d jobs %d", res2.Verdict, res2.Resumed, res2.Jobs)
	}

	// Raised budget: the journaled give-ups are superseded; a real
	// worker decides both chunks and the run completes.
	raised := opts
	raised.MemBudgetMB = 1024
	addr, resCh = startCoordinator(t, p, raised)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "roomy"})
	}()
	res3 := waitResult(t, resCh)
	if res3.Verdict != core.Safe {
		t.Fatalf("raised-budget resume: verdict %v, want SAFE", res3.Verdict)
	}
	if res3.Resumed != 0 || res3.Jobs != 2 {
		t.Fatalf("raised-budget resume: resumed %d jobs %d, want 0/2", res3.Resumed, res3.Jobs)
	}
}

// Heartbeat memory readings at or over the pause ratio must gate
// dispatch, and the gate must reopen once the pressure reading expires
// (a stale reading from an idle worker can never wedge the run).
func TestDispatchPausesUnderMemoryPressure(t *testing.T) {
	p := prog.MustParse(fibSrc)
	opts := fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 2, ChunkSize: 1,
		MemPauseRatio: 0.9,
	})
	addr, resCh := startCoordinator(t, p, opts)

	// A hand-rolled worker reports a near-OOM heartbeat during its first
	// job, then answers it and goes quiet: the pressure reading expires
	// at HeartbeatGrace and the paused dispatcher releases the second
	// chunk to the healthy worker.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newConn(c, 5*time.Second)
	defer wc.close()
	if err := wc.send(&Message{Type: "hello", WorkerName: "pressured"}); err != nil {
		t.Fatal(err)
	}
	if welcome, err := wc.recv(10 * time.Second); err != nil || welcome.Type != "welcome" {
		t.Fatalf("expected welcome, got %v (%v)", welcome, err)
	}
	job, err := wc.recv(10 * time.Second)
	if err != nil || job.Type != "job" {
		t.Fatalf("expected job, got %v (%v)", job, err)
	}
	if err := wc.send(&Message{
		Type: "heartbeat", JobID: job.JobID,
		MemBytes: 990, MemLimit: 1000, // ratio 0.99 >= 0.9: over pressure
	}); err != nil {
		t.Fatal(err)
	}
	// Give the coordinator a beat to fold the reading in before the
	// result frees the serve loop to dispatch the next chunk.
	time.Sleep(50 * time.Millisecond)
	if err := wc.send(&Message{
		Type: "result", JobID: job.JobID,
		Verdict: core.Safe.String(), Winner: -1, Millis: 1,
	}); err != nil {
		t.Fatal(err)
	}

	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "healthy"})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v, want SAFE", res.Verdict)
	}
	if res.DispatchPaused < 1 {
		t.Fatalf("DispatchPaused %d, want >= 1 (pressure never gated dispatch)", res.DispatchPaused)
	}
}
