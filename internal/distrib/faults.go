package distrib

import "time"

// FaultKind selects the failure a FaultEvent injects.
type FaultKind int

const (
	// FaultDrop closes the connection upon receiving the job, before any
	// result is sent — a worker crashing mid-job.
	FaultDrop FaultKind = iota
	// FaultStall suppresses heartbeats and the result for the event's
	// Stall duration before processing the job — a hung worker. The
	// coordinator's heartbeat monitor should evict the connection well
	// before the job timeout.
	FaultStall
	// FaultCorrupt puts a malformed frame on the wire in place of the
	// result and drops the connection.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// FaultEvent injects one failure when the worker receives its Job-th job
// (zero-based, counted across reconnects).
type FaultEvent struct {
	Job   int
	Kind  FaultKind
	Stall time.Duration // FaultStall only
}

// FaultPlan is a deterministic fault-injection schedule for a worker.
// Given the same plan (and the same job order), a worker fails the same
// way every run; Seed additionally fixes the reconnect-backoff jitter so
// whole churn scenarios replay byte-for-byte. It replaces the old
// single FailAfterJobs knob.
type FaultPlan struct {
	// Seed drives the jittered reconnect backoff (0 is treated as 1).
	Seed int64
	// Events fire by job index; at most one event fires per job (the
	// first match wins).
	Events []FaultEvent
}

// DropAt returns a plan that drops the connection upon receiving each of
// the given job indices — the common "crash mid-job" scenario.
func DropAt(jobs ...int) *FaultPlan {
	p := &FaultPlan{}
	for _, j := range jobs {
		p.Events = append(p.Events, FaultEvent{Job: j, Kind: FaultDrop})
	}
	return p
}

// eventAt returns the event scheduled for the given job index, nil-safe.
func (p *FaultPlan) eventAt(job int) *FaultEvent {
	if p == nil {
		return nil
	}
	for i := range p.Events {
		if p.Events[i].Job == job {
			return &p.Events[i]
		}
	}
	return nil
}

// seed returns the jitter seed, nil-safe and never zero.
func (p *FaultPlan) seed() int64 {
	if p == nil || p.Seed == 0 {
		return 1
	}
	return p.Seed
}
