package distrib

import "time"

// FaultKind selects the failure a FaultEvent injects.
type FaultKind int

const (
	// FaultDrop closes the connection upon receiving the job, before any
	// result is sent — a worker crashing mid-job.
	FaultDrop FaultKind = iota
	// FaultStall suppresses heartbeats and the result for the event's
	// Stall duration before processing the job — a hung worker. The
	// coordinator's heartbeat monitor should evict the connection well
	// before the job timeout.
	FaultStall
	// FaultCorrupt puts a malformed frame on the wire in place of the
	// result and drops the connection.
	FaultCorrupt
	// FaultPanic makes the solver path panic inside the job. The worker's
	// recover boundary must convert it into a structured Error result and
	// keep the process alive.
	FaultPanic
	// FaultHalfOpen simulates a half-open connection: the TCP socket
	// stays up and readable, the job runs, but every outbound message —
	// heartbeats and the result alike — is silently swallowed. Neither
	// endpoint sees a connection error, so only the coordinator's
	// HeartbeatGrace monitor (never a transport failure, and long before
	// JobTimeout) can detect it.
	FaultHalfOpen
	// FaultSlow makes the worker a deterministic straggler: the job
	// sleeps for the event's Slow duration before solving, with
	// heartbeats flowing normally (zero progress, zero hardness) the
	// whole time. Unlike FaultStall the worker is perfectly healthy as
	// far as the liveness monitor can tell — only the adaptive
	// scheduler's split/hedge machinery can route around it. The sleep
	// aborts promptly when the job is cancelled.
	FaultSlow

	// The remaining kinds are Byzantine: the worker completes the job but
	// lies about the outcome. They exercise the coordinator's certificate
	// checking — an uncertified coordinator accepts every one of them.

	// FaultFlipVerdict inverts a definite verdict: SAFE becomes UNSAFE
	// with a fabricated all-zero model, UNSAFE becomes SAFE with no
	// proofs.
	FaultFlipVerdict
	// FaultBogusModel claims UNSAFE with a garbage model regardless of
	// the honest verdict.
	FaultBogusModel
	// FaultTruncatedProof sends only a prefix of the real certificate
	// (declaring the truncated size, so the cut manifests as a corrupt
	// certificate rather than a hung transfer).
	FaultTruncatedProof
	// FaultOversizedProof declares a certificate above the coordinator's
	// size cap and sends nothing.
	FaultOversizedProof
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	case FaultPanic:
		return "panic"
	case FaultHalfOpen:
		return "half-open"
	case FaultSlow:
		return "slow"
	case FaultFlipVerdict:
		return "flip-verdict"
	case FaultBogusModel:
		return "bogus-model"
	case FaultTruncatedProof:
		return "truncated-proof"
	case FaultOversizedProof:
		return "oversized-proof"
	}
	return "unknown"
}

// transport reports whether the kind is injected at the wire level
// (before the job runs) rather than by mutating an honestly computed
// result.
func (k FaultKind) transport() bool {
	switch k {
	case FaultDrop, FaultStall, FaultCorrupt:
		return true
	}
	return false
}

// FaultEvent injects one failure when the worker receives its Job-th job
// (zero-based, counted across reconnects).
type FaultEvent struct {
	Job   int
	Kind  FaultKind
	Stall time.Duration // FaultStall only
	Slow  time.Duration // FaultSlow only
}

// FaultPlan is a deterministic fault-injection schedule for a worker.
// Given the same plan (and the same job order), a worker fails the same
// way every run; Seed additionally fixes the reconnect-backoff jitter so
// whole churn scenarios replay byte-for-byte. It replaces the old
// single FailAfterJobs knob.
type FaultPlan struct {
	// Seed drives the jittered reconnect backoff (0 is treated as 1).
	Seed int64
	// Events fire by job index; at most one event fires per job (the
	// first match wins).
	Events []FaultEvent
	// Every, when non-nil, fires on every job that has no indexed
	// event — e.g. a worker that is uniformly slow.
	Every *FaultEvent
}

// SlowAt returns a plan that delays each of the given job indices by d
// before solving; with no indices the worker is uniformly slow.
func SlowAt(d time.Duration, jobs ...int) *FaultPlan {
	p := &FaultPlan{}
	if len(jobs) == 0 {
		p.Every = &FaultEvent{Kind: FaultSlow, Slow: d}
		return p
	}
	for _, j := range jobs {
		p.Events = append(p.Events, FaultEvent{Job: j, Kind: FaultSlow, Slow: d})
	}
	return p
}

// DropAt returns a plan that drops the connection upon receiving each of
// the given job indices — the common "crash mid-job" scenario.
func DropAt(jobs ...int) *FaultPlan {
	p := &FaultPlan{}
	for _, j := range jobs {
		p.Events = append(p.Events, FaultEvent{Job: j, Kind: FaultDrop})
	}
	return p
}

// eventAt returns the event scheduled for the given job index, nil-safe.
func (p *FaultPlan) eventAt(job int) *FaultEvent {
	if p == nil {
		return nil
	}
	for i := range p.Events {
		if p.Events[i].Job == job {
			return &p.Events[i]
		}
	}
	return p.Every
}

// seed returns the jitter seed, nil-safe and never zero.
func (p *FaultPlan) seed() int64 {
	if p == nil || p.Seed == 0 {
		return 1
	}
	return p.Seed
}

// CoordinatorFaultPlan injects primary-side failures, the counterpart
// of the worker's FaultPlan for failover testing.
type CoordinatorFaultPlan struct {
	// KillAfterJobs, when > 0, halts the coordinator abruptly after
	// that many chunk verdicts have been committed: the listener and
	// every worker connection are torn down with no stop messages, no
	// journal close, and — critically — no lease release, exactly the
	// wreckage a SIGKILL leaves. Coordinate returns ErrPrimaryKilled.
	KillAfterJobs int
}

// killAt reports whether the plan kills the primary once n chunk
// verdicts are committed, nil-safe.
func (p *CoordinatorFaultPlan) killAt(n int) bool {
	return p != nil && p.KillAfterJobs > 0 && n >= p.KillAfterJobs
}
