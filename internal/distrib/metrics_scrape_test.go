package distrib

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/prog"
)

// scrape fetches /metrics from the observability mux.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue finds the first sample for name (exact match before the
// space or '{') in a text exposition body; ok reports whether it exists.
func metricValue(body, name string) (float64, bool) {
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		rest, found := strings.CutPrefix(line, name)
		if !found || (!strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{")) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// TestDistributedMetricsScrape runs a live distributed analysis with the
// coordinator's metrics registry mounted on an HTTP mux, scrapes
// /metrics while workers are solving, and checks that chunk/worker
// gauges move and that remote sat.Stats are aggregated into both the
// exposition and the CoordinatorResult.
func TestDistributedMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	health := NewHealthRegistry()
	srv := httptest.NewServer(obs.NewMux(obs.MuxOptions{
		Registry: reg,
		Health:   func() any { return health.Snapshot() },
	}))
	defer srv.Close()

	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		Metrics: reg,
		Health:  health,
	})

	// Gauges are primed before any worker joins.
	body := scrape(t, srv.URL)
	if v, ok := metricValue(body, "parbmc_coordinator_chunks_total"); !ok || v != 4 {
		t.Fatalf("chunks_total before workers: got %v (present %v)\n%s", v, ok, body)
	}
	if v, ok := metricValue(body, "parbmc_coordinator_workers_active"); !ok || v != 0 {
		t.Fatalf("workers_active before workers: got %v (present %v)", v, ok)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := Work(context.Background(), addr, WorkerOptions{Name: "scraped", Cores: 1})
		if err != nil {
			t.Errorf("worker: %v", err)
		}
	}()

	// Scrape concurrently with the run: the worker stays connected for
	// all four jobs, so polling must observe the active-worker gauge.
	var sawActiveWorker bool
	var res *CoordinatorResult
poll:
	for {
		select {
		case res = <-resCh:
			break poll
		default:
			if v, ok := metricValue(scrape(t, srv.URL), "parbmc_coordinator_workers_active"); ok && v > 0 {
				sawActiveWorker = true
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if !sawActiveWorker {
		t.Error("never observed parbmc_coordinator_workers_active > 0 during the run")
	}

	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	// Remote search statistics made it back through the protocol.
	// (Decisions may legitimately be 0: these partitions refute by pure
	// propagation, so propagations is the counter guaranteed to move.)
	if res.RemoteStats.Propagations == 0 {
		t.Fatalf("no remote propagations aggregated: %+v", res.RemoteStats)
	}
	if res.SolveMillis < 0 {
		t.Fatalf("negative remote solve time: %d", res.SolveMillis)
	}

	// Final exposition: jobs counted, chunks drained, remote counters
	// match the aggregated result, per-worker series labeled.
	body = scrape(t, srv.URL)
	if v, ok := metricValue(body, "parbmc_coordinator_jobs_total"); !ok || v != float64(res.Jobs) {
		t.Fatalf("jobs_total: got %v (present %v), want %d", v, ok, res.Jobs)
	}
	if v, ok := metricValue(body, "parbmc_coordinator_chunks_remaining"); !ok || v != 0 {
		t.Fatalf("chunks_remaining after safe run: got %v (present %v)", v, ok)
	}
	if v, ok := metricValue(body, "parbmc_remote_propagations_total"); !ok || v != float64(res.RemoteStats.Propagations) {
		t.Fatalf("remote propagations: exposition %v (present %v) vs result %d",
			v, ok, res.RemoteStats.Propagations)
	}
	if v, ok := metricValue(body, "parbmc_remote_decisions_total"); !ok || v != float64(res.RemoteStats.Decisions) {
		t.Fatalf("remote decisions: exposition %v (present %v) vs result %d",
			v, ok, res.RemoteStats.Decisions)
	}
	if !strings.Contains(body, `parbmc_worker_jobs_total{worker="scraped"} 4`) {
		t.Fatalf("per-worker job series missing:\n%s", body)
	}
	if v, ok := metricValue(body, "parbmc_coordinator_job_solve_seconds_count"); !ok || v != float64(res.Jobs) {
		t.Fatalf("solve histogram count: got %v (present %v), want %d", v, ok, res.Jobs)
	}
	// The pre-observatory name survives as a deprecated alias for one
	// release, observed in lockstep with the canonical histogram.
	if v, ok := metricValue(body, "parbmc_job_solve_seconds_count"); !ok || v != float64(res.Jobs) {
		t.Fatalf("deprecated solve histogram alias: got %v (present %v), want %d", v, ok, res.Jobs)
	}
	if v, ok := metricValue(body, "parbmc_partition_solve_seconds_count"); !ok || v <= 0 {
		t.Fatalf("per-partition solve histogram: got %v (present %v)", v, ok)
	}

	// /healthz reflects the shared health registry.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(hb), `"scraped"`) {
		t.Fatalf("healthz missing worker snapshot:\n%s", hb)
	}
}

// TestPartitionHardnessExported runs a live 2-worker distributed
// analysis and asserts the performance observatory's per-partition
// signals land in the exposition: a parbmc_partition_hardness gauge for
// every partition (set live from heartbeats and re-set from final
// results, so even partitions solved between heartbeats report one),
// plus the LBD distribution and learnt-DB churn counters aggregated
// from remote job results.
func TestPartitionHardnessExported(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.NewMux(obs.MuxOptions{Registry: reg}))
	defer srv.Close()

	p := prog.MustParse(fibSrc)
	const partitions = 4
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: partitions, ChunkSize: 1,
		Metrics: reg,
	})
	var wg sync.WaitGroup
	for _, name := range []string{"hw0", "hw1"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := Work(context.Background(), addr, WorkerOptions{Name: name, Cores: 1}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}
	res := waitResult(t, resCh)
	wg.Wait()
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}

	body := scrape(t, srv.URL)
	for part := 0; part < partitions; part++ {
		series := `parbmc_partition_hardness{partition="` + strconv.Itoa(part) + `"}`
		if !strings.Contains(body, series) {
			t.Errorf("missing %s in exposition", series)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", body)
	}
	// The solver-introspection aggregates travel with job results: every
	// learnt clause lands in exactly one LBD bucket.
	var lbdTotal float64
	for _, s := range reg.Samples("parbmc_lbd_bucket") {
		lbdTotal += s.Value
	}
	if lbdTotal != float64(res.RemoteStats.Learnt) {
		t.Errorf("lbd buckets sum to %v, want %d learnt", lbdTotal, res.RemoteStats.Learnt)
	}
	if v, ok := metricValue(body, "parbmc_remote_learnt_total"); !ok || v != float64(res.RemoteStats.Learnt) {
		t.Errorf("remote learnt: exposition %v (present %v) vs result %d", v, ok, res.RemoteStats.Learnt)
	}
}

// TestRemoteStatsOverProtocol pins that job results carry sat.Stats and
// solve wall time without any metrics registry attached.
func TestRemoteStatsOverProtocol(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 4, Partitions: 4, ChunkSize: 2,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w", Cores: 1})
	}()
	res := waitResult(t, resCh)
	wg.Wait()
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.RemoteStats.Propagations == 0 {
		t.Fatalf("no remote stats over protocol: %+v", res.RemoteStats)
	}
}
