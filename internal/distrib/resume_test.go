package distrib

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/prog"
)

// The kill-and-resume scenario, in-process: the first coordinator loses
// its only worker after two committed chunks and drains out; a second
// coordinator resuming the same journal replays those two verdicts and
// hands out only the remaining chunks. A third, with everything
// committed, decides the run from the journal alone — no workers at all.
func TestDistributedJournalResume(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		JournalPath: path,
	})
	opts.DrainTimeout = 200 * time.Millisecond

	// Run 1: worker completes jobs 0 and 1, dies on job 2, never returns.
	addr, resCh := startCoordinator(t, p, opts)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{
			Name: "mortal", Faults: DropAt(2),
		})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Unknown || !res.Drained {
		t.Fatalf("first run: verdict %v drained %v", res.Verdict, res.Drained)
	}
	if res.Jobs != 2 {
		t.Fatalf("first run completed %d jobs, want 2", res.Jobs)
	}
	_, recs, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records after the crash, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Verdict != core.Safe.String() {
			t.Fatalf("record %+v, want SAFE", rec)
		}
	}

	// Run 2: resume with a healthy worker. Only the two uncommitted
	// chunks may be re-solved.
	opts.Resume = true
	addr, resCh = startCoordinator(t, p, opts)
	workerJobs := make(chan int, 1)
	go func() {
		n, _ := Work(context.Background(), addr, WorkerOptions{Name: "healthy"})
		workerJobs <- n
	}()
	res2 := waitResult(t, resCh)
	if res2.Verdict != core.Safe {
		t.Fatalf("resumed run: verdict %v", res2.Verdict)
	}
	if res2.Resumed != 2 {
		t.Fatalf("resumed run replayed %d chunks, want 2", res2.Resumed)
	}
	if res2.Jobs != 2 {
		t.Fatalf("resumed run solved %d jobs, want 2 (committed chunks re-solved?)", res2.Jobs)
	}
	if n := <-workerJobs; n != 2 {
		t.Fatalf("worker ran %d jobs on resume, want 2", n)
	}
	if res2.ChunksTotal != 4 || res2.ChunksDecided != 4 {
		t.Fatalf("coverage %d/%d, want 4/4", res2.ChunksDecided, res2.ChunksTotal)
	}

	// Run 3: the journal is complete; the verdict needs no workers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Coordinate(context.Background(), ln, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Verdict != core.Safe || res3.Resumed != 4 || res3.Jobs != 0 {
		t.Fatalf("journal-only run: verdict %v resumed %d jobs %d", res3.Verdict, res3.Resumed, res3.Jobs)
	}
}

// An UNSAFE verdict is committed before the stop broadcast, so a resume
// replays straight to the counterexample without re-solving anything.
func TestDistributedJournalResumeUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := CoordinatorOptions{
		Unwind: 1, Contexts: 4, Partitions: 8, ChunkSize: 2,
		JournalPath: path,
	}
	addr, resCh := startCoordinator(t, p, opts)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w"})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Unsafe {
		t.Fatalf("first run: verdict %v", res.Verdict)
	}

	opts.Resume = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Coordinate(context.Background(), ln, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != core.Unsafe || res2.Winner != res.Winner {
		t.Fatalf("resumed run: verdict %v winner %d, want UNSAFE winner %d",
			res2.Verdict, res2.Winner, res.Winner)
	}
	if res2.Jobs != 0 {
		t.Fatalf("resumed run re-solved %d jobs", res2.Jobs)
	}
}

// Reusing a journal path without Resume, or resuming under different
// bounds, is refused before any worker sees a job.
func TestDistributedJournalMismatchRejected(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	opts := CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
		JournalPath: path,
	}
	// Seed the journal with a complete healthy run.
	addr, resCh := startCoordinator(t, p, opts)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w"})
	}()
	if res := waitResult(t, resCh); res.Verdict != core.Safe {
		t.Fatalf("seed run: verdict %v", res.Verdict)
	}

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if _, err := Coordinate(context.Background(), ln2, p, opts); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("err %v, want refusal without Resume", err)
	}

	mism := opts
	mism.Resume = true
	mism.Contexts = 4
	if _, err := Coordinate(context.Background(), ln2, p, mism); !errors.Is(err, journal.ErrManifestMismatch) {
		t.Fatalf("err %v, want ErrManifestMismatch", err)
	}
}

// A poison chunk under a per-chunk conflict budget: the worker returns
// a budgeted Unknown, the coordinator journals it and treats it as
// terminal — no retry burn, verdict Unknown with the chunk and budget
// named — and a resume replays the exhaustion instead of retrying it.
func TestDistributedBudgetExhaustedChunks(t *testing.T) {
	p := prog.MustParse(fibSrc)
	path := filepath.Join(t.TempDir(), "run.wal")
	// At unwind 2 / contexts 3, partitions 0 and 1 need real search and
	// partitions 2 and 3 refute by propagation alone, so a 1-conflict
	// budget exhausts exactly two of the four single-partition chunks.
	opts := CoordinatorOptions{
		Unwind: 2, Contexts: 3, Partitions: 4, ChunkSize: 1,
		ChunkConflicts: 1, JournalPath: path,
	}
	addr, resCh := startCoordinator(t, p, opts)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w"})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Unknown {
		t.Fatalf("verdict %v, want Unknown", res.Verdict)
	}
	if len(res.Exhausted) != 2 {
		t.Fatalf("exhausted %+v, want 2 chunks", res.Exhausted)
	}
	for _, ex := range res.Exhausted {
		if ex.Cause != "conflict-budget" {
			t.Fatalf("chunk %v exhausted %q, want conflict-budget", ex.Chunk, ex.Cause)
		}
	}
	if res.ChunksDecided != 2 || res.ChunksTotal != 4 {
		t.Fatalf("coverage %d/%d, want 2/4", res.ChunksDecided, res.ChunksTotal)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("budget exhaustion burned the retry budget: %+v", res.Quarantined)
	}
	for ch, n := range res.Attempts {
		if n != 1 {
			t.Fatalf("chunk %v took %d attempts, want 1", ch, n)
		}
	}

	// Resume under the same budget: all four chunks (two SAFE, two
	// exhausted) replay from the journal; the poison chunks are not
	// retried.
	opts.Resume = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Coordinate(context.Background(), ln, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != core.Unknown || res2.Resumed != 4 || res2.Jobs != 0 {
		t.Fatalf("resumed run: verdict %v resumed %d jobs %d", res2.Verdict, res2.Resumed, res2.Jobs)
	}
	if len(res2.Exhausted) != 2 {
		t.Fatalf("resumed exhausted %+v, want 2 chunks", res2.Exhausted)
	}

	// Resume with the conflict budget lifted: the journaled exhaustions
	// are superseded — the two poison chunks are re-queued to a worker
	// and decide, completing the run the old budget starved.
	raised := opts
	raised.ChunkConflicts = 0
	addr, resCh = startCoordinator(t, p, raised)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w2"})
	}()
	res3 := waitResult(t, resCh)
	if res3.Verdict != core.Safe {
		t.Fatalf("lifted-budget resume: verdict %v, want SAFE", res3.Verdict)
	}
	if res3.Resumed != 2 || res3.Jobs != 2 {
		t.Fatalf("lifted-budget resume: resumed %d jobs %d, want 2/2", res3.Resumed, res3.Jobs)
	}
	if len(res3.Exhausted) != 0 {
		t.Fatalf("lifted-budget resume still exhausted: %+v", res3.Exhausted)
	}
	if res3.ChunksDecided != 4 || res3.ChunksTotal != 4 {
		t.Fatalf("lifted-budget coverage %d/%d, want 4/4", res3.ChunksDecided, res3.ChunksTotal)
	}
}
