package distrib

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/prog"
)

const fibSrc = `
int i, j;
void t1() {
  int k = 0;
  while (k < 1) { i = i + j; k = k + 1; }
}
void t2() {
  int k = 0;
  while (k < 1) { j = j + i; k = k + 1; }
}
void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 3);
  assert(i < 3);
}
`

func TestSimulateClusterUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := SimulateCluster(context.Background(), p,
		core.Options{Unwind: 1, Contexts: 4}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.MaxChunkTime == 0 {
		t.Fatal("no chunk time recorded")
	}
}

func TestSimulateClusterSafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := SimulateCluster(context.Background(), p,
		core.Options{Unwind: 1, Contexts: 3}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Chunks) != 2 {
		t.Fatalf("chunks: %d", len(res.Chunks))
	}
	for _, ch := range res.Chunks {
		if ch.Verdict != core.Safe {
			t.Fatalf("chunk %v: %v", ch.Chunk, ch.Verdict)
		}
	}
}

func startCoordinator(t *testing.T, p *prog.Program, opts CoordinatorOptions) (string, <-chan *CoordinatorResult) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan *CoordinatorResult, 1)
	go func() {
		res, err := Coordinate(context.Background(), ln, p, opts)
		if err != nil {
			t.Errorf("coordinator: %v", err)
		}
		ch <- res
	}()
	return ln.Addr().String(), ch
}

// fastFailureOpts are coordinator knobs scaled down so churn scenarios
// resolve in milliseconds rather than minutes.
func fastFailureOpts(opts CoordinatorOptions) CoordinatorOptions {
	opts.HeartbeatInterval = 50 * time.Millisecond
	opts.HeartbeatGrace = 250 * time.Millisecond
	opts.DrainTimeout = 2 * time.Second
	return opts
}

func waitResult(t *testing.T, resCh <-chan *CoordinatorResult) *CoordinatorResult {
	t.Helper()
	select {
	case res := <-resCh:
		return res
	case <-time.After(90 * time.Second):
		t.Fatal("distributed run did not finish")
		return nil
	}
}

func TestDistributedUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 4, Partitions: 8, ChunkSize: 2,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w", Cores: 1})
		}(i)
	}
	res := waitResult(t, resCh)
	wg.Wait()
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Winner < 0 || res.Winner >= 8 {
		t.Fatalf("winner %d", res.Winner)
	}
}

func TestDistributedSafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	})
	var jobs int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := Work(context.Background(), addr, WorkerOptions{Name: "w" + string(rune('0'+i)), Cores: 1})
			if err != nil {
				t.Errorf("worker: %v", err)
			}
			mu.Lock()
			jobs += n
			mu.Unlock()
		}(i)
	}
	res := waitResult(t, resCh)
	wg.Wait()
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if jobs != 4 {
		t.Fatalf("jobs completed: %d, want 4", jobs)
	}
	if res.Jobs != 4 {
		t.Fatalf("coordinator jobs: %d", res.Jobs)
	}
	var healthJobs int
	for _, w := range res.Workers {
		healthJobs += w.Jobs
	}
	if len(res.Workers) != 2 || healthJobs != 4 {
		t.Fatalf("worker health %+v, want 2 workers with 4 jobs total", res.Workers)
	}
	for _, n := range res.Attempts {
		if n != 1 {
			t.Fatalf("attempts %v, want 1 per chunk", res.Attempts)
		}
	}
}

// Mid-job drop: the worker crashes on receiving its second job, then
// reconnects with backoff and picks the abandoned chunk back up — the
// whole run is served by one (reconnecting) worker.
func TestDistributedDropMidJobReconnect(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	}))
	done := make(chan error, 1)
	go func() {
		_, err := Work(context.Background(), addr, WorkerOptions{
			Name:             "churny",
			Faults:           &FaultPlan{Seed: 7, Events: []FaultEvent{{Job: 1, Kind: FaultDrop}}},
			MaxReconnects:    5,
			ReconnectBackoff: 20 * time.Millisecond,
		})
		done <- err
	}()
	res := waitResult(t, resCh)
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Reassigned < 1 {
		t.Fatalf("reassigned %d, want >= 1", res.Reassigned)
	}
	if len(res.Workers) != 1 || res.Workers[0].Connections < 2 {
		t.Fatalf("worker health %+v, want one worker with >= 2 connections", res.Workers)
	}
	if res.Workers[0].Failures < 1 {
		t.Fatalf("worker health %+v, want >= 1 recorded failure", res.Workers)
	}
}

// Stalled worker: one worker goes silent (no heartbeats, no result) far
// longer than the heartbeat grace but far shorter than the 10-minute
// JobTimeout. The run only finishes promptly if the heartbeat monitor —
// not the job timeout — evicts the stalled connection.
func TestDistributedStalledWorkerCaughtByHeartbeat(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_, _ = Work(ctx, addr, WorkerOptions{
			Name:   "staller",
			Faults: &FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultStall, Stall: 20 * time.Second}}},
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the staller claim a chunk first
	go func() {
		_, _ = Work(ctx, addr, WorkerOptions{Name: "healthy"})
	}()
	start := time.Now()
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("run took %v: stalled worker was not evicted by heartbeat", elapsed)
	}
	if res.Reassigned < 1 {
		t.Fatalf("reassigned %d, want >= 1", res.Reassigned)
	}
	for _, w := range res.Workers {
		if w.Name == "staller" && w.Failures < 1 {
			t.Fatalf("staller health %+v, want a recorded failure", w)
		}
	}
}

// Corrupt frame: the worker answers its first job with a malformed
// line; the coordinator must fail the attempt and let a healthy worker
// finish the run.
func TestDistributedCorruptFrameReassigned(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	}))
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{
			Name:   "corruptor",
			Faults: &FaultPlan{Events: []FaultEvent{{Job: 0, Kind: FaultCorrupt}}},
		})
	}()
	time.Sleep(50 * time.Millisecond)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "healthy"})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Reassigned < 1 {
		t.Fatalf("reassigned %d, want >= 1", res.Reassigned)
	}
}

// Failure before hello: peers that connect and send garbage (or nothing
// at all) must not disturb the run or the health registry.
func TestDistributedFailureBeforeHello(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	}))
	// One peer sends a non-hello line, one disconnects silently.
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("not json\n")); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "healthy"})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Workers) != 1 {
		t.Fatalf("worker health %+v, want only the real worker", res.Workers)
	}
	if res.Reassigned != 0 {
		t.Fatalf("reassigned %d, want 0", res.Reassigned)
	}
}

// Stale result: a worker replying with the wrong JobID must not have its
// answer credited to the outstanding chunk.
func TestDistributedStaleResultRejected(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	}))
	// A hand-rolled worker: hello, take a job, answer Safe under a bogus
	// JobID. If the coordinator accepted it, the chunk would (wrongly)
	// count as refuted.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newConn(c, 5*time.Second)
	if err := wc.send(&Message{Type: "hello", WorkerName: "liar"}); err != nil {
		t.Fatal(err)
	}
	welcome, err := wc.recv(10 * time.Second)
	if err != nil || welcome.Type != "welcome" {
		t.Fatalf("expected welcome, got %v (%v)", welcome, err)
	}
	job, err := wc.recv(10 * time.Second)
	if err != nil || job.Type != "job" {
		t.Fatalf("expected job, got %v (%v)", job, err)
	}
	if err := wc.send(&Message{Type: "result", JobID: job.JobID + 1000, Verdict: core.Safe.String(), Winner: -1}); err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Name: "healthy"})
	}()
	res := waitResult(t, resCh)
	wc.close()
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Jobs != 4 {
		t.Fatalf("coordinator jobs %d, want 4 (stale result must not be credited)", res.Jobs)
	}
	if res.Reassigned < 1 {
		t.Fatalf("reassigned %d, want >= 1", res.Reassigned)
	}
	for _, w := range res.Workers {
		if w.Name == "liar" && w.Failures < 1 {
			t.Fatalf("liar health %+v, want a recorded failure", w)
		}
	}
}

// Poison-chunk / total-churn scenario (the acceptance criterion): every
// job attempt is killed mid-job, so every chunk hits its attempt budget.
// The run must terminate with a clean Unknown and a populated failure
// log — never a hang or an unbounded reassignment loop.
func TestDistributedPoisonChunksQuarantined(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 2, ChunkSize: 1,
		MaxAttempts: 2,
	}))
	// The worker drops on every job it ever receives, reconnecting each
	// time: 2 chunks x 2 attempts = 4 drops before everything is
	// quarantined.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Work(context.Background(), addr, WorkerOptions{
			Name:             "killer",
			Faults:           DropAt(0, 1, 2, 3, 4, 5, 6, 7),
			MaxReconnects:    6,
			ReconnectBackoff: 10 * time.Millisecond,
		})
	}()
	res := waitResult(t, resCh)
	<-done
	if res.Verdict != core.Unknown {
		t.Fatalf("verdict %v, want Unknown", res.Verdict)
	}
	if len(res.Quarantined) != 2 {
		t.Fatalf("failure log %+v, want 2 quarantined chunks", res.Quarantined)
	}
	for _, q := range res.Quarantined {
		if q.Attempts != 2 {
			t.Fatalf("chunk %v quarantined after %d attempts, want 2", q.Chunk, q.Attempts)
		}
		if len(q.Errors) != 2 {
			t.Fatalf("chunk %v has %d error entries, want 2", q.Chunk, len(q.Errors))
		}
		for _, e := range q.Errors {
			if !strings.Contains(e, "killer") {
				t.Fatalf("failure reason %q does not name the worker", e)
			}
		}
	}
	if res.Jobs != 0 {
		t.Fatalf("jobs %d, want 0", res.Jobs)
	}
}

// Drained workers: the only worker completes one job and dies without
// reconnecting. The old coordinator would block on Accept until ctx
// cancellation; now it must return Unknown once DrainTimeout elapses.
func TestDistributedDrainedWorkersReturnUnknown(t *testing.T) {
	p := prog.MustParse(fibSrc)
	opts := fastFailureOpts(CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	})
	opts.DrainTimeout = 200 * time.Millisecond
	addr, resCh := startCoordinator(t, p, opts)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{
			Name:   "quitter",
			Faults: DropAt(1),
		})
	}()
	res := waitResult(t, resCh)
	if res.Verdict != core.Unknown {
		t.Fatalf("verdict %v, want Unknown", res.Verdict)
	}
	if !res.Drained {
		t.Fatal("result not marked drained")
	}
	if res.Jobs != 1 {
		t.Fatalf("jobs %d, want 1", res.Jobs)
	}
}

// A worker that can never reach the coordinator must give up after its
// reconnect budget instead of retrying forever.
func TestWorkerReconnectGivesUp(t *testing.T) {
	start := time.Now()
	_, err := Work(context.Background(), "127.0.0.1:1", WorkerOptions{
		MaxReconnects:    2,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected error after exhausting reconnect budget")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("error %v, want reconnect give-up", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("reconnect loop ran too long")
	}
}

func TestFrameSizeCap(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		line := make([]byte, 10*1024)
		for i := range line {
			line[i] = 'x'
		}
		line[len(line)-1] = '\n'
		_, _ = b.Write(line)
	}()
	wc := newConn(a, time.Second)
	wc.maxFrame = 4096
	_, err := wc.recv(5 * time.Second)
	if err == nil || !strings.Contains(err.Error(), "frame exceeds") {
		t.Fatalf("err %v, want frame-size error", err)
	}
}

func TestDistributedBenchmarkProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	b := bench.BoundedbufferBench()
	addr, resCh := startCoordinator(t, b.Program, CoordinatorOptions{
		Unwind: 2, Contexts: 6, Partitions: 8, ChunkSize: 4,
	})
	for i := 0; i < 2; i++ {
		go func() { _, _ = Work(context.Background(), addr, WorkerOptions{Cores: 2}) }()
	}
	res := waitResult(t, resCh)
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestWorkerDialError(t *testing.T) {
	_, err := Work(context.Background(), "127.0.0.1:1", WorkerOptions{})
	if err == nil {
		t.Fatal("expected dial error")
	}
}
