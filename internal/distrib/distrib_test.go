package distrib

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/prog"
)

const fibSrc = `
int i, j;
void t1() {
  int k = 0;
  while (k < 1) { i = i + j; k = k + 1; }
}
void t2() {
  int k = 0;
  while (k < 1) { j = j + i; k = k + 1; }
}
void main() {
  int tid1, tid2;
  i = 1;
  j = 1;
  tid1 = create(t1);
  tid2 = create(t2);
  join(tid1);
  join(tid2);
  assert(j < 3);
  assert(i < 3);
}
`

func TestSimulateClusterUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := SimulateCluster(context.Background(), p,
		core.Options{Unwind: 1, Contexts: 4}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.MaxChunkTime == 0 {
		t.Fatal("no chunk time recorded")
	}
}

func TestSimulateClusterSafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	res, err := SimulateCluster(context.Background(), p,
		core.Options{Unwind: 1, Contexts: 3}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Chunks) != 2 {
		t.Fatalf("chunks: %d", len(res.Chunks))
	}
	for _, ch := range res.Chunks {
		if ch.Verdict != core.Safe {
			t.Fatalf("chunk %v: %v", ch.Chunk, ch.Verdict)
		}
	}
}

func startCoordinator(t *testing.T, p *prog.Program, opts CoordinatorOptions) (string, <-chan *CoordinatorResult) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan *CoordinatorResult, 1)
	go func() {
		res, err := Coordinate(context.Background(), ln, p, opts)
		if err != nil {
			t.Errorf("coordinator: %v", err)
		}
		ch <- res
	}()
	return ln.Addr().String(), ch
}

func TestDistributedUnsafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 4, Partitions: 8, ChunkSize: 2,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = Work(context.Background(), addr, WorkerOptions{Name: "w", Cores: 1})
		}(i)
	}
	res := <-resCh
	wg.Wait()
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Winner < 0 || res.Winner >= 8 {
		t.Fatalf("winner %d", res.Winner)
	}
}

func TestDistributedSafe(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	})
	var jobs int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := Work(context.Background(), addr, WorkerOptions{Cores: 1})
			if err != nil {
				t.Errorf("worker: %v", err)
			}
			mu.Lock()
			jobs += n
			mu.Unlock()
		}()
	}
	res := <-resCh
	wg.Wait()
	if res.Verdict != core.Safe {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if jobs != 4 {
		t.Fatalf("jobs completed: %d, want 4", jobs)
	}
	if res.Jobs != 4 {
		t.Fatalf("coordinator jobs: %d", res.Jobs)
	}
}

func TestDistributedWorkerFailureReassigned(t *testing.T) {
	p := prog.MustParse(fibSrc)
	addr, resCh := startCoordinator(t, p, CoordinatorOptions{
		Unwind: 1, Contexts: 3, Partitions: 4, ChunkSize: 1,
	})
	// The first worker dies after one job; a healthy worker joins later
	// and must pick up the abandoned chunks.
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{FailAfterJobs: 1, Cores: 1})
	}()
	time.Sleep(50 * time.Millisecond)
	go func() {
		_, _ = Work(context.Background(), addr, WorkerOptions{Cores: 1})
	}()
	select {
	case res := <-resCh:
		if res.Verdict != core.Safe {
			t.Fatalf("verdict %v", res.Verdict)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("distributed run did not finish after worker failure")
	}
}

func TestDistributedBenchmarkProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	b := bench.BoundedbufferBench()
	addr, resCh := startCoordinator(t, b.Program, CoordinatorOptions{
		Unwind: 2, Contexts: 6, Partitions: 8, ChunkSize: 4,
	})
	for i := 0; i < 2; i++ {
		go func() { _, _ = Work(context.Background(), addr, WorkerOptions{Cores: 2}) }()
	}
	res := <-resCh
	if res.Verdict != core.Unsafe {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestWorkerDialError(t *testing.T) {
	_, err := Work(context.Background(), "127.0.0.1:1", WorkerOptions{})
	if err == nil {
		t.Fatal("expected dial error")
	}
}
