package distrib

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/prog"
)

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Cores is the number of solver instances per job (default 1).
	Cores int
	// FailAfterJobs, when > 0, makes the worker drop the connection
	// after completing that many jobs (failure injection for tests).
	FailAfterJobs int
}

// Work connects to the coordinator at addr and processes jobs until the
// coordinator sends stop, the connection closes, or ctx is cancelled.
// It returns the number of jobs completed.
func Work(ctx context.Context, addr string, opts WorkerOptions) (int, error) {
	if opts.Cores == 0 {
		opts.Cores = 1
	}
	d := net.Dialer{Timeout: 10 * time.Second}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("distrib: worker dial: %w", err)
	}
	wc := newConn(c, 30*time.Second)
	defer wc.close()

	// Cancellation: closing the connection unblocks recv.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			wc.close()
		case <-stop:
		}
	}()

	if err := wc.send(&Message{Type: "hello", WorkerName: opts.Name, Cores: opts.Cores}); err != nil {
		return 0, err
	}
	jobs := 0
	for {
		m, err := wc.recv(0)
		if err != nil {
			if ctx.Err() != nil {
				return jobs, ctx.Err()
			}
			return jobs, err
		}
		switch m.Type {
		case "stop":
			return jobs, nil
		case "job":
			if opts.FailAfterJobs > 0 && jobs >= opts.FailAfterJobs {
				return jobs, fmt.Errorf("distrib: injected worker failure")
			}
			reply := runJob(ctx, m, opts.Cores)
			if err := wc.send(reply); err != nil {
				return jobs, err
			}
			jobs++
		default:
			return jobs, fmt.Errorf("distrib: unexpected message %q", m.Type)
		}
	}
}

func runJob(ctx context.Context, m *Message, cores int) *Message {
	reply := &Message{Type: "result", JobID: m.JobID, Winner: -1}
	p, err := prog.Parse(m.Source)
	if err != nil {
		reply.Error = err.Error()
		return reply
	}
	start := time.Now()
	res, err := core.Verify(ctx, p, core.Options{
		Unwind:     m.Unwind,
		Contexts:   m.Contexts,
		Width:      m.Width,
		Cores:      cores,
		Partitions: m.Partitions,
		From:       m.From,
		To:         m.To + 1,
	})
	reply.Millis = time.Since(start).Milliseconds()
	if err != nil {
		reply.Error = err.Error()
		return reply
	}
	reply.Verdict = res.Verdict.String()
	if res.Verdict == core.Unsafe {
		// res.Winner is the absolute partition index (the partition list
		// keeps its original indices across the subrange).
		reply.Winner = res.Winner
	}
	return reply
}
