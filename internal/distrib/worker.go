package distrib

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/memwatch"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sat"
	"repro/prog"
)

// liveProgressEvery is the conflict cadence at which a worker's solver
// instances snapshot their statistics for heartbeat live progress.
const liveProgressEvery = 200

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// Name identifies the worker in the coordinator's health registry.
	Name string
	// Cores is the number of solver instances per job (default 1).
	Cores int
	// MaxReconnects is how many consecutive failed connection cycles the
	// worker tolerates before giving up; the counter resets whenever a
	// connection completes at least one job. 0 disables reconnection:
	// the first connection loss ends the call.
	MaxReconnects int
	// ReconnectBackoff is the base delay between reconnect attempts
	// (default 250ms), doubled per consecutive failure, capped at 10s,
	// with up to 50% seeded jitter added.
	ReconnectBackoff time.Duration
	// ReconnectTimeout is the total wall-clock retry budget for one
	// outage: once connectivity is first lost, the worker must complete
	// a job within this window or give up with an error. It caps the
	// whole retry loop — failed dials, standby contacts, and backoff
	// sleeps all count — where MaxReconnects only counts failed cycles.
	// The window resets every time a job completes. 0 means no budget.
	ReconnectTimeout time.Duration
	// MemLimitBytes arms the worker's OOM watchdog: while a job runs,
	// the live heap is sampled and, at MemTripFraction of this limit,
	// every solver instance is interrupted with a memory cause — the job
	// returns a structured "memory" verdict instead of the process being
	// OOM-killed mid-chunk. 0 inherits the runtime's soft memory limit
	// (GOMEMLIMIT); if neither is set the watchdog is inert.
	MemLimitBytes int64
	// MemTripFraction is the fill fraction at which the watchdog trips
	// (default 0.9 — the abort path needs allocation headroom to run).
	MemTripFraction float64
	// Faults, when non-nil, injects deterministic failures for tests —
	// see FaultPlan.
	Faults *FaultPlan
	// Tracer, when non-nil, emits the worker's spans (job, verify
	// pipeline, certify) to its sink — typically a JSONL file that later
	// merges with the coordinator's via `parbmc report`. Independent of
	// it, a job carrying a TraceID always collects its spans in memory
	// and ships them back on the result, so the coordinator's run report
	// is complete even when workers write no local trace file.
	Tracer *obs.Tracer
}

// worker is the state shared across one Work call's connections.
type worker struct {
	opts WorkerOptions
	jobs int // global job index across reconnects (drives the FaultPlan)
	// maxEpoch is the highest coordinator lease epoch served so far; a
	// coordinator presenting a lower one is a deposed primary and is
	// refused (the split-brain fence).
	maxEpoch int64
}

// Work connects to the coordinator(s) at addr — a single address, or a
// comma-separated primary,standby list — and processes jobs until a
// coordinator sends stop or ctx is cancelled. If MaxReconnects is set,
// a lost connection is retried with exponential backoff and jitter,
// rotating through the addresses; the job counter (and therefore the
// fault plan) continues across reconnects. Reaching a coordinator that
// answers as standby is not a failure: the worker rotates on without
// charging its reconnect budget, so during a failover it keeps probing
// both endpoints until one of them holds the lease (bounded only by
// ReconnectTimeout). It returns the total number of jobs completed.
func Work(ctx context.Context, addr string, opts WorkerOptions) (int, error) {
	if opts.Cores == 0 {
		opts.Cores = 1
	}
	if opts.ReconnectBackoff == 0 {
		opts.ReconnectBackoff = 250 * time.Millisecond
	}
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return 0, fmt.Errorf("distrib: worker needs at least one coordinator address")
	}
	w := &worker{opts: opts}
	rng := rand.New(rand.NewSource(opts.Faults.seed()))
	total := 0
	failures := 0
	target := 0
	var outageStart time.Time // first failed cycle of the current outage
	for {
		n, stopped, err := w.session(ctx, addrs[target%len(addrs)])
		total += n
		if stopped {
			return total, nil
		}
		if ctx.Err() != nil {
			return total, ctx.Err()
		}
		if opts.MaxReconnects <= 0 {
			return total, err
		}
		if n > 0 {
			failures = 0
			outageStart = time.Time{}
		}
		if outageStart.IsZero() {
			outageStart = time.Now()
		}
		if opts.ReconnectTimeout > 0 && time.Since(outageStart) >= opts.ReconnectTimeout {
			return total, fmt.Errorf("distrib: worker reconnect budget %v exhausted: %w",
				opts.ReconnectTimeout, err)
		}
		target++ // try the next coordinator in the list
		var delay time.Duration
		if errors.Is(err, errStandby) {
			// The coordinator is alive but not the leader; during a
			// failover this resolves within one lease TTL, so probe at
			// the flat base cadence instead of backing off.
			delay = opts.ReconnectBackoff
		} else {
			failures++
			if failures > opts.MaxReconnects {
				return total, fmt.Errorf("distrib: worker giving up after %d reconnect attempts: %w",
					opts.MaxReconnects, err)
			}
			delay = backoffDelay(opts.ReconnectBackoff, failures, rng)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return total, ctx.Err()
		case <-t.C:
		}
	}
}

// backoffDelay is base·2^(attempt-1) capped at 10s, plus up to 50%
// jitter from rng so reconnecting workers do not stampede in lockstep.
func backoffDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 1; i < attempt && d < 10*time.Second; i++ {
		d *= 2
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// session runs one connection: dial, hello, then jobs until stop or
// error. stopped is true only for a clean coordinator-initiated stop.
func (w *worker) session(ctx context.Context, addr string) (jobs int, stopped bool, err error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, false, fmt.Errorf("distrib: worker dial: %w", err)
	}
	wc := newConn(c, 30*time.Second)
	defer wc.close()

	// Cancellation: closing the connection unblocks recv.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			wc.close()
		case <-stop:
		}
	}()

	if err := wc.send(&Message{Type: "hello", WorkerName: w.opts.Name, Cores: w.opts.Cores}); err != nil {
		return 0, false, err
	}
	// A dedicated reader pump owns the socket's read side for the whole
	// session, so the main loop can keep consuming messages while a job
	// runs — that is what lets a mid-job "cancel" interrupt the solvers
	// instead of waiting in the TCP buffer behind a long solve.
	type recvRes struct {
		m   *Message
		err error
	}
	msgs := make(chan recvRes)
	go func() {
		for {
			m, err := wc.recv(0)
			select {
			case msgs <- recvRes{m, err}:
			case <-stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	for {
		r := <-msgs
		if r.err != nil {
			return jobs, false, r.err
		}
		m := r.m
		switch m.Type {
		case "welcome":
			// The coordinator announces its role and lease epoch before
			// any job. (A coordinator predating the handshake sends jobs
			// directly; that is still accepted.)
			if m.Role == RoleStandby {
				return jobs, false, errStandby
			}
			if err := w.checkEpoch(m.Epoch); err != nil {
				return jobs, false, err
			}
		case "stop":
			return jobs, true, nil
		case "cancel":
			// A cancel for a job whose result already went out (the
			// supersession race resolved on the wire): nothing to do.
		case "job":
			if err := w.checkEpoch(m.Epoch); err != nil {
				return jobs, false, err
			}
			idx := w.jobs
			w.jobs++
			f := w.opts.Faults.eventAt(idx)
			if f != nil && f.Kind == FaultHalfOpen {
				// From here the TCP connection stays up but everything
				// this worker sends — heartbeats and results alike —
				// silently vanishes. Only the coordinator's heartbeat
				// grace can notice; it evicts the conn, and the worker's
				// next read fails, ending the session normally.
				wc.mute(true)
				f = nil
			}
			if f != nil && f.Kind.transport() {
				done, ferr := w.inject(ctx, wc, f)
				if done {
					return jobs, false, ferr
				}
				f = nil // a stall falls through: the job still runs, late and honestly
			}
			// The job runs under its own cancellable context while the
			// main loop keeps consuming messages: a "cancel" for this job
			// interrupts the solvers, which surface a cancelled Unknown —
			// the acknowledgment the coordinator's supersession protocol
			// expects. The result is always sent before the next job is
			// read, preserving the sequential-job invariant.
			jobCtx, cancelJob := context.WithCancel(ctx)
			type outcome struct {
				reply *Message
				cert  *Certificate
			}
			resCh := make(chan outcome, 1)
			jm := m
			go func() {
				reply, cert := w.runJobWithHeartbeats(jobCtx, wc, jm, f)
				resCh <- outcome{reply, cert}
			}()
			var out outcome
			var rerr error
		waitJob:
			for {
				select {
				case out = <-resCh:
					break waitJob
				case r := <-msgs:
					if r.err != nil {
						rerr = r.err
					} else if r.m.Type == "cancel" && r.m.JobID == jm.JobID {
						cancelJob()
						continue
					} else if r.m.Type == "cancel" {
						continue // stale cancel for an earlier job
					} else {
						rerr = fmt.Errorf("distrib: unexpected message %q mid-job", r.m.Type)
					}
					cancelJob()
					<-resCh
					cancelJob = nil
					break waitJob
				}
			}
			if cancelJob != nil {
				cancelJob()
			}
			if rerr != nil {
				return jobs, false, rerr
			}
			reply, cert := out.reply, out.cert
			mutateResult(f, jm, reply, &cert)
			certData, cerr := encodeCertificate(cert)
			if cerr != nil {
				reply.Error = fmt.Sprintf("certificate encoding: %v", cerr)
				certData = nil
			}
			declared := int64(len(certData))
			if f != nil {
				switch f.Kind {
				case FaultTruncatedProof:
					// Declare the truncated size: the cut arrives "complete"
					// and fails decoding, instead of hanging the transfer.
					certData = certData[:len(certData)/2]
					declared = int64(len(certData))
				case FaultOversizedProof:
					declared = maxCertBytes + 1
					certData = nil
				}
			}
			reply.CertSize = declared
			if err := wc.send(reply); err != nil {
				return jobs, false, err
			}
			if err := sendCert(wc, jm.JobID, certData); err != nil {
				return jobs, false, err
			}
			jobs++
		default:
			return jobs, false, fmt.Errorf("distrib: unexpected message %q", m.Type)
		}
	}
}

// checkEpoch enforces the split-brain fence: a coordinator presenting
// a lease epoch below one this worker has already served is a deposed
// primary and is refused for good. Epochs only ratchet upward.
func (w *worker) checkEpoch(epoch int64) error {
	if epoch < w.maxEpoch {
		return fmt.Errorf("%w: presented epoch %d, already served epoch %d",
			ErrStaleEpoch, epoch, w.maxEpoch)
	}
	if epoch > w.maxEpoch {
		w.maxEpoch = epoch
	}
	return nil
}

// inject applies one fault event. done means the session is over.
func (w *worker) inject(ctx context.Context, wc *conn, f *FaultEvent) (done bool, err error) {
	switch f.Kind {
	case FaultDrop:
		wc.close()
		return true, fmt.Errorf("distrib: injected drop at job %d", f.Job)
	case FaultCorrupt:
		_ = wc.sendRaw([]byte("{corrupt frame at job " + fmt.Sprint(f.Job) + "\n"))
		wc.close()
		return true, fmt.Errorf("distrib: injected corrupt frame at job %d", f.Job)
	case FaultStall:
		// Silence: no heartbeats, no result, for the stall duration.
		t := time.NewTimer(f.Stall)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return true, ctx.Err()
		case <-t.C:
		}
	}
	return false, nil
}

// jobProgress accumulates live per-partition search statistics from the
// solver progress hook; heartbeats read the cross-partition totals. The
// hook fires from solver goroutines, so updates are mutex-guarded. A
// per-partition sat.Sampler piggybacks on the same snapshots, deriving
// the live rates and hardness scores that ride on heartbeats.
type jobProgress struct {
	mu           sync.Mutex
	conflicts    map[int]int64
	decisions    map[int]int64
	propagations map[int]int64
	progress     map[int]float64
	hardness     map[int]float64
	confRate     map[int]float64
	samplers     map[int]*sat.Sampler
}

func newJobProgress() *jobProgress {
	return &jobProgress{
		conflicts:    make(map[int]int64),
		decisions:    make(map[int]int64),
		propagations: make(map[int]int64),
		progress:     make(map[int]float64),
		hardness:     make(map[int]float64),
		confRate:     make(map[int]float64),
		samplers:     make(map[int]*sat.Sampler),
	}
}

// update stores the latest snapshot for one partition (snapshots are
// cumulative per instance, so last-write-wins is the right semantics)
// and folds it into the partition's introspection sampler.
func (p *jobProgress) update(part int, st sat.Stats) {
	if p == nil {
		return
	}
	p.mu.Lock()
	sp := p.samplers[part]
	if sp == nil {
		sp = sat.NewSampler(0)
		p.samplers[part] = sp
	}
	s := sp.Observe(st)
	p.conflicts[part] = st.Conflicts
	p.decisions[part] = st.Decisions
	p.propagations[part] = st.Propagations
	p.progress[part] = st.Progress
	p.hardness[part] = s.Hardness
	p.confRate[part] = s.ConflictRate
	p.mu.Unlock()
}

// totals sums the latest snapshots across partitions.
func (p *jobProgress) totals() (conflicts, decisions, propagations int64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conflicts {
		conflicts += c
	}
	for _, d := range p.decisions {
		decisions += d
	}
	for _, pr := range p.propagations {
		propagations += pr
	}
	return conflicts, decisions, propagations
}

// parts snapshots the live per-partition state, sorted by partition
// index, plus the job-level progress: the minimum estimate across the
// partitions seen so far — the job is only as far along as its
// furthest-behind partition.
func (p *jobProgress) parts() ([]PartProgress, float64) {
	if p == nil {
		return nil, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PartProgress, 0, len(p.conflicts))
	minProg := 0.0
	for part, c := range p.conflicts {
		pp := PartProgress{
			Partition:    part,
			Conflicts:    c,
			Propagations: p.propagations[part],
			Progress:     p.progress[part],
			Hardness:     p.hardness[part],
			ConflictRate: p.confRate[part],
		}
		if len(out) == 0 || pp.Progress < minProg {
			minProg = pp.Progress
		}
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Partition < out[j].Partition })
	return out, minProg
}

// runJobWithHeartbeats runs the job while a side goroutine heartbeats at
// the cadence the coordinator asked for, so a busy solver is
// distinguishable from a hung worker; each heartbeat carries the live
// conflict/propagation totals from the solver progress hook. The sender
// is stopped before the result goes out, so a result is never followed
// by its own heartbeat.
func (w *worker) runJobWithHeartbeats(ctx context.Context, wc *conn, m *Message, f *FaultEvent) (*Message, *Certificate) {
	// Per-job OOM watchdog: a fresh one each job so the trip re-arms
	// after an aborted chunk frees its memory. On trip the job's solvers
	// are interrupted with a memory cause (via core.Options.MemAbort),
	// so the worker sheds the chunk and answers with a structured
	// verdict before the kernel's OOM-killer would pick the process.
	memAbort := make(chan struct{})
	watch := memwatch.Start(memwatch.Options{
		LimitBytes:   w.opts.MemLimitBytes,
		TripFraction: w.opts.MemTripFraction,
		OnTrip:       func(used, limit int64) { close(memAbort) },
	})
	defer watch.Stop()

	var hbStop, hbDone chan struct{}
	var progress *jobProgress
	if m.HeartbeatMillis > 0 {
		progress = newJobProgress()
		hbStop, hbDone = make(chan struct{}), make(chan struct{})
		interval := time.Duration(m.HeartbeatMillis) * time.Millisecond
		go func() {
			defer close(hbDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			// The job-level sampler observes the cross-partition totals at
			// the heartbeat cadence, deriving the per-second rates each
			// heartbeat carries to the coordinator's rate gauges.
			jobSampler := sat.NewSampler(0)
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					conflicts, decisions, propagations := progress.totals()
					parts, jobProg := progress.parts()
					s := jobSampler.Observe(sat.Stats{
						Conflicts: conflicts, Decisions: decisions,
						Propagations: propagations, Progress: jobProg,
					})
					maxHardness := 0.0
					for _, pp := range parts {
						if pp.Hardness > maxHardness {
							maxHardness = pp.Hardness
						}
					}
					hb := &Message{Type: "heartbeat", JobID: m.JobID,
						Conflicts: conflicts, Propagations: propagations,
						Progress: jobProg, Parts: parts,
						ConflictRate:    s.ConflictRate,
						DecisionRate:    s.DecisionRate,
						PropagationRate: s.PropagationRate,
						Hardness:        maxHardness,
						MemBytes:        watch.Used(),
						MemLimit:        watch.Limit()}
					if err := wc.send(hb); err != nil {
						return
					}
				}
			}
		}()
	}
	reply, cert := runJob(ctx, m, w.opts.Cores, progress, f, w.opts.Tracer, w.procName(), memAbort)
	if hbStop != nil {
		close(hbStop)
		<-hbDone
	}
	return reply, cert
}

// procName is the worker's span process name ("worker" when anonymous).
func (w *worker) procName() string {
	if w.opts.Name != "" {
		return w.opts.Name
	}
	return "worker"
}

// mutateResult applies a Byzantine fault to an honestly computed result:
// the worker lies about the verdict or its evidence. Exercises the
// coordinator's certificate checking.
func mutateResult(f *FaultEvent, m *Message, reply *Message, cert **Certificate) {
	if f == nil || reply.Error != "" {
		return
	}
	// Fabricated models reuse the honest certificate's variable count
	// when one exists, so the lie passes the cheap size check and is
	// caught by actual clause evaluation.
	numVars := 1
	if *cert != nil && (*cert).NumVars > 0 {
		numVars = (*cert).NumVars
	}
	switch f.Kind {
	case FaultFlipVerdict:
		switch reply.Verdict {
		case core.Safe.String():
			reply.Verdict = core.Unsafe.String()
			reply.Winner = m.From
			*cert = &Certificate{NumVars: numVars, Model: packBits(make([]bool, numVars))}
		case core.Unsafe.String():
			reply.Verdict = core.Safe.String()
			reply.Winner = -1
			*cert = &Certificate{NumVars: numVars} // no proofs: nothing to show
		}
	case FaultBogusModel:
		reply.Verdict = core.Unsafe.String()
		reply.Winner = m.From
		bogus := make([]bool, numVars)
		for i := range bogus {
			bogus[i] = i%2 == 0
		}
		*cert = &Certificate{NumVars: numVars, Model: packBits(bogus)}
	}
}

// sendCert streams one encoded certificate after its result, split into
// frames small enough to survive the wire's frame cap after base64
// expansion. A nil/empty certificate sends nothing.
func sendCert(wc *conn, jobID int, data []byte) error {
	for seq := 0; len(data) > 0; seq++ {
		n := certFrameData
		if n > len(data) {
			n = len(data)
		}
		if err := wc.send(&Message{Type: "cert", JobID: jobID, Seq: seq, Data: data[:n]}); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// runJob executes one job. The deferred recover is the worker's panic
// boundary: a solver bug (or an injected FaultPanic) becomes a
// structured Error result instead of killing the process, so one poison
// chunk cannot take a whole worker down.
//
// When the job carries a TraceID, the worker joins the coordinator's
// trace: a per-job tracer tees the worker's own sink (if any) with an
// in-memory collector, the job span is parented under the
// coordinator's wire-carried job span, the verify pipeline hangs off
// it, and the collected events ship back on the result.
func runJob(ctx context.Context, m *Message, cores int, progress *jobProgress, f *FaultEvent, base *obs.Tracer, proc string, memAbort <-chan struct{}) (reply *Message, cert *Certificate) {
	reply = &Message{Type: "result", JobID: m.JobID, Winner: -1}
	defer func() {
		if r := recover(); r != nil {
			reply = &Message{Type: "result", JobID: m.JobID, Winner: -1,
				Error: fmt.Sprintf("panic: %v", r)}
			cert = nil
		}
	}()
	if f != nil && f.Kind == FaultPanic {
		panic(fmt.Sprintf("injected panic at job %d", f.Job))
	}
	if f != nil && f.Kind == FaultSlow && f.Slow > 0 {
		// A straggler, not a corpse: heartbeats keep flowing (with zero
		// progress) while the job sits on its hands, so only the adaptive
		// scheduler — not the liveness monitor — can notice. The sleep
		// aborts promptly on cancel so a split/hedge supersession still
		// frees the worker.
		t := time.NewTimer(f.Slow)
		select {
		case <-ctx.Done():
			t.Stop()
			reply.Verdict = core.Unknown.String()
			reply.Cause = sat.CauseCancelled.String()
			return reply, nil
		case <-t.C:
		}
	}
	jt := base
	var coll *obs.CollectorSink
	if m.TraceID != "" {
		coll = obs.NewCollectorSink()
		// The per-job proc name keeps span refs ("proc/id") unique even
		// though each job's tracer restarts its sequence: job IDs are
		// coordinator-unique for the run.
		jt = obs.NewTracer(obs.MultiSink(base.Sink(), coll)).
			WithProc(fmt.Sprintf("%s.j%d", proc, m.JobID)).
			WithTraceID(m.TraceID)
	} else if base != nil {
		jt = obs.NewTracer(base.Sink()).WithProc(proc).WithTraceID(base.TraceID())
	}
	jobSpan := jt.StartRemote("worker_job",
		obs.SpanContext{TraceID: m.TraceID, SpanID: m.ParentSpan},
		obs.KV("job", m.JobID), obs.KV("from", m.From), obs.KV("to", m.To))
	defer func() {
		if reply.Error != "" {
			jobSpan.End(obs.KV("error", reply.Error))
		} else {
			jobSpan.End(obs.KV("verdict", reply.Verdict))
		}
		reply.Spans = coll.Events()
	}()
	p, err := prog.Parse(m.Source)
	if err != nil {
		reply.Error = err.Error()
		return reply, nil
	}
	opts := core.Options{
		Unwind:         m.Unwind,
		Contexts:       m.Contexts,
		Width:          m.Width,
		Cores:          cores,
		Partitions:     m.Partitions,
		From:           m.From,
		To:             m.To + 1,
		CubePath:       m.CubePath,
		ChunkTimeout:   time.Duration(m.ChunkTimeoutMillis) * time.Millisecond,
		ChunkConflicts: m.ChunkConflicts,
		MemBudgetMB:    m.MemBudgetMB,
		MemAbort:       memAbort,
		// Record refutation proofs when the coordinator demands full
		// certificates; the UNSAFE model is kept in any case.
		KeepProofs: m.Certify == CertifyFull,
		Tracer:     jt,
		Parent:     jobSpan,
	}
	if progress != nil {
		opts.Progress = progress.update
		opts.ProgressEvery = liveProgressEvery
	}
	start := time.Now()
	res, err := core.Verify(ctx, p, opts)
	reply.Millis = time.Since(start).Milliseconds()
	if err != nil {
		reply.Error = err.Error()
		return reply, nil
	}
	reply.Verdict = res.Verdict.String()
	reply.SolveMillis = res.SolveTime.Milliseconds()
	if res.Verdict == core.Unknown {
		// Name the dominant exhausted budget so the coordinator can tell
		// a terminal budgeted Unknown (re-running gives up again) from a
		// retryable one (cancellation mid-flight). Memory dominates: a
		// watchdog-aborted job must surface as "memory" so the
		// coordinator can apply its memory retry policy, whatever else
		// was exhausted alongside. Then timeout: a run that hit the wall
		// clock anywhere is wall-clock bound.
		switch {
		case len(res.Coverage.Memory) > 0:
			reply.Cause = sat.CauseMemory.String()
		case len(res.Coverage.Timeout) > 0:
			reply.Cause = sat.CauseTimeout.String()
		case len(res.Coverage.ConflictBudget) > 0:
			reply.Cause = sat.CauseConflictBudget.String()
		case len(res.Coverage.Cancelled) > 0:
			// A mid-solve cancel (hedge loser, split supersession): the
			// coordinator discards this result without charging the
			// attempt budget.
			reply.Cause = sat.CauseCancelled.String()
		}
	}
	// Aggregate the per-partition search statistics so the coordinator
	// sees the remote search effort (load skew, conflict rates) instead
	// of the stats dying with the worker process. The per-partition
	// breakdown rides alongside as Parts — the final progress/imbalance
	// rows of the coordinator's run report.
	var agg sat.Stats
	for _, inst := range res.Instances {
		agg.Add(inst.Stats)
		reply.Parts = append(reply.Parts, PartProgress{
			Partition:    inst.Partition,
			Conflicts:    inst.Stats.Conflicts,
			Propagations: inst.Stats.Propagations,
			Progress:     inst.Stats.Progress,
			Verdict:      inst.Status.String(),
			Millis:       inst.Time.Milliseconds(),
			Hardness:     inst.Hardness,
			ConflictRate: instConflictRate(inst),
		})
	}
	reply.Stats = &agg
	reply.Progress = agg.Progress
	if res.Verdict == core.Unsafe {
		// res.Winner is the absolute partition index (the partition list
		// keeps its original indices across the subrange).
		reply.Winner = res.Winner
	}
	certSpan := jobSpan.Child("certify_build", obs.KV("level", m.Certify))
	cert = buildCertificate(res, m.Certify)
	certSpan.End()
	return reply, cert
}

// instConflictRate is an instance's whole-run conflicts/second.
func instConflictRate(inst parallel.InstanceResult) float64 {
	if secs := inst.Time.Seconds(); secs > 0 {
		return float64(inst.Stats.Conflicts) / secs
	}
	return 0
}
