package trace

import (
	"testing"

	"repro/internal/flatten"
	"repro/internal/sat"
	"repro/internal/unfold"
	"repro/internal/vc"
	"repro/prog"
)

func encodeAndSolve(t *testing.T, src string, u, contexts int) (*vc.Encoded, []bool) {
	t.Helper()
	p := prog.MustParse(src)
	up, err := unfold.Unfold(p, unfold.Options{Unwind: u})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := flatten.Flatten(up)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := vc.Encode(fp, vc.Options{Contexts: contexts})
	if err != nil {
		t.Fatal(err)
	}
	s := sat.NewFromFormula(enc.Formula(), sat.Options{})
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != sat.Sat {
		t.Fatalf("expected SAT, got %v", st)
	}
	return enc, s.Model()
}

func TestDecodeAndValidateConcurrentBug(t *testing.T) {
	src := `
int g;
void w() {
  int tmp;
  tmp = g;
  g = tmp + 1;
}
void main() {
  int t1, t2;
  g = 0;
  t1 = create(w);
  t2 = create(w);
  join(t1);
  join(t2);
  assert(g == 2);
}
`
	enc, model := encodeAndSolve(t, src, 1, 5)
	tr := Decode(enc, model)
	if len(tr.Schedule) != 5 {
		t.Fatalf("schedule length %d", len(tr.Schedule))
	}
	if tr.Schedule[0].Thread != 0 {
		t.Fatal("first context not the main thread")
	}
	viol, err := Validate(enc, tr)
	if err != nil {
		t.Fatalf("validation: %v", err)
	}
	if viol == nil {
		t.Fatal("replay did not reproduce the violation")
	}
}

func TestDecodeNondetValues(t *testing.T) {
	src := `
int g;
void main() {
  int x;
  x = *;
  assume(x > 5);
  assume(x < 7);
  g = x;
  assert(g != 6);
}
`
	enc, model := encodeAndSolve(t, src, 1, 1)
	tr := Decode(enc, model)
	if len(tr.Nondet) != 1 {
		t.Fatalf("nondet entries: %d", len(tr.Nondet))
	}
	for _, v := range tr.Nondet {
		if v != 6 {
			t.Fatalf("nondet value %d, want 6", v)
		}
	}
	viol, err := Validate(enc, tr)
	if err != nil || viol == nil {
		t.Fatalf("validation: viol=%v err=%v", viol, err)
	}
}

func TestDecodeInitialLocals(t *testing.T) {
	// Paper semantics: the uninitialised local is an implicit input; its
	// initial value must be part of the decoded trace and replaying with
	// it must reproduce the bug.
	src := `
int g;
void main() {
  int x;
  g = x;
  assert(g != 13);
}
`
	enc, model := encodeAndSolve(t, src, 1, 1)
	tr := Decode(enc, model)
	if len(tr.InitScalars) == 0 {
		t.Fatal("no initial locals decoded")
	}
	viol, err := Validate(enc, tr)
	if err != nil || viol == nil {
		t.Fatalf("validation: viol=%v err=%v", viol, err)
	}
}

func TestValidateManyRandomSatInstances(t *testing.T) {
	// Every SAT verdict across a batch of unsafe variants must validate.
	srcs := []string{
		`int g; void main() { g = 3; assert(g != 3); }`,
		`int a[2]; void main() { int x; x = *; assume(x >= 0); assume(x < 2); a[x] = 1; assert(a[0] == 0); }`,
		`int g; bool f;
void w() { f = true; g = 7; }
void main() { int t; t = create(w); join(t); assert(!f || g == 8); }`,
		`mutex m; int g;
void w() { lock(m); g = 5; unlock(m); }
void main() { int t; t = create(w); join(t); assert(g == 0); }`,
	}
	for i, src := range srcs {
		enc, model := encodeAndSolve(t, src, 1, 4)
		tr := Decode(enc, model)
		viol, err := Validate(enc, tr)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if viol == nil {
			t.Fatalf("case %d: no violation on replay", i)
		}
	}
}
