package trace

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/flatten"
	"repro/internal/sat"
	"repro/internal/unfold"
	"repro/internal/vc"
	"repro/prog"
)

// genProgramNondet is genProgram but with uninitialised locals and bool
// locals, exercising the paper-mode (nondet locals) pipeline.
func genProgramNondet(rng *rand.Rand) string {
	shared := []string{"a", "b"}
	expr := func() string {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(4))
		case 1, 2:
			return shared[rng.Intn(2)]
		case 3:
			return "x"
		case 4:
			return fmt.Sprintf("%s + %d", shared[rng.Intn(2)], 1+rng.Intn(3))
		default:
			return fmt.Sprintf("%s + x", shared[rng.Intn(2)])
		}
	}
	cond := func() string {
		ops := []string{"<", "<=", "==", "!=", ">", ">="}
		base := func() string {
			switch rng.Intn(3) {
			case 0:
				return "p"
			case 1:
				return fmt.Sprintf("x %s %d", ops[rng.Intn(len(ops))], rng.Intn(5))
			default:
				return fmt.Sprintf("%s %s %d", shared[rng.Intn(2)], ops[rng.Intn(len(ops))], rng.Intn(5))
			}
		}
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("(%s && %s)", base(), base())
		case 1:
			return fmt.Sprintf("(%s || !(%s))", base(), base())
		default:
			return base()
		}
	}
	var stmt func(depth int) string
	stmt = func(depth int) string {
		switch r := rng.Intn(10); {
		case r < 3:
			return fmt.Sprintf("%s = %s;", shared[rng.Intn(2)], expr())
		case r < 5:
			return fmt.Sprintf("x = %s;", expr())
		case r < 6:
			switch rng.Intn(3) {
			case 0:
				return "p = *;"
			case 1:
				return fmt.Sprintf("p = %s;", map[bool]string{true: "true", false: "false"}[rng.Intn(2) == 0])
			default:
				return "x = *;"
			}
		case r < 8 && depth < 2:
			return fmt.Sprintf("if (%s) { %s } else { %s }", cond(), stmt(depth+1), stmt(depth+1))
		default:
			return fmt.Sprintf("assert(%s);", cond())
		}
	}
	body := func(n int) string {
		s := "int x;\nbool p;\n" // uninitialised!
		for i := 0; i < n; i++ {
			s += stmt(0) + "\n"
		}
		return s
	}
	nWorkers := 1 + rng.Intn(2)
	src := "int a, b;\n"
	for w := 0; w < nWorkers; w++ {
		src += fmt.Sprintf("void w%d() {\n%s}\n", w, body(1+rng.Intn(3)))
	}
	src += "void main() {\nint t0, t1;\n" + body(1+rng.Intn(2))
	for w := 0; w < nWorkers; w++ {
		src += fmt.Sprintf("t%d = create(w%d);\n", w, w)
	}
	src += "}\n"
	return src
}

func TestFuzzValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	for iter := 0; iter < 400; iter++ {
		src := genProgramNondet(rng)
		p, err := prog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		up, err := unfold.Unfold(p, unfold.Options{Unwind: 1})
		if err != nil {
			t.Fatal(err)
		}
		fp, err := flatten.Flatten(up)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := vc.Encode(fp, vc.Options{Contexts: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := sat.NewFromFormula(enc.Formula(), sat.Options{})
		st, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st != sat.Sat {
			continue
		}
		tr := Decode(enc, s.Model())
		viol, verr := Validate(enc, tr)
		if verr != nil || viol == nil {
			t.Fatalf("iter %d: SAT but replay gave viol=%v err=%v\nprogram:\n%s\nschedule: %v",
				iter, viol, verr, src, tr)
		}
	}
}
