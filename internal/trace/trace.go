// Package trace converts satisfying assignments of the verification
// condition back into concrete error traces (Sect. 2.3: "any satisfying
// assignment ... can be converted into an error trace"), and validates
// them by replaying the decoded schedule on the concrete interpreter.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/vc"
)

// Trace is a decoded counterexample: a schedule (the tid[c] and cs[c]
// choices of the context-bounded scheduler) plus the values of every
// non-deterministic input.
type Trace struct {
	// Schedule lists the scheduler choices per execution context.
	Schedule []interp.ContextChoice
	// Nondet holds the value chosen for each non-deterministic
	// assignment instance.
	Nondet map[vc.NondetKey]int64
	// InitScalars / InitArrays hold the initial values of local
	// variables (paper semantics: locals start non-deterministic).
	InitScalars map[string]int64
	InitArrays  map[string][]int64
}

// String renders the schedule in a human-readable form.
func (t *Trace) String() string {
	var b strings.Builder
	for i, c := range t.Schedule {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "t%d→%d", c.Thread, c.Cs)
	}
	return b.String()
}

// Decode extracts the error trace from a model of the encoded formula.
func Decode(enc *vc.Encoded, model []bool) *Trace {
	c := enc.Ctx
	tr := &Trace{
		Nondet:      map[vc.NondetKey]int64{},
		InitScalars: map[string]int64{},
		InitArrays:  map[string][]int64{},
	}
	for i := range enc.TidVecs {
		tid := int(c.EvalVec(enc.TidVecs[i], model))
		cs := int(c.EvalVec(enc.CsVecs[i], model))
		tr.Schedule = append(tr.Schedule, interp.ContextChoice{Thread: tid, Cs: cs})
	}
	for k, v := range enc.Nondet {
		tr.Nondet[k] = c.EvalSigned(v, model)
	}
	for name, v := range enc.InitScalars {
		tr.InitScalars[name] = c.EvalSigned(v, model)
	}
	for name, vs := range enc.InitArrays {
		vals := make([]int64, len(vs))
		for i, v := range vs {
			vals[i] = c.EvalSigned(v, model)
		}
		tr.InitArrays[name] = vals
	}
	return tr
}

// Validate replays the trace on the concrete interpreter and returns the
// assertion violation it reaches. On success the trace's schedule is
// truncated at the violating context (the scheduler words of later
// contexts are unconstrained by the encoding and carry no information).
// A nil violation with a nil error means the schedule ran to completion
// without failure, which would indicate an encoder bug when the formula
// was satisfiable.
func Validate(enc *vc.Encoded, tr *Trace) (*interp.Violation, error) {
	st := interp.NewState(enc.Program, interp.Options{Width: enc.Opts.Width})
	for name, v := range tr.InitScalars {
		st.SetVar(name, v)
	}
	for name, vals := range tr.InitArrays {
		for i, v := range vals {
			st.SetArrayElem(name, i, v)
		}
	}
	oracle := func(thread, block, step int) int64 {
		return tr.Nondet[vc.NondetKey{Thread: thread, Block: block, Step: step}]
	}
	for i, c := range tr.Schedule {
		err := st.ExecContext(c.Thread, c.Cs, oracle)
		if v, ok := err.(*interp.Violation); ok {
			tr.Schedule = tr.Schedule[:i+1]
			return v, nil
		}
		if err == interp.ErrInfeasible {
			return nil, fmt.Errorf("trace: decoded schedule infeasible at context %d (encoder/decoder mismatch)", i)
		}
		if err != nil {
			return nil, err
		}
	}
	return nil, nil
}
