package partition

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/flatten"
	"repro/internal/sat"
	"repro/internal/unfold"
	"repro/internal/vc"
	"repro/prog"
)

const twoWorkerSrc = `
int g;
void w1() { g = g + 1; }
void w2() { g = g + 2; }
void main() {
  int t1, t2;
  t1 = create(w1);
  t2 = create(w2);
  join(t1);
  join(t2);
  assert(g == 3);
}
`

func encode(t *testing.T, src string, contexts int) *vc.Encoded {
	t.Helper()
	p := prog.MustParse(src)
	up, err := unfold.Unfold(p, unfold.Options{Unwind: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := flatten.Flatten(up)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := vc.Encode(fp, vc.Options{Contexts: contexts})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestMakeCounts(t *testing.T) {
	enc := encode(t, twoWorkerSrc, 5)
	for _, n := range []int{1, 2, 4, 8, 16} {
		parts, err := Make(enc, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("n=%d: got %d partitions", n, len(parts))
		}
		want := 0
		for p := 1; p < n; p *= 2 {
			want++
		}
		for i, pt := range parts {
			if pt.Index != i {
				t.Fatalf("partition %d has index %d", i, pt.Index)
			}
			if len(pt.Assumptions) != want {
				t.Fatalf("n=%d: partition %d has %d assumptions, want %d",
					n, i, len(pt.Assumptions), want)
			}
		}
	}
}

func TestMakeRejectsNonPowerOfTwo(t *testing.T) {
	enc := encode(t, twoWorkerSrc, 5)
	for _, n := range []int{0, 3, 6, -2} {
		if _, err := Make(enc, n); err == nil {
			t.Fatalf("n=%d accepted", n)
		}
	}
}

func TestMakeRejectsTooMany(t *testing.T) {
	enc := encode(t, twoWorkerSrc, 3) // 2 symbolic contexts -> max 4
	if _, err := Make(enc, 8); err == nil {
		t.Fatal("8 partitions over 2 symbolic contexts accepted")
	}
	if MaxPartitions(enc) != 4 {
		t.Fatalf("MaxPartitions: %d", MaxPartitions(enc))
	}
}

func TestPartitionsAreDisjointAndComplete(t *testing.T) {
	// The assumptions of distinct partitions must differ in at least one
	// literal polarity (disjoint), and for every index the literals cover
	// all combinations (complete by construction).
	enc := encode(t, twoWorkerSrc, 4)
	parts, err := Make(enc, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, pt := range parts {
		key := ""
		for _, a := range pt.Assumptions {
			key += a.String() + ","
		}
		if seen[key] {
			t.Fatalf("duplicate assumption set %q", key)
		}
		seen[key] = true
	}
	// Complementary pairs: partition i and i^1 differ exactly in the
	// first literal.
	for i := 0; i+1 < len(parts); i += 2 {
		if parts[i].Assumptions[0] != parts[i+1].Assumptions[0].Not() {
			t.Fatalf("partitions %d/%d not complementary in first literal", i, i+1)
		}
	}
}

// The key semantic property (Sect. 3.3): the formula is satisfiable iff
// at least one partition is satisfiable, for any partition count.
func TestUnionEquivalence(t *testing.T) {
	cases := []struct {
		src      string
		contexts int
		wantSat  bool
	}{
		{twoWorkerSrc, 5, true}, // g==3 always holds sequentially... see below
		{twoWorkerSrc, 3, false},
	}
	// With 5 contexts the assert can fail: schedule main,w1?,... g==3
	// holds on every full execution (both increments are atomic adds), so
	// actually the program is safe for any schedule; make an unsafe
	// variant by asserting g == 1.
	unsafe := `
int g;
void w1() { g = g + 1; }
void w2() { g = g + 2; }
void main() {
  int t1, t2;
  t1 = create(w1);
  t2 = create(w2);
  join(t1);
  join(t2);
  assert(g != 3);
}
`
	cases = append(cases, struct {
		src      string
		contexts int
		wantSat  bool
	}{unsafe, 5, true})

	for ci, c := range cases {
		enc := encode(t, c.src, c.contexts)
		whole := solveWith(t, enc, nil)
		for _, n := range []int{1, 2, 4} {
			parts, err := Make(enc, n)
			if err != nil {
				t.Fatal(err)
			}
			anySat := false
			for _, pt := range parts {
				if solveWith(t, enc, pt.Assumptions) == sat.Sat {
					anySat = true
				}
			}
			if anySat != (whole == sat.Sat) {
				t.Fatalf("case %d n=%d: union %v != whole %v", ci, n, anySat, whole)
			}
		}
		_ = whole
	}
	// Sanity: verify expectations on whole-formula verdicts.
	encSafe := encode(t, twoWorkerSrc, 8)
	if solveWith(t, encSafe, nil) != sat.Unsat {
		t.Fatal("two-worker sum program should be safe")
	}
}

func solveWith(t *testing.T, enc *vc.Encoded, assumps []cnf.Lit) sat.Status {
	t.Helper()
	s := sat.NewFromFormula(enc.Formula(), sat.Options{})
	st, err := s.Solve(assumps...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestChunks(t *testing.T) {
	cs := Chunks(16, 8)
	if len(cs) != 2 || cs[0].From != 0 || cs[0].To != 7 || cs[1].From != 8 || cs[1].To != 15 {
		t.Fatalf("chunks: %+v", cs)
	}
	if cs[0].Size() != 8 {
		t.Fatalf("chunk size: %d", cs[0].Size())
	}
	cs = Chunks(10, 4)
	if len(cs) != 3 || cs[2].From != 8 || cs[2].To != 9 {
		t.Fatalf("ragged chunks: %+v", cs)
	}
	cs = Chunks(4, 0)
	if len(cs) != 4 {
		t.Fatalf("size-0 chunks: %+v", cs)
	}
}
