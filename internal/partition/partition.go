// Package partition implements the paper's symbolic partitioning of the
// interleaving space (Sect. 3.2/3.3): the set of m-context executions is
// split into 2^p subsets by fixing the polarity of the propositional
// variables that carry the least-significant bit of the scheduled-thread
// words tid[1..p] (the first context is pinned to the main thread, so
// partitioning starts at the second context). Each subset is explored by
// conjoining the corresponding unit assumptions onto the otherwise
// unchanged formula.
package partition

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/vc"
)

// Partition is one symbolic subset of the execution traces: the original
// formula plus unit assumptions on the tid LSB variables.
type Partition struct {
	// Index identifies the partition: bit j of Index is the polarity
	// assumed for the LSB of tid[j+1].
	Index int
	// Assumptions are the unit literals defining the subset.
	Assumptions []cnf.Lit
}

// Make builds `parts` partitions over the encoded formula. parts must be
// a power of two not exceeding 2^s, where s is the number of symbolic
// scheduler contexts (contexts minus one in context-bounded mode).
// parts = 1 yields the single unpartitioned problem.
func Make(enc *vc.Encoded, parts int) ([]Partition, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("partition: count %d is not a power of two", parts)
	}
	var lsbs []cnf.Lit
	for _, l := range enc.TidLSBs {
		if l != cnf.LitUndef {
			lsbs = append(lsbs, l)
		}
	}
	p := 0
	for 1<<uint(p) < parts {
		p++
	}
	if p > len(lsbs) {
		return nil, fmt.Errorf("partition: %d partitions need %d symbolic contexts, only %d available",
			parts, p, len(lsbs))
	}
	out := make([]Partition, parts)
	for i := 0; i < parts; i++ {
		pt := Partition{Index: i}
		for j := 0; j < p; j++ {
			lit := lsbs[j]
			if i&(1<<uint(j)) == 0 {
				lit = lit.Not()
			}
			pt.Assumptions = append(pt.Assumptions, lit)
		}
		out[i] = pt
	}
	return out, nil
}

// MaxPartitions returns the largest power-of-two partition count the
// encoding supports (2^s for s symbolic contexts).
func MaxPartitions(enc *vc.Encoded) int {
	s := 0
	for _, l := range enc.TidLSBs {
		if l != cnf.LitUndef {
			s++
		}
	}
	if s > 30 {
		s = 30
	}
	return 1 << uint(s)
}

// Chunk is a contiguous range of partition indices assigned to one
// machine for distributed analysis (the paper's --from/--to interface).
type Chunk struct {
	From int // inclusive
	To   int // inclusive
}

// Size returns the number of partitions in the chunk.
func (c Chunk) Size() int { return c.To - c.From + 1 }

// Chunks splits nparts partitions into chunks of the given size (the
// last chunk may be smaller).
func Chunks(nparts, size int) []Chunk {
	if size < 1 {
		size = 1
	}
	var out []Chunk
	for from := 0; from < nparts; from += size {
		to := from + size - 1
		if to >= nparts {
			to = nparts - 1
		}
		out = append(out, Chunk{From: from, To: to})
	}
	return out
}
