// Package partition implements the paper's symbolic partitioning of the
// interleaving space (Sect. 3.2/3.3): the set of m-context executions is
// split into 2^p subsets by fixing the polarity of the propositional
// variables that carry the least-significant bit of the scheduled-thread
// words tid[1..p] (the first context is pinned to the main thread, so
// partitioning starts at the second context). Each subset is explored by
// conjoining the corresponding unit assumptions onto the otherwise
// unchanged formula.
package partition

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/vc"
)

// Partition is one symbolic subset of the execution traces: the original
// formula plus unit assumptions on the tid LSB variables.
type Partition struct {
	// Index identifies the partition: bit j of Index is the polarity
	// assumed for the LSB of tid[j+1].
	Index int
	// Assumptions are the unit literals defining the subset.
	Assumptions []cnf.Lit
}

// Make builds `parts` partitions over the encoded formula. parts must be
// a power of two not exceeding 2^s, where s is the number of symbolic
// scheduler contexts (contexts minus one in context-bounded mode).
// parts = 1 yields the single unpartitioned problem.
func Make(enc *vc.Encoded, parts int) ([]Partition, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("partition: count %d is not a power of two", parts)
	}
	var lsbs []cnf.Lit
	for _, l := range enc.TidLSBs {
		if l != cnf.LitUndef {
			lsbs = append(lsbs, l)
		}
	}
	p := 0
	for 1<<uint(p) < parts {
		p++
	}
	if p > len(lsbs) {
		return nil, fmt.Errorf("partition: %d partitions need %d symbolic contexts, only %d available",
			parts, p, len(lsbs))
	}
	out := make([]Partition, parts)
	for i := 0; i < parts; i++ {
		pt := Partition{Index: i}
		for j := 0; j < p; j++ {
			lit := lsbs[j]
			if i&(1<<uint(j)) == 0 {
				lit = lit.Not()
			}
			pt.Assumptions = append(pt.Assumptions, lit)
		}
		out[i] = pt
	}
	return out, nil
}

// MaxPartitions returns the largest power-of-two partition count the
// encoding supports (2^s for s symbolic contexts).
func MaxPartitions(enc *vc.Encoded) int {
	s := 0
	for _, l := range enc.TidLSBs {
		if l != cnf.LitUndef {
			s++
		}
	}
	if s > 30 {
		s = 30
	}
	return 1 << uint(s)
}

// Chunk is a contiguous range of partition indices assigned to one
// machine for distributed analysis (the paper's --from/--to interface).
type Chunk struct {
	From int // inclusive
	To   int // inclusive
}

// Cube is one node of the dynamic cube tree used by straggler-resilient
// scheduling. A cube either covers a contiguous range of partition
// indices (Path empty, the static chunk shape) or refines a single
// partition by fixing additional scheduler bits: Path is a string of '0'
// and '1' polarities over the canonical SplitLits sequence, so the
// assumption cube is the partition's tid-LSB assumptions plus one unit
// literal per path character. Path is only meaningful when From == To.
type Cube struct {
	From int    // inclusive partition index
	To   int    // inclusive partition index
	Path string // extra split-bit polarities, '0'/'1' per SplitLits entry
}

// CubeOf lifts a static chunk to a cube-tree root.
func CubeOf(c Chunk) Cube { return Cube{From: c.From, To: c.To} }

// Chunk returns the partition-index range the cube covers.
func (c Cube) Chunk() Chunk { return Chunk{From: c.From, To: c.To} }

// Size returns the number of partition indices under the cube.
func (c Cube) Size() int { return c.To - c.From + 1 }

// Depth returns how many extra split bits the cube fixes.
func (c Cube) Depth() int { return len(c.Path) }

// Key renders a stable map/display key: "from-to" for range cubes,
// "idx/path" for path-refined cubes.
func (c Cube) Key() string {
	if c.Path == "" {
		if c.From == c.To {
			return fmt.Sprintf("%d", c.From)
		}
		return fmt.Sprintf("%d-%d", c.From, c.To)
	}
	return fmt.Sprintf("%d/%s", c.From, c.Path)
}

// Split halves the cube: a multi-partition range splits at its midpoint;
// a single partition splits by fixing the next SplitLits bit both ways.
// The caller bounds path growth against len(SplitLits) and its depth cap.
func (c Cube) Split() (Cube, Cube) {
	if c.Size() > 1 {
		mid := c.From + (c.Size()-1)/2
		return Cube{From: c.From, To: mid}, Cube{From: mid + 1, To: c.To}
	}
	return Cube{From: c.From, To: c.To, Path: c.Path + "0"},
		Cube{From: c.From, To: c.To, Path: c.Path + "1"}
}

// ParsePath validates a cube path string.
func ParsePath(path string) error {
	for i := 0; i < len(path); i++ {
		if path[i] != '0' && path[i] != '1' {
			return fmt.Errorf("partition: cube path %q: byte %d is not '0'/'1'", path, i)
		}
	}
	return nil
}

// SplitLits returns the canonical ordered sequence of literals available
// for cube-path refinement beyond the p = log2(parts) tid-LSB bits the
// partition index already fixes. The order is deterministic for a given
// encoding, so coordinator and workers derive identical cubes from
// (partition index, path): first any tid LSBs the partition count left
// unused, then the higher tid bits breadth-first across contexts, then
// the context-switch word bits. Constant and duplicate bits are skipped.
func SplitLits(enc *vc.Encoded, parts int) []cnf.Lit {
	var lsbs []cnf.Lit
	for _, l := range enc.TidLSBs {
		if l != cnf.LitUndef {
			lsbs = append(lsbs, l)
		}
	}
	p := 0
	for 1<<uint(p) < parts {
		p++
	}
	seen := make(map[cnf.Lit]bool)
	usable := func(l cnf.Lit) bool {
		if l == cnf.LitUndef {
			return false
		}
		if _, ok := enc.Ctx.B.IsConst(l); ok {
			return false
		}
		pos := l
		if pos.Neg() {
			pos = pos.Not()
		}
		if seen[pos] {
			return false
		}
		seen[pos] = true
		return true
	}
	var out []cnf.Lit
	// Mark the index-fixed LSBs as seen so they are never re-split.
	for j := 0; j < p && j < len(lsbs); j++ {
		usable(lsbs[j])
	}
	for j := p; j < len(lsbs); j++ {
		if usable(lsbs[j]) {
			out = append(out, lsbs[j])
		}
	}
	symbolic := func(c int) bool {
		return c < len(enc.TidLSBs) && enc.TidLSBs[c] != cnf.LitUndef
	}
	maxW := 0
	for c, v := range enc.TidVecs {
		if symbolic(c) && v.Width() > maxW {
			maxW = v.Width()
		}
	}
	for bit := 1; bit < maxW; bit++ {
		for c, v := range enc.TidVecs {
			if symbolic(c) && bit < v.Width() && usable(v[bit]) {
				out = append(out, v[bit])
			}
		}
	}
	maxW = 0
	for c, v := range enc.CsVecs {
		if symbolic(c) && v.Width() > maxW {
			maxW = v.Width()
		}
	}
	for bit := 0; bit < maxW; bit++ {
		for c, v := range enc.CsVecs {
			if symbolic(c) && bit < v.Width() && usable(v[bit]) {
				out = append(out, v[bit])
			}
		}
	}
	return out
}

// PathAssumptions maps a cube path to its unit assumption literals over
// the canonical SplitLits sequence ('1' keeps the literal, '0' negates).
func PathAssumptions(path string, lits []cnf.Lit) ([]cnf.Lit, error) {
	if err := ParsePath(path); err != nil {
		return nil, err
	}
	if len(path) > len(lits) {
		return nil, fmt.Errorf("partition: cube path depth %d exceeds %d available split bits",
			len(path), len(lits))
	}
	out := make([]cnf.Lit, len(path))
	for i := 0; i < len(path); i++ {
		l := lits[i]
		if path[i] == '0' {
			l = l.Not()
		}
		out[i] = l
	}
	return out, nil
}

// Size returns the number of partitions in the chunk.
func (c Chunk) Size() int { return c.To - c.From + 1 }

// Chunks splits nparts partitions into chunks of the given size (the
// last chunk may be smaller).
func Chunks(nparts, size int) []Chunk {
	if size < 1 {
		size = 1
	}
	var out []Chunk
	for from := 0; from < nparts; from += size {
		to := from + size - 1
		if to >= nparts {
			to = nparts - 1
		}
		out = append(out, Chunk{From: from, To: to})
	}
	return out
}
