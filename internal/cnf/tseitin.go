package cnf

// Builder incrementally constructs a CNF formula via Tseitin encoding of
// Boolean gates. It provides constant literals, structural hashing of
// gates, and small-gate simplifications, so that identical sub-circuits
// share propositional variables.
type Builder struct {
	F *Formula

	trueLit Lit // literal constrained to be true

	andCache map[[2]Lit]Lit
	xorCache map[[2]Lit]Lit
}

// NewBuilder returns a Builder over a fresh formula with a dedicated
// constant-true variable.
func NewBuilder() *Builder {
	b := &Builder{
		F:        New(),
		andCache: make(map[[2]Lit]Lit),
		xorCache: make(map[[2]Lit]Lit),
	}
	b.trueLit = PosLit(b.F.NewVar())
	b.F.AddUnit(b.trueLit)
	return b
}

// True returns the constant-true literal.
func (b *Builder) True() Lit { return b.trueLit }

// False returns the constant-false literal.
func (b *Builder) False() Lit { return b.trueLit.Not() }

// Fresh allocates a fresh unconstrained literal.
func (b *Builder) Fresh() Lit { return PosLit(b.F.NewVar()) }

// IsConst reports whether l is one of the builder's constant literals,
// and its value if so.
func (b *Builder) IsConst(l Lit) (value, ok bool) {
	switch l {
	case b.trueLit:
		return true, true
	case b.trueLit.Not():
		return false, true
	}
	return false, false
}

// Not returns the complement of l.
func (b *Builder) Not(l Lit) Lit { return l.Not() }

// And returns a literal equivalent to x ∧ y.
func (b *Builder) And(x, y Lit) Lit {
	// Constant folding and trivial cases.
	if x == b.False() || y == b.False() || x == y.Not() {
		return b.False()
	}
	if x == b.True() {
		return y
	}
	if y == b.True() || x == y {
		return x
	}
	key := orderPair(x, y)
	if g, ok := b.andCache[key]; ok {
		return g
	}
	g := b.Fresh()
	// g ↔ x ∧ y
	b.F.AddClause(g.Not(), x)
	b.F.AddClause(g.Not(), y)
	b.F.AddClause(g, x.Not(), y.Not())
	b.andCache[key] = g
	return g
}

// Or returns a literal equivalent to x ∨ y.
func (b *Builder) Or(x, y Lit) Lit {
	return b.And(x.Not(), y.Not()).Not()
}

// Xor returns a literal equivalent to x ⊕ y.
func (b *Builder) Xor(x, y Lit) Lit {
	if x == b.False() {
		return y
	}
	if y == b.False() {
		return x
	}
	if x == b.True() {
		return y.Not()
	}
	if y == b.True() {
		return x.Not()
	}
	if x == y {
		return b.False()
	}
	if x == y.Not() {
		return b.True()
	}
	// Canonicalise on positive phases: x⊕y == ¬x⊕¬y, ¬(x⊕¬y), ...
	flip := false
	if x.Neg() {
		x = x.Not()
		flip = !flip
	}
	if y.Neg() {
		y = y.Not()
		flip = !flip
	}
	key := orderPair(x, y)
	g, ok := b.xorCache[key]
	if !ok {
		g = b.Fresh()
		// g ↔ x ⊕ y
		b.F.AddClause(g.Not(), x, y)
		b.F.AddClause(g.Not(), x.Not(), y.Not())
		b.F.AddClause(g, x, y.Not())
		b.F.AddClause(g, x.Not(), y)
		b.xorCache[key] = g
	}
	if flip {
		return g.Not()
	}
	return g
}

// Xnor returns a literal equivalent to x ↔ y.
func (b *Builder) Xnor(x, y Lit) Lit { return b.Xor(x, y).Not() }

// Ite returns a literal equivalent to cond ? t : e.
func (b *Builder) Ite(cond, t, e Lit) Lit {
	if cond == b.True() {
		return t
	}
	if cond == b.False() {
		return e
	}
	if t == e {
		return t
	}
	if t == e.Not() {
		return b.Xnor(cond, t)
	}
	if t == b.True() {
		return b.Or(cond, e)
	}
	if t == b.False() {
		return b.And(cond.Not(), e)
	}
	if e == b.True() {
		return b.Or(cond.Not(), t)
	}
	if e == b.False() {
		return b.And(cond, t)
	}
	return b.Or(b.And(cond, t), b.And(cond.Not(), e))
}

// Implies returns a literal equivalent to x → y.
func (b *Builder) Implies(x, y Lit) Lit { return b.Or(x.Not(), y) }

// AndAll folds And over the literals; an empty list yields true.
func (b *Builder) AndAll(lits ...Lit) Lit {
	out := b.True()
	for _, l := range lits {
		out = b.And(out, l)
	}
	return out
}

// OrAll folds Or over the literals; an empty list yields false.
func (b *Builder) OrAll(lits ...Lit) Lit {
	out := b.False()
	for _, l := range lits {
		out = b.Or(out, l)
	}
	return out
}

// Assert constrains l to be true in the formula.
func (b *Builder) Assert(l Lit) {
	if l == b.True() {
		return
	}
	b.F.AddUnit(l)
}

func orderPair(x, y Lit) [2]Lit {
	if x > y {
		x, y = y, x
	}
	return [2]Lit{x, y}
}
