package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDimacs serialises the formula in DIMACS CNF format.
func WriteDimacs(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := bw.WriteString(strconv.Itoa(l.Dimacs())); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDimacs parses a DIMACS CNF file. Comment lines (starting with 'c')
// are ignored. The header counts are checked against the actual content.
func ReadDimacs(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	f := New()
	declaredVars, declaredClauses := -1, -1
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			var err error
			declaredVars, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad variable count: %v", err)
			}
			declaredClauses, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad clause count: %v", err)
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q: %v", tok, err)
			}
			if n == 0 {
				f.AddClause(cur...)
				cur = nil
				continue
			}
			cur = append(cur, FromDimacs(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		// Final clause without the trailing 0 terminator.
		f.AddClause(cur...)
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("cnf: header declares %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	if declaredVars >= 0 && f.NumVars > declaredVars {
		return nil, fmt.Errorf("cnf: header declares %d variables, found variable %d", declaredVars, f.NumVars)
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	return f, nil
}
