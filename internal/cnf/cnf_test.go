package cnf

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	for v := Var(1); v <= 100; v++ {
		pos, neg := PosLit(v), NegLit(v)
		if pos.Var() != v || neg.Var() != v {
			t.Fatalf("Var round-trip failed for %d", v)
		}
		if pos.Neg() || !neg.Neg() {
			t.Fatalf("polarity wrong for %d", v)
		}
		if pos.Not() != neg || neg.Not() != pos {
			t.Fatalf("Not wrong for %d", v)
		}
		if pos.Dimacs() != int(v) || neg.Dimacs() != -int(v) {
			t.Fatalf("Dimacs wrong for %d", v)
		}
		if FromDimacs(pos.Dimacs()) != pos || FromDimacs(neg.Dimacs()) != neg {
			t.Fatalf("FromDimacs round-trip failed for %d", v)
		}
	}
}

func TestMkLitPanicsOnInvalidVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for variable 0")
		}
	}()
	MkLit(0, false)
}

func TestLitIndexDense(t *testing.T) {
	seen := map[int]bool{}
	for v := Var(1); v <= 50; v++ {
		for _, l := range []Lit{PosLit(v), NegLit(v)} {
			if seen[l.Index()] {
				t.Fatalf("duplicate index %d", l.Index())
			}
			seen[l.Index()] = true
		}
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{PosLit(3), PosLit(1), PosLit(3), NegLit(2)}
	n, taut := c.Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(n) != 3 {
		t.Fatalf("expected 3 literals after dedup, got %v", n)
	}
	c2 := Clause{PosLit(1), NegLit(1)}
	if _, taut := c2.Normalize(); !taut {
		t.Fatal("expected tautology")
	}
	var empty Clause
	if n, taut := empty.Normalize(); taut || len(n) != 0 {
		t.Fatal("empty clause normalisation wrong")
	}
}

func TestFormulaEval(t *testing.T) {
	f := New()
	f.AddClause(PosLit(1), PosLit(2))
	f.AddClause(NegLit(1))
	assign := []bool{false, false, true}
	if !f.Eval(assign) {
		t.Fatal("expected satisfied")
	}
	assign = []bool{false, true, false}
	if f.Eval(assign) {
		t.Fatal("expected falsified")
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	f := New()
	f.AddClause(PosLit(1), NegLit(2), PosLit(3))
	f.AddClause(NegLit(1))
	f.AddClause(PosLit(2), PosLit(3))
	var buf bytes.Buffer
	if err := WriteDimacs(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round-trip mismatch: %d/%d vars, %d/%d clauses",
			g.NumVars, f.NumVars, len(g.Clauses), len(f.Clauses))
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d length mismatch", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d mismatch", i, j)
			}
		}
	}
}

func TestDimacsRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		f := New()
		nv := 1 + rng.Intn(30)
		nc := rng.Intn(60)
		for i := 0; i < nc; i++ {
			var c []Lit
			for j := 0; j <= rng.Intn(5); j++ {
				c = append(c, MkLit(Var(1+rng.Intn(nv)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		var buf bytes.Buffer
		if err := WriteDimacs(&buf, f); err != nil {
			t.Fatal(err)
		}
		g, err := ReadDimacs(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("iter %d: clause count mismatch", iter)
		}
	}
}

func TestDimacsComments(t *testing.T) {
	in := "c a comment\np cnf 3 2\n1 -2 0\nc mid comment\n2 3 0\n"
	f, err := ReadDimacs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("got %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
}

func TestDimacsErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n",
		"p cnf 3\n",
		"p cnf 3 1\n1 z 0\n",
		"p cnf 3 5\n1 0\n", // wrong clause count
		"p cnf 1 1\n5 0\n", // var beyond declared
	}
	for i, in := range cases {
		if _, err := ReadDimacs(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestDimacsMissingFinalZero(t *testing.T) {
	in := "p cnf 2 1\n1 -2\n"
	f, err := ReadDimacs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 2 {
		t.Fatal("final clause without terminator not parsed")
	}
}

// evalGate checks the builder's gates against Go's Boolean operators by
// brute-force enumeration over the inputs.
func TestBuilderGatesExhaustive(t *testing.T) {
	type gate struct {
		name  string
		build func(b *Builder, x, y Lit) Lit
		eval  func(x, y bool) bool
	}
	gates := []gate{
		{"and", func(b *Builder, x, y Lit) Lit { return b.And(x, y) }, func(x, y bool) bool { return x && y }},
		{"or", func(b *Builder, x, y Lit) Lit { return b.Or(x, y) }, func(x, y bool) bool { return x || y }},
		{"xor", func(b *Builder, x, y Lit) Lit { return b.Xor(x, y) }, func(x, y bool) bool { return x != y }},
		{"xnor", func(b *Builder, x, y Lit) Lit { return b.Xnor(x, y) }, func(x, y bool) bool { return x == y }},
		{"implies", func(b *Builder, x, y Lit) Lit { return b.Implies(x, y) }, func(x, y bool) bool { return !x || y }},
	}
	for _, g := range gates {
		for xv := 0; xv < 2; xv++ {
			for yv := 0; yv < 2; yv++ {
				b := NewBuilder()
				x, y := b.Fresh(), b.Fresh()
				out := g.build(b, x, y)
				// Force the inputs and the expected output; the formula
				// must be satisfiable.
				b.Assert(litWithValue(x, xv == 1))
				b.Assert(litWithValue(y, yv == 1))
				want := g.eval(xv == 1, yv == 1)
				b.Assert(litWithValue(out, want))
				if !bruteForceSat(b.F) {
					t.Fatalf("%s(%d,%d): expected %v to be consistent", g.name, xv, yv, want)
				}
				// And the opposite output value must be unsatisfiable.
				b2 := NewBuilder()
				x2, y2 := b2.Fresh(), b2.Fresh()
				out2 := g.build(b2, x2, y2)
				b2.Assert(litWithValue(x2, xv == 1))
				b2.Assert(litWithValue(y2, yv == 1))
				b2.Assert(litWithValue(out2, !want))
				if bruteForceSat(b2.F) {
					t.Fatalf("%s(%d,%d): wrong output value satisfiable", g.name, xv, yv)
				}
			}
		}
	}
}

func TestBuilderIteExhaustive(t *testing.T) {
	for c := 0; c < 2; c++ {
		for tv := 0; tv < 2; tv++ {
			for ev := 0; ev < 2; ev++ {
				b := NewBuilder()
				cc, tt, ee := b.Fresh(), b.Fresh(), b.Fresh()
				out := b.Ite(cc, tt, ee)
				b.Assert(litWithValue(cc, c == 1))
				b.Assert(litWithValue(tt, tv == 1))
				b.Assert(litWithValue(ee, ev == 1))
				want := ev == 1
				if c == 1 {
					want = tv == 1
				}
				b.Assert(litWithValue(out, want))
				if !bruteForceSat(b.F) {
					t.Fatalf("ite(%d,%d,%d) inconsistent", c, tv, ev)
				}
			}
		}
	}
}

func TestBuilderConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Fresh()
	if b.And(b.True(), x) != x {
		t.Fatal("And(true,x) != x")
	}
	if b.And(b.False(), x) != b.False() {
		t.Fatal("And(false,x) != false")
	}
	if b.Or(b.True(), x) != b.True() {
		t.Fatal("Or(true,x) != true")
	}
	if b.Xor(b.False(), x) != x {
		t.Fatal("Xor(false,x) != x")
	}
	if b.Xor(x, x) != b.False() {
		t.Fatal("Xor(x,x) != false")
	}
	if b.Xor(x, x.Not()) != b.True() {
		t.Fatal("Xor(x,!x) != true")
	}
	if b.And(x, x.Not()) != b.False() {
		t.Fatal("And(x,!x) != false")
	}
	if b.Ite(b.True(), x, b.Fresh()) != x {
		t.Fatal("Ite(true,x,y) != x")
	}
	if v, ok := b.IsConst(b.True()); !ok || !v {
		t.Fatal("IsConst(true) wrong")
	}
	if v, ok := b.IsConst(b.False()); !ok || v {
		t.Fatal("IsConst(false) wrong")
	}
	if _, ok := b.IsConst(x); ok {
		t.Fatal("IsConst(x) wrong")
	}
}

func TestBuilderStructuralHashing(t *testing.T) {
	b := NewBuilder()
	x, y := b.Fresh(), b.Fresh()
	if b.And(x, y) != b.And(y, x) {
		t.Fatal("And not hashed symmetrically")
	}
	if b.Xor(x, y) != b.Xor(y, x) {
		t.Fatal("Xor not hashed symmetrically")
	}
	if b.Xor(x.Not(), y) != b.Xor(x, y).Not() {
		t.Fatal("Xor phase canonicalisation broken")
	}
	before := b.F.NumVars
	b.And(x, y)
	b.Xor(x, y)
	if b.F.NumVars != before {
		t.Fatal("cache miss on repeated gate")
	}
}

// Property: AndAll over a random set of literals is true iff all are true.
func TestAndAllOrAllProperty(t *testing.T) {
	prop := func(vals []bool) bool {
		b := NewBuilder()
		lits := make([]Lit, len(vals))
		for i := range vals {
			lits[i] = b.Fresh()
		}
		and := b.AndAll(lits...)
		or := b.OrAll(lits...)
		for i, v := range vals {
			b.Assert(litWithValue(lits[i], v))
		}
		wantAnd, wantOr := true, false
		for _, v := range vals {
			wantAnd = wantAnd && v
			wantOr = wantOr || v
		}
		b.Assert(litWithValue(and, wantAnd))
		b.Assert(litWithValue(or, wantOr))
		return bruteForceSat(b.F)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11)),
		Values: func(vs []reflect.Value, r *rand.Rand) {
			n := r.Intn(6)
			vals := make([]bool, n)
			for i := range vals {
				vals[i] = r.Intn(2) == 0
			}
			vs[0] = reflect.ValueOf(vals)
		}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func litWithValue(l Lit, v bool) Lit {
	if v {
		return l
	}
	return l.Not()
}

// bruteForceSat decides satisfiability by enumeration; only usable for
// formulas with few variables.
func bruteForceSat(f *Formula) bool {
	n := f.NumVars
	if n > 22 {
		panic("bruteForceSat: too many variables")
	}
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}
