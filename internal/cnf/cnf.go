// Package cnf provides propositional formulas in conjunctive normal form,
// a Tseitin encoder from and-inverter circuits, and DIMACS serialisation.
//
// Variables are positive integers starting at 1, following the DIMACS
// convention. A literal packs a variable and a polarity: the literal for
// variable v is encoded as 2*v for the positive phase and 2*v+1 for the
// negative phase, so that literals can be used directly as dense slice
// indices (as in MiniSat).
package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a propositional variable. Valid variables are >= 1.
type Var int

// Lit is a literal: a variable together with a polarity.
// The zero Lit is invalid and can be used as a sentinel.
type Lit int

// LitUndef is the invalid literal sentinel.
const LitUndef Lit = 0

// MkLit builds a literal from a variable and a sign.
// neg=false yields the positive literal v, neg=true yields ¬v.
func MkLit(v Var, neg bool) Lit {
	if v <= 0 {
		panic(fmt.Sprintf("cnf: invalid variable %d", v))
	}
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return MkLit(v, true) }

// Var returns the variable of the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Index returns a dense non-negative index suitable for slice lookup.
func (l Lit) Index() int { return int(l) }

// Dimacs returns the signed DIMACS integer for the literal.
func (l Lit) Dimacs() int {
	if l.Neg() {
		return -int(l.Var())
	}
	return int(l.Var())
}

// FromDimacs converts a signed DIMACS integer into a Lit.
func FromDimacs(n int) Lit {
	if n == 0 {
		panic("cnf: zero is not a DIMACS literal")
	}
	if n < 0 {
		return NegLit(Var(-n))
	}
	return PosLit(Var(n))
}

func (l Lit) String() string {
	if l == LitUndef {
		return "<undef>"
	}
	if l.Neg() {
		return fmt.Sprintf("-x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Clause is a disjunction of literals.
type Clause []Lit

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Normalize sorts the clause, removes duplicate literals, and reports
// whether the clause is a tautology (contains l and ¬l).
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:1]
	for _, l := range c[1:] {
		last := out[len(out)-1]
		if l == last {
			continue
		}
		if l == last.Not() {
			return nil, true
		}
		out = append(out, l)
	}
	return out, false
}

// Formula is a propositional formula in CNF.
type Formula struct {
	// NumVars is the highest variable index in use.
	NumVars int
	// Clauses is the conjunction of clauses.
	Clauses []Clause
}

// New returns an empty formula.
func New() *Formula { return &Formula{} }

// NewVar allocates a fresh variable.
func (f *Formula) NewVar() Var {
	f.NumVars++
	return Var(f.NumVars)
}

// AddClause appends a clause, growing NumVars if the clause mentions a
// larger variable. The slice is retained; callers must not mutate it.
func (f *Formula) AddClause(lits ...Lit) {
	for _, l := range lits {
		if int(l.Var()) > f.NumVars {
			f.NumVars = int(l.Var())
		}
	}
	f.Clauses = append(f.Clauses, Clause(lits))
}

// AddUnit appends a unit clause.
func (f *Formula) AddUnit(l Lit) { f.AddClause(l) }

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// Eval evaluates the formula under a complete assignment.
// assignment[v] gives the value of variable v; index 0 is unused.
func (f *Formula) Eval(assignment []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			v := assignment[l.Var()]
			if v != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// EvalClause evaluates a single clause under a complete assignment.
func EvalClause(c Clause, assignment []bool) bool {
	for _, l := range c {
		if assignment[l.Var()] != l.Neg() {
			return true
		}
	}
	return false
}

func (f *Formula) String() string {
	var b strings.Builder
	for i, c := range f.Clauses {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}
