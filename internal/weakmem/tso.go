package weakmem

import (
	"fmt"

	"repro/prog"
)

// TransformTSO returns a program whose SC behaviours are the TSO (total
// store order) behaviours of p, modelled with a per-thread FIFO store
// buffer of bounded depth: stores append to the queue, loads forward
// from the youngest matching entry, and the buffer drains strictly from
// the head, so stores to different locations become visible in program
// order — the constraint PSO drops. Flushing remains non-deterministic
// (any prefix of the queue may drain before each shared access), fences
// (lock/unlock, create/join, atomic blocks, thread exit) drain the whole
// queue, and a store into a full queue forces the head out first (the
// usual bounded under-approximation of the hardware buffer).
//
// The queue stores variable indices and values uniformly, so TSO
// transformation requires every buffered global to be an int scalar
// (mutexes and arrays keep SC semantics as in TransformPSO; Boolean
// globals are rejected). Depth is the buffer capacity (default 2, enough
// to exhibit every two-store litmus idiom).
func TransformTSO(p *prog.Program, depth int) (*prog.Program, error) {
	if depth <= 0 {
		depth = 2
	}
	t := &tsoTransformer{src: p, depth: depth}
	for _, g := range p.Globals {
		if g.Type.Kind == prog.KindMutex || g.Type.IsArray() {
			continue
		}
		if g.Type.Kind != prog.KindInt {
			return nil, fmt.Errorf("weakmem: TSO transformation requires int globals, %q is %s", g.Name, g.Type)
		}
		t.buffered = append(t.buffered, g)
	}
	out := &prog.Program{
		Name:    p.Name + "-tso",
		Globals: append([]prog.Decl{}, p.Globals...),
	}
	for _, pr := range p.Procs {
		np, err := t.proc(pr)
		if err != nil {
			return nil, err
		}
		out.Procs = append(out.Procs, np)
	}
	if err := prog.Check(out); err != nil {
		return nil, fmt.Errorf("weakmem: TSO-transformed program invalid: %w", err)
	}
	return out, nil
}

type tsoTransformer struct {
	src      *prog.Program
	buffered []prog.Decl
	depth    int
	fresh    int
}

func (t *tsoTransformer) varIndex(name string) (int, bool) {
	for i, g := range t.buffered {
		if g.Name == name {
			return i, true
		}
	}
	return 0, false
}

func qVar(k int) string   { return fmt.Sprintf("wmqvar%d", k) }
func qVal(k int) string   { return fmt.Sprintf("wmqval%d", k) }
func qValid(k int) string { return fmt.Sprintf("wmqok%d", k) }

func (t *tsoTransformer) freshName(hint string) string {
	t.fresh++
	return fmt.Sprintf("wmt%s%d", hint, t.fresh)
}

func (t *tsoTransformer) proc(pr *prog.Proc) (*prog.Proc, error) {
	np := &prog.Proc{
		Name:   pr.Name,
		Params: append([]prog.Decl{}, pr.Params...),
		Ret:    pr.Ret,
		Locals: append([]prog.Decl{}, pr.Locals...),
	}
	var init []prog.Stmt
	for k := 1; k <= t.depth; k++ {
		np.Locals = append(np.Locals,
			prog.Decl{Name: qVar(k), Type: prog.Int},
			prog.Decl{Name: qVal(k), Type: prog.Int},
			prog.Decl{Name: qValid(k), Type: prog.Bool},
		)
		init = append(init, &prog.AssignStmt{
			LHS: &prog.VarRef{Name: qValid(k)},
			RHS: &prog.BoolLit{Value: false},
		})
	}
	body, err := t.stmts(np, pr.Body)
	if err != nil {
		return nil, err
	}
	np.Body = append(init, append(body, t.drainAll()...)...)
	return np, nil
}

func (t *tsoTransformer) stmts(np *prog.Proc, in []prog.Stmt) ([]prog.Stmt, error) {
	var out []prog.Stmt
	for _, s := range in {
		ns, err := t.stmt(np, s)
		if err != nil {
			return nil, err
		}
		out = append(out, ns...)
	}
	return out, nil
}

// drainHead writes the head entry to memory (static dispatch over the
// buffered globals) and shifts the queue forward.
func (t *tsoTransformer) drainHead() []prog.Stmt {
	var out []prog.Stmt
	for i, g := range t.buffered {
		out = append(out, &prog.IfStmt{
			Cond: &prog.BinaryExpr{Op: prog.OpEq,
				X: &prog.VarRef{Name: qVar(1)}, Y: &prog.IntLit{Value: int64(i)}},
			Then: []prog.Stmt{&prog.AssignStmt{
				LHS: &prog.VarRef{Name: g.Name},
				RHS: &prog.VarRef{Name: qVal(1)},
			}},
		})
	}
	// Shift the queue towards the head.
	for k := 1; k < t.depth; k++ {
		out = append(out,
			&prog.AssignStmt{LHS: &prog.VarRef{Name: qVar(k)}, RHS: &prog.VarRef{Name: qVar(k + 1)}},
			&prog.AssignStmt{LHS: &prog.VarRef{Name: qVal(k)}, RHS: &prog.VarRef{Name: qVal(k + 1)}},
			&prog.AssignStmt{LHS: &prog.VarRef{Name: qValid(k)}, RHS: &prog.VarRef{Name: qValid(k + 1)}},
		)
	}
	out = append(out, &prog.AssignStmt{
		LHS: &prog.VarRef{Name: qValid(t.depth)},
		RHS: &prog.BoolLit{Value: false},
	})
	return out
}

// guardedDrainHead drains the head if the queue is non-empty.
func (t *tsoTransformer) guardedDrainHead() prog.Stmt {
	return &prog.IfStmt{
		Cond: &prog.VarRef{Name: qValid(1)},
		Then: t.drainHead(),
	}
}

// maybeFlush lets any prefix of the queue drain (FIFO: only head-first,
// which is exactly TSO's ordering guarantee).
func (t *tsoTransformer) maybeFlush(np *prog.Proc) []prog.Stmt {
	var out []prog.Stmt
	for k := 0; k < t.depth; k++ {
		choice := t.freshName("fl")
		np.Locals = append(np.Locals, prog.Decl{Name: choice, Type: prog.Bool})
		out = append(out,
			&prog.AssignStmt{LHS: &prog.VarRef{Name: choice}, RHS: &prog.Nondet{}},
			&prog.IfStmt{
				Cond: &prog.BinaryExpr{Op: prog.OpLAnd,
					X: &prog.VarRef{Name: choice},
					Y: &prog.VarRef{Name: qValid(1)}},
				Then: t.drainHead(),
			},
		)
	}
	return out
}

// drainAll empties the queue (full fence).
func (t *tsoTransformer) drainAll() []prog.Stmt {
	var out []prog.Stmt
	for k := 0; k < t.depth; k++ {
		out = append(out, t.guardedDrainHead())
	}
	return out
}

// rewriteReads loads buffered globals into temps with store forwarding:
// memory first, then queue entries head to tail so the youngest pending
// store wins.
func (t *tsoTransformer) rewriteReads(np *prog.Proc, e prog.Expr) ([]prog.Stmt, prog.Expr, error) {
	var prelude []prog.Stmt
	loaded := map[string]string{}
	var walk func(x prog.Expr) (prog.Expr, error)
	walk = func(x prog.Expr) (prog.Expr, error) {
		switch ex := x.(type) {
		case nil:
			return nil, nil
		case *prog.IntLit, *prog.BoolLit, *prog.Nondet:
			return ex, nil
		case *prog.VarRef:
			idx, ok := t.varIndex(ex.Name)
			if !ok {
				return ex, nil
			}
			tmp, seen := loaded[ex.Name]
			if !seen {
				tmp = t.freshName("ld")
				loaded[ex.Name] = tmp
				np.Locals = append(np.Locals, prog.Decl{Name: tmp, Type: prog.Int})
				prelude = append(prelude, &prog.AssignStmt{
					LHS: &prog.VarRef{Name: tmp},
					RHS: &prog.VarRef{Name: ex.Name},
				})
				for k := 1; k <= t.depth; k++ {
					prelude = append(prelude, &prog.IfStmt{
						Cond: &prog.BinaryExpr{Op: prog.OpLAnd,
							X: &prog.VarRef{Name: qValid(k)},
							Y: &prog.BinaryExpr{Op: prog.OpEq,
								X: &prog.VarRef{Name: qVar(k)},
								Y: &prog.IntLit{Value: int64(idx)}}},
						Then: []prog.Stmt{&prog.AssignStmt{
							LHS: &prog.VarRef{Name: tmp},
							RHS: &prog.VarRef{Name: qVal(k)},
						}},
					})
				}
			}
			return &prog.VarRef{Name: tmp}, nil
		case *prog.IndexRef:
			idx, err := walk(ex.Index)
			if err != nil {
				return nil, err
			}
			return &prog.IndexRef{Name: ex.Name, Index: idx}, nil
		case *prog.UnaryExpr:
			inner, err := walk(ex.X)
			if err != nil {
				return nil, err
			}
			return &prog.UnaryExpr{Op: ex.Op, X: inner}, nil
		case *prog.BinaryExpr:
			xx, err := walk(ex.X)
			if err != nil {
				return nil, err
			}
			yy, err := walk(ex.Y)
			if err != nil {
				return nil, err
			}
			return &prog.BinaryExpr{Op: ex.Op, X: xx, Y: yy}, nil
		}
		return nil, fmt.Errorf("weakmem: unknown expression %T", e)
	}
	ne, err := walk(e)
	return prelude, ne, err
}

// appendStore enqueues a store of value expr (already read-rewritten)
// into the queue, forcing a head drain when full.
func (t *tsoTransformer) appendStore(idx int, rhs prog.Expr) []prog.Stmt {
	out := []prog.Stmt{
		// Full queue: the head must drain to make room.
		&prog.IfStmt{
			Cond: &prog.VarRef{Name: qValid(t.depth)},
			Then: t.drainHead(),
		},
	}
	// Append at the first free slot: the queue is compacted head-first,
	// so the slot after the last valid one is free. Built inside-out so
	// the outermost test finds the highest occupied predecessor.
	var stmt []prog.Stmt
	for k := 1; k <= t.depth; k++ {
		slot := []prog.Stmt{
			&prog.AssignStmt{LHS: &prog.VarRef{Name: qVar(k)}, RHS: &prog.IntLit{Value: int64(idx)}},
			&prog.AssignStmt{LHS: &prog.VarRef{Name: qVal(k)}, RHS: rhs},
			&prog.AssignStmt{LHS: &prog.VarRef{Name: qValid(k)}, RHS: &prog.BoolLit{Value: true}},
		}
		if k == 1 {
			stmt = slot
		} else {
			stmt = []prog.Stmt{&prog.IfStmt{
				Cond: &prog.VarRef{Name: qValid(k - 1)},
				Then: slot,
				Else: stmt,
			}}
		}
	}
	return append(out, stmt...)
}

func (t *tsoTransformer) stmt(np *prog.Proc, s prog.Stmt) ([]prog.Stmt, error) {
	switch st := s.(type) {
	case *prog.AssignStmt:
		var out []prog.Stmt
		if t.touches(st.RHS) || t.lvalueBuffered(st.LHS) {
			out = append(out, t.maybeFlush(np)...)
		}
		prelude, rhs, err := t.rewriteReads(np, st.RHS)
		if err != nil {
			return nil, err
		}
		out = append(out, prelude...)
		if v, ok := st.LHS.(*prog.VarRef); ok {
			if idx, buffered := t.varIndex(v.Name); buffered {
				return append(out, t.appendStore(idx, rhs)...), nil
			}
		}
		lhs := st.LHS
		if ir, ok := st.LHS.(*prog.IndexRef); ok {
			ip, idx, err := t.rewriteReads(np, ir.Index)
			if err != nil {
				return nil, err
			}
			out = append(out, ip...)
			lhs = &prog.IndexRef{Name: ir.Name, Index: idx}
		}
		return append(out, &prog.AssignStmt{LHS: lhs, RHS: rhs}), nil
	case *prog.AssumeStmt:
		return t.cond(np, st.Cond, func(c prog.Expr) prog.Stmt { return &prog.AssumeStmt{Cond: c} })
	case *prog.AssertStmt:
		return t.cond(np, st.Cond, func(c prog.Expr) prog.Stmt { return &prog.AssertStmt{Cond: c} })
	case *prog.IfStmt:
		var out []prog.Stmt
		if t.touches(st.Cond) {
			out = append(out, t.maybeFlush(np)...)
		}
		prelude, c, err := t.rewriteReads(np, st.Cond)
		if err != nil {
			return nil, err
		}
		out = append(out, prelude...)
		then, err := t.stmts(np, st.Then)
		if err != nil {
			return nil, err
		}
		els, err := t.stmts(np, st.Else)
		if err != nil {
			return nil, err
		}
		return append(out, &prog.IfStmt{Cond: c, Then: then, Else: els}), nil
	case *prog.WhileStmt:
		condVar := t.freshName("wc")
		np.Locals = append(np.Locals, prog.Decl{Name: condVar, Type: prog.Bool})
		eval := func() ([]prog.Stmt, error) {
			var out []prog.Stmt
			if t.touches(st.Cond) {
				out = append(out, t.maybeFlush(np)...)
			}
			prelude, c, err := t.rewriteReads(np, st.Cond)
			if err != nil {
				return nil, err
			}
			out = append(out, prelude...)
			return append(out, &prog.AssignStmt{LHS: &prog.VarRef{Name: condVar}, RHS: c}), nil
		}
		head, err := eval()
		if err != nil {
			return nil, err
		}
		body, err := t.stmts(np, st.Body)
		if err != nil {
			return nil, err
		}
		tail, err := eval()
		if err != nil {
			return nil, err
		}
		return append(head, &prog.WhileStmt{
			Cond: &prog.VarRef{Name: condVar},
			Body: append(body, tail...),
		}), nil
	case *prog.CallStmt:
		var out []prog.Stmt
		args := make([]prog.Expr, len(st.Args))
		for i, a := range st.Args {
			prelude, na, err := t.rewriteReads(np, a)
			if err != nil {
				return nil, err
			}
			out = append(out, prelude...)
			args[i] = na
		}
		return append(out, &prog.CallStmt{Proc: st.Proc, Args: args, Result: st.Result}), nil
	case *prog.CreateStmt:
		var out []prog.Stmt
		out = append(out, t.drainAll()...)
		args := make([]prog.Expr, len(st.Args))
		for i, a := range st.Args {
			prelude, na, err := t.rewriteReads(np, a)
			if err != nil {
				return nil, err
			}
			out = append(out, prelude...)
			args[i] = na
		}
		return append(out, &prog.CreateStmt{Tid: st.Tid, Proc: st.Proc, Args: args}), nil
	case *prog.JoinStmt:
		prelude, tid, err := t.rewriteReads(np, st.Tid)
		if err != nil {
			return nil, err
		}
		out := append(t.drainAll(), prelude...)
		return append(out, &prog.JoinStmt{Tid: tid}), nil
	case *prog.LockStmt:
		return append(t.drainAll(), st), nil
	case *prog.UnlockStmt:
		return append(t.drainAll(), st), nil
	case *prog.InitStmt, *prog.DestroyStmt:
		return []prog.Stmt{st}, nil
	case *prog.AtomicStmt:
		return []prog.Stmt{&prog.AtomicStmt{Body: append(t.drainAll(), st.Body...)}}, nil
	case *prog.ReturnStmt:
		var out []prog.Stmt
		out = append(out, t.drainAll()...)
		if st.Value != nil {
			prelude, v, err := t.rewriteReads(np, st.Value)
			if err != nil {
				return nil, err
			}
			out = append(out, prelude...)
			return append(out, &prog.ReturnStmt{Value: v}), nil
		}
		return append(out, st), nil
	case *prog.BlockStmt:
		body, err := t.stmts(np, st.Body)
		if err != nil {
			return nil, err
		}
		return []prog.Stmt{&prog.BlockStmt{Body: body}}, nil
	}
	return nil, fmt.Errorf("weakmem: unknown statement %T", s)
}

func (t *tsoTransformer) cond(np *prog.Proc, cond prog.Expr, mk func(prog.Expr) prog.Stmt) ([]prog.Stmt, error) {
	var out []prog.Stmt
	if t.touches(cond) {
		out = append(out, t.maybeFlush(np)...)
	}
	prelude, c, err := t.rewriteReads(np, cond)
	if err != nil {
		return nil, err
	}
	out = append(out, prelude...)
	return append(out, mk(c)), nil
}

func (t *tsoTransformer) touches(e prog.Expr) bool {
	switch x := e.(type) {
	case nil, *prog.IntLit, *prog.BoolLit, *prog.Nondet:
		return false
	case *prog.VarRef:
		_, ok := t.varIndex(x.Name)
		return ok
	case *prog.IndexRef:
		return t.touches(x.Index)
	case *prog.UnaryExpr:
		return t.touches(x.X)
	case *prog.BinaryExpr:
		return t.touches(x.X) || t.touches(x.Y)
	}
	return false
}

func (t *tsoTransformer) lvalueBuffered(e prog.Expr) bool {
	if v, ok := e.(*prog.VarRef); ok {
		_, buffered := t.varIndex(v.Name)
		return buffered
	}
	return false
}
